# Empty dependencies file for kcoup_npb_lu.
# This may be replaced when dependencies are built.
