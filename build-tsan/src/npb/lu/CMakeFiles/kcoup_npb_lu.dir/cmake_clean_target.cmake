file(REMOVE_RECURSE
  "libkcoup_npb_lu.a"
)
