
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/npb/lu/lu_app.cpp" "src/npb/lu/CMakeFiles/kcoup_npb_lu.dir/lu_app.cpp.o" "gcc" "src/npb/lu/CMakeFiles/kcoup_npb_lu.dir/lu_app.cpp.o.d"
  "/root/repo/src/npb/lu/lu_measured.cpp" "src/npb/lu/CMakeFiles/kcoup_npb_lu.dir/lu_measured.cpp.o" "gcc" "src/npb/lu/CMakeFiles/kcoup_npb_lu.dir/lu_measured.cpp.o.d"
  "/root/repo/src/npb/lu/lu_model.cpp" "src/npb/lu/CMakeFiles/kcoup_npb_lu.dir/lu_model.cpp.o" "gcc" "src/npb/lu/CMakeFiles/kcoup_npb_lu.dir/lu_model.cpp.o.d"
  "/root/repo/src/npb/lu/lu_timed.cpp" "src/npb/lu/CMakeFiles/kcoup_npb_lu.dir/lu_timed.cpp.o" "gcc" "src/npb/lu/CMakeFiles/kcoup_npb_lu.dir/lu_timed.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/npb/common/CMakeFiles/kcoup_npb_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/simmpi/CMakeFiles/kcoup_simmpi.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/coupling/CMakeFiles/kcoup_coupling.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/machine/CMakeFiles/kcoup_machine.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/report/CMakeFiles/kcoup_report.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
