file(REMOVE_RECURSE
  "CMakeFiles/kcoup_npb_lu.dir/lu_app.cpp.o"
  "CMakeFiles/kcoup_npb_lu.dir/lu_app.cpp.o.d"
  "CMakeFiles/kcoup_npb_lu.dir/lu_measured.cpp.o"
  "CMakeFiles/kcoup_npb_lu.dir/lu_measured.cpp.o.d"
  "CMakeFiles/kcoup_npb_lu.dir/lu_model.cpp.o"
  "CMakeFiles/kcoup_npb_lu.dir/lu_model.cpp.o.d"
  "CMakeFiles/kcoup_npb_lu.dir/lu_timed.cpp.o"
  "CMakeFiles/kcoup_npb_lu.dir/lu_timed.cpp.o.d"
  "libkcoup_npb_lu.a"
  "libkcoup_npb_lu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kcoup_npb_lu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
