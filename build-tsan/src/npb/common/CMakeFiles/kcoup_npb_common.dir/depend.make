# Empty dependencies file for kcoup_npb_common.
# This may be replaced when dependencies are built.
