file(REMOVE_RECURSE
  "CMakeFiles/kcoup_npb_common.dir/block5.cpp.o"
  "CMakeFiles/kcoup_npb_common.dir/block5.cpp.o.d"
  "CMakeFiles/kcoup_npb_common.dir/blocktri.cpp.o"
  "CMakeFiles/kcoup_npb_common.dir/blocktri.cpp.o.d"
  "CMakeFiles/kcoup_npb_common.dir/penta.cpp.o"
  "CMakeFiles/kcoup_npb_common.dir/penta.cpp.o.d"
  "libkcoup_npb_common.a"
  "libkcoup_npb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kcoup_npb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
