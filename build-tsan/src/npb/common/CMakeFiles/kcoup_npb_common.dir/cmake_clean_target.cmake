file(REMOVE_RECURSE
  "libkcoup_npb_common.a"
)
