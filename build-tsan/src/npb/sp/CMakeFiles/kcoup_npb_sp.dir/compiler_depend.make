# Empty compiler generated dependencies file for kcoup_npb_sp.
# This may be replaced when dependencies are built.
