file(REMOVE_RECURSE
  "CMakeFiles/kcoup_npb_sp.dir/sp_app.cpp.o"
  "CMakeFiles/kcoup_npb_sp.dir/sp_app.cpp.o.d"
  "CMakeFiles/kcoup_npb_sp.dir/sp_measured.cpp.o"
  "CMakeFiles/kcoup_npb_sp.dir/sp_measured.cpp.o.d"
  "CMakeFiles/kcoup_npb_sp.dir/sp_model.cpp.o"
  "CMakeFiles/kcoup_npb_sp.dir/sp_model.cpp.o.d"
  "CMakeFiles/kcoup_npb_sp.dir/sp_timed.cpp.o"
  "CMakeFiles/kcoup_npb_sp.dir/sp_timed.cpp.o.d"
  "libkcoup_npb_sp.a"
  "libkcoup_npb_sp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kcoup_npb_sp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
