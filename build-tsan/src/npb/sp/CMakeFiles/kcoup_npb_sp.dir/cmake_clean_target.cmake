file(REMOVE_RECURSE
  "libkcoup_npb_sp.a"
)
