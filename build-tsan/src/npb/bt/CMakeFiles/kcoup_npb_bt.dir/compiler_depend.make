# Empty compiler generated dependencies file for kcoup_npb_bt.
# This may be replaced when dependencies are built.
