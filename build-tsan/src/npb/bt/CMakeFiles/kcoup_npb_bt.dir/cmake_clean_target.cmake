file(REMOVE_RECURSE
  "libkcoup_npb_bt.a"
)
