file(REMOVE_RECURSE
  "CMakeFiles/kcoup_npb_bt.dir/bt_app.cpp.o"
  "CMakeFiles/kcoup_npb_bt.dir/bt_app.cpp.o.d"
  "CMakeFiles/kcoup_npb_bt.dir/bt_measured.cpp.o"
  "CMakeFiles/kcoup_npb_bt.dir/bt_measured.cpp.o.d"
  "CMakeFiles/kcoup_npb_bt.dir/bt_model.cpp.o"
  "CMakeFiles/kcoup_npb_bt.dir/bt_model.cpp.o.d"
  "CMakeFiles/kcoup_npb_bt.dir/bt_timed.cpp.o"
  "CMakeFiles/kcoup_npb_bt.dir/bt_timed.cpp.o.d"
  "libkcoup_npb_bt.a"
  "libkcoup_npb_bt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kcoup_npb_bt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
