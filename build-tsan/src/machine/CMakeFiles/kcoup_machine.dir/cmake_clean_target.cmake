file(REMOVE_RECURSE
  "libkcoup_machine.a"
)
