file(REMOVE_RECURSE
  "CMakeFiles/kcoup_machine.dir/cache_model.cpp.o"
  "CMakeFiles/kcoup_machine.dir/cache_model.cpp.o.d"
  "CMakeFiles/kcoup_machine.dir/machine.cpp.o"
  "CMakeFiles/kcoup_machine.dir/machine.cpp.o.d"
  "CMakeFiles/kcoup_machine.dir/presets.cpp.o"
  "CMakeFiles/kcoup_machine.dir/presets.cpp.o.d"
  "libkcoup_machine.a"
  "libkcoup_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kcoup_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
