# Empty compiler generated dependencies file for kcoup_machine.
# This may be replaced when dependencies are built.
