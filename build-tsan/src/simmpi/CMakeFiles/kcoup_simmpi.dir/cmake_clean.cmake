file(REMOVE_RECURSE
  "CMakeFiles/kcoup_simmpi.dir/simmpi.cpp.o"
  "CMakeFiles/kcoup_simmpi.dir/simmpi.cpp.o.d"
  "libkcoup_simmpi.a"
  "libkcoup_simmpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kcoup_simmpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
