# Empty dependencies file for kcoup_simmpi.
# This may be replaced when dependencies are built.
