file(REMOVE_RECURSE
  "libkcoup_simmpi.a"
)
