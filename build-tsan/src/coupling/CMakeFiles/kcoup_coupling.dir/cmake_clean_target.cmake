file(REMOVE_RECURSE
  "libkcoup_coupling.a"
)
