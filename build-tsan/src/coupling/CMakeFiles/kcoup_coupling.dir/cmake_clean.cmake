file(REMOVE_RECURSE
  "CMakeFiles/kcoup_coupling.dir/__/campaign/campaign.cpp.o"
  "CMakeFiles/kcoup_coupling.dir/__/campaign/campaign.cpp.o.d"
  "CMakeFiles/kcoup_coupling.dir/__/campaign/executor.cpp.o"
  "CMakeFiles/kcoup_coupling.dir/__/campaign/executor.cpp.o.d"
  "CMakeFiles/kcoup_coupling.dir/__/campaign/planner.cpp.o"
  "CMakeFiles/kcoup_coupling.dir/__/campaign/planner.cpp.o.d"
  "CMakeFiles/kcoup_coupling.dir/analysis.cpp.o"
  "CMakeFiles/kcoup_coupling.dir/analysis.cpp.o.d"
  "CMakeFiles/kcoup_coupling.dir/database.cpp.o"
  "CMakeFiles/kcoup_coupling.dir/database.cpp.o.d"
  "CMakeFiles/kcoup_coupling.dir/measurement.cpp.o"
  "CMakeFiles/kcoup_coupling.dir/measurement.cpp.o.d"
  "CMakeFiles/kcoup_coupling.dir/parallel_measurement.cpp.o"
  "CMakeFiles/kcoup_coupling.dir/parallel_measurement.cpp.o.d"
  "CMakeFiles/kcoup_coupling.dir/scaling_model.cpp.o"
  "CMakeFiles/kcoup_coupling.dir/scaling_model.cpp.o.d"
  "CMakeFiles/kcoup_coupling.dir/study.cpp.o"
  "CMakeFiles/kcoup_coupling.dir/study.cpp.o.d"
  "CMakeFiles/kcoup_coupling.dir/synthetic.cpp.o"
  "CMakeFiles/kcoup_coupling.dir/synthetic.cpp.o.d"
  "libkcoup_coupling.a"
  "libkcoup_coupling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kcoup_coupling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
