
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/campaign/campaign.cpp" "src/coupling/CMakeFiles/kcoup_coupling.dir/__/campaign/campaign.cpp.o" "gcc" "src/coupling/CMakeFiles/kcoup_coupling.dir/__/campaign/campaign.cpp.o.d"
  "/root/repo/src/campaign/executor.cpp" "src/coupling/CMakeFiles/kcoup_coupling.dir/__/campaign/executor.cpp.o" "gcc" "src/coupling/CMakeFiles/kcoup_coupling.dir/__/campaign/executor.cpp.o.d"
  "/root/repo/src/campaign/planner.cpp" "src/coupling/CMakeFiles/kcoup_coupling.dir/__/campaign/planner.cpp.o" "gcc" "src/coupling/CMakeFiles/kcoup_coupling.dir/__/campaign/planner.cpp.o.d"
  "/root/repo/src/coupling/analysis.cpp" "src/coupling/CMakeFiles/kcoup_coupling.dir/analysis.cpp.o" "gcc" "src/coupling/CMakeFiles/kcoup_coupling.dir/analysis.cpp.o.d"
  "/root/repo/src/coupling/database.cpp" "src/coupling/CMakeFiles/kcoup_coupling.dir/database.cpp.o" "gcc" "src/coupling/CMakeFiles/kcoup_coupling.dir/database.cpp.o.d"
  "/root/repo/src/coupling/measurement.cpp" "src/coupling/CMakeFiles/kcoup_coupling.dir/measurement.cpp.o" "gcc" "src/coupling/CMakeFiles/kcoup_coupling.dir/measurement.cpp.o.d"
  "/root/repo/src/coupling/parallel_measurement.cpp" "src/coupling/CMakeFiles/kcoup_coupling.dir/parallel_measurement.cpp.o" "gcc" "src/coupling/CMakeFiles/kcoup_coupling.dir/parallel_measurement.cpp.o.d"
  "/root/repo/src/coupling/scaling_model.cpp" "src/coupling/CMakeFiles/kcoup_coupling.dir/scaling_model.cpp.o" "gcc" "src/coupling/CMakeFiles/kcoup_coupling.dir/scaling_model.cpp.o.d"
  "/root/repo/src/coupling/study.cpp" "src/coupling/CMakeFiles/kcoup_coupling.dir/study.cpp.o" "gcc" "src/coupling/CMakeFiles/kcoup_coupling.dir/study.cpp.o.d"
  "/root/repo/src/coupling/synthetic.cpp" "src/coupling/CMakeFiles/kcoup_coupling.dir/synthetic.cpp.o" "gcc" "src/coupling/CMakeFiles/kcoup_coupling.dir/synthetic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/machine/CMakeFiles/kcoup_machine.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/simmpi/CMakeFiles/kcoup_simmpi.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/report/CMakeFiles/kcoup_report.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
