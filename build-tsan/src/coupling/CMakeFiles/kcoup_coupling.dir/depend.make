# Empty dependencies file for kcoup_coupling.
# This may be replaced when dependencies are built.
