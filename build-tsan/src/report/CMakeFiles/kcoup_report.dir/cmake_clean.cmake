file(REMOVE_RECURSE
  "CMakeFiles/kcoup_report.dir/table.cpp.o"
  "CMakeFiles/kcoup_report.dir/table.cpp.o.d"
  "libkcoup_report.a"
  "libkcoup_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kcoup_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
