file(REMOVE_RECURSE
  "libkcoup_report.a"
)
