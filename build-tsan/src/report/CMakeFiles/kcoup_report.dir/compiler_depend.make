# Empty compiler generated dependencies file for kcoup_report.
# This may be replaced when dependencies are built.
