# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-tsan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/test_trace[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_machine[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_simmpi[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_block5[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_penta[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_blocktri[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_npb_common[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_coupling[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_report[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_npb_apps[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_modeled_apps[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_database[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_model_vs_numeric[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_parallel_study[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_parallel_sp_lu[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_simmpi_nonblocking[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_scaling_model[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_machine_properties[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_simmpi_fuzz[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_coupling_properties[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_synthetic[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_npb_class_s[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_bt_measured[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_thread_pool[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_campaign[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_database_fuzz[1]_include.cmake")
