file(REMOVE_RECURSE
  "CMakeFiles/test_model_vs_numeric.dir/test_model_vs_numeric.cpp.o"
  "CMakeFiles/test_model_vs_numeric.dir/test_model_vs_numeric.cpp.o.d"
  "test_model_vs_numeric"
  "test_model_vs_numeric.pdb"
  "test_model_vs_numeric[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_vs_numeric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
