# Empty dependencies file for test_model_vs_numeric.
# This may be replaced when dependencies are built.
