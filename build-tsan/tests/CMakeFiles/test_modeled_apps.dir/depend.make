# Empty dependencies file for test_modeled_apps.
# This may be replaced when dependencies are built.
