file(REMOVE_RECURSE
  "CMakeFiles/test_modeled_apps.dir/test_modeled_apps.cpp.o"
  "CMakeFiles/test_modeled_apps.dir/test_modeled_apps.cpp.o.d"
  "test_modeled_apps"
  "test_modeled_apps.pdb"
  "test_modeled_apps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_modeled_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
