# Empty dependencies file for test_parallel_study.
# This may be replaced when dependencies are built.
