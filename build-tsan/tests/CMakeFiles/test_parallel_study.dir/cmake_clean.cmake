file(REMOVE_RECURSE
  "CMakeFiles/test_parallel_study.dir/test_parallel_study.cpp.o"
  "CMakeFiles/test_parallel_study.dir/test_parallel_study.cpp.o.d"
  "test_parallel_study"
  "test_parallel_study.pdb"
  "test_parallel_study[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallel_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
