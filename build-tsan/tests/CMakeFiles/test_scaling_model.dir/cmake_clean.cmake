file(REMOVE_RECURSE
  "CMakeFiles/test_scaling_model.dir/test_scaling_model.cpp.o"
  "CMakeFiles/test_scaling_model.dir/test_scaling_model.cpp.o.d"
  "test_scaling_model"
  "test_scaling_model.pdb"
  "test_scaling_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scaling_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
