# Empty compiler generated dependencies file for test_scaling_model.
# This may be replaced when dependencies are built.
