file(REMOVE_RECURSE
  "CMakeFiles/test_coupling.dir/test_coupling.cpp.o"
  "CMakeFiles/test_coupling.dir/test_coupling.cpp.o.d"
  "test_coupling"
  "test_coupling.pdb"
  "test_coupling[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coupling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
