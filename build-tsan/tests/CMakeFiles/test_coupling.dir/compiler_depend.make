# Empty compiler generated dependencies file for test_coupling.
# This may be replaced when dependencies are built.
