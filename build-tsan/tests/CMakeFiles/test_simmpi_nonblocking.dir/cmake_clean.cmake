file(REMOVE_RECURSE
  "CMakeFiles/test_simmpi_nonblocking.dir/test_simmpi_nonblocking.cpp.o"
  "CMakeFiles/test_simmpi_nonblocking.dir/test_simmpi_nonblocking.cpp.o.d"
  "test_simmpi_nonblocking"
  "test_simmpi_nonblocking.pdb"
  "test_simmpi_nonblocking[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simmpi_nonblocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
