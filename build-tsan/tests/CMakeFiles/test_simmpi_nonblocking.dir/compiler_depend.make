# Empty compiler generated dependencies file for test_simmpi_nonblocking.
# This may be replaced when dependencies are built.
