# Empty compiler generated dependencies file for test_parallel_sp_lu.
# This may be replaced when dependencies are built.
