file(REMOVE_RECURSE
  "CMakeFiles/test_parallel_sp_lu.dir/test_parallel_sp_lu.cpp.o"
  "CMakeFiles/test_parallel_sp_lu.dir/test_parallel_sp_lu.cpp.o.d"
  "test_parallel_sp_lu"
  "test_parallel_sp_lu.pdb"
  "test_parallel_sp_lu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallel_sp_lu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
