# Empty dependencies file for test_npb_apps.
# This may be replaced when dependencies are built.
