file(REMOVE_RECURSE
  "CMakeFiles/test_npb_apps.dir/test_npb_apps.cpp.o"
  "CMakeFiles/test_npb_apps.dir/test_npb_apps.cpp.o.d"
  "test_npb_apps"
  "test_npb_apps.pdb"
  "test_npb_apps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_npb_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
