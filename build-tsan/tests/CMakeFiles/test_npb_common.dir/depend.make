# Empty dependencies file for test_npb_common.
# This may be replaced when dependencies are built.
