file(REMOVE_RECURSE
  "CMakeFiles/test_npb_common.dir/test_npb_common.cpp.o"
  "CMakeFiles/test_npb_common.dir/test_npb_common.cpp.o.d"
  "test_npb_common"
  "test_npb_common.pdb"
  "test_npb_common[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_npb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
