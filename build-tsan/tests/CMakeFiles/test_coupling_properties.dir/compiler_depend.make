# Empty compiler generated dependencies file for test_coupling_properties.
# This may be replaced when dependencies are built.
