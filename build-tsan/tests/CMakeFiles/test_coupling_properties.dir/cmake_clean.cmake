file(REMOVE_RECURSE
  "CMakeFiles/test_coupling_properties.dir/test_coupling_properties.cpp.o"
  "CMakeFiles/test_coupling_properties.dir/test_coupling_properties.cpp.o.d"
  "test_coupling_properties"
  "test_coupling_properties.pdb"
  "test_coupling_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coupling_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
