# Empty compiler generated dependencies file for test_bt_measured.
# This may be replaced when dependencies are built.
