file(REMOVE_RECURSE
  "CMakeFiles/test_bt_measured.dir/test_bt_measured.cpp.o"
  "CMakeFiles/test_bt_measured.dir/test_bt_measured.cpp.o.d"
  "test_bt_measured"
  "test_bt_measured.pdb"
  "test_bt_measured[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bt_measured.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
