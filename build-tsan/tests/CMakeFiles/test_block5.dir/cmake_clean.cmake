file(REMOVE_RECURSE
  "CMakeFiles/test_block5.dir/test_block5.cpp.o"
  "CMakeFiles/test_block5.dir/test_block5.cpp.o.d"
  "test_block5"
  "test_block5.pdb"
  "test_block5[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_block5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
