# Empty compiler generated dependencies file for test_block5.
# This may be replaced when dependencies are built.
