# Empty dependencies file for test_npb_class_s.
# This may be replaced when dependencies are built.
