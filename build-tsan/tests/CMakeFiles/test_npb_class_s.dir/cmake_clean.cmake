file(REMOVE_RECURSE
  "CMakeFiles/test_npb_class_s.dir/test_npb_class_s.cpp.o"
  "CMakeFiles/test_npb_class_s.dir/test_npb_class_s.cpp.o.d"
  "test_npb_class_s"
  "test_npb_class_s.pdb"
  "test_npb_class_s[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_npb_class_s.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
