# Empty dependencies file for test_simmpi_fuzz.
# This may be replaced when dependencies are built.
