file(REMOVE_RECURSE
  "CMakeFiles/test_simmpi_fuzz.dir/test_simmpi_fuzz.cpp.o"
  "CMakeFiles/test_simmpi_fuzz.dir/test_simmpi_fuzz.cpp.o.d"
  "test_simmpi_fuzz"
  "test_simmpi_fuzz.pdb"
  "test_simmpi_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simmpi_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
