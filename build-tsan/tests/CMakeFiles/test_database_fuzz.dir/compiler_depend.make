# Empty compiler generated dependencies file for test_database_fuzz.
# This may be replaced when dependencies are built.
