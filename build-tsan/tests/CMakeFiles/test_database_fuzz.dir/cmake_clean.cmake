file(REMOVE_RECURSE
  "CMakeFiles/test_database_fuzz.dir/test_database_fuzz.cpp.o"
  "CMakeFiles/test_database_fuzz.dir/test_database_fuzz.cpp.o.d"
  "test_database_fuzz"
  "test_database_fuzz.pdb"
  "test_database_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_database_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
