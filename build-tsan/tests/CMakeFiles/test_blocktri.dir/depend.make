# Empty dependencies file for test_blocktri.
# This may be replaced when dependencies are built.
