file(REMOVE_RECURSE
  "CMakeFiles/test_blocktri.dir/test_blocktri.cpp.o"
  "CMakeFiles/test_blocktri.dir/test_blocktri.cpp.o.d"
  "test_blocktri"
  "test_blocktri.pdb"
  "test_blocktri[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_blocktri.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
