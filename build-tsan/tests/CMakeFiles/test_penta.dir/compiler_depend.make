# Empty compiler generated dependencies file for test_penta.
# This may be replaced when dependencies are built.
