file(REMOVE_RECURSE
  "CMakeFiles/test_penta.dir/test_penta.cpp.o"
  "CMakeFiles/test_penta.dir/test_penta.cpp.o.d"
  "test_penta"
  "test_penta.pdb"
  "test_penta[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_penta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
