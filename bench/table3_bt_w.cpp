// Regenerates paper Tables 3a and 3b: NPB BT, Class W (32^3, 200 iterations)
// on 4/9/16/25 processors of the modeled IBM SP.  Table 3a reports the
// 3-kernel chain couplings; Table 3b the prediction comparison.
//
// Paper reference values: all 3-chain couplings are strongly constructive
// (~0.73-0.76) and nearly constant across processor counts, because the
// per-process data no longer fits L1 but fits L2 (§4.1.2).  Predictions:
// 3-kernel coupling avg error 1.42 % vs summation 22.42 %.

#include "bench/bench_util.hpp"
#include "bench/npb_study.hpp"
#include "npb/bt/bt_model.hpp"

int main() {
  using namespace kcoup;

  const std::vector<int> procs{4, 9, 16, 25};
  const auto make = [](int p, const machine::MachineConfig& cfg) {
    return npb::bt::make_modeled_bt(npb::ProblemClass::kW, p, cfg);
  };
  const bench::StudyAcrossProcs study = bench::study_across_procs(
      make, procs, {3}, machine::ibm_sp_p2sc());

  bench::print_coupling_table(
      "Table 3a: Coupling values for BT three kernels with Class W", study, 3);
  bench::print_prediction_table(
      "Table 3b: Comparison of execution times for BT with Class W using "
      "three kernels",
      study);
  bench::print_error_summary(
      "Average relative errors (paper: summation 22.42 %, 3-kernel coupling "
      "1.42 %):",
      study);
  bench::print_shape_check("BT Class W", study);
  return 0;
}
