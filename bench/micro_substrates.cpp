// Google-benchmark microbenchmarks of the substrates themselves: how fast
// the machine model prices work, how fast the deterministic message-passing
// runtime moves messages, and the throughput of the two line solvers.
// These guard against performance regressions in the simulation substrate
// (a full Class B study prices ~10^5 kernel invocations).

#include <benchmark/benchmark.h>

#include <random>
#include <vector>

#include "coupling/study.hpp"
#include "machine/machine.hpp"
#include "npb/bt/bt_model.hpp"
#include "npb/common/blocktri.hpp"
#include "npb/common/penta.hpp"
#include "simmpi/simmpi.hpp"

namespace {

using namespace kcoup;

void BM_MachineExecute(benchmark::State& state) {
  machine::Machine m(machine::ibm_sp_p2sc());
  const auto r1 = m.register_region("a", 1 << 20);
  const auto r2 = m.register_region("b", 1 << 22);
  machine::WorkProfile p;
  p.kernel = 1;
  p.flops = 1e6;
  p.accesses = {
      machine::RegionAccess{r1, machine::AccessKind::kRead, 1 << 20, 1.0},
      machine::RegionAccess{r2, machine::AccessKind::kWrite, 1 << 22},
  };
  p.pipeline_stages = 32;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.execute_seconds(p));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MachineExecute);

void BM_CouplingStudyBtClassS(benchmark::State& state) {
  for (auto _ : state) {
    auto modeled = npb::bt::make_modeled_bt(npb::ProblemClass::kS, 4,
                                            machine::ibm_sp_p2sc());
    const coupling::StudyOptions options{{2}, {}};
    benchmark::DoNotOptimize(coupling::run_study(modeled->app(), options));
  }
}
BENCHMARK(BM_CouplingStudyBtClassS);

void BM_SimmpiPingPong(benchmark::State& state) {
  const auto msgs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const simmpi::RunResult r =
        simmpi::run(2, {}, [msgs](simmpi::Comm& c) {
          std::vector<double> buf(64);
          for (int i = 0; i < msgs; ++i) {
            if (c.rank() == 0) {
              c.send<double>(1, 0, buf);
              c.recv<double>(1, 1, buf);
            } else {
              c.recv<double>(0, 0, buf);
              c.send<double>(0, 1, buf);
            }
          }
        });
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * 2 * msgs);
}
BENCHMARK(BM_SimmpiPingPong)->Arg(64)->Arg(512);

void BM_BlockTriSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::mt19937 rng(5);
  std::uniform_real_distribution<double> dist(-0.3, 0.3);
  std::vector<npb::BlockTriRow> rows(n);
  for (std::size_t m = 0; m < n; ++m) {
    for (auto& v : rows[m].a) v = m > 0 ? dist(rng) : 0.0;
    for (auto& v : rows[m].c) v = m + 1 < n ? dist(rng) : 0.0;
    for (auto& v : rows[m].b) v = dist(rng);
    for (int i = 0; i < 5; ++i) {
      rows[m].b[static_cast<std::size_t>(i * 5 + i)] += 5.0;
    }
    for (auto& v : rows[m].r) v = dist(rng);
  }
  std::vector<npb::Vec5> x(n);
  std::vector<npb::BlockTriState> scratch(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(npb::blocktri_solve_line(rows, x, scratch));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_BlockTriSolve)->Arg(64)->Arg(256);

void BM_PentaSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::mt19937 rng(5);
  std::uniform_real_distribution<double> dist(-0.5, 0.5);
  std::vector<npb::PentaRow> rows(n);
  for (std::size_t m = 0; m < n; ++m) {
    npb::PentaRow& r = rows[m];
    r.a = m >= 2 ? dist(rng) : 0.0;
    r.b = m >= 1 ? dist(rng) : 0.0;
    r.d = m + 1 < n ? dist(rng) : 0.0;
    r.e = m + 2 < n ? dist(rng) : 0.0;
    r.c = 3.0;
    r.r = dist(rng);
  }
  std::vector<double> x(n);
  std::vector<npb::PentaState> scratch(n);
  for (auto _ : state) {
    npb::penta_solve_line(rows, x, scratch);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_PentaSolve)->Arg(64)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
