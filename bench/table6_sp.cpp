// Regenerates paper Tables 6a/6b/6c: NPB SP, Classes W (36^3), A (64^3) and
// B (102^3) on 4/9/16/25 processors of the modeled IBM SP, comparing the
// actual modeled time against the summation predictor and the 4- and
// 5-kernel coupling predictors.
//
// Paper reference averages: Class W summation 15.95 % vs coupling 1.63 %
// (4 kernels) / 0.70 % (5 kernels); Class A 20.54 % vs 1.97 % / 1.18 %;
// Class B worst coupling error 1.85 % vs best summation error 18.61 %.

#include "bench/bench_util.hpp"
#include "bench/npb_study.hpp"
#include "npb/sp/sp_model.hpp"

int main() {
  using namespace kcoup;

  const std::vector<int> procs{4, 9, 16, 25};
  const struct {
    npb::ProblemClass cls;
    const char* table;
    const char* paper;
  } cases[] = {
      {npb::ProblemClass::kW, "Table 6a: Comparison of execution times for "
                              "SP with Class W",
       "paper: summation 15.95 %, coupling 1.63 % (q=4), 0.70 % (q=5)"},
      {npb::ProblemClass::kA, "Table 6b: Comparison of execution times for "
                              "SP with Class A",
       "paper: summation 20.54 %, coupling 1.97 % (q=4), 1.18 % (q=5)"},
      {npb::ProblemClass::kB, "Table 6c: Comparison of execution times for "
                              "SP with Class B",
       "paper: worst coupling 1.85 % vs best summation 18.61 %"},
  };

  for (const auto& c : cases) {
    const auto make = [&](int p, const machine::MachineConfig& cfg) {
      return npb::sp::make_modeled_sp(c.cls, p, cfg);
    };
    const bench::StudyAcrossProcs study = bench::study_across_procs(
        make, procs, {4, 5}, machine::ibm_sp_p2sc());
    if (c.cls == npb::ProblemClass::kA) {
      bench::print_coupling_table(
          "Supplementary (not tabulated in the paper, which reports only "
          "prediction\ntables for SP \u00a74.2): SP Class A 4-kernel "
          "coupling values",
          study, 4);
    }
    bench::print_prediction_table(c.table, study);
    bench::print_error_summary(std::string("Average relative errors (") +
                                   c.paper + "):",
                               study);
    bench::print_shape_check(
        std::string("SP Class ") + npb::to_string(c.cls), study);
  }
  return 0;
}
