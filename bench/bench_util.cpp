#include "bench/bench_util.hpp"

#include <cstdio>
#include <iostream>

#include "report/table.hpp"

namespace kcoup::bench {
namespace {

const coupling::ChainLengthResult* find_length(
    const coupling::StudyResult& r, std::size_t q) {
  for (const auto& cl : r.by_length) {
    if (cl.length == q) return &cl;
  }
  return nullptr;
}

}  // namespace

void print_coupling_table(const std::string& title,
                          const StudyAcrossProcs& study, std::size_t q) {
  report::Table t(title);
  std::vector<std::string> header{"Kernel chain"};
  for (int p : study.procs) header.push_back(std::to_string(p) + " procs");
  t.set_header(std::move(header));

  if (study.results.empty()) return;
  const auto* first = find_length(study.results.front(), q);
  if (first == nullptr) return;
  for (std::size_t c = 0; c < first->chains.size(); ++c) {
    std::vector<std::string> row{first->chains[c].label};
    for (const auto& r : study.results) {
      const auto* cl = find_length(r, q);
      row.push_back(report::format_coupling(cl->chains[c].coupling()));
    }
    t.add_row(std::move(row));
  }
  std::cout << t.to_string() << '\n';
}

void print_prediction_table(const std::string& title,
                            const StudyAcrossProcs& study) {
  report::Table t(title);
  std::vector<std::string> header{"Predictor"};
  for (int p : study.procs) header.push_back(std::to_string(p) + " procs");
  t.set_header(std::move(header));

  std::vector<std::string> actual{"Actual"};
  std::vector<std::string> summation{"Summation"};
  for (const auto& r : study.results) {
    actual.push_back(report::format_seconds(r.actual_s));
    summation.push_back(
        report::format_prediction(r.summation_s, r.summation_error));
  }
  t.add_row(std::move(actual));
  t.add_row(std::move(summation));

  if (!study.results.empty()) {
    for (const auto& cl0 : study.results.front().by_length) {
      std::vector<std::string> row{"Coupling: " + std::to_string(cl0.length) +
                                   " kernels"};
      for (const auto& r : study.results) {
        const auto* cl = find_length(r, cl0.length);
        row.push_back(
            report::format_prediction(cl->prediction_s, cl->relative_error));
      }
      t.add_row(std::move(row));
    }
  }
  std::cout << t.to_string() << '\n';
}

double mean_summation_error(const StudyAcrossProcs& study) {
  double s = 0.0;
  for (const auto& r : study.results) s += r.summation_error;
  return study.results.empty() ? 0.0
                               : s / static_cast<double>(study.results.size());
}

double mean_coupling_error(const StudyAcrossProcs& study, std::size_t q) {
  double s = 0.0;
  std::size_t n = 0;
  for (const auto& r : study.results) {
    if (const auto* cl = find_length(r, q)) {
      s += cl->relative_error;
      ++n;
    }
  }
  return n ? s / static_cast<double>(n) : 0.0;
}

void print_error_summary(const std::string& title,
                         const StudyAcrossProcs& study) {
  std::printf("%s\n", title.c_str());
  std::printf("  summation predictor: average relative error %s\n",
              report::format_percent(mean_summation_error(study)).c_str());
  if (!study.results.empty()) {
    for (const auto& cl : study.results.front().by_length) {
      std::printf("  coupling (%zu kernels): average relative error %s\n",
                  cl.length,
                  report::format_percent(
                      mean_coupling_error(study, cl.length)).c_str());
    }
  }
  std::printf("\n");
}

void print_shape_check(const std::string& what,
                       const StudyAcrossProcs& study) {
  const double sum_err = mean_summation_error(study);
  double best_coupling = sum_err;
  std::size_t best_q = 0;
  if (!study.results.empty()) {
    for (const auto& cl : study.results.front().by_length) {
      const double e = mean_coupling_error(study, cl.length);
      if (best_q == 0 || e < best_coupling) {
        best_coupling = e;
        best_q = cl.length;
      }
    }
  }
  std::printf(
      "SHAPE CHECK [%s]: coupling(best q=%zu) avg err %s vs summation %s -> "
      "%s\n\n",
      what.c_str(), best_q,
      report::format_percent(best_coupling).c_str(),
      report::format_percent(sum_err).c_str(),
      best_coupling < sum_err ? "coupling predictor wins (as in paper)"
                              : "MISMATCH: summation wins");
}

}  // namespace kcoup::bench
