// Extension bench: representative-rank analytic model vs timed parallel
// simulation of BT.
//
// The paper-table benches price one representative rank with an analytic
// synchronisation model.  This bench cross-checks them against the timed
// parallel path, where every rank prices its own subdomain, the sweeps
// really serialise through simmpi messages, and load imbalance emerges from
// per-rank jitter — two independent routes to the same coupling physics.

#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "coupling/study.hpp"
#include "machine/config.hpp"
#include "npb/bt/bt_model.hpp"
#include "npb/bt/bt_timed.hpp"
#include "npb/lu/lu_timed.hpp"
#include "npb/sp/sp_timed.hpp"
#include "report/table.hpp"

using namespace kcoup;

namespace {

void parallel_summary(const char* name,
                      const coupling::ParallelStudyResult& r) {
  std::printf("%s: actual %s s, summation err %s, coupling err %s -> %s\n",
              name, report::format_seconds(r.actual_s).c_str(),
              report::format_percent(r.summation_error).c_str(),
              report::format_percent(r.by_length[0].relative_error).c_str(),
              r.by_length[0].relative_error < r.summation_error
                  ? "coupling wins"
                  : "MISMATCH");
}

}  // namespace

int main() {
  const std::vector<int> procs{4, 9, 16};
  const int n = 32, iterations = 200;  // BT Class W
  const std::size_t q = 3;

  report::Table t("BT Class W: analytic representative-rank model vs timed "
                  "parallel simulation");
  t.set_header({"P", "actual (model)", "actual (parallel)",
                "summ err (model)", "summ err (parallel)",
                "coup err (model)", "coup err (parallel)"});

  for (int p : procs) {
    auto modeled =
        npb::bt::make_modeled_bt_grid(n, iterations, p, machine::ibm_sp_p2sc());
    const coupling::StudyOptions options{{q}, {}};
    const coupling::StudyResult m =
        coupling::run_study(modeled->app(), options);

    npb::bt::TimedBtOptions topt;
    topt.machine = machine::ibm_sp_p2sc();
    const coupling::ParallelStudyResult par =
        npb::bt::run_bt_parallel_study(n, iterations, p, topt, options);

    t.add_row({std::to_string(p), report::format_seconds(m.actual_s),
               report::format_seconds(par.actual_s),
               report::format_percent(m.summation_error),
               report::format_percent(par.summation_error),
               report::format_percent(m.by_length[0].relative_error),
               report::format_percent(par.by_length[0].relative_error)});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "Expectation: both paths agree on the winner (coupling predictor) and\n"
      "on the rough magnitude of the actual time; the parallel path runs\n"
      "somewhat longer at higher P because pipeline fill and emergent skew\n"
      "replace the analytic synchronisation terms.\n\n");

  std::printf("Timed parallel studies of the other two benchmarks:\n");
  {
    npb::sp::TimedSpOptions o;
    o.machine = machine::ibm_sp_p2sc();
    parallel_summary("SP n=36 P=9  (q=5)",
                     npb::sp::run_sp_parallel_study(
                         36, 400, 9, o, coupling::StudyOptions{{5}, {}}));
  }
  {
    npb::lu::TimedLuOptions o;
    o.machine = machine::ibm_sp_p2sc();
    parallel_summary("LU n=33 P=8  (q=3)",
                     npb::lu::run_lu_parallel_study(
                         33, 300, 8, o, coupling::StudyOptions{{3}, {}}));
    parallel_summary("LU n=64 P=32 (q=3)",
                     npb::lu::run_lu_parallel_study(
                         64, 250, 32, o, coupling::StudyOptions{{3}, {}}));
  }
  return 0;
}
