// Regenerates the paper's scaling finding (sections 4.1.4 and 6): "as the
// problem size and number of processors scale, the coupling values go
// through a finite number of major value changes that is dependent on the
// memory subsystem of the processor architecture."
//
// Two sweeps over the modeled BT application:
//   (a) fixed P = 4, grid size swept from 8 to 128: the mean pairwise
//       coupling plateaus between a small number of transitions that line
//       up with the per-process working set crossing the L1 and L2
//       capacities;
//   (b) fixed Class A grid, processor count swept over the squares up to
//       64: the same transitions appear as the per-process share shrinks.
//
// The harness prints the per-size/per-P mean coupling, the per-process
// working-set estimate, which cache level it fits, and the detected
// transition count (changes in mean coupling larger than a threshold).

#include <cstdio>
#include <string>
#include <vector>

#include "coupling/study.hpp"
#include "machine/config.hpp"
#include "npb/bt/bt_model.hpp"
#include "report/table.hpp"

namespace {

using namespace kcoup;

struct SweepPoint {
  int n = 0;
  int procs = 0;
  double mean_coupling = 0.0;
  std::size_t working_set = 0;
};

double mean_pair_coupling(int n, int procs) {
  auto modeled =
      npb::bt::make_modeled_bt_grid(n, 50, procs, machine::ibm_sp_p2sc());
  const coupling::StudyOptions options{{2}, {}};
  const coupling::StudyResult r = coupling::run_study(modeled->app(), options);
  double mean = 0.0;
  for (const auto& c : r.by_length[0].chains) mean += c.coupling();
  return mean / static_cast<double>(r.by_length[0].chains.size());
}

std::size_t per_process_working_set(int n, int procs) {
  // Three full fields of 5 doubles per point (u, rhs, forcing) plus the
  // y/z elimination-state volumes — matches the bt_model region sizes.
  int q = 1;
  while (q * q < procs) ++q;
  const std::size_t pts = static_cast<std::size_t>(n) *
                          static_cast<std::size_t>((n + q - 1) / q) *
                          static_cast<std::size_t>((n + q - 1) / q);
  return pts * (3 * 40 + 2 * 240);
}

const char* fit_level(std::size_t bytes, const machine::MachineConfig& cfg) {
  if (bytes <= cfg.cache[0].capacity_bytes) return "L1";
  if (bytes <= cfg.cache[1].capacity_bytes) return "L2";
  return "memory";
}

int count_transitions(const std::vector<SweepPoint>& pts, double threshold) {
  int transitions = 0;
  for (std::size_t i = 1; i < pts.size(); ++i) {
    if (std::abs(pts[i].mean_coupling - pts[i - 1].mean_coupling) > threshold) {
      ++transitions;
    }
  }
  return transitions;
}

void print_sweep(const char* title, const std::vector<SweepPoint>& pts,
                 bool by_size) {
  const machine::MachineConfig cfg = machine::ibm_sp_p2sc();
  report::Table t(title);
  t.set_header({by_size ? "grid n" : "processors", "mean pairwise coupling",
                "per-process working set", "fits in"});
  for (const auto& p : pts) {
    t.add_row({std::to_string(by_size ? p.n : p.procs),
               report::format_coupling(p.mean_coupling),
               std::to_string(p.working_set / 1024) + " KiB",
               fit_level(p.working_set, cfg)});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("  -> %d major coupling transitions (threshold 0.03)\n\n",
              count_transitions(pts, 0.03));
}

}  // namespace

int main() {
  std::printf(
      "Coupling-transition sweeps (paper sections 4.1.4 / 6): the coupling\n"
      "value undergoes a finite number of major changes as problem size and\n"
      "processor count scale through the memory hierarchy.\n\n");

  std::vector<SweepPoint> by_size;
  for (int n : {8, 10, 12, 16, 20, 24, 32, 40, 48, 64, 80, 96, 128}) {
    SweepPoint p;
    p.n = n;
    p.procs = 4;
    p.mean_coupling = mean_pair_coupling(n, 4);
    p.working_set = per_process_working_set(n, 4);
    by_size.push_back(p);
  }
  print_sweep("Sweep (a): BT pairwise coupling vs problem size (P = 4)",
              by_size, true);

  std::vector<SweepPoint> by_procs;
  for (int p : {1, 4, 9, 16, 25, 36, 49, 64}) {
    SweepPoint s;
    s.n = 64;
    s.procs = p;
    s.mean_coupling = mean_pair_coupling(64, p);
    s.working_set = per_process_working_set(64, p);
    by_procs.push_back(s);
  }
  print_sweep("Sweep (b): BT pairwise coupling vs processors (Class A grid)",
              by_procs, false);

  const int ta = count_transitions(by_size, 0.03);
  const int tb = count_transitions(by_procs, 0.03);
  std::printf(
      "SHAPE CHECK [transitions]: %d size-sweep and %d processor-sweep major "
      "changes -> %s\n",
      ta, tb,
      (ta >= 1 && ta <= 6 && tb >= 1 && tb <= 6)
          ? "finite, small transition count (as in paper)"
          : "MISMATCH: expected a handful of plateau changes");
  return 0;
}
