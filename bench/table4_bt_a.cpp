// Regenerates paper Tables 4a and 4b: NPB BT, Class A (64^3, 200 iterations)
// on 4/9/16/25 processors of the modeled IBM SP.  Table 4a reports the
// 4-kernel chain couplings; Table 4b the prediction comparison.
//
// Paper reference values: at 4 processors the per-process data is beyond the
// caches and coupling is barely constructive (~0.9-0.99); from 9 processors
// on the per-process data shrinks into L2 and couplings settle around
// 0.78-0.85 with little further change (§4.1.3).  Predictions: 4-kernel
// coupling avg error 0.79 % vs summation 21.80 %.

#include "bench/bench_util.hpp"
#include "bench/npb_study.hpp"
#include "npb/bt/bt_model.hpp"

int main() {
  using namespace kcoup;

  const std::vector<int> procs{4, 9, 16, 25};
  const auto make = [](int p, const machine::MachineConfig& cfg) {
    return npb::bt::make_modeled_bt(npb::ProblemClass::kA, p, cfg);
  };
  const bench::StudyAcrossProcs study = bench::study_across_procs(
      make, procs, {4}, machine::ibm_sp_p2sc());

  bench::print_coupling_table(
      "Table 4a: Coupling values for BT four kernels with Class A", study, 4);
  bench::print_prediction_table(
      "Table 4b: Comparison of execution times for BT with Class A", study);
  bench::print_error_summary(
      "Average relative errors (paper: summation 21.80 %, 4-kernel coupling "
      "0.79 %):",
      study);
  bench::print_shape_check("BT Class A", study);
  return 0;
}
