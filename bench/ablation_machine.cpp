// Ablation: which machine mechanism produces which coupling regime?
//
// DESIGN.md attributes the paper's three regimes to specific mechanisms:
//   * constructive coupling (W/A)  <- pipelined producer-fresh cache reuse,
//     which disappears without a second cache level to miss into;
//   * destructive coupling growth with P (S)  <- skew decorrelation at
//     synchronisation points;
//   * absolute communication growth  <- bandwidth contention.
// This bench re-runs the BT studies with each mechanism removed and shows
// the regimes collapsing accordingly.

#include <cstdio>
#include <vector>

#include "coupling/study.hpp"
#include "machine/config.hpp"
#include "npb/bt/bt_model.hpp"
#include "report/table.hpp"

namespace {

using namespace kcoup;

double mean_coupling(npb::ProblemClass cls, int procs, std::size_t q,
                     const machine::MachineConfig& cfg) {
  auto modeled = npb::bt::make_modeled_bt(cls, procs, cfg);
  const coupling::StudyOptions options{{q}, {}};
  const auto r = coupling::run_study(modeled->app(), options);
  double mean = 0.0;
  for (const auto& c : r.by_length[0].chains) mean += c.coupling();
  return mean / static_cast<double>(r.by_length[0].chains.size());
}

}  // namespace

int main() {
  const machine::MachineConfig base = machine::ibm_sp_p2sc();
  const machine::MachineConfig no_l2 = machine::without_l2(base);
  const machine::MachineConfig no_imb = machine::without_imbalance(base);
  const machine::MachineConfig no_cont = machine::without_contention(base);

  report::Table t("Ablation: mean BT coupling value per machine variant");
  t.set_header({"Configuration", "full machine", "no L2", "no imbalance",
                "no contention"});

  struct Row {
    const char* label;
    npb::ProblemClass cls;
    int procs;
    std::size_t q;
  };
  const Row rows[] = {
      {"Class S, P=16, q=2 (destructive regime)", npb::ProblemClass::kS, 16, 2},
      {"Class W, P=4, q=3 (constructive regime)", npb::ProblemClass::kW, 4, 3},
      {"Class A, P=9, q=4 (constructive regime)", npb::ProblemClass::kA, 9, 4},
  };
  for (const Row& r : rows) {
    t.add_row({r.label,
               report::format_coupling(mean_coupling(r.cls, r.procs, r.q, base)),
               report::format_coupling(mean_coupling(r.cls, r.procs, r.q, no_l2)),
               report::format_coupling(mean_coupling(r.cls, r.procs, r.q, no_imb)),
               report::format_coupling(
                   mean_coupling(r.cls, r.procs, r.q, no_cont))});
  }
  std::printf("%s\n", t.to_string().c_str());

  const double s_full = mean_coupling(npb::ProblemClass::kS, 16, 2, base);
  const double s_noimb = mean_coupling(npb::ProblemClass::kS, 16, 2, no_imb);
  const double w_full = mean_coupling(npb::ProblemClass::kW, 4, 3, base);
  std::printf(
      "SHAPE CHECK [machine ablation]: removing imbalance moves the Class S "
      "coupling\nfrom %.4f toward <= %.4f (%s), and the full machine keeps "
      "Class W constructive\n(%.4f < 1: %s).\n",
      s_full, s_noimb,
      s_noimb < s_full ? "as expected" : "MISMATCH",
      w_full, w_full < 1.0 ? "as expected" : "MISMATCH");
  return 0;
}
