// Extension bench: predicting configurations that were never run, by
// combining fitted per-kernel scaling models with reused coupling values —
// the full workflow the paper's section 3 sketches ("modelA"/"modelB"
// composed via the coupling coefficients) plus its section 6 future work.
//
// Protocol for BT:
//   1. Measure isolated kernel means on a training set of configurations
//      (classes S/W at P in {4, 9}) on the modeled machine.
//   2. Fit E_k(n, P) per kernel with the default NPB basis.
//   3. Measure coupling chains ONCE (class W at P = 9) into the database.
//   4. Predict class W at P in {16, 25} — configurations never measured —
//      as T = I * sum_k alpha_k E_k(n, P), and compare against the modeled
//      "actual" and against the model-only summation (alpha = 1).

#include <cstdio>
#include <vector>

#include "coupling/database.hpp"
#include "coupling/scaling_model.hpp"
#include "coupling/study.hpp"
#include "machine/config.hpp"
#include "npb/bt/bt_model.hpp"
#include "report/table.hpp"
#include "trace/stats.hpp"

using namespace kcoup;

namespace {

struct TrainingPoint {
  int n;
  int iterations;
  int procs;
};

}  // namespace

int main() {
  const machine::MachineConfig cfg = machine::ibm_sp_p2sc();
  const std::size_t q = 3;
  const int n_w = 32, iters_w = 200;  // BT Class W

  // --- 1. Training measurements: isolated means only.  The points stay in
  // the Class-W cache regime (the fitted basis is smooth; fitting across a
  // cache-capacity transition is exactly what the coupling transitions of
  // section 4.1.4 warn against).
  const std::vector<TrainingPoint> training{
      {20, 100, 4}, {20, 100, 9}, {24, 100, 4}, {24, 100, 9},
      {28, 150, 4}, {28, 150, 9}, {32, 200, 4}, {32, 200, 9},
      {40, 200, 4}, {40, 200, 9},
  };
  std::vector<std::vector<coupling::ScalingSample>> samples(5);
  coupling::CouplingDatabase db;
  for (const TrainingPoint& t : training) {
    auto modeled = npb::bt::make_modeled_bt_grid(t.n, t.iterations, t.procs, cfg);
    coupling::MeasurementHarness harness(&modeled->app(), {});
    const auto means = harness.all_isolated_means();
    for (std::size_t k = 0; k < means.size(); ++k) {
      samples[k].push_back({static_cast<double>(t.n),
                            static_cast<double>(t.procs), means[k]});
    }
    // --- 3. One chain-measured donor configuration. ----------------------
    if (t.n == n_w && t.procs == 9) {
      db.record("BT", "W", t.procs,
                coupling::measure_chains(harness, q, means));
    }
  }

  // --- 2. Fit per-kernel scaling models. -----------------------------------
  std::vector<coupling::KernelScalingModel> models;
  std::printf("Fitted per-kernel models (BT, basis {n^3/P, n^2/sqrt(P), "
              "log2 P, 1}):\n");
  const char* names[] = {"Copy_Faces", "X_Solve", "Y_Solve", "Z_Solve", "Add"};
  for (std::size_t k = 0; k < samples.size(); ++k) {
    models.push_back(coupling::KernelScalingModel::fit(
        coupling::ScalingBasis::npb_default(), samples[k]));
    std::printf("  %-10s  rms fit err %5.2f %%   E(n,P) = %s\n", names[k],
                100.0 * models[k].fit_rms_relative_error(),
                models[k].to_string().c_str());
  }
  std::printf("\n");

  // --- 4. Predict unseen configurations. -----------------------------------
  report::Table t("BT Class W predicted from fitted models + reused "
                  "couplings (no measurements at the target)");
  t.set_header({"P", "actual", "models+summation", "models+coupling(P=9)"});
  for (int p : {4, 9, 16, 25}) {
    auto modeled = npb::bt::make_modeled_bt_grid(n_w, iters_w, p, cfg);
    coupling::MeasurementHarness harness(&modeled->app(), {});
    const double actual = harness.actual_total();

    coupling::PredictionInputs in;
    for (const auto& m : models) {
      in.isolated_means.push_back(
          m.evaluate(static_cast<double>(n_w), static_cast<double>(p)));
    }
    in.iterations = iters_w;
    const double summ = coupling::summation_prediction(in);
    const auto donor = db.reuse_chains_for("BT", "W", p, q, 5);
    const double coup = coupling::reuse_prediction(in, donor);

    t.add_row({std::to_string(p), report::format_seconds(actual),
               report::format_prediction(summ,
                                          trace::relative_error(summ, actual)),
               report::format_prediction(
                   coup, trace::relative_error(coup, actual))});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "The models + coupling column uses zero measurements at the target\n"
      "configuration: per-kernel times are extrapolated from the fitted\n"
      "scaling models and the composition coefficients come from the P=9\n"
      "donor couplings.  Inside the training range (P = 4, 9) the composed\n"
      "prediction is accurate; at P = 16, 25 the per-process working set\n"
      "crosses a cache-capacity boundary and the smooth basis extrapolates\n"
      "poorly — the coupling composition still recovers several points of\n"
      "error, but the fitted models themselves become the bottleneck.\n"
      "This is the paper's own caveat from the other direction: both the\n"
      "coupling values AND the kernel models are regime-specific, valid\n"
      "between the finite transitions of section 4.1.4.\n");
  return 0;
}
