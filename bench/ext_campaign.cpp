// Extension bench: the measurement campaign runner (planner + executor).
//
// The paper's methodology needs one serial study per (application, class,
// processor count, chain length) cell; the campaign planner instead expands
// the whole sweep into atomic measurement tasks, deduplicates the tasks that
// several chain lengths share (isolated runs, the actual run, prologue and
// epilogue timings), and the executor runs the remainder on a worker pool.
// This bench quantifies both effects on a modeled BT/SP sweep: how many
// tasks deduplication removes, how many a warm coupling database removes on
// a second pass, and what the worker pool does to wall-clock time — while
// asserting that every configuration produces bit-identical predictions.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/executor.hpp"
#include "coupling/database.hpp"
#include "machine/config.hpp"
#include "npb/bt/bt_model.hpp"
#include "npb/sp/sp_model.hpp"
#include "report/table.hpp"

using namespace kcoup;

namespace {

campaign::CampaignSpec sweep_spec() {
  campaign::CampaignSpec spec;
  spec.chain_lengths = {2, 3};
  const machine::MachineConfig cfg = machine::ibm_sp_p2sc();
  for (int p : {4, 9, 16}) {
    spec.studies.push_back(campaign::CampaignStudy{
        "BT", "S", p, [p, cfg] {
          return campaign::own_app(
              npb::bt::make_modeled_bt(npb::ProblemClass::kS, p, cfg));
        }});
    spec.studies.push_back(campaign::CampaignStudy{
        "SP", "S", p, [p, cfg] {
          return campaign::own_app(
              npb::sp::make_modeled_sp(npb::ProblemClass::kS, p, cfg));
        }});
  }
  return spec;
}

bool identical(const std::vector<coupling::StudyResult>& a,
               const std::vector<coupling::StudyResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].actual_s != b[i].actual_s) return false;
    if (a[i].by_length.size() != b[i].by_length.size()) return false;
    for (std::size_t q = 0; q < a[i].by_length.size(); ++q) {
      if (a[i].by_length[q].prediction_s != b[i].by_length[q].prediction_s)
        return false;
      if (a[i].by_length[q].relative_error != b[i].by_length[q].relative_error)
        return false;
    }
  }
  return true;
}

std::string fmt_count(std::size_t n) { return std::to_string(n); }

std::string fmt_seconds(double s) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f s", s);
  return buf;
}

}  // namespace

int main() {
  const campaign::CampaignSpec spec = sweep_spec();

  report::Table t(
      "Campaign runner: dedup + worker pool on a BT/SP class-S sweep "
      "(6 cells x chains {2,3})");
  t.set_header({"run", "requested", "planned", "dedup", "cache hits",
                "executed", "wall"});

  const auto serial = campaign::run_campaign(spec, /*workers=*/1);
  t.add_row({"serial (1 worker)", fmt_count(serial.metrics.tasks_requested),
             fmt_count(serial.metrics.tasks_planned),
             fmt_count(serial.metrics.tasks_deduplicated),
             fmt_count(serial.metrics.cache_hits),
             fmt_count(serial.metrics.tasks_executed),
             fmt_seconds(serial.metrics.wall_s)});

  const auto pooled = campaign::run_campaign(spec, /*workers=*/8);
  t.add_row({"pooled (8 workers)", fmt_count(pooled.metrics.tasks_requested),
             fmt_count(pooled.metrics.tasks_planned),
             fmt_count(pooled.metrics.tasks_deduplicated),
             fmt_count(pooled.metrics.cache_hits),
             fmt_count(pooled.metrics.tasks_executed),
             fmt_seconds(pooled.metrics.wall_s)});

  // Second pass against a database warmed by a first pass: chain tasks are
  // served from the store, only the per-cell basics remain.
  coupling::CouplingDatabase db;
  (void)campaign::run_campaign(spec, /*workers=*/1, &db);
  const auto warm = campaign::run_campaign(spec, /*workers=*/8, &db);
  t.add_row({"pooled, warm db", fmt_count(warm.metrics.tasks_requested),
             fmt_count(warm.metrics.tasks_planned),
             fmt_count(warm.metrics.tasks_deduplicated),
             fmt_count(warm.metrics.cache_hits),
             fmt_count(warm.metrics.tasks_executed),
             fmt_seconds(warm.metrics.wall_s)});
  std::printf("%s\n", t.to_string().c_str());

  const bool pooled_ok = identical(serial.studies, pooled.studies);
  const bool warm_ok = identical(serial.studies, warm.studies);
  std::printf("pooled == serial: %s   warm-db pooled == serial: %s\n",
              pooled_ok ? "BIT-IDENTICAL" : "MISMATCH",
              warm_ok ? "BIT-IDENTICAL" : "MISMATCH");

  std::printf(
      "\nReading: the naive sweep would run one serial study per\n"
      "(cell, chain length); sharing isolated/actual/prologue/epilogue\n"
      "tasks across chain lengths removes the 'dedup' column outright, and\n"
      "a warm coupling database removes every chain task on top of that\n"
      "('cache hits').  The worker pool changes wall-clock only — results\n"
      "are asserted bit-identical to the serial path in all cases.\n");
  return (pooled_ok && warm_ok) ? 0 : 1;
}
