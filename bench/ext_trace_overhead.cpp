// Extension bench: span-tracing overhead.
//
// The tracer's contract is that instrumentation left compiled into the hot
// paths is free until someone turns it on: a disabled ScopedSpan costs one
// relaxed atomic load and a branch, with no clock read, no allocation and
// no zeroing of the annotation buffers.  This bench verifies that contract
// two ways and records the numbers in `BENCH_trace.json` so regressions in
// the disabled path (the one every production run pays) show up in the
// perf trajectory:
//
//  1. Micro: a compute kernel in a tight loop, bare vs. wrapped in a
//     disabled ScopedSpan vs. wrapped in an enabled one.  The disabled
//     overhead must stay under 1%; the enabled number is the cost of one
//     recorded span (clock reads + ring stores).
//  2. Macro: a full synthetic campaign with tracing off vs. on.  The traced
//     run must stay bit-identical to the untraced one — tracing observes
//     the campaign, it must never perturb its results.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/executor.hpp"
#include "coupling/synthetic.hpp"
#include "machine/config.hpp"
#include "obs/trace.hpp"
#include "report/table.hpp"

using namespace kcoup;

namespace {

constexpr std::uint64_t kIters = 2'000'000;
constexpr int kWorkSteps = 64;
constexpr int kRounds = 5;

/// A cheap integer kernel the optimizer cannot delete: ~kWorkSteps xorshift
/// steps, a few hundred ns — large enough that a sub-ns span check under 1%
/// is a meaningful bound, small enough that the bench stays fast.
inline std::uint64_t work(std::uint64_t x) {
  for (int i = 0; i < kWorkSteps; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
  }
  return x;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// ns per iteration of the bare kernel loop.
double time_bare(std::uint64_t& sink) {
  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t x = 0x9e3779b97f4a7c15ull;
  for (std::uint64_t i = 0; i < kIters; ++i) x = work(x);
  sink ^= x;
  return seconds_since(t0) * 1e9 / static_cast<double>(kIters);
}

/// ns per iteration with every iteration wrapped in a ScopedSpan (the
/// tracer's enable flag decides whether it records).
double time_spanned(std::uint64_t& sink) {
  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t x = 0x9e3779b97f4a7c15ull;
  for (std::uint64_t i = 0; i < kIters; ++i) {
    obs::ScopedSpan span("work", "bench");
    x = work(x);
  }
  sink ^= x;
  return seconds_since(t0) * 1e9 / static_cast<double>(kIters);
}

/// Best-of-n: the minimum is the least noisy estimate on a shared machine.
template <typename F>
double best_of(F&& f, std::uint64_t& sink) {
  double best = f(sink);
  for (int i = 1; i < kRounds; ++i) best = std::min(best, f(sink));
  return best;
}

/// Small synthetic campaign for the macro check.
campaign::CampaignSpec sweep_spec() {
  campaign::CampaignSpec spec;
  spec.chain_lengths = {2, 3};
  spec.measurement.repetitions = 2;
  spec.measurement.warmup = 0;
  const machine::MachineConfig cfg = machine::ibm_sp_p2sc();
  for (unsigned seed : {1u, 2u}) {
    coupling::SyntheticAppSpec app;
    app.kernels = 12;
    app.regions = 24;
    app.iterations = 4;
    app.ranks = 4;
    app.seed = seed;
    spec.studies.push_back(campaign::CampaignStudy{
        "SYN", "seed" + std::to_string(seed), 4, [app, cfg] {
          return campaign::own_app(coupling::make_synthetic_app(app, cfg));
        }});
  }
  return spec;
}

bool identical(const std::vector<coupling::StudyResult>& a,
               const std::vector<coupling::StudyResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].actual_s != b[i].actual_s) return false;
    if (a[i].isolated_means != b[i].isolated_means) return false;
    if (a[i].by_length.size() != b[i].by_length.size()) return false;
    for (std::size_t q = 0; q < a[i].by_length.size(); ++q) {
      if (a[i].by_length[q].prediction_s != b[i].by_length[q].prediction_s)
        return false;
    }
  }
  return true;
}

std::string fmt_ns(double ns) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f ns", ns);
  return buf;
}

}  // namespace

int main() {
  obs::Tracer& tracer = obs::Tracer::instance();
  std::uint64_t sink = 0;

  // Micro: bare vs. disabled-span vs. enabled-span.
  tracer.disable();
  const double bare_ns = best_of(time_bare, sink);
  const double disabled_ns = best_of(time_spanned, sink);
  tracer.enable();
  const double enabled_ns = best_of(time_spanned, sink);
  tracer.disable();
  const std::uint64_t recorded = tracer.spans_recorded();
  const std::uint64_t dropped = tracer.spans_dropped();
  tracer.clear();

  const double disabled_overhead_pct =
      bare_ns > 0.0 ? (disabled_ns - bare_ns) / bare_ns * 100.0 : 0.0;
  const double enabled_span_ns = enabled_ns - bare_ns;

  // Macro: a traced campaign must not perturb campaign results.
  const campaign::CampaignSpec spec = sweep_spec();
  const campaign::CampaignResult off = campaign::run_campaign(spec, 2);
  tracer.enable();
  const campaign::CampaignResult on = campaign::run_campaign(spec, 2);
  tracer.disable();
  const bool ok = identical(off.studies, on.studies);
  tracer.clear();

  report::Table t("Span tracing overhead (" + std::to_string(kIters) +
                  " iterations, " + std::to_string(kWorkSteps) +
                  "-step kernel, best of " + std::to_string(kRounds) + ")");
  t.set_header({"configuration", "per iteration", "overhead"});
  char pct[32];
  std::snprintf(pct, sizeof pct, "%.3f%%", disabled_overhead_pct);
  t.add_row({"no span", fmt_ns(bare_ns), "-"});
  t.add_row({"span, tracing disabled", fmt_ns(disabled_ns), pct});
  t.add_row({"span, tracing enabled", fmt_ns(enabled_ns),
             fmt_ns(enabled_span_ns) + " per span"});
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "enabled run recorded %llu spans (%llu dropped to ring wrap)\n"
      "traced campaign vs untraced: %s\n",
      static_cast<unsigned long long>(recorded),
      static_cast<unsigned long long>(dropped),
      ok ? "BIT-IDENTICAL" : "MISMATCH");

  const bool under_budget = disabled_overhead_pct < 1.0;
  std::printf("disabled overhead %s the 1%% budget\n",
              under_budget ? "within" : "EXCEEDS");

  {
    std::ofstream out("BENCH_trace.json");
    char buf[512];
    std::snprintf(
        buf, sizeof buf,
        "{\"bench\":\"trace_overhead\",\"iters\":%llu,\"rounds\":%d,"
        "\"bare_ns_per_iter\":%.3f,\"disabled_ns_per_iter\":%.3f,"
        "\"disabled_overhead_pct\":%.3f,\"enabled_ns_per_span\":%.3f,"
        "\"spans_recorded\":%llu,\"spans_dropped\":%llu,"
        "\"bit_identical\":%s}\n",
        static_cast<unsigned long long>(kIters), kRounds, bare_ns, disabled_ns,
        disabled_overhead_pct, enabled_span_ns,
        static_cast<unsigned long long>(recorded),
        static_cast<unsigned long long>(dropped), ok ? "true" : "false");
    out << buf;
    std::printf("wrote BENCH_trace.json\n");
  }
  return ok ? 0 : 1;
}
