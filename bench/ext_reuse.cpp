// Extension bench: coupling reuse (the paper's section 6 future work).
//
// "Future work is focused on determining which coupling values must be
// obtained and which values can be reused, thereby reducing the number of
// needed experiments."  This bench quantifies that trade-off on the modeled
// machine: measure BT couplings at ONE donor processor count per class,
// then predict the other processor counts using the donor couplings plus
// only the cheap isolated means at the target.  Because coupling values
// plateau between a finite number of transitions (section 4.1.4), reuse
// within a plateau costs almost no accuracy.

#include <cstdio>
#include <vector>

#include "coupling/database.hpp"
#include "coupling/study.hpp"
#include "machine/config.hpp"
#include "npb/bt/bt_model.hpp"
#include "report/table.hpp"
#include "trace/stats.hpp"

using namespace kcoup;

namespace {

struct ReuseCase {
  npb::ProblemClass cls;
  std::size_t q;
  int donor;
  std::vector<int> targets;
};

void run_case(const ReuseCase& rc, report::Table& table) {
  const machine::MachineConfig cfg = machine::ibm_sp_p2sc();
  const std::string cls = npb::to_string(rc.cls);

  // One full study at the donor processor count populates the database.
  coupling::CouplingDatabase db;
  {
    auto modeled = npb::bt::make_modeled_bt(rc.cls, rc.donor, cfg);
    const coupling::StudyOptions options{{rc.q}, {}};
    const auto r = coupling::run_study(modeled->app(), options);
    db.record("BT", cls, rc.donor, r.by_length[0].chains);
  }

  for (int p : rc.targets) {
    auto modeled = npb::bt::make_modeled_bt(rc.cls, p, cfg);
    const coupling::LoopApplication& app = modeled->app();
    coupling::MeasurementHarness harness(&app, {});

    const double actual = harness.actual_total();
    coupling::PredictionInputs in;
    in.isolated_means = harness.all_isolated_means();
    in.iterations = app.iterations;
    for (std::size_t i = 0; i < app.prologue.size(); ++i) {
      in.prologue_s += harness.prologue_mean(i);
    }
    for (std::size_t i = 0; i < app.epilogue.size(); ++i) {
      in.epilogue_s += harness.epilogue_mean(i);
    }

    // Freshly measured couplings (the expensive path).
    const auto fresh =
        coupling::measure_chains(harness, rc.q, in.isolated_means);
    const double full_err = trace::relative_error(
        coupling::coupling_prediction(in, fresh), actual);

    // Reused donor couplings (only isolated means measured at the target).
    const auto reused =
        db.reuse_chains_for("BT", cls, p, rc.q, app.loop_size());
    const double reuse_err = trace::relative_error(
        coupling::reuse_prediction(in, reused), actual);

    const double summ_err =
        trace::relative_error(coupling::summation_prediction(in), actual);

    table.add_row({cls + ", q=" + std::to_string(rc.q),
                   std::to_string(rc.donor), std::to_string(p),
                   report::format_percent(summ_err),
                   report::format_percent(full_err),
                   report::format_percent(reuse_err)});
  }
}

}  // namespace

int main() {
  report::Table t(
      "Coupling reuse: donor couplings + target isolated means vs full "
      "measurement");
  t.set_header({"BT class", "donor P", "target P", "summation",
                "coupling (fresh)", "coupling (reused)"});

  run_case(ReuseCase{npb::ProblemClass::kW, 3, 9, {4, 16, 25}}, t);
  run_case(ReuseCase{npb::ProblemClass::kA, 4, 9, {16, 25}}, t);
  run_case(ReuseCase{npb::ProblemClass::kS, 2, 9, {4, 16}}, t);
  std::printf("%s\n", t.to_string().c_str());

  std::printf(
      "Reading: within a coupling plateau (Class W at low P: reuse 1.8 %% vs\n"
      "summation 9 %%) the reused predictor stays close to the freshly\n"
      "measured one while needing only N isolated measurements instead of N\n"
      "chain measurements.  Across a coupling transition (Class S, where\n"
      "couplings grow with P; Class A between 9 and 16 processors on this\n"
      "machine model) reuse degrades and can fall behind summation — the\n"
      "database must hold one donor per plateau, which is exactly the\n"
      "paper's point about the finite number of transitions.\n");
  return 0;
}
