// Extension bench: prediction-service throughput — snapshot + memo cache
// vs naive recompute-per-request, and pipelined vs one-at-a-time clients.
//
// The serve subsystem exists so a campaign-produced coupling database can
// answer prediction queries at interactive rates: the snapshot precomputes
// the alpha coefficients once per database load, and the query engine
// memoizes the per-(application, config, ranks) cell inputs (the isolated
// loop means, prologue/epilogue, actual and summation baselines), so the
// steady-state cost of a query is one cache lookup plus the composition
// algebra T = Tinit + I * sum_k alpha_k E_k + Tfinal.  The naive
// alternative — what a caller without the service would do — re-measures
// the cell for every request.  This bench quantifies the gap and records
// the served throughput and tail latency at 1/4/8 shards in a
// machine-readable `BENCH_serve.json` baseline, while asserting that every
// served value stays bit-identical to the in-process study.
//
// Two client modes drive the event-loop server:
//   blocking   one frame out, wait, one frame in (the original clients);
//              throughput is latency-bound per connection.
//   pipelined  kPipelineDepth frames kept outstanding per connection; the
//              server drains every complete frame per wakeup into one
//              QueryEngine::predict_batch window, so this mode measures
//              the batch fast path.
//
// The workload is the modeled BT class-S loop at P=4 (chains of length 2
// and 3, exactly what `kcoup campaign` would persist): small enough that
// the bench runs in seconds, real enough that the memoized cell carries
// the full five-kernel loop.
//
// `--smoke` shrinks the request counts for CI, skips BENCH_serve.json, and
// drops the speedup floor — it only checks that both client modes complete
// with bit-identical responses.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <algorithm>

#include "coupling/database.hpp"
#include "coupling/study.hpp"
#include "machine/config.hpp"
#include "npb/bt/bt_model.hpp"
#include "report/table.hpp"
#include "serve/client.hpp"
#include "serve/pack.hpp"
#include "serve/protocol.hpp"
#include "serve/query_engine.hpp"
#include "serve/server.hpp"
#include "serve/snapshot.hpp"
#include "serve/workload.hpp"

using namespace kcoup;

namespace {

constexpr std::size_t kClientThreads = 4;
constexpr std::size_t kPipelineDepth = 32;

struct ServedRun {
  std::size_t workers = 0;
  double rps = 0.0;
  double p99_s = 0.0;
  std::size_t mismatches = 0;
};

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

bool prediction_matches(const std::optional<serve::Prediction>& p,
                        double want_coupling_s, double want_actual_s) {
  return p.has_value() && p->ok && p->coupling_s == want_coupling_s &&
         p->actual_s == want_actual_s;
}

/// Drive a running server with kClientThreads concurrent connections, each
/// issuing requests_per_client blocking predict roundtrips, checking every
/// response bit-for-bit against the study reference.
ServedRun drive(serve::Server& server, const serve::QueryKey& query,
                double want_coupling_s, double want_actual_s,
                std::size_t requests_per_client) {
  std::vector<std::thread> threads;
  std::atomic<std::size_t> mismatches{0};
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t t = 0; t < kClientThreads; ++t) {
    threads.emplace_back([&] {
      serve::Client client;
      client.connect("127.0.0.1", server.port());
      for (std::size_t i = 0; i < requests_per_client; ++i) {
        const auto p = client.predict(query);
        if (!prediction_matches(p, want_coupling_s, want_actual_s)) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double wall = seconds_since(t0);

  ServedRun run;
  run.rps = wall > 0.0
                ? static_cast<double>(kClientThreads * requests_per_client) /
                      wall
                : 0.0;
  run.p99_s = server.metrics().latency_p99_s;
  run.mismatches = mismatches.load();
  return run;
}

/// Same workload, pipelined: each connection keeps up to kPipelineDepth
/// predict frames outstanding.  The server answers strictly in request
/// order, so responses pair with requests positionally.
ServedRun drive_pipelined(serve::Server& server, const serve::QueryKey& query,
                          double want_coupling_s, double want_actual_s,
                          std::size_t requests_per_client) {
  const std::string payload = serve::predict_request(query);
  std::vector<std::thread> threads;
  std::atomic<std::size_t> mismatches{0};
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t t = 0; t < kClientThreads; ++t) {
    threads.emplace_back([&] {
      serve::Client client;
      client.connect("127.0.0.1", server.port());
      std::size_t sent = 0;
      std::size_t received = 0;
      while (received < requests_per_client) {
        while (sent < requests_per_client &&
               sent - received < kPipelineDepth) {
          if (!client.send_request(payload)) break;
          ++sent;
        }
        if (sent == received) {  // could not even send: connection is dead
          mismatches.fetch_add(requests_per_client - received,
                               std::memory_order_relaxed);
          return;
        }
        const auto response = client.read_response();
        if (!response.has_value()) {
          mismatches.fetch_add(requests_per_client - received,
                               std::memory_order_relaxed);
          return;
        }
        const auto p = serve::parse_prediction(*response);
        if (!prediction_matches(p, want_coupling_s, want_actual_s)) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
        ++received;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double wall = seconds_since(t0);

  ServedRun run;
  run.rps = wall > 0.0
                ? static_cast<double>(kClientThreads * requests_per_client) /
                      wall
                : 0.0;
  run.p99_s = server.metrics().latency_p99_s;
  run.mismatches = mismatches.load();
  return run;
}

std::string fmt(const char* f, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, f, v);
  return buf;
}

// --- Reload latency: CSV parse vs mmap --------------------------------------

struct ReloadStats {
  std::size_t db_records = 0;
  double csv_ms = 0.0;
  double kcs_ms = 0.0;
  double speedup = 0.0;
  double cold_p99_csv_s = 0.0;
  double cold_p99_kcs_s = 0.0;
  bool bit_identical = true;
};

/// A reload-sized database: the real BT study records plus a synthetic bulk
/// of complete alpha groups (fake applications never served), so the CSV
/// path pays realistic parse + dedup + alpha-precompute cost and the packed
/// path a realistic decode.
coupling::CouplingDatabase make_reload_db(const coupling::StudyResult& study,
                                          int synth_apps) {
  coupling::CouplingDatabase db;
  for (const auto& cl : study.by_length) db.record("BT", "S", 4, cl.chains);
  constexpr std::size_t kLoop = 5;
  const char* configs[] = {"S", "W", "A", "B"};
  const int ranks_list[] = {1, 2, 4, 8, 16, 32};
  for (int a = 0; a < synth_apps; ++a) {
    char name[8];
    std::snprintf(name, sizeof name, "ZZ%02d", a);
    for (const char* config : configs) {
      for (const int ranks : ranks_list) {
        for (std::size_t q = 2; q <= 3; ++q) {
          for (std::size_t start = 0; start < kLoop; ++start) {
            coupling::CouplingRecord r;
            r.key = coupling::CouplingKey{name, config, ranks, q, start};
            r.isolated_sum = 0.001 * static_cast<double>(q) +
                             0.0001 * static_cast<double>(ranks) +
                             0.00001 * static_cast<double>(start + 1);
            r.chain_time = r.isolated_sum * 1.05;
            db.record(std::move(r));
          }
        }
      }
    }
  }
  return db;
}

double best_reload_ms(const std::string& path, int iters) {
  double best = 1e300;
  for (int i = 0; i < iters; ++i) {
    serve::SnapshotSource source(path, serve::CellFn{},
                                 serve::SnapshotOptions{false});
    const auto t0 = std::chrono::steady_clock::now();
    source.load();
    best = std::min(best, seconds_since(t0) * 1e3);
  }
  return best;
}

/// p99 of per-query latency on a freshly loaded snapshot + cold engine —
/// the first-window cost a hot reload imposes on live traffic.
double cold_query_p99(const serve::PredictorSnapshot& snapshot,
                      const serve::Workload& workload,
                      const std::vector<serve::QueryKey>& queries) {
  serve::QueryEngine engine(&workload);
  std::vector<double> lat;
  lat.reserve(queries.size());
  for (const serve::QueryKey& q : queries) {
    const auto t0 = std::chrono::steady_clock::now();
    (void)engine.predict(snapshot, q);
    lat.push_back(seconds_since(t0));
  }
  std::sort(lat.begin(), lat.end());
  const std::size_t idx =
      lat.empty() ? 0 : (lat.size() * 99 + 99) / 100 - 1;
  return lat.empty() ? 0.0 : lat[std::min(idx, lat.size() - 1)];
}

ReloadStats run_reload_bench(const coupling::StudyResult& study,
                             const serve::NpbWorkload& workload, bool smoke) {
  const int synth_apps = smoke ? 2 : 12;
  const int iters = smoke ? 2 : 5;
  const auto dir = std::filesystem::temp_directory_path();
  const std::string csv_path = (dir / "kcoup_bench_reload_db.csv").string();
  const std::string kcs_path = (dir / "kcoup_bench_reload_db.kcs").string();

  const coupling::CouplingDatabase db = make_reload_db(study, synth_apps);
  ReloadStats stats;
  stats.db_records = db.records().size();
  db.save_csv_file(csv_path);
  {
    // Pack exactly what a CSV reload would build, so the two serving paths
    // start from the same snapshot contents.
    serve::SnapshotSource source(csv_path, serve::CellFn{},
                                 serve::SnapshotOptions{false});
    source.load();
    serve::pack_snapshot_file(*source.current(), kcs_path);
  }

  stats.csv_ms = best_reload_ms(csv_path, iters);
  stats.kcs_ms = best_reload_ms(kcs_path, iters);
  stats.speedup = stats.kcs_ms > 0.0 ? stats.csv_ms / stats.kcs_ms : 0.0;

  // Exact / nearest-ranks / error paths, repeated so the cold-engine p99
  // has a population; every response must match across formats byte-wise.
  std::vector<serve::QueryKey> queries;
  for (int rep = 0; rep < (smoke ? 2 : 20); ++rep) {
    queries.push_back({"BT", "S", 4, 2});
    queries.push_back({"BT", "S", 4, 3});
    queries.push_back({"BT", "S", 9, 2});   // nearest-ranks donor
    queries.push_back({"ZZ00", "S", 4, 2});  // unknown to the workload
  }
  serve::SnapshotSource csv_source(csv_path, serve::CellFn{},
                                   serve::SnapshotOptions{false});
  csv_source.load();
  serve::SnapshotSource kcs_source(kcs_path, serve::CellFn{},
                                   serve::SnapshotOptions{false});
  kcs_source.load();
  const auto csv_snap = csv_source.current();
  const auto kcs_snap = kcs_source.current();

  serve::EngineOptions uncached;
  uncached.cache_capacity = 0;
  serve::QueryEngine csv_engine(&workload, uncached);
  serve::QueryEngine kcs_engine(&workload, uncached);
  for (const serve::QueryKey& q : queries) {
    const std::string a =
        serve::prediction_json(csv_engine.predict(*csv_snap, q));
    const std::string b =
        serve::prediction_json(kcs_engine.predict(*kcs_snap, q));
    if (a != b) stats.bit_identical = false;
  }

  stats.cold_p99_csv_s = cold_query_p99(*csv_snap, workload, queries);
  stats.cold_p99_kcs_s = cold_query_p99(*kcs_snap, workload, queries);

  std::filesystem::remove(csv_path);
  std::filesystem::remove(kcs_path);
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const int naive_requests = smoke ? 4 : 24;
  const std::size_t requests_per_client = smoke ? 10 : 100;
  const std::size_t pipelined_per_client = smoke ? 40 : 400;

  const machine::MachineConfig cfg = machine::ibm_sp_p2sc();

  // Reference study: the bit-identity anchor and the database content.
  const auto modeled = npb::bt::make_modeled_bt(npb::ProblemClass::kS, 4, cfg);
  coupling::StudyOptions options;
  options.chain_lengths = {2, 3};
  const coupling::StudyResult study =
      coupling::run_study(modeled->app(), options);

  const std::filesystem::path db_path =
      std::filesystem::temp_directory_path() / "kcoup_bench_serve_db.csv";
  {
    coupling::CouplingDatabase db;
    for (const auto& cl : study.by_length) {
      db.record("BT", "S", 4, cl.chains);
    }
    db.save_csv_file(db_path.string());
  }

  serve::NpbWorkload workload(cfg);
  const serve::QueryKey query{"BT", "S", 4, 2};
  const double want_coupling_s = study.by_length[0].prediction_s;
  const double want_actual_s = study.actual_s;

  // Naive baseline: no memo cache — every request re-measures the cell's
  // isolated loops, prologue/epilogue and full-application run.
  double naive_rps = 0.0;
  {
    serve::SnapshotSource source(db_path.string(), serve::CellFn{},
                                 serve::SnapshotOptions{false});
    source.load();
    serve::EngineOptions uncached;
    uncached.cache_capacity = 0;
    serve::QueryEngine engine(&workload, uncached);
    const auto snapshot = source.current();
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < naive_requests; ++i) {
      const serve::Prediction p = engine.predict(*snapshot, query);
      if (!p.ok || p.coupling_s != want_coupling_s) {
        std::fprintf(stderr, "naive baseline mismatch\n");
        return 1;
      }
    }
    const double wall = seconds_since(t0);
    naive_rps = wall > 0.0 ? naive_requests / wall : 0.0;
  }

  // Served runs: fresh engine + snapshot per shard count so each run pays
  // its own single cold cell measurement (amortized over the run), exactly
  // like a freshly started `kcoup serve`.  Blocking and pipelined clients
  // drive identical servers.
  std::vector<ServedRun> runs;
  std::vector<ServedRun> pipelined;
  for (std::size_t workers : {1u, 4u, 8u}) {
    for (int mode = 0; mode < 2; ++mode) {
      serve::SnapshotSource source(db_path.string(), serve::CellFn{},
                                   serve::SnapshotOptions{false});
      source.load();
      serve::QueryEngine engine(&workload);
      serve::ServerConfig config;
      config.workers = workers;
      config.max_inflight = 2 * kClientThreads;
      serve::Server server(&source, &engine, config);
      server.start();
      ServedRun run =
          mode == 0 ? drive(server, query, want_coupling_s, want_actual_s,
                            requests_per_client)
                    : drive_pipelined(server, query, want_coupling_s,
                                      want_actual_s, pipelined_per_client);
      run.workers = workers;
      server.stop();
      (mode == 0 ? runs : pipelined).push_back(run);
    }
  }
  std::filesystem::remove(db_path);

  // Reload latency: how long a hot reload stalls on each snapshot format.
  const ReloadStats reload = run_reload_bench(study, workload, smoke);

  report::Table t(
      "Prediction service throughput: memoized serving vs "
      "recompute-per-request (BT class S, P=4, loopback TCP)");
  t.set_header({"run", "requests/s", "p99 latency", "bit-identical"});
  t.add_row({"naive recompute (in-process, no cache)",
             fmt("%.1f", naive_rps), "-", "yes"});
  std::size_t total_mismatches = 0;
  for (const ServedRun& run : runs) {
    total_mismatches += run.mismatches;
    t.add_row({"served, " + std::to_string(run.workers) + " shard" +
                   (run.workers == 1 ? "" : "s") + ", blocking",
               fmt("%.1f", run.rps), fmt("%.6f s", run.p99_s),
               run.mismatches == 0 ? "yes" : "NO"});
  }
  for (const ServedRun& run : pipelined) {
    total_mismatches += run.mismatches;
    t.add_row({"served, " + std::to_string(run.workers) + " shard" +
                   (run.workers == 1 ? "" : "s") + ", pipelined x" +
                   std::to_string(kPipelineDepth),
               fmt("%.1f", run.rps), fmt("%.6f s", run.p99_s),
               run.mismatches == 0 ? "yes" : "NO"});
  }
  std::printf("%s\n", t.to_string().c_str());

  double best_rps = 0.0;
  for (const ServedRun& run : runs) best_rps = std::max(best_rps, run.rps);
  for (const ServedRun& run : pipelined) {
    best_rps = std::max(best_rps, run.rps);
  }
  const double speedup = naive_rps > 0.0 ? best_rps / naive_rps : 0.0;
  const unsigned hw = std::thread::hardware_concurrency();

  bool ok = total_mismatches == 0;
  if (!smoke) ok = ok && speedup >= 10.0;
  // Shard scaling is only observable with real cores behind the shards; a
  // 1- or 2-core CI box serializes every shard onto the same CPU.
  if (!smoke && hw >= 8) {
    const bool monotone = pipelined[1].rps >= pipelined[0].rps * 0.95 &&
                          pipelined[2].rps >= pipelined[1].rps * 0.95;
    if (!monotone) {
      std::fprintf(stderr,
                   "pipelined rps did not scale monotonically over shards "
                   "(hw=%u): %.1f -> %.1f -> %.1f\n",
                   hw, pipelined[0].rps, pipelined[1].rps, pipelined[2].rps);
    }
    ok = ok && monotone;
  }
  std::printf(
      "served vs naive speedup (best served rps / naive rps): %.1fx "
      "(floor 10x)\n"
      "served responses: %s\n",
      speedup, total_mismatches == 0 ? "BIT-IDENTICAL" : "MISMATCH");

  report::Table rt("Snapshot reload latency: CSV parse vs mmap'd .kcs (" +
                   std::to_string(reload.db_records) + " records)");
  rt.set_header({"format", "reload", "cold query p99", "bit-identical"});
  rt.add_row({"CSV (parse + precompute)", fmt("%.3f ms", reload.csv_ms),
              fmt("%.6f s", reload.cold_p99_csv_s),
              reload.bit_identical ? "yes" : "NO"});
  rt.add_row({".kcs (mmap, zero parse)", fmt("%.3f ms", reload.kcs_ms),
              fmt("%.6f s", reload.cold_p99_kcs_s),
              reload.bit_identical ? "yes" : "NO"});
  std::printf("%s\n", rt.to_string().c_str());
  std::printf(
      "mmap reload speedup (csv ms / kcs ms): %.1fx (floor 10x)\n"
      "cross-format responses: %s\n",
      reload.speedup, reload.bit_identical ? "BIT-IDENTICAL" : "MISMATCH");

  ok = ok && reload.bit_identical;
  if (!smoke) ok = ok && reload.speedup >= 10.0;

  // The perf-trajectory baseline: one self-contained JSON object.
  if (!smoke) {
    std::ofstream out("BENCH_serve.json");
    char buf[3072];
    std::snprintf(
        buf, sizeof buf,
        "{\"bench\":\"serve_throughput\",\"hw_concurrency\":%u,"
        "\"clients\":%zu,\"requests_per_client\":%zu,"
        "\"pipeline_depth\":%zu,\"pipelined_requests_per_client\":%zu,"
        "\"naive_rps\":%.1f,"
        "\"served_rps_w1\":%.1f,\"served_p99_s_w1\":%.6f,"
        "\"served_rps_w4\":%.1f,\"served_p99_s_w4\":%.6f,"
        "\"served_rps_w8\":%.1f,\"served_p99_s_w8\":%.6f,"
        "\"pipelined_rps_w1\":%.1f,\"pipelined_p99_s_w1\":%.6f,"
        "\"pipelined_rps_w4\":%.1f,\"pipelined_p99_s_w4\":%.6f,"
        "\"pipelined_rps_w8\":%.1f,\"pipelined_p99_s_w8\":%.6f,"
        "\"speedup_vs_naive\":%.1f,\"bit_identical\":%s,"
        "\"reload_db_records\":%zu,"
        "\"reload_csv_ms\":%.3f,\"reload_kcs_ms\":%.3f,"
        "\"reload_speedup\":%.1f,"
        "\"cold_p99_csv_s\":%.6f,\"cold_p99_kcs_s\":%.6f,"
        "\"reload_bit_identical\":%s}\n",
        hw, kClientThreads, requests_per_client, kPipelineDepth,
        pipelined_per_client, naive_rps, runs[0].rps, runs[0].p99_s,
        runs[1].rps, runs[1].p99_s, runs[2].rps, runs[2].p99_s,
        pipelined[0].rps, pipelined[0].p99_s, pipelined[1].rps,
        pipelined[1].p99_s, pipelined[2].rps, pipelined[2].p99_s, speedup,
        total_mismatches == 0 ? "true" : "false", reload.db_records,
        reload.csv_ms, reload.kcs_ms, reload.speedup, reload.cold_p99_csv_s,
        reload.cold_p99_kcs_s, reload.bit_identical ? "true" : "false");
    out << buf;
    std::printf("wrote BENCH_serve.json\n");
  }
  return ok ? 0 : 1;
}
