// Regenerates paper Tables 2a and 2b: NPB BT, Class S (12^3, 60 iterations)
// on 4/9/16 processors of the modeled IBM SP.  Table 2a reports the pairwise
// (2-kernel) coupling values of the five main-loop kernels; Table 2b compares
// the actual modeled execution time against the summation predictor and the
// 2-kernel coupling predictor.
//
// Paper reference values: pairwise couplings mostly grow with the processor
// count (0.96 -> 1.4 range; communication volume and load imbalance dominate
// at this size, §4.1.1); neither predictor is very accurate at Class S
// (summation avg error 30.72 %, 2-kernel coupling avg error 28.39 %) because
// the absolute times are tiny.

#include "bench/bench_util.hpp"
#include "bench/npb_study.hpp"
#include "npb/bt/bt_model.hpp"

int main() {
  using namespace kcoup;

  const std::vector<int> procs{4, 9, 16};
  const auto make = [](int p, const machine::MachineConfig& cfg) {
    return npb::bt::make_modeled_bt(npb::ProblemClass::kS, p, cfg);
  };
  const bench::StudyAcrossProcs study = bench::study_across_procs(
      make, procs, {2}, machine::ibm_sp_p2sc());

  bench::print_coupling_table(
      "Table 2a: Coupling values for BT two kernels with Class S", study, 2);
  bench::print_prediction_table(
      "Table 2b: Comparison of execution times for BT with Class S", study);
  bench::print_error_summary("Average relative errors (paper: summation "
                             "30.72 %, 2-kernel coupling 28.39 %):",
                             study);
  bench::print_shape_check("BT Class S", study);
  return 0;
}
