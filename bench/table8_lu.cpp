// Regenerates paper Tables 8a/8b/8c: NPB LU, Classes W (33^3), A (64^3) and
// B (102^3) on 4/8/16/32 processors of the modeled IBM SP, comparing the
// actual modeled time against the summation predictor and the 3-kernel
// coupling predictor.
//
// Paper reference averages: Class W summation 12.88 % vs coupling 3.60 %;
// Class A 4.56 % vs 1.47 %; Class B worst coupling 1.44 % vs best summation
// 2.28 %.  LU's summation errors are smaller than BT/SP's because the
// diagonal-pipelined sweeps are latency-bound.

#include "bench/bench_util.hpp"
#include "bench/npb_study.hpp"
#include "npb/lu/lu_model.hpp"

int main() {
  using namespace kcoup;

  const std::vector<int> procs{4, 8, 16, 32};
  const struct {
    npb::ProblemClass cls;
    const char* table;
    const char* paper;
  } cases[] = {
      {npb::ProblemClass::kW,
       "Table 8a: Comparison of execution times for LU with Class W",
       "paper: summation 12.88 %, 3-kernel coupling 3.60 %"},
      {npb::ProblemClass::kA,
       "Table 8b: Comparison of execution times for LU with Class A",
       "paper: summation 4.56 %, 3-kernel coupling 1.47 %"},
      {npb::ProblemClass::kB,
       "Table 8c: Comparison of execution times for LU with Class B",
       "paper: worst coupling 1.44 %, best summation 2.28 %"},
  };

  for (const auto& c : cases) {
    const auto make = [&](int p, const machine::MachineConfig& cfg) {
      return npb::lu::make_modeled_lu(c.cls, p, cfg);
    };
    const bench::StudyAcrossProcs study = bench::study_across_procs(
        make, procs, {3}, machine::ibm_sp_p2sc());
    if (c.cls == npb::ProblemClass::kA) {
      bench::print_coupling_table(
          "Supplementary (not tabulated in the paper): LU Class A 3-kernel "
          "coupling values",
          study, 3);
    }
    bench::print_prediction_table(c.table, study);
    bench::print_error_summary(std::string("Average relative errors (") +
                                   c.paper + "):",
                               study);
    bench::print_shape_check(
        std::string("LU Class ") + npb::to_string(c.cls), study);
  }
  return 0;
}
