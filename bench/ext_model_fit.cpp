// Extension bench: the src/model/ fitting subsystem vs the legacy
// fixed-basis LSQ fit.
//
// Ground truth is a synthetic two-regime workload — volume-bound n^3/P
// scaling up to P = 8, latency-dominated constant + log2(P) from P = 16 on
// — the shape the paper attributes to crossing a memory-hierarchy
// boundary.  Both model families fit the same training grid with the
// largest processor count held out, then extrapolate to it:
//
//   - legacy: one KernelScalingModel (fixed npb_default basis, global LSQ)
//   - selected: fit_piecewise (LOO-CV term selection + changepoint split)
//
// The bench reports held-out relative error for both, the improvement
// factor, fit throughput, and changepoint-detection throughput, and writes
// the `BENCH_model.json` baseline.  The full run asserts the improvement
// floor and that the located breakpoint is within one grid step of the
// truth; `--smoke` only checks the pipeline end to end.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "coupling/scaling_model.hpp"
#include "model/piecewise.hpp"
#include "model/select.hpp"
#include "model/transitions.hpp"
#include "report/table.hpp"

using namespace kcoup;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Two-regime truth for kernel k: n^3/P work below the break, constant +
/// log2(P) latency above it.  The break sits between P = 8 and P = 16.
double truth(std::size_t k, double n, double p) {
  const double a = 1e-6 * static_cast<double>(k + 1);
  if (p <= 8.0) return a * n * n * n / p;
  const double c = 2e-3 * static_cast<double>(k + 1);
  return c + 1e-4 * std::log2(p);
}

struct KernelErrors {
  double lsq = 0.0;       // mean |rel err| of the legacy LSQ extrapolation
  double selected = 0.0;  // mean |rel err| of the piecewise model
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const std::size_t kernels = smoke ? 2 : 8;
  const int fit_reps = smoke ? 2 : 50;

  const std::vector<double> train_p{1, 2, 4, 8, 16, 32, 64};
  const double heldout_p = 128.0;  // largest P: extrapolation target
  const std::vector<double> sizes{12, 24, 36, 64};

  // --- Held-out extrapolation: legacy LSQ vs selected piecewise ------------
  std::vector<KernelErrors> errors(kernels);
  std::vector<model::PiecewiseModel> fitted(kernels);
  for (std::size_t k = 0; k < kernels; ++k) {
    std::vector<coupling::ScalingSample> lsq_samples;
    std::vector<model::ModelSample> samples;
    for (double n : sizes) {
      for (double p : train_p) {
        lsq_samples.push_back({n, p, truth(k, n, p)});
        samples.push_back({n, p, truth(k, n, p)});
      }
    }
    const coupling::KernelScalingModel lsq =
        coupling::KernelScalingModel::fit_or_constant(
            coupling::ScalingBasis::npb_default(), lsq_samples);
    fitted[k] = model::fit_piecewise(samples);
    double lsq_err = 0.0;
    double sel_err = 0.0;
    for (double n : sizes) {
      const double want = truth(k, n, heldout_p);
      lsq_err += std::fabs(lsq.evaluate(n, heldout_p) - want) / want;
      sel_err += std::fabs(fitted[k].evaluate(n, heldout_p) - want) / want;
    }
    errors[k].lsq = lsq_err / static_cast<double>(sizes.size());
    errors[k].selected = sel_err / static_cast<double>(sizes.size());
  }
  double lsq_mean = 0.0;
  double selected_mean = 0.0;
  for (const KernelErrors& e : errors) {
    lsq_mean += e.lsq;
    selected_mean += e.selected;
  }
  lsq_mean /= static_cast<double>(kernels);
  selected_mean /= static_cast<double>(kernels);
  const double improvement =
      selected_mean > 0.0 ? lsq_mean / selected_mean : 0.0;

  // Breakpoint recovery: every kernel's split must land between the grid
  // points straddling the true regime change.
  bool breakpoints_ok = true;
  for (const model::PiecewiseModel& pw : fitted) {
    if (pw.breakpoints.size() != 1 || pw.breakpoints[0] <= 8.0 ||
        pw.breakpoints[0] >= 16.0) {
      breakpoints_ok = false;
    }
  }

  // --- Fit throughput ------------------------------------------------------
  std::vector<model::ModelSample> timing_samples;
  for (double n : sizes) {
    for (double p : train_p) timing_samples.push_back({n, p, truth(0, n, p)});
  }
  const auto t0 = std::chrono::steady_clock::now();
  for (int rep = 0; rep < fit_reps; ++rep) {
    const model::PiecewiseModel pw = model::fit_piecewise(timing_samples);
    if (pw.segments.empty()) return 1;  // keep the optimizer honest
  }
  const double fit_wall = seconds_since(t0);
  const double fit_ms =
      fit_reps > 0 ? 1e3 * fit_wall / static_cast<double>(fit_reps) : 0.0;

  const auto t1 = std::chrono::steady_clock::now();
  for (int rep = 0; rep < fit_reps; ++rep) {
    const coupling::KernelScalingModel lsq =
        coupling::KernelScalingModel::fit_or_constant(
            coupling::ScalingBasis::npb_default(),
            [&] {
              std::vector<coupling::ScalingSample> s;
              for (const model::ModelSample& m : timing_samples) {
                s.push_back({m.n, m.p, m.seconds});
              }
              return s;
            }());
    if (lsq.coefficients().empty()) return 1;
  }
  const double lsq_wall = seconds_since(t1);
  const double lsq_ms =
      fit_reps > 0 ? 1e3 * lsq_wall / static_cast<double>(fit_reps) : 0.0;

  // --- Changepoint-detection throughput ------------------------------------
  coupling::CouplingDatabase db;
  const int series = smoke ? 4 : 64;
  for (int s = 0; s < series; ++s) {
    for (int p : {1, 2, 4, 8, 16, 32, 64}) {
      const double c = p <= 8 ? 1.03 : 1.4;
      db.record({{"APP" + std::to_string(s), "S", p, 2, 0}, c, 1.0});
    }
  }
  const auto t2 = std::chrono::steady_clock::now();
  const auto transitions = model::detect_coupling_transitions(db);
  const double detect_wall = seconds_since(t2);
  const bool transitions_ok =
      transitions.size() == static_cast<std::size_t>(series);

  // --- Report ---------------------------------------------------------------
  report::Table t("Model fitting: selected piecewise vs legacy LSQ (" +
                  std::to_string(kernels) + " kernels, held-out P=" +
                  std::to_string(static_cast<int>(heldout_p)) + ")");
  t.set_header({"metric", "value"});
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.4g", lsq_mean);
  t.add_row({"LSQ held-out rel err", buf});
  std::snprintf(buf, sizeof buf, "%.4g", selected_mean);
  t.add_row({"selected held-out rel err", buf});
  std::snprintf(buf, sizeof buf, "%.1fx", improvement);
  t.add_row({"improvement", buf});
  t.add_row({"breakpoints within one grid step",
             breakpoints_ok ? "yes" : "NO"});
  std::snprintf(buf, sizeof buf, "%.3f ms", fit_ms);
  t.add_row({"piecewise fit per kernel", buf});
  std::snprintf(buf, sizeof buf, "%.3f ms", lsq_ms);
  t.add_row({"LSQ fit per kernel", buf});
  std::snprintf(buf, sizeof buf, "%zu in %.3f ms", transitions.size(),
                1e3 * detect_wall);
  t.add_row({"transitions detected", buf});
  std::printf("%s\n", t.to_string().c_str());

  bool ok = breakpoints_ok && transitions_ok;
  // The two-regime truth is exactly representable per segment, so the
  // selected model's held-out error is ~0 while the global LSQ basis has
  // to compromise between regimes.  The floor is deliberately far below
  // the observed gap.
  if (!smoke) ok = ok && improvement >= 10.0 && selected_mean < 0.01;

  if (!smoke) {
    std::ofstream out("BENCH_model.json");
    out << "{\"bench\":\"model_fit\"";
    out << ",\"kernels\":" << kernels;
    out << ",\"heldout_p\":" << static_cast<int>(heldout_p);
    char num[64];
    std::snprintf(num, sizeof num, "%.6g", lsq_mean);
    out << ",\"lsq_heldout_rel_err\":" << num;
    std::snprintf(num, sizeof num, "%.6g", selected_mean);
    out << ",\"selected_heldout_rel_err\":" << num;
    std::snprintf(num, sizeof num, "%.1f", improvement);
    out << ",\"improvement_x\":" << num;
    out << ",\"breakpoints_ok\":" << (breakpoints_ok ? "true" : "false");
    std::snprintf(num, sizeof num, "%.3f", fit_ms);
    out << ",\"piecewise_fit_ms\":" << num;
    std::snprintf(num, sizeof num, "%.3f", lsq_ms);
    out << ",\"lsq_fit_ms\":" << num;
    out << ",\"transition_series\":" << series;
    out << ",\"transitions_found\":" << transitions.size();
    std::snprintf(num, sizeof num, "%.3f", 1e3 * detect_wall);
    out << ",\"detect_ms\":" << num;
    out << "}\n";
    std::printf("wrote BENCH_model.json\n");
  }

  if (!ok) {
    std::fprintf(stderr, "ext_model_fit: assertions failed\n");
    return 1;
  }
  return 0;
}
