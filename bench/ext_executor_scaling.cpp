// Extension bench: campaign executor throughput — handle pooling and
// cost-aware scheduling.
//
// Every measurement task used to construct a fresh application instance,
// so whenever instance construction is comparable to (or dearer than) the
// measurement itself, allocation/setup dominated the campaign wall-clock.
// The executor now keeps one instance per (worker, study cell) and resets
// it between tasks, and submits tasks longest-estimated-first so a single
// expensive straggler cannot serialize the tail of the worker pool.  This
// bench quantifies both effects and emits a machine-readable
// `BENCH_executor.json` baseline so the perf trajectory of the executor hot
// path is recorded over time — while asserting that every configuration
// stays bit-identical to the serial path.
//
// The workload is a synthetic-application sweep: generated applications
// with wide kernel loops are exactly the construction-bound regime (the
// generator builds every kernel and region up front, while each atomic
// task only measures one short chain), mirroring real codes whose setup
// phase — grid allocation, decomposition, input parsing — rivals a few
// timed iterations.

#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/executor.hpp"
#include "coupling/synthetic.hpp"
#include "machine/config.hpp"
#include "report/table.hpp"

using namespace kcoup;

namespace {

constexpr std::size_t kKernels = 24;

/// Twelve synthetic study cells (four seeds at three processor counts),
/// wide kernel loops, a small repetition budget: per-task measurement cost
/// stays below the cost of generating a fresh application instance, so the
/// no-pooling path pays the generator once per task.
campaign::CampaignSpec sweep_spec(bool pool_handles) {
  campaign::CampaignSpec spec;
  spec.chain_lengths = {2, 3};
  spec.measurement.repetitions = 2;
  spec.measurement.warmup = 0;
  spec.pool_handles = pool_handles;
  const machine::MachineConfig cfg = machine::ibm_sp_p2sc();
  for (unsigned seed : {1u, 2u, 3u, 4u}) {
    for (int p : {2, 4, 8}) {
      coupling::SyntheticAppSpec app;
      app.kernels = kKernels;
      app.regions = 2 * kKernels;
      app.iterations = 4;
      app.ranks = p;
      app.seed = seed;
      spec.studies.push_back(campaign::CampaignStudy{
          "SYN", "seed" + std::to_string(seed), p, [app, cfg] {
            return campaign::own_app(coupling::make_synthetic_app(app, cfg));
          }});
    }
  }
  return spec;
}

bool identical(const std::vector<coupling::StudyResult>& a,
               const std::vector<coupling::StudyResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].actual_s != b[i].actual_s) return false;
    if (a[i].isolated_means != b[i].isolated_means) return false;
    if (a[i].by_length.size() != b[i].by_length.size()) return false;
    for (std::size_t q = 0; q < a[i].by_length.size(); ++q) {
      if (a[i].by_length[q].prediction_s != b[i].by_length[q].prediction_s)
        return false;
      if (a[i].by_length[q].relative_error != b[i].by_length[q].relative_error)
        return false;
    }
  }
  return true;
}

/// Best-of-n campaign run: the minimum wall-clock is the least noisy
/// throughput estimate on a shared machine.
campaign::CampaignResult best_of(const campaign::CampaignSpec& spec,
                                 std::size_t workers, int rounds) {
  campaign::CampaignResult best = campaign::run_campaign(spec, workers);
  for (int i = 1; i < rounds; ++i) {
    campaign::CampaignResult r = campaign::run_campaign(spec, workers);
    if (r.metrics.wall_s < best.metrics.wall_s) best = std::move(r);
  }
  return best;
}

std::string fmt_seconds(double s) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.4f s", s);
  return buf;
}

}  // namespace

int main() {
  constexpr int kRounds = 5;
  constexpr std::size_t kWorkers = 8;
  const campaign::CampaignSpec pooled_spec = sweep_spec(true);
  const campaign::CampaignSpec fresh_spec = sweep_spec(false);

  const auto serial = best_of(pooled_spec, 1, kRounds);
  const auto nopool = best_of(fresh_spec, kWorkers, kRounds);
  const auto pooled = best_of(pooled_spec, kWorkers, kRounds);

  report::Table t(
      "Executor scaling: handle pooling + longest-first scheduling "
      "(synthetic sweep, 12 cells, " + std::to_string(kKernels) +
      "-kernel loops)");
  t.set_header({"run", "handles created", "handles reused", "task max",
                "task mean", "wall"});
  auto row = [&t](const char* name, const campaign::CampaignMetrics& m) {
    t.add_row({name, std::to_string(m.handles_created),
               std::to_string(m.handles_reused), fmt_seconds(m.task_max_s),
               fmt_seconds(m.task_mean_s), fmt_seconds(m.wall_s)});
  };
  row("serial, pooled (1 worker)", serial.metrics);
  row("8 workers, fresh instance per task", nopool.metrics);
  row("8 workers, pooled handles", pooled.metrics);
  std::printf("%s\n", t.to_string().c_str());

  const bool ok = identical(serial.studies, nopool.studies) &&
                  identical(serial.studies, pooled.studies);
  const double pool_ratio = pooled.metrics.wall_s > 0.0
                                ? nopool.metrics.wall_s / pooled.metrics.wall_s
                                : 0.0;
  const double parallel_ratio =
      pooled.metrics.wall_s > 0.0
          ? serial.metrics.wall_s / pooled.metrics.wall_s
          : 0.0;
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf(
      "pooling speedup (no-pool wall / pooled wall, %zu workers): %.2fx\n"
      "parallel speedup (serial wall / pooled wall): %.2fx "
      "(%u hardware thread%s; >1x needs >1)\n"
      "results vs serial: %s\n",
      kWorkers, pool_ratio, parallel_ratio, hw, hw == 1 ? "" : "s",
      ok ? "BIT-IDENTICAL" : "MISMATCH");

  // The perf-trajectory baseline: one self-contained JSON object.
  {
    std::ofstream out("BENCH_executor.json");
    char buf[1024];
    std::snprintf(
        buf, sizeof buf,
        "{\"bench\":\"executor_scaling\",\"workers\":%zu,"
        "\"hw_concurrency\":%u,\"rounds\":%d,"
        "\"studies\":%zu,\"tasks_executed\":%zu,"
        "\"serial_wall_s\":%.6f,\"nopool_wall_s\":%.6f,\"pool_wall_s\":%.6f,"
        "\"pool_speedup_vs_nopool\":%.3f,\"parallel_speedup_vs_serial\":%.3f,"
        "\"handles_created\":%zu,\"handles_reused\":%zu,"
        "\"bit_identical\":%s}\n",
        kWorkers, hw, kRounds, pooled.metrics.studies,
        pooled.metrics.tasks_executed, serial.metrics.wall_s,
        nopool.metrics.wall_s, pooled.metrics.wall_s, pool_ratio,
        parallel_ratio, pooled.metrics.handles_created,
        pooled.metrics.handles_reused, ok ? "true" : "false");
    out << buf;
    std::printf("wrote BENCH_executor.json\n");
  }
  return ok ? 0 : 1;
}
