#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "coupling/study.hpp"

namespace kcoup::bench {

/// One application studied at several processor counts — the unit of every
/// evaluation table in the paper.
struct StudyAcrossProcs {
  std::vector<int> procs;
  std::vector<coupling::StudyResult> results;  // one per entry of procs
  std::vector<std::string> kernel_names;       // loop kernels, in order
};

/// Print a paper-style "Coupling values" table (e.g. Tables 2a/3a/4a): one
/// row per cyclic chain of length `q`, one column per processor count.
void print_coupling_table(const std::string& title,
                          const StudyAcrossProcs& study, std::size_t q);

/// Print a paper-style "Comparison of execution times" table (e.g. Tables
/// 2b/3b/4b/6/8): rows Actual / Summation / Coupling-per-chain-length,
/// columns per processor count, predictions annotated with relative error.
void print_prediction_table(const std::string& title,
                            const StudyAcrossProcs& study);

/// Print average relative errors per predictor (the numbers the paper's
/// prose quotes, e.g. "average relative error of 1.42%").
void print_error_summary(const std::string& title,
                         const StudyAcrossProcs& study);

/// Emit a PAPER-vs-MEASURED shape check line: does the best coupling
/// predictor beat summation on average?
void print_shape_check(const std::string& what, const StudyAcrossProcs& study);

/// Average over processor counts of the summation predictor's relative error.
[[nodiscard]] double mean_summation_error(const StudyAcrossProcs& study);

/// Average relative error of the coupling predictor with chain length `q`.
[[nodiscard]] double mean_coupling_error(const StudyAcrossProcs& study,
                                         std::size_t q);

}  // namespace kcoup::bench
