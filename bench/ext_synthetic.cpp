// Extension bench: robustness of the coupling methodology beyond NPB.
//
// The paper validates on three applications and asks (§4.1.3) "whether
// this holds for all applications".  This harness samples a population of
// randomly generated modeled applications — random kernel counts, region
// pools, data-flow edges, message/synchronisation behaviour — and reports
// the distribution of prediction errors for the summation predictor and
// the coupling predictors.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "coupling/study.hpp"
#include "coupling/synthetic.hpp"
#include "machine/config.hpp"
#include "report/table.hpp"
#include "trace/stats.hpp"

using namespace kcoup;

namespace {

struct Population {
  trace::RunningStats summation, coupling2, coupling3;
  int coupling_wins = 0;
  int cases = 0;
  double worst_coupling = 0.0;
};

}  // namespace

int main() {
  Population pop;
  const int population_size = 60;

  for (unsigned seed = 1; seed <= population_size; ++seed) {
    coupling::SyntheticAppSpec spec;
    spec.seed = seed;
    spec.kernels = 3 + seed % 4;           // 3..6 kernels
    spec.regions = spec.kernels + seed % 3;
    spec.ranks = (seed % 2) ? 4 : 9;
    spec.iterations = 50;
    auto app = coupling::make_synthetic_app(spec, machine::ibm_sp_p2sc());

    coupling::StudyOptions options;
    options.chain_lengths = {2, 3};
    const coupling::StudyResult r = coupling::run_study(app->app(), options);

    pop.summation.add(r.summation_error);
    pop.coupling2.add(r.by_length[0].relative_error);
    pop.coupling3.add(r.by_length[1].relative_error);
    const double best = std::min(r.by_length[0].relative_error,
                                 r.by_length[1].relative_error);
    if (best < r.summation_error) ++pop.coupling_wins;
    pop.worst_coupling = std::max(pop.worst_coupling, best);
    ++pop.cases;
  }

  report::Table t("Prediction error over " + std::to_string(pop.cases) +
                  " random synthetic applications (modeled IBM SP)");
  t.set_header({"predictor", "mean error", "max error"});
  t.add_row({"Summation", report::format_percent(pop.summation.mean()),
             report::format_percent(pop.summation.max())});
  t.add_row({"Coupling q=2", report::format_percent(pop.coupling2.mean()),
             report::format_percent(pop.coupling2.max())});
  t.add_row({"Coupling q=3", report::format_percent(pop.coupling3.mean()),
             report::format_percent(pop.coupling3.max())});
  std::printf("%s\n", t.to_string().c_str());

  const double win_rate =
      static_cast<double>(pop.coupling_wins) / static_cast<double>(pop.cases);
  std::printf(
      "Best coupling predictor beats summation on %d/%d applications "
      "(%.0f %%);\nworst best-coupling error %s.\n\n",
      pop.coupling_wins, pop.cases, 100.0 * win_rate,
      report::format_percent(pop.worst_coupling).c_str());
  std::printf(
      "SHAPE CHECK [synthetic population]: %s\n\n",
      (win_rate > 0.7 && pop.coupling3.mean() < pop.summation.mean())
          ? "the paper's finding generalises beyond its three case studies"
          : "MISMATCH: coupling prediction not robust on random apps");
  std::printf(
      "Where coupling loses, the generated app has strong NON-adjacent\n"
      "data-flow (kernel k consuming a region written three kernels ago)\n"
      "that chains of adjacent kernels cannot see.  The NPB codes are\n"
      "adjacency-dominated, which is why the paper's assumption that \"only\n"
      "(N-1) pair-wise interactions are measured\" holds there; longer\n"
      "chains recover part of the gap (q=3 mean beats q=2 above).\n");
  return 0;
}
