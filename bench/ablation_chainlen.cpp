// Ablation: prediction accuracy vs coupling chain length (q = 1..N).
//
// Section 3 of the paper leaves "which group of equations will lead to the
// best prediction" as an open question, and section 4 observes empirically
// that larger data sets favour longer chains (BT: q=2 best at S, q=3 at W,
// q=4 at A).  This bench sweeps q for all three classes on BT and reports
// the average relative error per chain length (q = 1 is the summation
// predictor: all coefficients 1).

#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "bench/npb_study.hpp"
#include "npb/bt/bt_model.hpp"
#include "report/table.hpp"

int main() {
  using namespace kcoup;

  const std::vector<int> procs{4, 9, 16, 25};
  const std::vector<std::size_t> lengths{2, 3, 4, 5};

  report::Table t(
      "Ablation: BT average relative error vs coupling chain length");
  t.set_header({"Class", "summation", "q=2", "q=3", "q=4", "q=5"});

  struct Row {
    npb::ProblemClass cls;
    std::vector<int> ps;
  };
  const Row rows[] = {
      {npb::ProblemClass::kS, {4, 9, 16}},
      {npb::ProblemClass::kW, procs},
      {npb::ProblemClass::kA, procs},
  };

  for (const Row& row : rows) {
    const auto make = [&](int p, const machine::MachineConfig& cfg) {
      return npb::bt::make_modeled_bt(row.cls, p, cfg);
    };
    const bench::StudyAcrossProcs study = bench::study_across_procs(
        make, row.ps, lengths, machine::ibm_sp_p2sc());
    std::vector<std::string> cells{npb::to_string(row.cls),
                                   report::format_percent(
                                       bench::mean_summation_error(study))};
    for (std::size_t q : lengths) {
      cells.push_back(
          report::format_percent(bench::mean_coupling_error(study, q)));
    }
    t.add_row(std::move(cells));
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "Paper observation (section 4.1.4): \"as the dataset increases we need "
      "to\nconsider more kernels when computing coupling\" — every chain "
      "length should\nbeat summation at W/A, with diminishing differences "
      "between the q's.\n");
  return 0;
}
