#pragma once

#include <cstddef>
#include <vector>

#include "bench/bench_util.hpp"
#include "machine/config.hpp"
#include "npb/common/modeled_app.hpp"
#include "npb/common/problem.hpp"

namespace kcoup::bench {

/// Run a coupling study of one modeled application builder across processor
/// counts on a machine configuration.
template <typename MakeApp>
StudyAcrossProcs study_across_procs(MakeApp&& make_app,
                                    const std::vector<int>& procs,
                                    const std::vector<std::size_t>& lengths,
                                    const machine::MachineConfig& config) {
  StudyAcrossProcs out;
  out.procs = procs;
  coupling::StudyOptions options;
  options.chain_lengths = lengths;
  for (int p : procs) {
    auto modeled = make_app(p, config);
    if (out.kernel_names.empty()) {
      for (const auto* k : modeled->app().loop) {
        out.kernel_names.push_back(k->name());
      }
    }
    out.results.push_back(coupling::run_study(modeled->app(), options));
  }
  return out;
}

}  // namespace kcoup::bench
