// Ablation: time-weighted vs unweighted coupling coefficients.
//
// The paper weights each chain's coupling value by the chain's measured
// time when averaging into a kernel coefficient, "such that a large
// coupling value for a pair of kernels that attribute very little to the
// execution time results in an appropriate valued coefficient" (section 3).
// This bench compares the prediction error of that weighting against a
// plain average across BT/SP classes.

#include <cstdio>
#include <memory>
#include <vector>

#include "coupling/analysis.hpp"
#include "coupling/measurement.hpp"
#include "coupling/study.hpp"
#include "machine/config.hpp"
#include "npb/bt/bt_model.hpp"
#include "npb/sp/sp_model.hpp"
#include "report/table.hpp"
#include "trace/stats.hpp"

namespace {

using namespace kcoup;

struct CaseResult {
  double weighted_error = 0.0;
  double unweighted_error = 0.0;
};

CaseResult run_case(npb::ModeledApp& modeled, std::size_t q) {
  const coupling::LoopApplication& app = modeled.app();
  coupling::MeasurementHarness harness(&app, {});
  const double actual = harness.actual_total();
  const auto means = harness.all_isolated_means();
  const auto chains = coupling::measure_chains(harness, q, means);

  coupling::PredictionInputs in;
  in.isolated_means = means;
  in.iterations = app.iterations;
  for (std::size_t i = 0; i < app.prologue.size(); ++i) {
    in.prologue_s += harness.prologue_mean(i);
  }
  for (std::size_t i = 0; i < app.epilogue.size(); ++i) {
    in.epilogue_s += harness.epilogue_mean(i);
  }

  auto predict_with = [&](const std::vector<double>& alpha) {
    double loop = 0.0;
    for (std::size_t k = 0; k < means.size(); ++k) loop += alpha[k] * means[k];
    return in.prologue_s + app.iterations * loop + in.epilogue_s;
  };

  CaseResult r;
  r.weighted_error = trace::relative_error(
      predict_with(coupling::coupling_coefficients(means.size(), chains)),
      actual);
  r.unweighted_error = trace::relative_error(
      predict_with(
          coupling::coupling_coefficients_unweighted(means.size(), chains)),
      actual);
  return r;
}

}  // namespace

int main() {
  report::Table t("Ablation: time-weighted vs unweighted coefficients "
                  "(average relative error)");
  t.set_header({"Application", "Class", "q", "weighted (paper)", "unweighted"});

  struct Spec {
    const char* app;
    npb::ProblemClass cls;
    std::size_t q;
  };
  const Spec specs[] = {
      {"BT", npb::ProblemClass::kW, 3}, {"BT", npb::ProblemClass::kA, 4},
      {"SP", npb::ProblemClass::kW, 4}, {"SP", npb::ProblemClass::kA, 5},
  };
  const std::vector<int> procs{4, 9, 16, 25};

  for (const Spec& s : specs) {
    trace::RunningStats weighted, unweighted;
    for (int p : procs) {
      std::unique_ptr<npb::ModeledApp> modeled =
          s.app[0] == 'B'
              ? npb::bt::make_modeled_bt(s.cls, p, machine::ibm_sp_p2sc())
              : npb::sp::make_modeled_sp(s.cls, p, machine::ibm_sp_p2sc());
      const CaseResult r = run_case(*modeled, s.q);
      weighted.add(r.weighted_error);
      unweighted.add(r.unweighted_error);
    }
    t.add_row({s.app, npb::to_string(s.cls), std::to_string(s.q),
               report::format_percent(weighted.mean()),
               report::format_percent(unweighted.mean())});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "Expectation: the weighted coefficients are at least as accurate; the\n"
      "difference grows when kernel times are very unequal (Txinvr/Add are\n"
      "tiny next to the sweeps).\n");
  return 0;
}
