// Quickstart: the whole kcoup workflow on a three-kernel toy application.
//
//   1. describe your application as a cyclic loop of kernels,
//   2. measure isolated kernels, kernel chains, and the real run,
//   3. compute coupling values C_S = P_S / sum P_k (paper eq. 2),
//   4. turn them into per-kernel coefficients (paper section 3),
//   5. predict T = Tinit + I * sum_k alpha_k T_k + Tfinal and compare with
//      the traditional summation prediction.
//
// The toy kernels share a fake "cache": a kernel runs 20 % faster when it
// immediately follows a different kernel (constructive coupling), which is
// exactly the inter-kernel data reuse the paper measures in NPB BT/SP/LU.

#include <cstdio>
#include <memory>
#include <vector>

#include "coupling/kernel.hpp"
#include "coupling/study.hpp"
#include "report/table.hpp"

using namespace kcoup;

namespace {

/// Toy environment: remembers which kernel ran last, like a cache would.
struct Environment {
  int last = -1;
  double invoke(int id, double base) {
    const double t = (last != -1 && last != id) ? 0.8 * base : base;
    last = id;
    return t;
  }
};

}  // namespace

int main() {
  Environment env;

  // Step 1: describe the application.  CallableKernel wraps any callable
  // returning the invocation's seconds; real users plug in ModeledKernel
  // (machine model) or stopwatch-timed real code.
  coupling::CallableKernel smooth("Smooth", [&] { return env.invoke(0, 0.010); });
  coupling::CallableKernel flux("Flux", [&] { return env.invoke(1, 0.014); });
  coupling::CallableKernel update("Update", [&] { return env.invoke(2, 0.006); });

  coupling::LoopApplication app;
  app.name = "toy-stencil";
  app.loop = {&smooth, &flux, &update};
  app.iterations = 100;
  app.reset = [&] { env.last = -1; };

  // Steps 2-5: run_study does the measurements and both predictions.
  coupling::StudyOptions options;
  options.chain_lengths = {2, 3};
  const coupling::StudyResult r = coupling::run_study(app, options);

  std::printf("Application: %s, %d iterations of %zu kernels\n\n", app.name.c_str(),
              app.iterations, app.loop_size());

  report::Table means("Isolated kernel means (P_k)");
  means.set_header({"kernel", "seconds"});
  for (std::size_t k = 0; k < app.loop_size(); ++k) {
    means.add_row({app.loop[k]->name(),
                   report::format_seconds(r.isolated_means[k])});
  }
  std::printf("%s\n", means.to_string().c_str());

  for (const auto& cl : r.by_length) {
    report::Table chains("Coupling values, chains of " +
                         std::to_string(cl.length) + " (C_S = P_S / sum P_k)");
    chains.set_header({"chain", "P_S", "sum P_k", "C_S"});
    for (const auto& c : cl.chains) {
      chains.add_row({c.label, report::format_seconds(c.chain_time),
                      report::format_seconds(c.isolated_sum),
                      report::format_coupling(c.coupling())});
    }
    std::printf("%s\n", chains.to_string().c_str());
  }

  report::Table pred("Predictions vs reality");
  pred.set_header({"predictor", "seconds", "relative error"});
  pred.add_row({"Actual", report::format_seconds(r.actual_s), "-"});
  pred.add_row({"Summation", report::format_seconds(r.summation_s),
                report::format_percent(r.summation_error)});
  for (const auto& cl : r.by_length) {
    pred.add_row({"Coupling (q=" + std::to_string(cl.length) + ")",
                  report::format_seconds(cl.prediction_s),
                  report::format_percent(cl.relative_error)});
  }
  std::printf("%s\n", pred.to_string().c_str());

  std::printf("Summation ignores the 20 %% adjacency discount and overshoots;\n"
              "the coupling predictor folds it into the coefficients.\n");
  return 0;
}
