// Walkthrough of the paper's BT case study (section 4.1) on the modeled
// IBM SP: build the seven-kernel modeled application for Class W on nine
// processors, inspect one kernel's cost breakdown, measure couplings for
// chains of 2..4 kernels, and compare the predictors.  Also runs the *real*
// numeric BT port on the simmpi runtime at a small grid to show the two
// execution paths side by side.

#include <cstdio>

#include "coupling/modeled_kernel.hpp"
#include "coupling/study.hpp"
#include "machine/config.hpp"
#include "npb/bt/bt_app.hpp"
#include "npb/bt/bt_model.hpp"
#include "report/table.hpp"

using namespace kcoup;

int main() {
  // --- Modeled path: the paper's experiment. -----------------------------
  auto modeled =
      npb::bt::make_modeled_bt(npb::ProblemClass::kW, 9, machine::ibm_sp_p2sc());
  std::printf("Modeled application: %s on %s\n\n", modeled->app().name.c_str(),
              modeled->machine().config().name.c_str());

  // Cost breakdown of one Y_Solve invocation in application context
  // (cold machine, one loop pass first so the cache state is realistic).
  modeled->machine().reset_state();
  for (coupling::Kernel* k : modeled->app().loop) (void)k->invoke();
  report::Table bd("Y_Solve cost breakdown (second loop pass, seconds)");
  bd.set_header({"component", "seconds"});
  for (coupling::Kernel* k : modeled->app().loop) {
    if (k->name() != "Y_Solve") {
      (void)k->invoke();
      continue;
    }
    auto* mk = dynamic_cast<coupling::ModeledKernel*>(k);
    const machine::CostBreakdown c = mk->invoke_detailed();
    bd.add_row({"compute", report::format_seconds(c.compute_s)});
    for (std::size_t l = 0; l < c.cache_s.size(); ++l) {
      bd.add_row({"L" + std::to_string(l + 1) + " traffic",
                  report::format_seconds(c.cache_s[l])});
    }
    bd.add_row({"memory traffic", report::format_seconds(c.memory_s)});
    bd.add_row({"communication", report::format_seconds(c.comm_s)});
    bd.add_row({"synchronisation", report::format_seconds(c.sync_s)});
    bd.add_row({"total", report::format_seconds(c.total())});
  }
  std::printf("%s\n", bd.to_string().c_str());

  // Full study with chains of 2..4.
  coupling::StudyOptions options;
  options.chain_lengths = {2, 3, 4};
  const coupling::StudyResult r = coupling::run_study(modeled->app(), options);

  report::Table alpha("Coupling coefficients per kernel (alpha_k)");
  std::vector<std::string> header{"chain length"};
  for (const auto* k : modeled->app().loop) header.push_back(k->name());
  alpha.set_header(std::move(header));
  for (const auto& cl : r.by_length) {
    std::vector<std::string> row{"q=" + std::to_string(cl.length)};
    for (double a : cl.coefficients) row.push_back(report::format_coupling(a));
    alpha.add_row(std::move(row));
  }
  std::printf("%s\n", alpha.to_string().c_str());

  report::Table pred("Predictions (Class W, 9 processors)");
  pred.set_header({"predictor", "seconds", "relative error"});
  pred.add_row({"Actual", report::format_seconds(r.actual_s), "-"});
  pred.add_row({"Summation", report::format_seconds(r.summation_s),
                report::format_percent(r.summation_error)});
  for (const auto& cl : r.by_length) {
    pred.add_row({"Coupling (q=" + std::to_string(cl.length) + ")",
                  report::format_seconds(cl.prediction_s),
                  report::format_percent(cl.relative_error)});
  }
  std::printf("%s\n", pred.to_string().c_str());

  // --- Numeric path: the real solver on the simmpi runtime. ---------------
  npb::bt::BtConfig cfg;
  cfg.n = 12;
  cfg.iterations = 60;
  simmpi::NetworkParams net;
  net.latency_s = 35e-6;
  net.seconds_per_byte = 11e-9;
  net.sync_latency_s = 20e-6;
  const npb::bt::BtRunResult nr = npb::bt::run_bt(cfg, 4, net);
  std::printf("Numeric BT (n=%d, %d iterations, 4 simmpi ranks):\n", cfg.n,
              cfg.iterations);
  std::printf("  residual  %.3e -> %.3e\n", nr.initial_residual,
              nr.final_residual);
  std::printf("  max error vs manufactured solution: %.3e\n", nr.final_error);
  std::printf("  %zu messages, %zu payload bytes, virtual comm makespan %.3f ms\n",
              nr.run.messages, nr.run.payload_bytes,
              nr.run.makespan_s * 1e3);
  return 0;
}
