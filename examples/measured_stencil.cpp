// Measured mode: the coupling methodology applied to *real* code timed with
// the host clock, no machine model involved.  Three kernels stream a shared
// array sized to straddle the host's caches; because Blur's output is
// Scale's input, running them back-to-back reuses cache-resident data that
// isolated loops must re-fetch — real constructive coupling, measured live.
//
// Host timings are noisy, so this example prints what it measures without
// asserting; the deterministic reproduction of the paper lives in bench/.

#include <cstdio>
#include <numeric>
#include <vector>

#include "coupling/kernel.hpp"
#include "coupling/study.hpp"
#include "report/table.hpp"
#include "trace/stopwatch.hpp"

using namespace kcoup;

namespace {

class StencilApp {
 public:
  explicit StencilApp(std::size_t n) : a_(n, 1.0), b_(n, 2.0), c_(n, 0.0) {}

  double blur() {
    trace::Stopwatch w;
    const std::size_t n = a_.size();
    for (std::size_t i = 1; i + 1 < n; ++i) {
      b_[i] = 0.25 * a_[i - 1] + 0.5 * a_[i] + 0.25 * a_[i + 1];
    }
    return w.elapsed_s();
  }

  double scale() {
    trace::Stopwatch w;
    const std::size_t n = b_.size();
    for (std::size_t i = 0; i < n; ++i) c_[i] = 1.0001 * b_[i] + 0.1;
    return w.elapsed_s();
  }

  double accumulate() {
    trace::Stopwatch w;
    const std::size_t n = c_.size();
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i) s += c_[i];
    a_[0] = s * 1e-12;  // keep the reduction observable
    return w.elapsed_s();
  }

  void reset() {
    std::fill(a_.begin(), a_.end(), 1.0);
    std::fill(b_.begin(), b_.end(), 2.0);
    std::fill(c_.begin(), c_.end(), 0.0);
  }

 private:
  std::vector<double> a_, b_, c_;
};

}  // namespace

int main() {
  // ~24 MiB of working set: bigger than most L2s, close to L3 capacity,
  // so adjacency genuinely changes where loads are served from.
  StencilApp stencil(1 << 20);

  coupling::CallableKernel blur("Blur", [&] { return stencil.blur(); });
  coupling::CallableKernel scale("Scale", [&] { return stencil.scale(); });
  coupling::CallableKernel acc("Accumulate", [&] { return stencil.accumulate(); });

  coupling::LoopApplication app;
  app.name = "measured-stencil";
  app.loop = {&blur, &scale, &acc};
  app.iterations = 40;
  app.reset = [&] { stencil.reset(); };

  coupling::StudyOptions options;
  options.chain_lengths = {2, 3};
  options.measurement.repetitions = 30;
  options.measurement.warmup = 5;
  const coupling::StudyResult r = coupling::run_study(app, options);

  report::Table t("Measured stencil study (host wall clock)");
  t.set_header({"quantity", "value"});
  t.add_row({"actual run", report::format_seconds(r.actual_s) + " s"});
  t.add_row({"summation prediction",
             report::format_prediction(r.summation_s, r.summation_error)});
  for (const auto& cl : r.by_length) {
    t.add_row({"coupling prediction (q=" + std::to_string(cl.length) + ")",
               report::format_prediction(cl.prediction_s, cl.relative_error)});
  }
  std::printf("%s\n", t.to_string().c_str());

  for (const auto& cl : r.by_length) {
    report::Table chains("Measured couplings, q=" + std::to_string(cl.length));
    chains.set_header({"chain", "C_S"});
    for (const auto& c : cl.chains) {
      chains.add_row({c.label, report::format_coupling(c.coupling())});
    }
    std::printf("%s\n", chains.to_string().c_str());
  }

  std::printf("Couplings below 1 mean the chain reuses cache-resident data the\n"
              "isolated loops had to re-fetch; your exact values depend on this\n"
              "host's cache hierarchy and current load.\n");
  return 0;
}
