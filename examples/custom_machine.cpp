// Custom machine configurations: how coupling values depend on the memory
// subsystem (the paper's closing observation ties the number of coupling
// transitions to "the memory subsystem of the processor architecture").
//
// This example builds machines that differ only in L2 capacity and sweeps
// the modeled BT Class W couplings across them, then repeats the experiment
// on the generic_smp preset to show a different architecture produces
// different coupling values for the same application.

#include <cstdio>
#include <vector>

#include "coupling/study.hpp"
#include "machine/config.hpp"
#include "npb/bt/bt_model.hpp"
#include "report/table.hpp"

using namespace kcoup;

namespace {

double mean_coupling(const machine::MachineConfig& cfg) {
  auto modeled = npb::bt::make_modeled_bt(npb::ProblemClass::kW, 4, cfg);
  const coupling::StudyOptions options{{3}, {}};
  const auto r = coupling::run_study(modeled->app(), options);
  double mean = 0.0;
  for (const auto& c : r.by_length[0].chains) mean += c.coupling();
  return mean / static_cast<double>(r.by_length[0].chains.size());
}

}  // namespace

int main() {
  std::printf("BT Class W (4 processors), mean 3-kernel coupling on machines\n"
              "differing only in L2 capacity:\n\n");

  report::Table t("Coupling vs L2 capacity");
  t.set_header({"L2 capacity", "mean coupling C_S"});
  for (std::size_t mib : {1, 2, 4, 8, 16, 64}) {
    machine::MachineConfig cfg = machine::ibm_sp_p2sc();
    cfg.cache[1].capacity_bytes = mib * 1024 * 1024;
    cfg.name = std::to_string(mib) + "MiB-L2";
    t.add_row({std::to_string(mib) + " MiB",
               report::format_coupling(mean_coupling(cfg))});
  }
  std::printf("%s\n", t.to_string().c_str());

  // A machine you define entirely yourself.
  machine::MachineConfig mine;
  mine.name = "my-workstation";
  mine.flops_per_second = 8e9;
  mine.cache.push_back(machine::CacheLevel{48 * 1024, 0.03e-9});
  mine.cache.push_back(machine::CacheLevel{2 * 1024 * 1024, 0.1e-9});
  mine.cache.push_back(machine::CacheLevel{36 * 1024 * 1024, 0.3e-9});
  mine.memory_seconds_per_byte = 1.5e-9;
  mine.net_latency_s = 2e-6;
  mine.net_seconds_per_byte = 0.08e-9;
  mine.net_contention_coeff = 0.1;
  mine.sync_latency_s = 1e-6;
  mine.imbalance_coeff = 0.2;

  report::Table cmp("Same application, three architectures");
  cmp.set_header({"machine", "mean coupling C_S"});
  cmp.add_row({"ibm-sp-p2sc (paper testbed model)",
               report::format_coupling(mean_coupling(machine::ibm_sp_p2sc()))});
  cmp.add_row({"generic-smp preset",
               report::format_coupling(mean_coupling(machine::generic_smp()))});
  cmp.add_row({"my-workstation (hand-built)",
               report::format_coupling(mean_coupling(mine))});
  std::printf("%s\n", cmp.to_string().c_str());

  std::printf("Coupling is a property of the application *and* the machine —\n"
              "the same kernels couple differently on different memory\n"
              "subsystems, which is why coupling values must be measured per\n"
              "architecture before they can parameterise a model.\n");
  return 0;
}
