// Host-measured parallel BT: the real numeric solver's kernels timed with
// the per-thread CPU clock across 4 simmpi ranks, run through the same
// measurement protocol as the paper's experiments.  This is the closest
// this repository gets to what the paper's authors physically did on the
// IBM SP — except the "machine" is whatever host you run it on, so expect
// your coupling values to differ from the modeled tables (that is the
// point: coupling is a property of application AND machine).

#include <cstdio>

#include "npb/bt/bt_measured.hpp"
#include "report/table.hpp"

using namespace kcoup;

int main() {
  npb::bt::BtConfig cfg;
  cfg.n = 16;  // keep host time modest; raise for a more realistic study
  cfg.iterations = 40;

  simmpi::NetworkParams net;  // virtual network between the rank threads
  net.latency_s = 35e-6;
  net.seconds_per_byte = 11e-9;
  net.sync_latency_s = 20e-6;

  coupling::StudyOptions study;
  study.chain_lengths = {2, 3};
  study.measurement.repetitions = 20;
  study.measurement.warmup = 3;

  std::printf("Measuring numeric BT (n=%d, %d iterations) on 4 ranks with\n"
              "host CPU-time kernels and a virtual SP network...\n\n",
              cfg.n, cfg.iterations);
  const coupling::ParallelStudyResult r =
      npb::bt::run_bt_measured_study(cfg, 4, net, study);

  report::Table means("Isolated kernel means (host CPU time + virtual comm)");
  means.set_header({"kernel", "seconds"});
  const char* names[] = {"Copy_Faces", "X_Solve", "Y_Solve", "Z_Solve", "Add"};
  for (std::size_t k = 0; k < r.isolated_means.size(); ++k) {
    means.add_row({names[k], report::format_seconds(r.isolated_means[k])});
  }
  std::printf("%s\n", means.to_string().c_str());

  for (const auto& cl : r.by_length) {
    report::Table t("Measured couplings, q=" + std::to_string(cl.length));
    t.set_header({"chain", "C_S"});
    for (const auto& c : cl.chains) {
      t.add_row({c.label, report::format_coupling(c.coupling())});
    }
    std::printf("%s\n", t.to_string().c_str());
  }

  report::Table pred("Predictions");
  pred.set_header({"predictor", "seconds", "relative error"});
  pred.add_row({"Actual", report::format_seconds(r.actual_s), "-"});
  pred.add_row({"Summation", report::format_seconds(r.summation_s),
                report::format_percent(r.summation_error)});
  for (const auto& cl : r.by_length) {
    pred.add_row({"Coupling q=" + std::to_string(cl.length),
                  report::format_seconds(cl.prediction_s),
                  report::format_percent(cl.relative_error)});
  }
  std::printf("%s\n", pred.to_string().c_str());
  std::printf("Numbers vary run to run (host noise) — compare the relative\n"
              "errors, not the absolute seconds.\n");
  return 0;
}
