// Coupling database example: persist measured couplings to CSV and reuse
// them to predict a configuration that was never chain-measured — the
// reduced-experiment workflow of the paper's future-work section.

#include <cstdio>
#include <sstream>

#include "coupling/database.hpp"
#include "coupling/study.hpp"
#include "machine/config.hpp"
#include "npb/bt/bt_model.hpp"
#include "report/table.hpp"
#include "trace/stats.hpp"

using namespace kcoup;

int main() {
  const machine::MachineConfig cfg = machine::ibm_sp_p2sc();

  // --- Session 1: measure BT Class A couplings at 9 processors, save. ----
  coupling::CouplingDatabase db;
  {
    auto modeled = npb::bt::make_modeled_bt(npb::ProblemClass::kA, 9, cfg);
    const coupling::StudyOptions options{{4}, {}};
    const auto r = coupling::run_study(modeled->app(), options);
    db.record("BT", "A", 9, r.by_length[0].chains);
  }
  std::stringstream csv;
  db.save_csv(csv);
  std::printf("Stored %zu coupling records; CSV:\n%s\n", db.size(),
              csv.str().c_str());

  // --- Session 2: load the CSV and predict 25 processors without any chain
  // measurements there (only the five cheap isolated-kernel measurements).
  coupling::CouplingDatabase loaded;
  loaded.load_csv(csv);

  auto target = npb::bt::make_modeled_bt(npb::ProblemClass::kA, 25, cfg);
  const coupling::LoopApplication& app = target->app();
  coupling::MeasurementHarness harness(&app, {});
  const double actual = harness.actual_total();

  coupling::PredictionInputs in;
  in.isolated_means = harness.all_isolated_means();
  in.iterations = app.iterations;
  for (std::size_t i = 0; i < app.prologue.size(); ++i) {
    in.prologue_s += harness.prologue_mean(i);
  }
  for (std::size_t i = 0; i < app.epilogue.size(); ++i) {
    in.epilogue_s += harness.epilogue_mean(i);
  }

  const auto reused = loaded.reuse_chains_for("BT", "A", 25, 4, app.loop_size());
  const double reuse_pred = coupling::reuse_prediction(in, reused);
  const double summ_pred = coupling::summation_prediction(in);

  report::Table t("BT Class A @ 25 processors, predicted from P=9 couplings");
  t.set_header({"predictor", "seconds", "relative error", "chain measurements"});
  t.add_row({"Actual", report::format_seconds(actual), "-", "-"});
  t.add_row({"Summation", report::format_seconds(summ_pred),
             report::format_percent(trace::relative_error(summ_pred, actual)),
             "0"});
  t.add_row({"Coupling (reused from P=9)", report::format_seconds(reuse_pred),
             report::format_percent(trace::relative_error(reuse_pred, actual)),
             "0 at target (5 at donor)"});
  std::printf("%s\n", t.to_string().c_str());
  return 0;
}
