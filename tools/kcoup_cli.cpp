// kcoup — command-line driver for the kernel-coupling prediction library.
//
//   kcoup study --app bt --class W --procs 4,9,16,25 --chains 3
//   kcoup study --app sp --class A --procs 4,9 --chains 4,5 --csv out/sp_a
//   kcoup transitions --app bt --procs 4 --sizes 8,12,16,24,32,48,64
//   kcoup reuse --app bt --class A --donor 9 --targets 16,25 --chains 4
//   kcoup parallel --app lu --n 33 --iters 300 --procs 8 --chains 3
//   kcoup serve --db store.csv --port 7070 --shards 4
//   kcoup query --port 7070 --app bt --class W --procs 4,9 --chains 2
//   kcoup machines
//
// Every command runs against the modeled IBM SP by default; pass
// --machine generic-smp (or edit machine presets) for other architectures.

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "campaign/coordinator.hpp"
#include "campaign/executor.hpp"
#include "campaign/shard.hpp"
#include "coupling/database.hpp"
#include "coupling/study.hpp"
#include "machine/config.hpp"
#include "obs/trace.hpp"
#include "serve/client.hpp"
#include "serve/pack.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "npb/bt/bt_model.hpp"
#include "npb/bt/bt_timed.hpp"
#include "npb/lu/lu_model.hpp"
#include "npb/lu/lu_timed.hpp"
#include "npb/sp/sp_model.hpp"
#include "npb/sp/sp_timed.hpp"
#include "report/table.hpp"
#include "support/atomic_file.hpp"
#include "trace/stats.hpp"

namespace {

using namespace kcoup;

// --- Tiny argument parser ---------------------------------------------------

class Args {
 public:
  /// `bool_flags` names valueless flags (e.g. --serial): present means true,
  /// no value is consumed.  Every other --flag still requires a value.
  /// `allow_positional` lets bare arguments through (e.g. `kcoup merge DIR`);
  /// commands without positionals keep rejecting them.
  Args(int argc, char** argv, std::set<std::string> bool_flags = {},
       bool allow_positional = false)
      : bool_flags_(std::move(bool_flags)) {
    for (int i = 2; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        if (allow_positional) {
          positionals_.push_back(key);
          continue;
        }
        throw std::runtime_error("expected --flag, got '" + key + "'");
      }
      key = key.substr(2);
      if (bool_flags_.count(key)) {
        values_[key] = "1";
        continue;
      }
      if (i + 1 >= argc) {
        throw std::runtime_error("missing value for --" + key);
      }
      values_[key] = argv[++i];
    }
  }

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback = "") const {
    auto it = values_.find(key);
    if (it != values_.end()) {
      used_.insert(key);
      return it->second;
    }
    if (fallback.empty()) {
      throw std::runtime_error("missing required --" + key);
    }
    return fallback;
  }

  [[nodiscard]] std::optional<std::string> maybe(const std::string& key) const {
    auto it = values_.find(key);
    if (it == values_.end()) return std::nullopt;
    used_.insert(key);
    return it->second;
  }

  /// True iff the valueless flag was passed.
  [[nodiscard]] bool flag(const std::string& key) const {
    auto it = values_.find(key);
    if (it == values_.end()) return false;
    used_.insert(key);
    return true;
  }

  [[nodiscard]] const std::vector<std::string>& positionals() const {
    return positionals_;
  }

  void check_all_used() const {
    for (const auto& [k, v] : values_) {
      if (!used_.count(k)) {
        throw std::runtime_error("unknown flag --" + k);
      }
    }
  }

 private:
  std::set<std::string> bool_flags_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positionals_;
  mutable std::set<std::string> used_;
};

int parse_int_arg(const std::string& flag, const std::string& v) {
  try {
    std::size_t pos = 0;
    const int n = std::stoi(v, &pos);
    if (pos != v.size()) throw std::invalid_argument(v);
    return n;
  } catch (const std::exception&) {
    throw std::runtime_error("bad integer for --" + flag + ": '" + v + "'");
  }
}

int require_min(const std::string& flag, int n, int min) {
  if (n < min) {
    throw std::runtime_error("--" + flag + " must be >= " +
                             std::to_string(min) + ", got " +
                             std::to_string(n));
  }
  return n;
}

/// Strict comma-separated integer list: every item must parse completely
/// (no silent atoi truncation) and be >= `min_value`, and errors name the
/// flag the list came from.
std::vector<int> parse_int_list(const std::string& flag, const std::string& s,
                                int min_value = 1) {
  std::vector<int> out;
  std::istringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) {
      out.push_back(require_min(flag, parse_int_arg(flag, item), min_value));
    }
  }
  if (out.empty()) {
    throw std::runtime_error("empty list for --" + flag + ": '" + s + "'");
  }
  return out;
}

/// As parse_int_list but for size lists (chain lengths): negative values are
/// rejected here instead of wrapping to huge unsigned values.
std::vector<std::size_t> parse_size_list(const std::string& flag,
                                         const std::string& s) {
  std::vector<std::size_t> out;
  for (int v : parse_int_list(flag, s, 0)) {
    out.push_back(static_cast<std::size_t>(v));
  }
  return out;
}

double parse_double_arg(const std::string& flag, const std::string& v) {
  try {
    std::size_t pos = 0;
    const double d = std::stod(v, &pos);
    if (pos != v.size()) throw std::invalid_argument(v);
    return d;
  } catch (const std::exception&) {
    throw std::runtime_error("bad number for --" + flag + ": '" + v + "'");
  }
}

npb::ProblemClass parse_class(const std::string& s) {
  if (s == "S" || s == "s") return npb::ProblemClass::kS;
  if (s == "W" || s == "w") return npb::ProblemClass::kW;
  if (s == "A" || s == "a") return npb::ProblemClass::kA;
  if (s == "B" || s == "b") return npb::ProblemClass::kB;
  throw std::runtime_error("unknown class '" + s + "' (use S/W/A/B)");
}

machine::MachineConfig parse_machine(const std::string& s) {
  if (s == "ibm-sp" || s == "ibm-sp-p2sc") return machine::ibm_sp_p2sc();
  if (s == "generic-smp") return machine::generic_smp();
  throw std::runtime_error("unknown machine '" + s +
                           "' (use ibm-sp or generic-smp)");
}

std::unique_ptr<npb::ModeledApp> make_app(const std::string& app,
                                          npb::ProblemClass cls, int procs,
                                          const machine::MachineConfig& cfg) {
  if (app == "bt") return npb::bt::make_modeled_bt(cls, procs, cfg);
  if (app == "sp") return npb::sp::make_modeled_sp(cls, procs, cfg);
  if (app == "lu") return npb::lu::make_modeled_lu(cls, procs, cfg);
  throw std::runtime_error("unknown app '" + app + "' (use bt/sp/lu)");
}

void write_csv(const std::string& path, const report::Table& table) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path);
  out << table.to_csv();
  std::printf("wrote %s\n", path.c_str());
}

std::vector<std::string> parse_string_list(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  if (out.empty()) throw std::runtime_error("empty list: '" + s + "'");
  return out;
}

npb::Benchmark parse_benchmark(const std::string& s) {
  if (s == "bt" || s == "BT") return npb::Benchmark::kBT;
  if (s == "sp" || s == "SP") return npb::Benchmark::kSP;
  if (s == "lu" || s == "LU") return npb::Benchmark::kLU;
  throw std::runtime_error("unknown app '" + s + "' (use bt/sp/lu)");
}

// Turns tracing on for the enclosing scope and writes the Chrome trace JSON
// when the scope unwinds — normal return, partial-campaign exit code 3, or
// an exception on its way to main's handler all flush the same way.  With
// no path this is inert.
class TraceGuard {
 public:
  explicit TraceGuard(std::optional<std::string> path)
      : path_(std::move(path)) {
    if (path_) obs::Tracer::instance().enable();
  }

  TraceGuard(const TraceGuard&) = delete;
  TraceGuard& operator=(const TraceGuard&) = delete;

  ~TraceGuard() {
    if (!path_) return;
    obs::Tracer& tracer = obs::Tracer::instance();
    tracer.disable();
    if (tracer.write_chrome_trace_file(*path_)) {
      std::printf("wrote trace %s (%llu spans, %llu dropped)\n",
                  path_->c_str(),
                  static_cast<unsigned long long>(tracer.spans_recorded()),
                  static_cast<unsigned long long>(tracer.spans_dropped()));
    } else {
      std::fprintf(stderr, "kcoup: cannot write trace %s\n", path_->c_str());
    }
  }

 private:
  std::optional<std::string> path_;
};

// --- Commands ---------------------------------------------------------------

int cmd_study(const Args& args) {
  const std::string app_name = args.get("app");
  const npb::ProblemClass cls = parse_class(args.get("class"));
  const std::vector<int> procs =
      parse_int_list("procs", args.get("procs", "4,9,16"));
  const std::vector<std::size_t> chains =
      parse_size_list("chains", args.get("chains", "2"));
  const machine::MachineConfig cfg = parse_machine(args.get("machine", "ibm-sp"));
  const auto csv = args.maybe("csv");
  args.check_all_used();

  coupling::StudyOptions options;
  options.chain_lengths = chains;

  std::vector<coupling::StudyResult> results;
  std::vector<std::string> kernel_names;
  for (int p : procs) {
    auto modeled = make_app(app_name, cls, p, cfg);
    if (kernel_names.empty()) {
      for (const auto* k : modeled->app().loop) kernel_names.push_back(k->name());
    }
    results.push_back(coupling::run_study(modeled->app(), options));
  }

  for (std::size_t q : chains) {
    report::Table t("Coupling values (" + app_name + " class " +
                    npb::to_string(cls) + ", chains of " + std::to_string(q) +
                    ")");
    std::vector<std::string> header{"chain"};
    for (int p : procs) header.push_back(std::to_string(p) + " procs");
    t.set_header(std::move(header));
    const auto& first = results.front();
    for (const auto& cl : first.by_length) {
      if (cl.length != q) continue;
      for (std::size_t c = 0; c < cl.chains.size(); ++c) {
        std::vector<std::string> row{cl.chains[c].label};
        for (const auto& r : results) {
          for (const auto& rcl : r.by_length) {
            if (rcl.length == q) {
              row.push_back(report::format_coupling(rcl.chains[c].coupling()));
            }
          }
        }
        t.add_row(std::move(row));
      }
    }
    std::printf("%s\n", t.to_string().c_str());
    if (csv) write_csv(*csv + "_couplings_q" + std::to_string(q) + ".csv", t);
  }

  report::Table t("Predictions (" + app_name + " class " +
                  npb::to_string(cls) + ")");
  std::vector<std::string> header{"predictor"};
  for (int p : procs) header.push_back(std::to_string(p) + " procs");
  t.set_header(std::move(header));
  std::vector<std::string> actual{"Actual"}, summ{"Summation"};
  for (const auto& r : results) {
    actual.push_back(report::format_seconds(r.actual_s));
    summ.push_back(report::format_prediction(r.summation_s, r.summation_error));
  }
  t.add_row(std::move(actual));
  t.add_row(std::move(summ));
  for (std::size_t q : chains) {
    std::vector<std::string> row{"Coupling q=" + std::to_string(q)};
    for (const auto& r : results) {
      for (const auto& cl : r.by_length) {
        if (cl.length == q) {
          row.push_back(
              report::format_prediction(cl.prediction_s, cl.relative_error));
        }
      }
    }
    t.add_row(std::move(row));
  }
  std::printf("%s\n", t.to_string().c_str());
  if (csv) write_csv(*csv + "_predictions.csv", t);
  return 0;
}

int cmd_transitions(const Args& args) {
  const std::string app_name = args.get("app", "bt");
  const int procs =
      require_min("procs", parse_int_arg("procs", args.get("procs", "4")), 1);
  const std::vector<int> sizes =
      parse_int_list("sizes", args.get("sizes", "8,12,16,24,32,48,64,96,128"));
  const machine::MachineConfig cfg = parse_machine(args.get("machine", "ibm-sp"));
  const auto csv = args.maybe("csv");
  args.check_all_used();
  if (app_name != "bt") {
    throw std::runtime_error("transitions: only --app bt is supported");
  }

  report::Table t("Mean pairwise coupling vs grid size (P = " +
                  std::to_string(procs) + ")");
  t.set_header({"n", "mean C"});
  for (int n : sizes) {
    auto modeled = npb::bt::make_modeled_bt_grid(n, 50, procs, cfg);
    const coupling::StudyOptions options{{2}, {}};
    const auto r = coupling::run_study(modeled->app(), options);
    double mean = 0.0;
    for (const auto& c : r.by_length[0].chains) mean += c.coupling();
    mean /= static_cast<double>(r.by_length[0].chains.size());
    t.add_row({std::to_string(n), report::format_coupling(mean)});
  }
  std::printf("%s\n", t.to_string().c_str());
  if (csv) write_csv(*csv + "_transitions.csv", t);
  return 0;
}

int cmd_reuse(const Args& args) {
  const std::string app_name = args.get("app", "bt");
  const npb::ProblemClass cls = parse_class(args.get("class"));
  const int donor =
      require_min("donor", parse_int_arg("donor", args.get("donor")), 1);
  const std::vector<int> targets =
      parse_int_list("targets", args.get("targets"));
  const std::size_t q = static_cast<std::size_t>(
      require_min("chains", parse_int_arg("chains", args.get("chains", "3")),
                  1));
  const machine::MachineConfig cfg = parse_machine(args.get("machine", "ibm-sp"));
  args.check_all_used();

  coupling::CouplingDatabase db;
  {
    auto modeled = make_app(app_name, cls, donor, cfg);
    coupling::MeasurementHarness h(&modeled->app(), {});
    const auto means = h.all_isolated_means();
    db.record(app_name, npb::to_string(cls), donor,
              coupling::measure_chains(h, q, means));
  }

  report::Table t("Reuse of donor (P=" + std::to_string(donor) +
                  ") couplings at other processor counts");
  t.set_header({"target P", "actual", "summation", "coupling (reused)"});
  for (int p : targets) {
    auto modeled = make_app(app_name, cls, p, cfg);
    coupling::MeasurementHarness h(&modeled->app(), {});
    const double actual = h.actual_total();
    coupling::PredictionInputs in;
    in.isolated_means = h.all_isolated_means();
    in.iterations = modeled->app().iterations;
    for (std::size_t i = 0; i < modeled->app().prologue.size(); ++i) {
      in.prologue_s += h.prologue_mean(i);
    }
    for (std::size_t i = 0; i < modeled->app().epilogue.size(); ++i) {
      in.epilogue_s += h.epilogue_mean(i);
    }
    const auto reused = db.reuse_chains_for(app_name, npb::to_string(cls), p,
                                            q, modeled->app().loop_size());
    const double coup = coupling::reuse_prediction(in, reused);
    const double summ = coupling::summation_prediction(in);
    t.add_row({std::to_string(p), report::format_seconds(actual),
               report::format_prediction(
                   summ, trace::relative_error(summ, actual)),
               report::format_prediction(
                   coup, trace::relative_error(coup, actual))});
  }
  std::printf("%s\n", t.to_string().c_str());
  return 0;
}

int cmd_parallel(const Args& args) {
  const std::string app_name = args.get("app");
  const int n = require_min("n", parse_int_arg("n", args.get("n")), 1);
  const int iters =
      require_min("iters", parse_int_arg("iters", args.get("iters", "50")), 1);
  const int procs =
      require_min("procs", parse_int_arg("procs", args.get("procs", "4")), 1);
  const std::vector<std::size_t> chains =
      parse_size_list("chains", args.get("chains", "2"));
  const machine::MachineConfig cfg = parse_machine(args.get("machine", "ibm-sp"));
  args.check_all_used();

  coupling::StudyOptions study;
  study.chain_lengths = chains;
  coupling::ParallelStudyResult r;
  if (app_name == "bt") {
    npb::bt::TimedBtOptions o;
    o.machine = cfg;
    r = npb::bt::run_bt_parallel_study(n, iters, procs, o, study);
  } else if (app_name == "sp") {
    npb::sp::TimedSpOptions o;
    o.machine = cfg;
    r = npb::sp::run_sp_parallel_study(n, iters, procs, o, study);
  } else if (app_name == "lu") {
    npb::lu::TimedLuOptions o;
    o.machine = cfg;
    r = npb::lu::run_lu_parallel_study(n, iters, procs, o, study);
  } else {
    throw std::runtime_error("unknown app '" + app_name + "'");
  }

  report::Table t("Timed parallel study (" + app_name + ", n=" +
                  std::to_string(n) + ", P=" + std::to_string(procs) + ")");
  t.set_header({"predictor", "seconds", "relative error"});
  t.add_row({"Actual", report::format_seconds(r.actual_s), "-"});
  t.add_row({"Summation", report::format_seconds(r.summation_s),
             report::format_percent(r.summation_error)});
  for (const auto& cl : r.by_length) {
    t.add_row({"Coupling q=" + std::to_string(cl.length),
               report::format_seconds(cl.prediction_s),
               report::format_percent(cl.relative_error)});
  }
  std::printf("%s\n", t.to_string().c_str());
  return 0;
}

// Resolve a text sweep into an executable spec: machine preset looked up,
// one study cell with a modeled-app factory per valid (app, class, procs)
// triple, invalid rank counts skipped (reported unless quiet).  Shared by
// `campaign` (serial, concurrent and shard mode) and `merge`, which is what
// guarantees a merge plans the exact task set the shards partitioned.
campaign::CampaignSpec build_campaign_spec(
    const campaign::CampaignTextSpec& text, const campaign::FaultPlan& faults,
    bool quiet) {
  const machine::MachineConfig cfg = parse_machine(text.machine);
  campaign::CampaignSpec spec;
  spec.chain_lengths = text.chain_lengths;
  spec.measurement = text.measurement;
  spec.retry = text.retry;
  spec.pool_handles = text.pool_handles;
  spec.faults = faults;
  for (const std::string& app_name : text.applications) {
    const npb::Benchmark bench = parse_benchmark(app_name);
    for (const std::string& cls_name : text.configs) {
      const npb::ProblemClass cls = parse_class(cls_name);
      for (int p : text.ranks) {
        if (!npb::valid_rank_count(bench, p)) {
          if (!quiet) {
            std::printf("skipping %s class %s P=%d (invalid rank count)\n",
                        npb::to_string(bench).c_str(),
                        npb::to_string(cls).c_str(), p);
          }
          continue;
        }
        campaign::CampaignStudy cell;
        cell.application = npb::to_string(bench);
        cell.config = npb::to_string(cls);
        cell.ranks = p;
        const std::string lower = app_name;
        cell.factory = [lower, cls, p, cfg] {
          return campaign::own_app(make_app(lower, cls, p, cfg));
        };
        spec.studies.push_back(std::move(cell));
      }
    }
  }
  if (spec.studies.empty()) {
    throw std::runtime_error("campaign: no valid (app, class, procs) cells");
  }
  return spec;
}

/// Persist the sweep definition into the shard journal directory so
/// `kcoup merge DIR` can re-plan it without the original command line.
/// Every shard writes the same bytes; a shard launched with a *different*
/// sweep is an error (its partition would not tile the same plan).  The
/// temp name embeds the shard id because write_file_atomic's fixed ".tmp"
/// suffix would let concurrent shard launches tear each other's writes.
void persist_campaign_spec(const std::string& dir,
                           const campaign::CampaignTextSpec& text,
                           std::size_t shard_id) {
  const std::string path = dir + "/campaign.spec";
  const std::string content = campaign::to_text(text);
  {
    std::ifstream in(path, std::ios::binary);
    if (in) {
      std::ostringstream existing;
      existing << in.rdbuf();
      if (existing.str() != content) {
        throw std::runtime_error(
            "campaign spec mismatch: " + path +
            " was written for a different sweep; every shard of a campaign "
            "must be launched with identical spec flags");
      }
      return;
    }
  }
  const std::string tmp = path + ".tmp." + std::to_string(shard_id);
  {
    std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
    if (!out) throw std::runtime_error("cannot write " + tmp);
    out << content;
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      throw std::runtime_error("write to " + tmp + " failed");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("rename to " + path + " failed");
  }
}

void print_failure_table(const std::vector<campaign::TaskFailure>& failures) {
  report::Table t("Task failures (" + std::to_string(failures.size()) + ")");
  t.set_header({"task", "attempts", "error"});
  for (const campaign::TaskFailure& f : failures) {
    t.add_row({campaign::to_string(f.key), std::to_string(f.attempts),
               f.what});
  }
  std::fprintf(stderr, "%s\n", t.to_string().c_str());
}

// A whole sweep — apps x classes x processor counts x chain lengths — run
// through the deduplicating planner and the concurrent executor.
int cmd_campaign(const Args& args) {
  campaign::CampaignTextSpec text;
  if (const auto spec_path = args.maybe("spec")) {
    std::ifstream in(*spec_path);
    if (!in) throw std::runtime_error("cannot read spec file " + *spec_path);
    text = campaign::parse_campaign_text(in);
  } else {
    text.applications = parse_string_list(args.get("apps"));
    text.configs = parse_string_list(args.get("classes"));
    text.ranks = parse_int_list("procs", args.get("procs"));
  }
  // Flags override spec-file values.
  if (const auto v = args.maybe("chains")) {
    text.chain_lengths = parse_size_list("chains", *v);
  }
  if (const auto v = args.maybe("reps")) {
    text.measurement.repetitions =
        require_min("reps", parse_int_arg("reps", *v), 1);
  }
  if (const auto v = args.maybe("warmup")) {
    text.measurement.warmup =
        require_min("warmup", parse_int_arg("warmup", *v), 0);
  }
  if (const auto v = args.maybe("epilogue-reps")) {
    text.measurement.epilogue_repetitions =
        require_min("epilogue-reps", parse_int_arg("epilogue-reps", *v), 1);
  }
  if (const auto v = args.maybe("workers")) {
    // 0 workers used to silently mean "hardware concurrency"; an explicit
    // --workers 0 (or a negative count) is now rejected — omitting the flag
    // is how you ask for the default.
    text.workers = static_cast<std::size_t>(
        require_min("workers", parse_int_arg("workers", *v), 1));
  }
  if (const auto v = args.maybe("machine")) text.machine = *v;
  if (const auto v = args.maybe("retry-rsd")) {
    text.retry.max_relative_stddev = parse_double_arg("retry-rsd", *v);
  }
  if (const auto v = args.maybe("retry-max")) {
    text.retry.max_attempts =
        require_min("retry-max", parse_int_arg("retry-max", *v), 1);
  }
  const bool serial = args.flag("serial");
  const bool quiet = args.flag("quiet");
  if (args.flag("no-pool")) text.pool_handles = false;
  const auto db_path = args.maybe("db");
  const auto metrics_csv = args.maybe("metrics-csv");
  const auto metrics_jsonl = args.maybe("metrics-jsonl");
  const auto journal_path = args.maybe("journal");
  const auto trace_out = args.maybe("trace-out");
  const auto shards_arg = args.maybe("shards");
  const auto shard_id_arg = args.maybe("shard-id");
  const auto journal_dir = args.maybe("journal-dir");
  const bool steal = args.flag("steal");
  const auto steal_after_arg = args.maybe("steal-after-s");
  campaign::FaultPlan faults;
  if (const auto v = args.maybe("fault-seed")) {
    try {
      std::size_t pos = 0;
      faults.seed = std::stoull(*v, &pos);
      if (pos != v->size()) throw std::invalid_argument(*v);
    } catch (const std::exception&) {
      throw std::runtime_error("bad integer for --fault-seed: '" + *v + "'");
    }
  }
  const auto rate_arg = [&args](const std::string& flag, double* out) {
    if (const auto v = args.maybe(flag)) {
      const double r = parse_double_arg(flag, *v);
      if (!(r >= 0.0 && r <= 1.0)) {
        throw std::runtime_error("--" + flag + " must be in [0, 1], got " + *v);
      }
      *out = r;
    }
  };
  rate_arg("fault-construct-rate", &faults.construct_throw_rate);
  rate_arg("fault-measure-rate", &faults.measure_throw_rate);
  rate_arg("fault-noise-rate", &faults.noise_spike_rate);
  if (const auto v = args.maybe("fault-abort-after")) {
    faults.abort_after = static_cast<std::size_t>(
        require_min("fault-abort-after", parse_int_arg("fault-abort-after", *v),
                    1));
  }
  args.check_all_used();

  // Shard mode: this process is one of N cooperating `kcoup campaign`
  // invocations over the same sweep.  It executes only its hash partition,
  // journals into the shared directory, and `kcoup merge` joins the results
  // — so the per-process flags that assume a whole-campaign view are
  // rejected here rather than silently half-working.
  campaign::ShardOptions shard_options;
  const bool shard_mode = shards_arg.has_value() || shard_id_arg.has_value() ||
                          journal_dir.has_value() || steal ||
                          steal_after_arg.has_value();
  if (shard_mode) {
    if (!shards_arg || !shard_id_arg || !journal_dir) {
      throw std::runtime_error(
          "shard mode needs all of --shards, --shard-id and --journal-dir");
    }
    if (journal_dir->empty()) {
      throw std::runtime_error("--journal-dir must not be empty");
    }
    shard_options.shards = static_cast<std::size_t>(
        require_min("shards", parse_int_arg("shards", *shards_arg), 1));
    const int shard_id = parse_int_arg("shard-id", *shard_id_arg);
    if (shard_id < 0 ||
        static_cast<std::size_t>(shard_id) >= shard_options.shards) {
      throw std::runtime_error(
          "--shard-id must be in [0, " + std::to_string(shard_options.shards) +
          "), got " + *shard_id_arg);
    }
    shard_options.shard_id = static_cast<std::size_t>(shard_id);
    shard_options.journal_dir = *journal_dir;
    shard_options.steal = steal;
    if (steal_after_arg) {
      const double s = parse_double_arg("steal-after-s", *steal_after_arg);
      if (s < 0.0) {
        throw std::runtime_error("--steal-after-s must be >= 0, got " +
                                 *steal_after_arg);
      }
      shard_options.steal_after_s = s;
    }
    if (db_path) {
      throw std::runtime_error(
          "--db cannot be combined with --shards; `kcoup merge --out` "
          "records the database once all shards are joined");
    }
    if (journal_path) {
      throw std::runtime_error(
          "--journal cannot be combined with --shards; each shard journals "
          "to --journal-dir/shard-NNN.jsonl automatically");
    }
  }

  campaign::CampaignSpec spec = build_campaign_spec(text, faults, quiet);
  if (journal_path) spec.journal_path = *journal_path;

  if (shard_mode) {
    std::filesystem::create_directories(shard_options.journal_dir);
    persist_campaign_spec(shard_options.journal_dir, text,
                          shard_options.shard_id);
    const std::size_t shard_workers = serial ? 1 : text.workers;
    const TraceGuard trace_guard(trace_out);
    const campaign::ShardResult r =
        campaign::run_shard(spec, shard_options, shard_workers);
    if (!quiet) {
      report::Table t("Shard " + std::to_string(r.shard_id) + " of " +
                      std::to_string(r.shards));
      t.set_header({"metric", "value"});
      t.add_row({"tasks assigned", std::to_string(r.tasks_assigned)});
      t.add_row({"tasks resumed", std::to_string(r.tasks_resumed)});
      t.add_row({"tasks executed", std::to_string(r.tasks_executed)});
      t.add_row({"tasks stolen", std::to_string(r.tasks_stolen)});
      t.add_row({"steal scans", std::to_string(r.steal_scans)});
      std::printf("%s\n", t.to_string().c_str());
    }
    if (metrics_csv) {
      support::write_file_atomic(*metrics_csv, r.metrics.to_csv());
      if (!quiet) std::printf("wrote %s\n", metrics_csv->c_str());
    }
    if (metrics_jsonl) {
      support::append_file_atomic(*metrics_jsonl, r.metrics.to_jsonl());
      if (!quiet) std::printf("appended %s\n", metrics_jsonl->c_str());
    }
    if (!r.complete()) {
      print_failure_table(r.failures);
      std::fprintf(stderr,
                   "shard %zu incomplete: %zu tasks failed; `kcoup merge` "
                   "reports the campaign-wide failure table\n",
                   r.shard_id, r.failures.size());
      return 3;
    }
    return 0;
  }

  coupling::CouplingDatabase db;
  if (db_path && std::filesystem::exists(*db_path)) {
    // load_csv_file names the path and line in parse errors, so a corrupt
    // store fails with a pointer at the offending record.
    db.load_csv_file(*db_path);
  }

  const std::size_t workers = serial ? 1 : text.workers;
  const TraceGuard trace_guard(trace_out);
  const campaign::CampaignResult result =
      campaign::run_campaign(spec, workers, db_path ? &db : nullptr);

  if (db_path) {
    db.save_csv_file(*db_path);
    if (!quiet) {
      std::printf("coupling database: %zu records -> %s\n", db.size(),
                  db_path->c_str());
    }
  }

  if (!quiet) {
    report::Table t("Campaign predictions");
    std::vector<std::string> header{"app", "class", "P", "actual",
                                    "summation"};
    for (std::size_t q : spec.chain_lengths) {
      header.push_back("coupling q=" + std::to_string(q));
    }
    t.set_header(std::move(header));
    for (std::size_t s = 0; s < spec.studies.size(); ++s) {
      const campaign::CampaignStudy& cell = spec.studies[s];
      const coupling::StudyResult& r = result.studies[s];
      std::vector<std::string> row{cell.application, cell.config,
                                   std::to_string(cell.ranks),
                                   report::format_seconds(r.actual_s),
                                   report::format_prediction(
                                       r.summation_s, r.summation_error)};
      for (const auto& cl : r.by_length) {
        row.push_back(
            report::format_prediction(cl.prediction_s, cl.relative_error));
      }
      t.add_row(std::move(row));
    }
    std::printf("%s\n", t.to_string().c_str());
  }

  std::printf("%s\n", result.metrics.to_table().to_string().c_str());
  if (metrics_csv) {
    support::write_file_atomic(*metrics_csv, result.metrics.to_csv());
    std::printf("wrote %s\n", metrics_csv->c_str());
  }
  if (metrics_jsonl) {
    support::append_file_atomic(*metrics_jsonl, result.metrics.to_jsonl());
    std::printf("appended %s\n", metrics_jsonl->c_str());
  }

  if (!result.complete()) {
    print_failure_table(result.failures);
    std::fprintf(stderr,
                 "campaign incomplete: %zu of %zu tasks failed; affected "
                 "values are reported as nan\n",
                 result.failures.size(), result.metrics.tasks_executed);
    return 3;
  }
  return 0;
}

// Join the journals of an N-shard campaign back into one result (and
// optionally one coupling database).  The spec comes from the directory's
// campaign.spec (written by the shards) or --spec; re-planning it here is
// what lets the merge know the complete task set, so it can tell "failed"
// (journaled failure record) from "missing" (no record anywhere).
int cmd_merge(const Args& args) {
  std::string dir;
  if (!args.positionals().empty()) {
    if (args.positionals().size() > 1) {
      throw std::runtime_error("merge takes one journal directory, got " +
                               std::to_string(args.positionals().size()));
    }
    dir = args.positionals().front();
  }
  if (const auto v = args.maybe("journal-dir")) dir = *v;
  if (dir.empty()) {
    throw std::runtime_error(
        "merge: journal directory required (kcoup merge DIR)");
  }
  campaign::MergeOptions options;
  options.journal_dir = dir;
  if (const auto v = args.maybe("shards")) {
    options.shards = static_cast<std::size_t>(
        require_min("shards", parse_int_arg("shards", *v), 1));
  }
  options.steal = args.flag("steal");
  if (const auto v = args.maybe("workers")) {
    options.workers = static_cast<std::size_t>(
        require_min("workers", parse_int_arg("workers", *v), 1));
  }
  const bool quiet = args.flag("quiet");
  const auto out_path = args.maybe("out");
  const auto spec_path = args.maybe("spec");
  const auto metrics_csv = args.maybe("metrics-csv");
  const auto metrics_jsonl = args.maybe("metrics-jsonl");
  const auto trace_out = args.maybe("trace-out");
  args.check_all_used();

  const std::string spec_file = spec_path ? *spec_path : dir + "/campaign.spec";
  std::ifstream in(spec_file);
  if (!in) {
    throw std::runtime_error("cannot read campaign spec " + spec_file +
                             " (shards write it into the journal directory; "
                             "or pass --spec)");
  }
  const campaign::CampaignTextSpec text = campaign::parse_campaign_text(in);
  const campaign::CampaignSpec spec =
      build_campaign_spec(text, campaign::FaultPlan{}, quiet);

  const TraceGuard trace_guard(trace_out);
  const campaign::MergeResult merged = campaign::merge_shards(spec, options);

  if (!quiet) {
    report::Table t("Shard journals (" + dir + ")");
    t.set_header({"shard", "journal", "completed", "failed", "malformed",
                  "torn tail", "owned", "stolen"});
    for (const campaign::ShardJournalStats& s : merged.shard_stats) {
      t.add_row({std::to_string(s.shard), s.exists ? "yes" : "missing",
                 std::to_string(s.completed), std::to_string(s.failed),
                 std::to_string(s.malformed), s.torn_tail ? "yes" : "no",
                 std::to_string(s.owned_completed),
                 std::to_string(s.stolen_completed)});
    }
    std::printf("%s\n", t.to_string().c_str());
    std::printf(
        "merge: %zu shards, %zu of %zu planned tasks from journals, "
        "%zu stolen by coordinator, %zu duplicate records, %zu torn tails\n\n",
        merged.shards, merged.tasks_merged, merged.tasks_planned,
        merged.tasks_stolen, merged.duplicates, merged.torn_tails);

    report::Table p("Merged campaign predictions");
    std::vector<std::string> header{"app", "class", "P", "actual",
                                    "summation"};
    for (std::size_t q : spec.chain_lengths) {
      header.push_back("coupling q=" + std::to_string(q));
    }
    p.set_header(std::move(header));
    for (std::size_t s = 0; s < spec.studies.size(); ++s) {
      const campaign::CampaignStudy& cell = spec.studies[s];
      const coupling::StudyResult& r = merged.result.studies[s];
      std::vector<std::string> row{cell.application, cell.config,
                                   std::to_string(cell.ranks),
                                   report::format_seconds(r.actual_s),
                                   report::format_prediction(
                                       r.summation_s, r.summation_error)};
      for (const auto& cl : r.by_length) {
        row.push_back(
            report::format_prediction(cl.prediction_s, cl.relative_error));
      }
      p.add_row(std::move(row));
    }
    std::printf("%s\n", p.to_string().c_str());
  }

  if (out_path) {
    coupling::CouplingDatabase db;
    campaign::record_campaign(spec, merged.result, db);
    db.save_csv_file(*out_path);
    if (!quiet) {
      std::printf("coupling database: %zu records -> %s\n", db.size(),
                  out_path->c_str());
    }
  }
  if (metrics_csv) {
    support::write_file_atomic(*metrics_csv, merged.result.metrics.to_csv());
    if (!quiet) std::printf("wrote %s\n", metrics_csv->c_str());
  }
  if (metrics_jsonl) {
    support::append_file_atomic(*metrics_jsonl,
                                merged.result.metrics.to_jsonl());
    if (!quiet) std::printf("appended %s\n", metrics_jsonl->c_str());
  }

  if (!merged.missing.empty()) {
    report::Table t("Unrecorded tasks (" +
                    std::to_string(merged.missing.size()) + ")");
    t.set_header({"task"});
    for (const campaign::TaskKey& k : merged.missing) {
      t.add_row({campaign::to_string(k)});
    }
    std::fprintf(stderr, "%s\n", t.to_string().c_str());
    std::fprintf(stderr,
                 "merge incomplete: %zu of %zu planned tasks have no journal "
                 "record (dead shard?); re-run the shard, or re-merge with "
                 "--steal to execute them here\n",
                 merged.missing.size(), merged.tasks_planned);
    return 5;
  }
  if (!merged.result.failures.empty()) {
    print_failure_table(merged.result.failures);
    std::fprintf(stderr,
                 "merge completed with %zu failed tasks; affected values are "
                 "reported as nan\n",
                 merged.result.failures.size());
    return 3;
  }
  return 0;
}

// --- Prediction service -----------------------------------------------------

std::atomic<bool> g_serve_stop{false};

void serve_signal_handler(int) { g_serve_stop.store(true); }

int cmd_serve(const Args& args) {
  const std::string db_path = args.get("db");
  const int port = parse_int_arg("port", args.get("port", "0"));
  // --shards is the event-loop-native name; --workers stays as an alias so
  // existing invocations keep meaning "shard count".
  const int workers = parse_int_arg(
      "shards", args.get("shards", args.get("workers", "4")));
  const int max_inflight =
      parse_int_arg("max-inflight", args.get("max-inflight", "0"));
  const int max_pipeline =
      parse_int_arg("max-pipeline", args.get("max-pipeline", "64"));
  const int poll_ms = parse_int_arg("poll-ms", args.get("poll-ms", "500"));
  const int cache_capacity =
      parse_int_arg("cache-capacity", args.get("cache-capacity", "1024"));
  const int max_requests =
      parse_int_arg("max-requests", args.get("max-requests", "0"));
  const int slowlog_slowest =
      parse_int_arg("slowlog-slowest", args.get("slowlog-slowest", "32"));
  const int slowlog_failed =
      parse_int_arg("slowlog-failed", args.get("slowlog-failed", "64"));
  const machine::MachineConfig cfg =
      parse_machine(args.get("machine", "ibm-sp"));
  const bool no_models = args.flag("no-models");
  const bool quiet = args.flag("quiet");
  const bool force_poll = args.flag("force-poll");
  const auto port_file = args.maybe("port-file");
  const auto metrics_csv = args.maybe("metrics-csv");
  const auto metrics_jsonl = args.maybe("metrics-jsonl");
  const auto trace_out = args.maybe("trace-out");
  args.check_all_used();
  if (workers < 1) throw std::runtime_error("--shards/--workers must be >= 1");
  if (max_pipeline < 1) {
    throw std::runtime_error("--max-pipeline must be >= 1");
  }
  if (poll_ms < 0) throw std::runtime_error("--poll-ms must be >= 0");
  if (cache_capacity < 0) {
    throw std::runtime_error("--cache-capacity must be >= 0");
  }
  if (slowlog_slowest < 1 || slowlog_failed < 1) {
    throw std::runtime_error(
        "--slowlog-slowest/--slowlog-failed must be >= 1");
  }

  const TraceGuard trace_guard(trace_out);
  serve::NpbWorkload workload(cfg);
  serve::EngineOptions engine_options;
  engine_options.cache_capacity = static_cast<std::size_t>(cache_capacity);
  serve::QueryEngine engine(&workload, engine_options);
  serve::SnapshotOptions snapshot_options;
  snapshot_options.fit_scaling_models = !no_models;
  serve::SnapshotSource source(
      db_path,
      [&engine](const std::string& a, const std::string& c, int p) {
        return engine.cell(a, c, p);
      },
      snapshot_options);
  source.load();

  serve::ServerConfig config;
  config.port = port;
  config.workers = static_cast<std::size_t>(workers);
  config.max_inflight = static_cast<std::size_t>(max_inflight);
  config.max_pipeline = static_cast<std::size_t>(max_pipeline);
  config.force_poll = force_poll;
  config.slowlog_slowest = static_cast<std::size_t>(slowlog_slowest);
  config.slowlog_failed = static_cast<std::size_t>(slowlog_failed);
  serve::Server server(&source, &engine, config);
  server.start();  // throws serve::BindError -> exit code 4 (see main)
  if (poll_ms > 0) source.start_polling(std::chrono::milliseconds(poll_ms));

  if (port_file) {
    std::ofstream out(*port_file);
    if (!out) throw std::runtime_error("cannot write " + *port_file);
    out << server.port() << '\n';
  }
  if (!quiet) {
    std::printf("kcoup serve: listening on %s:%d (%d shards, db %s)\n",
                config.host.c_str(), server.port(), workers, db_path.c_str());
  }

  g_serve_stop.store(false);
  std::signal(SIGINT, serve_signal_handler);
  std::signal(SIGTERM, serve_signal_handler);
  while (!g_serve_stop.load()) {
    if (max_requests > 0 &&
        server.requests_handled() >=
            static_cast<std::uint64_t>(max_requests)) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);

  source.stop_polling();
  server.stop();  // graceful drain: in-flight requests finish first

  const serve::ServeMetrics metrics = server.metrics();
  if (!quiet) {
    std::printf("%s\n", metrics.to_table().to_string().c_str());
  }
  if (metrics_csv) {
    support::write_file_atomic(*metrics_csv, metrics.to_csv());
    if (!quiet) std::printf("wrote %s\n", metrics_csv->c_str());
  }
  if (metrics_jsonl) {
    support::append_file_atomic(*metrics_jsonl, metrics.to_jsonl());
    if (!quiet) std::printf("appended %s\n", metrics_jsonl->c_str());
  }
  return 0;
}

// --- Snapshot packing -------------------------------------------------------

int cmd_pack(const Args& args) {
  const bool quiet = args.flag("quiet");

  if (args.flag("verify")) {
    // kcoup pack --verify db.kcs: decode the whole file — every checksum,
    // every table — and report what it holds.  Any defect exits 1 with the
    // loader's named error.
    if (args.positionals().size() != 1) {
      throw std::runtime_error("pack --verify: expected exactly one .kcs path");
    }
    const std::string path = args.positionals().front();
    args.check_all_used();
    const serve::PackStats stats = serve::verify_packed_snapshot(path);
    if (!quiet) {
      std::printf(
          "kcoup pack: %s ok (format v%u, %zu bytes, %zu records, "
          "%zu alpha groups, %zu modeled apps, %zu fitted apps, "
          "%zu transitions)\n",
          path.c_str(), stats.format_version, stats.bytes, stats.records,
          stats.alpha_groups, stats.modeled_applications,
          stats.fitted_applications, stats.transitions);
    }
    return 0;
  }

  // kcoup pack db.csv -o db.kcs: CSV stays the interchange format; the
  // packed snapshot is the serving artifact.  The snapshot is built exactly
  // as `kcoup serve` would build it from the CSV (same workload, same
  // machine model, same scaling-model fit), so a server loading either file
  // answers bit-identically — as long as --machine/--no-models match.
  if (args.positionals().size() != 1) {
    throw std::runtime_error("pack: expected exactly one input CSV path");
  }
  const std::string in_path = args.positionals().front();
  std::string default_out = in_path;
  if (default_out.size() > 4 && default_out.ends_with(".csv")) {
    default_out.resize(default_out.size() - 4);
  }
  default_out += ".kcs";
  const std::string out_path = args.get("out", default_out);
  const machine::MachineConfig cfg =
      parse_machine(args.get("machine", "ibm-sp"));
  const bool no_models = args.flag("no-models");
  args.check_all_used();

  if (serve::is_packed_snapshot_file(in_path)) {
    throw std::runtime_error("pack: " + in_path +
                             " is already a packed snapshot");
  }
  coupling::CouplingDatabase db;
  db.load_csv_file(in_path);

  serve::NpbWorkload workload(cfg);
  serve::QueryEngine engine(&workload);
  serve::SnapshotOptions snapshot_options;
  snapshot_options.fit_scaling_models = !no_models;
  const serve::PredictorSnapshot snapshot(
      std::move(db), 0,
      [&engine](const std::string& a, const std::string& c, int p) {
        return engine.cell(a, c, p);
      },
      snapshot_options);
  const serve::PackStats stats = serve::pack_snapshot_file(snapshot, out_path);
  if (!quiet) {
    std::printf(
        "kcoup pack: %s -> %s (format v%u, %zu bytes, %zu records, "
        "%zu alpha groups, %zu modeled apps, %zu fitted apps, "
        "%zu transitions)\n",
        in_path.c_str(), out_path.c_str(), stats.format_version, stats.bytes,
        stats.records, stats.alpha_groups, stats.modeled_applications,
        stats.fitted_applications, stats.transitions);
  }
  return 0;
}

// --- Model-fit / transition inspection --------------------------------------

void append_json_number(std::string* out, double v) {
  if (!std::isfinite(v)) {
    *out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  *out += buf;
}

/// `kcoup fit db.csv|db.kcs`: surface what the modeling subsystem selected —
/// per-kernel piecewise model forms with coefficients and LOO-CV error, and
/// the detected coupling transitions.  A CSV is fitted on the spot (same
/// workload and machine model as `kcoup serve`/`kcoup pack`); a packed
/// snapshot reports the sections it already carries.
int cmd_fit(const Args& args) {
  if (args.positionals().size() != 1) {
    throw std::runtime_error(
        "fit: expected exactly one database path (.csv or .kcs)");
  }
  const std::string path = args.positionals().front();
  const machine::MachineConfig cfg =
      parse_machine(args.get("machine", "ibm-sp"));
  const bool no_models = args.flag("no-models");
  const bool json = args.flag("json");
  args.check_all_used();

  serve::NpbWorkload workload(cfg);
  serve::QueryEngine engine(&workload);
  std::shared_ptr<const serve::PredictorSnapshot> loaded;
  std::optional<serve::PredictorSnapshot> built;
  const serve::PredictorSnapshot* snapshot = nullptr;
  if (serve::is_packed_snapshot_file(path)) {
    loaded = serve::load_packed_snapshot(path, 0);
    snapshot = loaded.get();
  } else {
    coupling::CouplingDatabase db;
    db.load_csv_file(path);
    serve::SnapshotOptions options;
    options.fit_scaling_models = !no_models;
    built.emplace(
        std::move(db), 0,
        [&engine](const std::string& a, const std::string& c, int p) {
          return engine.cell(a, c, p);
        },
        options);
    snapshot = &*built;
  }

  if (json) {
    std::string out = "{\"models\":[";
    bool first_app = true;
    for (const auto& [app, kernels] : snapshot->fitted_models()) {
      if (!first_app) out += ',';
      first_app = false;
      out += "{\"app\":\"" + app + "\",\"kernels\":[";
      for (std::size_t k = 0; k < kernels.size(); ++k) {
        const model::PiecewiseModel& pw = kernels[k];
        if (k > 0) out += ',';
        out += "{\"kernel\":" + std::to_string(k) + ",\"cv_rmse\":";
        append_json_number(&out, pw.cv_rmse());
        out += ",\"breakpoints\":[";
        for (std::size_t b = 0; b < pw.breakpoints.size(); ++b) {
          if (b > 0) out += ',';
          append_json_number(&out, pw.breakpoints[b]);
        }
        out += "],\"segments\":[";
        for (std::size_t s = 0; s < pw.segments.size(); ++s) {
          const model::ModelSegment& seg = pw.segments[s];
          if (s > 0) out += ',';
          out += "{\"p_min\":";
          append_json_number(&out, seg.p_min);
          out += ",\"p_max\":";
          append_json_number(&out, seg.p_max);
          out += ",\"samples\":" + std::to_string(seg.sample_count);
          out += ",\"form\":\"" + seg.model.term_names() + "\"";
          out += ",\"degenerate\":";
          out += seg.model.degenerate ? "true" : "false";
          out += ",\"cv_rmse\":";
          append_json_number(&out, seg.model.cv_rmse);
          out += ",\"terms\":[";
          for (std::size_t t = 0; t < seg.model.terms.size(); ++t) {
            const model::FittedTerm& term = seg.model.terms[t];
            if (t > 0) out += ',';
            out += "{\"id\":" + std::to_string(term.id) + ",\"name\":\"" +
                   std::string(model::term_at(term.id).name) +
                   "\",\"coefficient\":";
            append_json_number(&out, term.coefficient);
            out += '}';
          }
          out += "]}";
        }
        out += "]}";
      }
      out += "]}";
    }
    out += "],\"transitions\":[";
    bool first_t = true;
    for (const model::CouplingTransition& t : snapshot->transitions()) {
      if (!first_t) out += ',';
      first_t = false;
      out += "{\"app\":\"" + t.application + "\",\"config\":\"" + t.config +
             "\",\"chain\":" + std::to_string(t.chain_length) +
             ",\"start\":" + std::to_string(t.chain_start) +
             ",\"ranks_lo\":" + std::to_string(t.ranks_lo) +
             ",\"ranks_hi\":" + std::to_string(t.ranks_hi) + ",\"boundary\":";
      append_json_number(&out, t.boundary);
      out += ",\"coupling_before\":";
      append_json_number(&out, t.coupling_before);
      out += ",\"coupling_after\":";
      append_json_number(&out, t.coupling_after);
      out += '}';
    }
    out += "]}";
    std::printf("%s\n", out.c_str());
    return 0;
  }

  report::Table models("Selected models (" + path + ")");
  models.set_header({"app", "kernel", "P range", "form", "cv rmse", "model"});
  for (const auto& [app, kernels] : snapshot->fitted_models()) {
    for (std::size_t k = 0; k < kernels.size(); ++k) {
      for (const model::ModelSegment& seg : kernels[k].segments) {
        char range[64];
        std::snprintf(range, sizeof range, "%g..%g", seg.p_min, seg.p_max);
        char cv[32];
        if (std::isfinite(seg.model.cv_rmse)) {
          std::snprintf(cv, sizeof cv, "%.3g", seg.model.cv_rmse);
        } else {
          std::snprintf(cv, sizeof cv, "-");
        }
        models.add_row({app, std::to_string(k), range, seg.model.term_names(),
                        cv, seg.model.to_string()});
      }
    }
  }
  std::printf("%s\n", models.to_string().c_str());

  report::Table transitions("Coupling transitions");
  transitions.set_header({"app", "class", "q", "start", "P lo", "P hi",
                          "boundary", "before", "after"});
  for (const model::CouplingTransition& t : snapshot->transitions()) {
    char boundary[32], before[32], after[32];
    std::snprintf(boundary, sizeof boundary, "%g", t.boundary);
    std::snprintf(before, sizeof before, "%.4g", t.coupling_before);
    std::snprintf(after, sizeof after, "%.4g", t.coupling_after);
    transitions.add_row({t.application, t.config,
                         std::to_string(t.chain_length),
                         std::to_string(t.chain_start),
                         std::to_string(t.ranks_lo),
                         std::to_string(t.ranks_hi), boundary, before, after});
  }
  std::printf("%s\n", transitions.to_string().c_str());
  std::printf(
      "kcoup fit: %zu modeled app(s), %zu transition(s), format-stable "
      "term registry of %zu terms\n",
      snapshot->fitted_application_count(), snapshot->transition_count(),
      model::term_registry().size());
  return 0;
}

int cmd_query(const Args& args) {
  const std::string host = args.get("host", "127.0.0.1");
  const int port = parse_int_arg("port", args.get("port"));
  const bool stats = args.flag("stats");
  const bool raw = args.flag("raw");

  // Trace context: --trace-out enables the client-side Tracer and exports
  // its spans on exit; --trace-id pins the id sent with every request
  // (otherwise ids are auto-generated per request when tracing is on).
  // The server echoes the id and annotates its own span with it, so this
  // export and the server's --trace-out stitch into one timeline.
  const std::optional<std::string> trace_out = args.maybe("trace-out");
  const std::optional<std::string> trace_id = args.maybe("trace-id");
  TraceGuard trace_guard(trace_out);

  serve::Client client;
  if (trace_id.has_value()) {
    client.set_trace_id(*trace_id);
  } else if (trace_out.has_value()) {
    client.auto_trace_ids();
  }
  if (stats) {
    args.check_all_used();
    client.connect(host, port);
    const auto response = client.stats();
    if (!response.has_value()) {
      throw std::runtime_error("query: no stats response from " + host + ":" +
                               std::to_string(port));
    }
    std::printf("%s\n", response->c_str());
    return 0;
  }

  const std::string app_name = args.get("app");
  const std::string cls = args.get("class");
  const std::vector<int> procs =
      parse_int_list("procs", args.get("procs", "4"));
  const std::vector<std::size_t> chains =
      parse_size_list("chains", args.get("chains", "2"));
  args.check_all_used();

  std::vector<serve::QueryKey> queries;
  for (int p : procs) {
    for (std::size_t q : chains) {
      queries.push_back(serve::QueryKey{app_name, cls, p, q});
    }
  }
  client.connect(host, port);
  const auto results = client.predict_batch(queries);
  if (!results.has_value()) {
    throw std::runtime_error("query: no response from " + host + ":" +
                             std::to_string(port));
  }

  if (raw) {
    for (const serve::Prediction& p : *results) {
      std::printf("%s\n", serve::prediction_json(p).c_str());
    }
    return 0;
  }
  report::Table t("Served predictions (" + host + ":" + std::to_string(port) +
                  ")");
  t.set_header({"app", "class", "P", "q", "actual", "summation", "coupling",
                "source", "model"});
  bool any_failed = false;
  for (const serve::Prediction& p : *results) {
    if (!p.ok) {
      any_failed = true;
      t.add_row({p.key.application, p.key.config, std::to_string(p.key.ranks),
                 std::to_string(p.key.chain_length), "-", "-",
                 "error: " + p.error, "-", "-"});
      continue;
    }
    t.add_row({p.key.application, p.key.config, std::to_string(p.key.ranks),
               std::to_string(p.key.chain_length),
               report::format_seconds(p.actual_s),
               report::format_prediction(p.summation_s, p.summation_error),
               report::format_prediction(p.coupling_s, p.coupling_error),
               p.source, p.model_form.empty() ? "-" : p.model_form});
  }
  std::printf("%s\n", t.to_string().c_str());
  return any_failed ? 1 : 0;
}

/// Pull every *top-level* `"name":<number>` pair out of a JSON object —
/// the flat shape of the server's stats frame.  The scanner tracks nesting
/// depth, so nested objects and arrays (the stats frame's "windows" /
/// "sources" / "drift" sections, or any field a future server adds) are
/// skipped whole rather than having their inner keys mistaken for
/// top-level fields.  Strings are skipped string-aware: a brace or quote
/// inside a quoted value never changes depth.  Non-numeric values are
/// skipped.
std::map<std::string, double> parse_flat_json_numbers(const std::string& s) {
  std::map<std::string, double> out;
  int depth = 0;
  std::size_t i = 0;
  while (i < s.size()) {
    const char c = s[i];
    if (c == '{' || c == '[') {
      ++depth;
      ++i;
      continue;
    }
    if (c == '}' || c == ']') {
      --depth;
      ++i;
      continue;
    }
    if (c != '"') {
      ++i;
      continue;
    }
    std::size_t end = i + 1;
    while (end < s.size() && s[end] != '"') {
      end += s[end] == '\\' ? 2 : 1;
    }
    if (end >= s.size()) break;
    if (depth != 1) {  // a string inside a nested value: not a flat key
      i = end + 1;
      continue;
    }
    const std::string key = s.substr(i + 1, end - i - 1);
    std::size_t j = end + 1;
    while (j < s.size() && s[j] == ' ') ++j;
    if (j < s.size() && s[j] == ':') {
      ++j;
      while (j < s.size() && s[j] == ' ') ++j;
      char* num_end = nullptr;
      const double v = std::strtod(s.c_str() + j, &num_end);
      if (num_end != s.c_str() + j) {
        out[key] = v;
        i = static_cast<std::size_t>(num_end - s.c_str());
        continue;
      }
    }
    i = end + 1;
  }
  return out;
}

/// The balanced `{...}` value of the first `"key":{` occurrence (any
/// depth), or "" when absent — how `kcoup top` digs the nested "windows" /
/// "sources" / "drift" sections out of the stats frame before handing each
/// one back to parse_flat_json_numbers.
std::string extract_json_object(const std::string& s, const std::string& key) {
  const std::string needle = "\"" + key + "\":{";
  const std::size_t at = s.find(needle);
  if (at == std::string::npos) return {};
  const std::size_t open = at + needle.size() - 1;
  int depth = 0;
  bool in_string = false;
  for (std::size_t j = open; j < s.size(); ++j) {
    const char c = s[j];
    if (in_string) {
      if (c == '\\') {
        ++j;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{') {
      ++depth;
    } else if (c == '}') {
      if (--depth == 0) return s.substr(open, j - open + 1);
    }
  }
  return {};
}

// Fetch a live server's stats frame and render it as the ServeMetrics table
// (or the raw JSON with --raw).  The frame is the extended wire response:
// request/refusal counters, cache stats, snapshot generation + reload
// success/failure counts, latency quantiles and uptime.
int cmd_stats(const Args& args) {
  const std::string host = args.get("host", "127.0.0.1");
  const int port = parse_int_arg("port", args.get("port"));
  const bool raw = args.flag("raw");
  const bool prom = args.flag("prom");
  args.check_all_used();

  serve::Client client;
  client.connect(host, port);
  if (prom) {
    // The metrics op: the server's whole registry as Prometheus text
    // exposition, printed verbatim (it is already scrape-ready).
    const auto exposition = client.metrics();
    if (!exposition.has_value()) {
      throw std::runtime_error("stats: no metrics response from " + host +
                               ":" + std::to_string(port));
    }
    std::fputs(exposition->c_str(), stdout);
    return 0;
  }
  const auto response = client.stats();
  if (!response.has_value()) {
    throw std::runtime_error("stats: no response from " + host + ":" +
                             std::to_string(port));
  }
  if (raw) {
    std::printf("%s\n", response->c_str());
    return 0;
  }

  const std::map<std::string, double> fields =
      parse_flat_json_numbers(*response);
  auto u64 = [&fields](const char* key) -> std::uint64_t {
    const auto it = fields.find(key);
    return it == fields.end() ? 0 : static_cast<std::uint64_t>(it->second);
  };
  auto num = [&fields](const char* key) -> double {
    const auto it = fields.find(key);
    return it == fields.end() ? 0.0 : it->second;
  };
  serve::ServeMetrics m;
  m.workers = static_cast<std::size_t>(u64("workers"));
  m.connections = u64("connections");
  m.requests = u64("requests");
  m.predictions = u64("predictions");
  m.errors = u64("errors");
  m.rejected_overload = u64("rejected_overload");
  m.malformed_frames = u64("malformed_frames");
  m.oversized_frames = u64("oversized_frames");
  m.cache_hits = u64("cache_hits");
  m.cache_misses = u64("cache_misses");
  m.cache_evictions = u64("cache_evictions");
  m.cache_size = static_cast<std::size_t>(u64("cache_size"));
  m.snapshot_reloads = u64("snapshot_reloads");
  m.snapshot_reload_failures = u64("snapshot_reload_failures");
  m.snapshot_version = u64("snapshot_version");
  m.db_records = static_cast<std::size_t>(u64("db_records"));
  m.latency_count = u64("latency_count");
  m.latency_p50_s = num("latency_p50_s");
  m.latency_p95_s = num("latency_p95_s");
  m.latency_p99_s = num("latency_p99_s");
  m.latency_mean_s = num("latency_mean_s");
  m.latency_max_s = num("latency_max_s");
  m.uptime_s = num("uptime_s");
  std::printf("%s\n", m.to_table().to_string().c_str());
  return 0;
}

// Fetch a live server's slow-request log (the K slowest plus recent failed
// requests) and print it verbatim — the payload is compact JSON with one
// entry object per request, ready for jq or the test harness.
int cmd_slowlog(const Args& args) {
  const std::string host = args.get("host", "127.0.0.1");
  const int port = parse_int_arg("port", args.get("port"));
  args.check_all_used();

  serve::Client client;
  client.connect(host, port);
  const auto response = client.slowlog();
  if (!response.has_value()) {
    throw std::runtime_error("slowlog: no response from " + host + ":" +
                             std::to_string(port));
  }
  std::printf("%s\n", response->c_str());
  return 0;
}

// Live rolling-stats view: poll the stats op every --interval-ms and render
// the 1s/10s/60s windows (rps, error rate, latency quantiles), the
// per-snapshot source mix and the last reload's drift line.  On a tty each
// refresh clears the screen (ANSI); piped output just appends, so
// `kcoup top --count 1` is also the scriptable one-shot form.
int cmd_top(const Args& args) {
  const std::string host = args.get("host", "127.0.0.1");
  const int port = parse_int_arg("port", args.get("port"));
  const int interval_ms = require_min(
      "interval-ms",
      parse_int_arg("interval-ms", args.get("interval-ms", "1000")), 50);
  const int count = parse_int_arg("count", args.get("count", "0"));
  args.check_all_used();

  serve::Client client;
  client.connect(host, port);
  const bool tty = ::isatty(STDOUT_FILENO) != 0;
  for (int iter = 0; count == 0 || iter < count; ++iter) {
    if (iter != 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
    const auto response = client.stats();
    if (!response.has_value()) {
      throw std::runtime_error("top: no response from " + host + ":" +
                               std::to_string(port));
    }
    const std::map<std::string, double> totals =
        parse_flat_json_numbers(*response);
    auto total = [&totals](const char* key) -> double {
      const auto it = totals.find(key);
      return it == totals.end() ? 0.0 : it->second;
    };
    if (tty) std::printf("\033[2J\033[H");
    std::printf(
        "kcoup top — %s:%d  uptime %.1fs  snapshot v%.0f  "
        "requests %.0f  errors %.0f\n",
        host.c_str(), port, total("uptime_s"), total("snapshot_version"),
        total("requests"), total("errors"));

    report::Table t("rolling windows");
    t.set_header({"window", "rps", "requests", "errors", "err%", "p50",
                  "p95", "p99"});
    const std::string windows = extract_json_object(*response, "windows");
    for (const char* name : {"1s", "10s", "60s"}) {
      const std::map<std::string, double> w =
          parse_flat_json_numbers(extract_json_object(windows, name));
      auto field = [&w](const char* key) -> double {
        const auto it = w.find(key);
        return it == w.end() ? 0.0 : it->second;
      };
      char rps[32];
      std::snprintf(rps, sizeof(rps), "%.1f", field("rps"));
      char err_pct[32];
      std::snprintf(err_pct, sizeof(err_pct), "%.1f",
                    100.0 * field("error_rate"));
      t.add_row({name, rps, std::to_string(
                               static_cast<std::uint64_t>(field("requests"))),
                 std::to_string(static_cast<std::uint64_t>(field("errors"))),
                 err_pct, report::format_seconds(field("p50_s")),
                 report::format_seconds(field("p95_s")),
                 report::format_seconds(field("p99_s"))});
    }
    std::printf("%s\n", t.to_string().c_str());

    const std::map<std::string, double> sources =
        parse_flat_json_numbers(extract_json_object(*response, "sources"));
    auto source = [&sources](const char* key) -> double {
      const auto it = sources.find(key);
      return it == sources.end() ? 0.0 : it->second;
    };
    std::printf(
        "sources (snapshot v%.0f): exact %.0f  nearest-donor %.0f  "
        "model %.0f  none %.0f\n",
        source("snapshot_version"), source("exact"), source("nearest_donor"),
        source("model"), source("none"));

    const std::string drift = extract_json_object(*response, "drift");
    if (!drift.empty()) {
      const std::map<std::string, double> d = parse_flat_json_numbers(drift);
      auto dv = [&d](const char* key) -> double {
        const auto it = d.find(key);
        return it == d.end() ? 0.0 : it->second;
      };
      std::printf(
          "drift v%.0f→v%.0f: %.0f new records, %.0f compared, "
          "rel-err p50 %.3g p95 %.3g max %.3g\n",
          dv("from"), dv("to"), dv("new_records"), dv("compared"), dv("p50"),
          dv("p95"), dv("max"));
    } else {
      std::printf("drift: (no reload observed yet)\n");
    }
    std::fflush(stdout);
  }
  return 0;
}

int cmd_machines(const Args& args) {
  args.check_all_used();
  for (const machine::MachineConfig& c :
       {machine::ibm_sp_p2sc(), machine::generic_smp()}) {
    std::printf("%s\n", c.name.c_str());
    std::printf("  flops/s (effective): %.3g\n", c.flops_per_second);
    for (std::size_t l = 0; l < c.cache.size(); ++l) {
      std::printf("  L%zu: %zu KiB, %.3g ns/B\n", l + 1,
                  c.cache[l].capacity_bytes / 1024,
                  c.cache[l].seconds_per_byte * 1e9);
    }
    std::printf("  memory: %.3g ns/B\n", c.memory_seconds_per_byte * 1e9);
    std::printf("  network: alpha %.3g us, beta %.3g ns/B, contention %.2f\n",
                c.net_latency_s * 1e6, c.net_seconds_per_byte * 1e9,
                c.net_contention_coeff);
    std::printf("  sync: %.3g us/hop, imbalance %.2f\n\n",
                c.sync_latency_s * 1e6, c.imbalance_coeff);
  }
  return 0;
}

void usage() {
  std::printf(
      "kcoup — kernel-coupling performance prediction (HPDC 2002 repro)\n\n"
      "usage:\n"
      "  kcoup study       --app bt|sp|lu --class S|W|A|B [--procs 4,9,16]\n"
      "                    [--chains 2,3] [--machine ibm-sp|generic-smp]\n"
      "                    [--csv prefix]\n"
      "  kcoup transitions [--app bt] [--procs 4] [--sizes 8,16,...]\n"
      "                    [--csv prefix]\n"
      "  kcoup reuse       --app bt|sp|lu --class C --donor P --targets P,..\n"
      "                    [--chains q]\n"
      "  kcoup parallel    --app bt|sp|lu --n N [--iters I] [--procs P]\n"
      "                    [--chains 2,3]\n"
      "  kcoup campaign    --apps bt,sp --classes S,W --procs 4,9\n"
      "                    [--chains 2,3] [--workers N | --serial] [--quiet]\n"
      "                    [--spec file] [--reps R] [--warmup W]\n"
      "                    [--epilogue-reps R] [--no-pool]\n"
      "                    [--retry-rsd F] [--retry-max N] [--db store.csv]\n"
      "                    [--metrics-csv path] [--metrics-jsonl path]\n"
      "                    [--journal path.jsonl]\n"
      "                    [--shards N --shard-id K --journal-dir DIR\n"
      "                     [--steal] [--steal-after-s S]]\n"
      "                    [--fault-seed N] [--fault-construct-rate F]\n"
      "                    [--fault-measure-rate F] [--fault-noise-rate F]\n"
      "                    [--fault-abort-after N]\n"
      "                    [--trace-out trace.json]\n"
      "                    [--machine ibm-sp|generic-smp]\n"
      "  kcoup merge       DIR [--shards N] [--out store.csv] [--spec file]\n"
      "                    [--steal] [--workers N] [--quiet]\n"
      "                    [--metrics-csv path] [--metrics-jsonl path]\n"
      "                    [--trace-out trace.json]\n"
      "  kcoup serve       --db store.csv [--port P] [--shards N]\n"
      "                    [--max-inflight N] [--max-pipeline N]\n"
      "                    [--force-poll] [--poll-ms MS]\n"
      "                    [--cache-capacity N] [--no-models] [--quiet]\n"
      "                    [--max-requests N] [--port-file path]\n"
      "                    [--slowlog-slowest K] [--slowlog-failed N]\n"
      "                    [--metrics-csv path] [--metrics-jsonl path]\n"
      "                    [--trace-out trace.json]\n"
      "                    [--machine ibm-sp|generic-smp]\n"
      "  kcoup pack        db.csv [-o db.kcs] [--no-models] [--quiet]\n"
      "                    [--machine ibm-sp|generic-smp]\n"
      "  kcoup pack        --verify db.kcs [--quiet]\n"
      "  kcoup fit         db.csv|db.kcs [--json] [--no-models]\n"
      "                    [--machine ibm-sp|generic-smp]\n"
      "  kcoup query       --port P [--host H] --app bt|sp|lu --class C\n"
      "                    [--procs 4,9] [--chains 2,3] [--raw]\n"
      "                    [--trace-id ID] [--trace-out trace.json]\n"
      "  kcoup query       --port P [--host H] --stats\n"
      "  kcoup stats       --port P [--host H] [--raw | --prom]\n"
      "  kcoup slowlog     --port P [--host H]\n"
      "  kcoup top         --port P [--host H] [--interval-ms MS]\n"
      "                    [--count N]\n"
      "  kcoup machines\n"
      "  kcoup --version\n\n"
      "exit codes: 0 success; 1 runtime error (also: any served query\n"
      "failed); 2 usage error; 3 campaign or merge completed with task\n"
      "failures (partial results; failed values reported as nan); 4 serve\n"
      "could not bind its listening socket; 5 merge incomplete (planned\n"
      "tasks with no journal record anywhere).\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  if (cmd == "--version" || cmd == "version") {
#ifdef KCOUP_VERSION
    std::printf("kcoup %s\n", KCOUP_VERSION);
#else
    std::printf("kcoup (unversioned build)\n");
#endif
    return 0;
  }
  try {
    std::set<std::string> bool_flags;
    if (cmd == "campaign") bool_flags = {"serial", "quiet", "no-pool", "steal"};
    if (cmd == "merge") bool_flags = {"steal", "quiet"};
    if (cmd == "serve") bool_flags = {"no-models", "quiet", "force-poll"};
    if (cmd == "query") bool_flags = {"stats", "raw"};
    if (cmd == "stats") bool_flags = {"raw", "prom"};
    if (cmd == "fit") bool_flags = {"json", "no-models"};
    if (cmd == "pack") {
      bool_flags = {"verify", "quiet", "no-models"};
      // -o is the conventional short spelling for the converter's output;
      // the flag parser only speaks --flags, so rewrite it up front.
      for (int i = 2; i < argc; ++i) {
        if (std::strcmp(argv[i], "-o") == 0) {
          argv[i] = const_cast<char*>("--out");
        }
      }
    }
    const Args args(argc, argv, std::move(bool_flags),
                    cmd == "merge" || cmd == "pack" || cmd == "fit");
    if (cmd == "study") return cmd_study(args);
    if (cmd == "transitions") return cmd_transitions(args);
    if (cmd == "reuse") return cmd_reuse(args);
    if (cmd == "parallel") return cmd_parallel(args);
    if (cmd == "campaign") return cmd_campaign(args);
    if (cmd == "merge") return cmd_merge(args);
    if (cmd == "serve") return cmd_serve(args);
    if (cmd == "pack") return cmd_pack(args);
    if (cmd == "fit") return cmd_fit(args);
    if (cmd == "query") return cmd_query(args);
    if (cmd == "stats") return cmd_stats(args);
    if (cmd == "slowlog") return cmd_slowlog(args);
    if (cmd == "top") return cmd_top(args);
    if (cmd == "machines") return cmd_machines(args);
    if (cmd == "help" || cmd == "--help" || cmd == "-h") {
      usage();
      return 0;
    }
    std::fprintf(stderr, "unknown command '%s'\n\n", cmd.c_str());
    usage();
    return 2;
  } catch (const kcoup::serve::BindError& e) {
    std::fprintf(stderr, "kcoup %s: %s\n", cmd.c_str(), e.what());
    return 4;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "kcoup %s: %s\n", cmd.c_str(), e.what());
    return 1;
  }
}
