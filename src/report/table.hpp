#pragma once

#include <string>
#include <vector>

namespace kcoup::report {

/// Minimal aligned-text table used by the bench harnesses to print the
/// paper's evaluation tables (and CSV for downstream plotting).
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  void set_header(std::vector<std::string> header) {
    header_ = std::move(header);
  }
  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  [[nodiscard]] const std::string& title() const { return title_; }
  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] std::string to_csv() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// "123.456" style seconds with sensible precision for table cells.
[[nodiscard]] std::string format_seconds(double seconds);

/// "12.34 %" relative error cell, as printed throughout the paper's tables.
[[nodiscard]] std::string format_percent(double fraction);

/// "123.456 (12.34 %)" prediction cell.
[[nodiscard]] std::string format_prediction(double seconds, double rel_error);

/// Coupling values with the paper's 2-4 significant digits.
[[nodiscard]] std::string format_coupling(double value);

}  // namespace kcoup::report
