#include "report/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace kcoup::report {

std::string Table::to_string() const {
  // Column widths over header + rows.
  std::vector<std::size_t> widths;
  auto absorb = [&](const std::vector<std::string>& row) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  absorb(header_);
  for (const auto& r : rows_) absorb(r);

  std::ostringstream out;
  out << title_ << '\n';
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      out << "  " << cell << std::string(widths[i] - cell.size(), ' ');
    }
    out << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t w : widths) total += w + 2;
    out << "  " << std::string(total > 2 ? total - 2 : 0, '-') << '\n';
  }
  for (const auto& r : rows_) emit(r);
  return out.str();
}

std::string Table::to_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) out << ',';
      out << row[i];
    }
    out << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_) emit(r);
  return out.str();
}

namespace {
std::string printf_str(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, fmt, v);
  return buf;
}
}  // namespace

std::string format_seconds(double seconds) {
  if (seconds >= 100.0) return printf_str("%.1f", seconds);
  if (seconds >= 1.0) return printf_str("%.2f", seconds);
  return printf_str("%.4f", seconds);
}

std::string format_percent(double fraction) {
  return printf_str("%.2f %%", fraction * 100.0);
}

std::string format_prediction(double seconds, double rel_error) {
  return format_seconds(seconds) + " (" + format_percent(rel_error) + ")";
}

std::string format_coupling(double value) { return printf_str("%.4f", value); }

}  // namespace kcoup::report
