#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "report/table.hpp"

namespace kcoup::serve {

/// A point-in-time aggregate of everything the server counts: connection
/// and request volume, refusals by cause, the query engine's cell-memo
/// cache, snapshot reload activity, and request-latency quantiles from the
/// merged per-worker histograms.  Reporters mirror CampaignMetrics: a
/// two-column table for humans, one CSV header+row, one JSONL record.
struct ServeMetrics {
  std::size_t workers = 0;
  std::uint64_t connections = 0;
  std::uint64_t requests = 0;         ///< well-formed frames dispatched
  std::uint64_t predictions = 0;      ///< individual predictions answered
  std::uint64_t errors = 0;           ///< ok=false predictions + bad requests
  std::uint64_t rejected_overload = 0;
  std::uint64_t malformed_frames = 0;
  std::uint64_t oversized_frames = 0;

  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::size_t cache_size = 0;

  std::uint64_t snapshot_reloads = 0;
  std::uint64_t snapshot_reload_failures = 0;
  std::uint64_t snapshot_version = 0;
  std::size_t db_records = 0;

  std::uint64_t latency_count = 0;
  double latency_p50_s = 0.0;
  double latency_p95_s = 0.0;
  double latency_p99_s = 0.0;
  double latency_mean_s = 0.0;
  double latency_max_s = 0.0;

  /// Seconds since Server::start(); 0 before the server starts.  Appended
  /// after the latency fields in every renderer so pre-existing consumers
  /// keep their column/key positions.
  double uptime_s = 0.0;

  [[nodiscard]] report::Table to_table() const;
  /// Header line + one data row.
  [[nodiscard]] std::string to_csv() const;
  /// One self-contained JSON object (JSONL record).
  [[nodiscard]] std::string to_jsonl() const;
};

}  // namespace kcoup::serve
