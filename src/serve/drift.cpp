#include "serve/drift.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "serve/snapshot.hpp"
#include "support/num_format.hpp"

namespace kcoup::serve {

namespace {

/// ceil(q * n)-th smallest (1-based), matching LatencyHistogram::quantile's
/// rank convention.
double quantile_of_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[rank == 0 ? 0 : rank - 1];
}

}  // namespace

DriftReport compute_drift(const PredictorSnapshot& outgoing,
                          const coupling::CouplingDatabase& incoming,
                          std::uint64_t incoming_version) {
  DriftReport report;
  report.from_version = outgoing.version();
  report.to_version = incoming_version;

  std::vector<double> errors;
  for (const coupling::CouplingRecord& r : incoming.records()) {
    if (outgoing.database().find(r.key).has_value()) continue;  // not new
    ++report.new_records;
    const coupling::CouplingRecord* donor =
        outgoing.database().find_nearest_ranks_ref(r.key);
    if (donor == nullptr) continue;  // old snapshot had no answer for it
    const double predicted = donor->coupling();
    const double measured = r.coupling();
    if (!std::isfinite(predicted) || !std::isfinite(measured) ||
        measured == 0.0) {
      continue;
    }
    errors.push_back(std::abs(predicted - measured) / std::abs(measured));
    ++report.compared;
  }
  std::sort(errors.begin(), errors.end());
  report.p50 = quantile_of_sorted(errors, 0.50);
  report.p95 = quantile_of_sorted(errors, 0.95);
  report.max = errors.empty() ? 0.0 : errors.back();
  return report;
}

std::string DriftReport::to_json() const {
  std::string out = "{\"from\":" + std::to_string(from_version) +
                    ",\"to\":" + std::to_string(to_version) +
                    ",\"new_records\":" + std::to_string(new_records) +
                    ",\"compared\":" + std::to_string(compared);
  out += ",\"p50\":" + support::format_double(p50);
  out += ",\"p95\":" + support::format_double(p95);
  out += ",\"max\":" + support::format_double(max);
  out += '}';
  return out;
}

}  // namespace kcoup::serve
