#include "serve/slowlog.hpp"

#include <algorithm>

#include "serve/protocol.hpp"
#include "support/num_format.hpp"

namespace kcoup::serve {

SlowLog::SlowLog(std::size_t slow_capacity, std::size_t failed_capacity)
    : slow_capacity_(slow_capacity == 0 ? 1 : slow_capacity),
      failed_capacity_(failed_capacity == 0 ? 1 : failed_capacity) {
  slow_.reserve(slow_capacity_);
  failed_.reserve(failed_capacity_);
}

std::string SlowLog::truncate_request(const std::string& payload,
                                      std::size_t max_bytes) {
  if (payload.size() <= max_bytes) return payload;
  return payload.substr(0, max_bytes) + "...";
}

void SlowLog::record(Entry entry) {
  if (entry.ok) {
    // Fast path: a full slow set whose floor beats this latency means the
    // entry can never be admitted — one relaxed load, no lock.
    if (entry.latency_s <= threshold_.load(std::memory_order_relaxed)) {
      return;
    }
  }
  std::lock_guard<std::mutex> lock(mutex_);
  entry.seq = seq_.fetch_add(1, std::memory_order_relaxed);
  if (!entry.ok) {
    ++failed_total_;
    if (failed_.size() < failed_capacity_) {
      failed_.push_back(std::move(entry));
    } else {
      failed_[next_failed_] = std::move(entry);
      next_failed_ = (next_failed_ + 1) % failed_capacity_;
    }
    return;
  }
  if (slow_.size() < slow_capacity_) {
    slow_.push_back(std::move(entry));
  } else {
    auto smallest = std::min_element(
        slow_.begin(), slow_.end(), [](const Entry& a, const Entry& b) {
          return a.latency_s < b.latency_s;
        });
    if (entry.latency_s <= smallest->latency_s) return;  // raced below floor
    *smallest = std::move(entry);
  }
  if (slow_.size() == slow_capacity_) {
    const auto smallest = std::min_element(
        slow_.begin(), slow_.end(), [](const Entry& a, const Entry& b) {
          return a.latency_s < b.latency_s;
        });
    threshold_.store(smallest->latency_s, std::memory_order_relaxed);
  }
}

namespace {

void append_entry(std::string& out, const SlowLog::Entry& e) {
  out += "{\"latency_s\":";
  out += support::format_double(e.latency_s);
  out += ",\"seq\":";
  out += std::to_string(e.seq);
  out += ",\"shard\":";
  out += std::to_string(e.shard);
  out += ",\"ok\":";
  out += e.ok ? "true" : "false";
  out += ",\"op\":\"";
  out += json_escape(e.op);
  out += '"';
  if (!e.source.empty()) {
    out += ",\"source\":\"";
    out += json_escape(e.source);
    out += '"';
  }
  if (!e.trace_id.empty()) {
    out += ",\"trace_id\":\"";
    out += json_escape(e.trace_id);
    out += '"';
  }
  out += ",\"request\":\"";
  out += json_escape(e.request);
  out += "\"}";
}

}  // namespace

std::string SlowLog::to_json() const {
  std::vector<Entry> slow;
  std::vector<Entry> failed;
  std::uint64_t failed_total = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    slow = slow_;
    failed_total = failed_total_;
    // Unroll the ring into admission order (oldest first).
    failed.reserve(failed_.size());
    for (std::size_t i = 0; i < failed_.size(); ++i) {
      failed.push_back(failed_[(next_failed_ + i) % failed_.size()]);
    }
  }
  std::sort(slow.begin(), slow.end(), [](const Entry& a, const Entry& b) {
    if (a.latency_s != b.latency_s) return a.latency_s > b.latency_s;
    return a.seq < b.seq;
  });
  std::string out = "{\"ok\":true,\"failed_total\":";
  out += std::to_string(failed_total);
  out += ",\"slowest\":[";
  for (std::size_t i = 0; i < slow.size(); ++i) {
    if (i != 0) out += ',';
    append_entry(out, slow[i]);
  }
  out += "],\"failed\":[";
  for (std::size_t i = 0; i < failed.size(); ++i) {
    if (i != 0) out += ',';
    append_entry(out, failed[i]);
  }
  out += "]}";
  return out;
}

}  // namespace kcoup::serve
