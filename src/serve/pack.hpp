#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "serve/binfmt.hpp"
#include "serve/snapshot.hpp"

namespace kcoup::serve {

/// Counts reported by the packer and the verifier.
struct PackStats {
  std::size_t records = 0;
  std::size_t alpha_groups = 0;
  std::size_t modeled_applications = 0;
  std::size_t fitted_applications = 0;
  std::size_t transitions = 0;
  std::size_t bytes = 0;
  std::uint32_t format_version = 0;
};

/// Serialize a snapshot's database + precomputed tables into the `.kcs`
/// byte layout (binfmt.hpp).  Deterministic: the same snapshot always packs
/// to the same bytes, which the golden-format test pins.
[[nodiscard]] std::string pack_snapshot(const PredictorSnapshot& snapshot);

/// pack_snapshot + atomic temp-and-rename publish to `path`, so a poller
/// never observes a half-written snapshot file.
PackStats pack_snapshot_file(const PredictorSnapshot& snapshot,
                             const std::string& path);

/// True when the bytes / the file start with the packed-snapshot magic.
/// This is the sniff SnapshotSource uses to choose CSV vs packed loading;
/// a missing or unreadable file is simply "not packed".
[[nodiscard]] bool is_packed_snapshot(std::string_view bytes);
[[nodiscard]] bool is_packed_snapshot_file(const std::string& path);

/// mmap `path` and decode it into an immutable snapshot carrying `version`.
/// No text parsing, no alpha recomputation, no model refitting — decode is
/// checksum verification plus bulk reads of the precomputed tables.
/// Throws binfmt::SnapshotFormatError (always with a named code) on any
/// malformed input; std::runtime_error if the file cannot be opened/mapped.
[[nodiscard]] std::shared_ptr<const PredictorSnapshot> load_packed_snapshot(
    const std::string& path, std::uint64_t version);

/// Decode from an in-memory buffer (the mmap-free core of the loader;
/// `origin` names the source in errors).  The fuzz tests drive this
/// directly so a million mutated inputs need no filesystem round trips.
[[nodiscard]] std::shared_ptr<const PredictorSnapshot>
load_packed_snapshot_bytes(const void* data, std::size_t size,
                           std::uint64_t version, const std::string& origin);

/// Full integrity check (`kcoup pack --verify`): decodes the entire file —
/// every checksum, every table — and reports what it holds.  Throws like
/// load_packed_snapshot on any defect.
PackStats verify_packed_snapshot(const std::string& path);

}  // namespace kcoup::serve
