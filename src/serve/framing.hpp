#pragma once

#include <cstddef>
#include <string>

namespace kcoup::serve {

/// Incremental decoding of the wire framing (see protocol.hpp): a frame is
/// the payload byte count in ASCII decimal, '\n', then exactly that many
/// payload bytes.  decode_frame() works over an append-only buffer, so the
/// event-driven server can feed it whatever recv() returned and pull out
/// every complete frame without ever blocking on a partial one.

enum class FrameDecodeStatus {
  kNeedMore,   ///< no complete frame in the buffer yet
  kFrame,      ///< one frame decoded, *pos advanced past it
  kMalformed,  ///< non-digit length byte, empty length, >20 digits, or a
               ///< length whose decimal value overflows std::size_t
  kOversized,  ///< well-formed length larger than max_payload
};

/// Try to decode one frame from buf starting at *pos.  On kFrame the payload
/// is copied into *payload and *pos advances past the frame; on kNeedMore
/// nothing moves (call again once more bytes arrive); kMalformed/kOversized
/// are terminal for the stream — the length prefix cannot be trusted to
/// resynchronize after either.
///
/// The length parser is hardened against overflow: up to 20 digits are
/// accepted (enough for any 64-bit value), but an accumulation that would
/// wrap std::size_t — e.g. the 20-digit "99999999999999999999" — is
/// kMalformed, never a silently small length that would desynchronize the
/// stream.
[[nodiscard]] FrameDecodeStatus decode_frame(const std::string& buf,
                                             std::size_t* pos,
                                             std::size_t max_payload,
                                             std::string* payload);

/// Accumulate one ASCII digit into a length, rejecting overflow.  Shared by
/// decode_frame and the blocking client's byte-at-a-time reader so both
/// sides of the wire enforce the same hardened rule.  Returns false when c
/// is not a digit or the new value would wrap.
[[nodiscard]] bool accumulate_length_digit(std::size_t* length, char c);

/// length + '\n' + payload, ready to send.
[[nodiscard]] std::string encode_frame(const std::string& payload);

/// Send one frame with a single non-blocking send(2) and give up on
/// EAGAIN/EWOULDBLOCK or a short write instead of blocking the caller.
/// Used for the accept-time 429 overload reject: a stalled or slow peer
/// being rejected must never halt the accept loop; dropping the courtesy
/// frame is fine — the peer sees the close either way.  Returns true when
/// the whole frame was sent.
bool send_frame_best_effort(int fd, const std::string& payload);

}  // namespace kcoup::serve
