#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "coupling/database.hpp"
#include "coupling/scaling_model.hpp"
#include "model/piecewise.hpp"
#include "model/transitions.hpp"
#include "serve/drift.hpp"
#include "serve/workload.hpp"

namespace kcoup::serve {

/// Precomputed composition coefficients for one exact
/// (application, config, ranks, chain_length) group of the database: the
/// reconstructed chain set (start order, exactly as measure_chains() and the
/// campaign assembly build it) and coupling_coefficients() over it.  Only
/// complete groups — one chain per loop position — are precomputed; partial
/// groups fall back to the nearest-ranks reuse path at query time.
struct AlphaGroup {
  std::vector<coupling::ChainCoupling> chains;
  std::vector<double> alpha;
  std::size_t loop_size = 0;
};

/// Supplies measured cell inputs during a snapshot build (the scaling-model
/// fit needs isolated means for the database's cells).  Returns nullopt for
/// cells that cannot be measured.  Wired to QueryEngine::cell() in the
/// server so build-time measurements land in — and are served from — the
/// engine's memo cache.
using CellFn = std::function<std::optional<CellInputs>(
    const std::string& application, const std::string& config, int ranks)>;

struct SnapshotOptions {
  /// Fit per-kernel scaling models E_k(n, P) from the database's measurable
  /// cells at build time (enables predictions for configurations that
  /// cannot run, e.g. BT at a non-square rank count).  Requires a CellFn.
  /// Covers both the legacy fixed-basis LSQ models and the cross-validated
  /// piecewise models that supersede them on the query path.
  bool fit_scaling_models = true;
  /// Run the coupling-transition changepoint scan over the database's
  /// (application, config, chain_length, chain_start) series at build
  /// time.  Purely record-derived — needs no CellFn.
  bool detect_transitions = true;
};

/// An immutable, internally consistent bundle of everything the query
/// engine reads: the loaded coupling database, the precomputed alpha
/// coefficients for every complete group, and per-application fitted
/// scaling models.  Snapshots are published through
/// std::atomic<std::shared_ptr<const PredictorSnapshot>> — readers grab a
/// reference once per request and never observe a half-reloaded state.
class PredictorSnapshot {
 public:
  /// Sort key of a precomputed group: (application, config, ranks,
  /// chain_length).  Public so the snapshot packer can serialize groups in
  /// their canonical order.
  using GroupKey = std::tuple<std::string, std::string, int, std::size_t>;

  /// Already-derived tables, e.g. decoded from a packed snapshot.  Both
  /// vectors must be strictly sorted by key — the order alpha_groups() and
  /// scaling_models() expose, which is also the order the packer writes.
  struct Precomputed {
    std::vector<std::pair<GroupKey, AlphaGroup>> groups;
    std::vector<std::pair<std::string, std::vector<coupling::KernelScalingModel>>>
        models;
    /// Cross-validated piecewise per-kernel models, sorted by application —
    /// the selection the query engine's model fallback prefers.
    std::vector<std::pair<std::string, std::vector<model::PiecewiseModel>>>
        fitted;
    /// Detected coupling transitions in canonical order (application,
    /// config, chain_length, chain_start, boundary).
    std::vector<model::CouplingTransition> transitions;
  };

  /// Derive alpha groups (and optionally scaling models) from the database.
  PredictorSnapshot(coupling::CouplingDatabase db, std::uint64_t version,
                    const CellFn& cell_fn, const SnapshotOptions& options);

  /// Install precomputed tables verbatim — the zero-recompute load path.
  PredictorSnapshot(coupling::CouplingDatabase db, std::uint64_t version,
                    Precomputed precomputed);

  [[nodiscard]] const coupling::CouplingDatabase& database() const {
    return db_;
  }
  [[nodiscard]] std::uint64_t version() const { return version_; }

  /// The precomputed group for an exact (application, config, ranks, q)
  /// point, or nullptr when the database has no complete chain set for it.
  [[nodiscard]] const AlphaGroup* find_alpha(const std::string& application,
                                             const std::string& config,
                                             int ranks,
                                             std::size_t chain_length) const;

  /// Fitted per-kernel scaling models for an application (loop order), or
  /// nullptr when the database held too few measurable cells to fit.
  [[nodiscard]] const std::vector<coupling::KernelScalingModel>* models_for(
      const std::string& application) const;

  /// Cross-validated piecewise per-kernel models (loop order) for an
  /// application, or nullptr when none were fitted.  The query engine
  /// prefers these over the legacy models_for() basis.
  [[nodiscard]] const std::vector<model::PiecewiseModel>* fitted_models_for(
      const std::string& application) const;

  [[nodiscard]] std::size_t alpha_group_count() const {
    return groups_.size();
  }
  [[nodiscard]] std::size_t modeled_application_count() const {
    return models_.size();
  }
  [[nodiscard]] std::size_t fitted_application_count() const {
    return fitted_.size();
  }
  [[nodiscard]] std::size_t transition_count() const {
    return transitions_.size();
  }

  /// All precomputed groups / models, sorted by key — the serialization
  /// order of the packed-snapshot format.
  [[nodiscard]] const std::vector<std::pair<GroupKey, AlphaGroup>>&
  alpha_groups() const {
    return groups_;
  }
  [[nodiscard]] const std::vector<
      std::pair<std::string, std::vector<coupling::KernelScalingModel>>>&
  scaling_models() const {
    return models_;
  }
  [[nodiscard]] const std::vector<
      std::pair<std::string, std::vector<model::PiecewiseModel>>>&
  fitted_models() const {
    return fitted_;
  }
  /// Detected coupling transitions, canonical order — first-class data
  /// surfaced through `kcoup fit` and the packed snapshot.
  [[nodiscard]] const std::vector<model::CouplingTransition>& transitions()
      const {
    return transitions_;
  }

 private:
  coupling::CouplingDatabase db_;
  std::uint64_t version_ = 0;
  // Flat sorted arrays, not maps: a cold lookup is a branchless-ish binary
  // search over contiguous pairs instead of a pointer chase per tree level,
  // and the layout is what the packer serializes byte-for-byte.
  std::vector<std::pair<GroupKey, AlphaGroup>> groups_;
  std::vector<std::pair<std::string, std::vector<coupling::KernelScalingModel>>>
      models_;
  std::vector<std::pair<std::string, std::vector<model::PiecewiseModel>>>
      fitted_;
  std::vector<model::CouplingTransition> transitions_;
};

/// Owns the current snapshot and hot-reloads it when the database file
/// changes on disk.  The probe is stat(2): nanosecond mtime + inode +
/// device + size, so even a same-size rewrite inside one mtime granule is
/// seen (rename lands on a new inode); save_csv_file()'s
/// temp-write-then-rename means a probe can never observe a half-written
/// database.  Readers call current() — a lock-free atomic shared_ptr load —
/// once per request; a failed reload keeps the previous snapshot serving.
class SnapshotSource {
 public:
  SnapshotSource(std::string path, CellFn cell_fn,
                 SnapshotOptions options = {});
  ~SnapshotSource();

  SnapshotSource(const SnapshotSource&) = delete;
  SnapshotSource& operator=(const SnapshotSource&) = delete;

  /// Initial load; throws (naming the path, via load_csv_file) on failure.
  void load();

  /// The currently published snapshot (nullptr before the first load()).
  [[nodiscard]] std::shared_ptr<const PredictorSnapshot> current() const {
    return current_.load(std::memory_order_acquire);
  }

  /// Probe the file; rebuild and publish if it changed.  Returns true iff a
  /// new snapshot was published.  A failed reload is counted and the old
  /// snapshot stays.  Safe to call concurrently with readers (but only one
  /// poller should call it).
  bool poll();

  /// Start/stop the background polling thread.
  void start_polling(std::chrono::milliseconds interval);
  void stop_polling();

  [[nodiscard]] std::uint64_t reloads() const {
    return reloads_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t reload_failures() const {
    return reload_failures_.load(std::memory_order_relaxed);
  }

  /// The drift report computed at the most recent reload that replaced a
  /// live snapshot (see serve/drift.hpp): how far the outgoing snapshot's
  /// predictions were from the incoming database's new records.  nullptr
  /// until the first such reload.  Lock-free read; the server exports it as
  /// the serve.drift.* quantiles.
  [[nodiscard]] std::shared_ptr<const DriftReport> last_drift() const {
    return last_drift_.load(std::memory_order_acquire);
  }

 private:
  /// Change fingerprint from stat(2).  Nanosecond mtime plus inode and
  /// device: save_csv_file() writes a temp file and rename(2)s it into
  /// place, so every rewrite lands on a fresh inode — a same-size rewrite
  /// within one mtime granule (coarse-timestamp filesystems) still probes
  /// as changed.
  struct FileProbe {
    std::int64_t mtime_sec = 0;
    std::int64_t mtime_nsec = 0;
    std::uint64_t inode = 0;
    std::uint64_t device = 0;
    std::uint64_t size = 0;
    [[nodiscard]] bool operator==(const FileProbe&) const = default;
  };

  [[nodiscard]] std::optional<FileProbe> probe() const;
  void load_and_publish(const FileProbe& seen);

  std::string path_;
  CellFn cell_fn_;
  SnapshotOptions options_;
  std::atomic<std::shared_ptr<const PredictorSnapshot>> current_{nullptr};
  std::atomic<std::shared_ptr<const DriftReport>> last_drift_{nullptr};
  std::optional<FileProbe> last_probe_;
  std::uint64_t next_version_ = 1;
  std::atomic<std::uint64_t> reloads_{0};
  std::atomic<std::uint64_t> reload_failures_{0};

  std::thread poller_;
  std::mutex poll_mutex_;
  std::condition_variable poll_cv_;
  bool poll_stop_ = false;
};

}  // namespace kcoup::serve
