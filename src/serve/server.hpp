#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/window.hpp"
#include "serve/framing.hpp"
#include "serve/metrics.hpp"
#include "serve/poller.hpp"
#include "serve/query_engine.hpp"
#include "serve/slowlog.hpp"
#include "serve/snapshot.hpp"

namespace kcoup::serve {

struct ServerConfig {
  std::string host = "127.0.0.1";  ///< loopback only by design
  int port = 0;                    ///< 0 = kernel-assigned ephemeral port
  /// Event-loop shards (one thread each); connections are assigned
  /// round-robin at accept and stay on their shard for life.
  std::size_t workers = 4;
  /// Open connections before the accept loop starts fast-rejecting with a
  /// code-429 frame; 0 = 2 * workers.
  std::size_t max_inflight = 0;
  /// Largest accepted request payload; larger frames get a code-413 frame
  /// and the connection is closed.
  std::size_t max_frame_bytes = 64 * 1024;
  /// Most complete frames decoded into one pipelined batch window: every
  /// predict/batch query in a window shares one snapshot acquisition and
  /// one QueryEngine::predict_batch call.  Also the fairness bound — a
  /// connection with more buffered frames yields to the event loop between
  /// windows.
  std::size_t max_pipeline = 64;
  /// Use the poll(2) backend even where epoll is available (tests keep the
  /// fallback honest on Linux).
  bool force_poll = false;
  /// Slow-request log capacities (see serve/slowlog.hpp): how many slowest
  /// requests to keep, and the ring size for failed requests.
  std::size_t slowlog_slowest = 32;
  std::size_t slowlog_failed = 64;
};

/// Thrown when the listening socket cannot be created/bound; the CLI maps
/// it to exit code 4 so scripts can tell "port taken" from other failures.
class BindError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Loopback TCP front end for the query engine, built as a readiness-based
/// event loop: one accept thread hands non-blocking connections round-robin
/// to N event-loop shards (epoll on Linux, poll(2) fallback — see
/// poller.hpp), each a single thread owning its connections' read/write
/// buffers.  Frames are decoded incrementally from the read buffer
/// (length-prefixed JSON, see protocol.hpp), so a connection may have many
/// requests in flight: each wakeup drains up to max_pipeline complete
/// frames into one batch window whose predict/batch queries share a single
/// snapshot acquisition and one QueryEngine::predict_batch call.
/// Responses are appended to a per-connection write buffer and flushed as
/// the socket accepts them (EPOLLOUT when it doesn't), with responses
/// always in request order.
///
/// Admission control is at accept: when max_inflight connections are
/// already open, the new connection gets one error frame (code 429) sent
/// with a single non-blocking send — a stalled peer can never block the
/// accept loop — and is closed.
///
/// stop() is a graceful drain: the listener closes, every connection's
/// read side is shut down after one final drain of already-arrived bytes,
/// buffered complete frames are processed, and write buffers are flushed
/// before the shard threads exit — zero dropped in-flight requests.
///
/// All server counters live in an obs::MetricsRegistry ("serve.*" names)
/// with the hot-path references bound once at construction; request
/// latencies land in the "serve.request_seconds" histogram.  When
/// obs::Tracer is enabled every request frame emits a span (category
/// "serve") annotated with the op, cache hits, fallback kind and the
/// client-supplied trace_id (which is also echoed in the response frame, so
/// client- and server-side trace exports stitch into one timeline).
///
/// Beyond the cumulative registry, each shard owns a set of rolling
/// one-second windows (obs::WindowedCounter / WindowedHistogram, written
/// only by the shard thread — the single-writer contract) that the stats op
/// merges into 1s/10s/60s rps, error-rate and latency quantiles; a SlowLog
/// keeps the K slowest plus recent failed requests for the slowlog op; and
/// the metrics op renders the whole registry as Prometheus text exposition.
/// Prediction-quality telemetry rides along: per-snapshot fallback-source
/// counters, a donor rank-distance histogram
/// ("serve.donor.rank_distance"), and the SnapshotSource's reload drift
/// report exported as serve.drift.* gauges.
class Server {
 public:
  Server(SnapshotSource* source, QueryEngine* engine, ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen + start the shard and accept threads.  Throws BindError
  /// when the socket cannot be bound.
  void start();

  /// Graceful drain (see class comment).  Idempotent.
  void stop();

  /// The bound port (useful with config.port = 0).
  [[nodiscard]] int port() const { return port_; }

  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::uint64_t requests_handled() const {
    return c_requests_.value();
  }

  /// Point-in-time aggregate: server counters + engine cache stats +
  /// snapshot reload stats + latency quantiles + uptime since start().
  [[nodiscard]] ServeMetrics metrics() const;

  /// The live metrics store behind metrics() — "serve.*" counters and the
  /// "serve.request_seconds" histogram update as requests are handled.
  [[nodiscard]] obs::MetricsRegistry& registry() { return registry_; }

  /// Prometheus text exposition (format 0.0.4) of the whole registry,
  /// bit-exact for a given metric state: derived gauges (uptime, tracer
  /// span/drop counts, serve.drift.*) are synced into the registry first,
  /// then obs::render_prometheus does a deterministic name-sorted render.
  /// This is the payload of the "metrics" wire op.
  [[nodiscard]] std::string prometheus();

 private:
  /// One connection owned by one shard thread: unconsumed request bytes in
  /// rbuf (rpos = decode offset), unflushed response bytes in wbuf (wpos =
  /// send offset).
  struct Conn {
    int fd = -1;
    std::string rbuf;
    std::size_t rpos = 0;
    std::string wbuf;
    std::size_t wpos = 0;
    bool peer_eof = false;          ///< recv saw EOF; close once flushed
    bool close_after_flush = false; ///< framing error: flush then close
    bool reads_enabled = true;      ///< poller read interest
    bool want_write = false;        ///< poller write interest
  };

  /// One event-loop shard: a poller, a wake pipe the acceptor pokes, and
  /// the connections assigned to it.  All fields except the locked inbox
  /// are touched only by the shard thread.
  struct Shard {
    explicit Shard(bool force_poll) : poller(force_poll) {}
    Poller poller;
    std::size_t index = 0;  ///< position in shards_ / windows_
    int wake_rd = -1;
    int wake_wr = -1;
    std::thread thread;
    std::mutex mutex;
    std::vector<int> incoming;  ///< accepted fds waiting to be adopted
    bool stop = false;
    std::unordered_map<int, Conn> conns;
  };

  /// Rolling windows for one shard.  Written only by the shard thread
  /// (including the drain path, which runs on it) — the WindowedCounter /
  /// WindowedHistogram single-writer contract; read from any thread by the
  /// stats op's merge.
  struct ShardWindows {
    obs::WindowedCounter requests;
    obs::WindowedCounter errors;
    obs::WindowedHistogram latency;
  };

  /// Fallback-source mix scoped to the currently published snapshot:
  /// reset (under mix_mutex_) when a window first observes a new snapshot
  /// version, so the mix answers "how is *this* snapshot answering", not
  /// "how has the process ever answered".
  struct SourceMix {
    std::atomic<std::uint64_t> version{0};
    std::atomic<std::uint64_t> exact{0};
    std::atomic<std::uint64_t> nearest{0};
    std::atomic<std::uint64_t> model{0};
    std::atomic<std::uint64_t> none{0};
  };

  void accept_loop();
  void shard_loop(Shard& shard);
  void wake(Shard& shard);

  /// Non-blocking read into rbuf (bounded per wakeup); sets peer_eof on
  /// EOF or a hard socket error.
  void read_into(Conn& conn);
  /// Decode + handle every complete frame currently buffered (in windows
  /// of max_pipeline), appending responses to wbuf.
  void process_frames(Shard& shard, Conn& conn);
  /// Handle one pipelined window: parse all payloads, run every query in
  /// one predict_batch, serialize responses in request order.
  void handle_window(Shard& shard, Conn& conn,
                     const std::vector<std::string>& payloads);
  /// The stats-op payload: ServeMetrics flat JSON extended with nested
  /// "windows" (1s/10s/60s merged across shards), "sources" and "drift".
  [[nodiscard]] std::string stats_json();
  /// Classify one batch slice into the source mix + donor histogram.
  void record_prediction_quality(const PredictorSnapshot& snapshot,
                                 std::span<const Prediction> slice);
  /// Non-blocking flush of wbuf; returns false when the connection died.
  [[nodiscard]] bool flush(Conn& conn);
  void update_interest(Shard& shard, Conn& conn);
  void close_conn(Shard& shard, int fd);
  /// stop() path: final read drain, process buffered frames, flush
  /// everything, close all connections.
  void drain_shard(Shard& shard);

  SnapshotSource* source_;
  QueryEngine* engine_;
  ServerConfig config_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::thread acceptor_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t next_shard_ = 0;  ///< acceptor-thread only
  std::atomic<bool> running_{false};

  std::atomic<std::size_t> inflight_{0};  ///< open connections

  /// Canonical metric store; the references below are the hot-path handles
  /// (get-or-create once, O(1) relaxed atomics afterwards).  Declared after
  /// registry_ so construction order is safe.
  obs::MetricsRegistry registry_;
  obs::Counter& c_connections_;
  obs::Counter& c_requests_;
  obs::Counter& c_predictions_;
  obs::Counter& c_errors_;
  obs::Counter& c_rejected_overload_;
  obs::Counter& c_malformed_frames_;
  obs::Counter& c_oversized_frames_;
  obs::Histogram& h_latency_;
  /// Cumulative fallback-source counters (the per-snapshot mix is in
  /// mix_); "none" counts failed predictions with no source at all.
  obs::Counter& c_source_exact_;
  obs::Counter& c_source_nearest_;
  obs::Counter& c_source_model_;
  /// |log2(donor_ranks / requested_ranks)| of every nearest-donor answer —
  /// the log-scale distance the donor search minimizes; a drifting
  /// distribution means the database is thinning around the query mix.
  obs::Histogram& h_donor_distance_;

  /// One rolling-window set per shard, index-aligned with shards_.  Sized
  /// once in the constructor; never resized while threads run.
  std::vector<std::unique_ptr<ShardWindows>> windows_;
  SlowLog slowlog_;
  SourceMix mix_;
  std::mutex mix_mutex_;  ///< serializes the reset-on-new-version path

  std::chrono::steady_clock::time_point start_time_{};
  std::atomic<bool> started_{false};
};

}  // namespace kcoup::serve
