#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/metrics.hpp"
#include "serve/query_engine.hpp"
#include "serve/snapshot.hpp"
#include "support/thread_pool.hpp"

namespace kcoup::serve {

struct ServerConfig {
  std::string host = "127.0.0.1";  ///< loopback only by design
  int port = 0;                    ///< 0 = kernel-assigned ephemeral port
  std::size_t workers = 4;
  /// Connections being handled concurrently before the accept loop starts
  /// fast-rejecting with a code-429 frame; 0 = 2 * workers.
  std::size_t max_inflight = 0;
  /// Largest accepted request payload; larger frames get a code-413 frame
  /// and the connection is closed.
  std::size_t max_frame_bytes = 64 * 1024;
};

/// Thrown when the listening socket cannot be created/bound; the CLI maps
/// it to exit code 4 so scripts can tell "port taken" from other failures.
class BindError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Loopback TCP front end for the query engine.  One accept thread hands
/// connections to a fixed ThreadPool; each connection is served
/// request-by-request (length-prefixed JSON frames, see protocol.hpp) until
/// the peer closes.  Admission control is at accept: when max_inflight
/// connections are already being handled, the new connection gets one
/// error frame (code 429) and is closed without touching the pool, so an
/// overloaded server still answers "try later" quickly.
///
/// stop() is a graceful drain: the listener closes, every open client
/// socket gets shutdown(SHUT_RD) — in-flight requests finish and their
/// responses are written, but no further requests are read — and the pool
/// is drained before stop() returns.  Combined with snapshot hot-reload
/// this gives zero dropped in-flight requests across both reloads and
/// shutdown.
///
/// All server counters live in an obs::MetricsRegistry ("serve.*" names)
/// with the hot-path references bound once at construction, so updates stay
/// O(1) atomic adds; request latencies land in the registry's
/// "serve.request_seconds" histogram (same single mutex the per-worker
/// slots shared before).  ServeMetrics/metrics() is a point-in-time view
/// over the registry.  When obs::Tracer is enabled every request emits a
/// span (category "serve") annotated with the op, cache hit/miss and
/// fallback kind.
class Server {
 public:
  Server(SnapshotSource* source, QueryEngine* engine, ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen + start the accept thread.  Throws BindError when the
  /// socket cannot be bound.
  void start();

  /// Graceful drain (see class comment).  Idempotent.
  void stop();

  /// The bound port (useful with config.port = 0).
  [[nodiscard]] int port() const { return port_; }

  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::uint64_t requests_handled() const {
    return c_requests_.value();
  }

  /// Point-in-time aggregate: server counters + engine cache stats +
  /// snapshot reload stats + latency quantiles + uptime since start().
  [[nodiscard]] ServeMetrics metrics() const;

  /// The live metrics store behind metrics() — "serve.*" counters and the
  /// "serve.request_seconds" histogram update as requests are handled.
  [[nodiscard]] obs::MetricsRegistry& registry() { return registry_; }

 private:
  void accept_loop();
  void serve_connection(int fd);
  /// Handle one parsed payload; returns the response JSON and annotates the
  /// request span (op, cache hits, fallback kind) when tracing is on.
  [[nodiscard]] std::string handle_payload(const std::string& payload,
                                           obs::ScopedSpan& span);

  void register_client(int fd);
  void unregister_client(int fd);

  SnapshotSource* source_;
  QueryEngine* engine_;
  ServerConfig config_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::thread acceptor_;
  std::unique_ptr<support::ThreadPool> pool_;
  std::atomic<bool> running_{false};

  std::atomic<std::size_t> inflight_{0};

  /// Canonical metric store; the references below are the hot-path handles
  /// (get-or-create once, O(1) relaxed atomics afterwards).  Declared after
  /// registry_ so construction order is safe.
  obs::MetricsRegistry registry_;
  obs::Counter& c_connections_;
  obs::Counter& c_requests_;
  obs::Counter& c_predictions_;
  obs::Counter& c_errors_;
  obs::Counter& c_rejected_overload_;
  obs::Counter& c_malformed_frames_;
  obs::Counter& c_oversized_frames_;
  obs::Histogram& h_latency_;

  std::chrono::steady_clock::time_point start_time_{};
  std::atomic<bool> started_{false};

  std::mutex clients_mutex_;
  std::vector<int> clients_;
};

}  // namespace kcoup::serve
