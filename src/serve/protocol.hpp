#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "serve/query_engine.hpp"

namespace kcoup::serve {

/// Wire format: length-prefixed JSON lines over TCP.  One frame is the
/// payload's byte count in ASCII decimal, a '\n', then exactly that many
/// payload bytes (one JSON object, no trailing newline required):
///
///   13\n{"op":"ping"}
///
/// Both directions use the same framing.  Doubles are serialized with 17
/// significant digits (support::format_double), so a prediction survives
/// the round trip bit-identically; non-finite values are omitted and read
/// back as NaN.

// --- Requests ---------------------------------------------------------------

enum class RequestOp { kPing, kStats, kPredict, kBatch };

struct Request {
  RequestOp op = RequestOp::kPing;
  std::vector<QueryKey> queries;  ///< one for kPredict, many for kBatch
};

/// Parse a request payload; nullopt on anything malformed.
[[nodiscard]] std::optional<Request> parse_request(const std::string& json);

/// Serialize requests (used by the client).
[[nodiscard]] std::string ping_request();
[[nodiscard]] std::string stats_request();
[[nodiscard]] std::string predict_request(const QueryKey& query);
[[nodiscard]] std::string batch_request(const std::vector<QueryKey>& queries);

// --- Responses --------------------------------------------------------------

/// {"ok":true,...} for one prediction (error predictions serialize with
/// "ok":false and "error").
[[nodiscard]] std::string prediction_json(const Prediction& p);
/// {"ok":true,"results":[...]} for a batch.  Takes a span so the server
/// can serialize a frame's sub-range of the window's shared result vector
/// without copying the predictions first.
[[nodiscard]] std::string batch_json(std::span<const Prediction> results);
/// {"ok":false,"error":...,"code":N} server-level refusal (overload,
/// malformed frame, bad request).
[[nodiscard]] std::string error_json(const std::string& error, int code);

/// Parse one prediction object (the client's inverse of prediction_json).
[[nodiscard]] std::optional<Prediction> parse_prediction(
    const std::string& json);
/// Split the top-level JSON array value of `field` into its element
/// strings; nullopt when the field is missing or the array is malformed.
[[nodiscard]] std::optional<std::vector<std::string>> split_json_array(
    const std::string& json, const char* field);

// --- JSON field helpers (shared with tests) ---------------------------------

[[nodiscard]] std::optional<std::string> json_string_field(
    const std::string& json, const char* name);
[[nodiscard]] std::optional<double> json_number_field(const std::string& json,
                                                      const char* name);
/// Escape a byte string for use inside a JSON string literal: quotes and
/// backslashes, the named escapes (\n \t \r \b \f), and every other byte
/// below 0x20 as \u00XX (raw control bytes are invalid JSON).  Bytes >=
/// 0x80 pass through untouched, so UTF-8 stays UTF-8.  json_string_field
/// decodes all of these, making escape→parse a lossless round trip for
/// arbitrary byte strings.
[[nodiscard]] std::string json_escape(const std::string& s);

}  // namespace kcoup::serve
