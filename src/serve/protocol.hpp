#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "serve/query_engine.hpp"

namespace kcoup::serve {

/// Wire format: length-prefixed JSON lines over TCP.  One frame is the
/// payload's byte count in ASCII decimal, a '\n', then exactly that many
/// payload bytes (one JSON object, no trailing newline required):
///
///   13\n{"op":"ping"}
///
/// Both directions use the same framing.  Doubles are serialized with 17
/// significant digits (support::format_double), so a prediction survives
/// the round trip bit-identically; non-finite values are omitted and read
/// back as NaN.

// --- Requests ---------------------------------------------------------------

enum class RequestOp { kPing, kStats, kMetrics, kSlowlog, kPredict, kBatch };

/// Longest accepted trace id, chosen to fit a span annotation value buffer
/// (obs::SpanAnnotation) without truncation; longer ids are cut here so the
/// id echoed in the response always matches the one in the server's spans.
inline constexpr std::size_t kMaxTraceIdBytes = 40;

struct Request {
  RequestOp op = RequestOp::kPing;
  std::vector<QueryKey> queries;  ///< one for kPredict, many for kBatch
  /// Optional caller-supplied trace context: annotated onto the server's
  /// per-request span and echoed in the response, so a client-side trace
  /// export and the server's --trace-out stitch into one timeline.
  std::string trace_id;
};

/// Parse a request payload; nullopt on anything malformed.
[[nodiscard]] std::optional<Request> parse_request(const std::string& json);

/// Serialize requests (used by the client).  A non-empty `trace_id` is
/// attached as the optional "trace_id" field.
[[nodiscard]] std::string ping_request(const std::string& trace_id = {});
[[nodiscard]] std::string stats_request(const std::string& trace_id = {});
/// `metrics` op: the response frame is Prometheus text exposition (the one
/// non-JSON payload in the protocol), rendered from the server's registry.
[[nodiscard]] std::string metrics_request(const std::string& trace_id = {});
/// `slowlog` op: {"ok":true,"slowest":[...],"failed":[...]}.
[[nodiscard]] std::string slowlog_request(const std::string& trace_id = {});
[[nodiscard]] std::string predict_request(const QueryKey& query,
                                          const std::string& trace_id = {});
[[nodiscard]] std::string batch_request(const std::vector<QueryKey>& queries,
                                        const std::string& trace_id = {});

/// Splice `,"trace_id":"..."` in front of a JSON object's closing brace —
/// how the server echoes the request's trace context in its response.  A
/// payload that is not a JSON object (the metrics exposition) or an empty
/// trace id returns the payload unchanged.
[[nodiscard]] std::string attach_trace_id(std::string json,
                                          const std::string& trace_id);

// --- Responses --------------------------------------------------------------

/// {"ok":true,...} for one prediction (error predictions serialize with
/// "ok":false and "error").
[[nodiscard]] std::string prediction_json(const Prediction& p);
/// {"ok":true,"results":[...]} for a batch.  Takes a span so the server
/// can serialize a frame's sub-range of the window's shared result vector
/// without copying the predictions first.
[[nodiscard]] std::string batch_json(std::span<const Prediction> results);
/// {"ok":false,"error":...,"code":N} server-level refusal (overload,
/// malformed frame, bad request).
[[nodiscard]] std::string error_json(const std::string& error, int code);

/// Parse one prediction object (the client's inverse of prediction_json).
[[nodiscard]] std::optional<Prediction> parse_prediction(
    const std::string& json);
/// Split the top-level JSON array value of `field` into its element
/// strings; nullopt when the field is missing or the array is malformed.
[[nodiscard]] std::optional<std::vector<std::string>> split_json_array(
    const std::string& json, const char* field);

// --- JSON field helpers (shared with tests) ---------------------------------

[[nodiscard]] std::optional<std::string> json_string_field(
    const std::string& json, const char* name);
[[nodiscard]] std::optional<double> json_number_field(const std::string& json,
                                                      const char* name);
/// Escape a byte string for use inside a JSON string literal: quotes and
/// backslashes, the named escapes (\n \t \r \b \f), and every other byte
/// below 0x20 as \u00XX (raw control bytes are invalid JSON).  Bytes >=
/// 0x80 pass through untouched, so UTF-8 stays UTF-8.  json_string_field
/// decodes all of these, making escape→parse a lossless round trip for
/// arbitrary byte strings.
[[nodiscard]] std::string json_escape(const std::string& s);

}  // namespace kcoup::serve
