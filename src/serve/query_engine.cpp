#include "serve/query_engine.hpp"

#include <cmath>
#include <utility>

#include "coupling/analysis.hpp"
#include "trace/stats.hpp"

namespace kcoup::serve {

QueryEngine::QueryEngine(const Workload* workload, EngineOptions options)
    : workload_(workload),
      cells_(options.cache_capacity, options.cache_shards) {}

std::optional<CellInputs> QueryEngine::cell(const std::string& application,
                                            const std::string& config,
                                            int ranks, bool* was_hit) {
  CellInputs out;
  if (!cell_into(CellKey{application, config, ranks}, &out, was_hit)) {
    return std::nullopt;
  }
  return out;
}

bool QueryEngine::cell_into(const CellKey& key, CellInputs* out,
                            bool* was_hit) {
  if (was_hit != nullptr) *was_hit = false;
  if (cells_.get_into(key, out)) {
    if (was_hit != nullptr) *was_hit = true;
    return true;
  }
  if (!workload_->valid_cell(key.application, key.config, key.ranks)) {
    return false;
  }
  *out = workload_->measure_cell(key.application, key.config, key.ranks);
  cells_.put(key, *out);
  return true;
}

Prediction QueryEngine::predict(const PredictorSnapshot& snapshot,
                                const QueryKey& query) {
  Prediction p;
  p.key = query;
  p.snapshot_version = snapshot.version();

  const auto canonical =
      workload_->canonical(query.application, query.config);
  if (!canonical.has_value()) {
    p.error = "unknown application/config '" + query.application + "/" +
              query.config + "'";
    return p;
  }
  p.key.application = canonical->first;
  p.key.config = canonical->second;
  if (query.ranks < 1) {
    p.error = "ranks must be >= 1";
    return p;
  }
  if (query.chain_length < 1) {
    p.error = "chain length must be >= 1";
    return p;
  }

  thread_local RequestScratch scratch;

  // 1. Cell inputs: memoized measurement, or scaling-model extrapolation
  //    for configurations that cannot run.  Both land in the per-thread
  //    scratch; string/vector assignment reuses its warm buffers.
  scratch.cell_key.application = p.key.application;
  scratch.cell_key.config = p.key.config;
  scratch.cell_key.ranks = p.key.ranks;
  const coupling::PredictionInputs* inputs = nullptr;
  std::size_t loop_size = 0;
  if (cell_into(scratch.cell_key, &scratch.cell, &p.cache_hit)) {
    inputs = &scratch.cell.inputs;
    loop_size = scratch.cell.loop_size;
    p.actual_s = scratch.cell.actual_s;
    p.summation_s = scratch.cell.summation_s;
    p.inputs_source = "measured";
  } else {
    const auto* fitted = snapshot.fitted_models_for(p.key.application);
    const auto* models = snapshot.models_for(p.key.application);
    const auto shape = workload_->shape(p.key.application, p.key.config);
    if ((fitted == nullptr && models == nullptr) || !shape.has_value()) {
      p.error = "cell " + p.key.application + "/" + p.key.config + "/P=" +
                std::to_string(p.key.ranks) +
                " cannot be measured and no scaling models are fitted";
      return p;
    }
    coupling::PredictionInputs& mi = scratch.model_inputs;
    // The scratch persists across queries, so every field a fresh local
    // would zero-initialize must be reset here — stale prologue/epilogue
    // seconds from an earlier measured query would otherwise leak in.
    mi.isolated_means.clear();
    mi.prologue_s = 0.0;
    mi.epilogue_s = 0.0;
    mi.iterations = shape->iterations;
    const double ranks_d = static_cast<double>(p.key.ranks);
    if (fitted != nullptr && !fitted->empty()) {
      // The cross-validated piecewise models: the segment covering the
      // queried P supplies both the extrapolation and the reported form.
      loop_size = fitted->size();
      mi.isolated_means.reserve(loop_size);
      for (const model::PiecewiseModel& pw : *fitted) {
        mi.isolated_means.push_back(pw.evaluate(shape->grid_extent, ranks_d));
        if (!p.model_form.empty()) p.model_form += ',';
        p.model_form += pw.segment_for(ranks_d).model.term_names();
      }
    } else {
      loop_size = models->size();
      mi.isolated_means.reserve(loop_size);
      for (const coupling::KernelScalingModel& m : *models) {
        mi.isolated_means.push_back(m.evaluate(shape->grid_extent, ranks_d));
      }
    }
    p.summation_s = coupling::summation_prediction(mi);
    p.inputs_source = "model";
    inputs = &mi;
  }
  if (query.chain_length > loop_size) {
    p.error = "chain length " + std::to_string(query.chain_length) +
              " exceeds loop size " + std::to_string(loop_size);
    return p;
  }

  // 2. Coupling coefficients: precomputed exact group, else nearest-ranks
  //    donor chains assembled from the database.
  const AlphaGroup* group = snapshot.find_alpha(
      p.key.application, p.key.config, p.key.ranks, query.chain_length);
  if (group != nullptr && group->loop_size == loop_size) {
    p.coupling_s = coupling::alpha_prediction(*inputs, group->alpha);
    p.alpha_source = "exact";
  } else {
    if (!snapshot.database().reuse_chains_into(
            p.key.application, p.key.config, p.key.ranks, query.chain_length,
            loop_size, &scratch.donor)) {
      p.error = "no coupling data for " + p.key.application + "/" +
                p.key.config + " q=" + std::to_string(query.chain_length);
      return p;
    }
    p.coupling_s = coupling::coupling_prediction(*inputs, scratch.donor);
    p.alpha_source = "nearest";
    // The chain_start=0 donor's rank count, for the server's rank-distance
    // telemetry.  One extra lookup only on the nearest path, against the
    // scratch's warm probe key so the steady state stays allocation-free.
    scratch.donor_probe.application = p.key.application;
    scratch.donor_probe.config = p.key.config;
    scratch.donor_probe.ranks = p.key.ranks;
    scratch.donor_probe.chain_length = query.chain_length;
    scratch.donor_probe.chain_start = 0;
    const coupling::CouplingRecord* donor =
        snapshot.database().find_nearest_ranks_ref(scratch.donor_probe);
    if (donor != nullptr) p.donor_ranks = donor->key.ranks;
  }

  if (std::isfinite(p.actual_s) && p.actual_s > 0.0) {
    p.coupling_error = trace::relative_error(p.coupling_s, p.actual_s);
    p.summation_error = trace::relative_error(p.summation_s, p.actual_s);
  }
  // One client-facing name for the fallback path that answered: model
  // extrapolation dominates (the inputs carry no measurement), otherwise
  // the alpha provenance decides between exact and nearest-donor reuse.
  if (p.inputs_source == "model") {
    p.source = "model";
  } else {
    p.source = p.alpha_source == "exact" ? "exact" : "nearest-donor";
  }
  p.ok = true;
  return p;
}

std::vector<Prediction> QueryEngine::predict_batch(
    const PredictorSnapshot& snapshot, std::span<const QueryKey> queries) {
  std::vector<Prediction> out;
  out.reserve(queries.size());
  for (const QueryKey& q : queries) out.push_back(predict(snapshot, q));
  return out;
}

}  // namespace kcoup::serve
