#include "serve/query_engine.hpp"

#include <cmath>
#include <utility>

#include "coupling/analysis.hpp"
#include "trace/stats.hpp"

namespace kcoup::serve {

QueryEngine::QueryEngine(const Workload* workload, EngineOptions options)
    : workload_(workload),
      cells_(options.cache_capacity, options.cache_shards) {}

std::optional<CellInputs> QueryEngine::cell(const std::string& application,
                                            const std::string& config,
                                            int ranks, bool* was_hit) {
  if (was_hit != nullptr) *was_hit = false;
  const CellKey key{application, config, ranks};
  if (auto cached = cells_.get(key)) {
    if (was_hit != nullptr) *was_hit = true;
    return cached;
  }
  if (!workload_->valid_cell(application, config, ranks)) return std::nullopt;
  CellInputs measured = workload_->measure_cell(application, config, ranks);
  cells_.put(key, measured);
  return measured;
}

Prediction QueryEngine::predict(const PredictorSnapshot& snapshot,
                                const QueryKey& query) {
  Prediction p;
  p.key = query;
  p.snapshot_version = snapshot.version();

  const auto canonical =
      workload_->canonical(query.application, query.config);
  if (!canonical.has_value()) {
    p.error = "unknown application/config '" + query.application + "/" +
              query.config + "'";
    return p;
  }
  p.key.application = canonical->first;
  p.key.config = canonical->second;
  if (query.ranks < 1) {
    p.error = "ranks must be >= 1";
    return p;
  }
  if (query.chain_length < 1) {
    p.error = "chain length must be >= 1";
    return p;
  }

  // 1. Cell inputs: memoized measurement, or scaling-model extrapolation
  //    for configurations that cannot run.
  coupling::PredictionInputs inputs;
  std::size_t loop_size = 0;
  const auto measured =
      cell(p.key.application, p.key.config, p.key.ranks, &p.cache_hit);
  if (measured.has_value()) {
    inputs = measured->inputs;
    loop_size = measured->loop_size;
    p.actual_s = measured->actual_s;
    p.summation_s = measured->summation_s;
    p.inputs_source = "measured";
  } else {
    const auto* models = snapshot.models_for(p.key.application);
    const auto shape = workload_->shape(p.key.application, p.key.config);
    if (models == nullptr || !shape.has_value()) {
      p.error = "cell " + p.key.application + "/" + p.key.config + "/P=" +
                std::to_string(p.key.ranks) +
                " cannot be measured and no scaling models are fitted";
      return p;
    }
    loop_size = models->size();
    inputs.iterations = shape->iterations;
    inputs.isolated_means.reserve(loop_size);
    for (const coupling::KernelScalingModel& m : *models) {
      inputs.isolated_means.push_back(
          m.evaluate(shape->grid_extent, static_cast<double>(p.key.ranks)));
    }
    p.summation_s = coupling::summation_prediction(inputs);
    p.inputs_source = "model";
  }
  if (query.chain_length > loop_size) {
    p.error = "chain length " + std::to_string(query.chain_length) +
              " exceeds loop size " + std::to_string(loop_size);
    return p;
  }

  // 2. Coupling coefficients: precomputed exact group, else nearest-ranks
  //    donor chains assembled from the database.
  const AlphaGroup* group = snapshot.find_alpha(
      p.key.application, p.key.config, p.key.ranks, query.chain_length);
  if (group != nullptr && group->loop_size == loop_size) {
    p.coupling_s = coupling::alpha_prediction(inputs, group->alpha);
    p.alpha_source = "exact";
  } else {
    const auto donor = snapshot.database().reuse_chains_for(
        p.key.application, p.key.config, p.key.ranks, query.chain_length,
        loop_size);
    if (donor.empty()) {
      p.error = "no coupling data for " + p.key.application + "/" +
                p.key.config + " q=" + std::to_string(query.chain_length);
      return p;
    }
    p.coupling_s = coupling::coupling_prediction(inputs, donor);
    p.alpha_source = "nearest";
  }

  if (std::isfinite(p.actual_s) && p.actual_s > 0.0) {
    p.coupling_error = trace::relative_error(p.coupling_s, p.actual_s);
    p.summation_error = trace::relative_error(p.summation_s, p.actual_s);
  }
  p.ok = true;
  return p;
}

std::vector<Prediction> QueryEngine::predict_batch(
    const PredictorSnapshot& snapshot, std::span<const QueryKey> queries) {
  std::vector<Prediction> out;
  out.reserve(queries.size());
  for (const QueryKey& q : queries) out.push_back(predict(snapshot, q));
  return out;
}

}  // namespace kcoup::serve
