#include "serve/workload.hpp"

#include <memory>
#include <stdexcept>

#include "coupling/study.hpp"
#include "npb/bt/bt_model.hpp"
#include "npb/common/problem.hpp"
#include "npb/lu/lu_model.hpp"
#include "npb/sp/sp_model.hpp"

namespace kcoup::serve {

namespace {

std::optional<npb::Benchmark> parse_benchmark(const std::string& s) {
  if (s == "bt" || s == "BT") return npb::Benchmark::kBT;
  if (s == "sp" || s == "SP") return npb::Benchmark::kSP;
  if (s == "lu" || s == "LU") return npb::Benchmark::kLU;
  return std::nullopt;
}

std::optional<npb::ProblemClass> parse_class(const std::string& s) {
  if (s == "S" || s == "s") return npb::ProblemClass::kS;
  if (s == "W" || s == "w") return npb::ProblemClass::kW;
  if (s == "A" || s == "a") return npb::ProblemClass::kA;
  if (s == "B" || s == "b") return npb::ProblemClass::kB;
  return std::nullopt;
}

std::unique_ptr<npb::ModeledApp> make_app(npb::Benchmark bench,
                                          npb::ProblemClass cls, int ranks,
                                          const machine::MachineConfig& cfg) {
  switch (bench) {
    case npb::Benchmark::kBT: return npb::bt::make_modeled_bt(cls, ranks, cfg);
    case npb::Benchmark::kSP: return npb::sp::make_modeled_sp(cls, ranks, cfg);
    case npb::Benchmark::kLU: return npb::lu::make_modeled_lu(cls, ranks, cfg);
  }
  throw std::logic_error("NpbWorkload: unknown benchmark");
}

}  // namespace

std::optional<std::pair<std::string, std::string>> NpbWorkload::canonical(
    const std::string& application, const std::string& config) const {
  const auto bench = parse_benchmark(application);
  const auto cls = parse_class(config);
  if (!bench || !cls) return std::nullopt;
  return std::make_pair(npb::to_string(*bench), npb::to_string(*cls));
}

bool NpbWorkload::valid_cell(const std::string& application,
                             const std::string& config, int ranks) const {
  const auto bench = parse_benchmark(application);
  const auto cls = parse_class(config);
  return bench && cls && npb::valid_rank_count(*bench, ranks);
}

CellInputs NpbWorkload::measure_cell(const std::string& application,
                                     const std::string& config,
                                     int ranks) const {
  const auto bench = parse_benchmark(application);
  const auto cls = parse_class(config);
  if (!bench || !cls || !npb::valid_rank_count(*bench, ranks)) {
    throw std::invalid_argument("NpbWorkload::measure_cell: invalid cell " +
                                application + "/" + config + "/P=" +
                                std::to_string(ranks));
  }
  const auto modeled = make_app(*bench, *cls, ranks, machine_);
  // A chain-free study: the same planner/executor/assembly as a campaign
  // cell, so every value here is bit-identical to what run_study() computes
  // for the cell — the serving layer only skips the expensive chains.
  coupling::StudyOptions options;
  options.measurement = measurement_;
  const coupling::StudyResult r = coupling::run_study(modeled->app(), options);

  CellInputs cell;
  cell.inputs.isolated_means = r.isolated_means;
  cell.inputs.prologue_s = r.prologue_s;
  cell.inputs.epilogue_s = r.epilogue_s;
  cell.inputs.iterations = modeled->app().iterations;
  cell.actual_s = r.actual_s;
  cell.summation_s = r.summation_s;
  cell.loop_size = modeled->app().loop_size();
  cell.grid_extent = static_cast<double>(npb::problem_size(*bench, *cls).n);
  return cell;
}

std::optional<CellShape> NpbWorkload::shape(const std::string& application,
                                            const std::string& config) const {
  const auto bench = parse_benchmark(application);
  const auto cls = parse_class(config);
  if (!bench || !cls) return std::nullopt;
  const npb::ProblemSize size = npb::problem_size(*bench, *cls);
  return CellShape{static_cast<double>(size.n), size.iterations};
}

}  // namespace kcoup::serve
