#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace kcoup::serve {

/// Fixed-capacity log of the K slowest requests plus a ring of the most
/// recent failed requests — the "what just went wrong / what is slow"
/// answer the cumulative counters cannot give.
///
/// The hot path is the admission check, not the insert: record() first
/// compares against an atomic latency threshold (the current K-th slowest)
/// and returns without taking the lock for the overwhelmingly common
/// fast-and-ok request.  Only admissions (a failed request, or a latency
/// above the floor) pay the mutex, and those are rare by construction.
/// Entry strings allocate only on admission, so the steady-state serve path
/// stays allocation-free.
class SlowLog {
 public:
  struct Entry {
    double latency_s = 0.0;
    std::uint64_t seq = 0;      ///< admission order, process-monotone
    std::size_t shard = 0;      ///< event-loop shard that served it
    bool ok = true;             ///< false: request failed (always logged)
    std::string op;             ///< "predict" | "batch" | "stats" | ...
    std::string source;         ///< fallback tier of the first answer, or ""
    std::string trace_id;       ///< request's trace context, or ""
    std::string request;        ///< truncated request JSON
  };

  /// `slow_capacity`: how many slowest-ok requests to keep;
  /// `failed_capacity`: ring size for failed requests.
  explicit SlowLog(std::size_t slow_capacity = 32,
                   std::size_t failed_capacity = 64);

  /// Record one finished request (any thread).  Failed entries always
  /// enter the failed ring; ok entries enter the slow set only when their
  /// latency beats the current K-th slowest.
  void record(Entry entry);

  /// Cheap pre-check mirroring record()'s fast path, so callers can skip
  /// building an Entry at all (its strings allocate) for requests that
  /// record() would drop anyway — the steady-state serve path stays
  /// allocation-free.
  [[nodiscard]] bool would_admit(bool ok, double latency_s) const {
    return !ok || latency_s > threshold_.load(std::memory_order_relaxed);
  }

  /// {"ok":true,"slowest":[...],"failed":[...]} — slowest sorted by
  /// latency descending, failed in admission order (oldest first).
  [[nodiscard]] std::string to_json() const;

  /// Truncate a request payload for storage (keeps the JSON readable
  /// without keeping whole batch bodies alive).
  [[nodiscard]] static std::string truncate_request(const std::string& payload,
                                                    std::size_t max_bytes = 120);

 private:
  const std::size_t slow_capacity_;
  const std::size_t failed_capacity_;
  /// Admission floor: the smallest latency in the (full) slow set; ok
  /// requests below it skip the lock entirely.
  std::atomic<double> threshold_{0.0};
  std::atomic<std::uint64_t> seq_{0};

  mutable std::mutex mutex_;
  std::vector<Entry> slow_;    ///< unordered; smallest found on eviction
  std::vector<Entry> failed_;  ///< ring; next_failed_ is the write index
  std::size_t next_failed_ = 0;
  std::uint64_t failed_total_ = 0;
};

}  // namespace kcoup::serve
