#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <utility>

#include "coupling/analysis.hpp"
#include "coupling/measurement.hpp"
#include "machine/config.hpp"

namespace kcoup::serve {

/// Everything the query engine needs about one (application, config, ranks)
/// cell that does not come from the coupling database: the cheap isolated
/// measurements (the paper's N per-kernel loops), the one-shot kernels, and
/// the shape.  Produced once per cell and memoized — the expensive chain
/// measurements stay in the database.
struct CellInputs {
  coupling::PredictionInputs inputs;  ///< isolated means, prologue/epilogue, I
  double actual_s = 0.0;              ///< full-application run, for error cols
  double summation_s = 0.0;           ///< baseline prediction (paper §4.1)
  std::size_t loop_size = 0;
  double grid_extent = 0.0;           ///< n, for the scaling-model basis
};

/// Static shape of a configuration, obtainable without measuring (used by
/// the scaling-model fallback for configurations that cannot run at all).
struct CellShape {
  double grid_extent = 0.0;
  int iterations = 1;
};

/// The application universe a prediction service can measure.  Implemented
/// over the modeled NPB suite for `kcoup serve`; tests plug in synthetic
/// deterministic applications.  All methods must be safe to call
/// concurrently: server workers and the snapshot re-fit path measure cells
/// in parallel.
class Workload {
 public:
  virtual ~Workload() = default;

  /// Canonical (application, config) spelling, or nullopt when the pair
  /// is unknown to this workload (e.g. "bt"/"w" -> ("BT", "W") — the
  /// spelling the campaign writes into the coupling database).
  [[nodiscard]] virtual std::optional<std::pair<std::string, std::string>>
  canonical(const std::string& application, const std::string& config) const {
    return std::make_pair(application, config);
  }

  /// True iff the cell can be instantiated and measured (e.g. BT requires a
  /// square rank count).
  [[nodiscard]] virtual bool valid_cell(const std::string& application,
                                        const std::string& config,
                                        int ranks) const = 0;

  /// Measure one cell: isolated means, prologue/epilogue, actual, summation
  /// — everything a study produces except chains.  Throws on unknown or
  /// invalid cells.
  [[nodiscard]] virtual CellInputs measure_cell(const std::string& application,
                                                const std::string& config,
                                                int ranks) const = 0;

  /// Shape of a configuration without measuring it, or nullopt when the
  /// (application, config) pair is unknown.
  [[nodiscard]] virtual std::optional<CellShape> shape(
      const std::string& application, const std::string& config) const = 0;
};

/// The modeled NPB suite (BT/SP/LU x S/W/A/B on a machine config) — the
/// same universe `kcoup campaign` sweeps, so a campaign-produced database
/// and this workload agree bit-for-bit on every measured value.
class NpbWorkload final : public Workload {
 public:
  explicit NpbWorkload(machine::MachineConfig machine,
                       coupling::MeasurementOptions measurement = {})
      : machine_(std::move(machine)), measurement_(measurement) {}

  [[nodiscard]] std::optional<std::pair<std::string, std::string>> canonical(
      const std::string& application,
      const std::string& config) const override;
  [[nodiscard]] bool valid_cell(const std::string& application,
                                const std::string& config,
                                int ranks) const override;
  [[nodiscard]] CellInputs measure_cell(const std::string& application,
                                        const std::string& config,
                                        int ranks) const override;
  [[nodiscard]] std::optional<CellShape> shape(
      const std::string& application, const std::string& config) const override;

 private:
  machine::MachineConfig machine_;
  coupling::MeasurementOptions measurement_;
};

}  // namespace kcoup::serve
