#include "serve/poller.hpp"

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>

#if KCOUP_HAVE_EPOLL
#include <sys/epoll.h>
#endif

namespace kcoup::serve {

Poller::Poller(bool force_poll) {
#if KCOUP_HAVE_EPOLL
  if (!force_poll) epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
#else
  (void)force_poll;
#endif
}

Poller::~Poller() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

#if KCOUP_HAVE_EPOLL
namespace {
std::uint32_t epoll_mask(bool want_read, bool want_write) {
  std::uint32_t mask = 0;
  if (want_read) mask |= EPOLLIN;
  if (want_write) mask |= EPOLLOUT;
  return mask;
}
}  // namespace
#endif

void Poller::add(int fd, bool want_read, bool want_write) {
#if KCOUP_HAVE_EPOLL
  if (epoll_fd_ >= 0) {
    epoll_event ev{};
    ev.events = epoll_mask(want_read, want_write);
    ev.data.fd = fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    return;
  }
#endif
  interests_.push_back({fd, want_read, want_write});
}

void Poller::modify(int fd, bool want_read, bool want_write) {
#if KCOUP_HAVE_EPOLL
  if (epoll_fd_ >= 0) {
    epoll_event ev{};
    ev.events = epoll_mask(want_read, want_write);
    ev.data.fd = fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
    return;
  }
#endif
  for (Interest& in : interests_) {
    if (in.fd == fd) {
      in.want_read = want_read;
      in.want_write = want_write;
      return;
    }
  }
}

void Poller::remove(int fd) {
#if KCOUP_HAVE_EPOLL
  if (epoll_fd_ >= 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
    return;
  }
#endif
  for (std::size_t i = 0; i < interests_.size(); ++i) {
    if (interests_[i].fd == fd) {
      interests_[i] = interests_.back();
      interests_.pop_back();
      return;
    }
  }
}

std::size_t Poller::wait(std::vector<Event>* out, int timeout_ms) {
  out->clear();
#if KCOUP_HAVE_EPOLL
  if (epoll_fd_ >= 0) {
    epoll_event events[64];
    int n;
    do {
      n = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
    } while (n < 0 && errno == EINTR);
    for (int i = 0; i < n; ++i) {
      Event e;
      e.fd = events[i].data.fd;
      e.readable = (events[i].events & EPOLLIN) != 0;
      e.writable = (events[i].events & EPOLLOUT) != 0;
      e.hangup = (events[i].events & (EPOLLHUP | EPOLLERR)) != 0;
      out->push_back(e);
    }
    return out->size();
  }
#endif
  std::vector<pollfd> fds;
  fds.reserve(interests_.size());
  for (const Interest& in : interests_) {
    pollfd p{};
    p.fd = in.fd;
    if (in.want_read) p.events |= POLLIN;
    if (in.want_write) p.events |= POLLOUT;
    fds.push_back(p);
  }
  int n;
  do {
    n = ::poll(fds.data(), fds.size(), timeout_ms);
  } while (n < 0 && errno == EINTR);
  if (n <= 0) return 0;
  for (const pollfd& p : fds) {
    if (p.revents == 0) continue;
    Event e;
    e.fd = p.fd;
    e.readable = (p.revents & (POLLIN | POLLHUP)) != 0;
    e.writable = (p.revents & POLLOUT) != 0;
    e.hangup = (p.revents & (POLLHUP | POLLERR | POLLNVAL)) != 0;
    out->push_back(e);
  }
  return out->size();
}

}  // namespace kcoup::serve
