#include "serve/framing.hpp"

#include <sys/socket.h>

#include <cerrno>
#include <limits>

namespace kcoup::serve {

namespace {

constexpr std::size_t kMaxLengthDigits = 20;

}  // namespace

bool accumulate_length_digit(std::size_t* length, char c) {
  if (c < '0' || c > '9') return false;
  const auto digit = static_cast<std::size_t>(c - '0');
  constexpr std::size_t kMax = std::numeric_limits<std::size_t>::max();
  if (*length > (kMax - digit) / 10) return false;  // would wrap
  *length = *length * 10 + digit;
  return true;
}

FrameDecodeStatus decode_frame(const std::string& buf, std::size_t* pos,
                               std::size_t max_payload, std::string* payload) {
  std::size_t i = *pos;
  std::size_t length = 0;
  std::size_t digits = 0;
  for (;; ++i) {
    if (i >= buf.size()) return FrameDecodeStatus::kNeedMore;
    const char c = buf[i];
    if (c == '\n') {
      if (digits == 0) return FrameDecodeStatus::kMalformed;
      break;
    }
    if (digits >= kMaxLengthDigits || !accumulate_length_digit(&length, c)) {
      return FrameDecodeStatus::kMalformed;
    }
    ++digits;
  }
  if (length > max_payload) return FrameDecodeStatus::kOversized;
  const std::size_t body = i + 1;
  if (buf.size() - body < length) return FrameDecodeStatus::kNeedMore;
  payload->assign(buf, body, length);
  *pos = body + length;
  return FrameDecodeStatus::kFrame;
}

std::string encode_frame(const std::string& payload) {
  return std::to_string(payload.size()) + "\n" + payload;
}

bool send_frame_best_effort(int fd, const std::string& payload) {
  const std::string frame = encode_frame(payload);
  const ssize_t n = ::send(fd, frame.data(), frame.size(),
                           MSG_NOSIGNAL | MSG_DONTWAIT);
  return n >= 0 && static_cast<std::size_t>(n) == frame.size();
}

}  // namespace kcoup::serve
