#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "obs/trace.hpp"
#include "serve/framing.hpp"
#include "serve/protocol.hpp"

namespace kcoup::serve {

namespace {

bool send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Client::connect(const std::string& host, int port) {
  close();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error("client: cannot create socket: " +
                             std::string(std::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("client: invalid host '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("client: cannot connect to " + host + ":" +
                             std::to_string(port) + ": " + why);
  }
  fd_ = fd;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::optional<std::string> Client::read_frame() {
  std::size_t length = 0;
  std::size_t digits = 0;
  for (;;) {
    char c = 0;
    const ssize_t r = ::recv(fd_, &c, 1, 0);
    if (r <= 0) {
      if (r < 0 && errno == EINTR) continue;
      return std::nullopt;
    }
    if (c == '\n') {
      if (digits == 0) return std::nullopt;
      break;
    }
    // Same hardened rule as the server's decoder: a length whose decimal
    // value would wrap std::size_t is malformed, never silently small.
    if (digits >= 20 || !accumulate_length_digit(&length, c)) {
      return std::nullopt;
    }
    ++digits;
  }
  std::string payload(length, '\0');
  std::size_t got = 0;
  while (got < length) {
    const ssize_t r = ::recv(fd_, payload.data() + got, length - got, 0);
    if (r <= 0) {
      if (r < 0 && errno == EINTR) continue;
      return std::nullopt;
    }
    got += static_cast<std::size_t>(r);
  }
  return payload;
}

std::optional<std::string> Client::roundtrip(const std::string& payload) {
  return roundtrip_raw(std::to_string(payload.size()) + "\n" + payload);
}

std::optional<std::string> Client::roundtrip_raw(const std::string& bytes) {
  if (fd_ < 0) return std::nullopt;
  if (!send_all(fd_, bytes)) return std::nullopt;
  return read_frame();
}

bool Client::send_request(const std::string& payload) {
  if (fd_ < 0) return false;
  return send_all(fd_, encode_frame(payload));
}

void Client::set_trace_id(std::string id) {
  trace_id_ = std::move(id);
  if (trace_id_.size() > kMaxTraceIdBytes) {
    trace_id_.resize(kMaxTraceIdBytes);
  }
  auto_prefix_.clear();
}

void Client::auto_trace_ids(std::string prefix) {
  if (prefix.empty()) {
    prefix = "c" + std::to_string(static_cast<long long>(::getpid()));
  }
  auto_prefix_ = std::move(prefix);
  trace_id_.clear();
}

const std::string& Client::next_trace_id() {
  if (!auto_prefix_.empty()) {
    last_trace_id_ = auto_prefix_ + "-" + std::to_string(++auto_seq_);
    if (last_trace_id_.size() > kMaxTraceIdBytes) {
      last_trace_id_.resize(kMaxTraceIdBytes);
    }
  } else {
    last_trace_id_ = trace_id_;
  }
  return last_trace_id_;
}

namespace {

/// One client-side span per typed call, annotated to pair with the
/// server-side "request" span carrying the same trace id.
void annotate_request(obs::ScopedSpan& span, const char* op,
                      const std::string& trace_id) {
  if (!span.active()) return;
  span.annotate("op", op);
  if (!trace_id.empty()) span.annotate("trace_id", trace_id);
}

}  // namespace

bool Client::ping() {
  const std::string& id = next_trace_id();
  obs::ScopedSpan span("request", "client");
  annotate_request(span, "ping", id);
  const auto response = roundtrip(ping_request(id));
  return response.has_value() &&
         response->find("\"ok\":true") != std::string::npos;
}

std::optional<Prediction> Client::predict(const QueryKey& query) {
  const std::string& id = next_trace_id();
  obs::ScopedSpan span("request", "client");
  annotate_request(span, "predict", id);
  const auto response = roundtrip(predict_request(query, id));
  if (!response.has_value()) return std::nullopt;
  return parse_prediction(*response);
}

std::optional<std::vector<Prediction>> Client::predict_batch(
    const std::vector<QueryKey>& queries) {
  const std::string& id = next_trace_id();
  obs::ScopedSpan span("request", "client");
  annotate_request(span, "batch", id);
  const auto response = roundtrip(batch_request(queries, id));
  if (!response.has_value()) return std::nullopt;
  const auto elements = split_json_array(*response, "results");
  if (!elements.has_value()) return std::nullopt;
  std::vector<Prediction> out;
  out.reserve(elements->size());
  for (const std::string& element : *elements) {
    auto p = parse_prediction(element);
    if (!p.has_value()) return std::nullopt;
    out.push_back(std::move(*p));
  }
  return out;
}

std::optional<std::string> Client::stats() {
  const std::string& id = next_trace_id();
  obs::ScopedSpan span("request", "client");
  annotate_request(span, "stats", id);
  return roundtrip(stats_request(id));
}

std::optional<std::string> Client::metrics() {
  const std::string& id = next_trace_id();
  obs::ScopedSpan span("request", "client");
  annotate_request(span, "metrics", id);
  return roundtrip(metrics_request(id));
}

std::optional<std::string> Client::slowlog() {
  const std::string& id = next_trace_id();
  obs::ScopedSpan span("request", "client");
  annotate_request(span, "slowlog", id);
  return roundtrip(slowlog_request(id));
}

}  // namespace kcoup::serve
