#include "serve/snapshot.hpp"

#include <sys/stat.h>

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>
#include <utility>

#include "coupling/analysis.hpp"
#include "obs/trace.hpp"
#include "serve/pack.hpp"

namespace kcoup::serve {

namespace {

/// Component-wise (key < probe) without materializing a GroupKey — the
/// lookup path would otherwise copy two strings per query.
bool group_key_before(const PredictorSnapshot::GroupKey& key,
                      const std::string& application,
                      const std::string& config, int ranks,
                      std::size_t chain_length) {
  if (const int c = std::get<0>(key).compare(application); c != 0) {
    return c < 0;
  }
  if (const int c = std::get<1>(key).compare(config); c != 0) return c < 0;
  if (std::get<2>(key) != ranks) return std::get<2>(key) < ranks;
  return std::get<3>(key) < chain_length;
}

/// Reconstruct the full chain set of one complete group, in start order,
/// with the exact members/isolated_sum/chain_time the campaign assembly
/// produced — so coupling_coefficients() over it is bit-identical to the
/// in-process study's.
std::optional<std::vector<coupling::ChainCoupling>> reconstruct_chains(
    std::vector<const coupling::CouplingRecord*> group) {
  std::sort(group.begin(), group.end(),
            [](const coupling::CouplingRecord* a,
               const coupling::CouplingRecord* b) {
              return a->key.chain_start < b->key.chain_start;
            });
  const std::size_t loop_size = group.size();
  std::vector<coupling::ChainCoupling> chains;
  chains.reserve(loop_size);
  for (std::size_t start = 0; start < loop_size; ++start) {
    const coupling::CouplingRecord& r = *group[start];
    if (r.key.chain_start != start) return std::nullopt;  // holes: partial
    if (r.key.chain_length > loop_size) return std::nullopt;
    coupling::ChainCoupling c;
    c.start = start;
    c.length = r.key.chain_length;
    for (std::size_t i = 0; i < c.length; ++i) {
      c.members.push_back((start + i) % loop_size);
    }
    c.label = "db(P=" + std::to_string(r.key.ranks) + ")";
    c.chain_time = r.chain_time;
    c.isolated_sum = r.isolated_sum;
    chains.push_back(std::move(c));
  }
  return chains;
}

}  // namespace

PredictorSnapshot::PredictorSnapshot(coupling::CouplingDatabase db,
                                     std::uint64_t version,
                                     const CellFn& cell_fn,
                                     const SnapshotOptions& options)
    : db_(std::move(db)), version_(version) {
  // Group records by (application, config, ranks, chain_length).
  std::map<GroupKey, std::vector<const coupling::CouplingRecord*>> by_group;
  for (const coupling::CouplingRecord& r : db_.records()) {
    by_group[GroupKey{r.key.application, r.key.config, r.key.ranks,
                      r.key.chain_length}]
        .push_back(&r);
  }
  for (auto& [key, records] : by_group) {
    auto chains = reconstruct_chains(std::move(records));
    if (!chains.has_value()) continue;  // partial group: reuse path at query
    AlphaGroup group;
    group.loop_size = chains->size();
    group.alpha = coupling::coupling_coefficients(group.loop_size, *chains);
    group.chains = std::move(*chains);
    // by_group is a std::map, so emplace_back lands in sorted key order —
    // the invariant find_alpha's binary search relies on.
    groups_.emplace_back(key, std::move(group));
  }

  if (options.detect_transitions) {
    // Purely record-derived: the coupling series over ranks for every
    // (application, config, chain_length, chain_start), segmented for
    // level shifts — the paper's memory-hierarchy transitions.
    transitions_ = model::detect_coupling_transitions(db_);
  }

  if (!options.fit_scaling_models || !cell_fn) return;

  // Fit per-application scaling models from the database's measurable
  // cells.  Samples pool across configs and rank counts (n varies with the
  // problem class, P with the ranks).  Two model families are built from
  // the same samples: the legacy fixed-basis LSQ models (kept for format
  // compatibility and as the fallback of last resort) and the
  // cross-validated piecewise models the query engine prefers.  Degenerate
  // sample sets yield flagged constant models, never a silently-NaN fit
  // and never a silently modelless application.
  std::map<std::string, std::set<std::pair<std::string, int>>> cells_by_app;
  for (const coupling::CouplingRecord& r : db_.records()) {
    cells_by_app[r.key.application].insert({r.key.config, r.key.ranks});
  }
  for (const auto& [application, cells] : cells_by_app) {
    std::vector<std::vector<coupling::ScalingSample>> samples;
    for (const auto& [config, ranks] : cells) {
      const auto cell = cell_fn(application, config, ranks);
      if (!cell.has_value()) continue;
      if (samples.empty()) samples.resize(cell->loop_size);
      if (samples.size() != cell->loop_size) continue;  // shape mismatch
      for (std::size_t k = 0; k < cell->loop_size; ++k) {
        samples[k].push_back({cell->grid_extent,
                              static_cast<double>(ranks),
                              cell->inputs.isolated_means[k]});
      }
    }
    if (samples.empty() || samples.front().empty()) continue;
    std::vector<coupling::KernelScalingModel> models;
    std::vector<model::PiecewiseModel> fitted;
    models.reserve(samples.size());
    fitted.reserve(samples.size());
    for (const auto& kernel_samples : samples) {
      models.push_back(coupling::KernelScalingModel::fit_or_constant(
          coupling::ScalingBasis::npb_default(), kernel_samples));
      std::vector<model::ModelSample> ms;
      ms.reserve(kernel_samples.size());
      for (const coupling::ScalingSample& s : kernel_samples) {
        ms.push_back({s.n, s.p, s.seconds});
      }
      fitted.push_back(model::fit_piecewise(ms));
    }
    // cells_by_app is a std::map: sorted application order, as above.
    models_.emplace_back(application, std::move(models));
    fitted_.emplace_back(application, std::move(fitted));
  }
}

PredictorSnapshot::PredictorSnapshot(coupling::CouplingDatabase db,
                                     std::uint64_t version,
                                     Precomputed precomputed)
    : db_(std::move(db)),
      version_(version),
      groups_(std::move(precomputed.groups)),
      models_(std::move(precomputed.models)),
      fitted_(std::move(precomputed.fitted)),
      transitions_(std::move(precomputed.transitions)) {}

const AlphaGroup* PredictorSnapshot::find_alpha(const std::string& application,
                                                const std::string& config,
                                                int ranks,
                                                std::size_t chain_length) const {
  const auto it = std::lower_bound(
      groups_.begin(), groups_.end(), 0,
      [&](const std::pair<GroupKey, AlphaGroup>& entry, int) {
        return group_key_before(entry.first, application, config, ranks,
                                chain_length);
      });
  if (it == groups_.end() || std::get<0>(it->first) != application ||
      std::get<1>(it->first) != config || std::get<2>(it->first) != ranks ||
      std::get<3>(it->first) != chain_length) {
    return nullptr;
  }
  return &it->second;
}

const std::vector<coupling::KernelScalingModel>* PredictorSnapshot::models_for(
    const std::string& application) const {
  const auto it = std::lower_bound(
      models_.begin(), models_.end(), application,
      [](const auto& entry, const std::string& app) {
        return entry.first < app;
      });
  if (it == models_.end() || it->first != application) return nullptr;
  return &it->second;
}

const std::vector<model::PiecewiseModel>* PredictorSnapshot::fitted_models_for(
    const std::string& application) const {
  const auto it = std::lower_bound(
      fitted_.begin(), fitted_.end(), application,
      [](const auto& entry, const std::string& app) {
        return entry.first < app;
      });
  if (it == fitted_.end() || it->first != application) return nullptr;
  return &it->second;
}

SnapshotSource::SnapshotSource(std::string path, CellFn cell_fn,
                               SnapshotOptions options)
    : path_(std::move(path)),
      cell_fn_(std::move(cell_fn)),
      options_(options) {}

SnapshotSource::~SnapshotSource() { stop_polling(); }

std::optional<SnapshotSource::FileProbe> SnapshotSource::probe() const {
  struct stat st{};
  if (::stat(path_.c_str(), &st) != 0) return std::nullopt;
  FileProbe p;
  p.mtime_sec = static_cast<std::int64_t>(st.st_mtim.tv_sec);
  p.mtime_nsec = static_cast<std::int64_t>(st.st_mtim.tv_nsec);
  p.inode = static_cast<std::uint64_t>(st.st_ino);
  p.device = static_cast<std::uint64_t>(st.st_dev);
  p.size = static_cast<std::uint64_t>(st.st_size);
  return p;
}

void SnapshotSource::load_and_publish(const FileProbe& seen) {
  obs::ScopedSpan span("snapshot_reload", "serve");
  // The format is sniffed from the file, not the path: an operator can
  // atomically swap a CSV database for a packed one (or back) under the
  // same serving path, and the next poll() picks the right loader.
  std::shared_ptr<const PredictorSnapshot> snapshot;
  if (is_packed_snapshot_file(path_)) {
    snapshot = load_packed_snapshot(path_, next_version_);
  } else {
    coupling::CouplingDatabase db;
    db.load_csv_file(path_);
    snapshot = std::make_shared<const PredictorSnapshot>(
        std::move(db), next_version_, cell_fn_, options_);
  }
  if (span.active()) {
    span.annotate("version", next_version_);
    span.annotate("records",
                  static_cast<std::uint64_t>(
                      snapshot->database().records().size()));
  }
  // Continuous validation: before the swap, score the outgoing snapshot
  // against whatever the incoming database newly measured.  Runs on the
  // (rare) reload path only; readers keep serving the old snapshot
  // throughout.
  if (const auto outgoing = current_.load(std::memory_order_acquire)) {
    auto drift = std::make_shared<const DriftReport>(compute_drift(
        *outgoing, snapshot->database(), snapshot->version()));
    if (span.active()) {
      span.annotate("drift_new", drift->new_records);
    }
    last_drift_.store(std::move(drift), std::memory_order_release);
  }
  current_.store(std::move(snapshot), std::memory_order_release);
  ++next_version_;
  last_probe_ = seen;
}

void SnapshotSource::load() {
  const auto seen = probe();
  if (!seen.has_value()) {
    throw std::runtime_error("SnapshotSource: cannot stat " + path_);
  }
  load_and_publish(*seen);
  reloads_.fetch_add(1, std::memory_order_relaxed);
}

bool SnapshotSource::poll() {
  const auto seen = probe();
  if (!seen.has_value()) {
    // File vanished (mid-rename window, or deleted): keep serving the old
    // snapshot and try again next poll.
    return false;
  }
  if (last_probe_.has_value() && *seen == *last_probe_) return false;
  try {
    load_and_publish(*seen);
    reloads_.fetch_add(1, std::memory_order_relaxed);
    return true;
  } catch (const std::exception&) {
    reload_failures_.fetch_add(1, std::memory_order_relaxed);
    // Remember the bad probe so a broken file is not re-parsed every poll;
    // the next successful save changes mtime/size again and retriggers.
    last_probe_ = seen;
    return false;
  }
}

void SnapshotSource::start_polling(std::chrono::milliseconds interval) {
  stop_polling();
  {
    std::lock_guard<std::mutex> lock(poll_mutex_);
    poll_stop_ = false;
  }
  poller_ = std::thread([this, interval] {
    std::unique_lock<std::mutex> lock(poll_mutex_);
    for (;;) {
      if (poll_cv_.wait_for(lock, interval, [this] { return poll_stop_; })) {
        return;
      }
      lock.unlock();
      poll();
      lock.lock();
    }
  });
}

void SnapshotSource::stop_polling() {
  {
    std::lock_guard<std::mutex> lock(poll_mutex_);
    poll_stop_ = true;
  }
  poll_cv_.notify_all();
  if (poller_.joinable()) poller_.join();
}

}  // namespace kcoup::serve
