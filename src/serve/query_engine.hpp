#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "serve/sharded_lru.hpp"
#include "serve/snapshot.hpp"
#include "serve/workload.hpp"

namespace kcoup::serve {

/// One prediction request: which application/configuration/processor count,
/// and which chain length's coupling coefficients to compose with.
struct QueryKey {
  std::string application;
  std::string config;
  int ranks = 1;
  std::size_t chain_length = 2;

  [[nodiscard]] bool operator==(const QueryKey&) const = default;
};

/// One answered (or refused) prediction.
struct Prediction {
  bool ok = false;
  std::string error;       ///< set when !ok
  QueryKey key;            ///< canonical spelling
  double coupling_s = std::numeric_limits<double>::quiet_NaN();
  double summation_s = std::numeric_limits<double>::quiet_NaN();
  double actual_s = std::numeric_limits<double>::quiet_NaN();
  double coupling_error = std::numeric_limits<double>::quiet_NaN();
  double summation_error = std::numeric_limits<double>::quiet_NaN();
  std::string alpha_source;   ///< "exact" | "nearest" | ""
  std::string inputs_source;  ///< "measured" | "model" | ""
  /// Which fallback path produced the prediction, as one client-facing
  /// name: "exact" (measured cell + precomputed alpha), "nearest-donor"
  /// (measured cell, donor chains from another rank count), or "model"
  /// (cell inputs extrapolated from the fitted scaling models).  Empty on
  /// errors.
  std::string source;
  /// The selected model form(s) behind a "model"-sourced prediction: the
  /// per-kernel term names of the piecewise segment active at the queried
  /// P, comma-joined in loop order.  Empty unless source == "model".
  std::string model_form;
  /// Rank count of the donor record behind a nearest-donor answer (the
  /// chain_start=0 donor stands in for the group); 0 when the alpha came
  /// from an exact group or a model.  Feeds the server's donor
  /// rank-distance histogram and the "donor_ranks" wire field.
  int donor_ranks = 0;
  bool cache_hit = false;     ///< cell inputs served from the memo cache
  std::uint64_t snapshot_version = 0;
};

struct EngineOptions {
  /// Cell-memo capacity ((application, config, ranks) entries); 0 disables
  /// memoization — every query re-measures, bit-identically.
  std::size_t cache_capacity = 1024;
  std::size_t cache_shards = 8;
};

/// The read side of the prediction service.  Stateless with respect to any
/// particular snapshot (callers pass the snapshot they loaded for the
/// request), so a hot snapshot swap needs no engine coordination: cell
/// inputs depend only on the workload, never on the database.
///
/// Hot path per query: one sharded-LRU lookup for the cell inputs (isolated
/// means et al.), one precomputed-alpha lookup in the snapshot, then the
/// composition algebra T = Tinit + I * sum_k alpha_k E_k + Tfinal.  A cell
/// miss measures the N cheap isolated loops once (two workers racing on the
/// same cold cell may both measure; the values are deterministic, so
/// last-write-wins is harmless).  Missing exact coupling groups fall back
/// to the database's nearest-ranks donor chains; cells that cannot be
/// measured at all fall back to the snapshot's fitted scaling models.
class QueryEngine {
 public:
  QueryEngine(const Workload* workload, EngineOptions options = {});

  [[nodiscard]] Prediction predict(const PredictorSnapshot& snapshot,
                                   const QueryKey& query);
  [[nodiscard]] std::vector<Prediction> predict_batch(
      const PredictorSnapshot& snapshot, std::span<const QueryKey> queries);

  /// Cache-through cell accessor (nullopt when the cell cannot be
  /// measured).  Also the CellFn wired into SnapshotSource, so snapshot
  /// builds and queries share one memo.  `was_hit`, when given, reports
  /// whether the memo served the call.
  [[nodiscard]] std::optional<CellInputs> cell(const std::string& application,
                                               const std::string& config,
                                               int ranks,
                                               bool* was_hit = nullptr);

  [[nodiscard]] CacheStats cache_stats() const { return cells_.stats(); }

 private:
  struct CellKey {
    std::string application;
    std::string config;
    int ranks = 1;
    [[nodiscard]] bool operator==(const CellKey&) const = default;
  };
  struct CellKeyHash {
    [[nodiscard]] std::size_t operator()(const CellKey& k) const {
      std::size_t h = std::hash<std::string>{}(k.application);
      h = h * 1000003 + std::hash<std::string>{}(k.config);
      h = h * 1000003 + std::hash<int>{}(k.ranks);
      return h;
    }
  };

  /// Per-thread request state, reused across predict() calls so a warm
  /// query allocates nothing: the LRU hit assigns into `cell`'s existing
  /// buffers, the fallback paths fill `model_inputs`/`donor` in place.
  /// Every field is (re)written before it is read within one call — stale
  /// values can never leak into a later query.
  struct RequestScratch {
    CellKey cell_key;
    CellInputs cell;
    coupling::PredictionInputs model_inputs;
    std::vector<coupling::ChainCoupling> donor;
    coupling::CouplingKey donor_probe;  ///< warm buffers for the donor lookup
  };

  bool cell_into(const CellKey& key, CellInputs* out, bool* was_hit);

  const Workload* workload_;
  ShardedLruCache<CellKey, CellInputs, CellKeyHash> cells_;
};

}  // namespace kcoup::serve
