#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>

namespace kcoup::serve::binfmt {

/// The `.kcs` packed-snapshot container (see docs/snapshot_format.md).
///
/// Layout invariants the loader enforces — and the format-fuzz tests lean
/// on:
///   * a 64-byte fixed header whose last 8 bytes checksum the first 56,
///   * a section table checksummed as one block,
///   * payload sections laid out back-to-back in table order, each with its
///     own checksum, the last one ending exactly at the recorded file size.
/// Together these cover *every byte of the file* with some checksum, so a
/// truncation at any offset or a single-bit flip anywhere is always
/// detected and reported as a named SnapshotFormatError — never a crash,
/// never a silently wrong snapshot.
///
/// Multi-byte fields are host-endian; the endianness tag makes a
/// cross-endian file fail loudly instead of deserializing garbage.  `.kcs`
/// is a cache artifact regenerated from CSV with `kcoup pack`, not an
/// interchange format.

inline constexpr char kMagic[8] = {'K', 'C', 'O', 'U', 'P', 'K', 'C', 'S'};
/// v2 added the fitted-piecewise-model and coupling-transition sections
/// (kinds 5 and 6) and a per-model flags word in the scaling-model
/// section; v1 files are no longer readable (regenerate from CSV with
/// `kcoup pack` — `.kcs` is a cache artifact, never the source of truth).
inline constexpr std::uint32_t kFormatVersion = 2;
inline constexpr std::uint32_t kEndianTag = 0x01020304u;
inline constexpr std::size_t kHeaderBytes = 64;
inline constexpr std::size_t kHeaderChecksumOffset = kHeaderBytes - 8;
inline constexpr std::size_t kSectionEntryBytes = 32;
/// Far above the six kinds a v2 file carries; a count beyond this is a
/// corrupt or hostile section table, rejected before any allocation.
inline constexpr std::uint32_t kMaxSections = 64;

enum class SectionKind : std::uint32_t {
  kStrings = 1,        ///< deduplicated string table
  kRecords = 2,        ///< coupling records, SoA columns
  kAlphaGroups = 3,    ///< precomputed per-group composition coefficients
  kScalingModels = 4,  ///< fitted per-application kernel scaling models
  kFittedModels = 5,   ///< cross-validated piecewise per-kernel models
  kTransitions = 6,    ///< detected coupling transitions
};

/// Sections a well-formed file carries, in kind order 1..kSectionCount.
inline constexpr std::uint32_t kSectionCount = 6;

/// Every rejection path of the packed-snapshot loader throws this, with a
/// stable machine-checkable `code()` (e.g. "bad magic", "section checksum
/// mismatch") ahead of the human detail.
class SnapshotFormatError : public std::runtime_error {
 public:
  SnapshotFormatError(std::string code, const std::string& detail)
      : std::runtime_error(code + (detail.empty() ? "" : ": " + detail)),
        code_(std::move(code)) {}

  [[nodiscard]] const std::string& code() const { return code_; }

 private:
  std::string code_;
};

/// FNV-1a 64 — the same digest the shard partitioner uses.  Not
/// cryptographic; it guards against corruption (torn writes, bad disks,
/// truncation), not adversaries.
[[nodiscard]] inline std::uint64_t fnv1a64(const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

// --- Serialization helpers (host-endian, unaligned-safe) --------------------

inline void append_u32(std::string* out, std::uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof v);
}

inline void append_u64(std::string* out, std::uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof v);
}

inline void append_i32(std::string* out, std::int32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof v);
}

inline void append_f64(std::string* out, double v) {
  // Raw IEEE-754 bits: the round trip is exact by construction, no 17-digit
  // decimal detour.
  out->append(reinterpret_cast<const char*>(&v), sizeof v);
}

inline void poke_u64(std::string* out, std::size_t offset, std::uint64_t v) {
  std::memcpy(out->data() + offset, &v, sizeof v);
}

/// Bounds-checked reader over one section's bytes.  Every read that would
/// run past the end throws a named error instead of touching out-of-range
/// memory, which is what makes truncation-at-every-offset fuzzing safe.
class Cursor {
 public:
  Cursor(const unsigned char* data, std::size_t size, std::string what)
      : data_(data), size_(size), what_(std::move(what)) {}

  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }

  [[nodiscard]] std::uint32_t u32() { return read<std::uint32_t>(); }
  [[nodiscard]] std::uint64_t u64() { return read<std::uint64_t>(); }
  [[nodiscard]] std::int32_t i32() { return read<std::int32_t>(); }
  [[nodiscard]] double f64() { return read<double>(); }

  [[nodiscard]] const unsigned char* bytes(std::size_t n) {
    require(n, "string bytes");
    const unsigned char* p = data_ + pos_;
    pos_ += n;
    return p;
  }

  /// Guard a count field before reserving memory for it: a corrupt count
  /// can claim 10^18 entries, and the bound must fail *before* a
  /// std::bad_alloc (or worse) rather than after.
  void check_count(std::uint64_t count, std::size_t min_bytes_each,
                   const char* field) const {
    if (min_bytes_each != 0 && count > remaining() / min_bytes_each) {
      throw SnapshotFormatError(
          "count out of range",
          what_ + ": " + field + " claims " + std::to_string(count) +
              " entries but only " + std::to_string(remaining()) +
              " bytes remain");
    }
  }

  void expect_exhausted() const {
    if (pos_ != size_) {
      throw SnapshotFormatError(
          "trailing section bytes",
          what_ + ": " + std::to_string(size_ - pos_) + " undecoded bytes");
    }
  }

 private:
  template <typename T>
  [[nodiscard]] T read() {
    require(sizeof(T), "field");
    T v;
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  void require(std::size_t n, const char* kind) const {
    if (n > remaining()) {
      throw SnapshotFormatError(
          "truncated section",
          what_ + ": " + kind + " of " + std::to_string(n) +
              " bytes with " + std::to_string(remaining()) + " remaining");
    }
  }

  const unsigned char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  std::string what_;
};

}  // namespace kcoup::serve::binfmt
