#include "serve/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <optional>
#include <span>
#include <utility>

#include <cmath>

#include "obs/prom.hpp"
#include "serve/protocol.hpp"
#include "support/arena.hpp"
#include "support/num_format.hpp"

namespace kcoup::serve {

namespace {

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// Monotonic second count for the rolling windows: steady_clock, so a
/// wall-clock step can never smear or duplicate a window slot.
std::int64_t steady_now_s() {
  return std::chrono::duration_cast<std::chrono::seconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr std::size_t kReadChunk = 64 * 1024;
/// Fairness bound: one connection cannot monopolize its shard by streaming
/// faster than the loop can process.  Level-triggered readiness re-fires
/// for whatever is left in the socket buffer.
constexpr std::size_t kMaxReadPerWakeup = 1 << 20;
/// Backpressure: stop reading requests from a connection whose peer is not
/// draining its responses.
constexpr std::size_t kWriteHighWatermark = 4 << 20;

}  // namespace

Server::Server(SnapshotSource* source, QueryEngine* engine,
               ServerConfig config)
    : source_(source),
      engine_(engine),
      config_(std::move(config)),
      c_connections_(registry_.counter("serve.connections")),
      c_requests_(registry_.counter("serve.requests")),
      c_predictions_(registry_.counter("serve.predictions")),
      c_errors_(registry_.counter("serve.errors")),
      c_rejected_overload_(registry_.counter("serve.rejected_overload")),
      c_malformed_frames_(registry_.counter("serve.malformed_frames")),
      c_oversized_frames_(registry_.counter("serve.oversized_frames")),
      h_latency_(registry_.histogram("serve.request_seconds")),
      c_source_exact_(registry_.counter("serve.source.exact")),
      c_source_nearest_(registry_.counter("serve.source.nearest_donor")),
      c_source_model_(registry_.counter("serve.source.model")),
      h_donor_distance_(registry_.histogram("serve.donor.rank_distance")),
      slowlog_(config_.slowlog_slowest, config_.slowlog_failed) {
  if (config_.workers == 0) config_.workers = 1;
  if (config_.max_inflight == 0) config_.max_inflight = 2 * config_.workers;
  if (config_.max_pipeline == 0) config_.max_pipeline = 1;
  windows_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i) {
    windows_.push_back(std::make_unique<ShardWindows>());
  }
}

Server::~Server() { stop(); }

void Server::start() {
  if (listen_fd_ >= 0) return;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw BindError("serve: cannot create socket: " +
                    std::string(std::strerror(errno)));
  }
  const int yes = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &yes, sizeof(yes));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(config_.port));
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw BindError("serve: invalid host '" + config_.host + "'");
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    throw BindError("serve: cannot bind " + config_.host + ":" +
                    std::to_string(config_.port) + ": " + why);
  }
  if (::listen(fd, 64) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    throw BindError("serve: cannot listen on " + config_.host + ":" +
                    std::to_string(config_.port) + ": " + why);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    throw BindError("serve: getsockname failed: " + why);
  }
  port_ = ntohs(bound.sin_port);

  next_shard_ = 0;
  for (std::size_t i = 0; i < config_.workers; ++i) {
    auto shard = std::make_unique<Shard>(config_.force_poll);
    shard->index = i;
    int pipefd[2] = {-1, -1};
    if (::pipe(pipefd) != 0 || !set_nonblocking(pipefd[0]) ||
        !set_nonblocking(pipefd[1])) {
      const std::string why = std::strerror(errno);
      if (pipefd[0] >= 0) ::close(pipefd[0]);
      if (pipefd[1] >= 0) ::close(pipefd[1]);
      for (auto& s : shards_) {
        ::close(s->wake_rd);
        ::close(s->wake_wr);
      }
      shards_.clear();
      ::close(fd);
      throw BindError("serve: cannot create wake pipe: " + why);
    }
    shard->wake_rd = pipefd[0];
    shard->wake_wr = pipefd[1];
    shard->poller.add(shard->wake_rd, true, false);
    shards_.push_back(std::move(shard));
  }
  for (auto& shard : shards_) {
    shard->thread = std::thread([this, s = shard.get()] { shard_loop(*s); });
  }

  listen_fd_ = fd;
  start_time_ = std::chrono::steady_clock::now();
  started_.store(true, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  acceptor_ = std::thread([this] { accept_loop(); });
}

void Server::stop() {
  if (listen_fd_ < 0) return;
  running_.store(false, std::memory_order_release);
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (acceptor_.joinable()) acceptor_.join();
  // The acceptor is gone, so the shard inboxes are final.  Each shard
  // drains on its own thread: one last read of already-arrived bytes,
  // process every buffered complete frame, flush all responses, close.
  for (auto& shard : shards_) {
    {
      std::lock_guard<std::mutex> lock(shard->mutex);
      shard->stop = true;
    }
    wake(*shard);
  }
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
    ::close(shard->wake_rd);
    ::close(shard->wake_wr);
  }
  shards_.clear();
  listen_fd_ = -1;
}

void Server::wake(Shard& shard) {
  const char byte = 1;
  // EAGAIN means a wakeup is already pending, which is just as good.
  [[maybe_unused]] const ssize_t n = ::write(shard.wake_wr, &byte, 1);
}

void Server::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed (stop()) or fatal
    }
    if (!running_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    c_connections_.add(1);
    if (inflight_.fetch_add(1, std::memory_order_acq_rel) >=
        config_.max_inflight) {
      // Fast reject without touching the shards: one best-effort error
      // frame, then close.  The send is non-blocking, so a peer that never
      // reads cannot stall the accept loop.
      inflight_.fetch_sub(1, std::memory_order_acq_rel);
      c_rejected_overload_.add(1);
      (void)send_frame_best_effort(
          fd, error_json("server overloaded, retry later", 429));
      ::close(fd);
      continue;
    }
    if (!set_nonblocking(fd)) {
      inflight_.fetch_sub(1, std::memory_order_acq_rel);
      ::close(fd);
      continue;
    }
    const int yes = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &yes, sizeof(yes));
    Shard& shard = *shards_[next_shard_++ % shards_.size()];
    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      shard.incoming.push_back(fd);
    }
    wake(shard);
  }
}

void Server::shard_loop(Shard& shard) {
  std::vector<Poller::Event> events;
  for (;;) {
    shard.poller.wait(&events, -1);
    bool wakeup = false;
    for (const Poller::Event& event : events) {
      if (event.fd == shard.wake_rd) {
        wakeup = true;
        continue;
      }
      auto it = shard.conns.find(event.fd);
      if (it == shard.conns.end()) continue;
      Conn& conn = it->second;
      if ((event.readable || event.hangup) && !conn.close_after_flush) {
        read_into(conn);
        process_frames(shard, conn);
      }
      if (!flush(conn)) {
        close_conn(shard, event.fd);
        continue;
      }
      const bool flushed = conn.wpos == conn.wbuf.size();
      if (flushed && (conn.close_after_flush || conn.peer_eof)) {
        // peer_eof: whatever remains in rbuf is a frame that can never
        // complete, so there is nothing left to answer.
        close_conn(shard, event.fd);
        continue;
      }
      update_interest(shard, conn);
    }
    if (wakeup) {
      char buf[256];
      while (::read(shard.wake_rd, buf, sizeof(buf)) > 0) {
      }
      std::vector<int> fresh;
      bool stop_requested = false;
      {
        std::lock_guard<std::mutex> lock(shard.mutex);
        fresh.swap(shard.incoming);
        stop_requested = shard.stop;
      }
      for (int fd : fresh) {
        Conn conn;
        conn.fd = fd;
        shard.conns.emplace(fd, std::move(conn));
        shard.poller.add(fd, true, false);
      }
      if (stop_requested) {
        drain_shard(shard);
        return;
      }
    }
  }
}

void Server::read_into(Conn& conn) {
  char buf[kReadChunk];
  std::size_t total = 0;
  while (total < kMaxReadPerWakeup) {
    const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn.rbuf.append(buf, static_cast<std::size_t>(n));
      total += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) {
      conn.peer_eof = true;
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    conn.peer_eof = true;  // hard socket error: treat like a hangup
    return;
  }
}

void Server::process_frames(Shard& shard, Conn& conn) {
  std::vector<std::string> window;
  for (;;) {
    window.clear();
    FrameDecodeStatus status = FrameDecodeStatus::kNeedMore;
    while (window.size() < config_.max_pipeline) {
      std::string payload;
      status = decode_frame(conn.rbuf, &conn.rpos, config_.max_frame_bytes,
                            &payload);
      if (status != FrameDecodeStatus::kFrame) break;
      window.push_back(std::move(payload));
    }
    // Frames ahead of a framing error still get their answers; the error
    // frame goes out last and the connection closes once it is flushed
    // (the length prefix cannot be trusted to resynchronize the stream).
    if (!window.empty()) handle_window(shard, conn, window);
    if (status == FrameDecodeStatus::kMalformed) {
      c_malformed_frames_.add(1);
      conn.wbuf += encode_frame(error_json("malformed frame", 400));
      conn.close_after_flush = true;
      break;
    }
    if (status == FrameDecodeStatus::kOversized) {
      c_oversized_frames_.add(1);
      conn.wbuf += encode_frame(
          error_json("frame exceeds " +
                         std::to_string(config_.max_frame_bytes) + " bytes",
                     413));
      conn.close_after_flush = true;
      break;
    }
    if (status != FrameDecodeStatus::kFrame) break;  // buffer exhausted
    // Window filled to max_pipeline with bytes left over: go again.
  }
  if (conn.close_after_flush) {
    conn.rbuf.clear();
    conn.rpos = 0;
  } else if (conn.rpos > 0) {
    conn.rbuf.erase(0, conn.rpos);
    conn.rpos = 0;
  }
}

void Server::handle_window(Shard& shard, Conn& conn,
                           const std::vector<std::string>& payloads) {
  const auto t0 = std::chrono::steady_clock::now();
  ShardWindows& windows = *windows_[shard.index];

  // Per-shard-thread arena backing the window's frame/query vectors: after
  // a few windows the arena settles at the high-water size and the window
  // setup stops allocating.  reset() at entry recycles the previous
  // window's blocks — its vectors were destroyed when the previous call
  // returned (deallocate is a no-op, so destruction order is free).
  thread_local support::MonotonicArena window_arena;
  window_arena.reset();

  // Parse every frame up front so the whole window's queries can share one
  // snapshot acquisition and one engine call; each frame keeps a [offset,
  // offset+count) view into the shared result vector.
  struct Frame {
    std::optional<Request> request;
    std::size_t offset = 0;
    std::size_t count = 0;
  };
  std::vector<Frame, support::ArenaAllocator<Frame>> frames(
      payloads.size(), support::ArenaAllocator<Frame>(&window_arena));
  std::vector<QueryKey, support::ArenaAllocator<QueryKey>> queries{
      support::ArenaAllocator<QueryKey>(&window_arena)};
  queries.reserve(payloads.size());
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    frames[i].request = parse_request(payloads[i]);
    const auto& request = frames[i].request;
    if (request.has_value() && (request->op == RequestOp::kPredict ||
                                request->op == RequestOp::kBatch)) {
      frames[i].offset = queries.size();
      frames[i].count = request->queries.size();
      queries.insert(queries.end(), request->queries.begin(),
                     request->queries.end());
    }
  }

  std::shared_ptr<const PredictorSnapshot> snapshot;
  std::vector<Prediction> results;
  if (!queries.empty()) {
    snapshot = source_->current();
    if (snapshot != nullptr) {
      results = engine_->predict_batch(*snapshot, queries);
      c_predictions_.add(results.size());
    }
  }

  for (std::size_t i = 0; i < payloads.size(); ++i) {
    obs::ScopedSpan span("request", "serve");
    const Frame& frame = frames[i];
    // Slow-log fields gathered as the frame is handled; the Entry itself
    // is only built when would_admit() says so (its strings allocate).
    const char* op_name = "malformed";
    const std::string* source = nullptr;
    bool frame_ok = true;
    std::string response;
    if (frame.request.has_value() && span.active() &&
        !frame.request->trace_id.empty()) {
      span.annotate("trace_id", frame.request->trace_id);
    }
    if (!frame.request.has_value()) {
      c_errors_.add(1);
      frame_ok = false;
      if (span.active()) span.annotate("op", "malformed");
      response = error_json("malformed request", 400);
    } else {
      switch (frame.request->op) {
        case RequestOp::kPing:
          op_name = "ping";
          if (span.active()) span.annotate("op", "ping");
          response = "{\"ok\":true,\"op\":\"ping\"}";
          break;
        case RequestOp::kStats: {
          op_name = "stats";
          if (span.active()) span.annotate("op", "stats");
          response = stats_json();
          break;
        }
        case RequestOp::kMetrics: {
          op_name = "metrics";
          if (span.active()) span.annotate("op", "metrics");
          // The one non-JSON payload on the wire: raw Prometheus text.
          response = prometheus();
          break;
        }
        case RequestOp::kSlowlog: {
          op_name = "slowlog";
          if (span.active()) span.annotate("op", "slowlog");
          response = slowlog_.to_json();
          break;
        }
        case RequestOp::kPredict:
        case RequestOp::kBatch: {
          const bool single = frame.request->op == RequestOp::kPredict;
          op_name = single ? "predict" : "batch";
          if (span.active()) span.annotate("op", op_name);
          if (snapshot == nullptr) {
            c_errors_.add(1);
            frame_ok = false;
            response = error_json("no snapshot loaded", 503);
            break;
          }
          // A view, not a copy: Prediction carries four strings, and the
          // old deep copy of every batch slice was pure serialization
          // overhead.
          const std::span<const Prediction> slice(
              results.data() + frame.offset, frame.count);
          std::uint64_t failed = 0;
          std::uint64_t cache_hits = 0;
          for (const Prediction& p : slice) {
            if (!p.ok) ++failed;
            if (p.cache_hit) ++cache_hits;
          }
          if (failed != 0) c_errors_.add(failed);
          frame_ok = failed == 0;
          record_prediction_quality(*snapshot, slice);
          if (!slice.empty() && !slice.front().source.empty()) {
            source = &slice.front().source;
          }
          if (span.active()) {
            span.annotate("cache_hits", cache_hits);
            span.annotate("ok", failed == 0);
            // Fallback kind of the first answer stands in for the request:
            // a single predict has exactly one, a batch is usually
            // homogeneous.
            if (!slice.empty() && !slice.front().alpha_source.empty()) {
              span.annotate("alpha", slice.front().alpha_source);
            }
          }
          if (single && !slice.empty()) {
            response = prediction_json(slice.front());
          } else {
            response = batch_json(slice);
          }
          break;
        }
      }
      // Echo the client's trace context so its export and ours stitch into
      // one timeline.  The metrics payload is raw Prometheus text, not
      // JSON — nothing to splice into.
      if (frame.request->op != RequestOp::kMetrics) {
        response = attach_trace_id(std::move(response),
                                   frame.request->trace_id);
      }
    }
    conn.wbuf += encode_frame(response);
    c_requests_.add(1);
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - t0;
    h_latency_.record(elapsed.count());
    const std::int64_t now_s = steady_now_s();
    windows.requests.add(now_s);
    if (!frame_ok) windows.errors.add(now_s);
    windows.latency.record(now_s, elapsed.count());
    if (slowlog_.would_admit(frame_ok, elapsed.count())) {
      SlowLog::Entry entry;
      entry.latency_s = elapsed.count();
      entry.shard = shard.index;
      entry.ok = frame_ok;
      entry.op = op_name;
      if (source != nullptr) entry.source = *source;
      if (frame.request.has_value()) {
        entry.trace_id = frame.request->trace_id;
      }
      entry.request = SlowLog::truncate_request(payloads[i]);
      slowlog_.record(std::move(entry));
    }
    span.finish();
  }
}

void Server::record_prediction_quality(const PredictorSnapshot& snapshot,
                                       std::span<const Prediction> slice) {
  if (slice.empty()) return;
  if (mix_.version.load(std::memory_order_acquire) != snapshot.version()) {
    std::lock_guard<std::mutex> lock(mix_mutex_);
    if (mix_.version.load(std::memory_order_relaxed) != snapshot.version()) {
      mix_.exact.store(0, std::memory_order_relaxed);
      mix_.nearest.store(0, std::memory_order_relaxed);
      mix_.model.store(0, std::memory_order_relaxed);
      mix_.none.store(0, std::memory_order_relaxed);
      mix_.version.store(snapshot.version(), std::memory_order_release);
    }
  }
  for (const Prediction& p : slice) {
    // Donor distance is about the coupling donor, whatever the inputs tier:
    // |log2(donor_P / requested_P)|, the log-scale metric the donor search
    // itself minimizes.
    if (p.donor_ranks > 0 && p.key.ranks > 0) {
      const double distance =
          std::abs(std::log2(static_cast<double>(p.donor_ranks) /
                             static_cast<double>(p.key.ranks)));
      h_donor_distance_.record(distance);
    }
    if (p.source == "exact") {
      c_source_exact_.add(1);
      mix_.exact.fetch_add(1, std::memory_order_relaxed);
    } else if (p.source == "nearest-donor") {
      c_source_nearest_.add(1);
      mix_.nearest.fetch_add(1, std::memory_order_relaxed);
    } else if (p.source == "model") {
      c_source_model_.add(1);
      mix_.model.fetch_add(1, std::memory_order_relaxed);
    } else {
      // Failed predictions never picked a tier.
      mix_.none.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

bool Server::flush(Conn& conn) {
  while (conn.wpos < conn.wbuf.size()) {
    const ssize_t n = ::send(conn.fd, conn.wbuf.data() + conn.wpos,
                             conn.wbuf.size() - conn.wpos, MSG_NOSIGNAL);
    if (n > 0) {
      conn.wpos += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    return false;  // peer gone
  }
  if (conn.wpos != 0) {
    conn.wbuf.clear();
    conn.wpos = 0;
  }
  return true;
}

void Server::update_interest(Shard& shard, Conn& conn) {
  const std::size_t pending = conn.wbuf.size() - conn.wpos;
  const bool want_read = !conn.close_after_flush && !conn.peer_eof &&
                         pending < kWriteHighWatermark;
  const bool want_write = pending != 0;
  if (want_read != conn.reads_enabled || want_write != conn.want_write) {
    conn.reads_enabled = want_read;
    conn.want_write = want_write;
    shard.poller.modify(conn.fd, want_read, want_write);
  }
}

void Server::close_conn(Shard& shard, int fd) {
  shard.poller.remove(fd);
  ::close(fd);
  shard.conns.erase(fd);
  inflight_.fetch_sub(1, std::memory_order_acq_rel);
}

void Server::drain_shard(Shard& shard) {
  // Bytes that raced in just before the listener closed still count as
  // in-flight: one final opportunistic read, then no more requests.
  for (auto& [fd, conn] : shard.conns) {
    if (conn.close_after_flush) continue;
    read_into(conn);
    ::shutdown(fd, SHUT_RD);
    process_frames(shard, conn);
  }
  for (auto& [fd, conn] : shard.conns) {
    while (conn.wpos < conn.wbuf.size()) {
      if (!flush(conn)) break;
      if (conn.wpos < conn.wbuf.size()) {
        pollfd p{};
        p.fd = fd;
        p.events = POLLOUT;
        // A peer that accepts nothing for a full second is gone; dropping
        // its responses is the only option left.
        if (::poll(&p, 1, 1000) <= 0) break;
      }
    }
    ::close(fd);
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
  }
  shard.conns.clear();
}

ServeMetrics Server::metrics() const {
  ServeMetrics m;
  m.workers = config_.workers;
  m.connections = c_connections_.value();
  m.requests = c_requests_.value();
  m.predictions = c_predictions_.value();
  m.errors = c_errors_.value();
  m.rejected_overload = c_rejected_overload_.value();
  m.malformed_frames = c_malformed_frames_.value();
  m.oversized_frames = c_oversized_frames_.value();

  const CacheStats cache = engine_->cache_stats();
  m.cache_hits = cache.hits;
  m.cache_misses = cache.misses;
  m.cache_evictions = cache.evictions;
  m.cache_size = cache.size;

  m.snapshot_reloads = source_->reloads();
  m.snapshot_reload_failures = source_->reload_failures();
  if (const auto snapshot = source_->current()) {
    m.snapshot_version = snapshot->version();
    m.db_records = snapshot->database().records().size();
  }

  if (started_.load(std::memory_order_acquire)) {
    m.uptime_s = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start_time_)
                     .count();
  }

  const support::LatencyHistogram merged = h_latency_.snapshot();
  m.latency_count = merged.count();
  if (merged.count() != 0) {
    m.latency_p50_s = merged.quantile(0.50);
    m.latency_p95_s = merged.quantile(0.95);
    m.latency_p99_s = merged.quantile(0.99);
    m.latency_mean_s = merged.mean();
    m.latency_max_s = merged.max();
  }
  return m;
}

namespace {

/// One rolling-window object: {"requests":..,"errors":..,"rps":..,
/// "error_rate":..,"p50_s":..,"p95_s":..,"p99_s":..}.
void append_window_json(std::string& out, std::uint64_t requests,
                        std::uint64_t errors, std::int64_t window_s,
                        const support::LatencyHistogram& latency) {
  out += "{\"requests\":" + std::to_string(requests);
  out += ",\"errors\":" + std::to_string(errors);
  out += ",\"rps\":" + support::format_double(
                           static_cast<double>(requests) /
                           static_cast<double>(window_s));
  const double error_rate =
      requests == 0 ? 0.0
                    : static_cast<double>(errors) / static_cast<double>(requests);
  out += ",\"error_rate\":" + support::format_double(error_rate);
  const bool have = latency.count() != 0;
  out += ",\"p50_s\":" + support::format_double(have ? latency.quantile(0.50) : 0.0);
  out += ",\"p95_s\":" + support::format_double(have ? latency.quantile(0.95) : 0.0);
  out += ",\"p99_s\":" + support::format_double(have ? latency.quantile(0.99) : 0.0);
  out += '}';
}

}  // namespace

std::string Server::stats_json() {
  std::string out = metrics().to_jsonl();
  while (!out.empty() && out.back() == '\n') out.pop_back();
  if (!out.empty() && out.back() == '}') out.pop_back();

  // Rolling windows, merged across every shard at one shared now_s so the
  // three windows are nested views of the same instant.
  const std::int64_t now_s = steady_now_s();
  static constexpr std::int64_t kWindows[] = {1, 10, 60};
  static constexpr const char* kWindowNames[] = {"1s", "10s", "60s"};
  out += ",\"windows\":{";
  for (std::size_t w = 0; w < 3; ++w) {
    std::uint64_t requests = 0;
    std::uint64_t errors = 0;
    support::LatencyHistogram latency;
    for (const auto& shard_windows : windows_) {
      requests += shard_windows->requests.sum(now_s, kWindows[w]);
      errors += shard_windows->errors.sum(now_s, kWindows[w]);
      shard_windows->latency.collect(now_s, kWindows[w], &latency);
    }
    if (w != 0) out += ',';
    out += '"';
    out += kWindowNames[w];
    out += "\":";
    append_window_json(out, requests, errors, kWindows[w], latency);
  }
  out += '}';

  out += ",\"sources\":{\"snapshot_version\":" +
         std::to_string(mix_.version.load(std::memory_order_acquire));
  out += ",\"exact\":" +
         std::to_string(mix_.exact.load(std::memory_order_relaxed));
  out += ",\"nearest_donor\":" +
         std::to_string(mix_.nearest.load(std::memory_order_relaxed));
  out += ",\"model\":" +
         std::to_string(mix_.model.load(std::memory_order_relaxed));
  out += ",\"none\":" +
         std::to_string(mix_.none.load(std::memory_order_relaxed));
  out += '}';

  out += ",\"drift\":";
  if (const auto drift = source_->last_drift()) {
    out += drift->to_json();
  } else {
    out += "null";
  }
  out += '}';
  return out;
}

std::string Server::prometheus() {
  // Sync derived values into the registry so the exposition is
  // self-contained; everything below is deterministic given the metric
  // state, and render_prometheus is a name-sorted bit-exact render.
  if (started_.load(std::memory_order_acquire)) {
    registry_.gauge("serve.uptime_seconds")
        .set(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           start_time_)
                 .count());
  }
  obs::export_tracer_metrics(registry_);
  const CacheStats cache = engine_->cache_stats();
  registry_.gauge("serve.cache.hits").set(static_cast<double>(cache.hits));
  registry_.gauge("serve.cache.misses")
      .set(static_cast<double>(cache.misses));
  registry_.gauge("serve.snapshot.reloads")
      .set(static_cast<double>(source_->reloads()));
  registry_.gauge("serve.snapshot.reload_failures")
      .set(static_cast<double>(source_->reload_failures()));
  if (const auto snapshot = source_->current()) {
    registry_.gauge("serve.snapshot.version")
        .set(static_cast<double>(snapshot->version()));
  }
  if (const auto drift = source_->last_drift()) {
    registry_.gauge("serve.drift.p50").set(drift->p50);
    registry_.gauge("serve.drift.p95").set(drift->p95);
    registry_.gauge("serve.drift.max").set(drift->max);
    registry_.gauge("serve.drift.new_records")
        .set(static_cast<double>(drift->new_records));
    registry_.gauge("serve.drift.compared")
        .set(static_cast<double>(drift->compared));
  }
  return obs::render_prometheus(registry_.snapshot());
}

}  // namespace kcoup::serve
