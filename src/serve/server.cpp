#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "serve/protocol.hpp"

namespace kcoup::serve {

namespace {

/// Send the whole buffer; false on any error (peer gone, etc.).
bool send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool send_frame(int fd, const std::string& payload) {
  return send_all(fd, std::to_string(payload.size()) + "\n" + payload);
}

/// Read exactly n bytes; false on EOF or error.
bool recv_exact(int fd, char* buf, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, buf + got, n - got, 0);
    if (r <= 0) {
      if (r < 0 && errno == EINTR) continue;
      return false;
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

enum class FrameStatus { kOk, kEof, kMalformed, kOversized };

/// Read one length-prefixed frame.  kEof only when the connection closes
/// cleanly before any length byte arrives.
FrameStatus recv_frame(int fd, std::size_t max_bytes, std::string* payload) {
  // Length line: ASCII digits then '\n', at most 20 chars.
  std::size_t length = 0;
  std::size_t digits = 0;
  for (;;) {
    char c = 0;
    const ssize_t r = ::recv(fd, &c, 1, 0);
    if (r <= 0) {
      if (r < 0 && errno == EINTR) continue;
      return digits == 0 ? FrameStatus::kEof : FrameStatus::kMalformed;
    }
    if (c == '\n') {
      if (digits == 0) return FrameStatus::kMalformed;
      break;
    }
    if (c < '0' || c > '9' || digits >= 20) return FrameStatus::kMalformed;
    length = length * 10 + static_cast<std::size_t>(c - '0');
    ++digits;
  }
  if (length > max_bytes) return FrameStatus::kOversized;
  payload->resize(length);
  if (length != 0 && !recv_exact(fd, payload->data(), length)) {
    return FrameStatus::kMalformed;
  }
  return FrameStatus::kOk;
}

}  // namespace

Server::Server(SnapshotSource* source, QueryEngine* engine,
               ServerConfig config)
    : source_(source),
      engine_(engine),
      config_(std::move(config)),
      c_connections_(registry_.counter("serve.connections")),
      c_requests_(registry_.counter("serve.requests")),
      c_predictions_(registry_.counter("serve.predictions")),
      c_errors_(registry_.counter("serve.errors")),
      c_rejected_overload_(registry_.counter("serve.rejected_overload")),
      c_malformed_frames_(registry_.counter("serve.malformed_frames")),
      c_oversized_frames_(registry_.counter("serve.oversized_frames")),
      h_latency_(registry_.histogram("serve.request_seconds")) {
  if (config_.workers == 0) config_.workers = 1;
  if (config_.max_inflight == 0) config_.max_inflight = 2 * config_.workers;
}

Server::~Server() { stop(); }

void Server::start() {
  if (listen_fd_ >= 0) return;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw BindError("serve: cannot create socket: " +
                    std::string(std::strerror(errno)));
  }
  const int yes = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &yes, sizeof(yes));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(config_.port));
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw BindError("serve: invalid host '" + config_.host + "'");
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    throw BindError("serve: cannot bind " + config_.host + ":" +
                    std::to_string(config_.port) + ": " + why);
  }
  if (::listen(fd, 64) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    throw BindError("serve: cannot listen on " + config_.host + ":" +
                    std::to_string(config_.port) + ": " + why);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    throw BindError("serve: getsockname failed: " + why);
  }
  port_ = ntohs(bound.sin_port);
  listen_fd_ = fd;

  pool_ = std::make_unique<support::ThreadPool>(config_.workers);
  start_time_ = std::chrono::steady_clock::now();
  started_.store(true, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  acceptor_ = std::thread([this] { accept_loop(); });
}

void Server::stop() {
  if (listen_fd_ < 0) return;
  running_.store(false, std::memory_order_release);
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (acceptor_.joinable()) acceptor_.join();
  // Graceful drain: stop reading further requests from open connections;
  // workers finish the requests already in flight and write their
  // responses, then see EOF and close.
  {
    std::lock_guard<std::mutex> lock(clients_mutex_);
    for (int fd : clients_) ::shutdown(fd, SHUT_RD);
  }
  if (pool_) {
    pool_->wait_idle();
    pool_.reset();
  }
  listen_fd_ = -1;
}

void Server::register_client(int fd) {
  std::lock_guard<std::mutex> lock(clients_mutex_);
  clients_.push_back(fd);
}

void Server::unregister_client(int fd) {
  std::lock_guard<std::mutex> lock(clients_mutex_);
  std::erase(clients_, fd);
}

void Server::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed (stop()) or fatal
    }
    if (!running_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    c_connections_.add(1);
    if (inflight_.fetch_add(1, std::memory_order_acq_rel) >=
        config_.max_inflight) {
      // Fast reject without touching the worker pool: one error frame,
      // then close.  The client sees "overloaded" in bounded time no
      // matter how deep the pool's backlog is.
      inflight_.fetch_sub(1, std::memory_order_acq_rel);
      c_rejected_overload_.add(1);
      send_frame(fd, error_json("server overloaded, retry later", 429));
      ::close(fd);
      continue;
    }
    register_client(fd);
    pool_->submit([this, fd] {
      serve_connection(fd);
      unregister_client(fd);
      ::close(fd);
      inflight_.fetch_sub(1, std::memory_order_acq_rel);
    });
  }
}

void Server::serve_connection(int fd) {
  std::string payload;
  for (;;) {
    const FrameStatus status =
        recv_frame(fd, config_.max_frame_bytes, &payload);
    if (status == FrameStatus::kEof) return;
    if (status == FrameStatus::kMalformed) {
      c_malformed_frames_.add(1);
      send_frame(fd, error_json("malformed frame", 400));
      return;
    }
    if (status == FrameStatus::kOversized) {
      c_oversized_frames_.add(1);
      send_frame(fd, error_json("frame exceeds " +
                                    std::to_string(config_.max_frame_bytes) +
                                    " bytes",
                                413));
      return;
    }

    obs::ScopedSpan span("request", "serve");
    const auto t0 = std::chrono::steady_clock::now();
    const std::string response = handle_payload(payload, span);
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - t0;
    c_requests_.add(1);
    h_latency_.record(elapsed.count());
    const bool sent = send_frame(fd, response);
    span.finish();
    if (!sent) return;
  }
}

std::string Server::handle_payload(const std::string& payload,
                                   obs::ScopedSpan& span) {
  const auto request = parse_request(payload);
  if (!request.has_value()) {
    c_errors_.add(1);
    if (span.active()) span.annotate("op", "malformed");
    return error_json("malformed request", 400);
  }
  switch (request->op) {
    case RequestOp::kPing:
      if (span.active()) span.annotate("op", "ping");
      return "{\"ok\":true,\"op\":\"ping\"}";
    case RequestOp::kStats: {
      if (span.active()) span.annotate("op", "stats");
      std::string out = metrics().to_jsonl();
      if (!out.empty() && out.back() == '\n') out.pop_back();
      return out;
    }
    case RequestOp::kPredict:
    case RequestOp::kBatch: {
      if (span.active()) {
        span.annotate("op",
                      request->op == RequestOp::kPredict ? "predict" : "batch");
      }
      const auto snapshot = source_->current();
      if (snapshot == nullptr) {
        c_errors_.add(1);
        return error_json("no snapshot loaded", 503);
      }
      std::vector<Prediction> results =
          engine_->predict_batch(*snapshot, request->queries);
      c_predictions_.add(results.size());
      std::uint64_t failed = 0;
      std::uint64_t cache_hits = 0;
      for (const Prediction& p : results) {
        if (!p.ok) ++failed;
        if (p.cache_hit) ++cache_hits;
      }
      if (failed != 0) c_errors_.add(failed);
      if (span.active()) {
        span.annotate("cache_hits", cache_hits);
        span.annotate("ok", failed == 0);
        // Fallback kind of the first answer stands in for the request: a
        // single predict has exactly one, a batch is usually homogeneous.
        if (!results.front().alpha_source.empty()) {
          span.annotate("alpha", results.front().alpha_source);
        }
      }
      if (request->op == RequestOp::kPredict) {
        return prediction_json(results.front());
      }
      return batch_json(results);
    }
  }
  c_errors_.add(1);
  if (span.active()) span.annotate("op", "unhandled");
  return error_json("unhandled request", 400);
}

ServeMetrics Server::metrics() const {
  ServeMetrics m;
  m.workers = config_.workers;
  m.connections = c_connections_.value();
  m.requests = c_requests_.value();
  m.predictions = c_predictions_.value();
  m.errors = c_errors_.value();
  m.rejected_overload = c_rejected_overload_.value();
  m.malformed_frames = c_malformed_frames_.value();
  m.oversized_frames = c_oversized_frames_.value();

  const CacheStats cache = engine_->cache_stats();
  m.cache_hits = cache.hits;
  m.cache_misses = cache.misses;
  m.cache_evictions = cache.evictions;
  m.cache_size = cache.size;

  m.snapshot_reloads = source_->reloads();
  m.snapshot_reload_failures = source_->reload_failures();
  if (const auto snapshot = source_->current()) {
    m.snapshot_version = snapshot->version();
    m.db_records = snapshot->database().records().size();
  }

  if (started_.load(std::memory_order_acquire)) {
    m.uptime_s = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start_time_)
                     .count();
  }

  const support::LatencyHistogram merged = h_latency_.snapshot();
  m.latency_count = merged.count();
  if (merged.count() != 0) {
    m.latency_p50_s = merged.quantile(0.50);
    m.latency_p95_s = merged.quantile(0.95);
    m.latency_p99_s = merged.quantile(0.99);
    m.latency_mean_s = merged.mean();
    m.latency_max_s = merged.max();
  }
  return m;
}

}  // namespace kcoup::serve
