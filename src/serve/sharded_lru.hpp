#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

namespace kcoup::serve {

/// Counters for one cache; read with relaxed atomics, so totals observed
/// while other threads mutate the cache are approximate but never torn.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t size = 0;
};

/// A sharded LRU map: the query engine's per-(app, config, ranks) memo.
///
/// Keys hash to one of `shards` independent shards, each a classic
/// mutex-protected list+map LRU, so concurrent server workers only contend
/// when they touch the same shard.  Each shard holds at most
/// ceil(capacity / shards) entries and evicts its least-recently-used entry
/// when full.  A capacity of 0 disables the cache entirely: get() always
/// misses and put() is a no-op — the knob behind `kcoup serve
/// --cache-capacity 0` and the cache-on/off bit-identity tests.
template <typename Key, typename Value, typename Hash = std::hash<Key>>
class ShardedLruCache {
 public:
  explicit ShardedLruCache(std::size_t capacity, std::size_t shards = 8)
      : capacity_(capacity),
        shard_capacity_(shards < 2 ? capacity
                                   : (capacity + shards - 1) / shards),
        shards_(shards == 0 ? 1 : shards) {
    for (auto& s : shards_) s = std::make_unique<Shard>();
  }

  [[nodiscard]] bool enabled() const { return capacity_ > 0; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  [[nodiscard]] std::optional<Value> get(const Key& key) {
    if (!enabled()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    Shard& s = shard_for(key);
    std::lock_guard<std::mutex> lock(s.mutex);
    const auto it = s.index.find(key);
    if (it == s.index.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    s.lru.splice(s.lru.begin(), s.lru, it->second);  // move to front (MRU)
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second->second;
  }

  /// get() into a caller-owned value: a hit assigns (reusing whatever
  /// buffers *out already holds — the allocation-free form the query
  /// engine's per-thread scratch uses), a miss leaves *out untouched.
  /// Accounting and LRU movement match get() exactly.
  bool get_into(const Key& key, Value* out) {
    if (!enabled()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    Shard& s = shard_for(key);
    std::lock_guard<std::mutex> lock(s.mutex);
    const auto it = s.index.find(key);
    if (it == s.index.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    s.lru.splice(s.lru.begin(), s.lru, it->second);  // move to front (MRU)
    hits_.fetch_add(1, std::memory_order_relaxed);
    *out = it->second->second;
    return true;
  }

  void put(const Key& key, Value value) {
    if (!enabled()) return;
    Shard& s = shard_for(key);
    std::lock_guard<std::mutex> lock(s.mutex);
    const auto it = s.index.find(key);
    if (it != s.index.end()) {
      it->second->second = std::move(value);
      s.lru.splice(s.lru.begin(), s.lru, it->second);
      return;
    }
    if (s.lru.size() >= shard_capacity_) {
      s.index.erase(s.lru.back().first);
      s.lru.pop_back();
      evictions_.fetch_add(1, std::memory_order_relaxed);
      size_.fetch_sub(1, std::memory_order_relaxed);
    }
    s.lru.emplace_front(key, std::move(value));
    s.index.emplace(key, s.lru.begin());
    size_.fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] CacheStats stats() const {
    CacheStats st;
    st.hits = hits_.load(std::memory_order_relaxed);
    st.misses = misses_.load(std::memory_order_relaxed);
    st.evictions = evictions_.load(std::memory_order_relaxed);
    st.size = size_.load(std::memory_order_relaxed);
    return st;
  }

 private:
  struct Shard {
    std::mutex mutex;
    std::list<std::pair<Key, Value>> lru;  ///< front = most recently used
    std::unordered_map<Key, typename std::list<std::pair<Key, Value>>::iterator,
                       Hash>
        index;
  };

  [[nodiscard]] Shard& shard_for(const Key& key) {
    // Mix the hash so shard selection and the shard-local unordered_map
    // don't consume the same low bits.
    std::uint64_t h = static_cast<std::uint64_t>(Hash{}(key));
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return *shards_[h % shards_.size()];
  }

  std::size_t capacity_;
  std::size_t shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::size_t> size_{0};
};

}  // namespace kcoup::serve
