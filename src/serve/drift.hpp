#pragma once

#include <cstdint>
#include <string>

#include "coupling/database.hpp"

namespace kcoup::serve {

class PredictorSnapshot;

/// Continuous-validation summary computed at snapshot reload: how far the
/// *outgoing* snapshot's coupling predictions are from the measurements
/// that the *incoming* database newly added.  Each new record carries a
/// measured coupling value C = chain_time / isolated_sum; the outgoing
/// snapshot would have answered that key through its nearest-ranks donor,
/// so |predicted − measured| / |measured| over the new records is exactly
/// the accuracy the server was shipping right before the reload — the
/// paper's predicted-vs-measured validation, run automatically on every
/// data refresh.
struct DriftReport {
  std::uint64_t from_version = 0;  ///< outgoing snapshot
  std::uint64_t to_version = 0;    ///< incoming snapshot
  std::uint64_t new_records = 0;   ///< records in incoming but not outgoing
  std::uint64_t compared = 0;      ///< new records the old snapshot could predict
  double p50 = 0.0;                ///< relative-error quantiles over `compared`
  double p95 = 0.0;
  double max = 0.0;

  /// {"from":...,"to":...,"new_records":...,"compared":...,"p50":...,...}
  [[nodiscard]] std::string to_json() const;
};

/// Compare `outgoing`'s donor-based coupling predictions against the
/// records present in `incoming` but absent from `outgoing`'s database.
/// Deterministic for a fixed snapshot pair: errors are sorted before the
/// quantile reads and nothing depends on iteration order or time.
[[nodiscard]] DriftReport compute_drift(
    const PredictorSnapshot& outgoing,
    const coupling::CouplingDatabase& incoming,
    std::uint64_t incoming_version);

}  // namespace kcoup::serve
