#include "serve/metrics.hpp"

#include <cstdio>
#include <locale>
#include <sstream>

namespace kcoup::serve {

report::Table ServeMetrics::to_table() const {
  report::Table t("Serve metrics");
  t.set_header({"metric", "value"});
  auto count = [&t](const char* name, std::uint64_t v) {
    t.add_row({name, std::to_string(v)});
  };
  auto secs = [&t](const char* name, double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6f s", v);
    t.add_row({name, buf});
  };
  count("workers", workers);
  count("connections", connections);
  count("requests", requests);
  count("predictions", predictions);
  count("errors", errors);
  count("rejected overload", rejected_overload);
  count("malformed frames", malformed_frames);
  count("oversized frames", oversized_frames);
  count("cache hits", cache_hits);
  count("cache misses", cache_misses);
  count("cache evictions", cache_evictions);
  count("cache size", cache_size);
  count("snapshot reloads", snapshot_reloads);
  count("snapshot reload failures", snapshot_reload_failures);
  count("snapshot version", snapshot_version);
  count("db records", db_records);
  count("latency samples", latency_count);
  secs("latency p50", latency_p50_s);
  secs("latency p95", latency_p95_s);
  secs("latency p99", latency_p99_s);
  secs("latency mean", latency_mean_s);
  secs("latency max", latency_max_s);
  secs("uptime", uptime_s);
  return t;
}

std::string ServeMetrics::to_csv() const {
  std::ostringstream out;
  out.imbue(std::locale::classic());
  out << "workers,connections,requests,predictions,errors,rejected_overload,"
         "malformed_frames,oversized_frames,cache_hits,cache_misses,"
         "cache_evictions,cache_size,snapshot_reloads,"
         "snapshot_reload_failures,snapshot_version,db_records,latency_count,"
         "latency_p50_s,latency_p95_s,latency_p99_s,latency_mean_s,"
         "latency_max_s,uptime_s\n"
      << workers << ',' << connections << ',' << requests << ','
      << predictions << ',' << errors << ',' << rejected_overload << ','
      << malformed_frames << ',' << oversized_frames << ',' << cache_hits
      << ',' << cache_misses << ',' << cache_evictions << ',' << cache_size
      << ',' << snapshot_reloads << ',' << snapshot_reload_failures << ','
      << snapshot_version << ',' << db_records << ',' << latency_count << ','
      << latency_p50_s << ',' << latency_p95_s << ',' << latency_p99_s << ','
      << latency_mean_s << ',' << latency_max_s << ',' << uptime_s << '\n';
  return out.str();
}

std::string ServeMetrics::to_jsonl() const {
  std::ostringstream out;
  out.imbue(std::locale::classic());
  out << "{\"workers\":" << workers << ",\"connections\":" << connections
      << ",\"requests\":" << requests << ",\"predictions\":" << predictions
      << ",\"errors\":" << errors
      << ",\"rejected_overload\":" << rejected_overload
      << ",\"malformed_frames\":" << malformed_frames
      << ",\"oversized_frames\":" << oversized_frames
      << ",\"cache_hits\":" << cache_hits
      << ",\"cache_misses\":" << cache_misses
      << ",\"cache_evictions\":" << cache_evictions
      << ",\"cache_size\":" << cache_size
      << ",\"snapshot_reloads\":" << snapshot_reloads
      << ",\"snapshot_reload_failures\":" << snapshot_reload_failures
      << ",\"snapshot_version\":" << snapshot_version
      << ",\"db_records\":" << db_records
      << ",\"latency_count\":" << latency_count
      << ",\"latency_p50_s\":" << latency_p50_s
      << ",\"latency_p95_s\":" << latency_p95_s
      << ",\"latency_p99_s\":" << latency_p99_s
      << ",\"latency_mean_s\":" << latency_mean_s
      << ",\"latency_max_s\":" << latency_max_s
      << ",\"uptime_s\":" << uptime_s << "}\n";
  return out.str();
}

}  // namespace kcoup::serve
