#include "serve/pack.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <fstream>
#include <iterator>
#include <set>
#include <stdexcept>
#include <tuple>
#include <utility>
#include <vector>

#include "model/terms.hpp"
#include "support/atomic_file.hpp"

namespace kcoup::serve {

using binfmt::SnapshotFormatError;

namespace {

// --- Writer -----------------------------------------------------------------

std::uint32_t string_index(const std::vector<std::string>& strings,
                           const std::string& s) {
  const auto it = std::lower_bound(strings.begin(), strings.end(), s);
  // The table was built from every string the snapshot holds, so a miss
  // here is a packer bug, not an input condition.
  return static_cast<std::uint32_t>(it - strings.begin());
}

std::string pack_strings(const std::vector<std::string>& strings) {
  std::string out;
  binfmt::append_u64(&out, strings.size());
  for (const std::string& s : strings) {
    binfmt::append_u64(&out, s.size());
    out.append(s);
  }
  return out;
}

std::string pack_records(const std::vector<std::string>& strings,
                         const std::vector<coupling::CouplingRecord>& records) {
  std::string out;
  binfmt::append_u64(&out, records.size());
  // Struct-of-arrays columns: a reload streams each column sequentially,
  // and future readers can fetch just the columns they need.
  for (const auto& r : records) {
    binfmt::append_u32(&out, string_index(strings, r.key.application));
  }
  for (const auto& r : records) {
    binfmt::append_u32(&out, string_index(strings, r.key.config));
  }
  for (const auto& r : records) binfmt::append_i32(&out, r.key.ranks);
  for (const auto& r : records) binfmt::append_u64(&out, r.key.chain_length);
  for (const auto& r : records) binfmt::append_u64(&out, r.key.chain_start);
  for (const auto& r : records) binfmt::append_f64(&out, r.chain_time);
  for (const auto& r : records) binfmt::append_f64(&out, r.isolated_sum);
  return out;
}

std::string pack_alpha_groups(const std::vector<std::string>& strings,
                              const PredictorSnapshot& snapshot) {
  std::string out;
  binfmt::append_u64(&out, snapshot.alpha_groups().size());
  for (const auto& [key, group] : snapshot.alpha_groups()) {
    binfmt::append_u32(&out, string_index(strings, std::get<0>(key)));
    binfmt::append_u32(&out, string_index(strings, std::get<1>(key)));
    binfmt::append_i32(&out, std::get<2>(key));
    binfmt::append_u64(&out, std::get<3>(key));
    binfmt::append_u64(&out, group.loop_size);
    binfmt::append_u64(&out, group.alpha.size());
    binfmt::append_u64(&out, group.chains.size());
    for (const double a : group.alpha) binfmt::append_f64(&out, a);
    // Chain members and labels are derived (members are the cyclic window
    // (start + i) % loop_size, the label is "db(P=<ranks>)"), so only the
    // irreducible fields are stored; the loader rebuilds the rest exactly
    // as reconstruct_chains() does.
    for (const auto& chain : group.chains) {
      binfmt::append_u64(&out, chain.start);
      binfmt::append_u64(&out, chain.length);
      binfmt::append_f64(&out, chain.chain_time);
      binfmt::append_f64(&out, chain.isolated_sum);
    }
  }
  return out;
}

std::string pack_scaling_models(const std::vector<std::string>& strings,
                                const PredictorSnapshot& snapshot) {
  std::string out;
  // One basis for the whole section: every model the snapshot builder fits
  // uses npb_default(), and the loader only accepts that basis (functions
  // cannot be serialized, so term names are the contract).
  const coupling::ScalingBasis basis = coupling::ScalingBasis::npb_default();
  binfmt::append_u64(&out, basis.names.size());
  for (const std::string& name : basis.names) {
    binfmt::append_u32(&out, string_index(strings, name));
  }
  binfmt::append_u64(&out, snapshot.scaling_models().size());
  for (const auto& [application, models] : snapshot.scaling_models()) {
    binfmt::append_u32(&out, string_index(strings, application));
    binfmt::append_u64(&out, models.size());
    for (const coupling::KernelScalingModel& m : models) {
      if (m.basis().names != basis.names) {
        throw std::invalid_argument(
            "pack_snapshot: model for " + application +
            " uses a non-default scaling basis");
      }
      binfmt::append_u64(&out, m.coefficients().size());
      binfmt::append_u32(&out, m.degenerate() ? 1u : 0u);
      binfmt::append_f64(&out, m.fit_rms_relative_error());
      for (const double c : m.coefficients()) binfmt::append_f64(&out, c);
    }
  }
  return out;
}

std::string pack_fitted_models(const std::vector<std::string>& strings,
                               const PredictorSnapshot& snapshot) {
  std::string out;
  // The registry term names are the contract pairing the file's
  // (term id, coefficient) pairs with this build's term functions — like
  // the scaling basis above, a renamed or reordered registry must bump the
  // format version.
  const std::vector<std::string> names = model::term_names();
  binfmt::append_u64(&out, names.size());
  for (const std::string& name : names) {
    binfmt::append_u32(&out, string_index(strings, name));
  }
  binfmt::append_u64(&out, snapshot.fitted_models().size());
  for (const auto& [application, kernels] : snapshot.fitted_models()) {
    binfmt::append_u32(&out, string_index(strings, application));
    binfmt::append_u64(&out, kernels.size());
    for (const model::PiecewiseModel& pw : kernels) {
      binfmt::append_u64(&out, pw.segments.size());
      for (const double b : pw.breakpoints) binfmt::append_f64(&out, b);
      for (const model::ModelSegment& seg : pw.segments) {
        binfmt::append_f64(&out, seg.p_min);
        binfmt::append_f64(&out, seg.p_max);
        binfmt::append_u64(&out, seg.sample_count);
        binfmt::append_u32(&out, seg.model.degenerate ? 1u : 0u);
        binfmt::append_f64(&out, seg.model.cv_rmse);
        binfmt::append_f64(&out, seg.model.fit_rmse);
        binfmt::append_u64(&out, seg.model.terms.size());
        for (const model::FittedTerm& t : seg.model.terms) {
          binfmt::append_u32(&out, t.id);
          binfmt::append_f64(&out, t.coefficient);
        }
      }
    }
  }
  return out;
}

std::string pack_transitions(const std::vector<std::string>& strings,
                             const PredictorSnapshot& snapshot) {
  std::string out;
  binfmt::append_u64(&out, snapshot.transitions().size());
  for (const model::CouplingTransition& t : snapshot.transitions()) {
    binfmt::append_u32(&out, string_index(strings, t.application));
    binfmt::append_u32(&out, string_index(strings, t.config));
    binfmt::append_u64(&out, t.chain_length);
    binfmt::append_u64(&out, t.chain_start);
    binfmt::append_i32(&out, t.ranks_lo);
    binfmt::append_i32(&out, t.ranks_hi);
    binfmt::append_f64(&out, t.boundary);
    binfmt::append_f64(&out, t.coupling_before);
    binfmt::append_f64(&out, t.coupling_after);
  }
  return out;
}

// --- Loader -----------------------------------------------------------------

std::uint32_t read_u32_at(const unsigned char* p, std::size_t offset) {
  std::uint32_t v;
  std::memcpy(&v, p + offset, sizeof v);
  return v;
}

std::uint64_t read_u64_at(const unsigned char* p, std::size_t offset) {
  std::uint64_t v;
  std::memcpy(&v, p + offset, sizeof v);
  return v;
}

struct SectionEntry {
  std::uint32_t kind = 0;
  std::uint32_t flags = 0;
  std::uint64_t offset = 0;
  std::uint64_t size = 0;
  std::uint64_t checksum = 0;
};

/// Validate header + section table and return the six section entries in
/// kind order.  Every check throws a named SnapshotFormatError; the order
/// (size, magic, endianness, version, header checksum, ...) is chosen so a
/// future-version file reports "unsupported version", not a checksum
/// mismatch against a layout we never understood.
std::vector<SectionEntry> parse_envelope(const unsigned char* p,
                                         std::size_t size,
                                         const std::string& origin) {
  if (size < binfmt::kHeaderBytes) {
    throw SnapshotFormatError(
        "truncated header",
        origin + ": " + std::to_string(size) + " bytes, need at least " +
            std::to_string(binfmt::kHeaderBytes));
  }
  if (std::memcmp(p, binfmt::kMagic, sizeof binfmt::kMagic) != 0) {
    throw SnapshotFormatError("bad magic", origin);
  }
  if (read_u32_at(p, 12) != binfmt::kEndianTag) {
    throw SnapshotFormatError("endianness mismatch", origin);
  }
  const std::uint32_t version = read_u32_at(p, 8);
  if (version != binfmt::kFormatVersion) {
    throw SnapshotFormatError(
        "unsupported version",
        origin + ": file version " + std::to_string(version) +
            ", reader supports " + std::to_string(binfmt::kFormatVersion));
  }
  if (binfmt::fnv1a64(p, binfmt::kHeaderChecksumOffset) !=
      read_u64_at(p, binfmt::kHeaderChecksumOffset)) {
    throw SnapshotFormatError("header checksum mismatch", origin);
  }
  // From here on the header bytes are trustworthy.
  const std::uint64_t file_size = read_u64_at(p, 16);
  if (file_size != size) {
    throw SnapshotFormatError(
        "size mismatch", origin + ": header records " +
                             std::to_string(file_size) + " bytes, file has " +
                             std::to_string(size));
  }
  if (read_u32_at(p, 28) != binfmt::kHeaderBytes) {
    throw SnapshotFormatError("bad header size", origin);
  }
  for (std::size_t i = 40; i < binfmt::kHeaderChecksumOffset; ++i) {
    if (p[i] != 0) {
      throw SnapshotFormatError("nonzero reserved bytes", origin);
    }
  }
  const std::uint32_t section_count = read_u32_at(p, 24);
  if (section_count > binfmt::kMaxSections) {
    throw SnapshotFormatError(
        "oversized section table",
        origin + ": " + std::to_string(section_count) + " sections");
  }
  const std::uint64_t table_bytes =
      std::uint64_t{section_count} * binfmt::kSectionEntryBytes;
  if (table_bytes > size - binfmt::kHeaderBytes) {
    throw SnapshotFormatError("truncated section table", origin);
  }
  if (binfmt::fnv1a64(p + binfmt::kHeaderBytes, table_bytes) !=
      read_u64_at(p, 32)) {
    throw SnapshotFormatError("section table checksum mismatch", origin);
  }

  std::vector<SectionEntry> entries(section_count);
  std::uint64_t expected_offset = binfmt::kHeaderBytes + table_bytes;
  for (std::uint32_t i = 0; i < section_count; ++i) {
    const std::size_t base =
        binfmt::kHeaderBytes + std::size_t{i} * binfmt::kSectionEntryBytes;
    SectionEntry& e = entries[i];
    e.kind = read_u32_at(p, base);
    e.flags = read_u32_at(p, base + 4);
    e.offset = read_u64_at(p, base + 8);
    e.size = read_u64_at(p, base + 16);
    e.checksum = read_u64_at(p, base + 24);
    if (e.flags != 0) {
      throw SnapshotFormatError("bad section flags", origin);
    }
    // Sections must tile the payload region exactly: back-to-back, in
    // table order, the last ending at file_size.  With that invariant every
    // byte of the file is covered by exactly one checksum (header, table,
    // or a section), which the bit-flip fuzz test depends on.
    if (e.offset != expected_offset || e.size > size - expected_offset) {
      throw SnapshotFormatError(
          "section layout mismatch",
          origin + ": section " + std::to_string(i));
    }
    expected_offset += e.size;
  }
  if (expected_offset != size) {
    throw SnapshotFormatError(
        "section layout mismatch",
        origin + ": sections end at " + std::to_string(expected_offset) +
            " of " + std::to_string(size));
  }
  if (section_count != binfmt::kSectionCount) {
    throw SnapshotFormatError(
        "unexpected section count",
        origin + ": " + std::to_string(section_count) + ", expected " +
            std::to_string(binfmt::kSectionCount));
  }
  for (std::uint32_t i = 0; i < section_count; ++i) {
    if (entries[i].kind != i + 1) {
      throw SnapshotFormatError(
          "unexpected section kind",
          origin + ": section " + std::to_string(i) + " has kind " +
              std::to_string(entries[i].kind));
    }
    if (binfmt::fnv1a64(p + entries[i].offset, entries[i].size) !=
        entries[i].checksum) {
      throw SnapshotFormatError(
          "section checksum mismatch",
          origin + ": section kind " + std::to_string(entries[i].kind));
    }
  }
  return entries;
}

std::vector<std::string> decode_strings(binfmt::Cursor cur) {
  const std::uint64_t count = cur.u64();
  cur.check_count(count, 8, "string count");
  std::vector<std::string> strings;
  strings.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t len = cur.u64();
    const unsigned char* bytes = cur.bytes(len);
    strings.emplace_back(reinterpret_cast<const char*>(bytes), len);
  }
  cur.expect_exhausted();
  return strings;
}

const std::string& string_at(const std::vector<std::string>& strings,
                             std::uint32_t index, const std::string& origin) {
  if (index >= strings.size()) {
    throw SnapshotFormatError(
        "string index out of range",
        origin + ": index " + std::to_string(index) + " of " +
            std::to_string(strings.size()));
  }
  return strings[index];
}

coupling::CouplingDatabase decode_records(
    binfmt::Cursor cur, const std::vector<std::string>& strings,
    const std::string& origin) {
  const std::uint64_t count = cur.u64();
  cur.check_count(count, 4 + 4 + 4 + 8 + 8 + 8 + 8, "record count");
  std::vector<coupling::CouplingRecord> records(count);
  for (auto& r : records) {
    r.key.application = string_at(strings, cur.u32(), origin);
  }
  for (auto& r : records) {
    r.key.config = string_at(strings, cur.u32(), origin);
  }
  for (auto& r : records) r.key.ranks = cur.i32();
  for (auto& r : records) {
    r.key.chain_length = static_cast<std::size_t>(cur.u64());
  }
  for (auto& r : records) {
    r.key.chain_start = static_cast<std::size_t>(cur.u64());
  }
  for (auto& r : records) r.chain_time = cur.f64();
  for (auto& r : records) r.isolated_sum = cur.f64();
  cur.expect_exhausted();
  coupling::CouplingDatabase db;
  try {
    // adopt() keeps record()'s value validation (finite, positive) but
    // skips its quadratic replace scan: the packer wrote a deduplicated
    // store, and every byte was already checksum-verified.
    db.adopt(std::move(records));
  } catch (const std::invalid_argument& e) {
    throw SnapshotFormatError("invalid record values", origin + ": " + e.what());
  }
  return db;
}

std::vector<std::pair<PredictorSnapshot::GroupKey, AlphaGroup>>
decode_alpha_groups(binfmt::Cursor cur,
                    const std::vector<std::string>& strings,
                    const std::string& origin) {
  const std::uint64_t count = cur.u64();
  cur.check_count(count, 4 + 4 + 4 + 8 + 8 + 8 + 8, "group count");
  std::vector<std::pair<PredictorSnapshot::GroupKey, AlphaGroup>> groups;
  groups.reserve(count);
  for (std::uint64_t g = 0; g < count; ++g) {
    const std::uint32_t app_idx = cur.u32();
    const std::uint32_t config_idx = cur.u32();
    const std::int32_t ranks = cur.i32();
    const std::uint64_t chain_length = cur.u64();
    const std::uint64_t loop_size = cur.u64();
    const std::uint64_t alpha_count = cur.u64();
    const std::uint64_t chain_count = cur.u64();
    // Complete groups have exactly one chain per loop position; anything
    // else cannot have come from the packer, and the equality also bounds
    // the member-vector reconstruction below.
    if (chain_count != loop_size) {
      throw SnapshotFormatError(
          "bad group shape", origin + ": group " + std::to_string(g) +
                                 " has " + std::to_string(chain_count) +
                                 " chains for loop size " +
                                 std::to_string(loop_size));
    }
    AlphaGroup group;
    group.loop_size = static_cast<std::size_t>(loop_size);
    cur.check_count(alpha_count, 8, "alpha count");
    group.alpha.reserve(alpha_count);
    for (std::uint64_t i = 0; i < alpha_count; ++i) {
      group.alpha.push_back(cur.f64());
    }
    cur.check_count(chain_count, 8 + 8 + 8 + 8, "chain count");
    group.chains.reserve(chain_count);
    const std::string label = "db(P=" + std::to_string(ranks) + ")";
    for (std::uint64_t c = 0; c < chain_count; ++c) {
      coupling::ChainCoupling chain;
      chain.start = static_cast<std::size_t>(cur.u64());
      chain.length = static_cast<std::size_t>(cur.u64());
      chain.chain_time = cur.f64();
      chain.isolated_sum = cur.f64();
      if (chain.length > loop_size) {
        throw SnapshotFormatError(
            "bad group shape",
            origin + ": chain length " + std::to_string(chain.length) +
                " exceeds loop size " + std::to_string(loop_size));
      }
      chain.members.reserve(chain.length);
      for (std::size_t i = 0; i < chain.length; ++i) {
        chain.members.push_back((chain.start + i) % group.loop_size);
      }
      chain.label = label;
      group.chains.push_back(std::move(chain));
    }
    PredictorSnapshot::GroupKey key{string_at(strings, app_idx, origin),
                                    string_at(strings, config_idx, origin),
                                    ranks,
                                    static_cast<std::size_t>(chain_length)};
    if (!groups.empty() && !(groups.back().first < key)) {
      throw SnapshotFormatError("unsorted alpha groups", origin);
    }
    groups.emplace_back(std::move(key), std::move(group));
  }
  cur.expect_exhausted();
  return groups;
}

std::vector<std::pair<std::string, std::vector<coupling::KernelScalingModel>>>
decode_scaling_models(binfmt::Cursor cur,
                      const std::vector<std::string>& strings,
                      const std::string& origin) {
  const coupling::ScalingBasis reference =
      coupling::ScalingBasis::npb_default();
  const std::uint64_t term_count = cur.u64();
  cur.check_count(term_count, 4, "term count");
  std::vector<std::string> term_names;
  term_names.reserve(term_count);
  for (std::uint64_t i = 0; i < term_count; ++i) {
    term_names.push_back(string_at(strings, cur.u32(), origin));
  }
  // Basis functions cannot live in a file; the term-name list is the
  // contract that the file's coefficients pair with the basis this build
  // evaluates.  A renamed or reordered basis must bump the format version.
  if (term_names != reference.names) {
    throw SnapshotFormatError("unknown scaling basis", origin);
  }
  const std::uint64_t app_count = cur.u64();
  cur.check_count(app_count, 4 + 8, "application count");
  std::vector<std::pair<std::string, std::vector<coupling::KernelScalingModel>>>
      models;
  models.reserve(app_count);
  for (std::uint64_t a = 0; a < app_count; ++a) {
    const std::string& application = string_at(strings, cur.u32(), origin);
    const std::uint64_t kernel_count = cur.u64();
    cur.check_count(kernel_count, 8 + 8, "kernel count");
    std::vector<coupling::KernelScalingModel> kernels;
    kernels.reserve(kernel_count);
    for (std::uint64_t k = 0; k < kernel_count; ++k) {
      const std::uint64_t coeff_count = cur.u64();
      const std::uint32_t flags = cur.u32();
      if (flags > 1) {
        throw SnapshotFormatError(
            "bad scaling model",
            origin + ": unknown model flags " + std::to_string(flags));
      }
      const double fit_error = cur.f64();
      cur.check_count(coeff_count, 8, "coefficient count");
      std::vector<double> coefficients;
      coefficients.reserve(coeff_count);
      for (std::uint64_t i = 0; i < coeff_count; ++i) {
        coefficients.push_back(cur.f64());
      }
      try {
        kernels.push_back(coupling::KernelScalingModel::from_parts(
            coupling::ScalingBasis::npb_default(), std::move(coefficients),
            fit_error, (flags & 1u) != 0));
      } catch (const std::invalid_argument& e) {
        throw SnapshotFormatError("bad scaling model",
                                  origin + ": " + e.what());
      }
    }
    if (!models.empty() && !(models.back().first < application)) {
      throw SnapshotFormatError("unsorted scaling models", origin);
    }
    models.emplace_back(application, std::move(kernels));
  }
  cur.expect_exhausted();
  return models;
}

std::vector<std::pair<std::string, std::vector<model::PiecewiseModel>>>
decode_fitted_models(binfmt::Cursor cur,
                     const std::vector<std::string>& strings,
                     const std::string& origin) {
  const std::vector<std::string> reference = model::term_names();
  const std::uint64_t term_count = cur.u64();
  cur.check_count(term_count, 4, "registry term count");
  std::vector<std::string> names;
  names.reserve(term_count);
  for (std::uint64_t i = 0; i < term_count; ++i) {
    names.push_back(string_at(strings, cur.u32(), origin));
  }
  // Term functions cannot live in a file; the pinned registry name list is
  // the proof that the stored term ids mean what this build's registry
  // evaluates.  A renamed, reordered or truncated registry must bump the
  // format version.
  if (names != reference) {
    throw SnapshotFormatError("unknown model term registry", origin);
  }
  const std::uint64_t app_count = cur.u64();
  cur.check_count(app_count, 4 + 8, "fitted application count");
  std::vector<std::pair<std::string, std::vector<model::PiecewiseModel>>>
      fitted;
  fitted.reserve(app_count);
  for (std::uint64_t a = 0; a < app_count; ++a) {
    const std::string& application = string_at(strings, cur.u32(), origin);
    const std::uint64_t kernel_count = cur.u64();
    cur.check_count(kernel_count, 8, "fitted kernel count");
    std::vector<model::PiecewiseModel> kernels;
    kernels.reserve(kernel_count);
    for (std::uint64_t k = 0; k < kernel_count; ++k) {
      const std::uint64_t segment_count = cur.u64();
      if (segment_count == 0) {
        throw SnapshotFormatError(
            "bad fitted model shape",
            origin + ": piecewise model with zero segments");
      }
      // Per segment at minimum: p_min/p_max/sample_count/flags/cv/fit/terms
      // = 8+8+8+4+8+8+8 bytes; the breakpoints add 8 per boundary.
      cur.check_count(segment_count, 8 + 8 + 8 + 4 + 8 + 8 + 8,
                      "segment count");
      model::PiecewiseModel pw;
      pw.breakpoints.reserve(segment_count - 1);
      for (std::uint64_t b = 0; b + 1 < segment_count; ++b) {
        pw.breakpoints.push_back(cur.f64());
        if (pw.breakpoints.size() > 1 &&
            !(pw.breakpoints[pw.breakpoints.size() - 2] <
              pw.breakpoints.back())) {
          throw SnapshotFormatError(
              "bad fitted model shape",
              origin + ": breakpoints not strictly ascending");
        }
      }
      pw.segments.reserve(segment_count);
      for (std::uint64_t sgi = 0; sgi < segment_count; ++sgi) {
        model::ModelSegment seg;
        seg.p_min = cur.f64();
        seg.p_max = cur.f64();
        seg.sample_count = static_cast<std::size_t>(cur.u64());
        const std::uint32_t flags = cur.u32();
        if (flags > 1) {
          throw SnapshotFormatError(
              "bad fitted model shape",
              origin + ": unknown segment flags " + std::to_string(flags));
        }
        seg.model.degenerate = (flags & 1u) != 0;
        seg.model.cv_rmse = cur.f64();
        seg.model.fit_rmse = cur.f64();
        const std::uint64_t seg_terms = cur.u64();
        cur.check_count(seg_terms, 4 + 8, "segment term count");
        seg.model.terms.reserve(seg_terms);
        for (std::uint64_t t = 0; t < seg_terms; ++t) {
          model::FittedTerm term;
          term.id = cur.u32();
          term.coefficient = cur.f64();
          if (term.id >= reference.size()) {
            throw SnapshotFormatError(
                "bad fitted model shape",
                origin + ": term id " + std::to_string(term.id) +
                    " out of registry range");
          }
          if (!seg.model.terms.empty() &&
              !(seg.model.terms.back().id < term.id)) {
            throw SnapshotFormatError(
                "bad fitted model shape",
                origin + ": term ids not strictly ascending");
          }
          seg.model.terms.push_back(term);
        }
        pw.segments.push_back(std::move(seg));
      }
      kernels.push_back(std::move(pw));
    }
    if (!fitted.empty() && !(fitted.back().first < application)) {
      throw SnapshotFormatError("unsorted fitted models", origin);
    }
    fitted.emplace_back(application, std::move(kernels));
  }
  cur.expect_exhausted();
  return fitted;
}

std::vector<model::CouplingTransition> decode_transitions(
    binfmt::Cursor cur, const std::vector<std::string>& strings,
    const std::string& origin) {
  const std::uint64_t count = cur.u64();
  cur.check_count(count, 4 + 4 + 8 + 8 + 4 + 4 + 8 + 8 + 8,
                  "transition count");
  std::vector<model::CouplingTransition> out;
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    model::CouplingTransition t;
    t.application = string_at(strings, cur.u32(), origin);
    t.config = string_at(strings, cur.u32(), origin);
    t.chain_length = static_cast<std::size_t>(cur.u64());
    t.chain_start = static_cast<std::size_t>(cur.u64());
    t.ranks_lo = cur.i32();
    t.ranks_hi = cur.i32();
    t.boundary = cur.f64();
    t.coupling_before = cur.f64();
    t.coupling_after = cur.f64();
    if (!out.empty()) {
      const model::CouplingTransition& prev = out.back();
      const auto key = [](const model::CouplingTransition& x) {
        return std::tie(x.application, x.config, x.chain_length,
                        x.chain_start, x.boundary);
      };
      if (!(key(prev) < key(t))) {
        throw SnapshotFormatError("unsorted transitions", origin);
      }
    }
    out.push_back(std::move(t));
  }
  cur.expect_exhausted();
  return out;
}

}  // namespace

std::string pack_snapshot(const PredictorSnapshot& snapshot) {
  // Deduplicated sorted string table over every string the file refers to.
  std::set<std::string> string_set;
  for (const auto& r : snapshot.database().records()) {
    string_set.insert(r.key.application);
    string_set.insert(r.key.config);
  }
  for (const auto& [key, group] : snapshot.alpha_groups()) {
    string_set.insert(std::get<0>(key));
    string_set.insert(std::get<1>(key));
  }
  for (const auto& name : coupling::ScalingBasis::npb_default().names) {
    string_set.insert(name);
  }
  for (const auto& [application, models] : snapshot.scaling_models()) {
    string_set.insert(application);
  }
  for (const auto& name : model::term_names()) string_set.insert(name);
  for (const auto& [application, kernels] : snapshot.fitted_models()) {
    string_set.insert(application);
  }
  for (const auto& t : snapshot.transitions()) {
    string_set.insert(t.application);
    string_set.insert(t.config);
  }
  const std::vector<std::string> strings(string_set.begin(), string_set.end());

  const std::pair<binfmt::SectionKind, std::string> sections[] = {
      {binfmt::SectionKind::kStrings, pack_strings(strings)},
      {binfmt::SectionKind::kRecords,
       pack_records(strings, snapshot.database().records())},
      {binfmt::SectionKind::kAlphaGroups,
       pack_alpha_groups(strings, snapshot)},
      {binfmt::SectionKind::kScalingModels,
       pack_scaling_models(strings, snapshot)},
      {binfmt::SectionKind::kFittedModels,
       pack_fitted_models(strings, snapshot)},
      {binfmt::SectionKind::kTransitions,
       pack_transitions(strings, snapshot)},
  };
  const std::size_t section_count = std::size(sections);

  std::string table;
  std::uint64_t offset = binfmt::kHeaderBytes +
                         section_count * binfmt::kSectionEntryBytes;
  for (const auto& [kind, payload] : sections) {
    binfmt::append_u32(&table, static_cast<std::uint32_t>(kind));
    binfmt::append_u32(&table, 0);  // flags, reserved
    binfmt::append_u64(&table, offset);
    binfmt::append_u64(&table, payload.size());
    binfmt::append_u64(&table, binfmt::fnv1a64(payload.data(), payload.size()));
    offset += payload.size();
  }
  const std::uint64_t file_size = offset;

  std::string out;
  out.reserve(file_size);
  out.append(binfmt::kMagic, sizeof binfmt::kMagic);
  binfmt::append_u32(&out, binfmt::kFormatVersion);
  binfmt::append_u32(&out, binfmt::kEndianTag);
  binfmt::append_u64(&out, file_size);
  binfmt::append_u32(&out, static_cast<std::uint32_t>(section_count));
  binfmt::append_u32(&out, static_cast<std::uint32_t>(binfmt::kHeaderBytes));
  binfmt::append_u64(&out, binfmt::fnv1a64(table.data(), table.size()));
  out.append(16, '\0');  // reserved
  binfmt::append_u64(&out,
                     binfmt::fnv1a64(out.data(),
                                     binfmt::kHeaderChecksumOffset));
  out += table;
  for (const auto& [kind, payload] : sections) out += payload;
  return out;
}

PackStats pack_snapshot_file(const PredictorSnapshot& snapshot,
                             const std::string& path) {
  const std::string packed = pack_snapshot(snapshot);
  support::write_file_atomic(path, packed);
  PackStats stats;
  stats.records = snapshot.database().records().size();
  stats.alpha_groups = snapshot.alpha_group_count();
  stats.modeled_applications = snapshot.modeled_application_count();
  stats.fitted_applications = snapshot.fitted_application_count();
  stats.transitions = snapshot.transition_count();
  stats.bytes = packed.size();
  stats.format_version = binfmt::kFormatVersion;
  return stats;
}

bool is_packed_snapshot(std::string_view bytes) {
  return bytes.size() >= sizeof binfmt::kMagic &&
         std::memcmp(bytes.data(), binfmt::kMagic, sizeof binfmt::kMagic) == 0;
}

bool is_packed_snapshot_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  char head[sizeof binfmt::kMagic];
  in.read(head, sizeof head);
  if (in.gcount() != static_cast<std::streamsize>(sizeof head)) return false;
  return std::memcmp(head, binfmt::kMagic, sizeof head) == 0;
}

std::shared_ptr<const PredictorSnapshot> load_packed_snapshot_bytes(
    const void* data, std::size_t size, std::uint64_t version,
    const std::string& origin) {
  const auto* p = static_cast<const unsigned char*>(data);
  const std::vector<SectionEntry> sections = parse_envelope(p, size, origin);
  const auto cursor = [&](std::size_t i, const char* what) {
    return binfmt::Cursor(p + sections[i].offset, sections[i].size,
                          origin + " " + what);
  };
  const std::vector<std::string> strings =
      decode_strings(cursor(0, "strings"));
  coupling::CouplingDatabase db =
      decode_records(cursor(1, "records"), strings, origin);
  PredictorSnapshot::Precomputed pre;
  pre.groups = decode_alpha_groups(cursor(2, "alpha groups"), strings, origin);
  pre.models =
      decode_scaling_models(cursor(3, "scaling models"), strings, origin);
  pre.fitted =
      decode_fitted_models(cursor(4, "fitted models"), strings, origin);
  pre.transitions =
      decode_transitions(cursor(5, "transitions"), strings, origin);
  return std::make_shared<const PredictorSnapshot>(std::move(db), version,
                                                   std::move(pre));
}

std::shared_ptr<const PredictorSnapshot> load_packed_snapshot(
    const std::string& path, std::uint64_t version) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw std::runtime_error("load_packed_snapshot: cannot open " + path);
  }
  struct FdGuard {
    int fd;
    ~FdGuard() { ::close(fd); }
  } fd_guard{fd};
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    throw std::runtime_error("load_packed_snapshot: cannot stat " + path);
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size == 0) {
    throw SnapshotFormatError("truncated header", path + ": empty file");
  }
  void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  if (map == MAP_FAILED) {
    throw std::runtime_error("load_packed_snapshot: mmap of " + path +
                             " failed");
  }
  struct MapGuard {
    void* p;
    std::size_t n;
    ~MapGuard() { ::munmap(p, n); }
  } map_guard{map, size};
  return load_packed_snapshot_bytes(map, size, version, path);
}

PackStats verify_packed_snapshot(const std::string& path) {
  const auto snapshot = load_packed_snapshot(path, 0);
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) {
    throw std::runtime_error("verify_packed_snapshot: cannot stat " + path);
  }
  PackStats stats;
  stats.records = snapshot->database().records().size();
  stats.alpha_groups = snapshot->alpha_group_count();
  stats.modeled_applications = snapshot->modeled_application_count();
  stats.fitted_applications = snapshot->fitted_application_count();
  stats.transitions = snapshot->transition_count();
  stats.bytes = static_cast<std::size_t>(st.st_size);
  stats.format_version = binfmt::kFormatVersion;
  return stats;
}

}  // namespace kcoup::serve
