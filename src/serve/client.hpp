#pragma once

#include <optional>
#include <string>
#include <vector>

#include "serve/query_engine.hpp"

namespace kcoup::serve {

/// Minimal blocking client for the serve protocol (one frame out, one frame
/// in).  Used by `kcoup query`, the server tests, and the throughput bench.
/// Not thread-safe; open one Client per thread.
class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Connect to host:port; throws std::runtime_error on failure.
  void connect(const std::string& host, int port);
  void close();
  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  /// Send one framed payload and read one framed response.  Nullopt when
  /// the connection drops (e.g. the server closed it after an error frame).
  [[nodiscard]] std::optional<std::string> roundtrip(
      const std::string& payload);

  /// Send raw bytes with no framing — for malformed/oversized-frame tests.
  /// Returns the response payload if the server sends one.
  [[nodiscard]] std::optional<std::string> roundtrip_raw(
      const std::string& bytes);

  /// Pipelining primitives: send one framed request without waiting for
  /// its response, and read one framed response without sending anything.
  /// The server answers strictly in request order, so K send_request()
  /// calls followed by K read_response() calls pair up positionally.
  [[nodiscard]] bool send_request(const std::string& payload);
  [[nodiscard]] std::optional<std::string> read_response() {
    return read_frame();
  }

  [[nodiscard]] bool ping();
  [[nodiscard]] std::optional<Prediction> predict(const QueryKey& query);
  [[nodiscard]] std::optional<std::vector<Prediction>> predict_batch(
      const std::vector<QueryKey>& queries);
  /// The server's metrics JSONL record, verbatim.
  [[nodiscard]] std::optional<std::string> stats();

 private:
  [[nodiscard]] std::optional<std::string> read_frame();

  int fd_ = -1;
};

}  // namespace kcoup::serve
