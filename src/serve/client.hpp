#pragma once

#include <optional>
#include <string>
#include <vector>

#include "serve/query_engine.hpp"

namespace kcoup::serve {

/// Minimal blocking client for the serve protocol (one frame out, one frame
/// in).  Used by `kcoup query`, the server tests, and the throughput bench.
/// Not thread-safe; open one Client per thread.
class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Connect to host:port; throws std::runtime_error on failure.
  void connect(const std::string& host, int port);
  void close();
  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  /// Send one framed payload and read one framed response.  Nullopt when
  /// the connection drops (e.g. the server closed it after an error frame).
  [[nodiscard]] std::optional<std::string> roundtrip(
      const std::string& payload);

  /// Send raw bytes with no framing — for malformed/oversized-frame tests.
  /// Returns the response payload if the server sends one.
  [[nodiscard]] std::optional<std::string> roundtrip_raw(
      const std::string& bytes);

  /// Pipelining primitives: send one framed request without waiting for
  /// its response, and read one framed response without sending anything.
  /// The server answers strictly in request order, so K send_request()
  /// calls followed by K read_response() calls pair up positionally.
  [[nodiscard]] bool send_request(const std::string& payload);
  [[nodiscard]] std::optional<std::string> read_response() {
    return read_frame();
  }

  [[nodiscard]] bool ping();
  [[nodiscard]] std::optional<Prediction> predict(const QueryKey& query);
  [[nodiscard]] std::optional<std::vector<Prediction>> predict_batch(
      const std::vector<QueryKey>& queries);
  /// The server's metrics JSONL record, verbatim.
  [[nodiscard]] std::optional<std::string> stats();
  /// The server's Prometheus text exposition (`metrics` op), verbatim.
  [[nodiscard]] std::optional<std::string> metrics();
  /// The server's slow-request log (`slowlog` op), verbatim JSON.
  [[nodiscard]] std::optional<std::string> slowlog();

  // --- Trace-context propagation -------------------------------------------
  //
  // A set or auto-generated trace id is attached to every typed request
  // (ping/predict/predict_batch/stats/metrics/slowlog) as the "trace_id"
  // field; the server annotates its per-request span with it and echoes it
  // in the response.  The same id is annotated on the client-side span each
  // typed call records (when obs::Tracer is enabled), so a client trace
  // export and the server's --trace-out stitch into one timeline.

  /// Use this exact id for every subsequent request (empty = none).
  /// Overrides auto-generation.
  void set_trace_id(std::string id);
  /// Generate a fresh `<prefix>-<n>` id per request; an empty prefix picks
  /// a process-unique default ("c<pid>").
  void auto_trace_ids(std::string prefix = {});
  /// The id attached to the most recent typed request ("" when none).
  [[nodiscard]] const std::string& last_trace_id() const {
    return last_trace_id_;
  }

 private:
  [[nodiscard]] std::optional<std::string> read_frame();
  /// The trace id for the next request: the fixed id, a generated one, or
  /// "".  Records it as last_trace_id().
  [[nodiscard]] const std::string& next_trace_id();

  int fd_ = -1;
  std::string trace_id_;
  std::string auto_prefix_;
  std::uint64_t auto_seq_ = 0;
  std::string last_trace_id_;
};

}  // namespace kcoup::serve
