#pragma once

#include <cstddef>
#include <vector>

#if defined(__linux__)
#define KCOUP_HAVE_EPOLL 1
#else
#define KCOUP_HAVE_EPOLL 0
#endif

namespace kcoup::serve {

/// Readiness notification for one event-loop shard: epoll(7) where the
/// platform has it, poll(2) everywhere (and on demand for tests, so the
/// fallback stays exercised on Linux too).  Level-triggered in both
/// backends — a connection with unread bytes or an unflushed write buffer
/// keeps firing until the shard drains it, which is the simplest contract
/// that can never lose a wakeup.
class Poller {
 public:
  struct Event {
    int fd = -1;
    bool readable = false;
    bool writable = false;
    /// Peer hangup or socket error: the shard should still read (there may
    /// be buffered bytes ahead of the EOF) and then close.
    bool hangup = false;
  };

  /// force_poll selects the poll(2) backend even where epoll is available.
  explicit Poller(bool force_poll = false);
  ~Poller();

  Poller(const Poller&) = delete;
  Poller& operator=(const Poller&) = delete;

  void add(int fd, bool want_read, bool want_write);
  void modify(int fd, bool want_read, bool want_write);
  void remove(int fd);

  /// Block up to timeout_ms (-1 = forever) and append ready events to
  /// *out (cleared first).  Returns the number of events; 0 on timeout.
  /// EINTR is retried internally.
  std::size_t wait(std::vector<Event>* out, int timeout_ms);

  [[nodiscard]] bool using_epoll() const { return epoll_fd_ >= 0; }

 private:
  int epoll_fd_ = -1;  ///< -1 = poll(2) backend
  /// poll(2) backend state: the registered interest set.
  struct Interest {
    int fd;
    bool want_read;
    bool want_write;
  };
  std::vector<Interest> interests_;
};

}  // namespace kcoup::serve
