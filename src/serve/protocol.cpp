#include "serve/protocol.hpp"

#include <cmath>

#include "support/num_format.hpp"

namespace kcoup::serve {

namespace {

[[nodiscard]] int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

void append_utf8(std::string& out, unsigned code) {
  if (code < 0x80) {
    out += static_cast<char>(code);
  } else if (code < 0x800) {
    out += static_cast<char>(0xC0 | (code >> 6));
    out += static_cast<char>(0x80 | (code & 0x3F));
  } else {
    out += static_cast<char>(0xE0 | (code >> 12));
    out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (code & 0x3F));
  }
}

/// Locates the first key string whose raw bytes equal `name` and returns
/// the offset just past its colon, or npos.  Scans string tokens properly
/// (backslash consumes the next byte), so `name` occurring *inside a
/// string value* — e.g. a config called `see "ranks": 7` — can never be
/// mistaken for the field.  A string is a key only when the next
/// non-whitespace byte after its closing quote is ':'.
std::size_t field_offset(const std::string& json, const char* name) {
  const std::string want(name);
  std::size_t i = 0;
  while (i < json.size()) {
    if (json[i] != '"') {
      ++i;
      continue;
    }
    const std::size_t start = ++i;  // first content byte
    bool escaped = false;
    while (i < json.size()) {
      const char c = json[i];
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        break;
      }
      ++i;
    }
    if (i >= json.size()) return std::string::npos;  // unterminated string
    const std::size_t end = i;  // closing quote
    ++i;
    std::size_t j = i;
    while (j < json.size() &&
           (json[j] == ' ' || json[j] == '\t' || json[j] == '\n' ||
            json[j] == '\r')) {
      ++j;
    }
    if (j < json.size() && json[j] == ':') {
      if (json.compare(start, end - start, want) == 0) return j + 1;
      i = j + 1;  // non-matching key: resume at its value
    }
  }
  return std::string::npos;
}

void append_number(std::string& out, const char* name, double v) {
  if (!std::isfinite(v)) return;  // absent => NaN on the reader's side
  out += ",\"";
  out += name;
  out += "\":";
  out += support::format_double(v);
}

void append_string(std::string& out, const char* name, const std::string& v) {
  out += ",\"";
  out += name;
  out += "\":\"";
  out += json_escape(v);
  out += '"';
}

std::string query_json(const QueryKey& q) {
  std::string out = "{\"app\":\"" + json_escape(q.application) +
                    "\",\"config\":\"" + json_escape(q.config) +
                    "\",\"ranks\":" + std::to_string(q.ranks) +
                    ",\"chain\":" + std::to_string(q.chain_length) + "}";
  return out;
}

std::optional<QueryKey> parse_query(const std::string& json) {
  const auto app = json_string_field(json, "app");
  const auto config = json_string_field(json, "config");
  const auto ranks = json_number_field(json, "ranks");
  const auto chain = json_number_field(json, "chain");
  if (!app || !config || !ranks || !chain) return std::nullopt;
  if (*ranks < 1 || *chain < 1) return std::nullopt;
  QueryKey q;
  q.application = *app;
  q.config = *config;
  q.ranks = static_cast<int>(*ranks);
  q.chain_length = static_cast<std::size_t>(*chain);
  return q;
}

}  // namespace

std::string json_escape(const std::string& s) {
  static const char* const kHex = "0123456789abcdef";
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default: {
        const auto u = static_cast<unsigned char>(c);
        if (u < 0x20) {
          // Raw control bytes are invalid inside a JSON string.
          out += "\\u00";
          out += kHex[(u >> 4) & 0xF];
          out += kHex[u & 0xF];
        } else {
          out += c;  // bytes >= 0x80 pass through (UTF-8 stays UTF-8)
        }
        break;
      }
    }
  }
  return out;
}

std::optional<std::string> json_string_field(const std::string& json,
                                             const char* name) {
  std::size_t at = field_offset(json, name);
  if (at == std::string::npos || at >= json.size() || json[at] != '"') {
    return std::nullopt;
  }
  std::string out;
  for (++at; at < json.size(); ++at) {
    const char c = json[at];
    if (c == '"') return out;
    if (c != '\\') {
      out += c;
      continue;
    }
    if (++at >= json.size()) return std::nullopt;
    switch (json[at]) {
      case 'n': out += '\n'; break;
      case 't': out += '\t'; break;
      case 'r': out += '\r'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case '/': out += '/'; break;
      case 'u': {
        if (at + 4 >= json.size()) return std::nullopt;
        unsigned code = 0;
        for (int k = 1; k <= 4; ++k) {
          const int d = hex_value(json[at + k]);
          if (d < 0) return std::nullopt;
          code = code * 16 + static_cast<unsigned>(d);
        }
        at += 4;
        // BMP only — json_escape never emits surrogate pairs.
        append_utf8(out, code);
        break;
      }
      default: out += json[at]; break;  // lenient: unknown escape is literal
    }
  }
  return std::nullopt;  // unterminated string
}

std::optional<double> json_number_field(const std::string& json,
                                        const char* name) {
  const std::size_t at = field_offset(json, name);
  if (at == std::string::npos) return std::nullopt;
  const std::size_t end = json.find_first_of(",}]", at);
  if (end == std::string::npos) return std::nullopt;
  return support::parse_double(json.substr(at, end - at));
}

std::optional<std::vector<std::string>> split_json_array(
    const std::string& json, const char* field) {
  std::size_t at = field_offset(json, field);
  if (at == std::string::npos) return std::nullopt;
  while (at < json.size() && (json[at] == ' ' || json[at] == '\t')) ++at;
  if (at >= json.size() || json[at] != '[') return std::nullopt;

  std::vector<std::string> elements;
  int depth = 0;
  bool in_string = false;
  std::size_t element_start = 0;
  for (std::size_t i = at; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '[':
      case '{':
        if (depth == 1 && c == '{') element_start = i;
        ++depth;
        break;
      case '}':
        --depth;
        if (depth == 1) {
          elements.push_back(json.substr(element_start,
                                         i - element_start + 1));
        }
        break;
      case ']':
        --depth;
        if (depth == 0) return elements;
        break;
      default: break;
    }
  }
  return std::nullopt;  // unterminated array
}

std::optional<Request> parse_request(const std::string& json) {
  if (json.empty() || json.front() != '{' || json.back() != '}') {
    return std::nullopt;
  }
  const auto op = json_string_field(json, "op");
  if (!op.has_value()) return std::nullopt;
  Request req;
  if (const auto id = json_string_field(json, "trace_id")) {
    // Truncate here, not at annotation time, so the echoed id and the
    // span's id can never disagree.
    req.trace_id = id->substr(0, kMaxTraceIdBytes);
  }
  if (*op == "ping") {
    req.op = RequestOp::kPing;
    return req;
  }
  if (*op == "stats") {
    req.op = RequestOp::kStats;
    return req;
  }
  if (*op == "metrics") {
    req.op = RequestOp::kMetrics;
    return req;
  }
  if (*op == "slowlog") {
    req.op = RequestOp::kSlowlog;
    return req;
  }
  if (*op == "predict") {
    req.op = RequestOp::kPredict;
    const auto q = parse_query(json);
    if (!q.has_value()) return std::nullopt;
    req.queries.push_back(*q);
    return req;
  }
  if (*op == "batch") {
    req.op = RequestOp::kBatch;
    const auto elements = split_json_array(json, "queries");
    if (!elements.has_value() || elements->empty()) return std::nullopt;
    for (const std::string& element : *elements) {
      const auto q = parse_query(element);
      if (!q.has_value()) return std::nullopt;
      req.queries.push_back(*q);
    }
    return req;
  }
  return std::nullopt;
}

std::string attach_trace_id(std::string json, const std::string& trace_id) {
  if (trace_id.empty() || json.empty() || json.back() != '}') return json;
  json.pop_back();
  json += ",\"trace_id\":\"";
  json += json_escape(trace_id);
  json += "\"}";
  return json;
}

std::string ping_request(const std::string& trace_id) {
  return attach_trace_id("{\"op\":\"ping\"}", trace_id);
}
std::string stats_request(const std::string& trace_id) {
  return attach_trace_id("{\"op\":\"stats\"}", trace_id);
}
std::string metrics_request(const std::string& trace_id) {
  return attach_trace_id("{\"op\":\"metrics\"}", trace_id);
}
std::string slowlog_request(const std::string& trace_id) {
  return attach_trace_id("{\"op\":\"slowlog\"}", trace_id);
}

std::string predict_request(const QueryKey& query,
                            const std::string& trace_id) {
  std::string out = "{\"op\":\"predict\",\"app\":\"" +
                    json_escape(query.application) + "\",\"config\":\"" +
                    json_escape(query.config) +
                    "\",\"ranks\":" + std::to_string(query.ranks) +
                    ",\"chain\":" + std::to_string(query.chain_length) + "}";
  return attach_trace_id(std::move(out), trace_id);
}

std::string batch_request(const std::vector<QueryKey>& queries,
                          const std::string& trace_id) {
  std::string out = "{\"op\":\"batch\",\"queries\":[";
  for (std::size_t i = 0; i < queries.size(); ++i) {
    if (i != 0) out += ',';
    out += query_json(queries[i]);
  }
  out += "]}";
  return attach_trace_id(std::move(out), trace_id);
}

std::string prediction_json(const Prediction& p) {
  std::string out = p.ok ? "{\"ok\":true" : "{\"ok\":false";
  if (!p.ok) append_string(out, "error", p.error);
  append_string(out, "app", p.key.application);
  append_string(out, "config", p.key.config);
  out += ",\"ranks\":" + std::to_string(p.key.ranks);
  out += ",\"chain\":" + std::to_string(p.key.chain_length);
  append_number(out, "coupling_s", p.coupling_s);
  append_number(out, "summation_s", p.summation_s);
  append_number(out, "actual_s", p.actual_s);
  append_number(out, "coupling_err", p.coupling_error);
  append_number(out, "summation_err", p.summation_error);
  if (!p.alpha_source.empty()) append_string(out, "alpha", p.alpha_source);
  if (!p.inputs_source.empty()) append_string(out, "inputs", p.inputs_source);
  if (!p.source.empty()) append_string(out, "source", p.source);
  if (!p.model_form.empty()) append_string(out, "model_form", p.model_form);
  if (p.donor_ranks > 0) {
    out += ",\"donor_ranks\":" + std::to_string(p.donor_ranks);
  }
  append_string(out, "cache", p.cache_hit ? "hit" : "miss");
  out += ",\"snapshot\":" + std::to_string(p.snapshot_version);
  out += '}';
  return out;
}

std::string batch_json(std::span<const Prediction> results) {
  std::string out = "{\"ok\":true,\"results\":[";
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (i != 0) out += ',';
    out += prediction_json(results[i]);
  }
  out += "]}";
  return out;
}

std::string error_json(const std::string& error, int code) {
  return "{\"ok\":false,\"error\":\"" + json_escape(error) +
         "\",\"code\":" + std::to_string(code) + "}";
}

std::optional<Prediction> parse_prediction(const std::string& json) {
  if (json.empty() || json.front() != '{') return std::nullopt;
  Prediction p;
  p.ok = json.find("\"ok\":true") != std::string::npos;
  if (const auto v = json_string_field(json, "error")) p.error = *v;
  if (const auto v = json_string_field(json, "app")) p.key.application = *v;
  if (const auto v = json_string_field(json, "config")) p.key.config = *v;
  if (const auto v = json_number_field(json, "ranks")) {
    p.key.ranks = static_cast<int>(*v);
  }
  if (const auto v = json_number_field(json, "chain")) {
    p.key.chain_length = static_cast<std::size_t>(*v);
  }
  if (const auto v = json_number_field(json, "coupling_s")) p.coupling_s = *v;
  if (const auto v = json_number_field(json, "summation_s")) {
    p.summation_s = *v;
  }
  if (const auto v = json_number_field(json, "actual_s")) p.actual_s = *v;
  if (const auto v = json_number_field(json, "coupling_err")) {
    p.coupling_error = *v;
  }
  if (const auto v = json_number_field(json, "summation_err")) {
    p.summation_error = *v;
  }
  if (const auto v = json_string_field(json, "alpha")) p.alpha_source = *v;
  if (const auto v = json_string_field(json, "inputs")) p.inputs_source = *v;
  if (const auto v = json_string_field(json, "source")) p.source = *v;
  if (const auto v = json_string_field(json, "model_form")) p.model_form = *v;
  if (const auto v = json_number_field(json, "donor_ranks")) {
    p.donor_ranks = static_cast<int>(*v);
  }
  if (const auto v = json_string_field(json, "cache")) {
    p.cache_hit = (*v == "hit");
  }
  if (const auto v = json_number_field(json, "snapshot")) {
    p.snapshot_version = static_cast<std::uint64_t>(*v);
  }
  return p;
}

}  // namespace kcoup::serve
