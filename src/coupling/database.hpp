#pragma once

#include <cstddef>
#include <iosfwd>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "coupling/analysis.hpp"

namespace kcoup::coupling {

/// Identifies one measured coupling value: which application, which
/// configuration (problem class / grid), how many processors, and which
/// cyclic chain of the main loop.
struct CouplingKey {
  std::string application;  ///< e.g. "BT"
  std::string config;       ///< e.g. "W" (problem class or grid label)
  int ranks = 1;
  std::size_t chain_length = 0;
  std::size_t chain_start = 0;

  [[nodiscard]] bool operator==(const CouplingKey&) const = default;
};

/// One stored measurement.
struct CouplingRecord {
  CouplingKey key;
  double chain_time = 0.0;    ///< P_S on the donor configuration
  double isolated_sum = 0.0;  ///< sum of P_k on the donor configuration

  /// C_S = P_S / sum P_k.  A record with no isolated time has no defined
  /// coupling; report NaN instead of dividing by zero.
  [[nodiscard]] double coupling() const {
    if (isolated_sum == 0.0) return std::numeric_limits<double>::quiet_NaN();
    return chain_time / isolated_sum;
  }
};

/// A persistent store of measured coupling values — the paper's stated
/// future work: "determining which coupling values must be obtained and
/// which values can be reused, thereby reducing the number of needed
/// experiments" (§6).
///
/// The reuse policy exploits the paper's empirical finding that coupling
/// values go through only a *finite number of transitions* as problem size
/// and processor count scale (§4.1.4): within a plateau, a coupling
/// measured at one configuration transfers to nearby ones.  Reusing a
/// donor's couplings requires only the N cheap isolated measurements at the
/// target configuration instead of N chain measurements per chain length.
class CouplingDatabase {
 public:
  /// Record every chain of one study.
  void record(const std::string& application, const std::string& config,
              int ranks, std::span<const ChainCoupling> chains);

  /// Record a single measurement.  Throws std::invalid_argument for
  /// non-finite or non-positive chain/isolated times: such a record can
  /// never yield a meaningful coupling value, and persisting it would
  /// corrupt every campaign that reuses the store.
  void record(CouplingRecord record);

  /// Bulk-install records that are already deduplicated (e.g. decoded from
  /// a packed snapshot that was itself built from this class).  Values are
  /// still validated like record(), but the per-record replace scan —
  /// quadratic over the whole store — is skipped.  Replaces the current
  /// contents.
  void adopt(std::vector<CouplingRecord> records);

  [[nodiscard]] std::size_t size() const { return records_.size(); }

  /// Exact lookup.
  [[nodiscard]] std::optional<CouplingRecord> find(const CouplingKey& key) const;

  /// Reuse lookup: the record for the same application/config/chain with
  /// the processor count nearest to `ranks` (log-scale distance; exact hits
  /// included).  Equidistant candidates resolve to the smaller rank count,
  /// independent of insertion order.  Returns nullopt if no candidate
  /// exists.
  [[nodiscard]] std::optional<CouplingRecord> find_nearest_ranks(
      const CouplingKey& key) const;

  /// find_nearest_ranks without the value copy: a pointer into the store,
  /// valid until the next mutation.  The hot query path uses this form.
  [[nodiscard]] const CouplingRecord* find_nearest_ranks_ref(
      const CouplingKey& key) const;

  /// Reuse lookup across configurations: the record for the same
  /// application/ranks/chain whose config label differs (e.g. reuse Class W
  /// couplings when predicting Class A).  Prefers `preferred_config` if
  /// present, otherwise any other config.
  [[nodiscard]] std::optional<CouplingRecord> find_other_config(
      const CouplingKey& key, const std::string& preferred_config) const;

  /// Assemble a full chain set for the target (application, config, ranks,
  /// chain_length) by reusing the nearest-ranks donor for each chain start.
  /// Returns an empty vector if any chain has no donor.
  [[nodiscard]] std::vector<ChainCoupling> reuse_chains_for(
      const std::string& application, const std::string& config, int ranks,
      std::size_t chain_length, std::size_t loop_size) const;

  /// reuse_chains_for into a caller-owned vector whose element capacity
  /// (members/label buffers) is reused across calls — the allocation-free
  /// form the query engine's per-thread scratch uses.  Returns false (and
  /// clears *out) if any chain has no donor.
  bool reuse_chains_into(const std::string& application,
                         const std::string& config, int ranks,
                         std::size_t chain_length, std::size_t loop_size,
                         std::vector<ChainCoupling>* out) const;

  /// CSV round-trip (header + one record per line).
  void save_csv(std::ostream& out) const;
  /// Atomic save to a file: writes `path + ".tmp"` then renames it over
  /// `path`, so a crash mid-write never leaves a truncated database behind.
  /// Throws std::runtime_error when the file cannot be written or renamed.
  void save_csv_file(const std::string& path) const;
  /// Appends records from CSV; throws std::runtime_error on malformed input.
  void load_csv(std::istream& in);
  /// Appends records from a CSV file.  Errors (missing file, malformed
  /// line, bad number) name the offending path — and, for content errors,
  /// the line number from load_csv — so an operator with many stores knows
  /// which file to fix.
  void load_csv_file(const std::string& path);

  [[nodiscard]] const std::vector<CouplingRecord>& records() const {
    return records_;
  }

 private:
  std::vector<CouplingRecord> records_;
};

/// Coupling prediction using reused chain couplings (from a donor
/// configuration) with freshly measured isolated means at the target:
/// the paper's reduced-experiment workflow.
[[nodiscard]] double reuse_prediction(const PredictionInputs& in,
                                      std::span<const ChainCoupling> donor);

}  // namespace kcoup::coupling
