#include "coupling/parallel_measurement.hpp"

#include <stdexcept>

#include "trace/stats.hpp"

namespace kcoup::coupling {
namespace {

/// Barrier-bracketed timing of `passes` executions of `body`: returns the
/// global (max-over-ranks) seconds per pass.  Identical on all ranks
/// because barrier exit times are global.
double timed_passes(simmpi::Comm& comm, const std::function<void()>& reset,
                    const std::function<void()>& body, int warmup,
                    int passes) {
  reset();
  comm.barrier();
  for (int w = 0; w < warmup; ++w) body();
  comm.barrier();
  const double t0 = comm.now();
  for (int p = 0; p < passes; ++p) body();
  comm.barrier();
  const double t1 = comm.now();
  return (t1 - t0) / static_cast<double>(passes);
}

}  // namespace

ParallelStudyResult run_parallel_study(simmpi::Comm& comm,
                                       const ParallelLoopApp& app,
                                       const StudyOptions& options) {
  const std::size_t n = app.loop.size();
  if (n == 0) {
    throw std::invalid_argument("run_parallel_study: empty loop");
  }
  const MeasurementOptions& m = options.measurement;
  ParallelStudyResult result;

  auto run_chain_once = [&](std::size_t start, std::size_t length) {
    for (std::size_t i = 0; i < length; ++i) {
      app.loop[(start + i) % n].body();
    }
  };

  // Isolated means (P_k).
  for (std::size_t k = 0; k < n; ++k) {
    result.isolated_means.push_back(timed_passes(
        comm, app.reset, [&] { run_chain_once(k, 1); }, m.warmup,
        m.repetitions));
  }

  // Prologue / epilogue one-shot times.
  if (!app.prologue.empty()) {
    result.prologue_s = timed_passes(
        comm, app.reset,
        [&] {
          for (const ParallelKernel& k : app.prologue) k.body();
        },
        0, 1);
  }

  auto run_full = [&] {
    for (const ParallelKernel& k : app.prologue) k.body();
    for (int it = 0; it < app.iterations; ++it) run_chain_once(0, n);
    for (const ParallelKernel& k : app.epilogue) k.body();
  };
  result.actual_s = timed_passes(comm, app.reset, run_full, 0, 1);

  if (!app.epilogue.empty()) {
    // Epilogue sees end-of-run state: run the application, then time it.
    app.reset();
    comm.barrier();
    for (const ParallelKernel& k : app.prologue) k.body();
    for (int it = 0; it < app.iterations; ++it) run_chain_once(0, n);
    comm.barrier();
    const double t0 = comm.now();
    for (const ParallelKernel& k : app.epilogue) k.body();
    comm.barrier();
    result.epilogue_s = comm.now() - t0;
  }

  PredictionInputs inputs;
  inputs.isolated_means = result.isolated_means;
  inputs.prologue_s = result.prologue_s;
  inputs.epilogue_s = result.epilogue_s;
  inputs.iterations = app.iterations;
  result.summation_s = summation_prediction(inputs);
  result.summation_error =
      trace::relative_error(result.summation_s, result.actual_s);

  for (std::size_t q : options.chain_lengths) {
    if (q == 0 || q > n) {
      throw std::invalid_argument(
          "run_parallel_study: chain length must be in [1, N]");
    }
    ChainLengthResult cl;
    cl.length = q;
    for (std::size_t start = 0; start < n; ++start) {
      ChainCoupling c;
      c.start = start;
      c.length = q;
      for (std::size_t i = 0; i < q; ++i) {
        const std::size_t k = (start + i) % n;
        c.members.push_back(k);
        c.isolated_sum += result.isolated_means[k];
        if (!c.label.empty()) c.label += ", ";
        c.label += app.loop[k].name;
      }
      c.chain_time = timed_passes(
          comm, app.reset, [&] { run_chain_once(start, q); }, m.warmup,
          m.repetitions);
      cl.chains.push_back(std::move(c));
    }
    cl.coefficients = coupling_coefficients(n, cl.chains);
    cl.prediction_s = coupling_prediction(inputs, cl.chains);
    cl.relative_error =
        trace::relative_error(cl.prediction_s, result.actual_s);
    result.by_length.push_back(std::move(cl));
  }
  return result;
}

}  // namespace kcoup::coupling
