#pragma once

#include <utility>

#include "coupling/kernel.hpp"
#include "machine/machine.hpp"

namespace kcoup::coupling {

/// A Kernel whose invocation cost comes from pricing a structural
/// WorkProfile on a shared machine::Machine.  Because the machine carries
/// cache and skew state across invocations, the cost of a ModeledKernel
/// depends on what ran before it — which is exactly the interaction the
/// coupling parameter quantifies.
class ModeledKernel final : public Kernel {
 public:
  ModeledKernel(machine::Machine* machine, machine::WorkProfile profile)
      : machine_(machine), profile_(std::move(profile)) {}

  [[nodiscard]] const std::string& name() const override {
    return profile_.label;
  }

  double invoke() override { return machine_->execute(profile_).total(); }

  /// Detailed pricing of one invocation in the current machine state
  /// (advances state exactly like invoke()).
  machine::CostBreakdown invoke_detailed() {
    return machine_->execute(profile_);
  }

  [[nodiscard]] const machine::WorkProfile& profile() const {
    return profile_;
  }
  [[nodiscard]] machine::Machine& machine() { return *machine_; }

 private:
  machine::Machine* machine_;
  machine::WorkProfile profile_;
};

}  // namespace kcoup::coupling
