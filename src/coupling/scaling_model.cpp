#include "coupling/scaling_model.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <utility>

namespace kcoup::coupling {

ScalingBasis ScalingBasis::npb_default() {
  ScalingBasis b;
  b.names = {"n^3/P", "n^2/sqrt(P)", "log2(P)", "1"};
  b.terms = {
      [](double n, double p) { return n * n * n / p; },
      [](double n, double p) { return n * n / std::sqrt(p); },
      [](double, double p) { return p > 1.0 ? std::log2(p) : 0.0; },
      [](double, double) { return 1.0; },
  };
  return b;
}

bool solve_dense(std::vector<double>& a, std::vector<double>& b,
                 std::size_t k) {
  if (a.size() != k * k || b.size() != k) return false;
  for (std::size_t col = 0; col < k; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    double best = std::fabs(a[col * k + col]);
    for (std::size_t r = col + 1; r < k; ++r) {
      const double v = std::fabs(a[r * k + col]);
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-300) return false;
    if (pivot != col) {
      for (std::size_t c = 0; c < k; ++c) {
        std::swap(a[col * k + c], a[pivot * k + c]);
      }
      std::swap(b[col], b[pivot]);
    }
    const double inv = 1.0 / a[col * k + col];
    for (std::size_t r = col + 1; r < k; ++r) {
      const double f = a[r * k + col] * inv;
      if (f == 0.0) continue;
      for (std::size_t c = col; c < k; ++c) a[r * k + c] -= f * a[col * k + c];
      b[r] -= f * b[col];
    }
  }
  for (std::size_t col = k; col-- > 0;) {
    double s = b[col];
    for (std::size_t c = col + 1; c < k; ++c) s -= a[col * k + c] * b[c];
    b[col] = s / a[col * k + col];
  }
  return true;
}

KernelScalingModel KernelScalingModel::fit(
    ScalingBasis basis, std::span<const ScalingSample> samples) {
  const std::size_t k = basis.size();
  if (k == 0) throw std::invalid_argument("scaling fit: empty basis");
  if (samples.size() < k) {
    throw std::invalid_argument(
        "scaling fit: need at least as many samples as basis terms");
  }

  // Weighted normal equations (A^T W A) x = A^T W b with weights 1/b^2:
  // minimises the *relative* error, so microsecond kernels (Add) are fitted
  // as carefully as second-scale sweeps.
  std::vector<double> ata(k * k, 0.0);
  std::vector<double> atb(k, 0.0);
  for (const ScalingSample& s : samples) {
    const double w =
        s.seconds != 0.0 ? 1.0 / (s.seconds * s.seconds) : 1.0;
    std::vector<double> row(k);
    for (std::size_t j = 0; j < k; ++j) row[j] = basis.terms[j](s.n, s.p);
    for (std::size_t i = 0; i < k; ++i) {
      atb[i] += w * row[i] * s.seconds;
      for (std::size_t j = 0; j < k; ++j) {
        ata[i * k + j] += w * row[i] * row[j];
      }
    }
  }
  if (!solve_dense(ata, atb, k)) {
    throw std::invalid_argument(
        "scaling fit: singular normal equations (degenerate samples)");
  }

  KernelScalingModel m;
  m.basis_ = std::move(basis);
  m.coefficients_ = std::move(atb);

  double err2 = 0.0;
  for (const ScalingSample& s : samples) {
    const double pred = m.evaluate(s.n, s.p);
    if (s.seconds != 0.0) {
      const double rel = (pred - s.seconds) / s.seconds;
      err2 += rel * rel;
    }
  }
  m.fit_error_ = std::sqrt(err2 / static_cast<double>(samples.size()));
  return m;
}

KernelScalingModel KernelScalingModel::fit_or_constant(
    ScalingBasis basis, std::span<const ScalingSample> samples) {
  if (samples.empty()) {
    throw std::invalid_argument("scaling fit: no samples");
  }
  if (samples.size() >= basis.size()) {
    try {
      KernelScalingModel m = fit(basis, samples);
      bool finite = true;
      for (const double c : m.coefficients()) {
        if (!std::isfinite(c)) finite = false;
      }
      if (finite) return m;
    } catch (const std::invalid_argument&) {
      // Singular normal equations: fall through to the constant model.
    }
  }
  std::size_t constant_index = basis.size();
  for (std::size_t j = 0; j < basis.names.size(); ++j) {
    if (basis.names[j] == "1") constant_index = j;
  }
  if (constant_index == basis.size()) {
    throw std::invalid_argument(
        "scaling fit: basis has no constant term for the degenerate "
        "fallback");
  }
  // Weighted mean with the same 1/y^2 weights fit() uses — the exact
  // least-squares solution restricted to the constant column.
  double sw = 0.0;
  double swy = 0.0;
  for (const ScalingSample& s : samples) {
    const double w = s.seconds != 0.0 ? 1.0 / (s.seconds * s.seconds) : 1.0;
    sw += w;
    swy += w * s.seconds;
  }
  KernelScalingModel m;
  m.basis_ = std::move(basis);
  m.coefficients_.assign(m.basis_.size(), 0.0);
  m.coefficients_[constant_index] = swy / sw;
  m.degenerate_ = true;
  double err2 = 0.0;
  for (const ScalingSample& s : samples) {
    const double pred = m.coefficients_[constant_index];
    const double rel =
        s.seconds != 0.0 ? (pred - s.seconds) / s.seconds : pred;
    err2 += rel * rel;
  }
  m.fit_error_ = std::sqrt(err2 / static_cast<double>(samples.size()));
  return m;
}

KernelScalingModel KernelScalingModel::from_parts(
    ScalingBasis basis, std::vector<double> coefficients,
    double fit_rms_relative_error, bool degenerate) {
  if (basis.size() != coefficients.size()) {
    throw std::invalid_argument(
        "scaling model from_parts: coefficient count does not match basis");
  }
  KernelScalingModel m;
  m.basis_ = std::move(basis);
  m.coefficients_ = std::move(coefficients);
  m.fit_error_ = fit_rms_relative_error;
  m.degenerate_ = degenerate;
  return m;
}

double KernelScalingModel::evaluate(double n, double p) const {
  double t = 0.0;
  for (std::size_t j = 0; j < coefficients_.size(); ++j) {
    t += coefficients_[j] * basis_.terms[j](n, p);
  }
  return t;
}

std::string KernelScalingModel::to_string() const {
  std::string s;
  for (std::size_t j = 0; j < coefficients_.size(); ++j) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%s%.3e * %s", j ? " + " : "",
                  coefficients_[j], basis_.names[j].c_str());
    s += buf;
  }
  return s;
}

}  // namespace kcoup::coupling
