#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "coupling/measurement.hpp"

namespace kcoup::coupling {

/// Coupling measurement of one cyclic chain of adjacent loop kernels,
/// C_S = P_S / sum_{k in S} P_k  (paper eq. 2; eq. 1 is length == 2).
struct ChainCoupling {
  std::size_t start = 0;   ///< loop index of the first kernel in the chain
  std::size_t length = 0;  ///< number of kernels in the chain
  std::vector<std::size_t> members;  ///< loop indices, in chain order
  std::string label;                 ///< "Copy_Faces, X_Solve, ..."
  double chain_time = 0.0;           ///< P_S: one chain traversal, seconds
  double isolated_sum = 0.0;         ///< sum of the members' isolated P_k

  /// The coupling value C_S.  < 1 constructive, > 1 destructive, == 1 none.
  /// A chain whose members have no isolated time has no defined coupling;
  /// report NaN instead of dividing by zero (mirrors
  /// CouplingRecord::coupling()).
  [[nodiscard]] double coupling() const {
    if (isolated_sum == 0.0) return std::numeric_limits<double>::quiet_NaN();
    return chain_time / isolated_sum;
  }

  [[nodiscard]] bool contains(std::size_t kernel_index) const;
};

/// Measure the N cyclic chains of `length` adjacent kernels of the
/// application's main loop (one chain starting at each loop position).
/// `isolated_means` must be the harness's all_isolated_means().
[[nodiscard]] std::vector<ChainCoupling> measure_chains(
    const MeasurementHarness& harness, std::size_t length,
    std::span<const double> isolated_means);

/// The paper's composition algebra (§3): the coefficient of kernel k is the
/// average of the coupling values of every measured chain containing k,
/// weighted by each chain's measured time:
///
///   alpha_k = sum_{S : k in S} C_S * P_S  /  sum_{S : k in S} P_S
///
/// For length-2 chains over four kernels this reduces exactly to the
/// paper's explicit alpha..delta expressions (verified by unit test).
[[nodiscard]] std::vector<double> coupling_coefficients(
    std::size_t kernel_count, std::span<const ChainCoupling> chains);

/// Ablation variant: plain (unweighted) average of the coupling values of
/// the chains containing each kernel.  The paper motivates the time
/// weighting with "a large coupling value for a pair of kernels that
/// attribute very little to the execution time" (§3); this variant lets the
/// ablation bench quantify how much the weighting matters.
[[nodiscard]] std::vector<double> coupling_coefficients_unweighted(
    std::size_t kernel_count, std::span<const ChainCoupling> chains);

/// Inputs shared by the predictors.  `isolated_means` are the per-invocation
/// kernel models E_k / iterations; following the paper's case studies, the
/// per-kernel "analytical model" is the measured isolated mean scaled by the
/// kernel's invocation count.
struct PredictionInputs {
  std::vector<double> isolated_means;  ///< per loop kernel, seconds
  double prologue_s = 0.0;             ///< one-shot kernels before the loop
  double epilogue_s = 0.0;             ///< one-shot kernels after the loop
  int iterations = 1;
};

/// The traditional baseline (§4.1): T = Tinit + I * sum_k T_k + Tfinal.
[[nodiscard]] double summation_prediction(const PredictionInputs& in);

/// The paper's coupling predictor: T = Tinit + I * sum_k alpha_k T_k +
/// Tfinal, with alpha from coupling_coefficients().
[[nodiscard]] double coupling_prediction(const PredictionInputs& in,
                                         std::span<const ChainCoupling> chains);

/// Coupling predictor from precomputed coefficients.  coupling_prediction()
/// is alpha_prediction() over coupling_coefficients() with the same
/// summation order, so evaluating cached coefficients (the prediction
/// service's snapshot stores them) is bit-identical to recomputing them
/// from the chains.  `alpha` must have one entry per loop kernel.
[[nodiscard]] double alpha_prediction(const PredictionInputs& in,
                                      std::span<const double> alpha);

}  // namespace kcoup::coupling
