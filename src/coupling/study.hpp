#pragma once

#include <cstddef>
#include <vector>

#include "coupling/analysis.hpp"
#include "coupling/kernel.hpp"
#include "coupling/measurement.hpp"

namespace kcoup::coupling {

/// One end-to-end experiment in the style of the paper's case studies:
/// measure the application, measure every kernel in isolation, measure the
/// cyclic chains for each requested chain length, and form the summation and
/// coupling predictions.
struct StudyOptions {
  std::vector<std::size_t> chain_lengths;  ///< e.g. {2, 3, 4}
  MeasurementOptions measurement;
};

struct ChainLengthResult {
  std::size_t length = 0;
  std::vector<ChainCoupling> chains;   ///< the paper's "Coupling Value" rows
  std::vector<double> coefficients;    ///< alpha per loop kernel
  double prediction_s = 0.0;
  double relative_error = 0.0;         ///< vs the study's actual_s
};

struct StudyResult {
  double actual_s = 0.0;
  std::vector<double> isolated_means;  ///< per loop kernel
  double prologue_s = 0.0;
  double epilogue_s = 0.0;
  double summation_s = 0.0;
  double summation_error = 0.0;
  std::vector<ChainLengthResult> by_length;

  /// The chain-length result with the smallest relative error, or nullptr.
  [[nodiscard]] const ChainLengthResult* best() const;
};

/// Run the full study.  Deterministic for modeled kernels.
[[nodiscard]] StudyResult run_study(const LoopApplication& app,
                                    const StudyOptions& options);

}  // namespace kcoup::coupling
