#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

namespace kcoup::coupling {

/// The composition algebra of the paper (§3) assumes per-kernel analytical
/// models exist ("assume that we have manually analyzed these two functions
/// such that we have modelA and modelB").  This module supplies such models
/// as linear combinations of scaling basis terms in the problem size n and
/// the processor count P,
///
///   E(n, P) = sum_j c_j * phi_j(n, P),
///
/// with coefficients fitted by linear least squares from a handful of
/// measured configurations.  Combined with reused coupling values
/// (database.hpp) this closes the loop the paper sketches: predict a
/// configuration that was never run at all.
struct ScalingBasis {
  std::vector<std::string> names;
  std::vector<std::function<double(double n, double p)>> terms;

  [[nodiscard]] std::size_t size() const { return terms.size(); }

  /// Basis suited to the NPB kernels: volume work n^3/P, distributed-line
  /// surface work n^2/sqrt(P), per-message latency count log2(P), and a
  /// constant.
  [[nodiscard]] static ScalingBasis npb_default();
};

/// One measured configuration.
struct ScalingSample {
  double n = 0;        ///< grid extent
  double p = 1;        ///< processor count
  double seconds = 0;  ///< measured per-invocation kernel time
};

/// A fitted per-kernel model.
class KernelScalingModel {
 public:
  /// Least-squares fit of `basis` to `samples` (requires at least as many
  /// samples as basis terms; throws std::invalid_argument otherwise, or if
  /// the normal equations are singular — e.g. all samples identical).
  [[nodiscard]] static KernelScalingModel fit(
      ScalingBasis basis, std::span<const ScalingSample> samples);

  /// fit(), degrading gracefully: degenerate inputs — too few samples,
  /// duplicate (n, P) points making the normal equations singular, or a
  /// solve that produces non-finite coefficients — yield a *flagged
  /// constant model* (the weighted mean on the basis's "1" term, all other
  /// coefficients zero, degenerate() == true) instead of throwing.  NaN
  /// coefficients can never be silently baked into a snapshot.  Throws
  /// std::invalid_argument only when `samples` is empty or the basis has
  /// no "1" term to carry the constant.
  [[nodiscard]] static KernelScalingModel fit_or_constant(
      ScalingBasis basis, std::span<const ScalingSample> samples);

  /// Reassemble a previously fitted model from its serialized parts (the
  /// packed-snapshot loader stores coefficients, not samples — refitting
  /// would need the original measurements).  Throws std::invalid_argument
  /// when the coefficient count does not match the basis size.
  [[nodiscard]] static KernelScalingModel from_parts(
      ScalingBasis basis, std::vector<double> coefficients,
      double fit_rms_relative_error, bool degenerate = false);

  [[nodiscard]] double evaluate(double n, double p) const;

  [[nodiscard]] const std::vector<double>& coefficients() const {
    return coefficients_;
  }
  /// Root-mean-square relative error of the fit over its own samples.
  [[nodiscard]] double fit_rms_relative_error() const { return fit_error_; }
  [[nodiscard]] const ScalingBasis& basis() const { return basis_; }
  /// True when fit_or_constant() fell back to the flagged constant model —
  /// the prediction carries no scaling information, only the sample mean.
  [[nodiscard]] bool degenerate() const { return degenerate_; }

  /// Human-readable "c0 * n^3/P + c1 * ..." form for reports.
  [[nodiscard]] std::string to_string() const;

 private:
  ScalingBasis basis_;
  std::vector<double> coefficients_;
  double fit_error_ = 0.0;
  bool degenerate_ = false;
};

/// Solve the dense linear system A x = b (row-major, k x k) with partial
/// pivoting.  Exposed for tests; used by the least-squares fit.  Returns
/// false when A is singular.
[[nodiscard]] bool solve_dense(std::vector<double>& a, std::vector<double>& b,
                               std::size_t k);

}  // namespace kcoup::coupling
