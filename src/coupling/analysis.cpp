#include "coupling/analysis.hpp"

#include <algorithm>
#include <stdexcept>

namespace kcoup::coupling {

bool ChainCoupling::contains(std::size_t kernel_index) const {
  return std::find(members.begin(), members.end(), kernel_index) !=
         members.end();
}

std::vector<ChainCoupling> measure_chains(
    const MeasurementHarness& harness, std::size_t length,
    std::span<const double> isolated_means) {
  const LoopApplication& app = harness.app();
  const std::size_t n = app.loop_size();
  if (isolated_means.size() != n) {
    throw std::invalid_argument(
        "measure_chains: isolated_means size must equal loop size");
  }
  if (length == 0 || length > n) {
    throw std::invalid_argument("measure_chains: length must be in [1, N]");
  }

  std::vector<ChainCoupling> chains;
  chains.reserve(n);
  for (std::size_t start = 0; start < n; ++start) {
    ChainCoupling c;
    c.start = start;
    c.length = length;
    for (std::size_t i = 0; i < length; ++i) {
      const std::size_t k = (start + i) % n;
      c.members.push_back(k);
      c.isolated_sum += isolated_means[k];
      if (!c.label.empty()) c.label += ", ";
      c.label += app.loop[k]->name();
    }
    c.chain_time = harness.chain_mean(start, length);
    chains.push_back(std::move(c));
  }
  return chains;
}

std::vector<double> coupling_coefficients(
    std::size_t kernel_count, std::span<const ChainCoupling> chains) {
  std::vector<double> alpha(kernel_count, 1.0);
  for (std::size_t k = 0; k < kernel_count; ++k) {
    double weighted = 0.0;
    double weight = 0.0;
    for (const ChainCoupling& c : chains) {
      if (!c.contains(k)) continue;
      weighted += c.coupling() * c.chain_time;
      weight += c.chain_time;
    }
    if (weight > 0.0) alpha[k] = weighted / weight;
  }
  return alpha;
}

std::vector<double> coupling_coefficients_unweighted(
    std::size_t kernel_count, std::span<const ChainCoupling> chains) {
  std::vector<double> alpha(kernel_count, 1.0);
  for (std::size_t k = 0; k < kernel_count; ++k) {
    double sum = 0.0;
    std::size_t count = 0;
    for (const ChainCoupling& c : chains) {
      if (!c.contains(k)) continue;
      sum += c.coupling();
      ++count;
    }
    if (count > 0) alpha[k] = sum / static_cast<double>(count);
  }
  return alpha;
}

double summation_prediction(const PredictionInputs& in) {
  double loop = 0.0;
  for (double t : in.isolated_means) loop += t;
  return in.prologue_s + static_cast<double>(in.iterations) * loop +
         in.epilogue_s;
}

double coupling_prediction(const PredictionInputs& in,
                           std::span<const ChainCoupling> chains) {
  const std::vector<double> alpha =
      coupling_coefficients(in.isolated_means.size(), chains);
  return alpha_prediction(in, alpha);
}

double alpha_prediction(const PredictionInputs& in,
                        std::span<const double> alpha) {
  if (alpha.size() != in.isolated_means.size()) {
    throw std::invalid_argument(
        "alpha_prediction: one coefficient per loop kernel required");
  }
  double loop = 0.0;
  for (std::size_t k = 0; k < in.isolated_means.size(); ++k) {
    loop += alpha[k] * in.isolated_means[k];
  }
  return in.prologue_s + static_cast<double>(in.iterations) * loop +
         in.epilogue_s;
}

}  // namespace kcoup::coupling
