#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "coupling/kernel.hpp"
#include "trace/stats.hpp"

namespace kcoup::coupling {

/// Measurement protocol parameters.  The defaults follow the paper: "The
/// average execution time for each kernel is obtained by running the kernel
/// 50 times" (§4.1), preceded by a few warm-up passes so the loop reflects
/// the steady state ("placing a given kernel or pair of kernels into a loop,
/// such that the loop dominates the application execution time", §2).
struct MeasurementOptions {
  int repetitions = 50;
  int warmup = 3;
  /// Samples per epilogue kernel.  Each sample costs a full application run
  /// (prologue + iterations x main loop), so the default is deliberately
  /// smaller than `repetitions`.
  int epilogue_repetitions = 3;
};

/// Performs the paper's three kinds of measurements on a LoopApplication:
///
///  * P_k   — isolated_mean(): kernel k alone in a loop,
///  * P_S   — chain_mean(): a chain of adjacent kernels in a loop,
///  * T     — actual_total(): the full application, prologue + iterations x
///            main loop + epilogue.
///
/// Every measurement starts from a reset environment and discards warm-up
/// passes, so the reported mean is the steady-state per-invocation (or
/// per-chain-traversal) time.  The surrounding-application subtraction the
/// paper performs is exact here because the harness times only the kernels
/// themselves.
class MeasurementHarness {
 public:
  MeasurementHarness(const LoopApplication* app, MeasurementOptions options)
      : app_(app), options_(options) {}

  /// Steady-state mean seconds of one invocation of loop kernel `index`.
  [[nodiscard]] double isolated_mean(std::size_t index) const;

  /// Steady-state mean seconds of one traversal of the cyclic chain of
  /// `length` kernels starting at loop position `start` (wraps around).
  [[nodiscard]] double chain_mean(std::size_t start, std::size_t length) const;

  /// Full sample statistics behind chain_mean()/prologue_mean()/
  /// epilogue_mean().  The campaign executor uses the spread to decide
  /// whether a measurement needs to be retried.
  [[nodiscard]] trace::RunningStats chain_stats(std::size_t start,
                                                std::size_t length) const;
  [[nodiscard]] trace::RunningStats prologue_stats(std::size_t index) const;
  [[nodiscard]] trace::RunningStats epilogue_stats(std::size_t index) const;

  /// Isolated means for every loop kernel, in loop order.
  [[nodiscard]] std::vector<double> all_isolated_means() const;

  /// Mean seconds of one execution of a prologue/epilogue kernel, measured
  /// in application position (prologue: after reset; epilogue: after the
  /// full application body has run).
  [[nodiscard]] double prologue_mean(std::size_t index) const;
  [[nodiscard]] double epilogue_mean(std::size_t index) const;

  /// Total seconds of one full application run (the paper's "Actual").
  [[nodiscard]] double actual_total() const;

  [[nodiscard]] const LoopApplication& app() const { return *app_; }
  [[nodiscard]] const MeasurementOptions& options() const { return options_; }

 private:
  const LoopApplication* app_;
  MeasurementOptions options_;
};

}  // namespace kcoup::coupling
