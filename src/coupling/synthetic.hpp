#pragma once

#include <memory>

#include "coupling/modeled_app.hpp"
#include "machine/config.hpp"

namespace kcoup::coupling {

/// Workload generator: random modeled applications for robustness studies
/// of the coupling methodology beyond the three NPB case studies.
///
/// A generated application is a cyclic loop of kernels over a shared pool
/// of data regions.  Each kernel reads a few regions (possibly annotated as
/// pipeline-fresh), streams scratch, writes an output region that a later
/// kernel reads (so cross-kernel data-flow exists by construction), may
/// message neighbours, and may synchronise.  Everything is derived
/// deterministically from `seed`.
struct SyntheticAppSpec {
  std::size_t kernels = 4;       ///< loop length (>= 2)
  std::size_t regions = 6;       ///< shared region pool (>= kernels)
  std::size_t min_region_bytes = 16 * 1024;
  std::size_t max_region_bytes = 4 * 1024 * 1024;
  double min_flops = 1e5;        ///< per kernel invocation
  double max_flops = 5e7;
  double fresh_probability = 0.6;  ///< chance an input is pipeline-fresh
  double sync_probability = 0.4;   ///< chance a kernel synchronises
  double message_probability = 0.5;
  int ranks = 4;
  int iterations = 100;
  /// Plane-pipelining granularity of the generated kernels (WorkProfile::
  /// pipeline_stages); finer stages let adjacent kernels hand data off
  /// through L1.
  std::size_t pipeline_stages = 32;
  unsigned seed = 1;
};

/// Build the application on a copy of `machine_config` (ranks overridden
/// from the spec).  Deterministic in (spec, machine_config).
[[nodiscard]] std::unique_ptr<ModeledApp> make_synthetic_app(
    const SyntheticAppSpec& spec, machine::MachineConfig machine_config);

}  // namespace kcoup::coupling
