#include "coupling/measurement.hpp"

#include <cassert>
#include <stdexcept>

#include "trace/stats.hpp"

namespace kcoup::coupling {

double MeasurementHarness::isolated_mean(std::size_t index) const {
  return chain_mean(index, 1);
}

double MeasurementHarness::chain_mean(std::size_t start,
                                      std::size_t length) const {
  return chain_stats(start, length).mean();
}

trace::RunningStats MeasurementHarness::chain_stats(std::size_t start,
                                                    std::size_t length) const {
  const std::size_t n = app_->loop_size();
  if (n == 0) throw std::invalid_argument("chain_mean: empty loop");
  if (length == 0 || length > n) {
    throw std::invalid_argument("chain_mean: chain length must be in [1, N]");
  }
  if (start >= n) throw std::invalid_argument("chain_mean: start out of range");

  app_->reset();
  auto traverse_once = [&]() {
    double t = 0.0;
    for (std::size_t i = 0; i < length; ++i) {
      t += app_->loop[(start + i) % n]->invoke();
    }
    return t;
  };
  for (int w = 0; w < options_.warmup; ++w) traverse_once();
  trace::RunningStats stats;
  for (int r = 0; r < options_.repetitions; ++r) stats.add(traverse_once());
  return stats;
}

std::vector<double> MeasurementHarness::all_isolated_means() const {
  std::vector<double> means;
  means.reserve(app_->loop_size());
  for (std::size_t k = 0; k < app_->loop_size(); ++k) {
    means.push_back(isolated_mean(k));
  }
  return means;
}

double MeasurementHarness::prologue_mean(std::size_t index) const {
  return prologue_stats(index).mean();
}

trace::RunningStats MeasurementHarness::prologue_stats(
    std::size_t index) const {
  assert(index < app_->prologue.size());
  // Prologue kernels run once per application start; measure them in that
  // position (after reset) and average over repeated application starts.
  trace::RunningStats stats;
  for (int r = 0; r < options_.repetitions; ++r) {
    app_->reset();
    double t = 0.0;
    for (std::size_t i = 0; i <= index; ++i) {
      const double dt = app_->prologue[i]->invoke();
      if (i == index) t = dt;
    }
    stats.add(t);
  }
  return stats;
}

double MeasurementHarness::epilogue_mean(std::size_t index) const {
  return epilogue_stats(index).mean();
}

trace::RunningStats MeasurementHarness::epilogue_stats(
    std::size_t index) const {
  assert(index < app_->epilogue.size());
  // Epilogue kernels see end-of-run state; one application run per sample is
  // expensive, so they get their own (smaller) repetition budget.
  trace::RunningStats stats;
  for (int r = 0; r < options_.epilogue_repetitions; ++r) {
    app_->reset();
    for (Kernel* k : app_->prologue) k->invoke();
    for (int it = 0; it < app_->iterations; ++it) {
      for (Kernel* k : app_->loop) k->invoke();
    }
    double t = 0.0;
    for (std::size_t i = 0; i <= index; ++i) {
      const double dt = app_->epilogue[i]->invoke();
      if (i == index) t = dt;
    }
    stats.add(t);
  }
  return stats;
}

double MeasurementHarness::actual_total() const {
  app_->reset();
  double total = 0.0;
  for (Kernel* k : app_->prologue) total += k->invoke();
  for (int it = 0; it < app_->iterations; ++it) {
    for (Kernel* k : app_->loop) total += k->invoke();
  }
  for (Kernel* k : app_->epilogue) total += k->invoke();
  return total;
}

}  // namespace kcoup::coupling
