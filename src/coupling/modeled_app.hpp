#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "coupling/kernel.hpp"
#include "coupling/modeled_kernel.hpp"
#include "machine/machine.hpp"

namespace kcoup::coupling {

/// Owns a Machine, a set of ModeledKernels and the LoopApplication wiring —
/// the scaffolding shared by the BT/SP/LU work models.  The application's
/// reset() cold-starts the machine, which is what makes every measurement
/// independent.
class ModeledApp {
 public:
  ModeledApp(std::string name, machine::MachineConfig config, int iterations)
      : machine_(std::move(config)) {
    app_.name = std::move(name);
    app_.iterations = iterations;
    app_.reset = [this] { machine_.reset_state(); };
  }

  ModeledApp(const ModeledApp&) = delete;
  ModeledApp& operator=(const ModeledApp&) = delete;

  [[nodiscard]] machine::Machine& machine() { return machine_; }
  [[nodiscard]] const machine::Machine& machine() const { return machine_; }

  machine::RegionId region(std::string name, std::size_t bytes) {
    return machine_.register_region(std::move(name), bytes);
  }

  ModeledKernel* add_loop_kernel(machine::WorkProfile profile) {
    return add(app_.loop, std::move(profile));
  }
  ModeledKernel* add_prologue(machine::WorkProfile profile) {
    return add(app_.prologue, std::move(profile));
  }
  ModeledKernel* add_epilogue(machine::WorkProfile profile) {
    return add(app_.epilogue, std::move(profile));
  }

  [[nodiscard]] LoopApplication& app() { return app_; }
  [[nodiscard]] const LoopApplication& app() const { return app_; }

 private:
  ModeledKernel* add(std::vector<Kernel*>& where,
                               machine::WorkProfile profile) {
    kernels_.push_back(
        std::make_unique<ModeledKernel>(&machine_, std::move(profile)));
    ModeledKernel* k = kernels_.back().get();
    where.push_back(k);
    return k;
  }

  machine::Machine machine_;
  std::vector<std::unique_ptr<ModeledKernel>> kernels_;
  LoopApplication app_;
};

}  // namespace kcoup::coupling
