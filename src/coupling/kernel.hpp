#pragma once

#include <functional>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace kcoup::coupling {

/// A kernel in the paper's sense: "a unit of computation that denotes a
/// logical entity within the larger context of an application" (§2) — a
/// loop, procedure, or file, at whatever granularity the analyst chose.
///
/// Invoking a kernel performs one execution and returns its cost in seconds.
/// Implementations may be *modeled* (a WorkProfile priced by machine::Machine
/// with persistent cache state, so invocation order matters — that is the
/// coupling phenomenon) or *measured* (real code timed with a Stopwatch).
class Kernel {
 public:
  virtual ~Kernel() = default;

  [[nodiscard]] virtual const std::string& name() const = 0;

  /// Execute once; returns the invocation's execution time in seconds.
  virtual double invoke() = 0;
};

/// Adapter: build a Kernel from a callable returning seconds.  Convenient in
/// tests and in the quickstart example.
class CallableKernel final : public Kernel {
 public:
  CallableKernel(std::string name, std::function<double()> fn)
      : name_(std::move(name)), fn_(std::move(fn)) {}

  [[nodiscard]] const std::string& name() const override { return name_; }
  double invoke() override { return fn_(); }

 private:
  std::string name_;
  std::function<double()> fn_;
};

/// An application described the way the paper measures one: optional
/// prologue kernels (INITIALIZATION), a cyclic main loop of kernels executed
/// `iterations` times in control-flow order, and optional epilogue kernels
/// (FINAL).  `reset` must restore the execution environment to its
/// start-of-run state (cold caches for modeled kernels); the measurement
/// harness calls it before every independent measurement.
struct LoopApplication {
  std::string name;
  std::vector<Kernel*> prologue;  // non-owning; executed once, in order
  std::vector<Kernel*> loop;      // non-owning; the cyclic main loop
  std::vector<Kernel*> epilogue;  // non-owning; executed once, in order
  int iterations = 1;
  std::function<void()> reset = [] {};

  [[nodiscard]] std::size_t loop_size() const { return loop.size(); }
};

}  // namespace kcoup::coupling
