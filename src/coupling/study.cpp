#include "coupling/study.hpp"

#include <stdexcept>
#include <utility>

#include "campaign/executor.hpp"

namespace kcoup::coupling {

const ChainLengthResult* StudyResult::best() const {
  const ChainLengthResult* b = nullptr;
  for (const ChainLengthResult& r : by_length) {
    if (b == nullptr || r.relative_error < b->relative_error) b = &r;
  }
  return b;
}

StudyResult run_study(const LoopApplication& app, const StudyOptions& options) {
  // A study is a single-cell campaign executed serially: the same planner
  // and assembly as `kcoup campaign`, with a borrowed (non-owning)
  // application since one worker never runs two measurements at once.
  campaign::CampaignSpec spec;
  spec.chain_lengths = options.chain_lengths;
  spec.measurement = options.measurement;
  campaign::CampaignStudy cell;
  cell.application = app.name;
  cell.ranks = 1;
  cell.factory = [&app] { return campaign::borrow_app(&app); };
  spec.studies.push_back(std::move(cell));

  campaign::CampaignResult result = campaign::run_campaign(spec, /*workers=*/1);
  if (!result.complete()) {
    // The campaign layer isolates failures into partial results; a direct
    // study has no use for holes, so restore the throwing contract.
    throw std::runtime_error("run_study: measurement failed at " +
                             campaign::to_string(result.failures.front().key) +
                             ": " + result.failures.front().what);
  }
  return std::move(result.studies.front());
}

}  // namespace kcoup::coupling
