#include "coupling/study.hpp"

#include <utility>

#include "campaign/executor.hpp"

namespace kcoup::coupling {

const ChainLengthResult* StudyResult::best() const {
  const ChainLengthResult* b = nullptr;
  for (const ChainLengthResult& r : by_length) {
    if (b == nullptr || r.relative_error < b->relative_error) b = &r;
  }
  return b;
}

StudyResult run_study(const LoopApplication& app, const StudyOptions& options) {
  // A study is a single-cell campaign executed serially: the same planner
  // and assembly as `kcoup campaign`, with a borrowed (non-owning)
  // application since one worker never runs two measurements at once.
  campaign::CampaignSpec spec;
  spec.chain_lengths = options.chain_lengths;
  spec.measurement = options.measurement;
  campaign::CampaignStudy cell;
  cell.application = app.name;
  cell.ranks = 1;
  cell.factory = [&app] { return campaign::borrow_app(&app); };
  spec.studies.push_back(std::move(cell));

  campaign::CampaignResult result = campaign::run_campaign(spec, /*workers=*/1);
  return std::move(result.studies.front());
}

}  // namespace kcoup::coupling
