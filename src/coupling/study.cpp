#include "coupling/study.hpp"

#include "trace/stats.hpp"

namespace kcoup::coupling {

const ChainLengthResult* StudyResult::best() const {
  const ChainLengthResult* b = nullptr;
  for (const ChainLengthResult& r : by_length) {
    if (b == nullptr || r.relative_error < b->relative_error) b = &r;
  }
  return b;
}

StudyResult run_study(const LoopApplication& app, const StudyOptions& options) {
  MeasurementHarness harness(&app, options.measurement);

  StudyResult result;
  result.actual_s = harness.actual_total();
  result.isolated_means = harness.all_isolated_means();
  for (std::size_t i = 0; i < app.prologue.size(); ++i) {
    result.prologue_s += harness.prologue_mean(i);
  }
  for (std::size_t i = 0; i < app.epilogue.size(); ++i) {
    result.epilogue_s += harness.epilogue_mean(i);
  }

  PredictionInputs inputs;
  inputs.isolated_means = result.isolated_means;
  inputs.prologue_s = result.prologue_s;
  inputs.epilogue_s = result.epilogue_s;
  inputs.iterations = app.iterations;

  result.summation_s = summation_prediction(inputs);
  result.summation_error =
      trace::relative_error(result.summation_s, result.actual_s);

  for (std::size_t q : options.chain_lengths) {
    ChainLengthResult r;
    r.length = q;
    r.chains = measure_chains(harness, q, result.isolated_means);
    r.coefficients = coupling_coefficients(app.loop_size(), r.chains);
    r.prediction_s = coupling_prediction(inputs, r.chains);
    r.relative_error = trace::relative_error(r.prediction_s, result.actual_s);
    result.by_length.push_back(std::move(r));
  }
  return result;
}

}  // namespace kcoup::coupling
