#pragma once

#include <functional>
#include <string>
#include <vector>

#include "coupling/study.hpp"
#include "simmpi/simmpi.hpp"

namespace kcoup::coupling {

/// One kernel of a rank-parallel application.  The body runs this rank's
/// share of the kernel: it may exchange simmpi messages with the same
/// kernel's bodies on other ranks and must charge its local work to the
/// rank's virtual clock (Comm::advance).
struct ParallelKernel {
  std::string name;
  std::function<void()> body;
};

/// A rank-parallel application described for the measurement protocol.
/// Every rank constructs its own ParallelLoopApp with the same shape
/// (kernel count/order/iterations); bodies differ per rank.
struct ParallelLoopApp {
  std::vector<ParallelKernel> prologue;
  std::vector<ParallelKernel> loop;
  std::vector<ParallelKernel> epilogue;
  int iterations = 1;
  /// Restore rank-local start-of-run state (cold caches, fresh buffers).
  std::function<void()> reset = [] {};
};

/// Result of a rank-parallel coupling study; identical on every rank.
/// Times are global (max over ranks, i.e. simulated parallel execution
/// time), obtained by bracketing measured loops with barriers.
struct ParallelStudyResult {
  double actual_s = 0.0;
  std::vector<double> isolated_means;
  double prologue_s = 0.0;
  double epilogue_s = 0.0;
  double summation_s = 0.0;
  double summation_error = 0.0;
  std::vector<ChainLengthResult> by_length;
};

/// Run the paper's measurement protocol *in parallel*: every measurement
/// (isolated kernel loops, chain loops, the full application) executes on
/// all ranks simultaneously with virtual-time barriers around the timed
/// region, so pipeline fill, message waiting and load imbalance show up in
/// the measured values instead of being modeled analytically.  Must be
/// called collectively from every rank's simmpi body with structurally
/// identical apps; returns the same result on every rank.
[[nodiscard]] ParallelStudyResult run_parallel_study(
    simmpi::Comm& comm, const ParallelLoopApp& app, const StudyOptions& options);

}  // namespace kcoup::coupling
