#include "coupling/synthetic.hpp"

#include <random>
#include <stdexcept>
#include <string>

namespace kcoup::coupling {

std::unique_ptr<ModeledApp> make_synthetic_app(
    const SyntheticAppSpec& spec, machine::MachineConfig machine_config) {
  if (spec.kernels < 2) {
    throw std::invalid_argument("synthetic app: need at least 2 kernels");
  }
  if (spec.regions < spec.kernels) {
    throw std::invalid_argument(
        "synthetic app: need at least one region per kernel");
  }
  machine_config.ranks = spec.ranks;
  auto modeled = std::make_unique<ModeledApp>(
      "synthetic(seed=" + std::to_string(spec.seed) + ")",
      std::move(machine_config), spec.iterations);

  std::mt19937 rng(spec.seed);
  std::uniform_int_distribution<std::size_t> size_dist(spec.min_region_bytes,
                                                       spec.max_region_bytes);
  std::uniform_real_distribution<double> flops_dist(spec.min_flops,
                                                    spec.max_flops);
  std::uniform_real_distribution<double> unit(0.0, 1.0);

  std::vector<machine::RegionId> regions;
  std::vector<std::size_t> region_bytes;
  for (std::size_t r = 0; r < spec.regions; ++r) {
    region_bytes.push_back(size_dist(rng));
    regions.push_back(
        modeled->region("r" + std::to_string(r), region_bytes.back()));
  }

  // Each kernel k writes region k (mod pool); kernel k reads the previous
  // kernel's output (guaranteed adjacent data-flow) plus 1-2 random others.
  std::uniform_int_distribution<std::size_t> pick(0, spec.regions - 1);
  for (std::size_t k = 0; k < spec.kernels; ++k) {
    machine::WorkProfile p;
    p.label = "K" + std::to_string(k);
    p.kernel = static_cast<machine::KernelId>(k);
    p.flops = flops_dist(rng);
    p.pipeline_stages = spec.pipeline_stages;

    const std::size_t prev_out = (k + spec.kernels - 1) % spec.kernels;
    machine::RegionAccess in0{regions[prev_out], machine::AccessKind::kRead,
                              region_bytes[prev_out]};
    if (unit(rng) < spec.fresh_probability) in0.fresh_fraction = unit(rng);
    p.accesses.push_back(in0);

    const std::size_t extra_inputs = 1 + (rng() % 2);
    for (std::size_t i = 0; i < extra_inputs; ++i) {
      const std::size_t r = pick(rng);
      machine::RegionAccess in{regions[r], machine::AccessKind::kRead,
                               region_bytes[r]};
      if (unit(rng) < spec.fresh_probability) in.fresh_fraction = unit(rng);
      p.accesses.push_back(in);
    }
    p.accesses.push_back(machine::RegionAccess{
        regions[k % spec.regions], machine::AccessKind::kWrite,
        region_bytes[k % spec.regions]});

    if (spec.ranks > 1 && unit(rng) < spec.message_probability) {
      const std::size_t count = 1 + rng() % 4;
      const std::size_t bytes = 1024 + rng() % (64 * 1024);
      p.messages.push_back(machine::MessageOp{count, bytes});
    }
    if (spec.ranks > 1 && unit(rng) < spec.sync_probability) {
      p.synchronizes = true;
      p.imbalance_weight = unit(rng);
    }
    modeled->add_loop_kernel(std::move(p));
  }

  return modeled;
}

}  // namespace kcoup::coupling
