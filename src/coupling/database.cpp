#include "coupling/database.hpp"

#include <cmath>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace kcoup::coupling {

void CouplingDatabase::record(const std::string& application,
                              const std::string& config, int ranks,
                              std::span<const ChainCoupling> chains) {
  for (const ChainCoupling& c : chains) {
    CouplingRecord r;
    r.key = CouplingKey{application, config, ranks, c.length, c.start};
    r.chain_time = c.chain_time;
    r.isolated_sum = c.isolated_sum;
    record(std::move(r));
  }
}

void CouplingDatabase::record(CouplingRecord rec) {
  // Replace an existing record for the same key.
  for (CouplingRecord& r : records_) {
    if (r.key == rec.key) {
      r = std::move(rec);
      return;
    }
  }
  records_.push_back(std::move(rec));
}

std::optional<CouplingRecord> CouplingDatabase::find(
    const CouplingKey& key) const {
  for (const CouplingRecord& r : records_) {
    if (r.key == key) return r;
  }
  return std::nullopt;
}

std::optional<CouplingRecord> CouplingDatabase::find_nearest_ranks(
    const CouplingKey& key) const {
  const CouplingRecord* best = nullptr;
  double best_distance = std::numeric_limits<double>::infinity();
  for (const CouplingRecord& r : records_) {
    if (r.key.application != key.application || r.key.config != key.config ||
        r.key.chain_length != key.chain_length ||
        r.key.chain_start != key.chain_start) {
      continue;
    }
    const double d = std::fabs(std::log(static_cast<double>(r.key.ranks)) -
                               std::log(static_cast<double>(key.ranks)));
    if (d < best_distance) {
      best_distance = d;
      best = &r;
    }
  }
  if (best == nullptr) return std::nullopt;
  return *best;
}

std::optional<CouplingRecord> CouplingDatabase::find_other_config(
    const CouplingKey& key, const std::string& preferred_config) const {
  const CouplingRecord* fallback = nullptr;
  for (const CouplingRecord& r : records_) {
    if (r.key.application != key.application || r.key.ranks != key.ranks ||
        r.key.chain_length != key.chain_length ||
        r.key.chain_start != key.chain_start ||
        r.key.config == key.config) {
      continue;
    }
    if (r.key.config == preferred_config) return r;
    if (fallback == nullptr) fallback = &r;
  }
  if (fallback == nullptr) return std::nullopt;
  return *fallback;
}

std::vector<ChainCoupling> CouplingDatabase::reuse_chains_for(
    const std::string& application, const std::string& config, int ranks,
    std::size_t chain_length, std::size_t loop_size) const {
  std::vector<ChainCoupling> chains;
  for (std::size_t start = 0; start < loop_size; ++start) {
    const auto donor = find_nearest_ranks(
        CouplingKey{application, config, ranks, chain_length, start});
    if (!donor.has_value()) return {};
    ChainCoupling c;
    c.start = start;
    c.length = chain_length;
    for (std::size_t i = 0; i < chain_length; ++i) {
      c.members.push_back((start + i) % loop_size);
    }
    c.label = "reused(P=" + std::to_string(donor->key.ranks) + ")";
    c.chain_time = donor->chain_time;
    c.isolated_sum = donor->isolated_sum;
    chains.push_back(std::move(c));
  }
  return chains;
}

void CouplingDatabase::save_csv(std::ostream& out) const {
  out << "application,config,ranks,chain_length,chain_start,chain_time,"
         "isolated_sum\n";
  for (const CouplingRecord& r : records_) {
    out << r.key.application << ',' << r.key.config << ',' << r.key.ranks
        << ',' << r.key.chain_length << ',' << r.key.chain_start << ','
        << r.chain_time << ',' << r.isolated_sum << '\n';
  }
}

void CouplingDatabase::load_csv(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) {
    throw std::runtime_error("CouplingDatabase::load_csv: empty input");
  }
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream ls(line);
    CouplingRecord r;
    std::string ranks, length, start, chain_time, isolated;
    if (!std::getline(ls, r.key.application, ',') ||
        !std::getline(ls, r.key.config, ',') || !std::getline(ls, ranks, ',') ||
        !std::getline(ls, length, ',') || !std::getline(ls, start, ',') ||
        !std::getline(ls, chain_time, ',') || !std::getline(ls, isolated)) {
      throw std::runtime_error(
          "CouplingDatabase::load_csv: malformed line " +
          std::to_string(line_no));
    }
    try {
      r.key.ranks = std::stoi(ranks);
      r.key.chain_length = static_cast<std::size_t>(std::stoul(length));
      r.key.chain_start = static_cast<std::size_t>(std::stoul(start));
      r.chain_time = std::stod(chain_time);
      r.isolated_sum = std::stod(isolated);
    } catch (const std::exception&) {
      throw std::runtime_error(
          "CouplingDatabase::load_csv: bad number on line " +
          std::to_string(line_no));
    }
    record(std::move(r));
  }
}

double reuse_prediction(const PredictionInputs& in,
                        std::span<const ChainCoupling> donor) {
  // The donor supplies the coupling values (and their relative time
  // weights); the target supplies fresh isolated means and counts.
  return coupling_prediction(in, donor);
}

}  // namespace kcoup::coupling
