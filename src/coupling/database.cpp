#include "coupling/database.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "support/num_format.hpp"

namespace kcoup::coupling {

void CouplingDatabase::record(const std::string& application,
                              const std::string& config, int ranks,
                              std::span<const ChainCoupling> chains) {
  for (const ChainCoupling& c : chains) {
    CouplingRecord r;
    r.key = CouplingKey{application, config, ranks, c.length, c.start};
    r.chain_time = c.chain_time;
    r.isolated_sum = c.isolated_sum;
    record(std::move(r));
  }
}

void CouplingDatabase::record(CouplingRecord rec) {
  if (!std::isfinite(rec.chain_time) || rec.chain_time <= 0.0 ||
      !std::isfinite(rec.isolated_sum) || rec.isolated_sum <= 0.0) {
    throw std::invalid_argument(
        "CouplingDatabase::record: chain_time and isolated_sum must be "
        "finite and positive");
  }
  // Replace an existing record for the same key.
  for (CouplingRecord& r : records_) {
    if (r.key == rec.key) {
      r = std::move(rec);
      return;
    }
  }
  records_.push_back(std::move(rec));
}

void CouplingDatabase::adopt(std::vector<CouplingRecord> records) {
  for (const CouplingRecord& r : records) {
    if (!std::isfinite(r.chain_time) || r.chain_time <= 0.0 ||
        !std::isfinite(r.isolated_sum) || r.isolated_sum <= 0.0) {
      throw std::invalid_argument(
          "CouplingDatabase::adopt: chain_time and isolated_sum must be "
          "finite and positive");
    }
  }
  records_ = std::move(records);
}

std::optional<CouplingRecord> CouplingDatabase::find(
    const CouplingKey& key) const {
  for (const CouplingRecord& r : records_) {
    if (r.key == key) return r;
  }
  return std::nullopt;
}

std::optional<CouplingRecord> CouplingDatabase::find_nearest_ranks(
    const CouplingKey& key) const {
  const CouplingRecord* best = find_nearest_ranks_ref(key);
  if (best == nullptr) return std::nullopt;
  return *best;
}

const CouplingRecord* CouplingDatabase::find_nearest_ranks_ref(
    const CouplingKey& key) const {
  // Log-scale distance |log p - log t| orders candidates exactly like the
  // ratio max(p,t)/min(p,t), which integer cross-multiplication compares
  // without rounding — so equidistant candidates (e.g. P=2 and P=8 for a
  // P=4 target) are recognised exactly and tie-break on the smaller rank
  // count, never on record insertion order.
  const auto closer = [&key](int p, int q) {
    const long long pn = std::max(p, key.ranks);
    const long long pd = std::min(p, key.ranks);
    const long long qn = std::max(q, key.ranks);
    const long long qd = std::min(q, key.ranks);
    return pn * qd < qn * pd;  // pn/pd < qn/qd
  };
  const CouplingRecord* best = nullptr;
  for (const CouplingRecord& r : records_) {
    if (r.key.application != key.application || r.key.config != key.config ||
        r.key.chain_length != key.chain_length ||
        r.key.chain_start != key.chain_start) {
      continue;
    }
    if (best == nullptr || closer(r.key.ranks, best->key.ranks) ||
        (!closer(best->key.ranks, r.key.ranks) &&
         r.key.ranks < best->key.ranks)) {
      best = &r;
    }
  }
  return best;
}

std::optional<CouplingRecord> CouplingDatabase::find_other_config(
    const CouplingKey& key, const std::string& preferred_config) const {
  const CouplingRecord* fallback = nullptr;
  for (const CouplingRecord& r : records_) {
    if (r.key.application != key.application || r.key.ranks != key.ranks ||
        r.key.chain_length != key.chain_length ||
        r.key.chain_start != key.chain_start ||
        r.key.config == key.config) {
      continue;
    }
    if (r.key.config == preferred_config) return r;
    if (fallback == nullptr) fallback = &r;
  }
  if (fallback == nullptr) return std::nullopt;
  return *fallback;
}

std::vector<ChainCoupling> CouplingDatabase::reuse_chains_for(
    const std::string& application, const std::string& config, int ranks,
    std::size_t chain_length, std::size_t loop_size) const {
  std::vector<ChainCoupling> chains;
  if (!reuse_chains_into(application, config, ranks, chain_length, loop_size,
                         &chains)) {
    return {};
  }
  return chains;
}

bool CouplingDatabase::reuse_chains_into(const std::string& application,
                                         const std::string& config, int ranks,
                                         std::size_t chain_length,
                                         std::size_t loop_size,
                                         std::vector<ChainCoupling>* out) const {
  // resize() + element-wise assignment keeps every chain's members and
  // label buffers alive between calls, so a warm scratch vector fills with
  // zero allocations.
  out->resize(loop_size);
  CouplingKey probe{application, config, ranks, chain_length, 0};
  for (std::size_t start = 0; start < loop_size; ++start) {
    probe.chain_start = start;
    const CouplingRecord* donor = find_nearest_ranks_ref(probe);
    if (donor == nullptr) {
      out->clear();
      return false;
    }
    ChainCoupling& c = (*out)[start];
    c.start = start;
    c.length = chain_length;
    c.members.clear();
    for (std::size_t i = 0; i < chain_length; ++i) {
      c.members.push_back((start + i) % loop_size);
    }
    c.label = "reused(P=";
    c.label += std::to_string(donor->key.ranks);
    c.label += ')';
    c.chain_time = donor->chain_time;
    c.isolated_sum = donor->isolated_sum;
  }
  return true;
}

void CouplingDatabase::save_csv(std::ostream& out) const {
  out << "application,config,ranks,chain_length,chain_start,chain_time,"
         "isolated_sum\n";
  for (const CouplingRecord& r : records_) {
    // 17 significant digits: a save/load round trip reproduces every
    // double bit-for-bit, so predictions served from a persisted store
    // match the in-process study exactly.
    out << r.key.application << ',' << r.key.config << ',' << r.key.ranks
        << ',' << r.key.chain_length << ',' << r.key.chain_start << ','
        << support::format_double(r.chain_time) << ','
        << support::format_double(r.isolated_sum) << '\n';
  }
}

void CouplingDatabase::save_csv_file(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      throw std::runtime_error("CouplingDatabase::save_csv_file: cannot open " +
                               tmp);
    }
    save_csv(out);
    out.flush();
    if (!out) {
      throw std::runtime_error("CouplingDatabase::save_csv_file: write to " +
                               tmp + " failed");
    }
  }
  // On POSIX, rename() atomically replaces the target: readers see either
  // the old complete database or the new one, never a partial file.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("CouplingDatabase::save_csv_file: rename to " +
                             path + " failed");
  }
}

void CouplingDatabase::load_csv_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("CouplingDatabase::load_csv_file: cannot open " +
                             path);
  }
  try {
    load_csv(in);
  } catch (const std::exception& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

namespace {

// Strict field parsers: the whole field must be consumed, so trailing
// garbage ("4x", "1.0extra") is rejected instead of silently truncated.
int parse_int_field(const std::string& s) {
  std::size_t pos = 0;
  const int v = std::stoi(s, &pos);
  if (pos != s.size()) throw std::invalid_argument(s);
  return v;
}

std::size_t parse_size_field(const std::string& s) {
  std::size_t pos = 0;
  const unsigned long v = std::stoul(s, &pos);
  if (pos != s.size()) throw std::invalid_argument(s);
  return static_cast<std::size_t>(v);
}

double parse_double_field(const std::string& s) {
  std::size_t pos = 0;
  const double v = std::stod(s, &pos);
  if (pos != s.size()) throw std::invalid_argument(s);
  return v;
}

}  // namespace

void CouplingDatabase::load_csv(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) {
    throw std::runtime_error("CouplingDatabase::load_csv: empty input");
  }
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    std::vector<std::string> fields;
    std::string field;
    std::istringstream ls(line);
    while (std::getline(ls, field, ',')) fields.push_back(field);
    if (fields.size() != 7) {
      throw std::runtime_error("CouplingDatabase::load_csv: malformed line " +
                               std::to_string(line_no) + " (expected 7 fields, got " +
                               std::to_string(fields.size()) + ")");
    }
    CouplingRecord r;
    r.key.application = fields[0];
    r.key.config = fields[1];
    try {
      r.key.ranks = parse_int_field(fields[2]);
      r.key.chain_length = parse_size_field(fields[3]);
      r.key.chain_start = parse_size_field(fields[4]);
      r.chain_time = parse_double_field(fields[5]);
      r.isolated_sum = parse_double_field(fields[6]);
    } catch (const std::exception&) {
      throw std::runtime_error(
          "CouplingDatabase::load_csv: bad number on line " +
          std::to_string(line_no));
    }
    try {
      record(std::move(r));
    } catch (const std::invalid_argument& e) {
      throw std::runtime_error("CouplingDatabase::load_csv: line " +
                               std::to_string(line_no) + ": " + e.what());
    }
  }
}

double reuse_prediction(const PredictionInputs& in,
                        std::span<const ChainCoupling> donor) {
  // The donor supplies the coupling values (and their relative time
  // weights); the target supplies fresh isolated means and counts.
  return coupling_prediction(in, donor);
}

}  // namespace kcoup::coupling
