#pragma once

#include <cstddef>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "machine/config.hpp"
#include "machine/work_profile.hpp"

namespace kcoup::machine {

/// Region-granular reuse-distance cache model.
///
/// The model tracks an LRU stack of *regions* (application arrays) with the
/// byte footprint each was last touched with.  An access distinguishes
/// *traffic* (bytes streamed through the level, which is what gets priced)
/// from *footprint* (unique bytes, capped at the region's size, which is what
/// occupies cache and determines reuse distances) — a 38 KB line buffer that
/// streams 17 MB of traffic stays hot in L1 and evicts only 38 KB of other
/// data.  Pricing follows stack-distance theory with two rules:
///
/// 1. **Self-reuse (cyclic-scan rule).**  Re-traversing a region whose
///    footprint is B after D bytes of intervening unique traffic hits in the
///    smallest cache level whose capacity is at least D + B, and misses that
///    level entirely otherwise.  The sharp threshold is the exact behaviour
///    of LRU under cyclic re-traversal (a scan longer than capacity gets zero
///    reuse), and it is what produces the paper's "finite number of coupling
///    transitions" as problem size scales through the hierarchy (§4.1.4).
///
/// 2. **Producer-fresh reuse (pipelined rule).**  When a kernel reads data
///    that the *immediately preceding* kernel invocation streamed through
///    the cache (wrote or read), the reuse distance is the per-pipeline-
///    stage slice of the footprint between the producing touch and the
///    consuming read, not the whole region: the NPB kernels are
///    plane-structured, so the consumer revisits a plane soon after the
///    producer finished with it.  This is the constructive-coupling
///    mechanism ("the reuse of data between kernels", paper §1 and §4.1),
///    and it is unavailable to a kernel looping in isolation — which is
///    exactly why C_S dips below 1.
///
/// 3. **Streaming-store rule.**  A pure-write access is priced by the level
///    its footprint lands in, independent of staleness (no read-for-
///    ownership for full-region overwrites).  Scratch arrays therefore do
///    not manufacture phantom coupling between kernels, while still
///    occupying stack space and evicting other data.
///
/// The model is deterministic and independent of host behaviour.
class CacheModel {
 public:
  explicit CacheModel(const MachineConfig* config);

  /// Register an application array of `bytes` total size.
  RegionId register_region(std::string name, std::size_t bytes);

  [[nodiscard]] std::size_t region_count() const { return regions_.size(); }
  [[nodiscard]] const std::string& region_name(RegionId r) const {
    return regions_.at(r).name;
  }
  [[nodiscard]] std::size_t region_bytes(RegionId r) const {
    return regions_.at(r).bytes;
  }

  /// Bytes served from each cache level (index into config cache levels)
  /// plus main memory for one access.
  struct AccessCost {
    std::vector<std::size_t> level_bytes;
    std::size_t memory_bytes = 0;
  };

  /// Price one access and update the stack.  `prev_kernel` is the kernel
  /// that executed immediately before the current invocation (freshness only
  /// applies to data the immediate predecessor touched); `footprint_so_far`
  /// is the unique traffic already generated earlier in the same invocation;
  /// `pipeline_stages` comes from the invoking kernel's WorkProfile.
  AccessCost access(KernelId self, KernelId prev_kernel, const RegionAccess& a,
                    std::size_t footprint_so_far, std::size_t pipeline_stages);

  /// Finish an invocation of kernel `k` whose accesses had a combined unique
  /// footprint of `invocation_footprint` bytes: stamps last-toucher /
  /// producer-footprint metadata for the regions the invocation accessed.
  void end_invocation(KernelId k, std::size_t invocation_footprint);

  /// Forget all residency and data-flow history (cold machine).
  void reset();

  /// Unique footprint of the access: traffic capped at the region size.
  [[nodiscard]] std::size_t effective_footprint(const RegionAccess& a) const;

  /// Introspection for tests: reuse distance (bytes of more recently touched
  /// regions above `r` in the stack), or SIZE_MAX when never touched.
  [[nodiscard]] std::size_t stack_distance(RegionId r) const;

  /// Introspection for tests: which kernel most recently touched `r`.
  [[nodiscard]] KernelId last_toucher(RegionId r) const;

 private:
  struct RegionInfo {
    std::string name;
    std::size_t bytes = 0;
  };
  struct StackEntry {
    RegionId region = kInvalidRegion;
    std::size_t footprint = 0;
  };

  /// Smallest cache level whose capacity covers `distance` bytes, or the
  /// level count, meaning main memory.
  [[nodiscard]] std::size_t level_for_distance(std::size_t distance) const;

  void touch(RegionId r, std::size_t footprint);

  const MachineConfig* config_;
  std::vector<RegionInfo> regions_;
  std::list<StackEntry> stack_;  // front = most recently touched
  std::unordered_map<RegionId, std::list<StackEntry>::iterator> in_stack_;
  std::vector<KernelId> last_toucher_;
  std::vector<std::size_t> producer_footprint_;
  std::vector<RegionId> touched_this_invocation_;
};

}  // namespace kcoup::machine
