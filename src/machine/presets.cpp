#include "machine/config.hpp"

#include <utility>

namespace kcoup::machine {

MachineConfig ibm_sp_p2sc() {
  MachineConfig c;
  c.name = "ibm-sp-p2sc";
  // 120 MHz P2SC, dual FMA pipes: 480 Mflop/s peak; dense 5x5 block solver
  // kernels run near peak out of the large L1 on this machine, with the
  // memory system priced separately below.
  c.flops_per_second = 4.8e8;
  // 128 KB L1 data cache (P2SC's unusually large L1), dual-ported at core
  // speed: ~1.9 GB/s effective.
  c.cache.push_back(CacheLevel{128 * 1024, 0.52e-9});
  // 8 MB board-level L2/SRAM buffer: ~125 MB/s effective.
  c.cache.push_back(CacheLevel{8 * 1024 * 1024, 10.0e-9});
  // Main memory, latency-dominated strided access: ~33 MB/s effective.
  c.memory_seconds_per_byte = 40.0e-9;
  // SP "vulcan" switch: ~35 us one-way latency, ~90 MB/s per link.
  c.net_latency_s = 35.0e-6;
  c.net_seconds_per_byte = 11.0e-9;
  c.net_contention_coeff = 0.15;
  c.sync_latency_s = 20.0e-6;
  c.imbalance_coeff = 0.25;
  return c;
}

MachineConfig generic_smp() {
  MachineConfig c;
  c.name = "generic-smp";
  c.flops_per_second = 4.0e9;
  c.cache.push_back(CacheLevel{32 * 1024, 0.05e-9});
  c.cache.push_back(CacheLevel{1 * 1024 * 1024, 0.2e-9});
  c.cache.push_back(CacheLevel{32 * 1024 * 1024, 0.5e-9});
  c.memory_seconds_per_byte = 2.0e-9;
  c.net_latency_s = 1.0e-6;
  c.net_seconds_per_byte = 0.1e-9;
  c.net_contention_coeff = 0.1;
  c.sync_latency_s = 0.5e-6;
  c.imbalance_coeff = 0.3;
  return c;
}

MachineConfig without_l2(MachineConfig base) {
  base.name += "+no-l2";
  if (base.cache.size() > 1) base.cache.resize(1);
  return base;
}

MachineConfig without_contention(MachineConfig base) {
  base.name += "+no-contention";
  base.net_contention_coeff = 0.0;
  return base;
}

MachineConfig without_imbalance(MachineConfig base) {
  base.name += "+no-imbalance";
  base.imbalance_coeff = 0.0;
  return base;
}

}  // namespace kcoup::machine
