#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace kcoup::machine {

/// One level of the data-cache hierarchy.
struct CacheLevel {
  /// Usable capacity in bytes.
  std::size_t capacity_bytes = 0;
  /// Effective transfer cost for data served from this level, seconds per
  /// byte (latency amortised into a streaming rate).
  double seconds_per_byte = 0.0;
};

/// Parameterised machine description consumed by machine::Machine.
///
/// The default-constructed config is intentionally useless; use one of the
/// presets (ibm_sp_p2sc(), generic_smp(), ...) or build your own.  All times
/// are in seconds, all sizes in bytes.
struct MachineConfig {
  std::string name = "unnamed";

  // --- CPU ---------------------------------------------------------------
  /// Effective (achieved, not peak) floating-point rate of one processor.
  double flops_per_second = 1.0;

  // --- Memory hierarchy ----------------------------------------------------
  /// Cache levels ordered from fastest/smallest (L1) to slowest/largest.
  std::vector<CacheLevel> cache;
  /// Cost of data served from main memory, seconds per byte.
  double memory_seconds_per_byte = 0.0;

  // --- Interconnect --------------------------------------------------------
  /// Per-message latency (the alpha of the alpha-beta model).
  double net_latency_s = 0.0;
  /// Per-byte transfer cost (the beta of the alpha-beta model).
  double net_seconds_per_byte = 0.0;
  /// Multiplicative contention growth: effective beta is
  /// net_seconds_per_byte * (1 + net_contention_coeff * log2(P)).
  double net_contention_coeff = 0.0;

  // --- Synchronization / load imbalance -------------------------------------
  /// Latency of one stage of a synchronising operation (barrier tree hop).
  double sync_latency_s = 0.0;
  /// Strength of the load-imbalance penalty paid at a synchronisation point
  /// when the synchronising kernel's skew pattern differs from the pattern
  /// established by the previously synchronising kernel.  See machine.hpp
  /// for the full model description.
  double imbalance_coeff = 0.0;

  /// Number of ranks the model is priced for (set per experiment).
  int ranks = 1;
};

/// Preset approximating one node + switch of the Argonne IBM SP used in the
/// paper (120 MHz P2SC processors, two-level data cache, vulcan-style
/// switch).  Absolute constants are period-plausible, not vendor-exact; the
/// reproduction targets are relative errors and coupling regimes, which
/// depend on the *ratios* encoded here (see DESIGN.md section 2).
[[nodiscard]] MachineConfig ibm_sp_p2sc();

/// A generic modern-ish SMP node; used by examples to show how coupling
/// values move when the memory hierarchy changes.
[[nodiscard]] MachineConfig generic_smp();

/// Ablation helpers: return a copy of `base` with one mechanism removed.
[[nodiscard]] MachineConfig without_l2(MachineConfig base);
[[nodiscard]] MachineConfig without_contention(MachineConfig base);
[[nodiscard]] MachineConfig without_imbalance(MachineConfig base);

}  // namespace kcoup::machine
