#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "machine/cache_model.hpp"
#include "machine/config.hpp"
#include "machine/work_profile.hpp"

namespace kcoup::machine {

/// Per-invocation cost decomposition produced by Machine::execute.
struct CostBreakdown {
  double compute_s = 0.0;
  /// Seconds of data traffic served by each cache level (L1 first).
  std::vector<double> cache_s;
  double memory_s = 0.0;
  double comm_s = 0.0;
  double sync_s = 0.0;

  [[nodiscard]] double total() const {
    double t = compute_s + memory_s + comm_s + sync_s;
    for (double c : cache_s) t += c;
    return t;
  }

  CostBreakdown& operator+=(const CostBreakdown& o);
};

/// Deterministic single-rank machine pricing engine.
///
/// A Machine prices WorkProfiles (structural kernel descriptions) into
/// seconds, maintaining cache residency and synchronisation-skew state across
/// invocations so that *the order in which kernels run changes their cost* —
/// which is exactly the phenomenon the coupling parameter measures.
///
/// Cost components:
///  * compute  — flops / effective flop rate.
///  * memory   — region traffic priced by the reuse-distance CacheModel.
///  * comm     — alpha-beta messages with a log2(P) contention factor on
///               bandwidth: count * (alpha + bytes * beta * (1 + kappa log2 P)).
///  * sync     — barrier latency plus the *skew-decorrelation* penalty: a
///               synchronising kernel k must absorb whatever load-imbalance
///               pattern the immediately preceding kernel j established.  We model pattern similarity with a
///               deterministic per-pair correlation corr(j,k) in [0,1]
///               (corr(k,k)=1, so a kernel looping in isolation pays nothing:
///               its skew persists pipeline-fashion).  The penalty scales
///               with the latency-bound communication of the invocation and
///               with log2(P), following the paper's observation that "the
///               number of messages and load balancing issues are affecting
///               the coupling more than the message sizes and cache effects"
///               (section 4.1.1).
class Machine {
 public:
  explicit Machine(MachineConfig config);

  [[nodiscard]] const MachineConfig& config() const { return config_; }

  /// Register an application array with the underlying cache model.
  RegionId register_region(std::string name, std::size_t bytes) {
    return cache_.register_region(std::move(name), bytes);
  }

  /// Price one kernel invocation and update machine state.
  CostBreakdown execute(const WorkProfile& profile);

  /// Price without the breakdown.
  double execute_seconds(const WorkProfile& profile) {
    return execute(profile).total();
  }

  /// Cold caches + cleared skew history.  Regions stay registered.
  void reset_state();

  [[nodiscard]] const CacheModel& cache() const { return cache_; }

  /// Deterministic skew-pattern correlation between two kernels, in [0,1].
  /// Exposed for tests.  Symmetric; corr(k,k) == 1.
  [[nodiscard]] static double skew_correlation(KernelId a, KernelId b);

  /// Deterministic uniform hash of `key` into [0, 1).  Used wherever the
  /// simulation needs reproducible pseudo-randomness (per-rank compute
  /// jitter in the timed parallel path, skew patterns here).
  [[nodiscard]] static double unit_hash(std::uint64_t key);

 private:
  MachineConfig config_;
  CacheModel cache_;
  KernelId prev_kernel_ = kInvalidKernel;
};

}  // namespace kcoup::machine
