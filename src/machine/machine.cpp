#include "machine/machine.hpp"

#include <cassert>
#include <cmath>
#include <cstdint>
#include <utility>

namespace kcoup::machine {
namespace {

/// 64-bit mix (splitmix64 finaliser); used to derive deterministic
/// pseudo-random skew correlations from kernel-id pairs.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double log2p(int ranks) {
  return ranks > 1 ? std::log2(static_cast<double>(ranks)) : 0.0;
}

}  // namespace

CostBreakdown& CostBreakdown::operator+=(const CostBreakdown& o) {
  compute_s += o.compute_s;
  memory_s += o.memory_s;
  comm_s += o.comm_s;
  sync_s += o.sync_s;
  if (cache_s.size() < o.cache_s.size()) cache_s.resize(o.cache_s.size(), 0.0);
  for (std::size_t i = 0; i < o.cache_s.size(); ++i) cache_s[i] += o.cache_s[i];
  return *this;
}

Machine::Machine(MachineConfig config)
    : config_(std::move(config)), cache_(&config_) {
  assert(config_.flops_per_second > 0.0);
  assert(config_.ranks >= 1);
}

double Machine::unit_hash(std::uint64_t key) {
  return static_cast<double>(mix64(key) >> 11) * 0x1.0p-53;
}

double Machine::skew_correlation(KernelId a, KernelId b) {
  if (a == b) return 1.0;
  if (a == kInvalidKernel || b == kInvalidKernel) return 0.0;
  const KernelId lo = a < b ? a : b;
  const KernelId hi = a < b ? b : a;
  const std::uint64_t h =
      mix64((static_cast<std::uint64_t>(lo) << 32) | hi);
  // Distinct kernels rarely share a skew pattern: uniform in [0, 0.35).
  return 0.35 * static_cast<double>(h >> 11) * 0x1.0p-53;
}

CostBreakdown Machine::execute(const WorkProfile& profile) {
  CostBreakdown cost;
  cost.cache_s.assign(config_.cache.size(), 0.0);

  // --- Compute. --------------------------------------------------------
  cost.compute_s = profile.flops / config_.flops_per_second;

  // --- Memory hierarchy. -------------------------------------------------
  std::size_t footprint_so_far = 0;
  for (const RegionAccess& a : profile.accesses) {
    const CacheModel::AccessCost ac =
        cache_.access(profile.kernel, prev_kernel_, a, footprint_so_far,
                      profile.pipeline_stages);
    for (std::size_t i = 0; i < ac.level_bytes.size(); ++i) {
      cost.cache_s[i] += static_cast<double>(ac.level_bytes[i]) *
                         config_.cache[i].seconds_per_byte;
    }
    cost.memory_s += static_cast<double>(ac.memory_bytes) *
                     config_.memory_seconds_per_byte;
    footprint_so_far += cache_.effective_footprint(a);
  }
  cache_.end_invocation(profile.kernel, footprint_so_far);

  // --- Communication. ------------------------------------------------------
  const double contention =
      1.0 + config_.net_contention_coeff * log2p(config_.ranks);
  double latency_bound_s = 0.0;  // per-message latency; drives imbalance
  for (const MessageOp& m : profile.messages) {
    const double n = static_cast<double>(m.count);
    latency_bound_s += n * config_.net_latency_s;
    cost.comm_s += n * (config_.net_latency_s +
                        static_cast<double>(m.bytes_each) *
                            config_.net_seconds_per_byte * contention);
  }

  // --- Synchronisation & load imbalance. -----------------------------------
  if (profile.synchronizes && config_.ranks > 1) {
    const double tree_depth =
        std::ceil(std::log2(static_cast<double>(config_.ranks)));
    cost.sync_s += config_.sync_latency_s * tree_depth;

    const double corr = skew_correlation(prev_kernel_, profile.kernel);
    const double scale = (1.0 - 1.0 / static_cast<double>(config_.ranks)) *
                         log2p(config_.ranks);
    cost.sync_s += (1.0 - corr) * config_.imbalance_coeff * scale *
                   profile.imbalance_weight *
                   (latency_bound_s + config_.sync_latency_s * tree_depth);
  }

  prev_kernel_ = profile.kernel;
  return cost;
}

void Machine::reset_state() {
  cache_.reset();
  prev_kernel_ = kInvalidKernel;
}

}  // namespace kcoup::machine
