#include "machine/cache_model.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <utility>

namespace kcoup::machine {

CacheModel::CacheModel(const MachineConfig* config) : config_(config) {
  assert(config_ != nullptr);
}

RegionId CacheModel::register_region(std::string name, std::size_t bytes) {
  const auto id = static_cast<RegionId>(regions_.size());
  regions_.push_back(RegionInfo{std::move(name), bytes});
  last_toucher_.push_back(kInvalidKernel);
  producer_footprint_.push_back(0);
  return id;
}

std::size_t CacheModel::effective_footprint(const RegionAccess& a) const {
  return std::min(a.bytes, regions_.at(a.region).bytes);
}

std::size_t CacheModel::level_for_distance(std::size_t distance) const {
  const auto& levels = config_->cache;
  for (std::size_t i = 0; i < levels.size(); ++i) {
    if (distance <= levels[i].capacity_bytes) return i;
  }
  return levels.size();  // main memory
}

std::size_t CacheModel::stack_distance(RegionId r) const {
  auto it = in_stack_.find(r);
  if (it == in_stack_.end()) return std::numeric_limits<std::size_t>::max();
  std::size_t d = 0;
  for (auto e = stack_.begin(); e != it->second; ++e) d += e->footprint;
  return d;
}

KernelId CacheModel::last_toucher(RegionId r) const {
  return last_toucher_.at(r);
}

void CacheModel::touch(RegionId r, std::size_t footprint) {
  auto it = in_stack_.find(r);
  if (it != in_stack_.end()) stack_.erase(it->second);
  stack_.push_front(StackEntry{r, footprint});
  in_stack_[r] = stack_.begin();
}

CacheModel::AccessCost CacheModel::access(KernelId self, KernelId prev_kernel,
                                          const RegionAccess& a,
                                          std::size_t footprint_so_far,
                                          std::size_t pipeline_stages) {
  assert(a.region < regions_.size());
  assert(pipeline_stages >= 1);
  const std::size_t nlevels = config_->cache.size();
  AccessCost cost;
  cost.level_bytes.assign(nlevels, 0);
  if (a.bytes == 0) {
    // Zero-byte accesses still record data-flow (e.g. a kernel invocation
    // that degenerated on this rank) but generate no traffic.
    touched_this_invocation_.push_back(a.region);
    return cost;
  }
  const std::size_t footprint = effective_footprint(a);

  auto charge = [&](std::size_t level, std::size_t bytes) {
    if (level < nlevels) {
      cost.level_bytes[level] += bytes;
    } else {
      cost.memory_bytes += bytes;
    }
  };

  if (a.kind == AccessKind::kWrite) {
    // Streaming-store rule: a full overwrite is priced by the level its
    // footprint lands in, with no read-for-ownership.
    charge(level_for_distance(footprint), a.bytes);
  } else if (a.pipelined_self_reuse) {
    // Reverse-order read-back of data produced earlier in this invocation:
    // the effective reuse distance is one pipeline slice (producer tail and
    // consumer head meet), not the whole footprint.
    charge(level_for_distance(2 * footprint / pipeline_stages), a.bytes);
  } else {
    // --- Producer-fresh portion (pipelined producer->consumer reuse). ----
    std::size_t fresh_bytes = 0;
    if (a.fresh_fraction > 0.0 && prev_kernel != kInvalidKernel &&
        prev_kernel != self && last_toucher_[a.region] == prev_kernel) {
      fresh_bytes = static_cast<std::size_t>(
          static_cast<double>(a.bytes) * std::min(a.fresh_fraction, 1.0));
      const std::size_t window =
          (producer_footprint_[a.region] + footprint_so_far + footprint) /
          pipeline_stages;
      charge(level_for_distance(window), fresh_bytes);
    }

    // --- Self-reuse portion (cyclic-scan rule). ----------------------------
    const std::size_t normal_bytes = a.bytes - fresh_bytes;
    if (normal_bytes > 0) {
      const std::size_t d_above = stack_distance(a.region);
      if (d_above == std::numeric_limits<std::size_t>::max()) {
        cost.memory_bytes += normal_bytes;  // compulsory miss: never touched
      } else {
        // Re-traversal hits only if intervening traffic plus the region's
        // own footprint fit; below the threshold everything hits, above it
        // the scan gets nothing (LRU cyclic-scan property).
        charge(level_for_distance(d_above + footprint), normal_bytes);
      }
    }
  }

  touch(a.region, footprint);
  touched_this_invocation_.push_back(a.region);
  return cost;
}

void CacheModel::end_invocation(KernelId k, std::size_t invocation_footprint) {
  for (RegionId r : touched_this_invocation_) {
    last_toucher_[r] = k;
    producer_footprint_[r] = invocation_footprint;
  }
  touched_this_invocation_.clear();
}

void CacheModel::reset() {
  stack_.clear();
  in_stack_.clear();
  touched_this_invocation_.clear();
  std::fill(last_toucher_.begin(), last_toucher_.end(), kInvalidKernel);
  std::fill(producer_footprint_.begin(), producer_footprint_.end(),
            std::size_t{0});
}

}  // namespace kcoup::machine
