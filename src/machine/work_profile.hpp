#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace kcoup::machine {

/// Opaque handle for a registered data region (an array of the application).
using RegionId = std::uint32_t;
inline constexpr RegionId kInvalidRegion = std::numeric_limits<RegionId>::max();

/// Opaque identity of a kernel as seen by the machine model.  Kernel ids are
/// chosen by the caller; the machine uses them to track data-flow freshness
/// (which kernel last wrote a region) and synchronisation skew patterns.
using KernelId = std::uint32_t;
inline constexpr KernelId kInvalidKernel = std::numeric_limits<KernelId>::max();

enum class AccessKind : std::uint8_t { kRead, kWrite, kReadWrite };

/// One region access performed by a kernel invocation, in program order.
struct RegionAccess {
  RegionId region = kInvalidRegion;
  AccessKind kind = AccessKind::kRead;
  /// Bytes of the region touched by this invocation.
  std::size_t bytes = 0;
  /// Pipelined-reuse annotation: the fraction of this input that can be
  /// consumed plane-by-plane right behind whichever kernel streamed the
  /// region through the cache immediately beforehand.  When the previous
  /// kernel invocation was the last to touch this region (read or write),
  /// `fresh_fraction` of the bytes are priced with the pipelined
  /// producer->consumer reuse rule instead of the cyclic-scan self-reuse
  /// rule (see CacheModel docs).  A kernel looping in isolation never
  /// qualifies — its own previous invocation is excluded — which is what
  /// makes chains cheaper than the sum of their isolated parts.
  double fresh_fraction = 0.0;
  /// Within-invocation pipelined re-read: the kernel reads this region back
  /// in the reverse of the order it just produced it (e.g. the backward
  /// sweep of a line solver walking lines last-written-first), so the reuse
  /// distance is the per-stage slice of the footprint rather than the whole
  /// region.  Only meaningful for reads of regions written earlier in the
  /// same invocation.
  bool pipelined_self_reuse = false;
};

/// One batch of point-to-point messages issued by a kernel invocation.
struct MessageOp {
  /// Number of messages sent by this rank during the invocation.
  std::size_t count = 0;
  /// Payload size of each message in bytes.
  std::size_t bytes_each = 0;
};

/// Structural description of one invocation of one kernel on one rank.
///
/// WorkProfiles are produced by the per-application work models (BtWorkModel,
/// SpWorkModel, LuWorkModel) from the code structure of the numeric kernels:
/// flop counts, the arrays each kernel streams and in which order, the
/// data-flow edges between adjacent kernels, and the communication pattern.
/// They contain no timing — the Machine prices them.
struct WorkProfile {
  std::string label;
  KernelId kernel = kInvalidKernel;

  /// Floating-point operations executed by this rank.
  double flops = 0.0;

  /// Region accesses in program order (inputs typically precede outputs).
  std::vector<RegionAccess> accesses;

  /// Point-to-point traffic issued by this rank.
  std::vector<MessageOp> messages;

  /// True when the kernel ends with rank synchronisation (halo exchange
  /// completion, wavefront hand-off, collective).  Synchronising kernels pay
  /// the skew-decorrelation penalty.
  bool synchronizes = false;

  /// Fraction of compute subject to load imbalance (0 = perfectly balanced).
  double imbalance_weight = 0.0;

  /// Number of pipeline stages the kernel's traversal is organised in
  /// (NPB kernels are plane-structured: stages ~= number of grid planes).
  /// Governs the reuse distance of producer-fresh data: the consumer reads a
  /// plane soon after the producer wrote it, so the effective reuse distance
  /// is the per-stage slice of traffic, not the whole region.
  std::size_t pipeline_stages = 1;

  /// Total bytes touched (sum over accesses); convenience for reports.
  [[nodiscard]] std::size_t total_bytes() const {
    std::size_t s = 0;
    for (const auto& a : accesses) s += a.bytes;
    return s;
  }
};

}  // namespace kcoup::machine
