#include "model/piecewise.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <utility>

namespace kcoup::model {

namespace {

std::string range_label(const PiecewiseModel& m, std::size_t i) {
  char buf[64];
  if (m.breakpoints.empty()) return "";
  if (i == 0) {
    std::snprintf(buf, sizeof buf, "P<=%g: ", m.breakpoints.front());
  } else if (i == m.segments.size() - 1) {
    std::snprintf(buf, sizeof buf, "P>%g: ", m.breakpoints.back());
  } else {
    std::snprintf(buf, sizeof buf, "P in (%g,%g]: ", m.breakpoints[i - 1],
                  m.breakpoints[i]);
  }
  return buf;
}

std::size_t distinct_p(std::span<const ModelSample> sorted) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i == 0 || sorted[i].p != sorted[i - 1].p) ++count;
  }
  return count;
}

struct Builder {
  std::span<const ModelSample> samples;  ///< sorted by (p, n, seconds)
  const PiecewiseOptions& options;
  std::size_t splits_left = 0;
  PiecewiseModel out;

  void fit_range(std::size_t lo, std::size_t hi) {
    const auto range = samples.subspan(lo, hi - lo);
    SelectedModel parent = select_model(range, options.select);

    if (splits_left > 0 && !parent.degenerate &&
        std::isfinite(parent.cv_rmse) && parent.cv_rmse > 0.0) {
      // Scan boundaries between adjacent distinct P values, ascending;
      // strict < keeps the lowest boundary on a tied score.
      double best_score = std::numeric_limits<double>::infinity();
      std::size_t best_split = 0;
      for (std::size_t b = lo + 1; b < hi; ++b) {
        if (samples[b].p == samples[b - 1].p) continue;
        const auto left = samples.subspan(lo, b - lo);
        const auto right = samples.subspan(b, hi - b);
        if (distinct_p(left) < options.min_distinct_p ||
            distinct_p(right) < options.min_distinct_p) {
          continue;
        }
        const SelectedModel ml = select_model(left, options.select);
        const SelectedModel mr = select_model(right, options.select);
        if (ml.degenerate || mr.degenerate || !std::isfinite(ml.cv_rmse) ||
            !std::isfinite(mr.cv_rmse)) {
          continue;
        }
        const double nl = static_cast<double>(left.size());
        const double nr = static_cast<double>(right.size());
        const double score = std::sqrt(
            (nl * ml.cv_rmse * ml.cv_rmse + nr * mr.cv_rmse * mr.cv_rmse) /
            (nl + nr));
        if (score < best_score) {
          best_score = score;
          best_split = b;
        }
      }
      if (best_split != 0 &&
          best_score <
              (1.0 - options.min_relative_gain) * parent.cv_rmse) {
        --splits_left;
        // Leftmost-first recursion: the left side may claim further budget
        // before the right side is visited — a fixed, documented order.
        fit_range(lo, best_split);
        out.breakpoints.push_back(
            (samples[best_split - 1].p + samples[best_split].p) / 2.0);
        fit_range(best_split, hi);
        return;
      }
    }

    ModelSegment seg;
    seg.p_min = samples[lo].p;
    seg.p_max = samples[hi - 1].p;
    seg.sample_count = hi - lo;
    seg.model = std::move(parent);
    out.segments.push_back(std::move(seg));
  }
};

}  // namespace

const ModelSegment& PiecewiseModel::segment_for(double p) const {
  const auto it =
      std::lower_bound(breakpoints.begin(), breakpoints.end(), p);
  return segments[static_cast<std::size_t>(it - breakpoints.begin())];
}

double PiecewiseModel::evaluate(double n, double p) const {
  return segment_for(p).model.evaluate(n, p);
}

double PiecewiseModel::cv_rmse() const {
  double err2 = 0.0;
  double count = 0.0;
  for (const ModelSegment& s : segments) {
    const double c = static_cast<double>(s.sample_count);
    err2 += c * s.model.cv_rmse * s.model.cv_rmse;
    count += c;
  }
  return count > 0.0 ? std::sqrt(err2 / count)
                     : std::numeric_limits<double>::quiet_NaN();
}

std::string PiecewiseModel::term_names() const {
  std::string s;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    if (!s.empty()) s += " | ";
    s += range_label(*this, i);
    s += segments[i].model.term_names();
  }
  return s;
}

std::string PiecewiseModel::to_string() const {
  std::string s;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    if (!s.empty()) s += " | ";
    s += range_label(*this, i);
    s += segments[i].model.to_string();
  }
  return s;
}

PiecewiseModel fit_piecewise(std::span<const ModelSample> samples,
                             const PiecewiseOptions& options) {
  std::vector<ModelSample> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const ModelSample& a, const ModelSample& b) {
              if (a.p != b.p) return a.p < b.p;
              if (a.n != b.n) return a.n < b.n;
              return a.seconds < b.seconds;
            });

  Builder builder{sorted, options,
                  options.max_segments > 0 ? options.max_segments - 1 : 0,
                  {}};
  if (sorted.empty()) {
    // No data at all: a single flagged constant segment, never an empty
    // (and thus unevaluable) model.
    ModelSegment seg;
    seg.model = select_model({}, options.select);
    builder.out.segments.push_back(std::move(seg));
  } else {
    builder.fit_range(0, sorted.size());
  }
  return std::move(builder.out);
}

}  // namespace kcoup::model
