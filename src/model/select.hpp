#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "model/terms.hpp"

namespace kcoup::model {

/// One measured configuration for the model search, mirroring
/// coupling::ScalingSample: grid extent n, processor count P, and the
/// per-invocation kernel time.
struct ModelSample {
  double n = 0;
  double p = 1;
  double seconds = 0;
};

/// One selected term with its fitted coefficient.
struct FittedTerm {
  std::uint32_t id = 0;
  double coefficient = 0;
};

/// The winner of the cross-validated model search: a sparse linear
/// combination of registry terms.
struct SelectedModel {
  /// Chosen terms in ascending id order (the canonical spelling that the
  /// tie-break and the serialization both use).
  std::vector<FittedTerm> terms;
  /// Leave-one-out cross-validation RMS relative error — the selection
  /// score.  NaN for degenerate (flagged constant) models, where no
  /// cross-validation was possible.
  double cv_rmse = std::numeric_limits<double>::quiet_NaN();
  /// In-sample RMS relative error of the final fit over all samples.
  double fit_rmse = 0.0;
  /// True when the samples could not support a fit (fewer than two distinct
  /// (n, P) points, or every candidate singular) and the model fell back to
  /// the flagged constant form — never silently NaN coefficients.
  bool degenerate = false;

  [[nodiscard]] double evaluate(double n, double p) const;

  /// Term names joined with '+' in id order, e.g. "1+n^3/P" — the compact
  /// form string golden tests pin (coefficient-free, so stable under
  /// last-ulp jitter).
  [[nodiscard]] std::string term_names() const;
  /// Human-readable "3.0e-03*1 + 2.1e-09*n^3/P" form for reports.
  [[nodiscard]] std::string to_string() const;
};

struct SelectOptions {
  /// Maximum terms per candidate subset.  3 keeps the search exhaustive
  /// (~575 subsets of the 15-term registry) while bounding variance on the
  /// handful-of-cells sample sets snapshots fit from.
  std::size_t max_terms = 3;
};

/// Exhaustive cross-validated model selection: every registry subset of at
/// most max_terms terms is scored by leave-one-out RMS relative error
/// (weighted least squares, weights 1/y^2 — the same relative-error
/// objective KernelScalingModel::fit minimizes), and the best score wins.
///
/// Deterministic by construction: candidates are enumerated in a fixed
/// order (subset size ascending, then lexicographic term ids), a candidate
/// replaces the incumbent only on a *strictly* smaller score, and scores
/// below 1e-12 are clamped to zero so exact fits tie exactly instead of
/// ranking by last-ulp noise.  Ties therefore resolve to the fewest terms,
/// then the lexicographically smallest id set.
///
/// Candidates whose full or any leave-one-out fit is singular or yields
/// non-finite coefficients are disqualified.  When no candidate survives —
/// or the samples hold fewer than two distinct (n, P) points — the result
/// is the flagged constant model (degenerate = true).
[[nodiscard]] SelectedModel select_model(std::span<const ModelSample> samples,
                                         const SelectOptions& options = {});

}  // namespace kcoup::model
