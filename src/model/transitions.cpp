#include "model/transitions.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <tuple>
#include <utility>

namespace kcoup::model {

namespace {

/// Mean and sum of squares around the mean over series[lo, hi).
std::pair<double, double> mean_sse(std::span<const SeriesPoint> series,
                                   std::size_t lo, std::size_t hi) {
  double sum = 0.0;
  for (std::size_t i = lo; i < hi; ++i) sum += series[i].value;
  const double mean = sum / static_cast<double>(hi - lo);
  double sse = 0.0;
  for (std::size_t i = lo; i < hi; ++i) {
    const double d = series[i].value - mean;
    sse += d * d;
  }
  return {mean, sse};
}

void segment_range(std::span<const SeriesPoint> series, std::size_t lo,
                   std::size_t hi, const ChangepointOptions& options,
                   std::size_t* splits_left, std::vector<std::size_t>* cuts) {
  if (*splits_left == 0 ||
      hi - lo < 2 * options.min_segment_points) {
    return;
  }
  const auto [parent_mean, parent_sse] = mean_sse(series, lo, hi);
  (void)parent_mean;
  if (parent_sse <= 0.0) return;

  double best_sse = std::numeric_limits<double>::infinity();
  std::size_t best_cut = 0;
  double best_left_mean = 0.0;
  double best_right_mean = 0.0;
  for (std::size_t b = lo + options.min_segment_points;
       b + options.min_segment_points <= hi; ++b) {
    const auto [ml, sl] = mean_sse(series, lo, b);
    const auto [mr, sr] = mean_sse(series, b, hi);
    // Strict <: ties keep the lowest boundary — deterministic.
    if (sl + sr < best_sse) {
      best_sse = sl + sr;
      best_cut = b;
      best_left_mean = ml;
      best_right_mean = mr;
    }
  }
  if (best_cut == 0) return;
  const double gain = parent_sse - best_sse;
  if (gain < options.min_relative_gain * parent_sse) return;
  const double scale =
      std::max(1e-12, (std::fabs(best_left_mean) +
                       std::fabs(best_right_mean)) / 2.0);
  if (std::fabs(best_right_mean - best_left_mean) <
      options.min_jump * scale) {
    return;
  }
  --*splits_left;
  // In-order recursion keeps `cuts` ascending; the left side may claim
  // remaining split budget before the right side is visited.
  segment_range(series, lo, best_cut, options, splits_left, cuts);
  cuts->push_back(best_cut);
  segment_range(series, best_cut, hi, options, splits_left, cuts);
}

}  // namespace

std::vector<Changepoint> detect_changepoints(
    std::span<const SeriesPoint> series, const ChangepointOptions& options) {
  std::vector<Changepoint> out;
  if (series.size() < 2 * options.min_segment_points) return out;
  std::size_t splits_left = options.max_changepoints;
  std::vector<std::size_t> cuts;
  segment_range(series, 0, series.size(), options, &splits_left, &cuts);
  if (cuts.empty()) return out;

  // Final segment boundaries: [0, cuts..., n].  The reported before/after
  // levels are the means of the segments *adjacent to each cut* after all
  // recursion, not the coarse two-sided means at accept time.
  std::vector<std::size_t> bounds;
  bounds.push_back(0);
  bounds.insert(bounds.end(), cuts.begin(), cuts.end());
  bounds.push_back(series.size());
  out.reserve(cuts.size());
  for (std::size_t c = 0; c < cuts.size(); ++c) {
    const std::size_t cut = cuts[c];
    const std::size_t seg_lo = bounds[c];
    const std::size_t seg_hi = bounds[c + 2];
    Changepoint cp;
    cp.x_lo = series[cut - 1].x;
    cp.x_hi = series[cut].x;
    cp.boundary = (cp.x_lo + cp.x_hi) / 2.0;
    cp.before = mean_sse(series, seg_lo, cut).first;
    cp.after = mean_sse(series, cut, seg_hi).first;
    out.push_back(cp);
  }
  return out;
}

std::vector<CouplingTransition> detect_coupling_transitions(
    const coupling::CouplingDatabase& db, const ChangepointOptions& options) {
  using SeriesKey = std::tuple<std::string, std::string, std::size_t,
                               std::size_t>;
  std::map<SeriesKey, std::vector<std::pair<int, double>>> by_series;
  for (const coupling::CouplingRecord& r : db.records()) {
    const double c = r.coupling();
    if (!std::isfinite(c)) continue;
    by_series[SeriesKey{r.key.application, r.key.config, r.key.chain_length,
                        r.key.chain_start}]
        .emplace_back(r.key.ranks, c);
  }

  std::vector<CouplingTransition> out;
  for (auto& [key, points] : by_series) {
    // The database holds one record per full key, so ranks are unique
    // within a series; sorting by ranks fixes the sweep order.
    std::sort(points.begin(), points.end());
    std::vector<SeriesPoint> series;
    series.reserve(points.size());
    for (const auto& [ranks, c] : points) {
      series.push_back({static_cast<double>(ranks), c});
    }
    for (const Changepoint& cp : detect_changepoints(series, options)) {
      CouplingTransition t;
      t.application = std::get<0>(key);
      t.config = std::get<1>(key);
      t.chain_length = std::get<2>(key);
      t.chain_start = std::get<3>(key);
      t.ranks_lo = static_cast<int>(cp.x_lo);
      t.ranks_hi = static_cast<int>(cp.x_hi);
      t.boundary = cp.boundary;
      t.coupling_before = cp.before;
      t.coupling_after = cp.after;
      out.push_back(std::move(t));
    }
  }
  // by_series iteration is sorted and detect_changepoints reports cuts in
  // ascending order, so `out` is already canonical.
  return out;
}

}  // namespace kcoup::model
