#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "coupling/database.hpp"

namespace kcoup::model {

/// One point of a 1-D series the changepoint detector segments: x is the
/// sweep coordinate (here: processor count), value the observed coupling.
struct SeriesPoint {
  double x = 0;
  double value = 0;
};

struct ChangepointOptions {
  /// Minimum points per segment; 2 means a series needs >= 4 points before
  /// any transition can be claimed.
  std::size_t min_segment_points = 2;
  /// A split must remove at least this fraction of the segment's
  /// sum-of-squares around its mean.
  double min_relative_gain = 0.5;
  /// The level jump across the boundary must be at least this fraction of
  /// the mean magnitude of the two segment levels — couplings hover near
  /// 1.0, so 0.02 means "a 2% shift in coupling", well above measurement
  /// jitter but below any memory-hierarchy transition the paper reports.
  double min_jump = 0.02;
  /// Upper bound on reported changepoints per series.
  std::size_t max_changepoints = 4;
};

/// One detected level shift in a series: the boundary lies between grid
/// neighbors x_lo and x_hi (so it is located "within one grid step" by
/// construction), with the piecewise-constant levels on either side.
struct Changepoint {
  double x_lo = 0;
  double x_hi = 0;
  double boundary = 0;  ///< midpoint of (x_lo, x_hi)
  double before = 0;    ///< segment mean left of the boundary
  double after = 0;     ///< segment mean right of the boundary
};

/// Piecewise-constant changepoint detection by recursive binary
/// segmentation: the split minimizing the two-sided sum of squares wins,
/// and is kept only when it clears both the SSE gain and the level-jump
/// thresholds.  `series` must be sorted by x with distinct x values.
/// Deterministic: ties on the SSE score keep the lowest boundary.
[[nodiscard]] std::vector<Changepoint> detect_changepoints(
    std::span<const SeriesPoint> series, const ChangepointOptions& options = {});

/// A coupling transition surfaced as first-class data: for one
/// (application, config, chain_length, chain_start) series swept over
/// ranks, the coupling C_S = chain_time / isolated_sum shifts levels
/// between ranks_lo and ranks_hi — the paper's memory-hierarchy boundary
/// made visible.
struct CouplingTransition {
  std::string application;
  std::string config;
  std::size_t chain_length = 0;
  std::size_t chain_start = 0;
  int ranks_lo = 0;
  int ranks_hi = 0;
  double boundary = 0;
  double coupling_before = 0;
  double coupling_after = 0;
};

/// Scan every (application, config, chain_length, chain_start) series of
/// the database, ordered by ranks, and report all detected coupling
/// transitions in canonical order: (application, config, chain_length,
/// chain_start, boundary) ascending.  Records with undefined coupling
/// (isolated_sum == 0) are skipped.  Purely a function of the database —
/// no workload, no measurements.
[[nodiscard]] std::vector<CouplingTransition> detect_coupling_transitions(
    const coupling::CouplingDatabase& db,
    const ChangepointOptions& options = {});

}  // namespace kcoup::model
