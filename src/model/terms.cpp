#include "model/terms.hpp"

#include <cmath>
#include <stdexcept>

namespace kcoup::model {

namespace {

double lg(double p) { return p > 1.0 ? std::log2(p) : 0.0; }

// Ids are frozen (see terms.hpp): append-only, never renumber.  The
// log2(P) guard matches ScalingBasis::npb_default() so a model selected
// over this registry agrees with the legacy basis at P = 1.
constexpr Term kRegistry[] = {
    {0, "1", [](double, double) { return 1.0; }},
    {1, "log2(P)", [](double, double p) { return lg(p); }},
    {2, "P", [](double, double p) { return p; }},
    {3, "P*log2(P)", [](double, double p) { return p * lg(p); }},
    {4, "1/P", [](double, double p) { return 1.0 / p; }},
    {5, "1/sqrt(P)", [](double, double p) { return 1.0 / std::sqrt(p); }},
    {6, "sqrt(P)", [](double, double p) { return std::sqrt(p); }},
    {7, "n", [](double n, double) { return n; }},
    {8, "n^2", [](double n, double) { return n * n; }},
    {9, "n^3", [](double n, double) { return n * n * n; }},
    {10, "n/P", [](double n, double p) { return n / p; }},
    {11, "n^2/P", [](double n, double p) { return n * n / p; }},
    {12, "n^3/P", [](double n, double p) { return n * n * n / p; }},
    {13, "n^2/sqrt(P)",
     [](double n, double p) { return n * n / std::sqrt(p); }},
    {14, "n*log2(P)", [](double n, double p) { return n * lg(p); }},
};

}  // namespace

std::span<const Term> term_registry() { return kRegistry; }

const Term& term_at(std::uint32_t id) {
  if (id >= std::size(kRegistry)) {
    throw std::out_of_range("model term id " + std::to_string(id) +
                            " out of range");
  }
  return kRegistry[id];
}

std::vector<std::string> term_names() {
  std::vector<std::string> names;
  names.reserve(std::size(kRegistry));
  for (const Term& t : kRegistry) names.emplace_back(t.name);
  return names;
}

}  // namespace kcoup::model
