#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace kcoup::model {

/// One candidate basis term phi(n, P) of the multi-parameter model search
/// (Extra-P-style selection over problem size n and processor count P).
///
/// Term ids are a serialization contract: the packed-snapshot format stores
/// fitted models as (term id, coefficient) pairs, so an id, once assigned,
/// must never be renumbered or given a different function — new terms are
/// appended with fresh ids and the snapshot format version is bumped.
struct Term {
  std::uint32_t id = 0;
  const char* name = "";
  double (*eval)(double n, double p) = nullptr;
};

/// The fixed candidate-term registry, in id order (registry()[i].id == i).
/// Spans the shapes the NPB-style kernels and their communication exhibit:
/// constants, log/linear/superlinear P growth, 1/P-family strong-scaling
/// decay, and size terms n..n^3 alone and divided across P.
[[nodiscard]] std::span<const Term> term_registry();

/// The registry entry for `id`; throws std::out_of_range on unknown ids
/// (the packed-snapshot loader turns that into a format error).
[[nodiscard]] const Term& term_at(std::uint32_t id);

/// Id of the constant term "1" — the flagged fallback form for degenerate
/// sample sets.
inline constexpr std::uint32_t kConstantTermId = 0;

/// The registry's term names in id order (the pinned name list the packed
/// format stores so a file can prove it pairs with this registry).
[[nodiscard]] std::vector<std::string> term_names();

}  // namespace kcoup::model
