#include "model/select.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>
#include <utility>

#include "coupling/scaling_model.hpp"

namespace kcoup::model {

namespace {

/// Scores at or below this clamp to exactly 0: an exact fit's residual is
/// last-ulp noise, and without the clamp two exact candidates would rank by
/// that noise instead of tying (and resolving to the simpler form).
constexpr double kExactScoreClamp = 1e-12;

struct Design {
  std::vector<std::vector<double>> rows;  ///< rows[i][t]: term t at sample i
  std::vector<double> w;                  ///< 1/y^2 (1 when y == 0)
  std::vector<double> y;
};

Design build_design(std::span<const ModelSample> samples) {
  const auto registry = term_registry();
  Design d;
  d.rows.reserve(samples.size());
  d.w.reserve(samples.size());
  d.y.reserve(samples.size());
  for (const ModelSample& s : samples) {
    std::vector<double> row(registry.size());
    for (const Term& t : registry) row[t.id] = t.eval(s.n, s.p);
    d.rows.push_back(std::move(row));
    d.w.push_back(s.seconds != 0.0 ? 1.0 / (s.seconds * s.seconds) : 1.0);
    d.y.push_back(s.seconds);
  }
  return d;
}

constexpr std::size_t kNoSkip = static_cast<std::size_t>(-1);

/// Weighted least squares over the candidate columns, optionally leaving
/// sample `skip` out.  False when the normal equations are singular or the
/// solution is non-finite.
bool fit_candidate(const Design& d, std::span<const std::uint32_t> ids,
                   std::size_t skip, std::vector<double>* coefficients) {
  const std::size_t k = ids.size();
  std::vector<double> ata(k * k, 0.0);
  std::vector<double> atb(k, 0.0);
  for (std::size_t s = 0; s < d.rows.size(); ++s) {
    if (s == skip) continue;
    const std::vector<double>& full_row = d.rows[s];
    for (std::size_t i = 0; i < k; ++i) {
      const double ri = full_row[ids[i]];
      atb[i] += d.w[s] * ri * d.y[s];
      for (std::size_t j = 0; j < k; ++j) {
        ata[i * k + j] += d.w[s] * ri * full_row[ids[j]];
      }
    }
  }
  if (!coupling::solve_dense(ata, atb, k)) return false;
  for (const double c : atb) {
    if (!std::isfinite(c)) return false;
  }
  *coefficients = std::move(atb);
  return true;
}

double predict_row(const Design& d, std::size_t s,
                   std::span<const std::uint32_t> ids,
                   std::span<const double> coefficients) {
  double t = 0.0;
  for (std::size_t j = 0; j < ids.size(); ++j) {
    t += coefficients[j] * d.rows[s][ids[j]];
  }
  return t;
}

/// RMS relative error of `coefficients` over every sample (absolute where
/// y == 0, matching the fit's weighting).
double rms_relative_error(const Design& d, std::span<const std::uint32_t> ids,
                          std::span<const double> coefficients) {
  double err2 = 0.0;
  for (std::size_t s = 0; s < d.rows.size(); ++s) {
    const double pred = predict_row(d, s, ids, coefficients);
    const double rel =
        d.y[s] != 0.0 ? (pred - d.y[s]) / d.y[s] : pred;
    err2 += rel * rel;
  }
  return std::sqrt(err2 / static_cast<double>(d.rows.size()));
}

SelectedModel constant_fallback(const Design& d) {
  // The weighted least-squares solution for the lone constant column —
  // always well defined, always finite.
  double sw = 0.0;
  double swy = 0.0;
  for (std::size_t s = 0; s < d.rows.size(); ++s) {
    sw += d.w[s];
    swy += d.w[s] * d.y[s];
  }
  SelectedModel m;
  m.degenerate = true;
  m.terms = {{kConstantTermId, sw > 0.0 ? swy / sw : 0.0}};
  const std::uint32_t ids[] = {kConstantTermId};
  const double coefficients[] = {m.terms[0].coefficient};
  m.fit_rmse = d.rows.empty() ? 0.0 : rms_relative_error(d, ids, coefficients);
  return m;
}

}  // namespace

double SelectedModel::evaluate(double n, double p) const {
  double t = 0.0;
  for (const FittedTerm& ft : terms) {
    t += ft.coefficient * term_at(ft.id).eval(n, p);
  }
  return t;
}

std::string SelectedModel::term_names() const {
  std::string s;
  for (const FittedTerm& ft : terms) {
    if (!s.empty()) s += '+';
    s += term_at(ft.id).name;
  }
  return s;
}

std::string SelectedModel::to_string() const {
  std::string s;
  for (const FittedTerm& ft : terms) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%s%.3e*%s", s.empty() ? "" : " + ",
                  ft.coefficient, term_at(ft.id).name);
    s += buf;
  }
  if (degenerate) s += " [degenerate]";
  return s;
}

SelectedModel select_model(std::span<const ModelSample> samples,
                           const SelectOptions& options) {
  const Design d = build_design(samples);

  std::set<std::pair<double, double>> distinct;
  for (const ModelSample& s : samples) distinct.insert({s.n, s.p});
  if (distinct.size() < 2) return constant_fallback(d);

  const std::size_t registry_size = term_registry().size();
  SelectedModel best;
  double best_cv = std::numeric_limits<double>::infinity();
  std::vector<double> coefficients;
  std::vector<double> loo;

  const std::size_t max_terms = std::min(options.max_terms, registry_size);
  for (std::size_t k = 1; k <= max_terms; ++k) {
    // Leave-one-out fits use m-1 samples; require strictly more samples
    // than terms so no fold is underdetermined by count alone.
    if (samples.size() < k + 1 || distinct.size() < k) continue;
    std::vector<std::uint32_t> ids(k);
    for (std::size_t i = 0; i < k; ++i) ids[i] = static_cast<std::uint32_t>(i);
    bool more = true;
    while (more) {
      if (fit_candidate(d, ids, kNoSkip, &coefficients)) {
        double cv2 = 0.0;
        bool valid = true;
        for (std::size_t s = 0; s < samples.size(); ++s) {
          if (!fit_candidate(d, ids, s, &loo)) {
            valid = false;
            break;
          }
          const double pred = predict_row(d, s, ids, loo);
          const double rel =
              d.y[s] != 0.0 ? (pred - d.y[s]) / d.y[s] : pred;
          cv2 += rel * rel;
        }
        if (valid) {
          double cv = std::sqrt(cv2 / static_cast<double>(samples.size()));
          if (cv <= kExactScoreClamp) cv = 0.0;
          // Strict <: the enumeration order (size ascending, ids
          // lexicographic) makes the first of any tie — fewest terms, then
          // smallest id set — the deterministic winner.
          if (std::isfinite(cv) && cv < best_cv) {
            best_cv = cv;
            best.terms.clear();
            for (std::size_t i = 0; i < k; ++i) {
              best.terms.push_back({ids[i], coefficients[i]});
            }
            best.cv_rmse = cv;
            best.fit_rmse = rms_relative_error(d, ids, coefficients);
            best.degenerate = false;
          }
        }
      }
      more = false;
      for (std::size_t i = k; i-- > 0;) {
        if (ids[i] + (k - i) < registry_size) {
          ++ids[i];
          for (std::size_t j = i + 1; j < k; ++j) ids[j] = ids[j - 1] + 1;
          more = true;
          break;
        }
      }
    }
  }

  if (best.terms.empty()) return constant_fallback(d);
  return best;
}

}  // namespace kcoup::model
