#pragma once

#include <span>
#include <string>
#include <vector>

#include "model/select.hpp"

namespace kcoup::model {

/// One P-range of a piecewise model with its selected per-range form.
/// p_min/p_max record the sample range the segment was fitted from (both
/// inclusive); routing between segments uses PiecewiseModel::breakpoints.
struct ModelSegment {
  double p_min = 0;
  double p_max = 0;
  /// Samples the segment was fitted from — the weight of its CV score in
  /// the combined PiecewiseModel::cv_rmse.
  std::size_t sample_count = 0;
  SelectedModel model;
};

/// A per-kernel model that is allowed to change form at a small number of
/// processor-count breakpoints — the paper's "finite number of coupling
/// transitions" observation applied to the kernel scaling models.
struct PiecewiseModel {
  /// Ascending boundary values in P; segment i covers
  /// (breakpoints[i-1], breakpoints[i]] with the first segment open below
  /// and the last open above (so extrapolation past the data uses the
  /// outermost segment's form).  Empty for a single global model.
  std::vector<double> breakpoints;
  /// breakpoints.size() + 1 entries, in ascending P order.
  std::vector<ModelSegment> segments;

  [[nodiscard]] double evaluate(double n, double p) const;
  /// The segment responsible for processor count p.
  [[nodiscard]] const ModelSegment& segment_for(double p) const;

  /// Sample-count-weighted RMS of the per-segment CV scores (NaN when any
  /// segment is degenerate).
  [[nodiscard]] double cv_rmse() const;
  /// "P<=6: 1+n^3/P | P>6: 1+n^2/P" — coefficient-free form string for
  /// golden pins; a single segment prints just its term names.
  [[nodiscard]] std::string term_names() const;
  [[nodiscard]] std::string to_string() const;
};

struct PiecewiseOptions {
  SelectOptions select;
  /// Each side of a candidate split must keep at least this many distinct
  /// processor counts (2 is the minimum that still constrains a P-term).
  std::size_t min_distinct_p = 2;
  /// A split is accepted only when the combined CV score improves on the
  /// parent segment's score by this relative margin — the deterministic
  /// brake that keeps dense well-modeled data in one segment.
  double min_relative_gain = 0.25;
  /// Upper bound on segments (the paper observes a *finite, small* number
  /// of transitions; 3 covers every hierarchy boundary it reports).
  std::size_t max_segments = 3;
};

/// Recursive binary changepoint search over the distinct processor counts:
/// fit the whole range with select_model, try every admissible boundary
/// between adjacent distinct P values, and keep the best split only if its
/// sample-weighted combined CV score beats the unsplit score by
/// min_relative_gain.  Accepted splits recurse on both sides until the
/// segment budget is spent.
///
/// Deterministic: samples are processed in sorted (P, n, seconds) order,
/// boundaries are scanned in ascending order with strict-improvement
/// comparison (ties keep the lowest boundary), and the per-range selection
/// is select_model's deterministic search.
[[nodiscard]] PiecewiseModel fit_piecewise(
    std::span<const ModelSample> samples,
    const PiecewiseOptions& options = {});

}  // namespace kcoup::model
