#pragma once

#include <string>

#include "obs/metrics.hpp"

namespace kcoup::obs {

/// A registry metric name as a Prometheus metric name: every byte outside
/// [a-zA-Z0-9_:] (the dots in "serve.requests") becomes '_'; a leading
/// digit gains a '_' prefix.
[[nodiscard]] std::string prometheus_name(const std::string& name);

/// Render a metrics snapshot as Prometheus text exposition format
/// (version 0.0.4): counters and gauges as single samples, histograms as
/// cumulative `_bucket{le="..."}` series (one boundary per octave of the
/// log-bucketed support::LatencyHistogram, plus `+Inf`) with `_sum` and
/// `_count`.
///
/// Deterministic by construction: names come out sorted (MetricsSnapshot
/// is name-sorted), doubles use support::format_double (classic locale, 17
/// significant digits), and nothing depends on time or iteration order —
/// the same snapshot always renders byte-identically, which is what lets
/// tests pin the exposition and `kcoup stats --prom` mirror the server's
/// `metrics` op bit-exactly.
[[nodiscard]] std::string render_prometheus(const MetricsSnapshot& snapshot);

}  // namespace kcoup::obs
