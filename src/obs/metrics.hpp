#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/latency_histogram.hpp"

namespace kcoup::obs {

/// Monotonic event count.  add() is a relaxed atomic increment — safe from
/// any thread, O(1), no fence traffic on the hot path.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written double (a level, not a count): timings, sizes, ratios.
/// store/load are relaxed atomics, so a gauge round-trips the exact bits it
/// was set to — which is what lets CampaignMetrics be a bit-compatible view
/// over the registry.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Log-bucketed distribution (support::LatencyHistogram) behind a mutex.
/// record() is a few adds under an uncontended lock; snapshot() copies the
/// fixed-size bucket array.  Writers that need a lock-free path should keep
/// per-thread histograms and merge them into one of these.
class Histogram {
 public:
  void record(double seconds) {
    std::lock_guard<std::mutex> lock(mutex_);
    histogram_.record(seconds);
  }

  void merge(const support::LatencyHistogram& other) {
    std::lock_guard<std::mutex> lock(mutex_);
    histogram_.merge(other);
  }

  [[nodiscard]] support::LatencyHistogram snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return histogram_;
  }

 private:
  mutable std::mutex mutex_;
  support::LatencyHistogram histogram_;
};

/// A point-in-time copy of every metric in a registry, name-sorted.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, support::LatencyHistogram>> histograms;
};

/// Named metric store.  counter()/gauge()/histogram() get-or-create and
/// return a reference that stays valid for the registry's lifetime —
/// callers resolve names once at setup and then update through the
/// reference, so the hot path never touches the name map or its lock.
///
/// The campaign executor keeps one registry per run (its CampaignMetrics is
/// read out of it); the server keeps one for its whole lifetime (its stats
/// endpoint and ServeMetrics are views over it).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] Histogram& histogram(std::string_view name);

  /// Copy every metric's current value (names sorted; safe to call while
  /// updates continue — counters/gauges are atomic, histograms locked).
  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace kcoup::obs
