#include "obs/metrics.hpp"

namespace kcoup::obs {

namespace {

/// Heterogeneous get-or-create keeping pointer stability: the mapped
/// unique_ptr never moves, so returned references survive rehash-free
/// std::map growth and registry-wide iteration.
template <typename Map>
auto& get_or_create(Map& map, std::string_view name) {
  const auto it = map.find(name);
  if (it != map.end()) return *it->second;
  using Metric = typename Map::mapped_type::element_type;
  return *map.emplace(std::string(name), std::make_unique<Metric>())
              .first->second;
}

}  // namespace

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return get_or_create(counters_, name);
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return get_or_create(gauges_, name);
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return get_or_create(histograms_, name);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, metric] : counters_) {
    snap.counters.emplace_back(name, metric->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, metric] : gauges_) {
    snap.gauges.emplace_back(name, metric->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, metric] : histograms_) {
    snap.histograms.emplace_back(name, metric->snapshot());
  }
  return snap;
}

}  // namespace kcoup::obs
