#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace kcoup::obs {

/// One key=value attached to a span.  Fixed-size character buffers so
/// recording a span never allocates; oversized keys/values are truncated.
/// Deliberately no member initializers: a ScopedSpan embeds an array of
/// these, and zeroing it would put ~300 bytes of memset on the
/// tracing-disabled path.  annotate() NUL-terminates what it writes and
/// readers stop at the NUL, so the tail bytes are never interpreted.
struct SpanAnnotation {
  std::array<char, 24> key;
  std::array<char, 48> value;
};

/// One completed span.  `name` and `category` must be string literals (or
/// other static-duration strings): spans outlive the scopes that record
/// them, and storing pointers keeps the record path allocation-free.
struct Span {
  static constexpr std::size_t kMaxAnnotations = 4;

  const char* name = nullptr;
  const char* category = nullptr;
  std::uint64_t start_ns = 0;     ///< steady-clock ns since the tracer epoch
  std::uint64_t duration_ns = 0;
  std::uint32_t annotation_count = 0;
  std::array<SpanAnnotation, kMaxAnnotations> annotations;
};

/// Fixed-capacity per-thread span store.  The owning thread writes slots and
/// publishes them by bumping the atomic head; no lock is ever taken on the
/// record path.  When the ring wraps, the oldest spans are overwritten and
/// counted as dropped — tracing is a window onto recent activity, never a
/// source of unbounded memory growth.
///
/// Readers (the Chrome-trace exporter) must only run while writers are
/// quiescent: the process flushes traces after thread pools have been
/// drained and joined, which establishes the necessary happens-before.
class SpanRing {
 public:
  static constexpr std::size_t kCapacity = 8192;

  SpanRing() : slots_(kCapacity) {}

  /// The slot the next span should be written into (owner thread only).
  [[nodiscard]] Span& slot_for_write() {
    return slots_[head_.load(std::memory_order_relaxed) % kCapacity];
  }

  /// Publish the slot written by slot_for_write() (owner thread only).
  void publish() { head_.fetch_add(1, std::memory_order_release); }

  /// Spans published over this ring's lifetime (reader side).
  [[nodiscard]] std::uint64_t published() const {
    return head_.load(std::memory_order_acquire);
  }
  /// Spans still resident (the rest were overwritten by ring wrap).
  [[nodiscard]] std::uint64_t resident() const {
    const std::uint64_t n = published();
    return n < kCapacity ? n : kCapacity;
  }

  [[nodiscard]] std::uint32_t thread_id() const { return thread_id_; }

 private:
  friend class Tracer;

  std::vector<Span> slots_;
  std::atomic<std::uint64_t> head_{0};
  std::uint32_t thread_id_ = 0;       ///< small stable id assigned by Tracer
  std::atomic<bool> claimed_{false};  ///< freelist flag: a live thread owns it
};

/// Process-wide tracer: owns every thread's span ring, the enable flag, and
/// the Chrome trace-event exporter.
///
/// The hot path is designed so that when tracing is disabled the entire
/// instrumentation cost is one relaxed atomic load and a branch (verified by
/// bench/ext_trace_overhead.cpp).  When enabled, recording a span is a
/// steady-clock read at scope entry/exit plus a handful of stores into the
/// calling thread's ring — no locks, no allocation.
///
/// Rings are recycled: when a thread exits, its ring returns to a freelist
/// and the next new thread reuses it (claim/release are acquire/release, so
/// handoff is race-free).  Ring contents survive thread exit, which is what
/// lets a campaign export spans recorded by pool workers after the pool has
/// been destroyed.
class Tracer {
 public:
  /// The process-wide instance.
  static Tracer& instance();

  /// Turn span recording on.  The first enable() sets the trace epoch (span
  /// timestamps are relative to it).
  void enable();
  void disable();
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Steady-clock nanoseconds since the trace epoch.
  [[nodiscard]] std::uint64_t now_ns() const;

  /// The calling thread's ring, claiming (or creating) one on first use.
  /// Cached in a thread_local, so the amortised cost is a pointer read.
  [[nodiscard]] SpanRing* writer();

  /// Total spans published across all rings (resident or overwritten).
  [[nodiscard]] std::uint64_t spans_recorded() const;
  /// Spans lost to ring wrap, across all rings.
  [[nodiscard]] std::uint64_t spans_dropped() const;

  /// Serialize every resident span as Chrome trace-event JSON (the format
  /// chrome://tracing and Perfetto load).  Writers must be quiescent (pools
  /// drained / threads joined); output is deterministic for a given set of
  /// spans (events sorted by start time).
  void write_chrome_trace(std::ostream& out) const;

  /// write_chrome_trace() to `path` via temp-file + atomic rename; returns
  /// false (never throws) on I/O failure so exit paths can flush safely.
  [[nodiscard]] bool write_chrome_trace_file(const std::string& path) const;

  /// Drop every recorded span (writers must be quiescent).  The enable flag
  /// and epoch are unchanged.  Intended for tests and benches that measure
  /// several phases in one process.
  void clear();

 private:
  Tracer();

  mutable std::mutex rings_mutex_;
  std::vector<std::unique_ptr<SpanRing>> rings_;
  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  std::atomic<bool> epoch_set_{false};
};

class MetricsRegistry;

/// Mirror the tracer's span accounting into a registry so silent span loss
/// under load is visible wherever metrics are scraped:
/// "obs.trace.spans_recorded" and "obs.trace.dropped_spans" gauges (levels
/// of monotone tracer-side totals — gauges because the registry's counters
/// are add-only and the tracer already owns the canonical count).  The
/// server refreshes these on every stats/metrics read.
void export_tracer_metrics(MetricsRegistry& registry);

/// RAII span: construction samples the start time, destruction publishes the
/// span into the calling thread's ring.  When the tracer is disabled at
/// construction the object is inert — no clock read, no ring access — and
/// annotate() calls are no-ops.
///
///   {
///     obs::ScopedSpan span("task", "campaign");
///     span.annotate("key", to_string(task.key));
///     ...work...
///   }  // span recorded here
class ScopedSpan {
 public:
  /// `record == false` keeps the span inert regardless of the tracer state
  /// (e.g. simmpi records phase boundaries from rank 0 only).
  ScopedSpan(const char* name, const char* category, bool record = true)
      : name_(name), category_(category) {
    if (!record) return;
    Tracer& tracer = Tracer::instance();
    if (!tracer.enabled()) return;  // disabled: a load and this branch
    tracer_ = &tracer;
    start_ns_ = tracer.now_ns();
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() {
    if (tracer_ != nullptr) commit();
  }

  /// True when the span is actually recording (tracer was enabled).
  [[nodiscard]] bool active() const { return tracer_ != nullptr; }

  /// End the span now instead of at scope exit (idempotent; the destructor
  /// becomes a no-op).  Use when the interesting region ends mid-scope.
  void finish() {
    if (tracer_ != nullptr) {
      commit();
      tracer_ = nullptr;
    }
  }

  void annotate(const char* key, std::string_view value);
  void annotate(const char* key, std::uint64_t value);
  void annotate(const char* key, bool value);
  /// Without this overload a string literal would convert to bool (a
  /// standard conversion, preferred over the one to string_view).
  void annotate(const char* key, const char* value) {
    annotate(key, std::string_view(value));
  }

 private:
  void commit();

  const char* name_;
  const char* category_;
  Tracer* tracer_ = nullptr;
  std::uint64_t start_ns_ = 0;
  std::uint32_t annotation_count_ = 0;
  std::array<SpanAnnotation, Span::kMaxAnnotations> annotations_;
};

}  // namespace kcoup::obs
