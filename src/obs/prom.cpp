#include "obs/prom.hpp"

#include <cstdint>

#include "support/latency_histogram.hpp"
#include "support/num_format.hpp"

namespace kcoup::obs {

namespace {

using support::LatencyHistogram;

void append_sample(std::string& out, const std::string& name,
                   const char* type, const std::string& value) {
  out += "# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
  out += name;
  out += ' ';
  out += value;
  out += '\n';
}

void append_histogram(std::string& out, const std::string& name,
                      const LatencyHistogram& h) {
  out += "# TYPE ";
  out += name;
  out += " histogram\n";
  // One `le` boundary per octave keeps the series readable (29 lines, not
  // 448) while preserving the quantile resolution operators actually look
  // at on a dashboard; the exact sub-bucket detail stays available through
  // the stats op.  Buckets are cumulative, as the format requires.
  std::uint64_t cumulative = 0;
  for (std::size_t octave = 0;
       octave < LatencyHistogram::kBuckets / LatencyHistogram::kSubBuckets;
       ++octave) {
    for (std::size_t sub = 0; sub < LatencyHistogram::kSubBuckets; ++sub) {
      cumulative +=
          h.bucket_count(octave * LatencyHistogram::kSubBuckets + sub);
    }
    const double upper = LatencyHistogram::bucket_upper(
        (octave + 1) * LatencyHistogram::kSubBuckets - 1);
    out += name;
    out += "_bucket{le=\"";
    out += support::format_double(upper);
    out += "\"} ";
    out += std::to_string(cumulative);
    out += '\n';
  }
  out += name;
  out += "_bucket{le=\"+Inf\"} ";
  out += std::to_string(h.count());
  out += '\n';
  out += name;
  out += "_sum ";
  out += support::format_double(h.sum());
  out += '\n';
  out += name;
  out += "_count ";
  out += std::to_string(h.count());
  out += '\n';
}

}  // namespace

std::string prometheus_name(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (!out.empty() && out.front() >= '0' && out.front() <= '9') {
    out.insert(out.begin(), '_');
  }
  return out;
}

std::string render_prometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    append_sample(out, prometheus_name(name), "counter",
                  std::to_string(value));
  }
  for (const auto& [name, value] : snapshot.gauges) {
    append_sample(out, prometheus_name(name), "gauge",
                  support::format_double(value));
  }
  for (const auto& [name, histogram] : snapshot.histograms) {
    append_histogram(out, prometheus_name(name), histogram);
  }
  return out;
}

}  // namespace kcoup::obs
