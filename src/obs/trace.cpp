#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <ostream>

#include "obs/metrics.hpp"
#include "support/num_format.hpp"

namespace kcoup::obs {

namespace {

/// Truncating copy into a fixed annotation buffer, always NUL-terminated.
template <std::size_t N>
void copy_truncated(std::array<char, N>& dst, std::string_view src) {
  const std::size_t n = std::min(src.size(), N - 1);
  std::memcpy(dst.data(), src.data(), n);
  dst[n] = '\0';
}

/// JSON-escape an annotation value (control chars, quotes, backslashes).
/// Annotation buffers are small, so building a std::string here is cheap —
/// and this only runs at export time, never on the record path.
std::string json_escape(const char* s) {
  std::string out;
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

struct ExportEvent {
  const Span* span = nullptr;
  std::uint32_t tid = 0;
};

}  // namespace

// --- Tracer ------------------------------------------------------------------

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

void Tracer::enable() {
  // First enable pins the epoch so exported timestamps start near zero.
  if (!epoch_set_.exchange(true, std::memory_order_acq_rel)) {
    epoch_ = std::chrono::steady_clock::now();
  }
  enabled_.store(true, std::memory_order_release);
}

void Tracer::disable() { enabled_.store(false, std::memory_order_release); }

std::uint64_t Tracer::now_ns() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

SpanRing* Tracer::writer() {
  // One ring per live thread, cached after the first call.  The holder's
  // destructor releases the ring back to the freelist on thread exit; the
  // ring itself (and the spans in it) stay alive for export.
  struct RingHolder {
    SpanRing* ring = nullptr;
    ~RingHolder() {
      if (ring != nullptr) {
        ring->claimed_.store(false, std::memory_order_release);
      }
    }
  };
  static thread_local RingHolder holder;
  if (holder.ring != nullptr) return holder.ring;

  std::lock_guard<std::mutex> lock(rings_mutex_);
  for (const auto& ring : rings_) {
    bool expected = false;
    if (ring->claimed_.compare_exchange_strong(expected, true,
                                               std::memory_order_acq_rel)) {
      holder.ring = ring.get();
      return holder.ring;
    }
  }
  auto ring = std::make_unique<SpanRing>();
  ring->thread_id_ = static_cast<std::uint32_t>(rings_.size());
  ring->claimed_.store(true, std::memory_order_release);
  rings_.push_back(std::move(ring));
  holder.ring = rings_.back().get();
  return holder.ring;
}

std::uint64_t Tracer::spans_recorded() const {
  std::lock_guard<std::mutex> lock(rings_mutex_);
  std::uint64_t total = 0;
  for (const auto& ring : rings_) total += ring->published();
  return total;
}

std::uint64_t Tracer::spans_dropped() const {
  std::lock_guard<std::mutex> lock(rings_mutex_);
  std::uint64_t dropped = 0;
  for (const auto& ring : rings_) {
    dropped += ring->published() - ring->resident();
  }
  return dropped;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(rings_mutex_);
  for (const auto& ring : rings_) {
    ring->head_.store(0, std::memory_order_release);
  }
}

void Tracer::write_chrome_trace(std::ostream& out) const {
  // Chrome trace-event format: one complete ("ph":"X") event per span,
  // timestamps and durations in microseconds.  Events are sorted by start
  // time (then tid) so the same set of spans always serializes identically.
  std::vector<ExportEvent> events;
  {
    std::lock_guard<std::mutex> lock(rings_mutex_);
    for (const auto& ring : rings_) {
      const std::uint64_t published = ring->published();
      const std::uint64_t resident =
          published < SpanRing::kCapacity ? published : SpanRing::kCapacity;
      const std::uint64_t first = published - resident;
      for (std::uint64_t i = first; i < published; ++i) {
        const Span& span = ring->slots_[i % SpanRing::kCapacity];
        events.push_back(ExportEvent{&span, ring->thread_id_});
      }
    }
  }
  std::sort(events.begin(), events.end(),
            [](const ExportEvent& a, const ExportEvent& b) {
              if (a.span->start_ns != b.span->start_ns) {
                return a.span->start_ns < b.span->start_ns;
              }
              return a.tid < b.tid;
            });

  out << "{\"traceEvents\":[";
  bool first_event = true;
  for (const ExportEvent& e : events) {
    const Span& s = *e.span;
    if (!first_event) out << ",\n";
    first_event = false;
    out << "{\"ph\":\"X\",\"name\":\"" << json_escape(s.name)
        << "\",\"cat\":\"" << json_escape(s.category) << "\",\"ts\":"
        << support::format_double(static_cast<double>(s.start_ns) / 1000.0)
        << ",\"dur\":"
        << support::format_double(static_cast<double>(s.duration_ns) / 1000.0)
        << ",\"pid\":1,\"tid\":" << e.tid;
    if (s.annotation_count != 0) {
      out << ",\"args\":{";
      for (std::uint32_t a = 0; a < s.annotation_count; ++a) {
        if (a != 0) out << ',';
        out << '"' << json_escape(s.annotations[a].key.data()) << "\":\""
            << json_escape(s.annotations[a].value.data()) << '"';
      }
      out << '}';
    }
    out << '}';
  }
  out << "],\"displayTimeUnit\":\"ms\"}\n";
}

bool Tracer::write_chrome_trace_file(const std::string& path) const {
  // Temp-file + rename, mirroring CouplingDatabase::save_csv_file: a crash
  // mid-flush never leaves a truncated trace where a previous good one was.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return false;
    write_chrome_trace(out);
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

void export_tracer_metrics(MetricsRegistry& registry) {
  Tracer& tracer = Tracer::instance();
  registry.gauge("obs.trace.spans_recorded")
      .set(static_cast<double>(tracer.spans_recorded()));
  registry.gauge("obs.trace.dropped_spans")
      .set(static_cast<double>(tracer.spans_dropped()));
}

// --- ScopedSpan --------------------------------------------------------------

void ScopedSpan::annotate(const char* key, std::string_view value) {
  if (tracer_ == nullptr) return;
  if (annotation_count_ >= Span::kMaxAnnotations) return;  // extras dropped
  SpanAnnotation& a = annotations_[annotation_count_++];
  copy_truncated(a.key, key);
  copy_truncated(a.value, value);
}

void ScopedSpan::annotate(const char* key, std::uint64_t value) {
  if (tracer_ == nullptr) return;
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu",
                static_cast<unsigned long long>(value));
  annotate(key, std::string_view(buf));
}

void ScopedSpan::annotate(const char* key, bool value) {
  if (tracer_ == nullptr) return;
  annotate(key, value ? std::string_view("true") : std::string_view("false"));
}

void ScopedSpan::commit() {
  const std::uint64_t end_ns = tracer_->now_ns();
  SpanRing* ring = tracer_->writer();
  Span& slot = ring->slot_for_write();
  slot.name = name_;
  slot.category = category_;
  slot.start_ns = start_ns_;
  slot.duration_ns = end_ns >= start_ns_ ? end_ns - start_ns_ : 0;
  slot.annotation_count = annotation_count_;
  for (std::uint32_t i = 0; i < annotation_count_; ++i) {
    slot.annotations[i] = annotations_[i];
  }
  ring->publish();
}

}  // namespace kcoup::obs
