#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

#include "support/latency_histogram.hpp"

namespace kcoup::obs {

/// Rolling-window metric stores: a ring of one-second time buckets indexed
/// by `now_s % kSlots`, where `now_s` is a caller-supplied *monotonic*
/// second count (the server derives it from std::chrono::steady_clock, so a
/// wall-clock step can never smear or duplicate a window; tests drive it
/// directly for determinism).
///
/// Concurrency contract: each instance has exactly ONE writer (the server
/// keeps one per event-loop shard, written only by the shard thread) and
/// any number of readers.  Every slot field is an atomic, so reads are
/// race-free; a reader that overlaps the once-per-second slot recycle can
/// at worst attribute a handful of samples to the wrong edge bucket —
/// monitoring-grade accuracy, never a torn value and never a double count:
/// a sample lands in exactly one (slot, epoch) pair, and sum() counts a
/// slot iff its epoch lies inside the window.
///
/// The record path is a fixed-size array walk with relaxed atomics — no
/// locks, no allocation — matching the serve hot path's scratch/arena
/// no-allocation discipline.

/// Event counts per second, summed over a trailing window.
class WindowedCounter {
 public:
  /// 64 one-second slots: enough for the 60 s window plus recycle slack.
  static constexpr std::size_t kSlots = 64;

  /// Record `n` events at monotonic second `now_s` (single writer).
  void add(std::int64_t now_s, std::uint64_t n = 1) {
    Slot& slot = slots_[index(now_s)];
    if (slot.epoch.load(std::memory_order_relaxed) != now_s) {
      slot.count.store(0, std::memory_order_relaxed);
      slot.epoch.store(now_s, std::memory_order_release);
    }
    slot.count.fetch_add(n, std::memory_order_relaxed);
  }

  /// Events in the window (now_s - window_s, now_s] — the current
  /// (partial) second plus the window_s - 1 before it.  Any thread.
  [[nodiscard]] std::uint64_t sum(std::int64_t now_s,
                                  std::int64_t window_s) const {
    std::uint64_t total = 0;
    for (const Slot& slot : slots_) {
      const std::int64_t e = slot.epoch.load(std::memory_order_acquire);
      if (e > now_s - window_s && e <= now_s) {
        total += slot.count.load(std::memory_order_relaxed);
      }
    }
    return total;
  }

 private:
  struct Slot {
    std::atomic<std::int64_t> epoch{-1};
    std::atomic<std::uint64_t> count{0};
  };
  [[nodiscard]] static std::size_t index(std::int64_t now_s) {
    return static_cast<std::size_t>(now_s) % kSlots;
  }
  std::array<Slot, kSlots> slots_{};
};

/// Latency distribution per second: each slot carries the same log-bucket
/// layout as support::LatencyHistogram, stored as atomics so readers can
/// merge a trailing window while the writer records.  collect() folds the
/// in-window slots into a LatencyHistogram (via add_bucket), which supplies
/// the rolling p50/p95/p99.
class WindowedHistogram {
 public:
  static constexpr std::size_t kSlots = WindowedCounter::kSlots;
  static constexpr std::size_t kBuckets = support::LatencyHistogram::kBuckets;

  /// Record one sample at monotonic second `now_s` (single writer).
  void record(std::int64_t now_s, double seconds) {
    if (!(seconds >= 0.0)) return;  // NaN / negative: drop, never corrupt
    Slot& slot = slots_[index(now_s)];
    if (slot.epoch.load(std::memory_order_relaxed) != now_s) {
      for (auto& c : slot.counts) c.store(0, std::memory_order_relaxed);
      slot.epoch.store(now_s, std::memory_order_release);
    }
    const std::size_t bucket =
        support::LatencyHistogram::bucket_index(seconds);
    slot.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  }

  /// Merge the window (now_s - window_s, now_s] into `*out` (not cleared
  /// first, so several shards' windows can fold into one histogram).  Any
  /// thread.
  void collect(std::int64_t now_s, std::int64_t window_s,
               support::LatencyHistogram* out) const {
    for (const Slot& slot : slots_) {
      const std::int64_t e = slot.epoch.load(std::memory_order_acquire);
      if (e <= now_s - window_s || e > now_s) continue;
      for (std::size_t b = 0; b < kBuckets; ++b) {
        out->add_bucket(b, slot.counts[b].load(std::memory_order_relaxed));
      }
    }
  }

 private:
  struct Slot {
    std::atomic<std::int64_t> epoch{-1};
    std::array<std::atomic<std::uint32_t>, kBuckets> counts{};
  };
  [[nodiscard]] static std::size_t index(std::int64_t now_s) {
    return static_cast<std::size_t>(now_s) % kSlots;
  }
  std::array<Slot, kSlots> slots_{};
};

}  // namespace kcoup::obs
