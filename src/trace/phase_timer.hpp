#pragma once

#include <map>
#include <string>
#include <string_view>

#include "trace/stats.hpp"

namespace kcoup::trace {

/// Accumulates per-phase (per-kernel) time samples by name.
///
/// The NPB applications report one entry per kernel; the measurement harness
/// reads the phase registry to recover per-kernel isolated times.
class PhaseRegistry {
 public:
  void record(std::string_view phase, double seconds) {
    phases_[std::string(phase)].add(seconds);
  }

  [[nodiscard]] const RunningStats* find(std::string_view phase) const {
    auto it = phases_.find(std::string(phase));
    return it == phases_.end() ? nullptr : &it->second;
  }

  [[nodiscard]] const std::map<std::string, RunningStats>& phases() const {
    return phases_;
  }

  void clear() { phases_.clear(); }

 private:
  std::map<std::string, RunningStats> phases_;
};

}  // namespace kcoup::trace
