#pragma once

#include <chrono>
#include <ctime>

namespace kcoup::trace {

/// Per-thread CPU-time stopwatch (CLOCK_THREAD_CPUTIME_ID).
///
/// Measures only the CPU time consumed by the calling thread — time spent
/// blocked (in a simmpi receive, or descheduled while another rank thread
/// runs on the same core) is excluded.  This is what makes host-measured
/// multi-rank studies meaningful on machines with fewer cores than ranks.
class ThreadCpuTimer {
 public:
  ThreadCpuTimer() : start_(now()) {}

  void restart() { start_ = now(); }

  /// Seconds of this thread's CPU time since construction/restart.
  [[nodiscard]] double elapsed_s() const { return now() - start_; }

 private:
  static double now() {
    timespec ts{};
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
  }
  double start_;
};

/// Host wall-clock stopwatch (std::chrono::steady_clock).
///
/// Used only by the *measured* execution path (real kernels timed on the
/// host); all paper-table experiments run against VirtualClock instead.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void restart() { start_ = clock::now(); }

  /// Seconds elapsed since construction or last restart().
  [[nodiscard]] double elapsed_s() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace kcoup::trace
