#pragma once

#include <cmath>
#include <cstddef>
#include <limits>
#include <span>

namespace kcoup::trace {

/// Streaming sample statistics (Welford's algorithm).
///
/// Used by the measurement harness to summarise repeated kernel timings
/// (the paper averages each kernel over 50 repetitions) without storing the
/// individual samples.
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  void merge(const RunningStats& other) noexcept {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    mean_ += delta * nb / (na + nb);
    m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
    n_ += other.n_;
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double sum() const noexcept {
    return mean_ * static_cast<double>(n_);
  }
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  [[nodiscard]] double min() const noexcept {
    return n_ ? min_ : std::numeric_limits<double>::quiet_NaN();
  }
  [[nodiscard]] double max() const noexcept {
    return n_ ? max_ : std::numeric_limits<double>::quiet_NaN();
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Convenience: summarise a contiguous sample set.
[[nodiscard]] inline RunningStats summarize(std::span<const double> xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s;
}

/// Relative error |predicted - actual| / actual, the accuracy metric used in
/// every evaluation table of the paper.  Returns +inf for actual == 0.
[[nodiscard]] inline double relative_error(double predicted,
                                           double actual) noexcept {
  if (actual == 0.0) return std::numeric_limits<double>::infinity();
  return std::fabs(predicted - actual) / std::fabs(actual);
}

}  // namespace kcoup::trace
