#pragma once

#include <cassert>
#include <cstdint>

namespace kcoup::trace {

/// A deterministic simulated clock measured in seconds.
///
/// All simulated components (machine model, message-passing runtime) charge
/// time against a VirtualClock instead of reading the host clock, which makes
/// every experiment bit-reproducible regardless of host load.  The clock is
/// monotone: time can only be advanced forward or jumped forward to an
/// absolute instant.
class VirtualClock {
 public:
  VirtualClock() = default;

  /// Current simulated time in seconds since construction/reset.
  [[nodiscard]] double now() const noexcept { return now_s_; }

  /// Advance the clock by a non-negative duration (seconds).
  void advance(double seconds) noexcept {
    assert(seconds >= 0.0 && "VirtualClock cannot run backwards");
    if (seconds > 0.0) now_s_ += seconds;
  }

  /// Jump forward to an absolute instant.  Instants in the past are ignored
  /// (the clock stays monotone), which is the behaviour a simulated rank
  /// needs when synchronising with a peer that is already ahead.
  void advance_to(double instant_s) noexcept {
    if (instant_s > now_s_) now_s_ = instant_s;
  }

  /// Reset to t = 0.  Only meaningful between independent experiments.
  void reset() noexcept { now_s_ = 0.0; }

 private:
  double now_s_ = 0.0;
};

}  // namespace kcoup::trace
