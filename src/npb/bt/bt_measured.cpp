#include "npb/bt/bt_measured.hpp"

#include <mutex>

#include "trace/stopwatch.hpp"

namespace kcoup::npb::bt {
namespace {

/// Run a kernel body and charge this thread's CPU time to the rank clock.
template <typename Fn>
void timed(simmpi::Comm& comm, Fn&& fn) {
  trace::ThreadCpuTimer t;
  fn();
  comm.advance(t.elapsed_s());
}

}  // namespace

coupling::ParallelLoopApp make_measured_bt_app(BtRank& rank, int iterations,
                                               simmpi::Comm& comm) {
  coupling::ParallelLoopApp app;
  app.prologue = {
      {"Initialization", [&rank, &comm] { timed(comm, [&] { rank.initialize(); }); }}};
  app.loop = {
      {"Copy_Faces", [&rank, &comm] { timed(comm, [&] { rank.copy_faces(); }); }},
      {"X_Solve", [&rank, &comm] { timed(comm, [&] { rank.x_solve(); }); }},
      {"Y_Solve", [&rank, &comm] { timed(comm, [&] { rank.y_solve(); }); }},
      {"Z_Solve", [&rank, &comm] { timed(comm, [&] { rank.z_solve(); }); }},
      {"Add", [&rank, &comm] { timed(comm, [&] { rank.add(); }); }},
  };
  app.epilogue = {
      {"Final", [&rank, &comm] { timed(comm, [&] { (void)rank.final_verify(); }); }}};
  app.iterations = iterations;
  // Reset restores start-of-run numeric state; host caches cannot be reset,
  // which is part of what makes measured couplings noisy.
  app.reset = [&rank] { rank.initialize(); };
  return app;
}

coupling::ParallelStudyResult run_bt_measured_study(
    const BtConfig& config, int ranks, const simmpi::NetworkParams& net,
    const coupling::StudyOptions& study) {
  coupling::ParallelStudyResult result;
  std::mutex mu;
  (void)simmpi::run(ranks, net, [&](simmpi::Comm& comm) {
    BtRank rank(config, comm);
    const coupling::ParallelLoopApp app =
        make_measured_bt_app(rank, config.iterations, comm);
    const coupling::ParallelStudyResult r =
        coupling::run_parallel_study(comm, app, study);
    if (comm.rank() == 0) {
      std::lock_guard lock(mu);
      result = r;
    }
  });
  return result;
}

}  // namespace kcoup::npb::bt
