#pragma once

#include <memory>

#include "machine/config.hpp"
#include "npb/common/modeled_app.hpp"
#include "npb/common/problem.hpp"

namespace kcoup::npb::bt {

/// Structural constants of the BT kernels, derived from the numeric port in
/// bt_app.cpp (operation and traffic counts per grid point).  Exposed so
/// tests can cross-check them and ablation benches can perturb them.
struct BtWorkConstants {
  double flops_rhs_per_point = 135;    ///< copy_faces: stencil + coupling
  double flops_solve_per_point = 935;  ///< block assembly + block Thomas
  double flops_add_per_point = 5;
  double flops_init_per_point = 250;
  double flops_final_per_point = 60;
  std::size_t comp_bytes = 5 * sizeof(double);        ///< one field, per point
  std::size_t state_bytes = 30 * sizeof(double);      ///< BlockTriState
  std::size_t fwd_msg_doubles = 30;  ///< per line, forward pipeline payload
  std::size_t bwd_msg_doubles = 5;   ///< per line, backward pipeline payload
};

/// Build the modeled BT application (the paper's seven kernels pricing their
/// WorkProfiles on one representative interior rank of `ranks` total) for a
/// problem class on a machine configuration.
///
/// The main loop is {Copy_Faces, X_Solve, Y_Solve, Z_Solve, Add} as in §4.1;
/// Initialization and Final run once.  Region sizes, traffic, data-flow
/// edges and message patterns mirror bt_app.cpp: x lines are rank-local, y
/// and z solves are distributed pipelined block-Thomas sweeps.
[[nodiscard]] std::unique_ptr<ModeledApp> make_modeled_bt(
    ProblemClass cls, int ranks, machine::MachineConfig config,
    const BtWorkConstants& k = {});

/// Convenience overload for explicit grid size / iteration count (used by
/// the coupling-transition sweep bench).
[[nodiscard]] std::unique_ptr<ModeledApp> make_modeled_bt_grid(
    int n, int iterations, int ranks, machine::MachineConfig config,
    const BtWorkConstants& k = {});

/// Compute/traffic-only WorkProfiles of the seven BT kernels for one rank's
/// local extents (nx, ny, nz), with regions registered on `m`.  No messages,
/// synchronisation or imbalance annotations: the representative-rank model
/// (make_modeled_bt*) adds the analytic communication model on top, while
/// the timed parallel path (bt_timed.hpp) performs real simmpi messaging
/// instead.
struct BtKernelProfiles {
  machine::WorkProfile init, copy_faces, x_solve, y_solve, z_solve, add, final;
};
[[nodiscard]] BtKernelProfiles bt_kernel_profiles(machine::Machine& m, int nx,
                                                  int ny, int nz,
                                                  const BtWorkConstants& k = {});

}  // namespace kcoup::npb::bt
