#pragma once

#include <vector>

#include "npb/common/blocktri.hpp"
#include "npb/common/decomp.hpp"
#include "npb/common/field.hpp"
#include "npb/common/problem.hpp"
#include "npb/common/stencil.hpp"
#include "simmpi/simmpi.hpp"

namespace kcoup::npb::bt {

/// Configuration of the BT port.
///
/// Our BT keeps the paper's seven-kernel decomposition and the ADI
/// block-tridiagonal structure of NPB BT — three sweeps of 5x5
/// block-tridiagonal line solves, one per dimension, between a right-hand-
/// side computation with face exchanges and a solution update — applied to
/// the manufactured coupled elliptic system of npb/common/stencil.hpp
/// instead of the Navier-Stokes RHS (DESIGN.md §2).  The jacobian diagonal
/// blocks depend on the current solution (gamma term), so the per-iteration
/// lhs construction work of the original is preserved.
struct BtConfig {
  int n = 12;           ///< global cubic grid extent
  int iterations = 60;  ///< main-loop iterations
  double tau = 0.4;     ///< pseudo-time step of the ADI iteration
  double gamma = 0.05;  ///< strength of the u-dependent jacobian diagonal
  OperatorSpec op;      ///< the manufactured operator
};

/// Per-rank BT solver: state plus the paper's seven kernels as methods.
/// The main loop executes copy_faces .. add; initialize runs once before,
/// final_verify once after (paper §4.1).
class BtRank {
 public:
  BtRank(const BtConfig& config, simmpi::Comm& comm);

  // Kernel 1: INITIALIZATION — manufactured forcing, perturbed initial u,
  // analytic Dirichlet ghost values.
  void initialize();
  // Kernel 2: COPY_FACES — halo exchange of u, then rhs = tau (f - A u).
  void copy_faces();
  // Kernels 3-5: block-tridiagonal line solves updating rhs in place.
  // x is local to every rank; y and z are distributed pipelined solves.
  void x_solve();
  void y_solve();
  void z_solve();
  // Kernel 6: ADD — u += rhs.
  void add();
  // Kernel 7: FINAL — global max error vs the manufactured solution.
  double final_verify();

  /// Global RMS residual ||f - A u||; synchronising diagnostic.
  double residual_norm();

  [[nodiscard]] const BtConfig& config() const { return config_; }
  [[nodiscard]] const Field5& u() const { return u_; }
  [[nodiscard]] const SquareDecomp::RankLayout& layout() const {
    return layout_;
  }

 private:
  void exchange_halo();
  void fill_analytic_ghosts();
  /// Build the block-tridiagonal row for local line position `m` along
  /// direction `dir` (0=x,1=y,2=z) at the line anchored by (i,j,k).
  [[nodiscard]] BlockTriRow make_row(int dir, int global_m, int global_n,
                                     const Vec5& u_point, double coeff) const;

  BtConfig config_;
  simmpi::Comm* comm_;
  SquareDecomp decomp_;
  SquareDecomp::RankLayout layout_;
  int nx_, ny_, nz_;  // local interior extents

  Field5 u_;
  Field5 rhs_;
  Field5 forcing_;
  Block5 coupling_;

  // Reusable solve scratch (the original's lhs arrays).
  std::vector<BlockTriRow> rows_;
  std::vector<BlockTriState> states_;
  std::vector<Vec5> xline_;
  std::vector<double> msg_fwd_, msg_bwd_;
};

/// Result of one full BT run.
struct BtRunResult {
  double final_error = 0.0;    ///< max |u - u*| after the run
  double initial_residual = 0.0;
  double final_residual = 0.0;
  simmpi::RunResult run;
};

/// Execute the complete benchmark (initialize, iterate, verify) on `ranks`
/// simmpi ranks.
[[nodiscard]] BtRunResult run_bt(const BtConfig& config, int ranks,
                                 const simmpi::NetworkParams& net = {});

}  // namespace kcoup::npb::bt
