#include "npb/bt/bt_app.hpp"

#include <cmath>
#include <cstring>
#include <mutex>
#include <stdexcept>

namespace kcoup::npb::bt {
namespace {

// Message tags (direction of travel).
constexpr int kTagYPlus = 101, kTagYMinus = 102;
constexpr int kTagZPlus = 103, kTagZMinus = 104;
constexpr int kTagYFwd = 111, kTagYBwd = 112;
constexpr int kTagZFwd = 113, kTagZBwd = 114;

constexpr std::size_t kStateDoubles = 30;  // Block5 (25) + Vec5 (5)

void pack_state(const BlockTriState& s, double* out) {
  std::memcpy(out, s.ctil.data(), 25 * sizeof(double));
  std::memcpy(out + 25, s.rtil.data(), 5 * sizeof(double));
}

BlockTriState unpack_state(const double* in) {
  BlockTriState s;
  std::memcpy(s.ctil.data(), in, 25 * sizeof(double));
  std::memcpy(s.rtil.data(), in + 25, 5 * sizeof(double));
  return s;
}

/// Deterministic smooth perturbation, a function of global indices only so
/// runs are identical for every rank count.
double perturbation(int gi, int gj, int gk) {
  return 0.3 * std::sin(12.9898 * gi + 78.233 * gj + 37.719 * gk);
}

}  // namespace

BtRank::BtRank(const BtConfig& config, simmpi::Comm& comm)
    : config_(config),
      comm_(&comm),
      decomp_(comm.size()),
      layout_(decomp_.layout(comm.rank(), config.n, config.n)),
      nx_(config.n),
      ny_(layout_.y.count),
      nz_(layout_.z.count),
      u_(nx_, ny_, nz_, 1),
      rhs_(nx_, ny_, nz_, 1),
      forcing_(nx_, ny_, nz_, 1),
      coupling_(OperatorSpec::coupling()) {
  if (config_.n < 3) throw std::invalid_argument("BT: grid too small");
  const std::size_t max_lines = static_cast<std::size_t>(nx_) *
                                static_cast<std::size_t>(std::max(ny_, nz_));
  const std::size_t max_len = static_cast<std::size_t>(
      std::max(nx_, std::max(ny_, nz_)));
  rows_.resize(max_len);
  xline_.resize(max_len);
  states_.resize(max_lines * max_len);
  msg_fwd_.resize(max_lines * kStateDoubles);
  msg_bwd_.resize(max_lines * 5);
}

BlockTriRow BtRank::make_row(int /*dir*/, int global_m, int global_n,
                             const Vec5& u_point, double coeff) const {
  const double tau = config_.tau;
  BlockTriRow row;
  Block5 off{};
  for (std::size_t e = 0; e < 25; ++e) {
    off[e] = -tau * 0.05 * coupling_[e];
  }
  for (int i = 0; i < 5; ++i) {
    off[static_cast<std::size_t>(i * 5 + i)] -= tau * coeff;
  }
  if (global_m > 0) row.a = off;
  if (global_m < global_n - 1) row.c = off;

  Block5 b{};
  for (std::size_t e = 0; e < 25; ++e) {
    b[e] = tau * (config_.op.eps / 3.0) * coupling_[e];
  }
  for (int i = 0; i < 5; ++i) {
    const auto d = static_cast<std::size_t>(i * 5 + i);
    b[d] += 1.0 + 2.0 * tau * coeff +
            tau * config_.gamma * u_point[static_cast<std::size_t>(i)];
  }
  row.b = b;
  return row;
}

void BtRank::fill_analytic_ghosts() {
  const int n = config_.n;
  auto set_exact = [&](int i, int j, int k) {
    const int gi = i;
    const int gj = layout_.y.begin + j;
    const int gk = layout_.z.begin + k;
    u_.set(i, j, k,
           exact_solution(grid_coord(gi, n), grid_coord(gj, n),
                          grid_coord(gk, n)));
  };
  // x ghosts (never exchanged: x is not decomposed).
  for (int k = 0; k < nz_; ++k) {
    for (int j = 0; j < ny_; ++j) {
      set_exact(-1, j, k);
      set_exact(nx_, j, k);
    }
  }
  // Physical y/z boundary ghosts (interior ones get overwritten by halos).
  for (int k = 0; k < nz_; ++k) {
    for (int i = 0; i < nx_; ++i) {
      if (layout_.y_prev < 0) set_exact(i, -1, k);
      if (layout_.y_next < 0) set_exact(i, ny_, k);
    }
  }
  for (int j = 0; j < ny_; ++j) {
    for (int i = 0; i < nx_; ++i) {
      if (layout_.z_prev < 0) set_exact(i, j, -1);
      if (layout_.z_next < 0) set_exact(i, j, nz_);
    }
  }
}

void BtRank::initialize() {
  const int n = config_.n;
  // Exact solution + perturbation in the interior.
  for (int k = 0; k < nz_; ++k) {
    for (int j = 0; j < ny_; ++j) {
      for (int i = 0; i < nx_; ++i) {
        const int gi = i, gj = layout_.y.begin + j, gk = layout_.z.begin + k;
        Vec5 v = exact_solution(grid_coord(gi, n), grid_coord(gj, n),
                                grid_coord(gk, n));
        const double p = perturbation(gi, gj, gk);
        for (std::size_t c = 0; c < 5; ++c) v[c] += p;
        u_.set(i, j, k, v);
      }
    }
  }
  fill_analytic_ghosts();

  // Manufactured forcing f = A(u*), evaluated on an exact-filled field so
  // the discrete operator's fixed point is exactly u*.
  Field5 exact(nx_, ny_, nz_, 1);
  for (int k = -1; k <= nz_; ++k) {
    for (int j = -1; j <= ny_; ++j) {
      for (int i = -1; i <= nx_; ++i) {
        const int gi = i, gj = layout_.y.begin + j, gk = layout_.z.begin + k;
        exact.set(i, j, k,
                  exact_solution(grid_coord(gi, n), grid_coord(gj, n),
                                 grid_coord(gk, n)));
      }
    }
  }
  for (int k = 0; k < nz_; ++k) {
    for (int j = 0; j < ny_; ++j) {
      for (int i = 0; i < nx_; ++i) {
        forcing_.set(i, j, k,
                     apply_operator(exact, i, j, k, config_.op, coupling_));
      }
    }
  }
}

void BtRank::exchange_halo() {
  // Pack a y face (nx * nz points) or z face (nx * ny points).
  auto pack_y = [&](int j, std::vector<double>& buf) {
    buf.resize(static_cast<std::size_t>(nx_) * static_cast<std::size_t>(nz_) * 5);
    std::size_t p = 0;
    for (int k = 0; k < nz_; ++k) {
      for (int i = 0; i < nx_; ++i) {
        const Vec5 v = u_.get(i, j, k);
        for (std::size_t c = 0; c < 5; ++c) buf[p++] = v[c];
      }
    }
  };
  auto unpack_y = [&](int j, const std::vector<double>& buf) {
    std::size_t p = 0;
    for (int k = 0; k < nz_; ++k) {
      for (int i = 0; i < nx_; ++i) {
        Vec5 v;
        for (std::size_t c = 0; c < 5; ++c) v[c] = buf[p++];
        u_.set(i, j, k, v);
      }
    }
  };
  auto pack_z = [&](int k, std::vector<double>& buf) {
    buf.resize(static_cast<std::size_t>(nx_) * static_cast<std::size_t>(ny_) * 5);
    std::size_t p = 0;
    for (int j = 0; j < ny_; ++j) {
      for (int i = 0; i < nx_; ++i) {
        const Vec5 v = u_.get(i, j, k);
        for (std::size_t c = 0; c < 5; ++c) buf[p++] = v[c];
      }
    }
  };
  auto unpack_z = [&](int k, const std::vector<double>& buf) {
    std::size_t p = 0;
    for (int j = 0; j < ny_; ++j) {
      for (int i = 0; i < nx_; ++i) {
        Vec5 v;
        for (std::size_t c = 0; c < 5; ++c) v[c] = buf[p++];
        u_.set(i, j, k, v);
      }
    }
  };

  std::vector<double> sy0, sy1, sz0, sz1, r;
  // Sends first (buffered), then receives: deadlock-free symmetric exchange.
  if (layout_.y_prev >= 0) {
    pack_y(0, sy0);
    comm_->send<double>(layout_.y_prev, kTagYMinus, sy0);
  }
  if (layout_.y_next >= 0) {
    pack_y(ny_ - 1, sy1);
    comm_->send<double>(layout_.y_next, kTagYPlus, sy1);
  }
  if (layout_.z_prev >= 0) {
    pack_z(0, sz0);
    comm_->send<double>(layout_.z_prev, kTagZMinus, sz0);
  }
  if (layout_.z_next >= 0) {
    pack_z(nz_ - 1, sz1);
    comm_->send<double>(layout_.z_next, kTagZPlus, sz1);
  }
  if (layout_.y_prev >= 0) {
    r.resize(static_cast<std::size_t>(nx_) * static_cast<std::size_t>(nz_) * 5);
    comm_->recv<double>(layout_.y_prev, kTagYPlus, r);
    unpack_y(-1, r);
  }
  if (layout_.y_next >= 0) {
    r.resize(static_cast<std::size_t>(nx_) * static_cast<std::size_t>(nz_) * 5);
    comm_->recv<double>(layout_.y_next, kTagYMinus, r);
    unpack_y(ny_, r);
  }
  if (layout_.z_prev >= 0) {
    r.resize(static_cast<std::size_t>(nx_) * static_cast<std::size_t>(ny_) * 5);
    comm_->recv<double>(layout_.z_prev, kTagZPlus, r);
    unpack_z(-1, r);
  }
  if (layout_.z_next >= 0) {
    r.resize(static_cast<std::size_t>(nx_) * static_cast<std::size_t>(ny_) * 5);
    comm_->recv<double>(layout_.z_next, kTagZMinus, r);
    unpack_z(nz_, r);
  }
}

void BtRank::copy_faces() {
  exchange_halo();
  const double tau = config_.tau;
  for (int k = 0; k < nz_; ++k) {
    for (int j = 0; j < ny_; ++j) {
      for (int i = 0; i < nx_; ++i) {
        const Vec5 au = apply_operator(u_, i, j, k, config_.op, coupling_);
        const Vec5 f = forcing_.get(i, j, k);
        Vec5 r;
        for (std::size_t c = 0; c < 5; ++c) r[c] = tau * (f[c] - au[c]);
        rhs_.set(i, j, k, r);
      }
    }
  }
}

void BtRank::x_solve() {
  const int n = config_.n;
  auto rows = std::span(rows_).first(static_cast<std::size_t>(nx_));
  auto states = std::span(states_).first(static_cast<std::size_t>(nx_));
  auto x = std::span(xline_).first(static_cast<std::size_t>(nx_));
  for (int k = 0; k < nz_; ++k) {
    for (int j = 0; j < ny_; ++j) {
      for (int i = 0; i < nx_; ++i) {
        BlockTriRow row = make_row(0, i, n, u_.get(i, j, k), config_.op.cx);
        row.r = rhs_.get(i, j, k);
        rows_[static_cast<std::size_t>(i)] = row;
      }
      if (!blocktri_solve_line(rows, x, states)) {
        throw std::runtime_error("BT x_solve: singular pivot block");
      }
      for (int i = 0; i < nx_; ++i) {
        rhs_.set(i, j, k, xline_[static_cast<std::size_t>(i)]);
      }
    }
  }
}

void BtRank::y_solve() {
  const int n = config_.n;
  const std::size_t lines =
      static_cast<std::size_t>(nx_) * static_cast<std::size_t>(nz_);
  const auto len = static_cast<std::size_t>(ny_);

  // Forward sweep (pipelined rank order along +y).
  const bool have_prev = layout_.y_prev >= 0;
  const bool have_next = layout_.y_next >= 0;
  if (have_prev) {
    comm_->recv<double>(layout_.y_prev, kTagYFwd,
                        std::span(msg_fwd_).first(lines * kStateDoubles));
  }
  std::size_t line = 0;
  for (int k = 0; k < nz_; ++k) {
    for (int i = 0; i < nx_; ++i, ++line) {
      for (int j = 0; j < ny_; ++j) {
        BlockTriRow row = make_row(1, layout_.y.begin + j, n, u_.get(i, j, k),
                                   config_.op.cy);
        row.r = rhs_.get(i, j, k);
        rows_[static_cast<std::size_t>(j)] = row;
      }
      BlockTriState prev;
      const BlockTriState* prev_ptr = nullptr;
      if (have_prev) {
        prev = unpack_state(&msg_fwd_[line * kStateDoubles]);
        prev_ptr = &prev;
      }
      BlockTriState last;
      auto states = std::span(states_).subspan(line * len, len);
      if (!blocktri_forward(std::span(rows_).first(len), prev_ptr, states,
                            last)) {
        throw std::runtime_error("BT y_solve: singular pivot block");
      }
      pack_state(last, &msg_fwd_[line * kStateDoubles]);
    }
  }
  if (have_next) {
    comm_->send<double>(layout_.y_next, kTagYFwd,
                        std::span(msg_fwd_).first(lines * kStateDoubles));
  }

  // Backward sweep (reverse rank order).
  if (have_next) {
    comm_->recv<double>(layout_.y_next, kTagYBwd,
                        std::span(msg_bwd_).first(lines * 5));
  } else {
    std::fill(msg_bwd_.begin(), msg_bwd_.end(), 0.0);
  }
  // Walk lines in reverse: the states written last in the forward phase are
  // consumed first, keeping the read-back cache-pipelined.
  for (int k = nz_ - 1; k >= 0; --k) {
    for (int i = nx_ - 1; i >= 0; --i) {
      line = static_cast<std::size_t>(k) * static_cast<std::size_t>(nx_) +
             static_cast<std::size_t>(i);
      Vec5 xnext;
      std::memcpy(xnext.data(), &msg_bwd_[line * 5], 5 * sizeof(double));
      auto states = std::span(states_).subspan(line * len, len);
      auto x = std::span(xline_).first(len);
      const Vec5 xfirst = blocktri_backward(states, xnext, x);
      for (int j = 0; j < ny_; ++j) {
        rhs_.set(i, j, k, xline_[static_cast<std::size_t>(j)]);
      }
      std::memcpy(&msg_bwd_[line * 5], xfirst.data(), 5 * sizeof(double));
    }
  }
  if (have_prev) {
    comm_->send<double>(layout_.y_prev, kTagYBwd,
                        std::span(msg_bwd_).first(lines * 5));
  }
}

void BtRank::z_solve() {
  const int n = config_.n;
  const std::size_t lines =
      static_cast<std::size_t>(nx_) * static_cast<std::size_t>(ny_);
  const auto len = static_cast<std::size_t>(nz_);

  const bool have_prev = layout_.z_prev >= 0;
  const bool have_next = layout_.z_next >= 0;
  if (have_prev) {
    comm_->recv<double>(layout_.z_prev, kTagZFwd,
                        std::span(msg_fwd_).first(lines * kStateDoubles));
  }
  std::size_t line = 0;
  for (int j = 0; j < ny_; ++j) {
    for (int i = 0; i < nx_; ++i, ++line) {
      for (int k = 0; k < nz_; ++k) {
        BlockTriRow row = make_row(2, layout_.z.begin + k, n, u_.get(i, j, k),
                                   config_.op.cz);
        row.r = rhs_.get(i, j, k);
        rows_[static_cast<std::size_t>(k)] = row;
      }
      BlockTriState prev;
      const BlockTriState* prev_ptr = nullptr;
      if (have_prev) {
        prev = unpack_state(&msg_fwd_[line * kStateDoubles]);
        prev_ptr = &prev;
      }
      BlockTriState last;
      auto states = std::span(states_).subspan(line * len, len);
      if (!blocktri_forward(std::span(rows_).first(len), prev_ptr, states,
                            last)) {
        throw std::runtime_error("BT z_solve: singular pivot block");
      }
      pack_state(last, &msg_fwd_[line * kStateDoubles]);
    }
  }
  if (have_next) {
    comm_->send<double>(layout_.z_next, kTagZFwd,
                        std::span(msg_fwd_).first(lines * kStateDoubles));
  }

  if (have_next) {
    comm_->recv<double>(layout_.z_next, kTagZBwd,
                        std::span(msg_bwd_).first(lines * 5));
  } else {
    std::fill(msg_bwd_.begin(), msg_bwd_.end(), 0.0);
  }
  // Reverse line order: see y_solve.
  for (int j = ny_ - 1; j >= 0; --j) {
    for (int i = nx_ - 1; i >= 0; --i) {
      line = static_cast<std::size_t>(j) * static_cast<std::size_t>(nx_) +
             static_cast<std::size_t>(i);
      Vec5 xnext;
      std::memcpy(xnext.data(), &msg_bwd_[line * 5], 5 * sizeof(double));
      auto states = std::span(states_).subspan(line * len, len);
      auto x = std::span(xline_).first(len);
      const Vec5 xfirst = blocktri_backward(states, xnext, x);
      for (int k = 0; k < nz_; ++k) {
        rhs_.set(i, j, k, xline_[static_cast<std::size_t>(k)]);
      }
      std::memcpy(&msg_bwd_[line * 5], xfirst.data(), 5 * sizeof(double));
    }
  }
  if (have_prev) {
    comm_->send<double>(layout_.z_prev, kTagZBwd,
                        std::span(msg_bwd_).first(lines * 5));
  }
}

void BtRank::add() {
  for (int k = 0; k < nz_; ++k) {
    for (int j = 0; j < ny_; ++j) {
      for (int i = 0; i < nx_; ++i) {
        u_.add(i, j, k, rhs_.get(i, j, k));
      }
    }
  }
}

double BtRank::final_verify() {
  const int n = config_.n;
  double max_err = 0.0;
  for (int k = 0; k < nz_; ++k) {
    for (int j = 0; j < ny_; ++j) {
      for (int i = 0; i < nx_; ++i) {
        const int gi = i, gj = layout_.y.begin + j, gk = layout_.z.begin + k;
        const Vec5 ex = exact_solution(grid_coord(gi, n), grid_coord(gj, n),
                                       grid_coord(gk, n));
        const Vec5 uv = u_.get(i, j, k);
        for (std::size_t c = 0; c < 5; ++c) {
          max_err = std::max(max_err, std::fabs(uv[c] - ex[c]));
        }
      }
    }
  }
  return comm_->allreduce_max(max_err);
}

double BtRank::residual_norm() {
  exchange_halo();
  double sum = 0.0;
  for (int k = 0; k < nz_; ++k) {
    for (int j = 0; j < ny_; ++j) {
      for (int i = 0; i < nx_; ++i) {
        const Vec5 au = apply_operator(u_, i, j, k, config_.op, coupling_);
        const Vec5 f = forcing_.get(i, j, k);
        sum += norm2sq5(sub5(f, au));
      }
    }
  }
  const double total = comm_->allreduce_sum(sum);
  const double npts = static_cast<double>(config_.n) *
                      static_cast<double>(config_.n) *
                      static_cast<double>(config_.n) * 5.0;
  return std::sqrt(total / npts);
}

BtRunResult run_bt(const BtConfig& config, int ranks,
                   const simmpi::NetworkParams& net) {
  BtRunResult result;
  std::mutex mu;
  result.run = simmpi::run(ranks, net, [&](simmpi::Comm& comm) {
    BtRank rank(config, comm);
    rank.initialize();
    const double r0 = rank.residual_norm();
    for (int it = 0; it < config.iterations; ++it) {
      rank.copy_faces();
      rank.x_solve();
      rank.y_solve();
      rank.z_solve();
      rank.add();
    }
    const double r1 = rank.residual_norm();
    const double err = rank.final_verify();
    if (comm.rank() == 0) {
      std::lock_guard lock(mu);
      result.initial_residual = r0;
      result.final_residual = r1;
      result.final_error = err;
    }
  });
  return result;
}

}  // namespace kcoup::npb::bt
