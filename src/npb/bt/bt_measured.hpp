#pragma once

#include "coupling/parallel_measurement.hpp"
#include "npb/bt/bt_app.hpp"
#include "simmpi/simmpi.hpp"

namespace kcoup::npb::bt {

/// Host-measured parallel BT: the *real numeric* BtRank kernels, timed with
/// the per-thread CPU clock and fed through the parallel measurement
/// protocol.  Each rank charges its measured compute time to its virtual
/// clock while simmpi prices the messages, so the study combines genuine
/// host cache behaviour with a controlled virtual network — the third
/// measurement path next to the fully-analytic model (bt_model.hpp) and
/// the fully-modeled timed path (bt_timed.hpp).
///
/// Host timings are inherently noisy; use this for demonstrations and
/// structural tests, not for regenerating the deterministic paper tables.
///
/// Builds the per-rank ParallelLoopApp over an existing BtRank (which must
/// outlive the returned app).
[[nodiscard]] coupling::ParallelLoopApp make_measured_bt_app(BtRank& rank,
                                                             int iterations,
                                                             simmpi::Comm& comm);

/// Run a complete host-measured parallel study.
[[nodiscard]] coupling::ParallelStudyResult run_bt_measured_study(
    const BtConfig& config, int ranks, const simmpi::NetworkParams& net,
    const coupling::StudyOptions& study);

}  // namespace kcoup::npb::bt
