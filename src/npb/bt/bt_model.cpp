#include "npb/bt/bt_model.hpp"

#include <algorithm>

#include "npb/common/decomp.hpp"

namespace kcoup::npb::bt {
namespace {

using machine::AccessKind;
using machine::MessageOp;
using machine::RegionAccess;
using machine::RegionId;
using machine::WorkProfile;

/// Kernel identities for data-flow freshness and skew patterns.
enum BtKernel : machine::KernelId {
  kInit = 0,
  kCopyFaces,
  kXSolve,
  kYSolve,
  kZSolve,
  kAdd,
  kFinal,
};

}  // namespace

BtKernelProfiles bt_kernel_profiles(machine::Machine& m, int nx, int ny,
                                    int nz, const BtWorkConstants& k) {
  const auto pts = static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny) *
                   static_cast<std::size_t>(nz);
  const double fpts = static_cast<double>(pts);
  const std::size_t field_bytes = pts * k.comp_bytes;
  const auto stages = static_cast<std::size_t>(std::max(2, nz));

  // Regions, mirroring BtRank's arrays.  The x-sweep reuses one line of
  // scratch; the distributed y/z sweeps keep per-point elimination states
  // between their forward and backward phases (states_ in bt_app.cpp).
  const RegionId u = m.register_region("u", field_bytes);
  const RegionId rhs = m.register_region("rhs", field_bytes);
  const RegionId forcing = m.register_region("forcing", field_bytes);
  const RegionId exact_tmp = m.register_region("exact_tmp", field_bytes);
  const RegionId lhs_x =
      m.register_region("lhs_x", static_cast<std::size_t>(nx) * k.state_bytes);
  const RegionId lhs_y = m.register_region("lhs_y", pts * k.state_bytes);
  const RegionId lhs_z = m.register_region("lhs_z", pts * k.state_bytes);

  BtKernelProfiles p;

  p.init.label = "Initialization";
  p.init.kernel = kInit;
  p.init.flops = k.flops_init_per_point * fpts;
  p.init.accesses = {
      RegionAccess{u, AccessKind::kWrite, field_bytes},
      RegionAccess{exact_tmp, AccessKind::kWrite, field_bytes},
      RegionAccess{exact_tmp, AccessKind::kRead, field_bytes},
      RegionAccess{forcing, AccessKind::kWrite, field_bytes},
  };
  p.init.pipeline_stages = stages;

  p.copy_faces.label = "Copy_Faces";
  p.copy_faces.kernel = kCopyFaces;
  p.copy_faces.flops = k.flops_rhs_per_point * fpts;
  p.copy_faces.accesses = {
      RegionAccess{u, AccessKind::kRead, field_bytes, 1.0},
      RegionAccess{forcing, AccessKind::kRead, field_bytes},
      RegionAccess{rhs, AccessKind::kWrite, field_bytes},
  };
  p.copy_faces.pipeline_stages = stages;

  auto make_solve = [&](const char* label, machine::KernelId id, RegionId lhs) {
    WorkProfile s;
    s.label = label;
    s.kernel = id;
    s.flops = k.flops_solve_per_point * fpts;
    // The backward sweep walks lines in the reverse of the forward sweep's
    // order (bt_app.cpp does the same), so the state read-back is pipelined.
    RegionAccess lhs_read{lhs, AccessKind::kRead, pts * k.state_bytes};
    lhs_read.pipelined_self_reuse = true;
    s.accesses = {
        RegionAccess{rhs, AccessKind::kRead, field_bytes, 1.0},
        RegionAccess{u, AccessKind::kRead, field_bytes, 1.0},
        RegionAccess{lhs, AccessKind::kWrite, pts * k.state_bytes},
        lhs_read,
        RegionAccess{rhs, AccessKind::kWrite, field_bytes},
    };
    s.pipeline_stages = stages;
    return s;
  };
  p.x_solve = make_solve("X_Solve", kXSolve, lhs_x);
  p.y_solve = make_solve("Y_Solve", kYSolve, lhs_y);
  p.z_solve = make_solve("Z_Solve", kZSolve, lhs_z);

  p.add.label = "Add";
  p.add.kernel = kAdd;
  p.add.flops = k.flops_add_per_point * fpts;
  p.add.accesses = {
      RegionAccess{rhs, AccessKind::kRead, field_bytes, 1.0},
      RegionAccess{u, AccessKind::kRead, field_bytes, 1.0},
      RegionAccess{u, AccessKind::kWrite, field_bytes},
  };
  p.add.pipeline_stages = stages;

  p.final.label = "Final";
  p.final.kernel = kFinal;
  p.final.flops = k.flops_final_per_point * fpts;
  p.final.accesses = {RegionAccess{u, AccessKind::kRead, field_bytes}};
  p.final.pipeline_stages = stages;

  return p;
}

std::unique_ptr<ModeledApp> make_modeled_bt_grid(int n, int iterations,
                                                 int ranks,
                                                 machine::MachineConfig config,
                                                 const BtWorkConstants& k) {
  SquareDecomp decomp(ranks);  // validates squareness
  config.ranks = ranks;
  auto modeled = std::make_unique<ModeledApp>(
      "BT n=" + std::to_string(n) + " P=" + std::to_string(ranks),
      std::move(config), iterations);

  // Representative interior rank: the largest subdomain (rank 0 holds the
  // remainder) with the full neighbour count; the simulated makespan is set
  // by the slowest rank.
  const int q = decomp.q();
  const int nx = n;
  const int ny = split_range(n, q, 0).count;
  const int nz = split_range(n, q, 0).count;
  BtKernelProfiles p =
      bt_kernel_profiles(modeled->machine(), nx, ny, nz, k);

  const std::size_t yface_bytes =
      static_cast<std::size_t>(nx) * static_cast<std::size_t>(nz) * k.comp_bytes;
  const std::size_t zface_bytes =
      static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny) * k.comp_bytes;
  const std::size_t ylines =
      static_cast<std::size_t>(nx) * static_cast<std::size_t>(nz);
  const std::size_t zlines =
      static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny);

  modeled->add_prologue(std::move(p.init));

  if (q > 1) {
    p.copy_faces.messages = {MessageOp{2, yface_bytes},
                             MessageOp{2, zface_bytes}};
    p.copy_faces.synchronizes = true;
    p.copy_faces.imbalance_weight = 1.0;
  }
  modeled->add_loop_kernel(std::move(p.copy_faces));
  modeled->add_loop_kernel(std::move(p.x_solve));

  auto add_distributed_solve = [&](WorkProfile s, std::size_t lines) {
    if (q > 1) {
      s.messages = {
          MessageOp{1, lines * k.fwd_msg_doubles * sizeof(double)},
          MessageOp{1, lines * k.bwd_msg_doubles * sizeof(double)},
      };
      s.synchronizes = true;
      s.imbalance_weight = 1.0;
    }
    modeled->add_loop_kernel(std::move(s));
  };
  add_distributed_solve(std::move(p.y_solve), ylines);
  add_distributed_solve(std::move(p.z_solve), zlines);

  modeled->add_loop_kernel(std::move(p.add));

  if (ranks > 1) {
    p.final.synchronizes = true;  // global verification reduction
    p.final.imbalance_weight = 0.5;
  }
  modeled->add_epilogue(std::move(p.final));

  return modeled;
}

std::unique_ptr<ModeledApp> make_modeled_bt(ProblemClass cls, int ranks,
                                            machine::MachineConfig config,
                                            const BtWorkConstants& k) {
  const ProblemSize size = problem_size(Benchmark::kBT, cls);
  return make_modeled_bt_grid(size.n, size.iterations, ranks,
                              std::move(config), k);
}

}  // namespace kcoup::npb::bt
