#include "npb/bt/bt_timed.hpp"

#include <mutex>
#include <stdexcept>
#include <utility>

namespace kcoup::npb::bt {
namespace {

constexpr int kTagYPlus = 151, kTagYMinus = 152;
constexpr int kTagZPlus = 153, kTagZMinus = 154;
constexpr int kTagYFwd = 161, kTagYBwd = 162;
constexpr int kTagZFwd = 163, kTagZBwd = 164;

}  // namespace

TimedBtRank::TimedBtRank(int n, const TimedBtOptions& options,
                         simmpi::Comm& comm)
    : options_(options),
      comm_(&comm),
      decomp_(comm.size()),
      layout_(decomp_.layout(comm.rank(), n, n)),
      nx_(n),
      ny_(layout_.y.count),
      nz_(layout_.z.count),
      machine_([&] {
        machine::MachineConfig cfg = options.machine;
        cfg.ranks = comm.size();
        // The analytic synchronisation/imbalance model must stay out of the
        // timed path: skew is emergent here.
        cfg.imbalance_coeff = 0.0;
        return cfg;
      }()),
      profiles_(bt_kernel_profiles(machine_, nx_, ny_, nz_,
                                   options.constants)) {
  std::tie(y_fwd_, y_bwd_) = split_sweep(profiles_.y_solve);
  std::tie(z_fwd_, z_bwd_) = split_sweep(profiles_.z_solve);
  ylines_ = static_cast<std::size_t>(nx_) * static_cast<std::size_t>(nz_);
  zlines_ = static_cast<std::size_t>(nx_) * static_cast<std::size_t>(ny_);
  yface_.assign(static_cast<std::size_t>(nx_) * static_cast<std::size_t>(nz_) * 5,
                0.0);
  zface_.assign(static_cast<std::size_t>(nx_) * static_cast<std::size_t>(ny_) * 5,
                0.0);
  const std::size_t max_lines = std::max(ylines_, zlines_);
  pipe_buf_.assign(
      max_lines * options_.constants.fwd_msg_doubles, 0.0);
}

std::pair<machine::WorkProfile, machine::WorkProfile> TimedBtRank::split_sweep(
    const machine::WorkProfile& sweep) {
  // Forward: read rhs + u, build/write the elimination states (~70 % of the
  // arithmetic: block assembly, factorisation, elimination).  Backward:
  // read the states back, write the solution into rhs.
  machine::WorkProfile fwd = sweep;
  machine::WorkProfile bwd = sweep;
  fwd.label += "/fwd";
  bwd.label += "/bwd";
  fwd.flops = 0.7 * sweep.flops;
  bwd.flops = 0.3 * sweep.flops;
  // accesses layout from bt_kernel_profiles:
  //   [0] rhs read, [1] u read, [2] lhs write, [3] lhs read, [4] rhs write
  fwd.accesses = {sweep.accesses[0], sweep.accesses[1], sweep.accesses[2]};
  bwd.accesses = {sweep.accesses[3], sweep.accesses[4]};
  return {std::move(fwd), std::move(bwd)};
}

void TimedBtRank::charge(const machine::WorkProfile& profile) {
  double cost = machine_.execute_seconds(profile);
  const std::uint64_t key =
      (static_cast<std::uint64_t>(comm_->rank()) << 40) ^
      (static_cast<std::uint64_t>(profile.kernel) << 32) ^ invocation_;
  cost *= 1.0 + options_.jitter * machine::Machine::unit_hash(key);
  ++invocation_;
  comm_->advance(cost);
}

void TimedBtRank::initialize() { charge(profiles_.init); }

void TimedBtRank::copy_faces() {
  // Halo exchange with real payload sizes (contents irrelevant for timing).
  if (layout_.y_prev >= 0) comm_->send<double>(layout_.y_prev, kTagYMinus, yface_);
  if (layout_.y_next >= 0) comm_->send<double>(layout_.y_next, kTagYPlus, yface_);
  if (layout_.z_prev >= 0) comm_->send<double>(layout_.z_prev, kTagZMinus, zface_);
  if (layout_.z_next >= 0) comm_->send<double>(layout_.z_next, kTagZPlus, zface_);
  if (layout_.y_prev >= 0) comm_->recv<double>(layout_.y_prev, kTagYPlus, yface_);
  if (layout_.y_next >= 0) comm_->recv<double>(layout_.y_next, kTagYMinus, yface_);
  if (layout_.z_prev >= 0) comm_->recv<double>(layout_.z_prev, kTagZPlus, zface_);
  if (layout_.z_next >= 0) comm_->recv<double>(layout_.z_next, kTagZMinus, zface_);
  charge(profiles_.copy_faces);
}

void TimedBtRank::x_solve() { charge(profiles_.x_solve); }

void TimedBtRank::sweep(const machine::WorkProfile& fwd,
                        const machine::WorkProfile& bwd, int prev, int next,
                        int tag_fwd, int tag_bwd, std::size_t fwd_doubles,
                        std::size_t bwd_doubles) {
  auto fwd_span = std::span(pipe_buf_).first(fwd_doubles);
  auto bwd_span = std::span(pipe_buf_).first(bwd_doubles);
  // Forward sweep: the pipeline serialisation is real — this rank cannot
  // eliminate before its predecessor's states arrive.
  if (prev >= 0) comm_->recv<double>(prev, tag_fwd, fwd_span);
  charge(fwd);
  if (next >= 0) comm_->send<double>(next, tag_fwd, fwd_span);
  // Backward sweep in reverse rank order.
  if (next >= 0) comm_->recv<double>(next, tag_bwd, bwd_span);
  charge(bwd);
  if (prev >= 0) comm_->send<double>(prev, tag_bwd, bwd_span);
}

void TimedBtRank::y_solve() {
  sweep(y_fwd_, y_bwd_, layout_.y_prev, layout_.y_next, kTagYFwd, kTagYBwd,
        ylines_ * options_.constants.fwd_msg_doubles,
        ylines_ * options_.constants.bwd_msg_doubles);
}

void TimedBtRank::z_solve() {
  sweep(z_fwd_, z_bwd_, layout_.z_prev, layout_.z_next, kTagZFwd, kTagZBwd,
        zlines_ * options_.constants.fwd_msg_doubles,
        zlines_ * options_.constants.bwd_msg_doubles);
}

void TimedBtRank::add() { charge(profiles_.add); }

void TimedBtRank::final_verify() {
  charge(profiles_.final);
  (void)comm_->allreduce_max(0.0);
}

void TimedBtRank::reset() {
  machine_.reset_state();
  invocation_ = 0;
}

coupling::ParallelLoopApp TimedBtRank::make_app(int iterations) {
  coupling::ParallelLoopApp app;
  app.prologue = {{"Initialization", [this] { initialize(); }}};
  app.loop = {
      {"Copy_Faces", [this] { copy_faces(); }},
      {"X_Solve", [this] { x_solve(); }},
      {"Y_Solve", [this] { y_solve(); }},
      {"Z_Solve", [this] { z_solve(); }},
      {"Add", [this] { add(); }},
  };
  app.epilogue = {{"Final", [this] { final_verify(); }}};
  app.iterations = iterations;
  app.reset = [this] { reset(); };
  return app;
}

coupling::ParallelStudyResult run_bt_parallel_study(
    int n, int iterations, int ranks, const TimedBtOptions& options,
    const coupling::StudyOptions& study) {
  simmpi::NetworkParams net;
  net.latency_s = options.machine.net_latency_s;
  net.seconds_per_byte = options.machine.net_seconds_per_byte;
  net.sync_latency_s = options.machine.sync_latency_s;

  coupling::ParallelStudyResult result;
  std::mutex mu;
  (void)simmpi::run(ranks, net, [&](simmpi::Comm& comm) {
    TimedBtRank rank(n, options, comm);
    const coupling::ParallelLoopApp app = rank.make_app(iterations);
    const coupling::ParallelStudyResult r =
        coupling::run_parallel_study(comm, app, study);
    if (comm.rank() == 0) {
      std::lock_guard lock(mu);
      result = r;
    }
  });
  return result;
}

}  // namespace kcoup::npb::bt
