#pragma once

#include <memory>
#include <vector>

#include "coupling/parallel_measurement.hpp"
#include "machine/machine.hpp"
#include "npb/bt/bt_model.hpp"
#include "npb/common/decomp.hpp"
#include "simmpi/simmpi.hpp"

namespace kcoup::npb::bt {

/// Options of the timed parallel BT path.
struct TimedBtOptions {
  machine::MachineConfig machine;  ///< prices compute + memory per rank
  /// Per-(rank, kernel, invocation) multiplicative compute jitter amplitude;
  /// this is where load imbalance comes from in the timed path (the
  /// machine's analytic imbalance model is not used here — skew absorption
  /// emerges from real message waiting and barriers in virtual time).
  double jitter = 0.05;
  BtWorkConstants constants;
};

/// Timing-only BT rank: executes BT's exact communication pattern with
/// real-sized simmpi messages and charges machine-model costs for the
/// compute/memory of each kernel on this rank's actual local extents —
/// no field data, so paper-scale classes run in milliseconds.
///
/// Unlike the representative-rank model (bt_model.hpp), every rank prices
/// its own subdomain, the y/z sweeps really serialise rank-by-rank
/// (pipeline fill is emergent), and load imbalance comes from per-rank
/// jitter meeting real synchronisation — a second, independent route to the
/// paper's coupling measurements.
class TimedBtRank {
 public:
  TimedBtRank(int n, const TimedBtOptions& options, simmpi::Comm& comm);

  /// Build this rank's ParallelLoopApp (kernels reference *this).
  [[nodiscard]] coupling::ParallelLoopApp make_app(int iterations);

  // Kernel bodies (public so tests can drive them directly).
  void initialize();
  void copy_faces();
  void x_solve();
  void y_solve();
  void z_solve();
  void add();
  void final_verify();

  void reset();

  [[nodiscard]] const machine::Machine& machine() const { return machine_; }

 private:
  void charge(const machine::WorkProfile& profile);
  /// Split a sweep profile into its forward (eliminate) and backward
  /// (substitute) halves for pipeline-faithful charging.
  static std::pair<machine::WorkProfile, machine::WorkProfile> split_sweep(
      const machine::WorkProfile& sweep);
  void sweep(const machine::WorkProfile& fwd, const machine::WorkProfile& bwd,
             int prev, int next, int tag_fwd, int tag_bwd,
             std::size_t fwd_doubles, std::size_t bwd_doubles);

  TimedBtOptions options_;
  simmpi::Comm* comm_;
  SquareDecomp decomp_;
  SquareDecomp::RankLayout layout_;
  int nx_, ny_, nz_;

  machine::Machine machine_;
  BtKernelProfiles profiles_;
  machine::WorkProfile y_fwd_, y_bwd_, z_fwd_, z_bwd_;
  std::size_t ylines_ = 0, zlines_ = 0;
  std::uint64_t invocation_ = 0;

  std::vector<double> yface_, zface_, pipe_buf_;
};

/// Run the full parallel coupling study on `ranks` timed BT ranks; network
/// parameters are taken from options.machine.  Returns rank 0's result
/// (identical on every rank).
[[nodiscard]] coupling::ParallelStudyResult run_bt_parallel_study(
    int n, int iterations, int ranks, const TimedBtOptions& options,
    const coupling::StudyOptions& study);

}  // namespace kcoup::npb::bt
