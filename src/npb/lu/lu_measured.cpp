#include "npb/lu/lu_measured.hpp"

#include <mutex>

#include "trace/stopwatch.hpp"

namespace kcoup::npb::lu {
namespace {

template <typename Fn>
void timed(simmpi::Comm& comm, Fn&& fn) {
  trace::ThreadCpuTimer t;
  fn();
  comm.advance(t.elapsed_s());
}

}  // namespace

coupling::ParallelLoopApp make_measured_lu_app(LuRank& rank, int iterations,
                                               simmpi::Comm& comm) {
  coupling::ParallelLoopApp app;
  app.prologue = {
      {"Initialization", [&rank, &comm] { timed(comm, [&] { rank.initialize(); }); }},
      {"Erhs", [&rank, &comm] { timed(comm, [&] { rank.erhs(); }); }},
      {"Ssor_Init", [&rank, &comm] { timed(comm, [&] { rank.ssor_init(); }); }},
  };
  app.loop = {
      {"Ssor_Iter", [&rank, &comm] { timed(comm, [&] { rank.ssor_iter(); }); }},
      {"Ssor_LT", [&rank, &comm] { timed(comm, [&] { rank.ssor_lt(); }); }},
      {"Ssor_UT", [&rank, &comm] { timed(comm, [&] { rank.ssor_ut(); }); }},
      {"Ssor_RS", [&rank, &comm] { timed(comm, [&] { (void)rank.ssor_rs(); }); }},
  };
  app.epilogue = {
      {"Error", [&rank, &comm] { timed(comm, [&] { (void)rank.error(); }); }},
      {"Pintgr", [&rank, &comm] { timed(comm, [&] { (void)rank.pintgr(); }); }},
      {"Final", [&rank, &comm] { timed(comm, [&] { (void)rank.final_verify(); }); }},
  };
  app.iterations = iterations;
  app.reset = [&rank] {
    rank.initialize();
    rank.erhs();
    rank.ssor_init();
  };
  return app;
}

coupling::ParallelStudyResult run_lu_measured_study(
    const LuConfig& config, int ranks, const simmpi::NetworkParams& net,
    const coupling::StudyOptions& study) {
  coupling::ParallelStudyResult result;
  std::mutex mu;
  (void)simmpi::run(ranks, net, [&](simmpi::Comm& comm) {
    LuRank rank(config, comm);
    const coupling::ParallelLoopApp app =
        make_measured_lu_app(rank, config.iterations, comm);
    const coupling::ParallelStudyResult r =
        coupling::run_parallel_study(comm, app, study);
    if (comm.rank() == 0) {
      std::lock_guard lock(mu);
      result = r;
    }
  });
  return result;
}

}  // namespace kcoup::npb::lu
