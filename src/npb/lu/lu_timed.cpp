#include "npb/lu/lu_timed.hpp"

#include <mutex>

namespace kcoup::npb::lu {
namespace {

constexpr int kTagXPlus = 351, kTagXMinus = 352;
constexpr int kTagYPlus = 353, kTagYMinus = 354;
constexpr int kTagLtCol = 361, kTagLtRow = 362;
constexpr int kTagUtCol = 363, kTagUtRow = 364;

}  // namespace

TimedLuRank::TimedLuRank(int n, const TimedLuOptions& options,
                         simmpi::Comm& comm)
    : options_(options),
      comm_(&comm),
      decomp_(comm.size()),
      layout_(decomp_.layout(comm.rank(), n, n)),
      nx_(layout_.x.count),
      ny_(layout_.y.count),
      nz_(n),
      machine_([&] {
        machine::MachineConfig cfg = options.machine;
        cfg.ranks = comm.size();
        cfg.imbalance_coeff = 0.0;  // skew is emergent in the timed path
        return cfg;
      }()),
      profiles_(lu_kernel_profiles(machine_, nx_, ny_, nz_,
                                   options.constants)) {
  xface_.assign(static_cast<std::size_t>(ny_) * static_cast<std::size_t>(nz_) * 5,
                0.0);
  yface_.assign(static_cast<std::size_t>(nx_) * static_cast<std::size_t>(nz_) * 5,
                0.0);
  col_buf_.assign(static_cast<std::size_t>(ny_) * 5, 0.0);
  row_buf_.assign(static_cast<std::size_t>(nx_) * 5, 0.0);
}

void TimedLuRank::charge(const machine::WorkProfile& profile) {
  double cost = machine_.execute_seconds(profile);
  const std::uint64_t key =
      (static_cast<std::uint64_t>(comm_->rank()) << 40) ^
      (static_cast<std::uint64_t>(profile.kernel) << 32) ^ invocation_;
  cost *= 1.0 + options_.jitter * machine::Machine::unit_hash(key);
  ++invocation_;
  comm_->advance(cost);
}

void TimedLuRank::advance_slice(double base_slice, machine::KernelId kernel,
                                int plane) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(comm_->rank()) << 40) ^
      (static_cast<std::uint64_t>(kernel) << 32) ^
      (invocation_ << 8) ^ static_cast<std::uint64_t>(plane);
  comm_->advance(base_slice *
                 (1.0 + options_.jitter * machine::Machine::unit_hash(key)));
}

void TimedLuRank::initialize() { charge(profiles_.init); }
void TimedLuRank::erhs() { charge(profiles_.erhs); }
void TimedLuRank::ssor_init() { charge(profiles_.ssor_init); }

void TimedLuRank::ssor_iter() {
  if (layout_.x_prev >= 0) comm_->send<double>(layout_.x_prev, kTagXMinus, xface_);
  if (layout_.x_next >= 0) comm_->send<double>(layout_.x_next, kTagXPlus, xface_);
  if (layout_.y_prev >= 0) comm_->send<double>(layout_.y_prev, kTagYMinus, yface_);
  if (layout_.y_next >= 0) comm_->send<double>(layout_.y_next, kTagYPlus, yface_);
  if (layout_.x_prev >= 0) comm_->recv<double>(layout_.x_prev, kTagXPlus, xface_);
  if (layout_.x_next >= 0) comm_->recv<double>(layout_.x_next, kTagXMinus, xface_);
  if (layout_.y_prev >= 0) comm_->recv<double>(layout_.y_prev, kTagYPlus, yface_);
  if (layout_.y_next >= 0) comm_->recv<double>(layout_.y_next, kTagYMinus, yface_);
  charge(profiles_.ssor_iter);
}

void TimedLuRank::wavefront(const machine::WorkProfile& profile, bool forward,
                            int tag_col, int tag_row) {
  // Price the whole sweep once (correct cache-state semantics), then spend
  // it plane by plane with the real per-plane message hand-offs.
  const double total = machine_.execute_seconds(profile);
  const double slice = total / static_cast<double>(nz_);
  const int recv_col = forward ? layout_.x_prev : layout_.x_next;
  const int send_col = forward ? layout_.x_next : layout_.x_prev;
  const int recv_row = forward ? layout_.y_prev : layout_.y_next;
  const int send_row = forward ? layout_.y_next : layout_.y_prev;
  for (int step = 0; step < nz_; ++step) {
    const int k = forward ? step : nz_ - 1 - step;
    if (recv_col >= 0) comm_->recv<double>(recv_col, tag_col, col_buf_);
    if (recv_row >= 0) comm_->recv<double>(recv_row, tag_row, row_buf_);
    advance_slice(slice, profile.kernel, k);
    if (send_col >= 0) comm_->send<double>(send_col, tag_col, col_buf_);
    if (send_row >= 0) comm_->send<double>(send_row, tag_row, row_buf_);
  }
  ++invocation_;
}

void TimedLuRank::ssor_lt() {
  wavefront(profiles_.ssor_lt, /*forward=*/true, kTagLtCol, kTagLtRow);
}

void TimedLuRank::ssor_ut() {
  wavefront(profiles_.ssor_ut, /*forward=*/false, kTagUtCol, kTagUtRow);
}

void TimedLuRank::ssor_rs() {
  charge(profiles_.ssor_rs);
  (void)comm_->allreduce_sum(0.0);  // Newton-residual reduction
}

void TimedLuRank::error() {
  charge(profiles_.error);
  (void)comm_->allreduce_max(0.0);
}

void TimedLuRank::pintgr() {
  charge(profiles_.pintgr);
  (void)comm_->allreduce_sum(0.0);
}

void TimedLuRank::final_verify() {
  charge(profiles_.final);
  (void)comm_->allreduce_sum(0.0);
}

void TimedLuRank::reset() {
  machine_.reset_state();
  invocation_ = 0;
}

coupling::ParallelLoopApp TimedLuRank::make_app(int iterations) {
  coupling::ParallelLoopApp app;
  app.prologue = {
      {"Initialization", [this] { initialize(); }},
      {"Erhs", [this] { erhs(); }},
      {"Ssor_Init", [this] { ssor_init(); }},
  };
  app.loop = {
      {"Ssor_Iter", [this] { ssor_iter(); }},
      {"Ssor_LT", [this] { ssor_lt(); }},
      {"Ssor_UT", [this] { ssor_ut(); }},
      {"Ssor_RS", [this] { ssor_rs(); }},
  };
  app.epilogue = {
      {"Error", [this] { error(); }},
      {"Pintgr", [this] { pintgr(); }},
      {"Final", [this] { final_verify(); }},
  };
  app.iterations = iterations;
  app.reset = [this] { reset(); };
  return app;
}

coupling::ParallelStudyResult run_lu_parallel_study(
    int n, int iterations, int ranks, const TimedLuOptions& options,
    const coupling::StudyOptions& study) {
  simmpi::NetworkParams net;
  net.latency_s = options.machine.net_latency_s;
  net.seconds_per_byte = options.machine.net_seconds_per_byte;
  net.sync_latency_s = options.machine.sync_latency_s;

  coupling::ParallelStudyResult result;
  std::mutex mu;
  (void)simmpi::run(ranks, net, [&](simmpi::Comm& comm) {
    TimedLuRank rank(n, options, comm);
    const coupling::ParallelLoopApp app = rank.make_app(iterations);
    const coupling::ParallelStudyResult r =
        coupling::run_parallel_study(comm, app, study);
    if (comm.rank() == 0) {
      std::lock_guard lock(mu);
      result = r;
    }
  });
  return result;
}

}  // namespace kcoup::npb::lu
