#include "npb/lu/lu_model.hpp"

#include <algorithm>

#include "npb/common/decomp.hpp"

namespace kcoup::npb::lu {
namespace {

using machine::AccessKind;
using machine::MessageOp;
using machine::RegionAccess;
using machine::RegionId;
using machine::WorkProfile;

enum LuKernel : machine::KernelId {
  kInit = 0,
  kErhs,
  kSsorInit,
  kSsorIter,
  kSsorLt,
  kSsorUt,
  kSsorRs,
  kError,
  kPintgr,
  kFinal,
};

/// Fraction of the producer's plane-sequential stream still pipeline-warm
/// when a wavefront-ordered sweep reaches it (the sweeps visit points in
/// diagonal order, not the order their producer wrote them).
constexpr double kWavefrontFresh = 0.25;

}  // namespace

LuKernelProfiles lu_kernel_profiles(machine::Machine& m, int nx, int ny,
                                    int nz, const LuWorkConstants& k) {
  const auto pts = static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny) *
                   static_cast<std::size_t>(nz);
  const double fpts = static_cast<double>(pts);
  const std::size_t field_bytes = pts * k.comp_bytes;
  const auto stages = static_cast<std::size_t>(std::max(2, nz));

  const RegionId u = m.register_region("u", field_bytes);
  const RegionId rsd = m.register_region("rsd", field_bytes);
  const RegionId frct = m.register_region("frct", field_bytes);
  const RegionId exact_tmp = m.register_region("exact_tmp", field_bytes);

  LuKernelProfiles p;

  p.init.label = "Initialization";
  p.init.kernel = kInit;
  p.init.flops = k.flops_init_per_point * fpts;
  p.init.accesses = {RegionAccess{u, AccessKind::kWrite, field_bytes}};
  p.init.pipeline_stages = stages;

  p.erhs.label = "Erhs";
  p.erhs.kernel = kErhs;
  p.erhs.flops = k.flops_erhs_per_point * fpts;
  p.erhs.accesses = {
      RegionAccess{exact_tmp, AccessKind::kWrite, field_bytes},
      RegionAccess{exact_tmp, AccessKind::kRead, field_bytes},
      RegionAccess{frct, AccessKind::kWrite, field_bytes},
  };
  p.erhs.pipeline_stages = stages;

  p.ssor_init.label = "Ssor_Init";
  p.ssor_init.kernel = kSsorInit;
  p.ssor_init.flops = fpts;  // zeroing + constants
  p.ssor_init.accesses = {RegionAccess{rsd, AccessKind::kWrite, field_bytes}};
  p.ssor_init.pipeline_stages = stages;

  p.ssor_iter.label = "Ssor_Iter";
  p.ssor_iter.kernel = kSsorIter;
  p.ssor_iter.flops = k.flops_rhs_per_point * fpts;
  p.ssor_iter.accesses = {
      RegionAccess{u, AccessKind::kRead, field_bytes, 1.0},
      RegionAccess{frct, AccessKind::kRead, field_bytes},
      RegionAccess{rsd, AccessKind::kWrite, field_bytes},
  };
  p.ssor_iter.pipeline_stages = stages;

  auto make_sweep = [&](const char* label, machine::KernelId id,
                        double flops_per_point) {
    WorkProfile s;
    s.label = label;
    s.kernel = id;
    s.flops = flops_per_point * fpts;
    // The sweep updates rsd in place (read + write interleaved) and reads u
    // for the jacobian diagonal; wavefront order limits pipelined reuse.
    s.accesses = {
        RegionAccess{rsd, AccessKind::kRead, field_bytes, kWavefrontFresh},
        RegionAccess{u, AccessKind::kRead, field_bytes, kWavefrontFresh},
        RegionAccess{rsd, AccessKind::kWrite, field_bytes},
    };
    s.pipeline_stages = stages;
    return s;
  };
  p.ssor_lt = make_sweep("Ssor_LT", kSsorLt, k.flops_lt_per_point);
  p.ssor_ut = make_sweep("Ssor_UT", kSsorUt, k.flops_ut_per_point);

  p.ssor_rs.label = "Ssor_RS";
  p.ssor_rs.kernel = kSsorRs;
  p.ssor_rs.flops = k.flops_rs_per_point * fpts;
  p.ssor_rs.accesses = {
      RegionAccess{rsd, AccessKind::kRead, field_bytes, 1.0},
      RegionAccess{u, AccessKind::kRead, field_bytes},
      RegionAccess{u, AccessKind::kWrite, field_bytes},
  };
  p.ssor_rs.pipeline_stages = stages;

  p.error.label = "Error";
  p.error.kernel = kError;
  p.error.flops = k.flops_error_per_point * fpts;
  p.error.accesses = {RegionAccess{u, AccessKind::kRead, field_bytes}};
  p.error.pipeline_stages = stages;

  p.pintgr.label = "Pintgr";
  p.pintgr.kernel = kPintgr;
  const auto face_pts =
      2 * static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny);
  p.pintgr.flops = 20.0 * static_cast<double>(face_pts);
  p.pintgr.accesses = {
      RegionAccess{u, AccessKind::kRead, face_pts * sizeof(double)}};
  p.pintgr.pipeline_stages = 2;

  p.final.label = "Final";
  p.final.kernel = kFinal;
  p.final.flops = k.flops_final_per_point * fpts;
  p.final.accesses = {
      RegionAccess{u, AccessKind::kRead, field_bytes},
      RegionAccess{frct, AccessKind::kRead, field_bytes},
  };
  p.final.pipeline_stages = stages;

  return p;
}

std::unique_ptr<ModeledApp> make_modeled_lu_grid(int n, int iterations,
                                                 int ranks,
                                                 machine::MachineConfig config,
                                                 const LuWorkConstants& k) {
  PencilDecomp decomp(ranks);
  config.ranks = ranks;
  auto modeled = std::make_unique<ModeledApp>(
      "LU n=" + std::to_string(n) + " P=" + std::to_string(ranks),
      std::move(config), iterations);

  const int px = decomp.px(), py = decomp.py();
  const int nx = split_range(n, px, 0).count;
  const int ny = split_range(n, py, 0).count;
  const int nz = n;
  LuKernelProfiles p = lu_kernel_profiles(modeled->machine(), nx, ny, nz, k);

  const std::size_t xface_bytes =
      static_cast<std::size_t>(ny) * static_cast<std::size_t>(nz) * k.comp_bytes;
  const std::size_t yface_bytes =
      static_cast<std::size_t>(nx) * static_cast<std::size_t>(nz) * k.comp_bytes;
  // Per-plane wavefront messages: one column (ny points) east, one row
  // (nx points) north, per z-plane, plus the pipeline-fill hand-offs.
  const std::size_t col_bytes = static_cast<std::size_t>(ny) * k.comp_bytes;
  const std::size_t row_bytes = static_cast<std::size_t>(nx) * k.comp_bytes;
  const auto fill_msgs = static_cast<std::size_t>(std::max(0, px + py - 2));

  modeled->add_prologue(std::move(p.init));
  modeled->add_prologue(std::move(p.erhs));
  modeled->add_prologue(std::move(p.ssor_init));

  if (ranks > 1) {
    p.ssor_iter.messages = {MessageOp{px > 1 ? 2u : 0u, xface_bytes},
                            MessageOp{py > 1 ? 2u : 0u, yface_bytes}};
    p.ssor_iter.synchronizes = true;
    p.ssor_iter.imbalance_weight = 1.0;
  }
  modeled->add_loop_kernel(std::move(p.ssor_iter));

  auto add_sweep = [&](WorkProfile s) {
    if (ranks > 1) {
      const auto nzs = static_cast<std::size_t>(nz);
      s.messages = {
          MessageOp{px > 1 ? nzs : 0u, col_bytes},
          MessageOp{py > 1 ? nzs : 0u, row_bytes},
          MessageOp{fill_msgs, (col_bytes + row_bytes) / 2},
      };
      s.synchronizes = true;
      s.imbalance_weight = 1.0;
    }
    modeled->add_loop_kernel(std::move(s));
  };
  add_sweep(std::move(p.ssor_lt));
  add_sweep(std::move(p.ssor_ut));

  if (ranks > 1) {
    p.ssor_rs.synchronizes = true;  // Newton-residual allreduce
    p.ssor_rs.imbalance_weight = 0.5;
  }
  modeled->add_loop_kernel(std::move(p.ssor_rs));

  if (ranks > 1) p.error.synchronizes = true;
  modeled->add_epilogue(std::move(p.error));
  if (ranks > 1) p.pintgr.synchronizes = true;
  modeled->add_epilogue(std::move(p.pintgr));
  if (ranks > 1) {
    p.final.messages = {MessageOp{px > 1 ? 2u : 0u, xface_bytes},
                        MessageOp{py > 1 ? 2u : 0u, yface_bytes}};
    p.final.synchronizes = true;
  }
  modeled->add_epilogue(std::move(p.final));

  return modeled;
}

std::unique_ptr<ModeledApp> make_modeled_lu(ProblemClass cls, int ranks,
                                            machine::MachineConfig config,
                                            const LuWorkConstants& k) {
  const ProblemSize size = problem_size(Benchmark::kLU, cls);
  return make_modeled_lu_grid(size.n, size.iterations, ranks,
                              std::move(config), k);
}

}  // namespace kcoup::npb::lu
