#include "npb/lu/lu_app.hpp"

#include <cmath>
#include <mutex>
#include <stdexcept>

namespace kcoup::npb::lu {
namespace {

constexpr int kTagXPlus = 301, kTagXMinus = 302;
constexpr int kTagYPlus = 303, kTagYMinus = 304;
constexpr int kTagLtEast = 311, kTagLtNorth = 312;
constexpr int kTagUtWest = 313, kTagUtSouth = 314;

double perturbation(int gi, int gj, int gk) {
  return 0.3 * std::sin(12.9898 * gi + 78.233 * gj + 37.719 * gk);
}

}  // namespace

LuRank::LuRank(const LuConfig& config, simmpi::Comm& comm)
    : config_(config),
      comm_(&comm),
      decomp_(comm.size()),
      layout_(decomp_.layout(comm.rank(), config.n, config.n)),
      nx_(layout_.x.count),
      ny_(layout_.y.count),
      nz_(config.n),
      u_(nx_, ny_, nz_, 1),
      rsd_(nx_, ny_, nz_, 1),
      forcing_(nx_, ny_, nz_, 1),
      coupling_(OperatorSpec::coupling()) {
  if (config_.n < 3) throw std::invalid_argument("LU: grid too small");
  // Constant off-diagonal jacobian block -tau (c I + 0.05 M); cx=cy=cz
  // are allowed to differ but the port uses the x coefficient for all
  // directions of the triangular factors (the manufactured operator is
  // isotropic by default).
  for (std::size_t e = 0; e < 25; ++e) {
    off_[e] = -config_.tau * 0.05 * coupling_[e];
  }
  for (int i = 0; i < 5; ++i) {
    off_[static_cast<std::size_t>(i * 5 + i)] -= config_.tau * config_.op.cx;
  }
  col_buf_.resize(static_cast<std::size_t>(ny_) * 5);
  row_buf_.resize(static_cast<std::size_t>(nx_) * 5);
}

Block5 LuRank::diag_block(const Vec5& u_point) const {
  const double tau = config_.tau;
  Block5 d{};
  for (std::size_t e = 0; e < 25; ++e) {
    d[e] = tau * config_.op.eps * coupling_[e];
  }
  const double c3 = 2.0 * (config_.op.cx + config_.op.cy + config_.op.cz);
  for (int i = 0; i < 5; ++i) {
    const auto e = static_cast<std::size_t>(i * 5 + i);
    d[e] += 1.0 + tau * c3 +
            tau * config_.gamma * u_point[static_cast<std::size_t>(i)];
  }
  return d;
}

void LuRank::fill_analytic_ghosts() {
  const int n = config_.n;
  auto set_exact = [&](int i, int j, int k) {
    u_.set(i, j, k,
           exact_solution(grid_coord(layout_.x.begin + i, n),
                          grid_coord(layout_.y.begin + j, n),
                          grid_coord(k, n)));
  };
  // z faces are always physical (z is not decomposed).
  for (int j = 0; j < ny_; ++j) {
    for (int i = 0; i < nx_; ++i) {
      set_exact(i, j, -1);
      set_exact(i, j, nz_);
    }
  }
  for (int k = 0; k < nz_; ++k) {
    for (int j = 0; j < ny_; ++j) {
      if (layout_.x_prev < 0) set_exact(-1, j, k);
      if (layout_.x_next < 0) set_exact(nx_, j, k);
    }
    for (int i = 0; i < nx_; ++i) {
      if (layout_.y_prev < 0) set_exact(i, -1, k);
      if (layout_.y_next < 0) set_exact(i, ny_, k);
    }
  }
}

void LuRank::initialize() {
  const int n = config_.n;
  for (int k = 0; k < nz_; ++k) {
    for (int j = 0; j < ny_; ++j) {
      for (int i = 0; i < nx_; ++i) {
        const int gi = layout_.x.begin + i, gj = layout_.y.begin + j, gk = k;
        Vec5 v = exact_solution(grid_coord(gi, n), grid_coord(gj, n),
                                grid_coord(gk, n));
        const double p = perturbation(gi, gj, gk);
        for (std::size_t c = 0; c < 5; ++c) v[c] += p;
        u_.set(i, j, k, v);
      }
    }
  }
  fill_analytic_ghosts();
}

void LuRank::erhs() {
  const int n = config_.n;
  Field5 exact(nx_, ny_, nz_, 1);
  for (int k = -1; k <= nz_; ++k) {
    for (int j = -1; j <= ny_; ++j) {
      for (int i = -1; i <= nx_; ++i) {
        exact.set(i, j, k,
                  exact_solution(grid_coord(layout_.x.begin + i, n),
                                 grid_coord(layout_.y.begin + j, n),
                                 grid_coord(k, n)));
      }
    }
  }
  for (int k = 0; k < nz_; ++k) {
    for (int j = 0; j < ny_; ++j) {
      for (int i = 0; i < nx_; ++i) {
        forcing_.set(i, j, k,
                     apply_operator(exact, i, j, k, config_.op, coupling_));
      }
    }
  }
}

void LuRank::ssor_init() { rsd_.fill(0.0); }

void LuRank::exchange_halo() {
  auto pack_x = [&](int i, std::vector<double>& buf) {
    buf.resize(static_cast<std::size_t>(ny_) * static_cast<std::size_t>(nz_) * 5);
    std::size_t p = 0;
    for (int k = 0; k < nz_; ++k) {
      for (int j = 0; j < ny_; ++j) {
        const Vec5 v = u_.get(i, j, k);
        for (std::size_t c = 0; c < 5; ++c) buf[p++] = v[c];
      }
    }
  };
  auto unpack_x = [&](int i, const std::vector<double>& buf) {
    std::size_t p = 0;
    for (int k = 0; k < nz_; ++k) {
      for (int j = 0; j < ny_; ++j) {
        Vec5 v;
        for (std::size_t c = 0; c < 5; ++c) v[c] = buf[p++];
        u_.set(i, j, k, v);
      }
    }
  };
  auto pack_y = [&](int j, std::vector<double>& buf) {
    buf.resize(static_cast<std::size_t>(nx_) * static_cast<std::size_t>(nz_) * 5);
    std::size_t p = 0;
    for (int k = 0; k < nz_; ++k) {
      for (int i = 0; i < nx_; ++i) {
        const Vec5 v = u_.get(i, j, k);
        for (std::size_t c = 0; c < 5; ++c) buf[p++] = v[c];
      }
    }
  };
  auto unpack_y = [&](int j, const std::vector<double>& buf) {
    std::size_t p = 0;
    for (int k = 0; k < nz_; ++k) {
      for (int i = 0; i < nx_; ++i) {
        Vec5 v;
        for (std::size_t c = 0; c < 5; ++c) v[c] = buf[p++];
        u_.set(i, j, k, v);
      }
    }
  };

  std::vector<double> sx0, sx1, sy0, sy1, r;
  if (layout_.x_prev >= 0) {
    pack_x(0, sx0);
    comm_->send<double>(layout_.x_prev, kTagXMinus, sx0);
  }
  if (layout_.x_next >= 0) {
    pack_x(nx_ - 1, sx1);
    comm_->send<double>(layout_.x_next, kTagXPlus, sx1);
  }
  if (layout_.y_prev >= 0) {
    pack_y(0, sy0);
    comm_->send<double>(layout_.y_prev, kTagYMinus, sy0);
  }
  if (layout_.y_next >= 0) {
    pack_y(ny_ - 1, sy1);
    comm_->send<double>(layout_.y_next, kTagYPlus, sy1);
  }
  if (layout_.x_prev >= 0) {
    r.resize(static_cast<std::size_t>(ny_) * static_cast<std::size_t>(nz_) * 5);
    comm_->recv<double>(layout_.x_prev, kTagXPlus, r);
    unpack_x(-1, r);
  }
  if (layout_.x_next >= 0) {
    r.resize(static_cast<std::size_t>(ny_) * static_cast<std::size_t>(nz_) * 5);
    comm_->recv<double>(layout_.x_next, kTagXMinus, r);
    unpack_x(nx_, r);
  }
  if (layout_.y_prev >= 0) {
    r.resize(static_cast<std::size_t>(nx_) * static_cast<std::size_t>(nz_) * 5);
    comm_->recv<double>(layout_.y_prev, kTagYPlus, r);
    unpack_y(-1, r);
  }
  if (layout_.y_next >= 0) {
    r.resize(static_cast<std::size_t>(nx_) * static_cast<std::size_t>(nz_) * 5);
    comm_->recv<double>(layout_.y_next, kTagYMinus, r);
    unpack_y(ny_, r);
  }
}

void LuRank::ssor_iter() {
  exchange_halo();
  const double tau = config_.tau;
  for (int k = 0; k < nz_; ++k) {
    for (int j = 0; j < ny_; ++j) {
      for (int i = 0; i < nx_; ++i) {
        const Vec5 au = apply_operator(u_, i, j, k, config_.op, coupling_);
        const Vec5 f = forcing_.get(i, j, k);
        Vec5 r;
        for (std::size_t c = 0; c < 5; ++c) r[c] = tau * (f[c] - au[c]);
        rsd_.set(i, j, k, r);
      }
    }
  }
}

void LuRank::ssor_lt() {
  // Zero correction at every boundary of the sweep (physical Dirichlet).
  // Ghost entries hold either zeros or partition-boundary values received
  // from the west/south neighbours.
  for (int j = 0; j < ny_; ++j) {
    for (int i = 0; i < nx_; ++i) {
      rsd_.set(i, j, -1, kZeroVec);
      rsd_.set(i, j, nz_, kZeroVec);
    }
  }
  for (int k = 0; k < nz_; ++k) {
    // Per-plane wavefront hand-off: the paper's "relatively large number of
    // small communications".
    if (layout_.x_prev >= 0) {
      comm_->recv<double>(layout_.x_prev, kTagLtEast, col_buf_);
      std::size_t p = 0;
      for (int j = 0; j < ny_; ++j) {
        Vec5 v;
        for (std::size_t c = 0; c < 5; ++c) v[c] = col_buf_[p++];
        rsd_.set(-1, j, k, v);
      }
    } else {
      for (int j = 0; j < ny_; ++j) rsd_.set(-1, j, k, kZeroVec);
    }
    if (layout_.y_prev >= 0) {
      comm_->recv<double>(layout_.y_prev, kTagLtNorth, row_buf_);
      std::size_t p = 0;
      for (int i = 0; i < nx_; ++i) {
        Vec5 v;
        for (std::size_t c = 0; c < 5; ++c) v[c] = row_buf_[p++];
        rsd_.set(i, -1, k, v);
      }
    } else {
      for (int i = 0; i < nx_; ++i) rsd_.set(i, -1, k, kZeroVec);
    }

    for (int j = 0; j < ny_; ++j) {
      for (int i = 0; i < nx_; ++i) {
        Vec5 r = rsd_.get(i, j, k);
        const Vec5 w = matvec5(off_, rsd_.get(i - 1, j, k));
        const Vec5 s = matvec5(off_, rsd_.get(i, j - 1, k));
        const Vec5 b = matvec5(off_, rsd_.get(i, j, k - 1));
        for (std::size_t c = 0; c < 5; ++c) r[c] -= w[c] + s[c] + b[c];
        Lu5 f;
        if (!lu_factor5(diag_block(u_.get(i, j, k)), f)) {
          throw std::runtime_error("LU ssor_lt: singular diagonal block");
        }
        rsd_.set(i, j, k, lu_solve5(f, r));
      }
    }

    if (layout_.x_next >= 0) {
      std::size_t p = 0;
      for (int j = 0; j < ny_; ++j) {
        const Vec5 v = rsd_.get(nx_ - 1, j, k);
        for (std::size_t c = 0; c < 5; ++c) col_buf_[p++] = v[c];
      }
      comm_->send<double>(layout_.x_next, kTagLtEast, col_buf_);
    }
    if (layout_.y_next >= 0) {
      std::size_t p = 0;
      for (int i = 0; i < nx_; ++i) {
        const Vec5 v = rsd_.get(i, ny_ - 1, k);
        for (std::size_t c = 0; c < 5; ++c) row_buf_[p++] = v[c];
      }
      comm_->send<double>(layout_.y_next, kTagLtNorth, row_buf_);
    }
  }
}

void LuRank::ssor_ut() {
  for (int k = nz_ - 1; k >= 0; --k) {
    if (layout_.x_next >= 0) {
      comm_->recv<double>(layout_.x_next, kTagUtWest, col_buf_);
      std::size_t p = 0;
      for (int j = 0; j < ny_; ++j) {
        Vec5 v;
        for (std::size_t c = 0; c < 5; ++c) v[c] = col_buf_[p++];
        rsd_.set(nx_, j, k, v);
      }
    } else {
      for (int j = 0; j < ny_; ++j) rsd_.set(nx_, j, k, kZeroVec);
    }
    if (layout_.y_next >= 0) {
      comm_->recv<double>(layout_.y_next, kTagUtSouth, row_buf_);
      std::size_t p = 0;
      for (int i = 0; i < nx_; ++i) {
        Vec5 v;
        for (std::size_t c = 0; c < 5; ++c) v[c] = row_buf_[p++];
        rsd_.set(i, ny_, k, v);
      }
    } else {
      for (int i = 0; i < nx_; ++i) rsd_.set(i, ny_, k, kZeroVec);
    }

    for (int j = ny_ - 1; j >= 0; --j) {
      for (int i = nx_ - 1; i >= 0; --i) {
        const Block5 d = diag_block(u_.get(i, j, k));
        // (D + U) delta = D delta*; delta* is the current rsd value.
        Vec5 r = matvec5(d, rsd_.get(i, j, k));
        const Vec5 e = matvec5(off_, rsd_.get(i + 1, j, k));
        const Vec5 nb = matvec5(off_, rsd_.get(i, j + 1, k));
        const Vec5 t = matvec5(off_, rsd_.get(i, j, k + 1));
        for (std::size_t c = 0; c < 5; ++c) r[c] -= e[c] + nb[c] + t[c];
        Lu5 f;
        if (!lu_factor5(d, f)) {
          throw std::runtime_error("LU ssor_ut: singular diagonal block");
        }
        rsd_.set(i, j, k, lu_solve5(f, r));
      }
    }

    if (layout_.x_prev >= 0) {
      std::size_t p = 0;
      for (int j = 0; j < ny_; ++j) {
        const Vec5 v = rsd_.get(0, j, k);
        for (std::size_t c = 0; c < 5; ++c) col_buf_[p++] = v[c];
      }
      comm_->send<double>(layout_.x_prev, kTagUtWest, col_buf_);
    }
    if (layout_.y_prev >= 0) {
      std::size_t p = 0;
      for (int i = 0; i < nx_; ++i) {
        const Vec5 v = rsd_.get(i, 0, k);
        for (std::size_t c = 0; c < 5; ++c) row_buf_[p++] = v[c];
      }
      comm_->send<double>(layout_.y_prev, kTagUtSouth, row_buf_);
    }
  }
}

double LuRank::ssor_rs() {
  double sum = 0.0;
  for (int k = 0; k < nz_; ++k) {
    for (int j = 0; j < ny_; ++j) {
      for (int i = 0; i < nx_; ++i) {
        const Vec5 d = rsd_.get(i, j, k);
        Vec5 v = u_.get(i, j, k);
        for (std::size_t c = 0; c < 5; ++c) v[c] += config_.omega * d[c];
        u_.set(i, j, k, v);
        sum += norm2sq5(d);
      }
    }
  }
  return std::sqrt(comm_->allreduce_sum(sum));
}

double LuRank::error() {
  const int n = config_.n;
  double max_err = 0.0;
  for (int k = 0; k < nz_; ++k) {
    for (int j = 0; j < ny_; ++j) {
      for (int i = 0; i < nx_; ++i) {
        const Vec5 ex = exact_solution(grid_coord(layout_.x.begin + i, n),
                                       grid_coord(layout_.y.begin + j, n),
                                       grid_coord(k, n));
        const Vec5 uv = u_.get(i, j, k);
        for (std::size_t c = 0; c < 5; ++c) {
          max_err = std::max(max_err, std::fabs(uv[c] - ex[c]));
        }
      }
    }
  }
  return comm_->allreduce_max(max_err);
}

double LuRank::pintgr() {
  // Surface integral of the first component over the two physical z faces.
  double sum = 0.0;
  for (int j = 0; j < ny_; ++j) {
    for (int i = 0; i < nx_; ++i) {
      sum += u_.at(0, i, j, 0) + u_.at(0, i, j, nz_ - 1);
    }
  }
  const double h = 1.0 / static_cast<double>(config_.n - 1);
  return comm_->allreduce_sum(sum) * h * h;
}

double LuRank::final_verify() {
  exchange_halo();
  double sum = 0.0;
  for (int k = 0; k < nz_; ++k) {
    for (int j = 0; j < ny_; ++j) {
      for (int i = 0; i < nx_; ++i) {
        const Vec5 au = apply_operator(u_, i, j, k, config_.op, coupling_);
        sum += norm2sq5(sub5(forcing_.get(i, j, k), au));
      }
    }
  }
  const double total = comm_->allreduce_sum(sum);
  const double npts = static_cast<double>(config_.n) *
                      static_cast<double>(config_.n) *
                      static_cast<double>(config_.n) * 5.0;
  return std::sqrt(total / npts);
}

LuRunResult run_lu(const LuConfig& config, int ranks,
                   const simmpi::NetworkParams& net) {
  LuRunResult result;
  std::mutex mu;
  result.run = simmpi::run(ranks, net, [&](simmpi::Comm& comm) {
    LuRank rank(config, comm);
    rank.initialize();
    rank.erhs();
    rank.ssor_init();
    rank.ssor_iter();
    const double r0 = rank.final_verify();
    for (int it = 0; it < config.iterations; ++it) {
      rank.ssor_iter();
      rank.ssor_lt();
      rank.ssor_ut();
      rank.ssor_rs();
    }
    const double err = rank.error();
    const double integral = rank.pintgr();
    const double r1 = rank.final_verify();
    if (comm.rank() == 0) {
      std::lock_guard lock(mu);
      result.initial_residual = r0;
      result.final_residual = r1;
      result.final_error = err;
      result.surface_integral = integral;
    }
  });
  return result;
}

}  // namespace kcoup::npb::lu
