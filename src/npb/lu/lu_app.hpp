#pragma once

#include <vector>

#include "npb/common/block5.hpp"
#include "npb/common/decomp.hpp"
#include "npb/common/field.hpp"
#include "npb/common/problem.hpp"
#include "npb/common/stencil.hpp"
#include "simmpi/simmpi.hpp"

namespace kcoup::npb::lu {

/// Configuration of the LU port.
///
/// LU keeps the paper's ten-kernel decomposition (§4.3): an SSOR iteration
/// whose lower/upper triangular solves sweep the grid plane by plane with
/// 5x5 jacobian blocks, on the paper's 2-D pencil partitioning (x and y
/// halved alternately, z intact).  Partition-boundary data moves in many
/// small per-plane messages — the diagonal pipelining that makes LU "very
/// sensitive to the small-message communication performance".
struct LuConfig {
  int n = 12;
  int iterations = 50;
  double tau = 0.4;    ///< pseudo-time step
  double omega = 1.0;  ///< SSOR relaxation factor
  double gamma = 0.05; ///< u-dependent jacobian diagonal strength
  OperatorSpec op;
};

/// Per-rank LU solver.  Main loop: ssor_iter, ssor_lt, ssor_ut, ssor_rs;
/// prologue initialize/erhs/ssor_init; epilogue error/pintgr/final.
class LuRank {
 public:
  LuRank(const LuConfig& config, simmpi::Comm& comm);

  void initialize();  // kernel 1: initial values
  void erhs();        // kernel 2: forcing (manufactured)
  void ssor_init();   // kernel 3: SSOR work arrays
  void ssor_iter();   // kernel 4: halo exchange + rsd = tau (f - A u)
  void ssor_lt();     // kernel 5: lower triangular wavefront solve
  void ssor_ut();     // kernel 6: upper triangular wavefront solve
  double ssor_rs();   // kernel 7: u += omega * delta; Newton residual
  double error();     // kernel 8: max error vs exact solution
  double pintgr();    // kernel 9: surface integral over the z faces
  double final_verify();  // kernel 10: global residual norm

 private:
  void exchange_halo();
  void fill_analytic_ghosts();
  [[nodiscard]] Block5 diag_block(const Vec5& u_point) const;

  LuConfig config_;
  simmpi::Comm* comm_;
  PencilDecomp decomp_;
  PencilDecomp::RankLayout layout_;
  int nx_, ny_, nz_;

  Field5 u_;
  Field5 rsd_;
  Field5 forcing_;
  Block5 coupling_;
  Block5 off_;  ///< constant off-diagonal jacobian block (per direction)

  std::vector<double> col_buf_, row_buf_;
};

struct LuRunResult {
  double final_error = 0.0;
  double initial_residual = 0.0;
  double final_residual = 0.0;
  double surface_integral = 0.0;
  simmpi::RunResult run;
};

[[nodiscard]] LuRunResult run_lu(const LuConfig& config, int ranks,
                                 const simmpi::NetworkParams& net = {});

}  // namespace kcoup::npb::lu
