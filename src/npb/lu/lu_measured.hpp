#pragma once

#include "coupling/parallel_measurement.hpp"
#include "npb/lu/lu_app.hpp"
#include "simmpi/simmpi.hpp"

namespace kcoup::npb::lu {

/// Host-measured parallel LU: the real numeric LuRank kernels (including
/// the per-plane wavefront sweeps) timed with the per-thread CPU clock
/// under the parallel measurement protocol (see npb/bt/bt_measured.hpp).
[[nodiscard]] coupling::ParallelLoopApp make_measured_lu_app(LuRank& rank,
                                                             int iterations,
                                                             simmpi::Comm& comm);

[[nodiscard]] coupling::ParallelStudyResult run_lu_measured_study(
    const LuConfig& config, int ranks, const simmpi::NetworkParams& net,
    const coupling::StudyOptions& study);

}  // namespace kcoup::npb::lu
