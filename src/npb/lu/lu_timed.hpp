#pragma once

#include <vector>

#include "coupling/parallel_measurement.hpp"
#include "machine/machine.hpp"
#include "npb/common/decomp.hpp"
#include "npb/lu/lu_model.hpp"
#include "simmpi/simmpi.hpp"

namespace kcoup::npb::lu {

/// Options of the timed parallel LU path.
struct TimedLuOptions {
  machine::MachineConfig machine;
  double jitter = 0.05;
  LuWorkConstants constants;
};

/// Timing-only LU rank: executes the *real* diagonal-pipelined wavefront —
/// one receive/compute/send hand-off per z-plane per sweep, with real
/// payload sizes — while charging machine-priced compute per plane slice.
/// The pipeline fill (px + py - 2 plane-stages) and LU's sensitivity to
/// small-message latency (paper §4.3) emerge from the simulated execution
/// instead of being modeled analytically.
class TimedLuRank {
 public:
  TimedLuRank(int n, const TimedLuOptions& options, simmpi::Comm& comm);

  [[nodiscard]] coupling::ParallelLoopApp make_app(int iterations);

  void initialize();
  void erhs();
  void ssor_init();
  void ssor_iter();
  void ssor_lt();
  void ssor_ut();
  void ssor_rs();
  void error();
  void pintgr();
  void final_verify();
  void reset();

 private:
  void charge(const machine::WorkProfile& profile);
  /// Per-plane jittered slice of an already machine-priced sweep cost.
  void advance_slice(double base_slice, machine::KernelId kernel, int plane);
  void wavefront(const machine::WorkProfile& profile, bool forward,
                 int tag_col, int tag_row);

  TimedLuOptions options_;
  simmpi::Comm* comm_;
  PencilDecomp decomp_;
  PencilDecomp::RankLayout layout_;
  int nx_, ny_, nz_;

  machine::Machine machine_;
  LuKernelProfiles profiles_;
  std::uint64_t invocation_ = 0;

  std::vector<double> xface_, yface_, col_buf_, row_buf_;
};

/// Run the full parallel coupling study on `ranks` timed LU ranks.
[[nodiscard]] coupling::ParallelStudyResult run_lu_parallel_study(
    int n, int iterations, int ranks, const TimedLuOptions& options,
    const coupling::StudyOptions& study);

}  // namespace kcoup::npb::lu
