#pragma once

#include <memory>

#include "machine/config.hpp"
#include "npb/common/modeled_app.hpp"
#include "npb/common/problem.hpp"

namespace kcoup::npb::lu {

/// Structural constants of the LU kernels, derived from the numeric port in
/// lu_app.cpp.
struct LuWorkConstants {
  double flops_rhs_per_point = 135;   ///< ssor_iter
  double flops_lt_per_point = 365;    ///< jacobian + lower wavefront solve
  double flops_ut_per_point = 415;    ///< + the extra D*delta matvec
  double flops_rs_per_point = 15;
  double flops_init_per_point = 100;
  double flops_erhs_per_point = 215;
  double flops_error_per_point = 60;
  double flops_final_per_point = 70;
  std::size_t comp_bytes = 5 * sizeof(double);
};

/// Build the modeled LU application (the paper's ten kernels, §4.3): main
/// loop {Ssor_Iter, Ssor_LT, Ssor_UT, Ssor_RS}; prologue Initialization /
/// Erhs / Ssor_Init; epilogue Error / Pintgr / Final.  The triangular sweeps
/// issue per-z-plane wavefront messages plus the (px + py - 2) pipeline-fill
/// hand-offs, so LU is latency-bound at scale as the paper stresses.
[[nodiscard]] std::unique_ptr<ModeledApp> make_modeled_lu(
    ProblemClass cls, int ranks, machine::MachineConfig config,
    const LuWorkConstants& k = {});

[[nodiscard]] std::unique_ptr<ModeledApp> make_modeled_lu_grid(
    int n, int iterations, int ranks, machine::MachineConfig config,
    const LuWorkConstants& k = {});

/// Compute/traffic-only WorkProfiles of the ten LU kernels for one rank's
/// local extents, with regions registered on `m`.  No messages or
/// synchronisation annotations (see bt_model.hpp for the rationale).
struct LuKernelProfiles {
  machine::WorkProfile init, erhs, ssor_init, ssor_iter, ssor_lt, ssor_ut,
      ssor_rs, error, pintgr, final;
};
[[nodiscard]] LuKernelProfiles lu_kernel_profiles(machine::Machine& m, int nx,
                                                  int ny, int nz,
                                                  const LuWorkConstants& k = {});

}  // namespace kcoup::npb::lu
