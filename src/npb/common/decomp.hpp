#pragma once

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace kcoup::npb {

/// Half-open index range of a 1-D block distribution.
struct Range {
  int begin = 0;
  int count = 0;
  [[nodiscard]] int end() const { return begin + count; }
};

/// Block-distribute n items over `parts` parts; remainders go to the lowest
/// indices (the NPB convention).
[[nodiscard]] inline Range split_range(int n, int parts, int idx) {
  assert(parts > 0 && idx >= 0 && idx < parts);
  const int base = n / parts;
  const int extra = n % parts;
  Range r;
  r.count = base + (idx < extra ? 1 : 0);
  r.begin = idx * base + (idx < extra ? idx : extra);
  return r;
}

/// 2-D square decomposition over the y and z dimensions, used by our BT and
/// SP ports.  The paper's codes use NPB's 3-D multipartition; a 2-D pencil
/// decomposition preserves the communication structure the coupling analysis
/// sees (face exchanges in copy_faces, distributed line solves in two of the
/// three sweep directions) — see DESIGN.md §2 for the substitution note.
/// Requires a square rank count (paper §4.1: "the number of processors is a
/// square").
class SquareDecomp {
 public:
  explicit SquareDecomp(int ranks) : ranks_(ranks) {
    int q = 1;
    while (q * q < ranks) ++q;
    if (q * q != ranks || ranks < 1) {
      throw std::invalid_argument("SquareDecomp: rank count must be square");
    }
    q_ = q;
  }

  [[nodiscard]] int ranks() const { return ranks_; }
  [[nodiscard]] int q() const { return q_; }

  struct RankLayout {
    int py = 0, pz = 0;       ///< processor coordinates in the y-z grid
    Range y, z;               ///< owned global index ranges
    int y_prev = -1, y_next = -1;  ///< neighbour ranks (-1 at boundary)
    int z_prev = -1, z_next = -1;
  };

  [[nodiscard]] RankLayout layout(int rank, int ny, int nz) const {
    assert(rank >= 0 && rank < ranks_);
    RankLayout l;
    l.py = rank % q_;
    l.pz = rank / q_;
    l.y = split_range(ny, q_, l.py);
    l.z = split_range(nz, q_, l.pz);
    l.y_prev = l.py > 0 ? rank - 1 : -1;
    l.y_next = l.py < q_ - 1 ? rank + 1 : -1;
    l.z_prev = l.pz > 0 ? rank - q_ : -1;
    l.z_next = l.pz < q_ - 1 ? rank + q_ : -1;
    return l;
  }

 private:
  int ranks_;
  int q_ = 1;
};

/// 2-D pencil decomposition over x and y by repeated halving (x first),
/// matching the paper's description of LU: "A 2-D partitioning of the grid
/// onto processors occurs by halving the grid repeatedly in the first two
/// dimensions, alternately x and then y ... resulting in vertical
/// pencil-like grid partitions" (§4.3).  Requires a power-of-two rank count.
class PencilDecomp {
 public:
  explicit PencilDecomp(int ranks) : ranks_(ranks) {
    if (ranks < 1 || (ranks & (ranks - 1)) != 0) {
      throw std::invalid_argument(
          "PencilDecomp: rank count must be a power of two");
    }
    int m = 0;
    while ((1 << m) < ranks) ++m;
    px_ = 1 << ((m + 1) / 2);  // x halved first, so it gets the extra factor
    py_ = 1 << (m / 2);
  }

  [[nodiscard]] int ranks() const { return ranks_; }
  [[nodiscard]] int px() const { return px_; }
  [[nodiscard]] int py() const { return py_; }

  struct RankLayout {
    int pi = 0, pj = 0;
    Range x, y;
    int x_prev = -1, x_next = -1;
    int y_prev = -1, y_next = -1;
  };

  [[nodiscard]] RankLayout layout(int rank, int nx, int ny) const {
    assert(rank >= 0 && rank < ranks_);
    RankLayout l;
    l.pi = rank % px_;
    l.pj = rank / px_;
    l.x = split_range(nx, px_, l.pi);
    l.y = split_range(ny, py_, l.pj);
    l.x_prev = l.pi > 0 ? rank - 1 : -1;
    l.x_next = l.pi < px_ - 1 ? rank + 1 : -1;
    l.y_prev = l.pj > 0 ? rank - px_ : -1;
    l.y_next = l.pj < py_ - 1 ? rank + px_ : -1;
    return l;
  }

 private:
  int ranks_;
  int px_ = 1, py_ = 1;
};

}  // namespace kcoup::npb
