#pragma once

#include <span>

#include "npb/common/block5.hpp"

namespace kcoup::npb {

/// One row of a block tridiagonal system with 5x5 blocks,
///   A x_{m-1} + B x_m + C x_{m+1} = r.
/// The first row of the global line must have A = 0 and the last C = 0.
struct BlockTriRow {
  Block5 a{}, b{}, c{};
  Vec5 r{};
};

/// Normalised eliminated row:  x_m = rtil - Ctil x_{m+1}.
struct BlockTriState {
  Block5 ctil{};
  Vec5 rtil{};
};

/// Forward elimination (block Thomas) over a contiguous span of one global
/// line.  `prev` is the eliminated state of row m0-1 from the predecessor
/// rank, or nullptr on the first rank.  Writes one state per row into `out`
/// and returns the last row's state — the 25+5 doubles per line a rank
/// forwards to its successor in the distributed pipelined solve.
/// Returns false if a pivot block is singular (cannot happen for the
/// diagonally dominant systems the applications build; checked regardless).
[[nodiscard]] bool blocktri_forward(std::span<const BlockTriRow> rows,
                                    const BlockTriState* prev,
                                    std::span<BlockTriState> out,
                                    BlockTriState& last);

/// Back substitution: `xnext` is x at the first index past the local end
/// (zero vector on the last rank).  Fills `x` and returns x[first] — the
/// 5 doubles sent back to the predecessor rank.
[[nodiscard]] Vec5 blocktri_backward(std::span<const BlockTriState> states,
                                     const Vec5& xnext, std::span<Vec5> x);

/// Convenience: solve a whole single-rank line, overwriting `x`.
[[nodiscard]] bool blocktri_solve_line(std::span<const BlockTriRow> rows,
                                       std::span<Vec5> x,
                                       std::span<BlockTriState> scratch);

}  // namespace kcoup::npb
