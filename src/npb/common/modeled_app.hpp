#pragma once

// Compatibility shim: ModeledApp moved into the coupling library (it is
// application-agnostic scaffolding).  The NPB work models keep using the
// kcoup::npb::ModeledApp name.

#include "coupling/modeled_app.hpp"

namespace kcoup::npb {
using coupling::ModeledApp;
}  // namespace kcoup::npb
