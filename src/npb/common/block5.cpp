#include "npb/common/block5.hpp"

#include <cstdlib>

namespace kcoup::npb {

bool lu_factor5(const Block5& m, Lu5& out) {
  out.lu = m;
  Block5& a = out.lu;
  for (int col = 0; col < 5; ++col) {
    // Partial pivot: largest magnitude on/below the diagonal.
    int pivot = col;
    double best = std::fabs(a[static_cast<std::size_t>(col * 5 + col)]);
    for (int r = col + 1; r < 5; ++r) {
      const double v = std::fabs(a[static_cast<std::size_t>(r * 5 + col)]);
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best == 0.0) return false;
    out.piv[static_cast<std::size_t>(col)] = pivot;
    if (pivot != col) {
      for (int c = 0; c < 5; ++c) {
        std::swap(a[static_cast<std::size_t>(col * 5 + c)],
                  a[static_cast<std::size_t>(pivot * 5 + c)]);
      }
    }
    const double inv = 1.0 / a[static_cast<std::size_t>(col * 5 + col)];
    for (int r = col + 1; r < 5; ++r) {
      const double f = a[static_cast<std::size_t>(r * 5 + col)] * inv;
      a[static_cast<std::size_t>(r * 5 + col)] = f;
      for (int c = col + 1; c < 5; ++c) {
        a[static_cast<std::size_t>(r * 5 + c)] -=
            f * a[static_cast<std::size_t>(col * 5 + c)];
      }
    }
  }
  return true;
}

Vec5 lu_solve5(const Lu5& f, const Vec5& b) {
  Vec5 x = b;
  // Apply row permutation.
  for (int i = 0; i < 5; ++i) {
    const int p = f.piv[static_cast<std::size_t>(i)];
    if (p != i) std::swap(x[static_cast<std::size_t>(i)], x[static_cast<std::size_t>(p)]);
  }
  // Forward substitution (unit lower).
  for (int r = 1; r < 5; ++r) {
    double s = x[static_cast<std::size_t>(r)];
    for (int c = 0; c < r; ++c) {
      s -= f.lu[static_cast<std::size_t>(r * 5 + c)] * x[static_cast<std::size_t>(c)];
    }
    x[static_cast<std::size_t>(r)] = s;
  }
  // Back substitution.
  for (int r = 4; r >= 0; --r) {
    double s = x[static_cast<std::size_t>(r)];
    for (int c = r + 1; c < 5; ++c) {
      s -= f.lu[static_cast<std::size_t>(r * 5 + c)] * x[static_cast<std::size_t>(c)];
    }
    x[static_cast<std::size_t>(r)] = s / f.lu[static_cast<std::size_t>(r * 5 + r)];
  }
  return x;
}

Block5 lu_solve5_block(const Lu5& f, const Block5& b) {
  Block5 out;
  for (int col = 0; col < 5; ++col) {
    Vec5 rhs;
    for (int r = 0; r < 5; ++r) {
      rhs[static_cast<std::size_t>(r)] = b[static_cast<std::size_t>(r * 5 + col)];
    }
    const Vec5 x = lu_solve5(f, rhs);
    for (int r = 0; r < 5; ++r) {
      out[static_cast<std::size_t>(r * 5 + col)] = x[static_cast<std::size_t>(r)];
    }
  }
  return out;
}

bool invert5(const Block5& m, Block5& out) {
  Lu5 f;
  if (!lu_factor5(m, f)) return false;
  out = lu_solve5_block(f, identity5());
  return true;
}

}  // namespace kcoup::npb
