#include "npb/common/penta.hpp"

#include <cassert>

namespace kcoup::npb {

std::pair<PentaState, PentaState> penta_forward(std::span<const PentaRow> rows,
                                                PentaState p2, PentaState p1,
                                                std::span<PentaState> out) {
  assert(out.size() == rows.size());
  for (std::size_t m = 0; m < rows.size(); ++m) {
    const PentaRow& row = rows[m];
    // Substitute x_{m-2} = p2.rtil - p2.dtil x_{m-1} - p2.etil x_m.
    const double b1 = row.b - row.a * p2.dtil;
    double c1 = row.c - row.a * p2.etil;
    double r1 = row.r - row.a * p2.rtil;
    // Substitute x_{m-1} = p1.rtil - p1.dtil x_m - p1.etil x_{m+1}.
    c1 -= b1 * p1.dtil;
    double d1 = row.d - b1 * p1.etil;
    r1 -= b1 * p1.rtil;
    // Normalise.
    const double inv = 1.0 / c1;
    PentaState s;
    s.dtil = d1 * inv;
    s.etil = row.e * inv;
    s.rtil = r1 * inv;
    out[m] = s;
    p2 = p1;
    p1 = s;
  }
  return {p2, p1};  // states of rows (last-1, last)
}

std::pair<double, double> penta_backward(std::span<const PentaState> states,
                                         double xn1, double xn2,
                                         std::span<double> x) {
  assert(x.size() == states.size());
  const std::size_t n = states.size();
  // x_m = rtil - dtil x_{m+1} - etil x_{m+2}
  double next1 = xn1;  // x_{m+1}
  double next2 = xn2;  // x_{m+2}
  for (std::size_t idx = n; idx-- > 0;) {
    const PentaState& s = states[idx];
    const double v = s.rtil - s.dtil * next1 - s.etil * next2;
    x[idx] = v;
    next2 = next1;
    next1 = v;
  }
  const double x0 = x[0];
  const double x1 = n > 1 ? x[1] : xn1;
  return {x0, x1};
}

void penta_solve_line(std::span<PentaRow> rows, std::span<double> x,
                      std::span<PentaState> scratch) {
  assert(rows.size() == x.size() && scratch.size() == rows.size());
  (void)penta_forward(rows, PentaState{}, PentaState{}, scratch);
  (void)penta_backward(scratch, 0.0, 0.0, x);
}

}  // namespace kcoup::npb
