#pragma once

#include <array>
#include <cmath>
#include <cstddef>

namespace kcoup::npb {

/// Dense 5x5 block and 5-vector primitives shared by the BT (block
/// tridiagonal) and LU (SSOR with 5x5 jacobian blocks) solvers.  Row-major
/// fixed-size arrays; everything is inline and allocation-free because these
/// run in the innermost solver loops.
using Block5 = std::array<double, 25>;  // m[r*5 + c]
using Vec5 = std::array<double, 5>;

inline constexpr Block5 kZeroBlock{};
inline constexpr Vec5 kZeroVec{};

[[nodiscard]] constexpr Block5 identity5(double scale = 1.0) {
  Block5 b{};
  for (int i = 0; i < 5; ++i) b[static_cast<std::size_t>(i * 5 + i)] = scale;
  return b;
}

// --- Vector ops -------------------------------------------------------------

inline void axpy5(double a, const Vec5& x, Vec5& y) {
  for (int i = 0; i < 5; ++i) y[static_cast<std::size_t>(i)] += a * x[static_cast<std::size_t>(i)];
}

[[nodiscard]] inline Vec5 sub5(const Vec5& a, const Vec5& b) {
  Vec5 r;
  for (int i = 0; i < 5; ++i) {
    const auto u = static_cast<std::size_t>(i);
    r[u] = a[u] - b[u];
  }
  return r;
}

[[nodiscard]] inline double dot5(const Vec5& a, const Vec5& b) {
  double s = 0.0;
  for (int i = 0; i < 5; ++i) {
    const auto u = static_cast<std::size_t>(i);
    s += a[u] * b[u];
  }
  return s;
}

[[nodiscard]] inline double norm2sq5(const Vec5& a) { return dot5(a, a); }

// --- Matrix ops ------------------------------------------------------------

/// y = M x
[[nodiscard]] inline Vec5 matvec5(const Block5& m, const Vec5& x) {
  Vec5 y{};
  for (int r = 0; r < 5; ++r) {
    double s = 0.0;
    for (int c = 0; c < 5; ++c) {
      s += m[static_cast<std::size_t>(r * 5 + c)] * x[static_cast<std::size_t>(c)];
    }
    y[static_cast<std::size_t>(r)] = s;
  }
  return y;
}

/// C = A B
[[nodiscard]] inline Block5 matmul5(const Block5& a, const Block5& b) {
  Block5 c{};
  for (int r = 0; r < 5; ++r) {
    for (int k = 0; k < 5; ++k) {
      const double arx = a[static_cast<std::size_t>(r * 5 + k)];
      for (int col = 0; col < 5; ++col) {
        c[static_cast<std::size_t>(r * 5 + col)] +=
            arx * b[static_cast<std::size_t>(k * 5 + col)];
      }
    }
  }
  return c;
}

/// C = A - B
[[nodiscard]] inline Block5 matsub5(const Block5& a, const Block5& b) {
  Block5 c;
  for (std::size_t i = 0; i < 25; ++i) c[i] = a[i] - b[i];
  return c;
}

/// In-place LU factorisation with partial pivoting of a 5x5 block.
/// Returns false if the block is numerically singular.
struct Lu5 {
  Block5 lu;
  std::array<int, 5> piv;
};

[[nodiscard]] bool lu_factor5(const Block5& m, Lu5& out);

/// Solve (LU) x = b for one right-hand side.
[[nodiscard]] Vec5 lu_solve5(const Lu5& f, const Vec5& b);

/// Solve (LU) X = B for a block right-hand side (column by column).
[[nodiscard]] Block5 lu_solve5_block(const Lu5& f, const Block5& b);

/// Explicit inverse (used by tests; the solvers use the factorisation).
[[nodiscard]] bool invert5(const Block5& m, Block5& out);

}  // namespace kcoup::npb
