#pragma once

#include <stdexcept>
#include <string>

namespace kcoup::npb {

/// The three NAS Parallel application benchmarks studied by the paper.
enum class Benchmark { kBT, kSP, kLU };

/// NPB problem classes used in the paper's evaluation.
enum class ProblemClass { kS, kW, kA, kB };

struct ProblemSize {
  int n = 0;           ///< grid extent per dimension (cubic grids)
  int iterations = 0;  ///< main-loop iteration count
};

[[nodiscard]] inline std::string to_string(ProblemClass c) {
  switch (c) {
    case ProblemClass::kS: return "S";
    case ProblemClass::kW: return "W";
    case ProblemClass::kA: return "A";
    case ProblemClass::kB: return "B";
  }
  return "?";
}

[[nodiscard]] inline std::string to_string(Benchmark b) {
  switch (b) {
    case Benchmark::kBT: return "BT";
    case Benchmark::kSP: return "SP";
    case Benchmark::kLU: return "LU";
  }
  return "?";
}

/// Data-set sizes exactly as the paper reports them (Tables 1, 5 and 7) and
/// main-loop iteration counts (§4.1 gives BT's explicitly; SP and LU use the
/// NPB 2.x standard counts).
[[nodiscard]] inline ProblemSize problem_size(Benchmark b, ProblemClass c) {
  switch (b) {
    case Benchmark::kBT:
      switch (c) {
        case ProblemClass::kS: return {12, 60};    // Table 1
        case ProblemClass::kW: return {32, 200};   // Table 1
        case ProblemClass::kA: return {64, 200};   // Table 1
        case ProblemClass::kB: return {102, 200};  // NPB standard
      }
      break;
    case Benchmark::kSP:
      switch (c) {
        case ProblemClass::kS: return {12, 100};   // NPB standard
        case ProblemClass::kW: return {36, 400};   // Table 5
        case ProblemClass::kA: return {64, 400};   // Table 5
        case ProblemClass::kB: return {102, 400};  // Table 5
      }
      break;
    case Benchmark::kLU:
      switch (c) {
        case ProblemClass::kS: return {12, 50};    // NPB standard
        case ProblemClass::kW: return {33, 300};   // Table 7
        case ProblemClass::kA: return {64, 250};   // Table 7
        case ProblemClass::kB: return {102, 250};  // Table 7
      }
      break;
  }
  throw std::invalid_argument("problem_size: unknown benchmark/class");
}

/// BT and SP require square processor counts (paper §4.1/§4.2); LU requires
/// a power of two (§4.3).
[[nodiscard]] inline bool valid_rank_count(Benchmark b, int ranks) {
  if (ranks < 1) return false;
  if (b == Benchmark::kLU) return (ranks & (ranks - 1)) == 0;
  int q = 1;
  while (q * q < ranks) ++q;
  return q * q == ranks;
}

}  // namespace kcoup::npb
