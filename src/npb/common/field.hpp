#pragma once

#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

#include "npb/common/block5.hpp"

namespace kcoup::npb {

/// A 5-component 3-D field with a ghost ring, the storage shape shared by
/// the BT/SP/LU state arrays (u, rhs, forcing).  Components are innermost
/// (NPB's u(5,i,j,k) layout), so a grid point's 5 values are contiguous.
/// Interior indices run [0, n); ghost indices extend to [-ghost, n + ghost).
class Field5 {
 public:
  Field5(int nx, int ny, int nz, int ghost)
      : nx_(nx), ny_(ny), nz_(nz), g_(ghost),
        sx_(5),
        sy_(static_cast<std::size_t>(nx + 2 * ghost) * 5),
        sz_(static_cast<std::size_t>(nx + 2 * ghost) *
            static_cast<std::size_t>(ny + 2 * ghost) * 5),
        data_(static_cast<std::size_t>(nx + 2 * ghost) *
                  static_cast<std::size_t>(ny + 2 * ghost) *
                  static_cast<std::size_t>(nz + 2 * ghost) * 5,
              0.0) {
    assert(nx > 0 && ny > 0 && nz > 0 && ghost >= 0);
  }

  [[nodiscard]] int nx() const { return nx_; }
  [[nodiscard]] int ny() const { return ny_; }
  [[nodiscard]] int nz() const { return nz_; }
  [[nodiscard]] int ghost() const { return g_; }

  [[nodiscard]] std::size_t index(int i, int j, int k) const {
    assert(i >= -g_ && i < nx_ + g_);
    assert(j >= -g_ && j < ny_ + g_);
    assert(k >= -g_ && k < nz_ + g_);
    return static_cast<std::size_t>(k + g_) * sz_ +
           static_cast<std::size_t>(j + g_) * sy_ +
           static_cast<std::size_t>(i + g_) * sx_;
  }

  [[nodiscard]] double& at(int c, int i, int j, int k) {
    return data_[index(i, j, k) + static_cast<std::size_t>(c)];
  }
  [[nodiscard]] double at(int c, int i, int j, int k) const {
    return data_[index(i, j, k) + static_cast<std::size_t>(c)];
  }

  [[nodiscard]] Vec5 get(int i, int j, int k) const {
    const std::size_t base = index(i, j, k);
    Vec5 v;
    for (std::size_t c = 0; c < 5; ++c) v[c] = data_[base + c];
    return v;
  }
  void set(int i, int j, int k, const Vec5& v) {
    const std::size_t base = index(i, j, k);
    for (std::size_t c = 0; c < 5; ++c) data_[base + c] = v[c];
  }
  void add(int i, int j, int k, const Vec5& v) {
    const std::size_t base = index(i, j, k);
    for (std::size_t c = 0; c < 5; ++c) data_[base + c] += v[c];
  }

  void fill(double v) { data_.assign(data_.size(), v); }

  [[nodiscard]] std::span<double> data() { return data_; }
  [[nodiscard]] std::span<const double> data() const { return data_; }

  /// Bytes of the interior (the size work models use for region footprints).
  [[nodiscard]] std::size_t interior_bytes() const {
    return static_cast<std::size_t>(nx_) * static_cast<std::size_t>(ny_) *
           static_cast<std::size_t>(nz_) * 5 * sizeof(double);
  }

 private:
  int nx_, ny_, nz_, g_;
  std::size_t sx_, sy_, sz_;
  std::vector<double> data_;
};

}  // namespace kcoup::npb
