#include "npb/common/blocktri.hpp"

#include <cassert>

namespace kcoup::npb {

bool blocktri_forward(std::span<const BlockTriRow> rows,
                      const BlockTriState* prev,
                      std::span<BlockTriState> out, BlockTriState& last) {
  assert(out.size() == rows.size());
  BlockTriState carry;
  bool have_carry = prev != nullptr;
  if (have_carry) carry = *prev;

  for (std::size_t m = 0; m < rows.size(); ++m) {
    const BlockTriRow& row = rows[m];
    Block5 btil = row.b;
    Vec5 rtil = row.r;
    if (have_carry) {
      // Substitute x_{m-1} = carry.rtil - carry.ctil x_m.
      btil = matsub5(btil, matmul5(row.a, carry.ctil));
      const Vec5 ar = matvec5(row.a, carry.rtil);
      for (std::size_t c = 0; c < 5; ++c) rtil[c] -= ar[c];
    }
    Lu5 f;
    if (!lu_factor5(btil, f)) return false;
    BlockTriState s;
    s.ctil = lu_solve5_block(f, row.c);
    s.rtil = lu_solve5(f, rtil);
    out[m] = s;
    carry = s;
    have_carry = true;
  }
  last = carry;
  return true;
}

Vec5 blocktri_backward(std::span<const BlockTriState> states, const Vec5& xnext,
                       std::span<Vec5> x) {
  assert(x.size() == states.size());
  Vec5 next = xnext;
  for (std::size_t idx = states.size(); idx-- > 0;) {
    const BlockTriState& s = states[idx];
    Vec5 v = s.rtil;
    const Vec5 cx = matvec5(s.ctil, next);
    for (std::size_t c = 0; c < 5; ++c) v[c] -= cx[c];
    x[idx] = v;
    next = v;
  }
  return x.empty() ? xnext : x.front();
}

bool blocktri_solve_line(std::span<const BlockTriRow> rows, std::span<Vec5> x,
                         std::span<BlockTriState> scratch) {
  assert(rows.size() == x.size() && scratch.size() == rows.size());
  BlockTriState last;
  if (!blocktri_forward(rows, nullptr, scratch, last)) return false;
  (void)blocktri_backward(scratch, kZeroVec, x);
  return true;
}

}  // namespace kcoup::npb
