#pragma once

#include <cstdint>

namespace kcoup::npb {

/// The NPB pseudo-random number generator: the linear congruential scheme
///   x_{k+1} = a * x_k  (mod 2^46),   a = 5^13,
/// returning uniform deltas in (0, 1).  This is the exact generator the NAS
/// Parallel Benchmarks use to initialise fields, reimplemented with 64-bit
/// integer arithmetic (the original splits operands into 23-bit halves to
/// survive 64-bit floating point; 128-bit integer products make that
/// unnecessary and keep the sequence bit-identical).
class Randlc {
 public:
  static constexpr std::uint64_t kModulusBits = 46;
  static constexpr std::uint64_t kDefaultSeed = 314159265ULL;
  static constexpr std::uint64_t kA = 1220703125ULL;  // 5^13

  explicit Randlc(std::uint64_t seed = kDefaultSeed) : x_(mask(seed)) {}

  /// Next uniform double in (0, 1).
  double next() {
    x_ = mul46(x_, kA);
    return static_cast<double>(x_) * kR46;
  }

  /// Current state (the NPB convention exposes the seed).
  [[nodiscard]] std::uint64_t state() const { return x_; }

  /// Jump the generator forward by `n` steps in O(log n) — the NPB
  /// `ipow46`-style skip used so each rank can seed its subgrid
  /// independently yet reproduce the serial initialisation stream.
  void skip(std::uint64_t n) {
    std::uint64_t a = kA;
    while (n != 0) {
      if (n & 1) x_ = mul46(x_, a);
      a = mul46(a, a);
      n >>= 1;
    }
  }

 private:
  static constexpr double kR46 = 1.0 / static_cast<double>(1ULL << 46);

  static constexpr std::uint64_t mask(std::uint64_t v) {
    return v & ((1ULL << kModulusBits) - 1);
  }
  static constexpr std::uint64_t mul46(std::uint64_t a, std::uint64_t b) {
    __extension__ using u128 = unsigned __int128;
    return static_cast<std::uint64_t>((static_cast<u128>(a) * b) &
                                      ((1ULL << kModulusBits) - 1));
  }

  std::uint64_t x_;
};

}  // namespace kcoup::npb
