#pragma once

#include <cmath>

#include "npb/common/block5.hpp"
#include "npb/common/field.hpp"

namespace kcoup::npb {

/// The coupled 5-component elliptic operator shared by our BT/SP/LU ports:
///
///   A(u) = sum_d c_d * (2 u - u_{d-} - u_{d+})  +  eps * M u
///
/// a 7-point diffusion stencil per component plus a constant 5x5 coupling
/// matrix M tying the components together (so the BT block solves and the LU
/// jacobian blocks are genuinely 5x5, as in the Navier-Stokes originals).
/// M is fixed, non-symmetric and diagonally dominated after adding the
/// stencil diagonal, keeping every per-line system solvable.
struct OperatorSpec {
  double cx = 1.0, cy = 1.0, cz = 1.0;
  double eps = 0.2;

  /// Deterministic, non-trivial coupling matrix.
  [[nodiscard]] static Block5 coupling() {
    Block5 m{};
    for (int r = 0; r < 5; ++r) {
      for (int c = 0; c < 5; ++c) {
        // Smooth, asymmetric, O(1) entries with a dominant diagonal.
        const double v = (r == c) ? 2.0
                                  : 0.5 * std::sin(1.0 + 0.7 * r + 1.3 * c);
        m[static_cast<std::size_t>(r * 5 + c)] = v;
      }
    }
    return m;
  }
};

/// Apply A at interior point (i, j, k); neighbours may live in the ghost
/// ring (halo-exchanged or analytic-boundary values).
[[nodiscard]] inline Vec5 apply_operator(const Field5& u, int i, int j, int k,
                                         const OperatorSpec& op,
                                         const Block5& m) {
  Vec5 r{};
  const Vec5 uc = u.get(i, j, k);
  const Vec5 uxm = u.get(i - 1, j, k), uxp = u.get(i + 1, j, k);
  const Vec5 uym = u.get(i, j - 1, k), uyp = u.get(i, j + 1, k);
  const Vec5 uzm = u.get(i, j, k - 1), uzp = u.get(i, j, k + 1);
  for (std::size_t c = 0; c < 5; ++c) {
    r[c] = op.cx * (2.0 * uc[c] - uxm[c] - uxp[c]) +
           op.cy * (2.0 * uc[c] - uym[c] - uyp[c]) +
           op.cz * (2.0 * uc[c] - uzm[c] - uzp[c]);
  }
  const Vec5 coupled = matvec5(m, uc);
  for (std::size_t c = 0; c < 5; ++c) r[c] += op.eps * coupled[c];
  return r;
}

/// Smooth manufactured exact solution on the unit cube; component-dependent
/// so the coupling matrix is exercised.
[[nodiscard]] inline Vec5 exact_solution(double x, double y, double z) {
  Vec5 v;
  for (int c = 0; c < 5; ++c) {
    const double a = 1.0 + 0.25 * c;
    v[static_cast<std::size_t>(c)] =
        a * std::sin(M_PI * (x + 0.1 * c)) * std::cos(M_PI * y) *
            std::exp(-0.5 * z) +
        0.5 * (x * x + 2.0 * y * y + 3.0 * z * z);
  }
  return v;
}

/// Map a global grid index to a unit-cube coordinate.
[[nodiscard]] inline double grid_coord(int global_index, int n) {
  return n > 1 ? static_cast<double>(global_index) /
                     static_cast<double>(n - 1)
               : 0.0;
}

}  // namespace kcoup::npb
