#pragma once

#include <span>
#include <utility>

namespace kcoup::npb {

/// One row of a scalar pentadiagonal system
///   a x_{m-2} + b x_{m-1} + c x_m + d x_{m+1} + e x_{m+2} = r.
/// Rows at the ends of the global line must have their out-of-range
/// coefficients zeroed by the caller.
struct PentaRow {
  double a = 0, b = 0, c = 1, d = 0, e = 0, r = 0;
};

/// Normalised eliminated row:  x_m = rtil - dtil x_{m+1} - etil x_{m+2}.
struct PentaState {
  double dtil = 0, etil = 0, rtil = 0;
};

/// Forward elimination over a contiguous span of rows of one global line.
/// `p2` and `p1` are the normalised states of rows m0-2 and m0-1 (zero
/// states on the first rank).  Writes one PentaState per row into `out`
/// (same length as `rows`) and returns the states of the last two rows —
/// exactly the payload a rank forwards to its successor in the distributed
/// pipelined solve (2 x 3 doubles per line per component).
[[nodiscard]] std::pair<PentaState, PentaState> penta_forward(
    std::span<const PentaRow> rows, PentaState p2, PentaState p1,
    std::span<PentaState> out);

/// Back substitution over the span: `xn1` = x at the first index past the
/// local end, `xn2` = x one further (zero on the last rank).  Fills `x`
/// (same length as `states`) and returns (x[first], x[first+1]) — the
/// payload sent back to the predecessor rank.
[[nodiscard]] std::pair<double, double> penta_backward(
    std::span<const PentaState> states, double xn1, double xn2,
    std::span<double> x);

/// Convenience: solve a whole single-rank line in place (r overwritten by x).
void penta_solve_line(std::span<PentaRow> rows, std::span<double> x,
                      std::span<PentaState> scratch);

}  // namespace kcoup::npb
