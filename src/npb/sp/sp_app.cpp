#include "npb/sp/sp_app.hpp"

#include <cmath>
#include <cstring>
#include <mutex>
#include <stdexcept>

namespace kcoup::npb::sp {
namespace {

constexpr int kTagYPlus = 201, kTagYMinus = 202;
constexpr int kTagZPlus = 203, kTagZMinus = 204;
constexpr int kTagYFwd = 211, kTagYBwd = 212;
constexpr int kTagZFwd = 213, kTagZBwd = 214;

// Per line: 5 components x 2 rows x (dtil, etil, rtil).
constexpr std::size_t kFwdDoubles = 30;
// Per line: 5 components x 2 solution values.
constexpr std::size_t kBwdDoubles = 10;

double perturbation(int gi, int gj, int gk) {
  return 0.3 * std::sin(12.9898 * gi + 78.233 * gj + 37.719 * gk);
}

}  // namespace

SpRank::SpRank(const SpConfig& config, simmpi::Comm& comm)
    : config_(config),
      comm_(&comm),
      decomp_(comm.size()),
      layout_(decomp_.layout(comm.rank(), config.n, config.n)),
      nx_(config.n),
      ny_(layout_.y.count),
      nz_(layout_.z.count),
      u_(nx_, ny_, nz_, 1),
      rhs_(nx_, ny_, nz_, 1),
      forcing_(nx_, ny_, nz_, 1),
      coupling_(OperatorSpec::coupling()) {
  if (config_.n < 5) throw std::invalid_argument("SP: grid too small");
  // T = I + txeps/2 * M is diagonally dominant, hence invertible.
  tx_ = identity5();
  for (std::size_t e = 0; e < 25; ++e) {
    tx_[e] += 0.5 * config_.txeps * coupling_[e];
  }
  if (!invert5(tx_, txinv_)) {
    throw std::runtime_error("SP: TXINVR matrix not invertible");
  }

  const std::size_t max_lines = static_cast<std::size_t>(nx_) *
                                static_cast<std::size_t>(std::max(ny_, nz_));
  const auto max_len = static_cast<std::size_t>(
      std::max(nx_, std::max(ny_, nz_)));
  rows_.resize(max_len);
  xline_.resize(max_len);
  states_.resize(max_lines * max_len * 5);
  msg_fwd_.resize(max_lines * kFwdDoubles);
  msg_bwd_.resize(max_lines * kBwdDoubles);
}

PentaRow SpRank::make_row(int global_m, int global_n, double u_c,
                          double rhs_c) const {
  const double d = config_.dcoef;
  PentaRow row;
  row.c = 1.0 + 6.0 * d + config_.tau * config_.gamma * u_c;
  row.b = global_m >= 1 ? -2.0 * d : 0.0;
  row.a = global_m >= 2 ? -0.5 * d : 0.0;
  row.d = global_m <= global_n - 2 ? -2.0 * d : 0.0;
  row.e = global_m <= global_n - 3 ? -0.5 * d : 0.0;
  row.r = rhs_c;
  return row;
}

void SpRank::fill_analytic_ghosts() {
  const int n = config_.n;
  auto set_exact = [&](int i, int j, int k) {
    u_.set(i, j, k,
           exact_solution(grid_coord(i, n), grid_coord(layout_.y.begin + j, n),
                          grid_coord(layout_.z.begin + k, n)));
  };
  for (int k = 0; k < nz_; ++k) {
    for (int j = 0; j < ny_; ++j) {
      set_exact(-1, j, k);
      set_exact(nx_, j, k);
    }
  }
  for (int k = 0; k < nz_; ++k) {
    for (int i = 0; i < nx_; ++i) {
      if (layout_.y_prev < 0) set_exact(i, -1, k);
      if (layout_.y_next < 0) set_exact(i, ny_, k);
    }
  }
  for (int j = 0; j < ny_; ++j) {
    for (int i = 0; i < nx_; ++i) {
      if (layout_.z_prev < 0) set_exact(i, j, -1);
      if (layout_.z_next < 0) set_exact(i, j, nz_);
    }
  }
}

void SpRank::initialize() {
  const int n = config_.n;
  for (int k = 0; k < nz_; ++k) {
    for (int j = 0; j < ny_; ++j) {
      for (int i = 0; i < nx_; ++i) {
        const int gi = i, gj = layout_.y.begin + j, gk = layout_.z.begin + k;
        Vec5 v = exact_solution(grid_coord(gi, n), grid_coord(gj, n),
                                grid_coord(gk, n));
        const double p = perturbation(gi, gj, gk);
        for (std::size_t c = 0; c < 5; ++c) v[c] += p;
        u_.set(i, j, k, v);
      }
    }
  }
  fill_analytic_ghosts();

  Field5 exact(nx_, ny_, nz_, 1);
  for (int k = -1; k <= nz_; ++k) {
    for (int j = -1; j <= ny_; ++j) {
      for (int i = -1; i <= nx_; ++i) {
        exact.set(i, j, k,
                  exact_solution(grid_coord(i, n),
                                 grid_coord(layout_.y.begin + j, n),
                                 grid_coord(layout_.z.begin + k, n)));
      }
    }
  }
  for (int k = 0; k < nz_; ++k) {
    for (int j = 0; j < ny_; ++j) {
      for (int i = 0; i < nx_; ++i) {
        forcing_.set(i, j, k,
                     apply_operator(exact, i, j, k, config_.op, coupling_));
      }
    }
  }
}

void SpRank::exchange_halo() {
  auto pack_y = [&](int j, std::vector<double>& buf) {
    buf.resize(static_cast<std::size_t>(nx_) * static_cast<std::size_t>(nz_) * 5);
    std::size_t p = 0;
    for (int k = 0; k < nz_; ++k) {
      for (int i = 0; i < nx_; ++i) {
        const Vec5 v = u_.get(i, j, k);
        for (std::size_t c = 0; c < 5; ++c) buf[p++] = v[c];
      }
    }
  };
  auto unpack_y = [&](int j, const std::vector<double>& buf) {
    std::size_t p = 0;
    for (int k = 0; k < nz_; ++k) {
      for (int i = 0; i < nx_; ++i) {
        Vec5 v;
        for (std::size_t c = 0; c < 5; ++c) v[c] = buf[p++];
        u_.set(i, j, k, v);
      }
    }
  };
  auto pack_z = [&](int k, std::vector<double>& buf) {
    buf.resize(static_cast<std::size_t>(nx_) * static_cast<std::size_t>(ny_) * 5);
    std::size_t p = 0;
    for (int j = 0; j < ny_; ++j) {
      for (int i = 0; i < nx_; ++i) {
        const Vec5 v = u_.get(i, j, k);
        for (std::size_t c = 0; c < 5; ++c) buf[p++] = v[c];
      }
    }
  };
  auto unpack_z = [&](int k, const std::vector<double>& buf) {
    std::size_t p = 0;
    for (int j = 0; j < ny_; ++j) {
      for (int i = 0; i < nx_; ++i) {
        Vec5 v;
        for (std::size_t c = 0; c < 5; ++c) v[c] = buf[p++];
        u_.set(i, j, k, v);
      }
    }
  };

  std::vector<double> sy0, sy1, sz0, sz1, r;
  if (layout_.y_prev >= 0) {
    pack_y(0, sy0);
    comm_->send<double>(layout_.y_prev, kTagYMinus, sy0);
  }
  if (layout_.y_next >= 0) {
    pack_y(ny_ - 1, sy1);
    comm_->send<double>(layout_.y_next, kTagYPlus, sy1);
  }
  if (layout_.z_prev >= 0) {
    pack_z(0, sz0);
    comm_->send<double>(layout_.z_prev, kTagZMinus, sz0);
  }
  if (layout_.z_next >= 0) {
    pack_z(nz_ - 1, sz1);
    comm_->send<double>(layout_.z_next, kTagZPlus, sz1);
  }
  if (layout_.y_prev >= 0) {
    r.resize(static_cast<std::size_t>(nx_) * static_cast<std::size_t>(nz_) * 5);
    comm_->recv<double>(layout_.y_prev, kTagYPlus, r);
    unpack_y(-1, r);
  }
  if (layout_.y_next >= 0) {
    r.resize(static_cast<std::size_t>(nx_) * static_cast<std::size_t>(nz_) * 5);
    comm_->recv<double>(layout_.y_next, kTagYMinus, r);
    unpack_y(ny_, r);
  }
  if (layout_.z_prev >= 0) {
    r.resize(static_cast<std::size_t>(nx_) * static_cast<std::size_t>(ny_) * 5);
    comm_->recv<double>(layout_.z_prev, kTagZPlus, r);
    unpack_z(-1, r);
  }
  if (layout_.z_next >= 0) {
    r.resize(static_cast<std::size_t>(nx_) * static_cast<std::size_t>(ny_) * 5);
    comm_->recv<double>(layout_.z_next, kTagZMinus, r);
    unpack_z(nz_, r);
  }
}

void SpRank::copy_faces() {
  exchange_halo();
  const double tau = config_.tau;
  for (int k = 0; k < nz_; ++k) {
    for (int j = 0; j < ny_; ++j) {
      for (int i = 0; i < nx_; ++i) {
        const Vec5 au = apply_operator(u_, i, j, k, config_.op, coupling_);
        const Vec5 f = forcing_.get(i, j, k);
        Vec5 r;
        for (std::size_t c = 0; c < 5; ++c) r[c] = tau * (f[c] - au[c]);
        rhs_.set(i, j, k, r);
      }
    }
  }
}

void SpRank::txinvr() {
  for (int k = 0; k < nz_; ++k) {
    for (int j = 0; j < ny_; ++j) {
      for (int i = 0; i < nx_; ++i) {
        rhs_.set(i, j, k, matvec5(tx_, rhs_.get(i, j, k)));
      }
    }
  }
}

void SpRank::x_solve() {
  const int n = config_.n;
  auto rows = std::span(rows_).first(static_cast<std::size_t>(nx_));
  auto x = std::span(xline_).first(static_cast<std::size_t>(nx_));
  auto scratch =
      std::span(states_).first(static_cast<std::size_t>(nx_));
  for (int k = 0; k < nz_; ++k) {
    for (int j = 0; j < ny_; ++j) {
      for (std::size_t c = 0; c < 5; ++c) {
        for (int i = 0; i < nx_; ++i) {
          rows_[static_cast<std::size_t>(i)] = make_row(
              i, n, u_.at(static_cast<int>(c), i, j, k),
              rhs_.at(static_cast<int>(c), i, j, k));
        }
        penta_solve_line(rows, x, scratch);
        for (int i = 0; i < nx_; ++i) {
          rhs_.at(static_cast<int>(c), i, j, k) =
              xline_[static_cast<std::size_t>(i)];
        }
      }
    }
  }
}

void SpRank::y_solve() {
  const int n = config_.n;
  const std::size_t lines =
      static_cast<std::size_t>(nx_) * static_cast<std::size_t>(nz_);
  const auto len = static_cast<std::size_t>(ny_);
  const bool have_prev = layout_.y_prev >= 0;
  const bool have_next = layout_.y_next >= 0;

  if (have_prev) {
    comm_->recv<double>(layout_.y_prev, kTagYFwd,
                        std::span(msg_fwd_).first(lines * kFwdDoubles));
  }
  std::size_t line = 0;
  for (int k = 0; k < nz_; ++k) {
    for (int i = 0; i < nx_; ++i, ++line) {
      double* msg = &msg_fwd_[line * kFwdDoubles];
      for (std::size_t c = 0; c < 5; ++c) {
        for (int j = 0; j < ny_; ++j) {
          rows_[static_cast<std::size_t>(j)] =
              make_row(layout_.y.begin + j, n,
                       u_.at(static_cast<int>(c), i, j, k),
                       rhs_.at(static_cast<int>(c), i, j, k));
        }
        PentaState p2, p1;
        if (have_prev) {
          p2 = PentaState{msg[c * 6 + 0], msg[c * 6 + 1], msg[c * 6 + 2]};
          p1 = PentaState{msg[c * 6 + 3], msg[c * 6 + 4], msg[c * 6 + 5]};
        }
        auto states = std::span(states_).subspan((line * 5 + c) * len, len);
        const auto [s2, s1] = penta_forward(
            std::span(rows_).first(len), p2, p1, states);
        msg[c * 6 + 0] = s2.dtil;
        msg[c * 6 + 1] = s2.etil;
        msg[c * 6 + 2] = s2.rtil;
        msg[c * 6 + 3] = s1.dtil;
        msg[c * 6 + 4] = s1.etil;
        msg[c * 6 + 5] = s1.rtil;
      }
    }
  }
  if (have_next) {
    comm_->send<double>(layout_.y_next, kTagYFwd,
                        std::span(msg_fwd_).first(lines * kFwdDoubles));
  }

  if (have_next) {
    comm_->recv<double>(layout_.y_next, kTagYBwd,
                        std::span(msg_bwd_).first(lines * kBwdDoubles));
  } else {
    std::fill(msg_bwd_.begin(), msg_bwd_.end(), 0.0);
  }
  for (int k = nz_ - 1; k >= 0; --k) {
    for (int i = nx_ - 1; i >= 0; --i) {
      line = static_cast<std::size_t>(k) * static_cast<std::size_t>(nx_) +
             static_cast<std::size_t>(i);
      double* msg = &msg_bwd_[line * kBwdDoubles];
      for (std::size_t c = 0; c < 5; ++c) {
        auto states = std::span<const PentaState>(states_).subspan(
            (line * 5 + c) * len, len);
        auto x = std::span(xline_).first(len);
        const auto [x0, x1] =
            penta_backward(states, msg[c * 2 + 0], msg[c * 2 + 1], x);
        for (int j = 0; j < ny_; ++j) {
          rhs_.at(static_cast<int>(c), i, j, k) =
              xline_[static_cast<std::size_t>(j)];
        }
        msg[c * 2 + 0] = x0;
        msg[c * 2 + 1] = x1;
      }
    }
  }
  if (have_prev) {
    comm_->send<double>(layout_.y_prev, kTagYBwd,
                        std::span(msg_bwd_).first(lines * kBwdDoubles));
  }
}

void SpRank::z_solve() {
  const int n = config_.n;
  const std::size_t lines =
      static_cast<std::size_t>(nx_) * static_cast<std::size_t>(ny_);
  const auto len = static_cast<std::size_t>(nz_);
  const bool have_prev = layout_.z_prev >= 0;
  const bool have_next = layout_.z_next >= 0;

  if (have_prev) {
    comm_->recv<double>(layout_.z_prev, kTagZFwd,
                        std::span(msg_fwd_).first(lines * kFwdDoubles));
  }
  std::size_t line = 0;
  for (int j = 0; j < ny_; ++j) {
    for (int i = 0; i < nx_; ++i, ++line) {
      double* msg = &msg_fwd_[line * kFwdDoubles];
      for (std::size_t c = 0; c < 5; ++c) {
        for (int k = 0; k < nz_; ++k) {
          rows_[static_cast<std::size_t>(k)] =
              make_row(layout_.z.begin + k, n,
                       u_.at(static_cast<int>(c), i, j, k),
                       rhs_.at(static_cast<int>(c), i, j, k));
        }
        PentaState p2, p1;
        if (have_prev) {
          p2 = PentaState{msg[c * 6 + 0], msg[c * 6 + 1], msg[c * 6 + 2]};
          p1 = PentaState{msg[c * 6 + 3], msg[c * 6 + 4], msg[c * 6 + 5]};
        }
        auto states = std::span(states_).subspan((line * 5 + c) * len, len);
        const auto [s2, s1] = penta_forward(
            std::span(rows_).first(len), p2, p1, states);
        msg[c * 6 + 0] = s2.dtil;
        msg[c * 6 + 1] = s2.etil;
        msg[c * 6 + 2] = s2.rtil;
        msg[c * 6 + 3] = s1.dtil;
        msg[c * 6 + 4] = s1.etil;
        msg[c * 6 + 5] = s1.rtil;
      }
    }
  }
  if (have_next) {
    comm_->send<double>(layout_.z_next, kTagZFwd,
                        std::span(msg_fwd_).first(lines * kFwdDoubles));
  }

  if (have_next) {
    comm_->recv<double>(layout_.z_next, kTagZBwd,
                        std::span(msg_bwd_).first(lines * kBwdDoubles));
  } else {
    std::fill(msg_bwd_.begin(), msg_bwd_.end(), 0.0);
  }
  for (int j = ny_ - 1; j >= 0; --j) {
    for (int i = nx_ - 1; i >= 0; --i) {
      line = static_cast<std::size_t>(j) * static_cast<std::size_t>(nx_) +
             static_cast<std::size_t>(i);
      double* msg = &msg_bwd_[line * kBwdDoubles];
      for (std::size_t c = 0; c < 5; ++c) {
        auto states = std::span<const PentaState>(states_).subspan(
            (line * 5 + c) * len, len);
        auto x = std::span(xline_).first(len);
        const auto [x0, x1] =
            penta_backward(states, msg[c * 2 + 0], msg[c * 2 + 1], x);
        for (int k = 0; k < nz_; ++k) {
          rhs_.at(static_cast<int>(c), i, j, k) =
              xline_[static_cast<std::size_t>(k)];
        }
        msg[c * 2 + 0] = x0;
        msg[c * 2 + 1] = x1;
      }
    }
  }
  if (have_prev) {
    comm_->send<double>(layout_.z_prev, kTagZBwd,
                        std::span(msg_bwd_).first(lines * kBwdDoubles));
  }
}

void SpRank::add() {
  for (int k = 0; k < nz_; ++k) {
    for (int j = 0; j < ny_; ++j) {
      for (int i = 0; i < nx_; ++i) {
        u_.add(i, j, k, matvec5(txinv_, rhs_.get(i, j, k)));
      }
    }
  }
}

double SpRank::final_verify() {
  const int n = config_.n;
  double max_err = 0.0;
  for (int k = 0; k < nz_; ++k) {
    for (int j = 0; j < ny_; ++j) {
      for (int i = 0; i < nx_; ++i) {
        const Vec5 ex = exact_solution(grid_coord(i, n),
                                       grid_coord(layout_.y.begin + j, n),
                                       grid_coord(layout_.z.begin + k, n));
        const Vec5 uv = u_.get(i, j, k);
        for (std::size_t c = 0; c < 5; ++c) {
          max_err = std::max(max_err, std::fabs(uv[c] - ex[c]));
        }
      }
    }
  }
  return comm_->allreduce_max(max_err);
}

double SpRank::residual_norm() {
  exchange_halo();
  double sum = 0.0;
  for (int k = 0; k < nz_; ++k) {
    for (int j = 0; j < ny_; ++j) {
      for (int i = 0; i < nx_; ++i) {
        const Vec5 au = apply_operator(u_, i, j, k, config_.op, coupling_);
        sum += norm2sq5(sub5(forcing_.get(i, j, k), au));
      }
    }
  }
  const double total = comm_->allreduce_sum(sum);
  const double npts = static_cast<double>(config_.n) *
                      static_cast<double>(config_.n) *
                      static_cast<double>(config_.n) * 5.0;
  return std::sqrt(total / npts);
}

SpRunResult run_sp(const SpConfig& config, int ranks,
                   const simmpi::NetworkParams& net) {
  SpRunResult result;
  std::mutex mu;
  result.run = simmpi::run(ranks, net, [&](simmpi::Comm& comm) {
    SpRank rank(config, comm);
    rank.initialize();
    const double r0 = rank.residual_norm();
    for (int it = 0; it < config.iterations; ++it) {
      rank.copy_faces();
      rank.txinvr();
      rank.x_solve();
      rank.y_solve();
      rank.z_solve();
      rank.add();
    }
    const double r1 = rank.residual_norm();
    const double err = rank.final_verify();
    if (comm.rank() == 0) {
      std::lock_guard lock(mu);
      result.initial_residual = r0;
      result.final_residual = r1;
      result.final_error = err;
    }
  });
  return result;
}

}  // namespace kcoup::npb::sp
