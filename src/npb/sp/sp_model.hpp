#pragma once

#include <memory>

#include "machine/config.hpp"
#include "npb/common/modeled_app.hpp"
#include "npb/common/problem.hpp"

namespace kcoup::npb::sp {

/// Structural constants of the SP kernels, derived from the numeric port in
/// sp_app.cpp.  SP's sweeps are scalar pentadiagonal (five independent
/// scalar systems per line), so both the per-point flop count and the
/// elimination-state traffic are much smaller than BT's 5x5 block sweeps.
struct SpWorkConstants {
  double flops_rhs_per_point = 135;
  double flops_txinvr_per_point = 55;
  double flops_solve_per_point = 130;
  double flops_add_per_point = 55;  ///< applies T^-1 (a 5x5 matvec) then adds
  double flops_init_per_point = 250;
  double flops_final_per_point = 60;
  std::size_t comp_bytes = 5 * sizeof(double);
  std::size_t state_bytes = 5 * 3 * sizeof(double);  ///< PentaState x 5 comps
  std::size_t fwd_msg_doubles = 30;  ///< per line (2 states x 3 x 5 comps)
  std::size_t bwd_msg_doubles = 10;  ///< per line (2 values x 5 comps)
};

/// Build the modeled SP application (the paper's eight kernels, §4.2) for a
/// problem class on a machine configuration.  Main loop: {Copy_Faces,
/// Txinvr, X_Solve, Y_Solve, Z_Solve, Add}.
[[nodiscard]] std::unique_ptr<ModeledApp> make_modeled_sp(
    ProblemClass cls, int ranks, machine::MachineConfig config,
    const SpWorkConstants& k = {});

[[nodiscard]] std::unique_ptr<ModeledApp> make_modeled_sp_grid(
    int n, int iterations, int ranks, machine::MachineConfig config,
    const SpWorkConstants& k = {});

/// Compute/traffic-only WorkProfiles of the eight SP kernels for one rank's
/// local extents, with regions registered on `m`.  No messages or
/// synchronisation annotations (see bt_model.hpp for the rationale).
struct SpKernelProfiles {
  machine::WorkProfile init, copy_faces, txinvr, x_solve, y_solve, z_solve,
      add, final;
};
[[nodiscard]] SpKernelProfiles sp_kernel_profiles(machine::Machine& m, int nx,
                                                  int ny, int nz,
                                                  const SpWorkConstants& k = {});

}  // namespace kcoup::npb::sp
