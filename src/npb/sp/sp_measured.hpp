#pragma once

#include "coupling/parallel_measurement.hpp"
#include "npb/sp/sp_app.hpp"
#include "simmpi/simmpi.hpp"

namespace kcoup::npb::sp {

/// Host-measured parallel SP: the real numeric SpRank kernels timed with
/// the per-thread CPU clock under the parallel measurement protocol (see
/// npb/bt/bt_measured.hpp for the approach and caveats).
[[nodiscard]] coupling::ParallelLoopApp make_measured_sp_app(SpRank& rank,
                                                             int iterations,
                                                             simmpi::Comm& comm);

[[nodiscard]] coupling::ParallelStudyResult run_sp_measured_study(
    const SpConfig& config, int ranks, const simmpi::NetworkParams& net,
    const coupling::StudyOptions& study);

}  // namespace kcoup::npb::sp
