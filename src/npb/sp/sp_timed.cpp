#include "npb/sp/sp_timed.hpp"

#include <mutex>

namespace kcoup::npb::sp {
namespace {

constexpr int kTagYPlus = 251, kTagYMinus = 252;
constexpr int kTagZPlus = 253, kTagZMinus = 254;
constexpr int kTagYFwd = 261, kTagYBwd = 262;
constexpr int kTagZFwd = 263, kTagZBwd = 264;

}  // namespace

TimedSpRank::TimedSpRank(int n, const TimedSpOptions& options,
                         simmpi::Comm& comm)
    : options_(options),
      comm_(&comm),
      decomp_(comm.size()),
      layout_(decomp_.layout(comm.rank(), n, n)),
      nx_(n),
      ny_(layout_.y.count),
      nz_(layout_.z.count),
      machine_([&] {
        machine::MachineConfig cfg = options.machine;
        cfg.ranks = comm.size();
        cfg.imbalance_coeff = 0.0;  // skew is emergent in the timed path
        return cfg;
      }()),
      profiles_(sp_kernel_profiles(machine_, nx_, ny_, nz_,
                                   options.constants)) {
  std::tie(y_fwd_, y_bwd_) = split_sweep(profiles_.y_solve);
  std::tie(z_fwd_, z_bwd_) = split_sweep(profiles_.z_solve);
  ylines_ = static_cast<std::size_t>(nx_) * static_cast<std::size_t>(nz_);
  zlines_ = static_cast<std::size_t>(nx_) * static_cast<std::size_t>(ny_);
  yface_.assign(static_cast<std::size_t>(nx_) * static_cast<std::size_t>(nz_) * 5,
                0.0);
  zface_.assign(static_cast<std::size_t>(nx_) * static_cast<std::size_t>(ny_) * 5,
                0.0);
  pipe_buf_.assign(std::max(ylines_, zlines_) *
                       options_.constants.fwd_msg_doubles,
                   0.0);
}

std::pair<machine::WorkProfile, machine::WorkProfile> TimedSpRank::split_sweep(
    const machine::WorkProfile& sweep) {
  machine::WorkProfile fwd = sweep;
  machine::WorkProfile bwd = sweep;
  fwd.label += "/fwd";
  bwd.label += "/bwd";
  fwd.flops = 0.7 * sweep.flops;
  bwd.flops = 0.3 * sweep.flops;
  fwd.accesses = {sweep.accesses[0], sweep.accesses[1], sweep.accesses[2]};
  bwd.accesses = {sweep.accesses[3], sweep.accesses[4]};
  return {std::move(fwd), std::move(bwd)};
}

void TimedSpRank::charge(const machine::WorkProfile& profile) {
  double cost = machine_.execute_seconds(profile);
  const std::uint64_t key =
      (static_cast<std::uint64_t>(comm_->rank()) << 40) ^
      (static_cast<std::uint64_t>(profile.kernel) << 32) ^ invocation_;
  cost *= 1.0 + options_.jitter * machine::Machine::unit_hash(key);
  ++invocation_;
  comm_->advance(cost);
}

void TimedSpRank::initialize() { charge(profiles_.init); }

void TimedSpRank::copy_faces() {
  if (layout_.y_prev >= 0) comm_->send<double>(layout_.y_prev, kTagYMinus, yface_);
  if (layout_.y_next >= 0) comm_->send<double>(layout_.y_next, kTagYPlus, yface_);
  if (layout_.z_prev >= 0) comm_->send<double>(layout_.z_prev, kTagZMinus, zface_);
  if (layout_.z_next >= 0) comm_->send<double>(layout_.z_next, kTagZPlus, zface_);
  if (layout_.y_prev >= 0) comm_->recv<double>(layout_.y_prev, kTagYPlus, yface_);
  if (layout_.y_next >= 0) comm_->recv<double>(layout_.y_next, kTagYMinus, yface_);
  if (layout_.z_prev >= 0) comm_->recv<double>(layout_.z_prev, kTagZPlus, zface_);
  if (layout_.z_next >= 0) comm_->recv<double>(layout_.z_next, kTagZMinus, zface_);
  charge(profiles_.copy_faces);
}

void TimedSpRank::txinvr() { charge(profiles_.txinvr); }

void TimedSpRank::x_solve() { charge(profiles_.x_solve); }

void TimedSpRank::sweep(const machine::WorkProfile& fwd,
                        const machine::WorkProfile& bwd, int prev, int next,
                        int tag_fwd, int tag_bwd, std::size_t fwd_doubles,
                        std::size_t bwd_doubles) {
  auto fwd_span = std::span(pipe_buf_).first(fwd_doubles);
  auto bwd_span = std::span(pipe_buf_).first(bwd_doubles);
  if (prev >= 0) comm_->recv<double>(prev, tag_fwd, fwd_span);
  charge(fwd);
  if (next >= 0) comm_->send<double>(next, tag_fwd, fwd_span);
  if (next >= 0) comm_->recv<double>(next, tag_bwd, bwd_span);
  charge(bwd);
  if (prev >= 0) comm_->send<double>(prev, tag_bwd, bwd_span);
}

void TimedSpRank::y_solve() {
  sweep(y_fwd_, y_bwd_, layout_.y_prev, layout_.y_next, kTagYFwd, kTagYBwd,
        ylines_ * options_.constants.fwd_msg_doubles,
        ylines_ * options_.constants.bwd_msg_doubles);
}

void TimedSpRank::z_solve() {
  sweep(z_fwd_, z_bwd_, layout_.z_prev, layout_.z_next, kTagZFwd, kTagZBwd,
        zlines_ * options_.constants.fwd_msg_doubles,
        zlines_ * options_.constants.bwd_msg_doubles);
}

void TimedSpRank::add() { charge(profiles_.add); }

void TimedSpRank::final_verify() {
  charge(profiles_.final);
  (void)comm_->allreduce_max(0.0);
}

void TimedSpRank::reset() {
  machine_.reset_state();
  invocation_ = 0;
}

coupling::ParallelLoopApp TimedSpRank::make_app(int iterations) {
  coupling::ParallelLoopApp app;
  app.prologue = {{"Initialization", [this] { initialize(); }}};
  app.loop = {
      {"Copy_Faces", [this] { copy_faces(); }},
      {"Txinvr", [this] { txinvr(); }},
      {"X_Solve", [this] { x_solve(); }},
      {"Y_Solve", [this] { y_solve(); }},
      {"Z_Solve", [this] { z_solve(); }},
      {"Add", [this] { add(); }},
  };
  app.epilogue = {{"Final", [this] { final_verify(); }}};
  app.iterations = iterations;
  app.reset = [this] { reset(); };
  return app;
}

coupling::ParallelStudyResult run_sp_parallel_study(
    int n, int iterations, int ranks, const TimedSpOptions& options,
    const coupling::StudyOptions& study) {
  simmpi::NetworkParams net;
  net.latency_s = options.machine.net_latency_s;
  net.seconds_per_byte = options.machine.net_seconds_per_byte;
  net.sync_latency_s = options.machine.sync_latency_s;

  coupling::ParallelStudyResult result;
  std::mutex mu;
  (void)simmpi::run(ranks, net, [&](simmpi::Comm& comm) {
    TimedSpRank rank(n, options, comm);
    const coupling::ParallelLoopApp app = rank.make_app(iterations);
    const coupling::ParallelStudyResult r =
        coupling::run_parallel_study(comm, app, study);
    if (comm.rank() == 0) {
      std::lock_guard lock(mu);
      result = r;
    }
  });
  return result;
}

}  // namespace kcoup::npb::sp
