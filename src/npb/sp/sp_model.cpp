#include "npb/sp/sp_model.hpp"

#include <algorithm>

#include "npb/common/decomp.hpp"

namespace kcoup::npb::sp {
namespace {

using machine::AccessKind;
using machine::MessageOp;
using machine::RegionAccess;
using machine::RegionId;
using machine::WorkProfile;

enum SpKernel : machine::KernelId {
  kInit = 0,
  kCopyFaces,
  kTxinvr,
  kXSolve,
  kYSolve,
  kZSolve,
  kAdd,
  kFinal,
};

}  // namespace

SpKernelProfiles sp_kernel_profiles(machine::Machine& m, int nx, int ny,
                                    int nz, const SpWorkConstants& k) {
  const auto pts = static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny) *
                   static_cast<std::size_t>(nz);
  const double fpts = static_cast<double>(pts);
  const std::size_t field_bytes = pts * k.comp_bytes;
  const auto stages = static_cast<std::size_t>(std::max(2, nz));

  const RegionId u = m.register_region("u", field_bytes);
  const RegionId rhs = m.register_region("rhs", field_bytes);
  const RegionId forcing = m.register_region("forcing", field_bytes);
  const RegionId exact_tmp = m.register_region("exact_tmp", field_bytes);
  const RegionId lhs_x = m.register_region(
      "lhs_x", static_cast<std::size_t>(nx) * k.state_bytes / 5);
  const RegionId lhs_y = m.register_region("lhs_y", pts * k.state_bytes);
  const RegionId lhs_z = m.register_region("lhs_z", pts * k.state_bytes);

  SpKernelProfiles p;

  p.init.label = "Initialization";
  p.init.kernel = kInit;
  p.init.flops = k.flops_init_per_point * fpts;
  p.init.accesses = {
      RegionAccess{u, AccessKind::kWrite, field_bytes},
      RegionAccess{exact_tmp, AccessKind::kWrite, field_bytes},
      RegionAccess{exact_tmp, AccessKind::kRead, field_bytes},
      RegionAccess{forcing, AccessKind::kWrite, field_bytes},
  };
  p.init.pipeline_stages = stages;

  p.copy_faces.label = "Copy_Faces";
  p.copy_faces.kernel = kCopyFaces;
  p.copy_faces.flops = k.flops_rhs_per_point * fpts;
  p.copy_faces.accesses = {
      RegionAccess{u, AccessKind::kRead, field_bytes, 1.0},
      RegionAccess{forcing, AccessKind::kRead, field_bytes},
      RegionAccess{rhs, AccessKind::kWrite, field_bytes},
  };
  p.copy_faces.pipeline_stages = stages;

  p.txinvr.label = "Txinvr";
  p.txinvr.kernel = kTxinvr;
  p.txinvr.flops = k.flops_txinvr_per_point * fpts;
  p.txinvr.accesses = {
      RegionAccess{rhs, AccessKind::kRead, field_bytes, 1.0},
      RegionAccess{rhs, AccessKind::kWrite, field_bytes},
  };
  p.txinvr.pipeline_stages = stages;

  auto make_solve = [&](const char* label, machine::KernelId id, RegionId lhs) {
    WorkProfile s;
    s.label = label;
    s.kernel = id;
    s.flops = k.flops_solve_per_point * fpts;
    RegionAccess lhs_read{lhs, AccessKind::kRead, pts * k.state_bytes};
    lhs_read.pipelined_self_reuse = true;
    s.accesses = {
        RegionAccess{rhs, AccessKind::kRead, field_bytes, 1.0},
        RegionAccess{u, AccessKind::kRead, field_bytes, 1.0},
        RegionAccess{lhs, AccessKind::kWrite, pts * k.state_bytes},
        lhs_read,
        RegionAccess{rhs, AccessKind::kWrite, field_bytes},
    };
    s.pipeline_stages = stages;
    return s;
  };
  p.x_solve = make_solve("X_Solve", kXSolve, lhs_x);
  p.y_solve = make_solve("Y_Solve", kYSolve, lhs_y);
  p.z_solve = make_solve("Z_Solve", kZSolve, lhs_z);

  p.add.label = "Add";
  p.add.kernel = kAdd;
  p.add.flops = k.flops_add_per_point * fpts;
  p.add.accesses = {
      RegionAccess{rhs, AccessKind::kRead, field_bytes, 1.0},
      RegionAccess{u, AccessKind::kRead, field_bytes, 1.0},
      RegionAccess{u, AccessKind::kWrite, field_bytes},
  };
  p.add.pipeline_stages = stages;

  p.final.label = "Final";
  p.final.kernel = kFinal;
  p.final.flops = k.flops_final_per_point * fpts;
  p.final.accesses = {RegionAccess{u, AccessKind::kRead, field_bytes}};
  p.final.pipeline_stages = stages;

  return p;
}

std::unique_ptr<ModeledApp> make_modeled_sp_grid(int n, int iterations,
                                                 int ranks,
                                                 machine::MachineConfig config,
                                                 const SpWorkConstants& k) {
  SquareDecomp decomp(ranks);
  config.ranks = ranks;
  auto modeled = std::make_unique<ModeledApp>(
      "SP n=" + std::to_string(n) + " P=" + std::to_string(ranks),
      std::move(config), iterations);

  const int q = decomp.q();
  const int nx = n;
  const int ny = split_range(n, q, 0).count;
  const int nz = split_range(n, q, 0).count;
  SpKernelProfiles p = sp_kernel_profiles(modeled->machine(), nx, ny, nz, k);

  const std::size_t yface_bytes =
      static_cast<std::size_t>(nx) * static_cast<std::size_t>(nz) * k.comp_bytes;
  const std::size_t zface_bytes =
      static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny) * k.comp_bytes;
  const std::size_t ylines =
      static_cast<std::size_t>(nx) * static_cast<std::size_t>(nz);
  const std::size_t zlines =
      static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny);

  modeled->add_prologue(std::move(p.init));

  if (q > 1) {
    p.copy_faces.messages = {MessageOp{2, yface_bytes},
                             MessageOp{2, zface_bytes}};
    p.copy_faces.synchronizes = true;
    p.copy_faces.imbalance_weight = 1.0;
  }
  modeled->add_loop_kernel(std::move(p.copy_faces));
  modeled->add_loop_kernel(std::move(p.txinvr));
  modeled->add_loop_kernel(std::move(p.x_solve));

  auto add_distributed_solve = [&](WorkProfile s, std::size_t lines) {
    if (q > 1) {
      s.messages = {
          MessageOp{1, lines * k.fwd_msg_doubles * sizeof(double)},
          MessageOp{1, lines * k.bwd_msg_doubles * sizeof(double)},
      };
      s.synchronizes = true;
      s.imbalance_weight = 1.0;
    }
    modeled->add_loop_kernel(std::move(s));
  };
  add_distributed_solve(std::move(p.y_solve), ylines);
  add_distributed_solve(std::move(p.z_solve), zlines);

  modeled->add_loop_kernel(std::move(p.add));

  if (ranks > 1) {
    p.final.synchronizes = true;
    p.final.imbalance_weight = 0.5;
  }
  modeled->add_epilogue(std::move(p.final));

  return modeled;
}

std::unique_ptr<ModeledApp> make_modeled_sp(ProblemClass cls, int ranks,
                                            machine::MachineConfig config,
                                            const SpWorkConstants& k) {
  const ProblemSize size = problem_size(Benchmark::kSP, cls);
  return make_modeled_sp_grid(size.n, size.iterations, ranks,
                              std::move(config), k);
}

}  // namespace kcoup::npb::sp
