#pragma once

#include <utility>
#include <vector>

#include "coupling/parallel_measurement.hpp"
#include "machine/machine.hpp"
#include "npb/common/decomp.hpp"
#include "npb/sp/sp_model.hpp"
#include "simmpi/simmpi.hpp"

namespace kcoup::npb::sp {

/// Options of the timed parallel SP path (see bt_timed.hpp for the idea:
/// real-sized simmpi messaging + per-rank machine pricing, emergent
/// pipeline fill and load imbalance).
struct TimedSpOptions {
  machine::MachineConfig machine;
  double jitter = 0.05;
  SpWorkConstants constants;
};

/// Timing-only SP rank: the eight-kernel SP communication pattern with
/// machine-priced compute, no field data.
class TimedSpRank {
 public:
  TimedSpRank(int n, const TimedSpOptions& options, simmpi::Comm& comm);

  [[nodiscard]] coupling::ParallelLoopApp make_app(int iterations);

  void initialize();
  void copy_faces();
  void txinvr();
  void x_solve();
  void y_solve();
  void z_solve();
  void add();
  void final_verify();
  void reset();

 private:
  void charge(const machine::WorkProfile& profile);
  static std::pair<machine::WorkProfile, machine::WorkProfile> split_sweep(
      const machine::WorkProfile& sweep);
  void sweep(const machine::WorkProfile& fwd, const machine::WorkProfile& bwd,
             int prev, int next, int tag_fwd, int tag_bwd,
             std::size_t fwd_doubles, std::size_t bwd_doubles);

  TimedSpOptions options_;
  simmpi::Comm* comm_;
  SquareDecomp decomp_;
  SquareDecomp::RankLayout layout_;
  int nx_, ny_, nz_;

  machine::Machine machine_;
  SpKernelProfiles profiles_;
  machine::WorkProfile y_fwd_, y_bwd_, z_fwd_, z_bwd_;
  std::size_t ylines_ = 0, zlines_ = 0;
  std::uint64_t invocation_ = 0;

  std::vector<double> yface_, zface_, pipe_buf_;
};

/// Run the full parallel coupling study on `ranks` timed SP ranks.
[[nodiscard]] coupling::ParallelStudyResult run_sp_parallel_study(
    int n, int iterations, int ranks, const TimedSpOptions& options,
    const coupling::StudyOptions& study);

}  // namespace kcoup::npb::sp
