#include "npb/sp/sp_measured.hpp"

#include <mutex>

#include "trace/stopwatch.hpp"

namespace kcoup::npb::sp {
namespace {

template <typename Fn>
void timed(simmpi::Comm& comm, Fn&& fn) {
  trace::ThreadCpuTimer t;
  fn();
  comm.advance(t.elapsed_s());
}

}  // namespace

coupling::ParallelLoopApp make_measured_sp_app(SpRank& rank, int iterations,
                                               simmpi::Comm& comm) {
  coupling::ParallelLoopApp app;
  app.prologue = {
      {"Initialization", [&rank, &comm] { timed(comm, [&] { rank.initialize(); }); }}};
  app.loop = {
      {"Copy_Faces", [&rank, &comm] { timed(comm, [&] { rank.copy_faces(); }); }},
      {"Txinvr", [&rank, &comm] { timed(comm, [&] { rank.txinvr(); }); }},
      {"X_Solve", [&rank, &comm] { timed(comm, [&] { rank.x_solve(); }); }},
      {"Y_Solve", [&rank, &comm] { timed(comm, [&] { rank.y_solve(); }); }},
      {"Z_Solve", [&rank, &comm] { timed(comm, [&] { rank.z_solve(); }); }},
      {"Add", [&rank, &comm] { timed(comm, [&] { rank.add(); }); }},
  };
  app.epilogue = {
      {"Final", [&rank, &comm] { timed(comm, [&] { (void)rank.final_verify(); }); }}};
  app.iterations = iterations;
  app.reset = [&rank] { rank.initialize(); };
  return app;
}

coupling::ParallelStudyResult run_sp_measured_study(
    const SpConfig& config, int ranks, const simmpi::NetworkParams& net,
    const coupling::StudyOptions& study) {
  coupling::ParallelStudyResult result;
  std::mutex mu;
  (void)simmpi::run(ranks, net, [&](simmpi::Comm& comm) {
    SpRank rank(config, comm);
    const coupling::ParallelLoopApp app =
        make_measured_sp_app(rank, config.iterations, comm);
    const coupling::ParallelStudyResult r =
        coupling::run_parallel_study(comm, app, study);
    if (comm.rank() == 0) {
      std::lock_guard lock(mu);
      result = r;
    }
  });
  return result;
}

}  // namespace kcoup::npb::sp
