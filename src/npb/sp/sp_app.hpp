#pragma once

#include <vector>

#include "npb/common/decomp.hpp"
#include "npb/common/field.hpp"
#include "npb/common/penta.hpp"
#include "npb/common/problem.hpp"
#include "npb/common/stencil.hpp"
#include "simmpi/simmpi.hpp"

namespace kcoup::npb::sp {

/// Configuration of the SP port.
///
/// SP keeps the paper's eight-kernel decomposition: like BT but with scalar
/// pentadiagonal line solves (five independent scalar systems per line, one
/// per component) and the extra pointwise TXINVR transform between the
/// right-hand-side computation and the sweeps (§4.2).  Applied to the
/// manufactured coupled system of npb/common/stencil.hpp (DESIGN.md §2).
struct SpConfig {
  int n = 12;
  int iterations = 100;
  double tau = 0.4;    ///< pseudo-time step
  double dcoef = 0.15; ///< pentadiagonal smoothing strength
  double gamma = 0.05; ///< u-dependent diagonal strength
  double txeps = 0.2;  ///< strength of the TXINVR pointwise transform
  OperatorSpec op;
};

/// Per-rank SP solver: the paper's eight kernels as methods.  Main loop:
/// copy_faces, txinvr, x_solve, y_solve, z_solve, add.
class SpRank {
 public:
  SpRank(const SpConfig& config, simmpi::Comm& comm);

  void initialize();   // kernel 1
  void copy_faces();   // kernel 2: halo exchange + rhs = tau (f - A u)
  void txinvr();       // kernel 3: rhs := T rhs (pointwise 5x5)
  void x_solve();      // kernel 4: local scalar pentadiagonal sweeps
  void y_solve();      // kernel 5: distributed pipelined penta sweeps
  void z_solve();      // kernel 6: distributed pipelined penta sweeps
  void add();          // kernel 7: u += T^-1 rhs
  double final_verify();  // kernel 8: global max error vs exact solution

  double residual_norm();

  [[nodiscard]] const SpConfig& config() const { return config_; }

 private:
  void exchange_halo();
  void fill_analytic_ghosts();
  /// Pentadiagonal row for component c at global line position m of
  /// extent n, with the u-dependent centre coefficient.
  [[nodiscard]] PentaRow make_row(int global_m, int global_n, double u_c,
                                  double rhs_c) const;

  SpConfig config_;
  simmpi::Comm* comm_;
  SquareDecomp decomp_;
  SquareDecomp::RankLayout layout_;
  int nx_, ny_, nz_;

  Field5 u_;
  Field5 rhs_;
  Field5 forcing_;
  Block5 coupling_;
  Block5 tx_;      ///< the TXINVR matrix T
  Block5 txinv_;   ///< T^-1 (applied by add)

  std::vector<PentaRow> rows_;
  std::vector<PentaState> states_;  ///< per-line-per-component states
  std::vector<double> xline_;
  std::vector<double> msg_fwd_, msg_bwd_;
};

struct SpRunResult {
  double final_error = 0.0;
  double initial_residual = 0.0;
  double final_residual = 0.0;
  simmpi::RunResult run;
};

[[nodiscard]] SpRunResult run_sp(const SpConfig& config, int ranks,
                                 const simmpi::NetworkParams& net = {});

}  // namespace kcoup::npb::sp
