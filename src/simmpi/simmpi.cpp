#include "simmpi/simmpi.hpp"

#include <algorithm>
#include <cassert>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <exception>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <tuple>
#include <utility>

#include "obs/trace.hpp"

namespace kcoup::simmpi {
namespace detail {

namespace {
struct Message {
  std::vector<std::byte> payload;
  double send_time = 0.0;
};

struct Channel {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Message> queue;
  std::uint64_t tickets_issued = 0;
  std::uint64_t tickets_served = 0;
};
}  // namespace

/// Shared state of one simmpi run: channels, the collective rendezvous, and
/// global counters.  Owned by run() for the duration of the run.
class World {
 public:
  World(int ranks, NetworkParams net) : ranks_(ranks), net_(net) {}

  [[nodiscard]] int ranks() const { return ranks_; }

  void send(Comm& from, int dest, int tag, std::span<const std::byte> bytes) {
    if (dest < 0 || dest >= ranks_) {
      throw std::runtime_error("simmpi: send to invalid rank " +
                               std::to_string(dest));
    }
    Channel& ch = channel(from.rank(), dest, tag);
    {
      std::lock_guard lock(ch.mu);
      Message m;
      m.payload.assign(bytes.begin(), bytes.end());
      m.send_time = from.now();
      ch.queue.push_back(std::move(m));
    }
    ch.cv.notify_all();
    messages_.fetch_add(1, std::memory_order_relaxed);
    payload_bytes_.fetch_add(bytes.size(), std::memory_order_relaxed);
  }

  /// Reserve the next receive slot on a channel (post-order matching for
  /// deferred receives).
  std::uint64_t post_ticket(int src, int dst, int tag) {
    if (src < 0 || src >= ranks_) {
      throw std::runtime_error("simmpi: recv from invalid rank " +
                               std::to_string(src));
    }
    Channel& ch = channel(src, dst, tag);
    std::lock_guard lock(ch.mu);
    return ch.tickets_issued++;
  }

  void recv(Comm& to, int src, int tag, std::span<std::byte> out,
            std::uint64_t ticket) {
    Channel& ch = channel(src, to.rank(), tag);
    Message m;
    {
      std::unique_lock lock(ch.mu);
      ch.cv.wait(lock, [&] {
        return ch.tickets_served == ticket && !ch.queue.empty();
      });
      m = std::move(ch.queue.front());
      ch.queue.pop_front();
      ++ch.tickets_served;
      ch.cv.notify_all();
    }
    if (m.payload.size() != out.size()) {
      throw std::runtime_error(
          "simmpi: payload size mismatch on recv(src=" + std::to_string(src) +
          ", tag=" + std::to_string(tag) + "): sent " +
          std::to_string(m.payload.size()) + " bytes, expected " +
          std::to_string(out.size()));
    }
    std::memcpy(out.data(), m.payload.data(), m.payload.size());
    const double arrival =
        m.send_time + net_.latency_s +
        static_cast<double>(m.payload.size()) * net_.seconds_per_byte;
    to.clock_.advance_to(arrival);
  }

  /// Generic synchronising collective: every rank contributes `value`; all
  /// ranks observe the reduction of all contributions and synchronise their
  /// clocks to max(entry times) + tree cost.  Contributions are folded in
  /// rank order regardless of arrival order, so floating-point reductions
  /// are bit-deterministic across runs and host schedules.
  double collective(Comm& c, double value, double (*combine)(double, double),
                    double init) {
    std::unique_lock lock(coll_mu_);
    if (coll_count_ == 0) {
      coll_values_.assign(static_cast<std::size_t>(ranks_), 0.0);
      coll_time_ = 0.0;
    }
    coll_values_[static_cast<std::size_t>(c.rank())] = value;
    coll_time_ = std::max(coll_time_, c.now());
    ++coll_count_;
    const std::size_t generation = coll_generation_;
    if (coll_count_ == ranks_) {
      coll_count_ = 0;
      double acc = init;
      for (double v : coll_values_) acc = combine(acc, v);
      coll_result_ = acc;
      coll_gathered_ = coll_values_;
      coll_exit_time_ =
          coll_time_ +
          net_.sync_latency_s *
              std::ceil(std::log2(std::max(2.0, static_cast<double>(ranks_))));
      ++coll_generation_;
      coll_cv_.notify_all();
    } else {
      coll_cv_.wait(lock, [&] { return coll_generation_ != generation; });
    }
    c.clock_.advance_to(coll_exit_time_);
    return coll_result_;
  }

  /// Collective returning every rank's contribution, rank-indexed.
  std::vector<double> allgather(Comm& c, double value) {
    (void)collective(
        c, value, [](double a, double) { return a; }, 0.0);
    std::lock_guard lock(coll_mu_);
    return coll_gathered_;
  }

  [[nodiscard]] std::size_t messages() const { return messages_.load(); }
  [[nodiscard]] std::size_t payload_bytes() const {
    return payload_bytes_.load();
  }

 private:
  Channel& channel(int src, int dst, int tag) {
    const std::tuple key(src, dst, tag);
    std::lock_guard lock(channels_mu_);
    return channels_[key];  // default-constructs on first use
  }

  int ranks_;
  NetworkParams net_;

  std::mutex channels_mu_;
  std::map<std::tuple<int, int, int>, Channel> channels_;

  std::mutex coll_mu_;
  std::condition_variable coll_cv_;
  int coll_count_ = 0;
  std::size_t coll_generation_ = 0;
  std::vector<double> coll_values_;
  std::vector<double> coll_gathered_;
  double coll_result_ = 0.0;
  double coll_time_ = 0.0;
  double coll_exit_time_ = 0.0;

  std::atomic<std::size_t> messages_{0};
  std::atomic<std::size_t> payload_bytes_{0};
};

}  // namespace detail

Comm::Comm(detail::World* world, int rank) : world_(world), rank_(rank) {}

int Comm::size() const noexcept { return world_->ranks(); }

void Comm::send_bytes(int dest, int tag, std::span<const std::byte> bytes) {
  world_->send(*this, dest, tag, bytes);
}

void Comm::recv_bytes(int src, int tag, std::span<std::byte> out) {
  const std::uint64_t ticket = world_->post_ticket(src, rank_, tag);
  world_->recv(*this, src, tag, out, ticket);
}

Request Comm::isend_bytes(int dest, int tag,
                          std::span<const std::byte> bytes) {
  // Buffered channels complete the send immediately; return an empty
  // (already-complete) request so wait_all-shaped code works unchanged.
  send_bytes(dest, tag, bytes);
  return Request{};
}

Request Comm::irecv_bytes(int src, int tag, std::span<std::byte> out) {
  const std::uint64_t ticket = world_->post_ticket(src, rank_, tag);
  return Request(this, src, tag, out, ticket);
}

Request::~Request() {
  // Abandoning a posted receive would leave its channel ticket unserved and
  // deadlock later receives; surface the bug in debug builds.
  assert(!valid() && "simmpi::Request destroyed without wait()");
}

void Request::wait() {
  if (!valid()) return;
  comm_->world_->recv(*comm_, src_, tag_, out_, ticket_);
  comm_ = nullptr;
}

void wait_all(std::span<Request> requests) {
  for (Request& r : requests) r.wait();
}

// Collectives are the simulated application's phase boundaries; each one
// emits a span from rank 0 only (every rank synchronises on the same
// collective, so one span per boundary is the whole story and the trace
// stays proportional to phases, not ranks).

void Comm::barrier() {
  obs::ScopedSpan span("barrier", "simmpi", rank_ == 0);
  world_->collective(
      *this, 0.0, [](double a, double) { return a; }, 0.0);
}

double Comm::allreduce_sum(double value) {
  obs::ScopedSpan span("allreduce_sum", "simmpi", rank_ == 0);
  return world_->collective(
      *this, value, [](double a, double b) { return a + b; }, 0.0);
}

double Comm::allreduce_max(double value) {
  obs::ScopedSpan span("allreduce_max", "simmpi", rank_ == 0);
  return world_->collective(
      *this, value, [](double a, double b) { return std::max(a, b); },
      -std::numeric_limits<double>::infinity());
}

double Comm::allreduce_min(double value) {
  obs::ScopedSpan span("allreduce_min", "simmpi", rank_ == 0);
  return world_->collective(
      *this, value, [](double a, double b) { return std::min(a, b); },
      std::numeric_limits<double>::infinity());
}

double Comm::broadcast(double value, int root) {
  obs::ScopedSpan span("broadcast", "simmpi", rank_ == 0);
  // Implemented as a reduction that keeps only the root's contribution.
  // Every rank participates, so the synchronising semantics are identical
  // to a tree broadcast.
  const double contribution = rank_ == root ? value : 0.0;
  return world_->collective(
      *this, contribution, [](double a, double b) { return a + b; }, 0.0);
}

std::vector<double> Comm::allgather(double value) {
  obs::ScopedSpan span("allgather", "simmpi", rank_ == 0);
  return world_->allgather(*this, value);
}

RunResult run(int ranks, const NetworkParams& net,
              const std::function<void(Comm&)>& body) {
  if (ranks < 1) throw std::invalid_argument("simmpi: ranks must be >= 1");
  detail::World world(ranks, net);

  std::vector<std::unique_ptr<Comm>> comms;
  comms.reserve(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    comms.push_back(std::make_unique<Comm>(&world, r));
  }

  std::exception_ptr first_error;
  std::mutex error_mu;
  {
    std::vector<std::jthread> threads;
    threads.reserve(static_cast<std::size_t>(ranks));
    for (int r = 0; r < ranks; ++r) {
      threads.emplace_back([&, r] {
        try {
          body(*comms[static_cast<std::size_t>(r)]);
        } catch (...) {
          std::lock_guard lock(error_mu);
          if (!first_error) first_error = std::current_exception();
        }
      });
    }
  }  // jthreads join here
  if (first_error) std::rethrow_exception(first_error);

  RunResult result;
  result.rank_times_s.reserve(static_cast<std::size_t>(ranks));
  for (const auto& c : comms) {
    result.rank_times_s.push_back(c->now());
    result.makespan_s = std::max(result.makespan_s, c->now());
  }
  result.messages = world.messages();
  result.payload_bytes = world.payload_bytes();
  return result;
}

}  // namespace kcoup::simmpi
