#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "trace/virtual_clock.hpp"

namespace kcoup::simmpi {

/// Cost parameters of the simulated interconnect.  Virtual message delivery
/// time is send_time + latency_s + bytes * seconds_per_byte; collectives add
/// sync_latency_s per tree hop.
struct NetworkParams {
  double latency_s = 0.0;
  double seconds_per_byte = 0.0;
  double sync_latency_s = 0.0;
};

namespace detail {
class World;
}

class Comm;

/// Handle for a pending nonblocking operation.  Move-only; wait() must be
/// called exactly once on a valid request (the destructor asserts in debug
/// builds that no pending receive is abandoned).
///
/// Matching semantics: a channel (src, dst, tag) is FIFO and deferred
/// receives are matched *in the order they were posted*; waiting a request
/// out of post order relative to another pending receive on the same
/// channel blocks until the earlier one is waited.  Requests on different
/// channels commute freely.
class Request {
 public:
  Request() = default;
  Request(Request&& other) noexcept { swap(other); }
  Request& operator=(Request&& other) noexcept {
    swap(other);
    return *this;
  }
  Request(const Request&) = delete;
  Request& operator=(const Request&) = delete;
  ~Request();

  /// True when there is a pending operation to wait on.
  [[nodiscard]] bool valid() const noexcept { return comm_ != nullptr; }

  /// Complete the operation: for a receive, fills the span given to irecv
  /// and advances the rank's virtual clock to the arrival time.
  void wait();

 private:
  friend class Comm;
  Request(Comm* comm, int src, int tag, std::span<std::byte> out,
          std::uint64_t ticket)
      : comm_(comm), src_(src), tag_(tag), out_(out), ticket_(ticket) {}
  void swap(Request& other) noexcept {
    std::swap(comm_, other.comm_);
    std::swap(src_, other.src_);
    std::swap(tag_, other.tag_);
    std::swap(out_, other.out_);
    std::swap(ticket_, other.ticket_);
  }

  Comm* comm_ = nullptr;
  int src_ = -1;
  int tag_ = 0;
  std::span<std::byte> out_;
  std::uint64_t ticket_ = 0;
};

/// Wait on every valid request in the span.
void wait_all(std::span<Request> requests);

/// Per-rank communicator handle, the API surface seen by rank bodies.
///
/// simmpi is a deterministic message-passing runtime: ranks execute as host
/// threads, but because every receive names its exact source and every
/// (src, dst, tag) channel is FIFO — there is deliberately no wildcard
/// receive — the program is a Kahn process network and its results and
/// virtual times are independent of host thread scheduling.
///
/// Each rank carries a virtual clock.  Local work is charged with advance();
/// a receive completes at max(receiver time, send time + transfer time); a
/// collective synchronises all clocks to the participants' maximum plus the
/// collective's cost.  Sends are buffered (non-blocking), so symmetric
/// neighbour exchanges cannot deadlock.
class Comm {
 public:
  Comm(detail::World* world, int rank);
  Comm(const Comm&) = delete;
  Comm& operator=(const Comm&) = delete;

  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int size() const noexcept;

  /// Charge `seconds` of local (compute) virtual time to this rank.
  void advance(double seconds) noexcept { clock_.advance(seconds); }

  /// This rank's current virtual time in seconds.
  [[nodiscard]] double now() const noexcept { return clock_.now(); }

  // --- Point-to-point ------------------------------------------------------

  /// Buffered send: enqueues a copy of `bytes` on channel (rank, dest, tag).
  void send_bytes(int dest, int tag, std::span<const std::byte> bytes);

  /// Blocking receive from exactly (src, tag).  The payload size must match
  /// what was sent; mismatches throw std::runtime_error (they indicate a
  /// protocol bug in the application).
  void recv_bytes(int src, int tag, std::span<std::byte> out);

  /// Nonblocking send: with simmpi's buffered channels the message is
  /// enqueued immediately, so this is send_bytes returning an already-
  /// completed request (kept for MPI-shaped code).
  Request isend_bytes(int dest, int tag, std::span<const std::byte> bytes);

  /// Nonblocking receive: posts a matching ticket on the channel and defers
  /// the transfer to Request::wait().  See Request for matching semantics.
  [[nodiscard]] Request irecv_bytes(int src, int tag, std::span<std::byte> out);

  template <typename T>
  Request isend(int dest, int tag, std::span<const T> data) {
    return isend_bytes(dest, tag, std::as_bytes(data));
  }
  template <typename T>
  [[nodiscard]] Request irecv(int src, int tag, std::span<T> out) {
    return irecv_bytes(src, tag, std::as_writable_bytes(out));
  }

  template <typename T>
  void send(int dest, int tag, std::span<const T> data) {
    send_bytes(dest, tag, std::as_bytes(data));
  }
  template <typename T>
  void recv(int src, int tag, std::span<T> out) {
    recv_bytes(src, tag, std::as_writable_bytes(out));
  }

  /// Symmetric neighbour exchange: send to `peer`, then receive from `peer`
  /// on the same tag.  Safe because sends are buffered.
  template <typename T>
  void exchange(int peer, int tag, std::span<const T> out_data,
                std::span<T> in_data) {
    send(peer, tag, out_data);
    recv(peer, tag, in_data);
  }

  // --- Collectives -----------------------------------------------------------

  /// Synchronise all ranks; clocks jump to the global maximum plus
  /// ceil(log2 P) * sync_latency_s.
  void barrier();

  /// All-reduce a double across ranks (sum / max / min); synchronising.
  double allreduce_sum(double value);
  double allreduce_max(double value);
  double allreduce_min(double value);

  /// Broadcast `value` from rank `root` to everyone; synchronising.
  double broadcast(double value, int root);

  /// Gather every rank's `value`; all ranks receive the full rank-indexed
  /// vector.  Synchronising, like the other collectives.
  std::vector<double> allgather(double value);

 private:
  friend class detail::World;
  friend class Request;
  detail::World* world_;
  int rank_;
  trace::VirtualClock clock_;
};

/// Statistics of one completed run.
struct RunResult {
  /// Maximum virtual completion time over all ranks — the simulated
  /// parallel execution time.
  double makespan_s = 0.0;
  /// Per-rank virtual completion times.
  std::vector<double> rank_times_s;
  /// Total messages and payload bytes sent.
  std::size_t messages = 0;
  std::size_t payload_bytes = 0;
};

/// Execute `body` on `ranks` ranks and return timing statistics.
/// Exceptions thrown by any rank are rethrown (first one wins) after all
/// rank threads have been joined.
RunResult run(int ranks, const NetworkParams& net,
              const std::function<void(Comm&)>& body);

}  // namespace kcoup::simmpi
