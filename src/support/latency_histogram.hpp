#pragma once

#include <array>
#include <cmath>
#include <cstddef>
#include <cstdint>

namespace kcoup::support {

/// Log-bucketed latency histogram: fixed memory, O(1) record, mergeable.
///
/// Buckets are log-linear (HDR style): each power-of-two octave of seconds
/// is split into 16 linear sub-buckets, covering 2^-20 s (~1 us) through
/// 2^8 s (256 s); values outside the range clamp into the edge buckets.
/// Worst-case quantile error is therefore one sixteenth of an octave
/// (~4 %), plenty for p50/p95/p99 reporting.
///
/// Not thread-safe by design: the prediction server keeps one instance per
/// worker (written without synchronisation by its owning thread) and
/// merge()s them into a scratch instance when metrics are read.
class LatencyHistogram {
 public:
  static constexpr int kMinExponent = -20;  ///< 2^-20 s ~ 0.95 us
  static constexpr int kMaxExponent = 8;    ///< 2^8 s = 256 s
  static constexpr std::size_t kSubBuckets = 16;
  static constexpr std::size_t kBuckets =
      static_cast<std::size_t>(kMaxExponent - kMinExponent) * kSubBuckets;

  void record(double seconds) {
    if (!(seconds >= 0.0)) return;  // NaN / negative: drop, never corrupt
    ++counts_[bucket_index(seconds)];
    ++count_;
    sum_ += seconds;
    if (seconds < min_ || count_ == 1) min_ = seconds;
    if (seconds > max_) max_ = seconds;
  }

  void merge(const LatencyHistogram& other) {
    for (std::size_t i = 0; i < kBuckets; ++i) counts_[i] += other.counts_[i];
    if (other.count_ == 0) return;
    if (count_ == 0 || other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
    count_ += other.count_;
    sum_ += other.sum_;
  }

  void clear() { *this = LatencyHistogram{}; }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }
  [[nodiscard]] double mean() const {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }

  /// The q-quantile (q in [0, 1]) as the midpoint of the bucket holding the
  /// ceil(q * count)-th sample, clamped to the exact observed [min, max].
  /// Returns 0 when empty.
  [[nodiscard]] double quantile(double q) const {
    if (count_ == 0) return 0.0;
    if (q <= 0.0) return min();
    if (q >= 1.0) return max();
    const std::uint64_t target = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(count_)));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      seen += counts_[i];
      if (seen >= target) {
        const double mid = 0.5 * (bucket_lower(i) + bucket_upper(i));
        if (mid < min_) return min_;
        if (mid > max_) return max_;
        return mid;
      }
    }
    return max();
  }

  /// Raw per-bucket count — the export surface for renderers (Prometheus
  /// exposition) and for windowed stores that keep their own atomic bucket
  /// arrays and rebuild a histogram on read via add_bucket().
  [[nodiscard]] std::uint64_t bucket_count(std::size_t index) const {
    return counts_[index];
  }

  /// Exact sum of recorded values (add_bucket() contributions use bucket
  /// midpoints, the same approximation quantile() reports).
  [[nodiscard]] double sum() const { return sum_; }

  /// Merge `n` samples known only by bucket: count/sum/min/max are updated
  /// from the bucket bounds (midpoint sum, bound-clamped min/max), which is
  /// how a windowed store's atomic bucket array folds back into a full
  /// histogram without per-sample values.
  void add_bucket(std::size_t index, std::uint64_t n) {
    if (n == 0) return;
    counts_[index] += n;
    const double lo = bucket_lower(index);
    const double hi = bucket_upper(index);
    sum_ += 0.5 * (lo + hi) * static_cast<double>(n);
    if (count_ == 0 || lo < min_) min_ = lo;
    if (hi > max_) max_ = hi;
    count_ += n;
  }

  [[nodiscard]] static std::size_t bucket_index(double seconds) {
    int exp = 0;
    const double frac = std::frexp(seconds, &exp);  // seconds = frac * 2^exp
    // frac in [0.5, 1): the value lives in octave (exp - 1).
    const int octave = exp - 1;
    if (seconds <= 0.0 || octave < kMinExponent) return 0;
    if (octave >= kMaxExponent) return kBuckets - 1;
    const auto sub = static_cast<std::size_t>((frac - 0.5) * 2.0 *
                                              static_cast<double>(kSubBuckets));
    return static_cast<std::size_t>(octave - kMinExponent) * kSubBuckets +
           (sub < kSubBuckets ? sub : kSubBuckets - 1);
  }

  [[nodiscard]] static double bucket_lower(std::size_t index) {
    const int octave =
        kMinExponent + static_cast<int>(index / kSubBuckets);
    const double sub = static_cast<double>(index % kSubBuckets);
    return std::ldexp(1.0 + sub / static_cast<double>(kSubBuckets),
                      octave);
  }

  [[nodiscard]] static double bucket_upper(std::size_t index) {
    const int octave =
        kMinExponent + static_cast<int>(index / kSubBuckets);
    const double sub = static_cast<double>(index % kSubBuckets) + 1.0;
    return std::ldexp(1.0 + sub / static_cast<double>(kSubBuckets),
                      octave);
  }

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace kcoup::support
