#pragma once

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>

namespace kcoup::support {

/// Write `content` to `path` via temp-file + atomic rename (the same
/// pattern CouplingDatabase::save_csv_file uses): readers — and crash
/// recovery — see either the previous complete file or the new complete
/// file, never a truncated one.  Throws std::runtime_error naming the path.
inline void write_file_atomic(const std::string& path,
                              std::string_view content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
    if (!out) {
      throw std::runtime_error("write_file_atomic: cannot open " + tmp);
    }
    out.write(content.data(),
              static_cast<std::streamsize>(content.size()));
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      throw std::runtime_error("write_file_atomic: write to " + tmp +
                               " failed");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("write_file_atomic: rename to " + path +
                             " failed");
  }
}

/// Append `content` to `path` with the same all-or-nothing guarantee:
/// the existing file (if any) is read, the new content concatenated, and
/// the result written atomically.  Costs a full rewrite — appropriate for
/// metrics records, not high-volume logs.
inline void append_file_atomic(const std::string& path,
                               std::string_view content) {
  std::string combined;
  {
    std::ifstream in(path, std::ios::binary);
    if (in) {
      std::ostringstream existing;
      existing << in.rdbuf();
      combined = std::move(existing).str();
    }
  }
  combined += content;
  write_file_atomic(path, combined);
}

}  // namespace kcoup::support
