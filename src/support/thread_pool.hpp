#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace kcoup::support {

/// Fixed-size worker pool draining a FIFO job queue.
///
/// Used by the campaign executor to run independent measurement tasks
/// concurrently.  Jobs must not throw — callers that can fail capture their
/// own errors (the executor stores the first std::exception_ptr and rethrows
/// after the pool drains).
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t workers) {
    if (workers == 0) workers = 1;
    workers_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) {
      workers_.emplace_back([this] { run(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    wake_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  void submit(std::function<void()> job) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.push_back(std::move(job));
    }
    wake_.notify_one();
  }

  /// Blocks until the queue is empty and every worker is between jobs.
  void wait_idle() {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
  }

  [[nodiscard]] std::size_t worker_count() const { return workers_.size(); }

 private:
  void run() {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      wake_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      std::function<void()> job = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
      lock.unlock();
      job();
      lock.lock();
      --active_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }

  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t active_ = 0;
  bool stop_ = false;
};

}  // namespace kcoup::support
