#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace kcoup::support {

/// Fixed-size worker pool draining a FIFO job queue.
///
/// Used by the campaign executor to run independent measurement tasks
/// concurrently.  Jobs must not throw — callers that can fail capture their
/// own errors (the executor stores the first std::exception_ptr and rethrows
/// after the pool drains).
class ThreadPool {
 public:
  /// Returned by this_worker_index() on threads that are not pool workers.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  explicit ThreadPool(std::size_t workers) {
    if (workers == 0) workers = 1;
    workers_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) {
      workers_.emplace_back([this, i] {
        tls_worker_index_ = i;
        run();
      });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    wake_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  void submit(std::function<void()> job) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.push_back(std::move(job));
    }
    wake_.notify_one();
  }

  /// Blocks until the queue is empty and every worker is between jobs.
  void wait_idle() {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
  }

  [[nodiscard]] std::size_t worker_count() const { return workers_.size(); }

  /// Index in [0, worker_count()) of the pool worker executing the calling
  /// thread, or `npos` off-pool.  Lets jobs keep per-worker state (e.g. the
  /// campaign executor's application-handle pools) without synchronisation.
  /// A worker of a nested pool sees the index the innermost pool assigned.
  [[nodiscard]] static std::size_t this_worker_index() {
    return tls_worker_index_;
  }

 private:
  void run() {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      wake_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      std::function<void()> job = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
      lock.unlock();
      job();
      lock.lock();
      --active_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }

  inline static thread_local std::size_t tls_worker_index_ = npos;

  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t active_ = 0;
  bool stop_ = false;
};

}  // namespace kcoup::support
