#pragma once

#include <locale>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace kcoup::support {

/// Locale-independent double formatting: always the "C" locale's '.' decimal
/// point, never digit grouping.  The default precision (max_digits10 = 17
/// significant digits) round-trips every finite double exactly, which the
/// campaign journal relies on for bit-identical resume.
[[nodiscard]] inline std::string format_double(double v, int precision = 17) {
  std::ostringstream out;
  out.imbue(std::locale::classic());
  out.precision(precision);
  out << v;
  return out.str();
}

/// Locale-independent strict double parse: the whole string must be
/// consumed.  Returns nullopt on malformed input instead of throwing so
/// callers can attach their own context.
[[nodiscard]] inline std::optional<double> parse_double(std::string_view s) {
  if (s.empty()) return std::nullopt;
  std::istringstream in{std::string(s)};
  in.imbue(std::locale::classic());
  double v = 0.0;
  in >> v;
  if (in.fail()) return std::nullopt;
  in >> std::ws;
  if (!in.eof()) return std::nullopt;
  return v;
}

}  // namespace kcoup::support
