#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace kcoup::support {

/// A bump-pointer arena for per-request/per-window scratch: allocation is a
/// pointer increment, deallocation is a no-op, and reset() recycles every
/// block for the next request without returning memory to the system.
/// Not thread-safe — intended as a thread_local in each server shard.
///
/// Blocks grow geometrically, so a steady-state workload settles into one
/// block sized for its largest window and reset() becomes O(1).
class MonotonicArena {
 public:
  explicit MonotonicArena(std::size_t first_block_bytes = 4096)
      : next_block_bytes_(first_block_bytes < 64 ? 64 : first_block_bytes) {}

  MonotonicArena(const MonotonicArena&) = delete;
  MonotonicArena& operator=(const MonotonicArena&) = delete;

  [[nodiscard]] void* allocate(std::size_t bytes, std::size_t alignment) {
    if (bytes == 0) bytes = 1;
    const std::uintptr_t base =
        reinterpret_cast<std::uintptr_t>(cursor_);
    const std::uintptr_t aligned =
        (base + (alignment - 1)) & ~std::uintptr_t{alignment - 1};
    const std::size_t padding = aligned - base;
    if (block_ < blocks_.size() &&
        padding + bytes <= remaining_in_block()) {
      cursor_ = reinterpret_cast<char*>(aligned) + bytes;
      return reinterpret_cast<void*>(aligned);
    }
    return allocate_slow(bytes, alignment);
  }

  /// Recycle every block.  Outstanding allocations become invalid; callers
  /// (the server window loop) must have dropped all arena-backed containers
  /// first.
  void reset() {
    block_ = 0;
    if (!blocks_.empty()) {
      cursor_ = blocks_.front().data.get();
      block_end_ = cursor_ + blocks_.front().bytes;
    }
  }

  /// Bytes currently held across all blocks (monitoring/tests).
  [[nodiscard]] std::size_t capacity() const {
    std::size_t total = 0;
    for (const Block& b : blocks_) total += b.bytes;
    return total;
  }
  [[nodiscard]] std::size_t block_count() const { return blocks_.size(); }

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    std::size_t bytes = 0;
  };

  [[nodiscard]] std::size_t remaining_in_block() const {
    return static_cast<std::size_t>(block_end_ - cursor_);
  }

  [[nodiscard]] void* allocate_slow(std::size_t bytes, std::size_t alignment) {
    // Advance through already-reserved blocks before growing.
    while (block_ + 1 < blocks_.size()) {
      ++block_;
      cursor_ = blocks_[block_].data.get();
      block_end_ = cursor_ + blocks_[block_].bytes;
      void* p = try_bump(bytes, alignment);
      if (p != nullptr) return p;
    }
    std::size_t want = next_block_bytes_;
    // Worst case the aligned allocation needs bytes + alignment - 1.
    while (want < bytes + alignment) want *= 2;
    next_block_bytes_ = want * 2;
    Block b;
    b.data = std::make_unique<char[]>(want);
    b.bytes = want;
    blocks_.push_back(std::move(b));
    block_ = blocks_.size() - 1;
    cursor_ = blocks_[block_].data.get();
    block_end_ = cursor_ + blocks_[block_].bytes;
    void* p = try_bump(bytes, alignment);
    return p != nullptr ? p : throw std::bad_alloc{};
  }

  [[nodiscard]] void* try_bump(std::size_t bytes, std::size_t alignment) {
    const std::uintptr_t base = reinterpret_cast<std::uintptr_t>(cursor_);
    const std::uintptr_t aligned =
        (base + (alignment - 1)) & ~std::uintptr_t{alignment - 1};
    const std::size_t padding = aligned - base;
    if (padding + bytes > remaining_in_block()) return nullptr;
    cursor_ = reinterpret_cast<char*>(aligned) + bytes;
    return reinterpret_cast<void*>(aligned);
  }

  std::vector<Block> blocks_;
  std::size_t block_ = 0;
  char* cursor_ = nullptr;
  char* block_end_ = nullptr;
  std::size_t next_block_bytes_;
};

/// Minimal std-conforming allocator over a MonotonicArena, for scoping a
/// std::vector's backing store to one request window.  deallocate() is a
/// no-op; the arena's reset() reclaims everything at once.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(MonotonicArena* arena) : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T*, std::size_t) {}

  [[nodiscard]] MonotonicArena* arena() const { return arena_; }

  template <typename U>
  [[nodiscard]] bool operator==(const ArenaAllocator<U>& other) const {
    return arena_ == other.arena();
  }

 private:
  MonotonicArena* arena_;
};

}  // namespace kcoup::support
