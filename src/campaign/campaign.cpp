#include "campaign/campaign.hpp"

#include <cstdio>
#include <istream>
#include <locale>
#include <sstream>
#include <stdexcept>

#include "support/num_format.hpp"

namespace kcoup::campaign {

namespace {

std::string trim(const std::string& s) {
  const std::size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const std::size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

std::vector<std::string> split_list(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    item = trim(item);
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

int parse_int(const std::string& key, const std::string& value) {
  try {
    std::size_t pos = 0;
    const int v = std::stoi(value, &pos);
    if (pos != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    throw std::runtime_error("campaign spec: bad integer for '" + key +
                             "': '" + value + "'");
  }
}

double parse_double(const std::string& key, const std::string& value) {
  const auto v = support::parse_double(value);
  if (!v.has_value()) {
    throw std::runtime_error("campaign spec: bad number for '" + key + "': '" +
                             value + "'");
  }
  return *v;
}

bool parse_bool(const std::string& key, const std::string& value) {
  if (value == "on" || value == "true" || value == "1" || value == "yes") {
    return true;
  }
  if (value == "off" || value == "false" || value == "0" || value == "no") {
    return false;
  }
  throw std::runtime_error("campaign spec: bad boolean for '" + key + "': '" +
                           value + "' (use on/off)");
}

[[noreturn]] void reject(std::size_t line_no, const std::string& key,
                         const std::string& why) {
  throw std::runtime_error("campaign spec line " + std::to_string(line_no) +
                           ": '" + key + "' " + why);
}

}  // namespace

CampaignTextSpec parse_campaign_text(std::istream& in) {
  CampaignTextSpec spec;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    line = trim(line);
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      throw std::runtime_error("campaign spec line " + std::to_string(line_no) +
                               ": expected 'key = value'");
    }
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key.empty() || value.empty()) {
      throw std::runtime_error("campaign spec line " + std::to_string(line_no) +
                               ": empty key or value");
    }
    if (key == "apps") {
      spec.applications = split_list(value);
    } else if (key == "classes" || key == "configs") {
      spec.configs = split_list(value);
    } else if (key == "procs" || key == "ranks") {
      spec.ranks.clear();
      for (const std::string& item : split_list(value)) {
        const int r = parse_int(key, item);
        if (r < 1) reject(line_no, key, "entries must be >= 1");
        spec.ranks.push_back(r);
      }
    } else if (key == "chains") {
      spec.chain_lengths.clear();
      for (const std::string& item : split_list(value)) {
        const int q = parse_int(key, item);
        if (q < 1) reject(line_no, key, "entries must be >= 1");
        spec.chain_lengths.push_back(static_cast<std::size_t>(q));
      }
    } else if (key == "repetitions") {
      const int r = parse_int(key, value);
      if (r < 1) reject(line_no, key, "must be >= 1");
      spec.measurement.repetitions = r;
    } else if (key == "warmup") {
      const int w = parse_int(key, value);
      if (w < 0) reject(line_no, key, "must be >= 0");
      spec.measurement.warmup = w;
    } else if (key == "epilogue_repetitions") {
      const int r = parse_int(key, value);
      if (r < 1) reject(line_no, key, "must be >= 1");
      spec.measurement.epilogue_repetitions = r;
    } else if (key == "pool") {
      spec.pool_handles = parse_bool(key, value);
    } else if (key == "workers") {
      const int w = parse_int(key, value);
      if (w < 0) reject(line_no, key, "must be >= 0");
      spec.workers = static_cast<std::size_t>(w);
    } else if (key == "machine") {
      spec.machine = value;
    } else if (key == "retry_rsd") {
      const double rsd = parse_double(key, value);
      if (!(rsd >= 0.0)) reject(line_no, key, "must be >= 0");
      spec.retry.max_relative_stddev = rsd;
    } else if (key == "retry_max") {
      const int m = parse_int(key, value);
      if (m < 1) reject(line_no, key, "must be >= 1");
      spec.retry.max_attempts = m;
    } else {
      throw std::runtime_error("campaign spec line " + std::to_string(line_no) +
                               ": unknown key '" + key + "'");
    }
  }
  if (spec.applications.empty()) {
    throw std::runtime_error("campaign spec: missing 'apps'");
  }
  if (spec.configs.empty()) {
    throw std::runtime_error("campaign spec: missing 'classes'");
  }
  if (spec.ranks.empty()) {
    throw std::runtime_error("campaign spec: missing 'procs'");
  }
  return spec;
}

std::string to_text(const CampaignTextSpec& spec) {
  std::ostringstream out;
  out.imbue(std::locale::classic());
  auto list = [&out](const char* key, const auto& items) {
    out << key << " = ";
    bool first = true;
    for (const auto& item : items) {
      if (!first) out << ", ";
      out << item;
      first = false;
    }
    out << '\n';
  };
  list("apps", spec.applications);
  list("classes", spec.configs);
  list("procs", spec.ranks);
  list("chains", spec.chain_lengths);
  out << "repetitions = " << spec.measurement.repetitions << '\n';
  out << "warmup = " << spec.measurement.warmup << '\n';
  out << "epilogue_repetitions = " << spec.measurement.epilogue_repetitions
      << '\n';
  out << "workers = " << spec.workers << '\n';
  out << "pool = " << (spec.pool_handles ? "on" : "off") << '\n';
  out << "machine = " << spec.machine << '\n';
  out << "retry_rsd = " << support::format_double(spec.retry.max_relative_stddev)
      << '\n';
  out << "retry_max = " << spec.retry.max_attempts << '\n';
  return out.str();
}

void CampaignMetrics::publish(obs::MetricsRegistry& registry) const {
  auto count = [&registry](const char* name, std::size_t v) {
    registry.counter(name).add(static_cast<std::uint64_t>(v));
  };
  auto level = [&registry](const char* name, double v) {
    registry.gauge(name).set(v);
  };
  count("campaign.studies", studies);
  count("campaign.workers", workers);
  count("campaign.tasks_requested", tasks_requested);
  count("campaign.tasks_planned", tasks_planned);
  count("campaign.tasks_deduplicated", tasks_deduplicated);
  count("campaign.cache_hits", cache_hits);
  count("campaign.journal_hits", journal_hits);
  count("campaign.tasks_executed", tasks_executed);
  count("campaign.tasks_retried", tasks_retried);
  count("campaign.tasks_failed", tasks_failed);
  count("campaign.handles_created", handles_created);
  count("campaign.handles_reused", handles_reused);
  level("campaign.plan_s", plan_s);
  level("campaign.measure_s", measure_s);
  level("campaign.assemble_s", assemble_s);
  level("campaign.wall_s", wall_s);
  level("campaign.task_min_s", task_min_s);
  level("campaign.task_max_s", task_max_s);
  level("campaign.task_mean_s", task_mean_s);
}

CampaignMetrics CampaignMetrics::from_registry(obs::MetricsRegistry& registry) {
  auto count = [&registry](const char* name) {
    return static_cast<std::size_t>(registry.counter(name).value());
  };
  auto level = [&registry](const char* name) {
    return registry.gauge(name).value();
  };
  CampaignMetrics m;
  m.studies = count("campaign.studies");
  m.workers = count("campaign.workers");
  m.tasks_requested = count("campaign.tasks_requested");
  m.tasks_planned = count("campaign.tasks_planned");
  m.tasks_deduplicated = count("campaign.tasks_deduplicated");
  m.cache_hits = count("campaign.cache_hits");
  m.journal_hits = count("campaign.journal_hits");
  m.tasks_executed = count("campaign.tasks_executed");
  m.tasks_retried = count("campaign.tasks_retried");
  m.tasks_failed = count("campaign.tasks_failed");
  m.handles_created = count("campaign.handles_created");
  m.handles_reused = count("campaign.handles_reused");
  m.plan_s = level("campaign.plan_s");
  m.measure_s = level("campaign.measure_s");
  m.assemble_s = level("campaign.assemble_s");
  m.wall_s = level("campaign.wall_s");
  m.task_min_s = level("campaign.task_min_s");
  m.task_max_s = level("campaign.task_max_s");
  m.task_mean_s = level("campaign.task_mean_s");
  return m;
}

report::Table CampaignMetrics::to_table() const {
  report::Table t("Campaign metrics");
  t.set_header({"metric", "value"});
  auto count = [&t](const char* name, std::size_t v) {
    t.add_row({name, std::to_string(v)});
  };
  auto secs = [&t](const char* name, double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6f s", v);
    t.add_row({name, buf});
  };
  count("studies", studies);
  count("workers", workers);
  count("tasks requested", tasks_requested);
  count("tasks planned", tasks_planned);
  count("tasks deduplicated", tasks_deduplicated);
  count("cache hits", cache_hits);
  count("journal hits", journal_hits);
  count("tasks executed", tasks_executed);
  count("tasks retried", tasks_retried);
  count("tasks failed", tasks_failed);
  count("handles created", handles_created);
  count("handles reused", handles_reused);
  secs("plan time", plan_s);
  secs("measure time", measure_s);
  secs("assemble time", assemble_s);
  secs("wall time", wall_s);
  secs("task time min", task_min_s);
  secs("task time max", task_max_s);
  secs("task time mean", task_mean_s);
  return t;
}

std::string CampaignMetrics::to_csv() const {
  std::ostringstream out;
  out.imbue(std::locale::classic());
  out << "studies,workers,tasks_requested,tasks_planned,tasks_deduplicated,"
         "cache_hits,journal_hits,tasks_executed,tasks_retried,tasks_failed,"
         "handles_created,handles_reused,plan_s,measure_s,assemble_s,wall_s,"
         "task_min_s,task_max_s,task_mean_s\n"
      << studies << ',' << workers << ',' << tasks_requested << ','
      << tasks_planned << ',' << tasks_deduplicated << ',' << cache_hits << ','
      << journal_hits << ',' << tasks_executed << ',' << tasks_retried << ','
      << tasks_failed << ',' << handles_created << ',' << handles_reused << ','
      << plan_s << ',' << measure_s << ',' << assemble_s << ',' << wall_s
      << ',' << task_min_s << ',' << task_max_s << ',' << task_mean_s << '\n';
  return out.str();
}

std::string CampaignMetrics::to_jsonl() const {
  std::ostringstream out;
  out.imbue(std::locale::classic());
  out << "{\"studies\":" << studies << ",\"workers\":" << workers
      << ",\"tasks_requested\":" << tasks_requested
      << ",\"tasks_planned\":" << tasks_planned
      << ",\"tasks_deduplicated\":" << tasks_deduplicated
      << ",\"cache_hits\":" << cache_hits
      << ",\"journal_hits\":" << journal_hits
      << ",\"tasks_executed\":" << tasks_executed
      << ",\"tasks_retried\":" << tasks_retried
      << ",\"tasks_failed\":" << tasks_failed
      << ",\"handles_created\":" << handles_created
      << ",\"handles_reused\":" << handles_reused << ",\"plan_s\":" << plan_s
      << ",\"measure_s\":" << measure_s << ",\"assemble_s\":" << assemble_s
      << ",\"wall_s\":" << wall_s << ",\"task_min_s\":" << task_min_s
      << ",\"task_max_s\":" << task_max_s
      << ",\"task_mean_s\":" << task_mean_s << "}\n";
  return out.str();
}

}  // namespace kcoup::campaign
