#include "campaign/campaign.hpp"

#include <cstdio>
#include <istream>
#include <sstream>
#include <stdexcept>

namespace kcoup::campaign {

namespace {

std::string trim(const std::string& s) {
  const std::size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const std::size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

std::vector<std::string> split_list(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    item = trim(item);
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

int parse_int(const std::string& key, const std::string& value) {
  try {
    std::size_t pos = 0;
    const int v = std::stoi(value, &pos);
    if (pos != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    throw std::runtime_error("campaign spec: bad integer for '" + key +
                             "': '" + value + "'");
  }
}

double parse_double(const std::string& key, const std::string& value) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(value, &pos);
    if (pos != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    throw std::runtime_error("campaign spec: bad number for '" + key +
                             "': '" + value + "'");
  }
}

bool parse_bool(const std::string& key, const std::string& value) {
  if (value == "on" || value == "true" || value == "1" || value == "yes") {
    return true;
  }
  if (value == "off" || value == "false" || value == "0" || value == "no") {
    return false;
  }
  throw std::runtime_error("campaign spec: bad boolean for '" + key + "': '" +
                           value + "' (use on/off)");
}

}  // namespace

CampaignTextSpec parse_campaign_text(std::istream& in) {
  CampaignTextSpec spec;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    line = trim(line);
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      throw std::runtime_error("campaign spec line " + std::to_string(line_no) +
                               ": expected 'key = value'");
    }
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key.empty() || value.empty()) {
      throw std::runtime_error("campaign spec line " + std::to_string(line_no) +
                               ": empty key or value");
    }
    if (key == "apps") {
      spec.applications = split_list(value);
    } else if (key == "classes" || key == "configs") {
      spec.configs = split_list(value);
    } else if (key == "procs" || key == "ranks") {
      spec.ranks.clear();
      for (const std::string& item : split_list(value)) {
        spec.ranks.push_back(parse_int(key, item));
      }
    } else if (key == "chains") {
      spec.chain_lengths.clear();
      for (const std::string& item : split_list(value)) {
        const int q = parse_int(key, item);
        if (q < 1) {
          throw std::runtime_error("campaign spec line " +
                                   std::to_string(line_no) +
                                   ": chain length must be >= 1");
        }
        spec.chain_lengths.push_back(static_cast<std::size_t>(q));
      }
    } else if (key == "repetitions") {
      spec.measurement.repetitions = parse_int(key, value);
    } else if (key == "warmup") {
      spec.measurement.warmup = parse_int(key, value);
    } else if (key == "epilogue_repetitions") {
      const int r = parse_int(key, value);
      if (r < 1) {
        throw std::runtime_error("campaign spec line " +
                                 std::to_string(line_no) +
                                 ": epilogue_repetitions must be >= 1");
      }
      spec.measurement.epilogue_repetitions = r;
    } else if (key == "pool") {
      spec.pool_handles = parse_bool(key, value);
    } else if (key == "workers") {
      const int w = parse_int(key, value);
      if (w < 0) {
        throw std::runtime_error("campaign spec line " +
                                 std::to_string(line_no) +
                                 ": workers must be >= 0");
      }
      spec.workers = static_cast<std::size_t>(w);
    } else if (key == "machine") {
      spec.machine = value;
    } else if (key == "retry_rsd") {
      spec.retry.max_relative_stddev = parse_double(key, value);
    } else if (key == "retry_max") {
      spec.retry.max_attempts = parse_int(key, value);
    } else {
      throw std::runtime_error("campaign spec line " + std::to_string(line_no) +
                               ": unknown key '" + key + "'");
    }
  }
  if (spec.applications.empty()) {
    throw std::runtime_error("campaign spec: missing 'apps'");
  }
  if (spec.configs.empty()) {
    throw std::runtime_error("campaign spec: missing 'classes'");
  }
  if (spec.ranks.empty()) {
    throw std::runtime_error("campaign spec: missing 'procs'");
  }
  return spec;
}

report::Table CampaignMetrics::to_table() const {
  report::Table t("Campaign metrics");
  t.set_header({"metric", "value"});
  auto count = [&t](const char* name, std::size_t v) {
    t.add_row({name, std::to_string(v)});
  };
  auto secs = [&t](const char* name, double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6f s", v);
    t.add_row({name, buf});
  };
  count("studies", studies);
  count("workers", workers);
  count("tasks requested", tasks_requested);
  count("tasks planned", tasks_planned);
  count("tasks deduplicated", tasks_deduplicated);
  count("cache hits", cache_hits);
  count("tasks executed", tasks_executed);
  count("tasks retried", tasks_retried);
  count("handles created", handles_created);
  count("handles reused", handles_reused);
  secs("plan time", plan_s);
  secs("measure time", measure_s);
  secs("assemble time", assemble_s);
  secs("wall time", wall_s);
  secs("task time min", task_min_s);
  secs("task time max", task_max_s);
  secs("task time mean", task_mean_s);
  return t;
}

std::string CampaignMetrics::to_csv() const {
  std::ostringstream out;
  out << "studies,workers,tasks_requested,tasks_planned,tasks_deduplicated,"
         "cache_hits,tasks_executed,tasks_retried,handles_created,"
         "handles_reused,plan_s,measure_s,assemble_s,wall_s,task_min_s,"
         "task_max_s,task_mean_s\n"
      << studies << ',' << workers << ',' << tasks_requested << ','
      << tasks_planned << ',' << tasks_deduplicated << ',' << cache_hits << ','
      << tasks_executed << ',' << tasks_retried << ',' << handles_created
      << ',' << handles_reused << ',' << plan_s << ',' << measure_s << ','
      << assemble_s << ',' << wall_s << ',' << task_min_s << ',' << task_max_s
      << ',' << task_mean_s << '\n';
  return out.str();
}

std::string CampaignMetrics::to_jsonl() const {
  std::ostringstream out;
  out << "{\"studies\":" << studies << ",\"workers\":" << workers
      << ",\"tasks_requested\":" << tasks_requested
      << ",\"tasks_planned\":" << tasks_planned
      << ",\"tasks_deduplicated\":" << tasks_deduplicated
      << ",\"cache_hits\":" << cache_hits
      << ",\"tasks_executed\":" << tasks_executed
      << ",\"tasks_retried\":" << tasks_retried
      << ",\"handles_created\":" << handles_created
      << ",\"handles_reused\":" << handles_reused << ",\"plan_s\":" << plan_s
      << ",\"measure_s\":" << measure_s << ",\"assemble_s\":" << assemble_s
      << ",\"wall_s\":" << wall_s << ",\"task_min_s\":" << task_min_s
      << ",\"task_max_s\":" << task_max_s
      << ",\"task_mean_s\":" << task_mean_s << "}\n";
  return out.str();
}

}  // namespace kcoup::campaign
