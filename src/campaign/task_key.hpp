#pragma once

#include <compare>
#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

namespace kcoup::campaign {

/// The four atomic measurement kinds a study decomposes into.  An isolated
/// kernel measurement is a chain of length 1 (exactly how the serial
/// MeasurementHarness computes it), so it deduplicates naturally against
/// length-1 chain requests.
enum class TaskKind { kChain, kActual, kPrologue, kEpilogue };

/// Identity of one atomic measurement, shared across every study that needs
/// it — the campaign-wide analogue of coupling::CouplingKey.  Tasks are
/// keyed by the (application, config, ranks) label triple, not by study
/// index, so duplicate cells in a spec collapse to one measurement.
struct TaskKey {
  std::string application;
  std::string config;
  int ranks = 1;
  TaskKind kind = TaskKind::kChain;
  std::size_t index = 0;   ///< chain start / prologue / epilogue position
  std::size_t length = 0;  ///< chain length; 1 == isolated kernel

  [[nodiscard]] auto operator<=>(const TaskKey&) const = default;
};

[[nodiscard]] constexpr const char* to_string(TaskKind k) {
  switch (k) {
    case TaskKind::kChain: return "chain";
    case TaskKind::kActual: return "actual";
    case TaskKind::kPrologue: return "prologue";
    case TaskKind::kEpilogue: return "epilogue";
  }
  return "?";
}

/// Inverse of to_string(TaskKind); nullopt for unknown names.
[[nodiscard]] inline std::optional<TaskKind> parse_task_kind(
    std::string_view s) {
  if (s == "chain") return TaskKind::kChain;
  if (s == "actual") return TaskKind::kActual;
  if (s == "prologue") return TaskKind::kPrologue;
  if (s == "epilogue") return TaskKind::kEpilogue;
  return std::nullopt;
}

/// Human-readable "chain(BT,W,P=4,start=2,len=3)" form for logs and errors.
[[nodiscard]] inline std::string to_string(const TaskKey& key) {
  std::string out = to_string(key.kind);
  out += "(" + key.application + "," + key.config +
         ",P=" + std::to_string(key.ranks);
  if (key.kind == TaskKind::kChain) {
    out += ",start=" + std::to_string(key.index) +
           ",len=" + std::to_string(key.length);
  } else if (key.kind != TaskKind::kActual) {
    out += ",i=" + std::to_string(key.index);
  }
  out += ")";
  return out;
}

}  // namespace kcoup::campaign
