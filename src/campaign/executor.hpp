#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/journal.hpp"
#include "campaign/planner.hpp"
#include "coupling/database.hpp"
#include "coupling/study.hpp"

namespace kcoup::campaign {

/// One task that exhausted its retry budget.  The campaign keeps going: the
/// failure is recorded here instead of aborting the sweep, and every value
/// the task would have produced becomes an explicit missing marker (NaN) in
/// the affected studies.
struct TaskFailure {
  TaskKey key;
  int attempts = 0;   ///< total attempts spent (exceptions + noise retries)
  std::string what;   ///< the final attempt's exception message
};

/// Everything a campaign produces: one StudyResult per spec study (same
/// order) plus the planner/executor metrics.  When tasks failed, the
/// affected studies are *partial*: each value derived from a failed task is
/// quiet-NaN, the task keys behind the holes are listed per study in
/// `missing`, and the failures themselves (key order) in `failures`.
struct CampaignResult {
  std::vector<coupling::StudyResult> studies;
  std::vector<TaskFailure> failures;       ///< sorted by TaskKey
  std::vector<std::vector<TaskKey>> missing;  ///< per study, unresolved keys
  CampaignMetrics metrics;

  /// True iff every task succeeded and every study is fully populated.
  [[nodiscard]] bool complete() const { return failures.empty(); }
};

/// How one task ended: its measured value (successes), the wall-clock it
/// consumed, and the attempts it took.
struct TaskExecution {
  double value = 0.0;
  int attempts = 1;
  double seconds = 0.0;  ///< wall-clock, handle acquisition included
  bool ok = false;
};

/// What executing a bare task set produced.  `outcomes` holds every task —
/// failed ones with `ok == false` — keyed exactly like the plan.
struct TaskSetResult {
  std::map<TaskKey, TaskExecution> outcomes;
  std::vector<TaskFailure> failures;  ///< unsorted (worker completion order)
  std::size_t handles_created = 0;
  std::size_t handles_reused = 0;
};

/// Raw task-set execution: run exactly `tasks` — no planning, no assembly —
/// with the same worker pool, handle pooling, retry, fault-injection and
/// failure-isolation semantics as execute_plan().  Task values are
/// bit-identical to what execute_plan would measure for the same keys: every
/// task starts from a reset application, so executing a subset (a shard's
/// partition) changes nothing about any individual measurement.  When
/// `journal` is non-null every finished task is appended — successes with
/// their value, exhausted-retry failures as error records — and flushed.
/// Ticks the live "campaign.tasks_executed/retried/failed" counters and the
/// "campaign.task_seconds" histogram in `registry` (nullptr = run-local).
/// Only CampaignAborted escapes, as in execute_plan.
[[nodiscard]] TaskSetResult execute_tasks(
    const CampaignSpec& spec, const std::vector<MeasurementTask>& tasks,
    std::size_t workers = 0, obs::MetricsRegistry* registry = nullptr,
    TaskJournal* journal = nullptr);

/// Deterministic assembly of per-study results from resolved task values:
/// the exact accumulation order of the serial measure_chains()/run_study()
/// path, so wherever `value_of` returns the serial measurement the output
/// is bit-identical to it.  `value_of` returns nullopt for a failed or
/// missing task; every value derived from one becomes quiet-NaN and the key
/// lands in the study's `missing` list.  Fills `studies` and `missing`
/// only — failures and metrics are the caller's.
[[nodiscard]] CampaignResult assemble_campaign(
    const CampaignSpec& spec, const CampaignPlan& plan,
    const std::function<std::optional<double>(const TaskKey&)>& value_of);

/// Record every finite measured chain of `result` into `db`, in spec-study
/// order — the single recording path run_campaign() and the shard-merge
/// coordinator share, so both produce byte-identical stores for identical
/// results.  NaN missing markers and degenerate values are skipped.
void record_campaign(const CampaignSpec& spec, const CampaignResult& result,
                     coupling::CouplingDatabase& db);

/// Execute a plan with `workers` threads (0 = hardware concurrency, 1 =
/// fully serial, no pool).  By default each worker keeps one application
/// instance per study cell and reuses it across that cell's tasks (every
/// measurement starts from app.reset(), so instances are interchangeable);
/// set CampaignSpec::pool_handles = false to instantiate a fresh application
/// per task instead.  Tasks are submitted longest-estimated-first so a
/// straggler cannot serialize the tail.  Results land in a keyed store and
/// assembly is deterministic — the same StudyResults regardless of worker
/// count, pooling or submission order, and bit-identical to
/// coupling::run_study() on each cell.
///
/// Failure isolation: a task whose acquisition or measurement throws is
/// retried up to CampaignSpec::retry.max_attempts total attempts, then
/// recorded as a TaskFailure while the rest of the campaign completes.
/// Only CampaignAborted (injected crash) escapes.  When
/// CampaignSpec::journal_path is set, each completed task is appended to
/// the JSONL journal (flushed per entry) as it finishes.
///
/// Observability: "campaign.*" counters (tasks_executed, tasks_retried,
/// tasks_failed, ...) are updated live in `registry` as tasks finish, the
/// per-task wall-clock distribution lands in the
/// "campaign.task_seconds" histogram, and the returned CampaignMetrics is
/// read back out of the registry (CampaignMetrics::from_registry).  Pass a
/// *fresh* registry to watch a run from another thread; nullptr uses a
/// run-local one.  When obs::Tracer is enabled, every task, measurement
/// attempt and retry emits a span (category "campaign").
[[nodiscard]] CampaignResult execute_plan(
    const CampaignSpec& spec, const CampaignPlan& plan,
    std::size_t workers = 0, obs::MetricsRegistry* registry = nullptr);

/// Plan + execute.  When `db` is given, chains it already holds are served
/// from it (cache hits) and every chain measured or assembled by the
/// campaign is recorded back, so later campaigns keep shrinking.  When
/// `spec.journal_path` names an existing journal, its completed keys are
/// replayed into the plan before execution (journal_hits), so a killed
/// campaign resumes exactly where it stopped.  `registry` as in
/// execute_plan().
[[nodiscard]] CampaignResult run_campaign(
    const CampaignSpec& spec, std::size_t workers = 0,
    coupling::CouplingDatabase* db = nullptr,
    obs::MetricsRegistry* registry = nullptr);

}  // namespace kcoup::campaign
