#pragma once

#include <cstddef>

#include "campaign/campaign.hpp"
#include "campaign/planner.hpp"
#include "coupling/database.hpp"
#include "coupling/study.hpp"

namespace kcoup::campaign {

/// Everything a campaign produces: one StudyResult per spec study (same
/// order) plus the planner/executor metrics.
struct CampaignResult {
  std::vector<coupling::StudyResult> studies;
  CampaignMetrics metrics;
};

/// Execute a plan with `workers` threads (0 = hardware concurrency, 1 =
/// fully serial, no pool).  By default each worker keeps one application
/// instance per study cell and reuses it across that cell's tasks (every
/// measurement starts from app.reset(), so instances are interchangeable);
/// set CampaignSpec::pool_handles = false to instantiate a fresh application
/// per task instead.  Tasks are submitted longest-estimated-first so a
/// straggler cannot serialize the tail.  Results land in a keyed store and
/// assembly is deterministic — the same StudyResults regardless of worker
/// count, pooling or submission order, and bit-identical to
/// coupling::run_study() on each cell.
[[nodiscard]] CampaignResult execute_plan(const CampaignSpec& spec,
                                          const CampaignPlan& plan,
                                          std::size_t workers = 0);

/// Plan + execute.  When `db` is given, chains it already holds are served
/// from it (cache hits) and every chain measured or assembled by the
/// campaign is recorded back, so later campaigns keep shrinking.
[[nodiscard]] CampaignResult run_campaign(
    const CampaignSpec& spec, std::size_t workers = 0,
    coupling::CouplingDatabase* db = nullptr);

}  // namespace kcoup::campaign
