#include "campaign/executor.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <exception>
#include <fstream>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <tuple>

#include "campaign/journal.hpp"
#include "coupling/analysis.hpp"
#include "obs/trace.hpp"
#include "support/thread_pool.hpp"
#include "trace/stats.hpp"

namespace kcoup::campaign {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct TaskOutcome {
  double value = 0.0;
  int attempts = 1;
  double measure_s = 0.0;  ///< wall-clock of this task, acquisition included
  bool ok = false;         ///< false until the task completes successfully
  std::string error;       ///< final attempt's message when !ok
};

/// Failed tasks, collected across workers.  Failures also tick the live
/// "campaign.tasks_failed" counter so a registry observer sees them as they
/// happen, not only in the end-of-run metrics.
struct FailureSink {
  std::mutex mutex;
  std::vector<TaskFailure> failures;
  obs::Counter* failed_counter = nullptr;

  void record(const TaskKey& key, int attempts, const char* what) {
    if (failed_counter != nullptr) failed_counter->add(1);
    std::lock_guard<std::mutex> lock(mutex);
    failures.push_back(TaskFailure{key, attempts, what});
  }
};

/// Per-worker store of reusable application instances, one per study cell.
/// Each worker owns its pool exclusively, so acquisition needs no locking;
/// reuse is sound because every harness measurement starts with app.reset().
struct HandlePool {
  std::map<std::tuple<std::string, std::string, int>, AppHandle> handles;
  std::size_t created = 0;
  std::size_t reused = 0;

  const AppHandle& acquire(const CampaignSpec& spec,
                           const MeasurementTask& task) {
    auto key = std::make_tuple(task.key.application, task.key.config,
                               task.key.ranks);
    const auto it = handles.find(key);
    if (it != handles.end()) {
      ++reused;
      return it->second;
    }
    // The factory may throw (and with fault injection, is expected to):
    // count the handle only once it actually exists.
    AppHandle handle = spec.studies[task.study].factory();
    ++created;
    return handles.emplace(std::move(key), std::move(handle)).first->second;
  }
};

/// Perform one atomic measurement, retrying when the repetition samples are
/// too noisy.  Retries *merge* their samples into the running statistics —
/// earlier repetitions are evidence, not waste, and a merged estimate cannot
/// oscillate the way keep-only-the-last-attempt did.  `attempt_budget` is
/// what remains of RetryPolicy::max_attempts after any exception-consumed
/// attempts; with the default (infinite) threshold the first measurement is
/// always kept, which is what makes the executor bit-identical to the
/// serial path.
TaskOutcome measure_task(const CampaignSpec& spec, const MeasurementTask& task,
                         const AppHandle& handle,
                         const FaultSimulator* faults, int attempt_budget) {
  const coupling::MeasurementHarness harness(&handle.app(), spec.measurement);
  if (faults != nullptr && faults->measure_throws(task.key)) {
    throw FaultInjected(FaultKind::kMeasureThrow, task.key);
  }

  TaskOutcome out;
  if (task.key.kind == TaskKind::kActual) {
    obs::ScopedSpan span("measure", "campaign");
    out.value = harness.actual_total();  // one full run; nothing to retry
    return out;
  }

  auto sample = [&]() -> trace::RunningStats {
    switch (task.key.kind) {
      case TaskKind::kChain:
        return harness.chain_stats(task.key.index, task.key.length);
      case TaskKind::kPrologue:
        return harness.prologue_stats(task.key.index);
      case TaskKind::kEpilogue:
        return harness.epilogue_stats(task.key.index);
      case TaskKind::kActual: break;
    }
    throw std::logic_error("measure_task: unreachable kind");
  };

  trace::RunningStats stats;
  {
    obs::ScopedSpan span("measure", "campaign");
    stats = sample();
  }
  if (faults != nullptr) {
    // An injected outlier: one extra sample at `factor` times the current
    // mean widens the spread enough to trip a configured retry threshold,
    // deterministically, on the first attempt only.
    if (const auto factor = faults->noise_spike(task.key)) {
      stats.add(stats.mean() * *factor);
    }
  }
  const RetryPolicy& retry = spec.retry;
  while (out.attempts < attempt_budget && stats.count() > 1 &&
         stats.mean() > 0.0 &&
         stats.stddev() / stats.mean() > retry.max_relative_stddev) {
    obs::ScopedSpan span("retry", "campaign");
    span.annotate("attempt", static_cast<std::uint64_t>(out.attempts + 1));
    stats.merge(sample());
    ++out.attempts;
  }
  out.value = stats.mean();
  return out;
}

/// One measurement attempt: acquire (or build) the application instance and
/// measure.  Construction faults fire here, before the pool is consulted,
/// so an injected construction throw is independent of pooling state.
TaskOutcome run_task_once(const CampaignSpec& spec,
                          const MeasurementTask& task, HandlePool& pool,
                          const FaultSimulator* faults, int attempt_budget) {
  if (faults != nullptr && faults->construct_throws(task.key)) {
    throw FaultInjected(FaultKind::kConstructThrow, task.key);
  }
  if (spec.pool_handles) {
    return measure_task(spec, task, pool.acquire(spec, task), faults,
                        attempt_budget);
  }
  AppHandle handle = spec.studies[task.study].factory();
  ++pool.created;
  return measure_task(spec, task, handle, faults, attempt_budget);
}

/// Run one task end to end with failure isolation: exceptions from the
/// factory or the measurement consume the same attempt budget noisy samples
/// do; once it is exhausted the failure is recorded in `sink` and the
/// campaign moves on.  Only CampaignAborted (an injected crash) escapes.
TaskOutcome execute_task(const CampaignSpec& spec, const MeasurementTask& task,
                         HandlePool& pool, FaultSimulator* faults,
                         FailureSink& sink) {
  obs::ScopedSpan span("task", "campaign");
  if (span.active()) span.annotate("key", to_string(task.key));
  const Clock::time_point t0 = Clock::now();
  if (faults != nullptr) faults->maybe_abort();
  TaskOutcome out;
  int attempts_spent = 0;
  bool fault_injected = false;
  const int budget = std::max(1, spec.retry.max_attempts);
  for (;;) {
    try {
      out = run_task_once(spec, task, pool, faults, budget - attempts_spent);
      out.attempts += attempts_spent;
      out.ok = true;
      break;
    } catch (const CampaignAborted&) {
      throw;
    } catch (const std::exception& e) {
      if (dynamic_cast<const FaultInjected*>(&e) != nullptr) {
        fault_injected = true;
      }
      ++attempts_spent;
      if (attempts_spent >= budget) {
        sink.record(task.key, attempts_spent, e.what());
        out = TaskOutcome{};
        out.attempts = attempts_spent;
        out.error = e.what();
        if (out.error.empty()) out.error = "task failed";
        break;
      }
    }
  }
  out.measure_s = seconds_since(t0);
  if (span.active()) {
    span.annotate("attempts", static_cast<std::uint64_t>(out.attempts));
    span.annotate("ok", out.ok);
    if (fault_injected) span.annotate("fault", true);
  }
  return out;
}

/// Longest-task-first submission order: schedule by descending planner cost
/// so an expensive straggler cannot serialize the tail of the pool, with the
/// task key as a deterministic tie-break.
std::vector<const MeasurementTask*> cost_sorted(
    const std::vector<MeasurementTask>& tasks) {
  std::vector<const MeasurementTask*> order;
  order.reserve(tasks.size());
  for (const MeasurementTask& t : tasks) order.push_back(&t);
  std::sort(order.begin(), order.end(),
            [](const MeasurementTask* a, const MeasurementTask* b) {
              if (a->cost != b->cost) return a->cost > b->cost;
              return a->key < b->key;
            });
  return order;
}

}  // namespace

TaskSetResult execute_tasks(const CampaignSpec& spec,
                            const std::vector<MeasurementTask>& tasks,
                            std::size_t workers, obs::MetricsRegistry* registry,
                            TaskJournal* journal) {
  if (workers == 0) {
    workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers = std::min(workers, std::max<std::size_t>(1, tasks.size()));

  obs::MetricsRegistry local_registry;
  obs::MetricsRegistry& reg = registry != nullptr ? *registry : local_registry;
  obs::Counter& c_executed = reg.counter("campaign.tasks_executed");
  obs::Counter& c_retried = reg.counter("campaign.tasks_retried");
  obs::Histogram& h_task = reg.histogram("campaign.task_seconds");
  // Live per-task bookkeeping: counters tick as tasks finish so an external
  // registry sees progress mid-run; the final CampaignMetrics is read back
  // out of the registry by the caller and matches the old post-hoc
  // accounting exactly (retried = sum over tasks of attempts - 1).
  auto note_done = [&](const TaskOutcome& out) {
    c_executed.add(1);
    c_retried.add(static_cast<std::uint64_t>(out.attempts - 1));
    h_task.record(out.measure_s);
  };

  FaultSimulator fault_sim(spec.faults);
  FaultSimulator* faults = spec.faults.enabled() ? &fault_sim : nullptr;
  FailureSink sink;
  sink.failed_counter = &reg.counter("campaign.tasks_failed");
  auto journal_done = [journal](const TaskKey& key, const TaskOutcome& out) {
    if (journal == nullptr) return;
    if (out.ok) {
      journal->append(JournalEntry{key, out.value, out.attempts});
    } else {
      // Failure records let a merge coordinator account for the hole; the
      // resume loader skips them, so the task is retried on the next run,
      // exactly as when failures were not journaled.
      journal->append(JournalEntry{key, 0.0, out.attempts, out.error});
    }
  };

  // Keyed result store.  All keys are inserted up front so concurrent
  // workers only ever write distinct, pre-existing mapped values — the map's
  // structure is never mutated while the pool runs.
  std::map<TaskKey, TaskOutcome> outcomes;
  for (const MeasurementTask& t : tasks) outcomes[t.key];

  std::size_t handles_created = 0;
  std::size_t handles_reused = 0;
  if (workers <= 1) {
    HandlePool handle_pool;
    for (const MeasurementTask& t : tasks) {
      const TaskOutcome out = execute_task(spec, t, handle_pool, faults, sink);
      outcomes[t.key] = out;
      journal_done(t.key, out);
      note_done(out);
    }
    handles_created = handle_pool.created;
    handles_reused = handle_pool.reused;
  } else {
    std::mutex error_mutex;
    std::exception_ptr first_error;
    // One handle pool per worker: a worker indexes its own pool through
    // ThreadPool::this_worker_index(), so pooled handles are never shared
    // between threads and acquisition is lock-free.  The pools (and every
    // handle they hold) are released when this scope unwinds, error or not.
    std::vector<HandlePool> handle_pools(workers);
    {
      support::ThreadPool pool(workers);
      for (const MeasurementTask* t : cost_sorted(tasks)) {
        TaskOutcome* slot = &outcomes.find(t->key)->second;
        pool.submit([&spec, t, slot, &handle_pools, &error_mutex, &first_error,
                     faults, &sink, &journal_done, &note_done] {
          try {
            *slot = execute_task(
                spec, *t,
                handle_pools[support::ThreadPool::this_worker_index()], faults,
                sink);
            journal_done(t->key, *slot);
            note_done(*slot);
          } catch (...) {
            // execute_task isolates task failures; only an injected
            // campaign abort (or a truly unexpected error) lands here.
            std::lock_guard<std::mutex> lock(error_mutex);
            if (!first_error) first_error = std::current_exception();
          }
        });
      }
      pool.wait_idle();
    }
    for (const HandlePool& p : handle_pools) {
      handles_created += p.created;
      handles_reused += p.reused;
    }
    if (first_error) std::rethrow_exception(first_error);
  }

  TaskSetResult result;
  for (const auto& [key, out] : outcomes) {
    result.outcomes.emplace(
        key, TaskExecution{out.value, out.attempts, out.measure_s, out.ok});
  }
  result.failures = std::move(sink.failures);
  result.handles_created = handles_created;
  result.handles_reused = handles_reused;
  return result;
}

CampaignResult assemble_campaign(
    const CampaignSpec& spec, const CampaignPlan& plan,
    const std::function<std::optional<double>(const TaskKey&)>& value_of) {
  if (plan.shapes.size() != spec.studies.size()) {
    throw std::invalid_argument("assemble_campaign: plan does not match spec");
  }
  CampaignResult result;
  result.studies.reserve(spec.studies.size());
  result.missing.resize(spec.studies.size());
  for (std::size_t s = 0; s < spec.studies.size(); ++s) {
    const CampaignStudy& cell = spec.studies[s];
    const StudyShape& shape = plan.shapes[s];
    auto key = [&](TaskKind kind, std::size_t index, std::size_t length) {
      return TaskKey{cell.application, cell.config, cell.ranks, kind, index,
                     length};
    };
    auto resolve = [&](const TaskKey& k) -> double {
      if (const auto v = value_of(k)) return *v;
      result.missing[s].push_back(k);
      return std::numeric_limits<double>::quiet_NaN();
    };

    coupling::StudyResult r;
    r.actual_s = resolve(key(TaskKind::kActual, 0, 0));
    r.isolated_means.reserve(shape.loop_size);
    for (std::size_t k = 0; k < shape.loop_size; ++k) {
      r.isolated_means.push_back(resolve(key(TaskKind::kChain, k, 1)));
    }
    for (std::size_t i = 0; i < shape.prologue_size; ++i) {
      r.prologue_s += resolve(key(TaskKind::kPrologue, i, 0));
    }
    for (std::size_t i = 0; i < shape.epilogue_size; ++i) {
      r.epilogue_s += resolve(key(TaskKind::kEpilogue, i, 0));
    }

    coupling::PredictionInputs inputs;
    inputs.isolated_means = r.isolated_means;
    inputs.prologue_s = r.prologue_s;
    inputs.epilogue_s = r.epilogue_s;
    inputs.iterations = shape.iterations;

    r.summation_s = coupling::summation_prediction(inputs);
    r.summation_error = trace::relative_error(r.summation_s, r.actual_s);

    for (std::size_t q : spec.chain_lengths) {
      coupling::ChainLengthResult cl;
      cl.length = q;
      cl.chains.reserve(shape.loop_size);
      // Same assembly as measure_chains(): members, label and isolated_sum
      // accumulate in chain order, so the floating-point results agree
      // exactly with the serial path.
      for (std::size_t start = 0; start < shape.loop_size; ++start) {
        coupling::ChainCoupling c;
        c.start = start;
        c.length = q;
        for (std::size_t i = 0; i < q; ++i) {
          const std::size_t k = (start + i) % shape.loop_size;
          c.members.push_back(k);
          c.isolated_sum += r.isolated_means[k];
          if (!c.label.empty()) c.label += ", ";
          c.label += shape.kernel_names[k];
        }
        c.chain_time = resolve(key(TaskKind::kChain, start, q));
        cl.chains.push_back(std::move(c));
      }
      cl.coefficients = coupling::coupling_coefficients(shape.loop_size,
                                                        cl.chains);
      cl.prediction_s = coupling::coupling_prediction(inputs, cl.chains);
      cl.relative_error = trace::relative_error(cl.prediction_s, r.actual_s);
      r.by_length.push_back(std::move(cl));
    }
    result.studies.push_back(std::move(r));
  }
  return result;
}

CampaignResult execute_plan(const CampaignSpec& spec, const CampaignPlan& plan,
                            std::size_t workers, obs::MetricsRegistry* registry) {
  const Clock::time_point wall0 = Clock::now();
  if (plan.shapes.size() != spec.studies.size()) {
    throw std::invalid_argument("execute_plan: plan does not match spec");
  }
  if (workers == 0) {
    workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers = std::min(workers, std::max<std::size_t>(1, plan.tasks.size()));

  obs::MetricsRegistry local_registry;
  obs::MetricsRegistry& reg = registry != nullptr ? *registry : local_registry;
  std::unique_ptr<TaskJournal> journal;
  if (!spec.journal_path.empty()) {
    journal = std::make_unique<TaskJournal>(spec.journal_path);
  }

  const Clock::time_point measure0 = Clock::now();
  TaskSetResult run;
  {
    obs::ScopedSpan phase("measure_phase", "campaign");
    run = execute_tasks(spec, plan.tasks, workers, &reg, journal.get());
  }
  const double measure_s = seconds_since(measure0);

  const Clock::time_point assemble0 = Clock::now();
  obs::ScopedSpan assemble_span("assemble_phase", "campaign");
  // nullopt == the task ran and failed; its values become explicit missing
  // markers.  A key absent from both stores is a plan inconsistency.
  auto value_of = [&](const TaskKey& key) -> std::optional<double> {
    const auto it = run.outcomes.find(key);
    if (it != run.outcomes.end()) {
      if (it->second.ok) return it->second.value;
      return std::nullopt;
    }
    const auto cached = plan.cached.find(key);
    if (cached != plan.cached.end()) return cached->second;
    throw std::logic_error("execute_plan: no result for " + to_string(key));
  };
  CampaignResult result = assemble_campaign(spec, plan, value_of);
  const double assemble_s = seconds_since(assemble0);
  assemble_span.finish();

  result.failures = std::move(run.failures);
  std::sort(result.failures.begin(), result.failures.end(),
            [](const TaskFailure& a, const TaskFailure& b) {
              return a.key < b.key;
            });

  // Plan-shaped counters are only known once, here; task progress counters
  // (executed / retried / failed) already ticked live inside
  // execute_tasks().  The gauges reuse the exact post-hoc RunningStats
  // accounting, so the metrics read back below are bit-identical to the
  // pre-registry struct fill.
  auto count = [&reg](const char* name, std::size_t v) {
    reg.counter(name).add(static_cast<std::uint64_t>(v));
  };
  count("campaign.studies", spec.studies.size());
  count("campaign.workers", workers);
  count("campaign.tasks_requested", plan.tasks_requested);
  count("campaign.tasks_planned", plan.tasks.size());
  count("campaign.tasks_deduplicated", plan.tasks_deduplicated);
  count("campaign.cache_hits", plan.cache_hits);
  count("campaign.journal_hits", plan.journal_hits);
  count("campaign.handles_created", run.handles_created);
  count("campaign.handles_reused", run.handles_reused);
  trace::RunningStats task_times;
  for (const auto& [k, o] : run.outcomes) task_times.add(o.seconds);
  if (task_times.count() > 0) {
    reg.gauge("campaign.task_min_s").set(task_times.min());
    reg.gauge("campaign.task_max_s").set(task_times.max());
    reg.gauge("campaign.task_mean_s").set(task_times.mean());
  }
  reg.gauge("campaign.measure_s").set(measure_s);
  reg.gauge("campaign.assemble_s").set(assemble_s);
  reg.gauge("campaign.wall_s").set(seconds_since(wall0));
  result.metrics = CampaignMetrics::from_registry(reg);
  return result;
}

CampaignResult run_campaign(const CampaignSpec& spec, std::size_t workers,
                            coupling::CouplingDatabase* db,
                            obs::MetricsRegistry* registry) {
  obs::MetricsRegistry local_registry;
  obs::MetricsRegistry& reg = registry != nullptr ? *registry : local_registry;
  const Clock::time_point wall0 = Clock::now();
  const Clock::time_point plan0 = Clock::now();
  CampaignPlan plan;
  {
    obs::ScopedSpan span("plan", "campaign");
    plan = plan_campaign(spec, db);
    if (!spec.journal_path.empty()) {
      // Replay whatever a previous (possibly killed) run already measured.
      std::ifstream in(spec.journal_path);
      if (in) (void)apply_journal(plan, load_journal(in));
    }
    if (span.active()) {
      span.annotate("tasks", static_cast<std::uint64_t>(plan.tasks.size()));
      span.annotate("cache_hits",
                    static_cast<std::uint64_t>(plan.cache_hits));
      span.annotate("journal_hits",
                    static_cast<std::uint64_t>(plan.journal_hits));
    }
  }
  const double plan_s = seconds_since(plan0);

  CampaignResult result = execute_plan(spec, plan, workers, &reg);
  result.metrics.plan_s = plan_s;
  result.metrics.wall_s = seconds_since(wall0);
  // Keep the registry canonical: mirror the outer timings over the values
  // execute_plan recorded.
  reg.gauge("campaign.plan_s").set(result.metrics.plan_s);
  reg.gauge("campaign.wall_s").set(result.metrics.wall_s);

  if (db != nullptr) record_campaign(spec, result, *db);
  return result;
}

void record_campaign(const CampaignSpec& spec, const CampaignResult& result,
                     coupling::CouplingDatabase& db) {
  for (std::size_t s = 0; s < spec.studies.size(); ++s) {
    const CampaignStudy& cell = spec.studies[s];
    for (const coupling::ChainLengthResult& cl : result.studies[s].by_length) {
      for (const coupling::ChainCoupling& c : cl.chains) {
        // record() rejects degenerate values; skip them rather than lose
        // the rest of the campaign's measurements.  NaN missing markers
        // from failed tasks are skipped the same way.
        if (!(std::isfinite(c.chain_time) && c.chain_time > 0.0 &&
              std::isfinite(c.isolated_sum) && c.isolated_sum > 0.0)) {
          continue;
        }
        coupling::CouplingRecord rec;
        rec.key = coupling::CouplingKey{cell.application, cell.config,
                                        cell.ranks, c.length, c.start};
        rec.chain_time = c.chain_time;
        rec.isolated_sum = c.isolated_sum;
        db.record(std::move(rec));
      }
    }
  }
}

}  // namespace kcoup::campaign
