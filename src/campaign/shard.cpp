#include "campaign/shard.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <set>
#include <stdexcept>

#include "campaign/journal.hpp"
#include "campaign/planner.hpp"
#include "obs/trace.hpp"

namespace kcoup::campaign {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void fnv1a_bytes(std::uint64_t& h, const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= kFnvPrime;
  }
}

void fnv1a_string(std::uint64_t& h, const std::string& s) {
  fnv1a_bytes(h, s.data(), s.size());
  // 0xff cannot appear in the hashed length/kind bytes below and terminates
  // the string unambiguously, so ("ab","c") and ("a","bc") hash differently.
  h ^= 0xffU;
  h *= kFnvPrime;
}

/// Hash a 64-bit integer as little-endian bytes explicitly, so the digest is
/// the same on any host regardless of its native byte order.
void fnv1a_u64(std::uint64_t& h, std::uint64_t v) {
  unsigned char bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xffU);
  }
  fnv1a_bytes(h, bytes, sizeof bytes);
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::string zero_padded(std::size_t value, int width) {
  std::string s = std::to_string(value);
  while (static_cast<int>(s.size()) < width) s.insert(s.begin(), '0');
  return s;
}

double journal_age_s(const std::string& path) {
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::file_time_type mtime = fs::last_write_time(path, ec);
  if (ec) return std::numeric_limits<double>::infinity();
  const auto age = fs::file_time_type::clock::now() - mtime;
  const double s = std::chrono::duration<double>(age).count();
  return s < 0.0 ? 0.0 : s;  // clock skew: a future mtime reads as fresh
}

}  // namespace

std::uint64_t task_key_hash(const TaskKey& key) {
  std::uint64_t h = kFnvOffset;
  fnv1a_string(h, key.application);
  fnv1a_string(h, key.config);
  fnv1a_u64(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(key.ranks)));
  fnv1a_u64(h, static_cast<std::uint64_t>(key.kind));
  fnv1a_u64(h, static_cast<std::uint64_t>(key.index));
  fnv1a_u64(h, static_cast<std::uint64_t>(key.length));
  return splitmix64(h);
}

std::size_t shard_of(const TaskKey& key, std::size_t shards) {
  if (shards <= 1) return 0;
  return static_cast<std::size_t>(task_key_hash(key) % shards);
}

std::string shard_journal_path(const std::string& dir, std::size_t shard) {
  return dir + "/shard-" + zero_padded(shard, 3) + ".jsonl";
}

std::string coordinator_journal_path(const std::string& dir) {
  return dir + "/coordinator.jsonl";
}

std::string shard_count_path(const std::string& dir) {
  return dir + "/shards";
}

void write_shard_count(const std::string& dir, std::size_t shards,
                       std::size_t shard_id) {
  const std::string path = shard_count_path(dir);
  const std::size_t existing = read_shard_count(dir);
  if (existing != 0) {
    if (existing != shards) {
      throw std::runtime_error(
          "shard manifest " + path + " says --shards " +
          std::to_string(existing) + " but this shard was launched with " +
          std::to_string(shards) +
          "; all shards of a campaign must agree or the partitions overlap");
    }
    return;
  }
  // Concurrent shard launches may race here: give each writer its own temp
  // name (write_file_atomic uses a fixed ".tmp" suffix) and let rename pick
  // a winner.  Every writer writes the same bytes, so any winner is correct.
  const std::string tmp = path + ".tmp." + zero_padded(shard_id, 3);
  const std::string content = std::to_string(shards) + "\n";
  {
    std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
    if (!out) {
      throw std::runtime_error("write_shard_count: cannot open " + tmp);
    }
    out << content;
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      throw std::runtime_error("write_shard_count: write to " + tmp +
                               " failed");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("write_shard_count: rename to " + path +
                             " failed");
  }
}

std::size_t read_shard_count(const std::string& dir) {
  std::ifstream in(shard_count_path(dir));
  if (!in) return 0;
  long long value = 0;
  in >> value;
  if (in.fail() || value < 0) return 0;
  return static_cast<std::size_t>(value);
}

ShardProgress shard_progress(const std::string& dir, std::size_t shard) {
  ShardProgress progress;
  progress.shard = shard;
  const std::string path = shard_journal_path(dir, shard);
  const JournalLoad load = load_journal_file(path);
  progress.exists = load.exists;
  progress.completed = load.completed.size();
  progress.failed = load.failed.size();
  progress.malformed = load.malformed;
  progress.torn_tail = load.torn_tail;
  progress.age_s = load.exists ? journal_age_s(path)
                               : std::numeric_limits<double>::infinity();
  return progress;
}

ShardResult run_shard(const CampaignSpec& spec, const ShardOptions& options,
                      std::size_t workers, obs::MetricsRegistry* registry) {
  if (options.shards < 1) {
    throw std::invalid_argument("run_shard: shards must be >= 1");
  }
  if (options.shard_id >= options.shards) {
    throw std::invalid_argument(
        "run_shard: shard_id " + std::to_string(options.shard_id) +
        " out of range for " + std::to_string(options.shards) + " shards");
  }
  if (options.journal_dir.empty()) {
    throw std::invalid_argument("run_shard: journal_dir must be set");
  }
  if (!spec.journal_path.empty()) {
    throw std::invalid_argument(
        "run_shard: spec.journal_path must be empty; each shard journals to "
        "its own file under journal_dir");
  }
  if (options.steal_after_s < 0.0) {
    throw std::invalid_argument("run_shard: steal_after_s must be >= 0");
  }

  namespace fs = std::filesystem;
  fs::create_directories(options.journal_dir);
  write_shard_count(options.journal_dir, options.shards, options.shard_id);

  obs::MetricsRegistry local_registry;
  obs::MetricsRegistry& reg = registry != nullptr ? *registry : local_registry;
  obs::ScopedSpan span("shard_run", "campaign");
  if (span.active()) {
    span.annotate("shard", static_cast<std::uint64_t>(options.shard_id));
    span.annotate("shards", static_cast<std::uint64_t>(options.shards));
  }

  CampaignPlan plan;
  {
    obs::ScopedSpan plan_span("plan", "campaign");
    plan = plan_campaign(spec);
  }

  ShardResult result;
  result.shard_id = options.shard_id;
  result.shards = options.shards;

  std::vector<MeasurementTask> mine;
  for (const MeasurementTask& t : plan.tasks) {
    if (shard_of(t.key, options.shards) == options.shard_id) {
      mine.push_back(t);
    }
  }
  result.tasks_assigned = mine.size();

  const std::string journal_path =
      shard_journal_path(options.journal_dir, options.shard_id);
  const JournalLoad own = load_journal_file(journal_path);
  // Keys this process no longer needs to run: successes from a previous
  // (killed and resumed) incarnation, whether owned or stolen.  Failure
  // records are deliberately not in this set — a resumed shard retries them,
  // matching the single-process resume semantics.
  std::set<TaskKey> done;
  for (const auto& [key, entry] : own.completed) done.insert(key);

  std::vector<MeasurementTask> todo;
  for (const MeasurementTask& t : mine) {
    if (done.count(t.key) != 0) {
      ++result.tasks_resumed;
    } else {
      todo.push_back(t);
    }
  }

  TaskJournal journal(journal_path);
  {
    obs::ScopedSpan measure_span("shard_measure", "campaign");
    TaskSetResult run = execute_tasks(spec, todo, workers, &reg, &journal);
    result.tasks_executed = todo.size();
    for (const auto& [key, out] : run.outcomes) {
      if (out.ok) done.insert(key);
    }
    result.failures = std::move(run.failures);
  }

  if (options.steal && options.shards > 1) {
    // Snapshot every other shard's journal once: the union of completions is
    // what makes two sequential stealers not re-steal each other's work.
    std::vector<JournalLoad> loads(options.shards);
    std::vector<double> ages(options.shards, 0.0);
    for (std::size_t s = 0; s < options.shards; ++s) {
      if (s == options.shard_id) continue;
      const std::string peer = shard_journal_path(options.journal_dir, s);
      loads[s] = load_journal_file(peer);
      ages[s] = loads[s].exists ? journal_age_s(peer)
                                : std::numeric_limits<double>::infinity();
      for (const auto& [key, entry] : loads[s].completed) done.insert(key);
    }
    for (std::size_t s = 0; s < options.shards; ++s) {
      if (s == options.shard_id) continue;
      std::vector<MeasurementTask> pending;
      for (const MeasurementTask& t : plan.tasks) {
        if (shard_of(t.key, options.shards) != s) continue;
        if (done.count(t.key) != 0) continue;
        // The owner exhausted its retry budget on this key: stealing it
        // would only journal a duplicate failure, so leave the owner's
        // record as the authoritative one for the merge's failure table.
        if (loads[s].failed.count(t.key) != 0) continue;
        pending.push_back(t);
      }
      if (pending.empty()) continue;
      // Watermark check: a journal that grew recently belongs to a live
      // shard that will finish its own work; only a stale (or never
      // started) shard is a straggler worth backfilling.
      if (ages[s] < options.steal_after_s) continue;
      ++result.steal_scans;
      obs::ScopedSpan steal_span("steal_scan", "campaign");
      if (steal_span.active()) {
        steal_span.annotate("victim", static_cast<std::uint64_t>(s));
        steal_span.annotate("tasks",
                            static_cast<std::uint64_t>(pending.size()));
      }
      TaskSetResult stolen = execute_tasks(spec, pending, workers, &reg,
                                           &journal);
      result.tasks_stolen += pending.size();
      for (const auto& [key, out] : stolen.outcomes) {
        if (out.ok) done.insert(key);
      }
      result.failures.insert(result.failures.end(),
                             stolen.failures.begin(), stolen.failures.end());
    }
  }

  std::sort(result.failures.begin(), result.failures.end(),
            [](const TaskFailure& a, const TaskFailure& b) {
              return a.key < b.key;
            });

  auto count = [&reg](const char* name, std::size_t v) {
    reg.counter(name).add(static_cast<std::uint64_t>(v));
  };
  count("campaign.shard.index", options.shard_id);
  count("campaign.shard.count", options.shards);
  count("campaign.shard.tasks_assigned", result.tasks_assigned);
  count("campaign.shard.tasks_resumed", result.tasks_resumed);
  count("campaign.shard.tasks_stolen", result.tasks_stolen);
  count("campaign.shard.steal_scans", result.steal_scans);
  count("campaign.studies", spec.studies.size());
  count("campaign.tasks_requested", plan.tasks_requested);
  count("campaign.tasks_planned", plan.tasks.size());
  count("campaign.tasks_deduplicated", plan.tasks_deduplicated);
  result.metrics = CampaignMetrics::from_registry(reg);
  return result;
}

}  // namespace kcoup::campaign
