#pragma once

#include <compare>
#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "coupling/database.hpp"

namespace kcoup::campaign {

/// The four atomic measurement kinds a study decomposes into.  An isolated
/// kernel measurement is a chain of length 1 (exactly how the serial
/// MeasurementHarness computes it), so it deduplicates naturally against
/// length-1 chain requests.
enum class TaskKind { kChain, kActual, kPrologue, kEpilogue };

/// Identity of one atomic measurement, shared across every study that needs
/// it — the campaign-wide analogue of coupling::CouplingKey.  Tasks are
/// keyed by the (application, config, ranks) label triple, not by study
/// index, so duplicate cells in a spec collapse to one measurement.
struct TaskKey {
  std::string application;
  std::string config;
  int ranks = 1;
  TaskKind kind = TaskKind::kChain;
  std::size_t index = 0;   ///< chain start / prologue / epilogue position
  std::size_t length = 0;  ///< chain length; 1 == isolated kernel

  [[nodiscard]] auto operator<=>(const TaskKey&) const = default;
};

/// Human-readable "chain(BT,W,P=4,start=2,len=3)" form for logs and errors.
[[nodiscard]] std::string to_string(const TaskKey& key);

/// Structure of one study's application, captured once at planning time by
/// instantiating its factory: everything assembly needs without touching
/// the application again.
struct StudyShape {
  std::size_t loop_size = 0;
  std::size_t prologue_size = 0;
  std::size_t epilogue_size = 0;
  int iterations = 1;
  std::vector<std::string> kernel_names;  ///< main-loop kernels, loop order
};

/// One task to execute: its identity plus a study whose factory can build
/// the application that performs it.  `cost` is the planner's execution-cost
/// estimate in kernel invocations — chain traversals multiply chain length
/// by the repetition budget, actual/epilogue tasks pay for full application
/// runs — which the executor uses to schedule longest-task-first so one
/// expensive straggler cannot serialize the tail of the worker pool.
struct MeasurementTask {
  TaskKey key;
  std::size_t study = 0;
  double cost = 1.0;
};

/// The deduplicated execution plan for a campaign.  All tasks are mutually
/// independent (every measurement starts from a reset application), so the
/// executor may run them in any order or concurrently; assembly joins them
/// back into per-study results through the key space.
struct CampaignPlan {
  std::vector<MeasurementTask> tasks;
  std::map<TaskKey, double> cached;  ///< chain_time served by the database
  std::vector<StudyShape> shapes;    ///< parallel to spec.studies
  std::size_t tasks_requested = 0;
  std::size_t tasks_deduplicated = 0;
  std::size_t cache_hits = 0;
};

/// Expand a spec into the minimal set of atomic measurements:
///
///  * per cell, the N isolated measurements, the actual run and the
///    prologue/epilogue measurements are planned once, not once per chain
///    length;
///  * duplicate cells (same application/config/ranks triple) share all
///    tasks;
///  * chain tasks already present in `db` (exact CouplingKey hit) become
///    cache entries instead of tasks.
///
/// Throws std::invalid_argument for chain lengths outside [1, loop size]
/// (mirroring measure_chains) or an empty loop.
[[nodiscard]] CampaignPlan plan_campaign(
    const CampaignSpec& spec, const coupling::CouplingDatabase* db = nullptr);

}  // namespace kcoup::campaign
