#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/task_key.hpp"
#include "coupling/database.hpp"

namespace kcoup::campaign {

/// Structure of one study's application, captured once at planning time by
/// instantiating its factory: everything assembly needs without touching
/// the application again.
struct StudyShape {
  std::size_t loop_size = 0;
  std::size_t prologue_size = 0;
  std::size_t epilogue_size = 0;
  int iterations = 1;
  std::vector<std::string> kernel_names;  ///< main-loop kernels, loop order
};

/// One task to execute: its identity plus a study whose factory can build
/// the application that performs it.  `cost` is the planner's execution-cost
/// estimate in kernel invocations — chain traversals multiply chain length
/// by the repetition budget, actual/epilogue tasks pay for full application
/// runs — which the executor uses to schedule longest-task-first so one
/// expensive straggler cannot serialize the tail of the worker pool.
struct MeasurementTask {
  TaskKey key;
  std::size_t study = 0;
  double cost = 1.0;
};

/// The deduplicated execution plan for a campaign.  All tasks are mutually
/// independent (every measurement starts from a reset application), so the
/// executor may run them in any order or concurrently; assembly joins them
/// back into per-study results through the key space.
struct CampaignPlan {
  std::vector<MeasurementTask> tasks;
  /// Values served without execution: chain_time from the database, plus any
  /// task value replayed from a resume journal.
  std::map<TaskKey, double> cached;
  std::vector<StudyShape> shapes;    ///< parallel to spec.studies
  std::size_t tasks_requested = 0;
  std::size_t tasks_deduplicated = 0;
  std::size_t cache_hits = 0;
  std::size_t journal_hits = 0;      ///< tasks replayed by apply_journal()
};

/// Expand a spec into the minimal set of atomic measurements:
///
///  * per cell, the N isolated measurements, the actual run and the
///    prologue/epilogue measurements are planned once, not once per chain
///    length;
///  * duplicate cells (same application/config/ranks triple) share all
///    tasks;
///  * chain tasks already present in `db` (exact CouplingKey hit) become
///    cache entries instead of tasks.
///
/// Throws std::invalid_argument for chain lengths outside [1, loop size]
/// (mirroring measure_chains) or an empty loop.
[[nodiscard]] CampaignPlan plan_campaign(
    const CampaignSpec& spec, const coupling::CouplingDatabase* db = nullptr);

/// Replay journaled results into the plan: every planned task whose key
/// appears in `completed` is moved out of `plan.tasks` and into
/// `plan.cached` with its journaled value, so the executor never re-measures
/// it.  Returns the number of tasks replayed (also accumulated into
/// `plan.journal_hits`).
std::size_t apply_journal(CampaignPlan& plan,
                          const std::map<TaskKey, double>& completed);

}  // namespace kcoup::campaign
