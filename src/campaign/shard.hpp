#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/executor.hpp"
#include "campaign/task_key.hpp"

namespace kcoup::campaign {

/// Platform-stable 64-bit hash of every TaskKey field: FNV-1a over a
/// canonical byte serialization (strings with an 0xff terminator, integers
/// little-endian fixed-width), finalized through splitmix64.  Depends on
/// nothing but the key's values — not plan order, not pointer identity, not
/// the host's endianness or std::hash — so shard membership is identical
/// across runs, machines and library versions.
[[nodiscard]] std::uint64_t task_key_hash(const TaskKey& key);

/// Which of `shards` partitions owns `key`: task_key_hash(key) % shards.
/// shards == 0 is treated as 1 (everything in shard 0).
[[nodiscard]] std::size_t shard_of(const TaskKey& key, std::size_t shards);

/// Canonical layout of a shard campaign's journal directory.
/// `shard-NNN.jsonl` per shard, `coordinator.jsonl` for tasks a stealing
/// merge executed itself, `shards` holding the shard count, and (written by
/// the CLI) `campaign.spec` with the sweep definition.
[[nodiscard]] std::string shard_journal_path(const std::string& dir,
                                             std::size_t shard);
[[nodiscard]] std::string coordinator_journal_path(const std::string& dir);
[[nodiscard]] std::string shard_count_path(const std::string& dir);

/// Write `shards` into the directory's `shards` manifest (atomically, with
/// a per-shard temp name so concurrent shard launches cannot tear it), or
/// throw std::runtime_error if a manifest with a *different* count already
/// exists — the guard against mismatched `--shards` across a launch.
void write_shard_count(const std::string& dir, std::size_t shards,
                       std::size_t shard_id);

/// Read the `shards` manifest; 0 when absent.
[[nodiscard]] std::size_t read_shard_count(const std::string& dir);

/// How one shard process runs: which partition it owns, where the journal
/// directory lives, and whether it turns into a work stealer after
/// finishing its own partition.
struct ShardOptions {
  std::size_t shards = 1;   ///< total partitions; must be >= 1
  std::size_t shard_id = 0; ///< this process's partition, in [0, shards)
  std::string journal_dir;  ///< shared directory for all shard journals
  /// After completing its own partition, scan the other shards' journals
  /// and re-execute tasks their owners have not journaled yet.
  bool steal = false;
  /// Only steal from a shard whose journal has not grown for at least this
  /// many seconds (or does not exist).  0 steals from any incomplete shard
  /// immediately — useful for tests and for backfilling dead shards.
  double steal_after_s = 0.0;
};

/// Watermark view of one shard's journal: how far it has progressed and how
/// stale it is.  `age_s` is the time since the journal file last grew —
/// infinite when the file does not exist.
struct ShardProgress {
  std::size_t shard = 0;
  bool exists = false;
  std::size_t completed = 0;
  std::size_t failed = 0;
  std::size_t malformed = 0;
  bool torn_tail = false;
  double age_s = 0.0;
};

/// Read the watermark of shard `shard`'s journal under `dir`.
[[nodiscard]] ShardProgress shard_progress(const std::string& dir,
                                           std::size_t shard);

/// What one shard process did.  `failures` covers only the tasks this
/// process executed (own partition plus stolen work); other shards' results
/// live in their journals until merge_shards() joins them.
struct ShardResult {
  std::size_t shard_id = 0;
  std::size_t shards = 1;
  std::size_t tasks_assigned = 0;  ///< plan tasks owned by this shard
  std::size_t tasks_resumed = 0;   ///< already complete in the own journal
  std::size_t tasks_executed = 0;  ///< executed this run (own partition)
  std::size_t tasks_stolen = 0;    ///< executed on behalf of stragglers
  std::size_t steal_scans = 0;     ///< straggler shards scanned
  std::vector<TaskFailure> failures;  ///< key order
  CampaignMetrics metrics;

  [[nodiscard]] bool complete() const { return failures.empty(); }
};

/// Execute one shard of a campaign: plan the full sweep exactly as the
/// serial path would, keep only the tasks whose shard_of() is
/// `options.shard_id`, resume any of them already completed in this shard's
/// journal, and execute the rest with `workers` threads, appending every
/// finished task (successes and failures) to
/// `shard_journal_path(options.journal_dir, options.shard_id)`.
///
/// Because every task is an independent measurement starting from a reset
/// application, the values a shard journals are bit-identical to what the
/// serial campaign would have measured for the same keys — merge_shards()
/// reassembles them into a database byte-identical to the serial run.
///
/// With `options.steal` set, a shard that finishes its partition scans the
/// other shards' journal watermarks; any shard that is incomplete and stale
/// (age >= steal_after_s) has its unjournaled tasks re-executed here,
/// appended to *this* shard's journal.  Duplicates are resolved
/// first-writer-wins at merge (the owner's record preferred), so stealing
/// can never change result bits — it only fills holes stragglers left.
///
/// Publishes "campaign.shard.*" counters into `registry` alongside the
/// usual "campaign.*" execution metrics, and emits "shard_run" /
/// "steal_scan" spans when tracing is enabled.  Throws std::invalid_argument
/// for an out-of-range shard_id, an empty journal_dir, or a spec that
/// already carries a journal_path (the shard owns its journaling).
[[nodiscard]] ShardResult run_shard(const CampaignSpec& spec,
                                    const ShardOptions& options,
                                    std::size_t workers = 0,
                                    obs::MetricsRegistry* registry = nullptr);

}  // namespace kcoup::campaign
