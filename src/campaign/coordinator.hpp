#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/executor.hpp"
#include "campaign/shard.hpp"
#include "campaign/task_key.hpp"
#include "coupling/database.hpp"

namespace kcoup::campaign {

/// How the coordinator joins a shard campaign's journals.
struct MergeOptions {
  std::string journal_dir;  ///< the directory the shards journaled into
  /// Total shards; 0 reads the directory's `shards` manifest, and a value
  /// that contradicts an existing manifest is an error (wrong partitioning
  /// would silently drop every task hashed to the missing shards).
  std::size_t shards = 0;
  /// Execute planned tasks no journal covers (dead shard, torn tail)
  /// in-process instead of reporting them missing.  Stolen executions are
  /// journaled to `coordinator.jsonl` in the same directory, so a killed
  /// merge resumes exactly like a killed shard.
  bool steal = false;
  std::size_t workers = 0;  ///< worker threads for coordinator stealing
};

/// Per-journal accounting the merge reports: what each shard contributed and
/// what state its journal was in.
struct ShardJournalStats {
  std::size_t shard = 0;
  bool exists = false;
  std::size_t completed = 0;        ///< distinct successful keys
  std::size_t failed = 0;           ///< distinct failure-record keys
  std::size_t malformed = 0;        ///< mid-stream unparseable lines
  bool torn_tail = false;           ///< crash-truncated final record
  std::size_t owned_completed = 0;  ///< successes for its own partition
  std::size_t stolen_completed = 0; ///< successes for other shards' keys
};

/// The joined campaign: one CampaignResult bit-identical to what the serial
/// executor would have produced from the same per-task values, plus the
/// merge bookkeeping.
struct MergeResult {
  CampaignResult result;
  std::size_t shards = 0;
  std::vector<ShardJournalStats> shard_stats;  ///< one per shard, in order
  std::size_t tasks_planned = 0;   ///< deduplicated plan size
  std::size_t tasks_merged = 0;    ///< plan keys resolved from journals
  std::size_t tasks_stolen = 0;    ///< plan keys the merge executed itself
  std::size_t duplicates = 0;      ///< redundant success records dropped
  std::size_t torn_tails = 0;      ///< journals ending in a truncated record
  /// Planned keys with no success *and* no failure record anywhere: tasks
  /// nobody ever finished (dead shard, lost journal).  Distinct from
  /// result.failures, which are tasks that ran and exhausted retries.
  std::vector<TaskKey> missing;

  /// Every planned task resolved to a measured value.
  [[nodiscard]] bool complete() const {
    return missing.empty() && result.failures.empty();
  }
};

/// Join an N-shard campaign's journals back into one campaign result.
///
/// The spec must be the same one the shards ran (the CLI persists it as
/// `campaign.spec` in the journal directory for exactly this reason): the
/// merge re-plans it, resolves every planned task from the journals, and
/// assembles with the serial path's exact accumulation order — so when every
/// task has a journaled value the result, and any database recorded from it
/// via record_campaign(), is byte-identical to a single-process run.
///
/// Resolution is first-writer-wins with owner preference: a key's value
/// comes from its shard_of() owner's journal when present, else from the
/// first other journal (shard order, then `coordinator.jsonl`) holding it.
/// Redundant records — stealing overlap — are counted in `duplicates` and
/// dropped; since every record of a key holds the same deterministic
/// measurement this never changes bits.
///
/// Failure records aggregate the same way: a planned key with no success
/// anywhere but a failure record becomes a TaskFailure (owner's record
/// preferred), so the merged failure table matches what a single process
/// running the same tasks would have reported.  Keys with neither become
/// `missing` — or, with MergeOptions::steal, are executed here.
///
/// Publishes "campaign.merge.*" counters into `registry` and emits
/// "merge" / "merge_steal" spans.  Throws std::invalid_argument when the
/// shard count is unknown (no option, no manifest) or contradicts the
/// manifest, and std::runtime_error when no journal exists at all.
[[nodiscard]] MergeResult merge_shards(const CampaignSpec& spec,
                                       const MergeOptions& options,
                                       obs::MetricsRegistry* registry = nullptr);

}  // namespace kcoup::campaign
