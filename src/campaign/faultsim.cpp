#include "campaign/faultsim.hpp"

#include <algorithm>

#include "campaign/planner.hpp"

namespace kcoup::campaign {

namespace {

// Salts keep the three per-kind selections statistically independent: a key
// faulted for construction is no more or less likely to be noise-spiked.
constexpr std::uint64_t kConstructSalt = 0x636f6e7374727563ULL;  // "construc"
constexpr std::uint64_t kMeasureSalt = 0x6d65617375726521ULL;    // "measure!"
constexpr std::uint64_t kNoiseSalt = 0x6e6f697365212121ULL;      // "noise!!!"

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t fnv1a(std::uint64_t h, const std::string& s) {
  h = fnv1a(h, s.data(), s.size());
  const unsigned char sep = 0xff;  // unambiguous field separator
  return fnv1a(h, &sep, 1);
}

/// Stable 64-bit hash of every TaskKey field.  Must not depend on pointer
/// values or iteration order — it is the sole source of seeded selection.
std::uint64_t hash_key(const TaskKey& key) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  h = fnv1a(h, key.application);
  h = fnv1a(h, key.config);
  const std::uint64_t fields[3] = {
      static_cast<std::uint64_t>(key.ranks),
      static_cast<std::uint64_t>(key.kind),
      key.index ^ (key.length << 32)};
  h = fnv1a(h, fields, sizeof(fields));
  return h;
}

}  // namespace

bool FaultSimulator::rolls_under(const TaskKey& key, std::uint64_t salt,
                                 double rate) const {
  if (rate <= 0.0) return false;
  if (rate >= 1.0) return true;
  const std::uint64_t h =
      splitmix64(hash_key(key) ^ splitmix64(plan_.seed ^ salt));
  // Top 53 bits -> uniform double in [0, 1).
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < rate;
}

bool FaultSimulator::has_injection(const TaskKey& key, FaultKind kind) const {
  return std::any_of(plan_.injections.begin(), plan_.injections.end(),
                     [&](const FaultInjection& f) {
                       return f.kind == kind && f.key == key;
                     });
}

bool FaultSimulator::construct_throws(const TaskKey& key) const {
  return has_injection(key, FaultKind::kConstructThrow) ||
         rolls_under(key, kConstructSalt, plan_.construct_throw_rate);
}

bool FaultSimulator::measure_throws(const TaskKey& key) const {
  return has_injection(key, FaultKind::kMeasureThrow) ||
         rolls_under(key, kMeasureSalt, plan_.measure_throw_rate);
}

std::optional<double> FaultSimulator::noise_spike(const TaskKey& key) const {
  if (has_injection(key, FaultKind::kNoiseSpike) ||
      rolls_under(key, kNoiseSalt, plan_.noise_spike_rate)) {
    return plan_.noise_factor;
  }
  return std::nullopt;
}

void FaultSimulator::maybe_abort() {
  if (plan_.abort_after == 0) return;
  if (started_.fetch_add(1, std::memory_order_relaxed) >= plan_.abort_after) {
    throw CampaignAborted(plan_.abort_after);
  }
}

std::vector<TaskKey> FaultSimulator::faulted_keys(
    const std::vector<MeasurementTask>& tasks) const {
  std::vector<TaskKey> keys;
  for (const MeasurementTask& t : tasks) {
    if (will_fail(t.key)) keys.push_back(t.key);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace kcoup::campaign
