#include "campaign/journal.hpp"

#include <istream>
#include <stdexcept>

#include "support/num_format.hpp"

namespace kcoup::campaign {

namespace {

std::string escape_json(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

/// Locates `"name":` and returns the offset just past the colon, or npos.
std::size_t field_offset(const std::string& line, const char* name) {
  const std::string needle = std::string("\"") + name + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return std::string::npos;
  return at + needle.size();
}

std::optional<std::string> string_field(const std::string& line,
                                        const char* name) {
  std::size_t at = field_offset(line, name);
  if (at == std::string::npos || at >= line.size() || line[at] != '"') {
    return std::nullopt;
  }
  std::string out;
  for (++at; at < line.size(); ++at) {
    if (line[at] == '\\') {
      if (++at >= line.size()) return std::nullopt;
      out += line[at];
    } else if (line[at] == '"') {
      return out;
    } else {
      out += line[at];
    }
  }
  return std::nullopt;  // unterminated string: truncated line
}

std::optional<double> number_field(const std::string& line, const char* name) {
  const std::size_t at = field_offset(line, name);
  if (at == std::string::npos) return std::nullopt;
  const std::size_t end = line.find_first_of(",}", at);
  if (end == std::string::npos) return std::nullopt;  // truncated line
  return support::parse_double(line.substr(at, end - at));
}

}  // namespace

std::string journal_line(const JournalEntry& entry) {
  std::string out = "{\"application\":\"";
  out += escape_json(entry.key.application);
  out += "\",\"config\":\"";
  out += escape_json(entry.key.config);
  out += "\",\"ranks\":" + std::to_string(entry.key.ranks);
  out += ",\"kind\":\"";
  out += to_string(entry.key.kind);
  out += "\",\"index\":" + std::to_string(entry.key.index);
  out += ",\"length\":" + std::to_string(entry.key.length);
  out += ",\"value\":" + support::format_double(entry.value);
  out += ",\"attempts\":" + std::to_string(entry.attempts);
  if (!entry.error.empty()) {
    // Only failures carry the field, so success lines are byte-identical to
    // the pre-failure-record format and old journals parse unchanged.
    out += ",\"error\":\"" + escape_json(entry.error) + "\"";
  }
  out += "}";
  return out;
}

std::optional<JournalEntry> parse_journal_line(const std::string& line) {
  if (line.empty() || line.front() != '{' || line.back() != '}') {
    return std::nullopt;
  }
  const auto application = string_field(line, "application");
  const auto config = string_field(line, "config");
  const auto kind_name = string_field(line, "kind");
  const auto ranks = number_field(line, "ranks");
  const auto index = number_field(line, "index");
  const auto length = number_field(line, "length");
  const auto value = number_field(line, "value");
  const auto attempts = number_field(line, "attempts");
  if (!application || !config || !kind_name || !ranks || !index || !length ||
      !value || !attempts) {
    return std::nullopt;
  }
  const auto kind = parse_task_kind(*kind_name);
  if (!kind) return std::nullopt;
  JournalEntry entry;
  entry.key.application = *application;
  entry.key.config = *config;
  entry.key.ranks = static_cast<int>(*ranks);
  entry.key.kind = *kind;
  entry.key.index = static_cast<std::size_t>(*index);
  entry.key.length = static_cast<std::size_t>(*length);
  entry.value = *value;
  entry.attempts = static_cast<int>(*attempts);
  if (const auto error = string_field(line, "error")) entry.error = *error;
  return entry;
}

std::map<TaskKey, double> load_journal(std::istream& in) {
  std::map<TaskKey, double> completed;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (const auto entry = parse_journal_line(line)) {
      if (entry->ok()) completed[entry->key] = entry->value;
    }
  }
  return completed;
}

JournalLoad load_journal_entries(std::istream& in) {
  JournalLoad load;
  bool last_parsed = true;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    ++load.lines;
    const auto entry = parse_journal_line(line);
    if (!entry.has_value()) {
      // Provisionally the torn tail; reclassified as mid-stream garbage if
      // any later line follows it.
      if (!last_parsed) ++load.malformed;
      last_parsed = false;
      continue;
    }
    if (!last_parsed) {
      ++load.malformed;  // the earlier bad line was not the tail after all
      last_parsed = true;
    }
    if (entry->ok()) {
      load.completed.insert_or_assign(entry->key, *entry);
    } else {
      load.failed.insert_or_assign(entry->key, *entry);
    }
  }
  load.torn_tail = !last_parsed;
  return load;
}

JournalLoad load_journal_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return JournalLoad{};
  JournalLoad load = load_journal_entries(in);
  load.exists = true;
  return load;
}

TaskJournal::TaskJournal(const std::string& path)
    : out_(path, std::ios::app) {
  if (!out_) {
    throw std::runtime_error("TaskJournal: cannot open " + path);
  }
}

void TaskJournal::append(const JournalEntry& entry) {
  std::lock_guard<std::mutex> lock(mutex_);
  out_ << journal_line(entry) << '\n';
  out_.flush();  // write-then-flush: a crash loses at most in-flight tasks
}

}  // namespace kcoup::campaign
