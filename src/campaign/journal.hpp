#pragma once

#include <fstream>
#include <iosfwd>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "campaign/task_key.hpp"

namespace kcoup::campaign {

/// One completed measurement as persisted to the campaign journal.
struct JournalEntry {
  TaskKey key;
  double value = 0.0;
  int attempts = 1;
};

/// One self-contained JSON object (no trailing newline).  Doubles are
/// written with 17 significant digits in the C locale so a resumed campaign
/// reads back the bit-identical value.
[[nodiscard]] std::string journal_line(const JournalEntry& entry);

/// Parses one journal line; nullopt on malformed input (e.g. a line
/// truncated by a crash mid-write).
[[nodiscard]] std::optional<JournalEntry> parse_journal_line(
    const std::string& line);

/// Reads a whole journal stream into completed (key -> value) pairs.
/// Malformed lines are skipped, not fatal: a killed campaign can only
/// corrupt the tail of the file, and losing that one entry just means one
/// task is re-measured on resume.  Duplicate keys keep the last value.
[[nodiscard]] std::map<TaskKey, double> load_journal(std::istream& in);

/// Append-only, crash-safe task journal: each completed task is written as
/// one JSONL line and flushed before the executor moves on, so a killed
/// campaign loses at most the in-flight tasks.  Thread-safe.
class TaskJournal {
 public:
  /// Opens `path` for append (creating it if missing); throws
  /// std::runtime_error when the file cannot be opened.
  explicit TaskJournal(const std::string& path);

  void append(const JournalEntry& entry);

 private:
  std::mutex mutex_;
  std::ofstream out_;
};

}  // namespace kcoup::campaign
