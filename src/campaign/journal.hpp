#pragma once

#include <fstream>
#include <iosfwd>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "campaign/task_key.hpp"

namespace kcoup::campaign {

/// One finished task as persisted to the campaign journal.  A success
/// carries the measured value; a failure (retry budget exhausted) carries
/// the final error message instead, so a merge coordinator can account for
/// holes without re-running the shard.
struct JournalEntry {
  TaskKey key;
  double value = 0.0;
  int attempts = 1;
  std::string error;  ///< empty == success; otherwise the failure message

  [[nodiscard]] bool ok() const { return error.empty(); }
};

/// One self-contained JSON object (no trailing newline).  Doubles are
/// written with 17 significant digits in the C locale so a resumed campaign
/// reads back the bit-identical value.
[[nodiscard]] std::string journal_line(const JournalEntry& entry);

/// Parses one journal line; nullopt on malformed input (e.g. a line
/// truncated by a crash mid-write).
[[nodiscard]] std::optional<JournalEntry> parse_journal_line(
    const std::string& line);

/// Reads a whole journal stream into completed (key -> value) pairs.
/// Malformed lines are skipped, not fatal: a killed campaign can only
/// corrupt the tail of the file, and losing that one entry just means one
/// task is re-measured on resume.  Failure records are skipped too — a
/// resumed campaign retries failed tasks, exactly as if they had never been
/// journaled.  Duplicate keys keep the last value.
[[nodiscard]] std::map<TaskKey, double> load_journal(std::istream& in);

/// Everything a journal stream holds, with the bookkeeping a merge
/// coordinator reports: per-key success and failure records, plus how many
/// lines could not be parsed.  A torn final record — the partial line a
/// killed shard leaves behind — is expected, counted separately from
/// mid-stream garbage, and never fatal.
struct JournalLoad {
  std::map<TaskKey, JournalEntry> completed;  ///< last success per key
  std::map<TaskKey, JournalEntry> failed;     ///< last failure per key
  std::size_t lines = 0;      ///< non-empty lines seen
  std::size_t malformed = 0;  ///< unparseable lines before the final one
  bool torn_tail = false;     ///< the final line failed to parse
  bool exists = false;        ///< load_journal_file: the file was readable
};

/// Reads every record with full accounting (see JournalLoad).
[[nodiscard]] JournalLoad load_journal_entries(std::istream& in);

/// load_journal_entries over a file; a missing/unreadable file is an empty
/// load with `exists == false`, not an error (the shard may not have
/// started yet).
[[nodiscard]] JournalLoad load_journal_file(const std::string& path);

/// Append-only, crash-safe task journal: each completed task is written as
/// one JSONL line and flushed before the executor moves on, so a killed
/// campaign loses at most the in-flight tasks.  Thread-safe.
class TaskJournal {
 public:
  /// Opens `path` for append (creating it if missing); throws
  /// std::runtime_error when the file cannot be opened.
  explicit TaskJournal(const std::string& path);

  void append(const JournalEntry& entry);

 private:
  std::mutex mutex_;
  std::ofstream out_;
};

}  // namespace kcoup::campaign
