#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "campaign/task_key.hpp"

namespace kcoup::campaign {

struct MeasurementTask;  // planner.hpp

/// What a fault injection does to its target task.
enum class FaultKind {
  kConstructThrow,  ///< acquiring the application instance throws
  kMeasureThrow,    ///< the measurement itself throws
  kNoiseSpike,      ///< one outlier sample is folded into the statistics
};

[[nodiscard]] constexpr const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kConstructThrow: return "construct-throw";
    case FaultKind::kMeasureThrow: return "measure-throw";
    case FaultKind::kNoiseSpike: return "noise-spike";
  }
  return "?";
}

/// One explicitly targeted fault.
struct FaultInjection {
  TaskKey key;
  FaultKind kind = FaultKind::kMeasureThrow;
};

/// A deterministic fault schedule for a campaign.  Seeded selection is a
/// pure function of (seed, TaskKey): each rate independently marks the
/// tasks whose per-key hash falls below it, so the same seed faults the
/// same cells regardless of worker count, pooling, or submission order —
/// every failure is reproducible under `kcoup campaign --fault-seed`.
/// Explicit `injections` target planner-chosen keys exactly.
struct FaultPlan {
  std::uint64_t seed = 0;
  double construct_throw_rate = 0.0;  ///< fraction of tasks whose acquisition throws
  double measure_throw_rate = 0.0;    ///< fraction of tasks whose measurement throws
  double noise_spike_rate = 0.0;      ///< fraction of tasks given an outlier sample
  double noise_factor = 8.0;          ///< spike magnitude, x the current sample mean
  /// When > 0, the campaign aborts (CampaignAborted) once this many tasks
  /// have started — a deterministic stand-in for a mid-sweep crash, used to
  /// exercise journal/resume.
  std::size_t abort_after = 0;
  std::vector<FaultInjection> injections;

  [[nodiscard]] bool enabled() const {
    return construct_throw_rate > 0.0 || measure_throw_rate > 0.0 ||
           noise_spike_rate > 0.0 || abort_after > 0 || !injections.empty();
  }
};

/// Thrown by an injected construction/measurement fault.  Distinguishable
/// from organic std::runtime_errors so tests can assert provenance.
class FaultInjected : public std::runtime_error {
 public:
  FaultInjected(FaultKind kind, const TaskKey& key)
      : std::runtime_error(std::string("injected ") + to_string(kind) +
                           " fault at " + to_string(key)) {}
};

/// Thrown when FaultPlan::abort_after trips.  The executor does NOT isolate
/// this — it propagates and kills the campaign, like a real crash, leaving
/// only the journal behind.
class CampaignAborted : public std::runtime_error {
 public:
  explicit CampaignAborted(std::size_t after)
      : std::runtime_error("injected campaign abort after " +
                           std::to_string(after) + " tasks") {}
};

/// Evaluates a FaultPlan.  All per-key decisions are const and
/// deterministic; only the abort counter is mutable state.
class FaultSimulator {
 public:
  explicit FaultSimulator(FaultPlan plan) : plan_(std::move(plan)) {}

  [[nodiscard]] bool construct_throws(const TaskKey& key) const;
  [[nodiscard]] bool measure_throws(const TaskKey& key) const;
  /// The spike factor to apply to this task's samples, if any.
  [[nodiscard]] std::optional<double> noise_spike(const TaskKey& key) const;
  /// True when either throw kind targets the key (the task will exhaust its
  /// retry budget and fail).
  [[nodiscard]] bool will_fail(const TaskKey& key) const {
    return construct_throws(key) || measure_throws(key);
  }

  /// Throws CampaignAborted once `abort_after` tasks have started.  Called
  /// by the executor at the start of every task.
  void maybe_abort();

  /// The subset of `tasks` this plan dooms (construct or measure throw), in
  /// key order — what a fault-matrix test should expect as failures.
  [[nodiscard]] std::vector<TaskKey> faulted_keys(
      const std::vector<MeasurementTask>& tasks) const;

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

 private:
  [[nodiscard]] bool rolls_under(const TaskKey& key, std::uint64_t salt,
                                 double rate) const;
  [[nodiscard]] bool has_injection(const TaskKey& key, FaultKind kind) const;

  FaultPlan plan_;
  std::atomic<std::size_t> started_{0};
};

}  // namespace kcoup::campaign
