#include "campaign/planner.hpp"

#include <set>
#include <stdexcept>

namespace kcoup::campaign {

namespace {

TaskKey cell_key(const CampaignStudy& s, TaskKind kind, std::size_t index,
                 std::size_t length) {
  return TaskKey{s.application, s.config, s.ranks, kind, index, length};
}

/// Estimated execution cost in kernel invocations, mirroring what the
/// MeasurementHarness actually runs for each task kind.
double task_cost(const TaskKey& key, const StudyShape& shape,
                 const coupling::MeasurementOptions& m) {
  const double full_run = static_cast<double>(shape.prologue_size) +
                          static_cast<double>(shape.iterations) *
                              static_cast<double>(shape.loop_size) +
                          static_cast<double>(shape.epilogue_size);
  switch (key.kind) {
    case TaskKind::kChain:
      return static_cast<double>(key.length) *
             static_cast<double>(m.repetitions + m.warmup);
    case TaskKind::kActual:
      return full_run;
    case TaskKind::kPrologue:
      return static_cast<double>(key.index + 1) *
             static_cast<double>(m.repetitions);
    case TaskKind::kEpilogue:
      return static_cast<double>(m.epilogue_repetitions) *
             (full_run + static_cast<double>(key.index + 1));
  }
  return 1.0;
}

}  // namespace

CampaignPlan plan_campaign(const CampaignSpec& spec,
                           const coupling::CouplingDatabase* db) {
  CampaignPlan plan;
  plan.shapes.reserve(spec.studies.size());
  for (const CampaignStudy& s : spec.studies) {
    if (!s.factory) {
      throw std::invalid_argument("plan_campaign: study '" + s.application +
                                  "' has no factory");
    }
    const AppHandle handle = s.factory();
    const coupling::LoopApplication& app = handle.app();
    StudyShape shape;
    shape.loop_size = app.loop_size();
    shape.prologue_size = app.prologue.size();
    shape.epilogue_size = app.epilogue.size();
    shape.iterations = app.iterations;
    for (const coupling::Kernel* k : app.loop) {
      shape.kernel_names.push_back(k->name());
    }
    if (shape.loop_size == 0) {
      throw std::invalid_argument("plan_campaign: study '" + s.application +
                                  "' has an empty main loop");
    }
    for (std::size_t q : spec.chain_lengths) {
      if (q == 0 || q > shape.loop_size) {
        throw std::invalid_argument(
            "plan_campaign: chain length " + std::to_string(q) +
            " out of [1, " + std::to_string(shape.loop_size) + "] for study '" +
            s.application + "'");
      }
    }
    plan.shapes.push_back(std::move(shape));
  }

  // The naive baseline: one independent serial study per (cell, chain
  // length) pair, each re-measuring the isolated kernels, the actual run and
  // the prologue/epilogue.  With no chain lengths a study still performs its
  // non-chain measurements once.
  for (std::size_t s = 0; s < spec.studies.size(); ++s) {
    const StudyShape& shape = plan.shapes[s];
    const std::size_t base =
        shape.loop_size + 1 + shape.prologue_size + shape.epilogue_size;
    if (spec.chain_lengths.empty()) {
      plan.tasks_requested += base;
    } else {
      plan.tasks_requested +=
          spec.chain_lengths.size() * (base + shape.loop_size);
    }
  }

  std::set<TaskKey> planned;
  auto add = [&](std::size_t study, TaskKey key) {
    if (planned.insert(key).second) {
      const double cost = task_cost(key, plan.shapes[study], spec.measurement);
      plan.tasks.push_back(MeasurementTask{std::move(key), study, cost});
    }
  };

  for (std::size_t s = 0; s < spec.studies.size(); ++s) {
    const CampaignStudy& cell = spec.studies[s];
    const StudyShape& shape = plan.shapes[s];
    add(s, cell_key(cell, TaskKind::kActual, 0, 0));
    for (std::size_t i = 0; i < shape.prologue_size; ++i) {
      add(s, cell_key(cell, TaskKind::kPrologue, i, 0));
    }
    for (std::size_t i = 0; i < shape.epilogue_size; ++i) {
      add(s, cell_key(cell, TaskKind::kEpilogue, i, 0));
    }
    for (std::size_t k = 0; k < shape.loop_size; ++k) {
      add(s, cell_key(cell, TaskKind::kChain, k, 1));
    }
    for (std::size_t q : spec.chain_lengths) {
      for (std::size_t start = 0; start < shape.loop_size; ++start) {
        add(s, cell_key(cell, TaskKind::kChain, start, q));
      }
    }
  }

  // Chains the database already holds become cache entries, not tasks.  The
  // cached value supplies P_S only; isolated sums are always assembled from
  // this campaign's fresh isolated means, exactly like measure_chains().
  if (db != nullptr) {
    std::vector<MeasurementTask> remaining;
    remaining.reserve(plan.tasks.size());
    for (MeasurementTask& t : plan.tasks) {
      if (t.key.kind == TaskKind::kChain) {
        const auto hit = db->find(coupling::CouplingKey{
            t.key.application, t.key.config, t.key.ranks, t.key.length,
            t.key.index});
        if (hit.has_value()) {
          plan.cached.emplace(t.key, hit->chain_time);
          ++plan.cache_hits;
          continue;
        }
      }
      remaining.push_back(std::move(t));
    }
    plan.tasks = std::move(remaining);
  }

  plan.tasks_deduplicated =
      plan.tasks_requested - plan.tasks.size() - plan.cache_hits;
  return plan;
}

std::size_t apply_journal(CampaignPlan& plan,
                          const std::map<TaskKey, double>& completed) {
  if (completed.empty()) return 0;
  std::vector<MeasurementTask> remaining;
  remaining.reserve(plan.tasks.size());
  std::size_t hits = 0;
  for (MeasurementTask& t : plan.tasks) {
    const auto it = completed.find(t.key);
    if (it != completed.end()) {
      // insert_or_assign: a journaled value wins over a database cache hit —
      // it is this campaign's own prior measurement of exactly this key.
      plan.cached.insert_or_assign(t.key, it->second);
      ++hits;
      continue;
    }
    remaining.push_back(std::move(t));
  }
  plan.tasks = std::move(remaining);
  plan.journal_hits += hits;
  return hits;
}

}  // namespace kcoup::campaign
