#include "campaign/coordinator.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <stdexcept>

#include "campaign/journal.hpp"
#include "campaign/planner.hpp"
#include "obs/trace.hpp"

namespace kcoup::campaign {

namespace {

/// Fold one journal's success records into the value store.  `prefer` keys
/// overwrite an existing value (owner preference, applied in pass 1);
/// non-preferred records only fill gaps and otherwise count as duplicates.
void fold_journal(const JournalLoad& load,
                  const std::set<TaskKey>& planned,
                  bool owner_pass, std::size_t shard, std::size_t shards,
                  std::map<TaskKey, double>& values,
                  std::size_t& duplicates) {
  for (const auto& [key, entry] : load.completed) {
    if (planned.count(key) == 0) continue;  // stale journal from an old spec
    const bool owned = shard_of(key, shards) == shard;
    if (owner_pass != owned) continue;
    if (values.emplace(key, entry.value).second) continue;
    ++duplicates;
  }
}

}  // namespace

MergeResult merge_shards(const CampaignSpec& spec, const MergeOptions& options,
                         obs::MetricsRegistry* registry) {
  if (options.journal_dir.empty()) {
    throw std::invalid_argument("merge_shards: journal_dir must be set");
  }
  const std::size_t manifest = read_shard_count(options.journal_dir);
  std::size_t shards = options.shards;
  if (shards == 0) {
    shards = manifest;
  } else if (manifest != 0 && manifest != shards) {
    throw std::invalid_argument(
        "merge_shards: --shards " + std::to_string(shards) +
        " contradicts the journal directory's manifest (" +
        std::to_string(manifest) + ")");
  }
  if (shards == 0) {
    throw std::invalid_argument(
        "merge_shards: shard count unknown — no shards option and no " +
        shard_count_path(options.journal_dir) + " manifest");
  }

  obs::MetricsRegistry local_registry;
  obs::MetricsRegistry& reg = registry != nullptr ? *registry : local_registry;
  obs::ScopedSpan span("merge", "campaign");
  if (span.active()) {
    span.annotate("shards", static_cast<std::uint64_t>(shards));
  }

  CampaignPlan plan;
  {
    obs::ScopedSpan plan_span("plan", "campaign");
    plan = plan_campaign(spec);
  }
  std::set<TaskKey> planned;
  for (const MeasurementTask& t : plan.tasks) planned.insert(t.key);

  MergeResult merged;
  merged.shards = shards;
  merged.tasks_planned = plan.tasks.size();

  // Load every journal once.  A missing shard journal is not an error —
  // that shard may have died before its first task — but *no* journal at
  // all means the directory is wrong, which should not read as "everything
  // is missing, exit happily with steal".
  std::vector<JournalLoad> loads(shards);
  bool any_journal = false;
  for (std::size_t s = 0; s < shards; ++s) {
    loads[s] = load_journal_file(shard_journal_path(options.journal_dir, s));
    any_journal = any_journal || loads[s].exists;
  }
  const JournalLoad coordinator =
      load_journal_file(coordinator_journal_path(options.journal_dir));
  any_journal = any_journal || coordinator.exists;
  if (!any_journal) {
    throw std::runtime_error("merge_shards: no shard journals under " +
                             options.journal_dir);
  }

  // First-writer-wins with owner preference.  Pass 1 takes each shard's own
  // partition from its own journal; pass 2 lets stolen records (shard
  // order, then the coordinator journal) fill whatever holes remain.
  std::map<TaskKey, double> values;
  for (std::size_t s = 0; s < shards; ++s) {
    fold_journal(loads[s], planned, /*owner_pass=*/true, s, shards, values,
                 merged.duplicates);
  }
  for (std::size_t s = 0; s < shards; ++s) {
    fold_journal(loads[s], planned, /*owner_pass=*/false, s, shards, values,
                 merged.duplicates);
  }
  for (const auto& [key, entry] : coordinator.completed) {
    if (planned.count(key) == 0) continue;
    if (!values.emplace(key, entry.value).second) ++merged.duplicates;
  }
  merged.tasks_merged = values.size();

  for (std::size_t s = 0; s < shards; ++s) {
    ShardJournalStats stats;
    stats.shard = s;
    stats.exists = loads[s].exists;
    stats.completed = loads[s].completed.size();
    stats.failed = loads[s].failed.size();
    stats.malformed = loads[s].malformed;
    stats.torn_tail = loads[s].torn_tail;
    if (stats.torn_tail) ++merged.torn_tails;
    for (const auto& [key, entry] : loads[s].completed) {
      if (shard_of(key, shards) == s) {
        ++stats.owned_completed;
      } else {
        ++stats.stolen_completed;
      }
    }
    merged.shard_stats.push_back(stats);
  }
  if (coordinator.torn_tail) ++merged.torn_tails;

  // Split the unresolved plan keys: a journaled failure record (owner's
  // preferred) makes the key a TaskFailure, exactly as the single-process
  // executor would have reported it; a key with no record at all is missing.
  std::vector<TaskFailure> failures;
  std::vector<MeasurementTask> unrecorded;
  for (const MeasurementTask& t : plan.tasks) {
    if (values.count(t.key) != 0) continue;
    const std::size_t owner = shard_of(t.key, shards);
    const JournalEntry* record = nullptr;
    if (const auto it = loads[owner].failed.find(t.key);
        it != loads[owner].failed.end()) {
      record = &it->second;
    } else {
      for (std::size_t s = 0; s < shards && record == nullptr; ++s) {
        if (const auto it2 = loads[s].failed.find(t.key);
            it2 != loads[s].failed.end()) {
          record = &it2->second;
        }
      }
      if (record == nullptr) {
        if (const auto it3 = coordinator.failed.find(t.key);
            it3 != coordinator.failed.end()) {
          record = &it3->second;
        }
      }
    }
    if (record != nullptr) {
      failures.push_back(TaskFailure{t.key, record->attempts, record->error});
    } else {
      unrecorded.push_back(t);
    }
  }

  if (options.steal && !unrecorded.empty()) {
    obs::ScopedSpan steal_span("merge_steal", "campaign");
    if (steal_span.active()) {
      steal_span.annotate("tasks",
                          static_cast<std::uint64_t>(unrecorded.size()));
    }
    TaskJournal journal(coordinator_journal_path(options.journal_dir));
    TaskSetResult run =
        execute_tasks(spec, unrecorded, options.workers, &reg, &journal);
    merged.tasks_stolen = unrecorded.size();
    for (const auto& [key, out] : run.outcomes) {
      if (out.ok) values.emplace(key, out.value);
    }
    failures.insert(failures.end(), run.failures.begin(), run.failures.end());
  } else {
    for (const MeasurementTask& t : unrecorded) {
      merged.missing.push_back(t.key);
    }
  }

  {
    obs::ScopedSpan assemble_span("assemble_phase", "campaign");
    merged.result = assemble_campaign(
        spec, plan, [&](const TaskKey& key) -> std::optional<double> {
          const auto it = values.find(key);
          if (it != values.end()) return it->second;
          return std::nullopt;
        });
  }
  merged.result.failures = std::move(failures);
  std::sort(merged.result.failures.begin(), merged.result.failures.end(),
            [](const TaskFailure& a, const TaskFailure& b) {
              return a.key < b.key;
            });

  auto count = [&reg](const char* name, std::size_t v) {
    reg.counter(name).add(static_cast<std::uint64_t>(v));
  };
  count("campaign.merge.shards", shards);
  count("campaign.merge.tasks_planned", merged.tasks_planned);
  count("campaign.merge.tasks_merged", merged.tasks_merged);
  count("campaign.merge.tasks_stolen", merged.tasks_stolen);
  count("campaign.merge.duplicates", merged.duplicates);
  count("campaign.merge.torn_tails", merged.torn_tails);
  count("campaign.merge.missing", merged.missing.size());
  count("campaign.merge.failed", merged.result.failures.size());
  count("campaign.studies", spec.studies.size());
  count("campaign.tasks_requested", plan.tasks_requested);
  count("campaign.tasks_planned", plan.tasks.size());
  count("campaign.tasks_deduplicated", plan.tasks_deduplicated);
  merged.result.metrics = CampaignMetrics::from_registry(reg);
  return merged;
}

}  // namespace kcoup::campaign
