#pragma once

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "campaign/faultsim.hpp"
#include "coupling/kernel.hpp"
#include "coupling/measurement.hpp"
#include "obs/metrics.hpp"
#include "report/table.hpp"

namespace kcoup::campaign {

/// Type-erased ownership of whatever backs a LoopApplication (a ModeledApp,
/// a timed-app bundle, a test fixture...).  The executor keeps one instance
/// per (worker, study cell) and resets it between tasks — or one fresh
/// instance per task with pooling disabled — so concurrent tasks never
/// share mutable machine state.
class AppHandle {
 public:
  AppHandle(std::shared_ptr<void> owner, const coupling::LoopApplication* app)
      : owner_(std::move(owner)), app_(app) {}

  [[nodiscard]] const coupling::LoopApplication& app() const { return *app_; }

 private:
  std::shared_ptr<void> owner_;
  const coupling::LoopApplication* app_;
};

/// Builds a fresh, independent application instance.  Must be safe to call
/// concurrently from multiple threads; every returned instance must be
/// deterministic under reset() for the serial and concurrent campaign paths
/// to agree.
using AppFactory = std::function<AppHandle()>;

/// Wrap an owner exposing `const LoopApplication& app()` (e.g. a
/// coupling::ModeledApp) into a handle that keeps it alive.
template <typename Owner>
[[nodiscard]] AppHandle own_app(std::unique_ptr<Owner> owner) {
  const coupling::LoopApplication* app = &owner->app();
  return AppHandle(std::shared_ptr<void>(std::move(owner)), app);
}

/// Non-owning view of an application the caller keeps alive.  Only safe for
/// serial execution (one worker): concurrent tasks would share its state.
[[nodiscard]] inline AppHandle borrow_app(const coupling::LoopApplication* app) {
  return AppHandle(nullptr, app);
}

/// Re-measure a task whose sample spread is too high.  Disabled by default
/// (infinite threshold), which keeps the executor bit-identical to the
/// serial measurement path.
struct RetryPolicy {
  /// Retry when stddev/mean of the repetition samples exceeds this.
  double max_relative_stddev = 1e300;
  /// Total measurement attempts per task (first try included).
  int max_attempts = 3;
};

/// One cell of the sweep: a labelled configuration plus the factory that
/// instantiates it.  The (application, config, ranks) triple is the identity
/// used for task deduplication and CouplingDatabase keys, so two cells with
/// the same triple must describe the same application.
struct CampaignStudy {
  std::string application;  ///< e.g. "BT"
  std::string config;       ///< e.g. "W"
  int ranks = 1;
  AppFactory factory;
};

/// A whole measurement campaign: every study is measured at every chain
/// length with the shared measurement options.
struct CampaignSpec {
  std::vector<CampaignStudy> studies;
  std::vector<std::size_t> chain_lengths;  ///< e.g. {2, 3, 4}
  coupling::MeasurementOptions measurement;
  RetryPolicy retry;
  /// Reuse one application instance per (application, config, ranks) cell
  /// per worker, reset between tasks, instead of constructing a fresh
  /// instance for every task.  Sound because every harness measurement
  /// begins with app.reset(); disable to force the fresh-instance-per-task
  /// behaviour (e.g. for factories whose instances are not reset-stable).
  bool pool_handles = true;
  /// Deterministic fault injection (off by default).  When enabled, the
  /// executor throws or perturbs the selected tasks; selection is a pure
  /// function of (faults.seed, TaskKey), so the same plan fails the same
  /// way at any worker count.
  FaultPlan faults;
  /// When non-empty, every completed task is appended to this JSONL journal
  /// (write-then-flush) and, on the next run, keys already present in the
  /// file are replayed into the plan as cache hits — a killed campaign
  /// resumes without re-measuring.
  std::string journal_path;
};

/// The key/value text form of a campaign sweep (`kcoup campaign --spec`).
/// Application names stay as strings; the caller resolves them to factories
/// (the CLI builds modeled NPB apps).  Format: one `key = value` per line,
/// `#` comments, lists comma-separated.  Keys: apps, classes, procs, chains,
/// repetitions, warmup, epilogue_repetitions, workers, pool, machine,
/// retry_rsd, retry_max.
struct CampaignTextSpec {
  std::vector<std::string> applications;        ///< e.g. {"bt", "sp"}
  std::vector<std::string> configs;             ///< e.g. {"W", "A"}
  std::vector<int> ranks;                       ///< e.g. {4, 9, 16}
  std::vector<std::size_t> chain_lengths = {2};
  coupling::MeasurementOptions measurement;
  RetryPolicy retry;
  std::size_t workers = 0;  ///< 0 = hardware concurrency
  bool pool_handles = true;
  std::string machine = "ibm-sp";
};

/// Parses the text form; throws std::runtime_error (naming the offending
/// key) on unknown keys, malformed values, or nonsensical values
/// (repetitions < 1, negative warmup, retry_max < 1, ...).
[[nodiscard]] CampaignTextSpec parse_campaign_text(std::istream& in);

/// Serializes a CampaignTextSpec back to the text form parse_campaign_text
/// accepts; round-trips every field exactly (doubles are written with
/// 17 significant digits in the C locale).
[[nodiscard]] std::string to_text(const CampaignTextSpec& spec);

/// Planner/executor observability: how much work the campaign asked for,
/// how much was actually run, and where the time went.
struct CampaignMetrics {
  std::size_t studies = 0;
  std::size_t workers = 1;
  std::size_t tasks_requested = 0;     ///< naive: one serial study per
                                       ///< (cell, chain length)
  std::size_t tasks_planned = 0;       ///< after dedup and cache lookup
  std::size_t tasks_deduplicated = 0;  ///< requested - planned - cache hits
  std::size_t cache_hits = 0;          ///< chains served by the database
  std::size_t journal_hits = 0;        ///< tasks replayed from a resume journal
  std::size_t tasks_executed = 0;
  std::size_t tasks_retried = 0;       ///< extra attempts beyond the first
  std::size_t tasks_failed = 0;        ///< tasks that exhausted the retry budget
  std::size_t handles_created = 0;     ///< factory calls by the executor
  std::size_t handles_reused = 0;      ///< tasks served from a handle pool
  double plan_s = 0.0;
  double measure_s = 0.0;
  double assemble_s = 0.0;
  double wall_s = 0.0;
  /// Per-task measurement wall-clock (handle acquisition included), over the
  /// tasks this campaign actually executed; all zero when none ran.
  double task_min_s = 0.0;
  double task_max_s = 0.0;
  double task_mean_s = 0.0;

  [[nodiscard]] report::Table to_table() const;
  /// Header line + one data row.
  [[nodiscard]] std::string to_csv() const;
  /// One self-contained JSON object (JSONL record).
  [[nodiscard]] std::string to_jsonl() const;

  /// Read a metrics view out of an obs::MetricsRegistry populated by the
  /// executor ("campaign.*" counters and gauges).  The registry is the
  /// canonical store; this struct is the rendering view over it, and the
  /// round trip is bit-exact (counters are integers, gauges atomic doubles),
  /// so table/CSV/JSONL output is unchanged by the indirection.
  [[nodiscard]] static CampaignMetrics from_registry(
      obs::MetricsRegistry& registry);
  /// Publish this struct's values into `registry` under the same
  /// "campaign.*" names from_registry() reads.
  void publish(obs::MetricsRegistry& registry) const;
};

}  // namespace kcoup::campaign
