# Empty dependencies file for kcoup.
# This may be replaced when dependencies are built.
