file(REMOVE_RECURSE
  "CMakeFiles/kcoup.dir/kcoup_cli.cpp.o"
  "CMakeFiles/kcoup.dir/kcoup_cli.cpp.o.d"
  "kcoup"
  "kcoup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kcoup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
