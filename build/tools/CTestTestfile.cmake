# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_help "/root/repo/build/tools/kcoup" "help")
set_tests_properties(cli_help PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_machines "/root/repo/build/tools/kcoup" "machines")
set_tests_properties(cli_machines PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_study "/root/repo/build/tools/kcoup" "study" "--app" "sp" "--class" "W" "--procs" "4" "--chains" "4")
set_tests_properties(cli_study PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_transitions "/root/repo/build/tools/kcoup" "transitions" "--sizes" "8,16")
set_tests_properties(cli_transitions PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_reuse "/root/repo/build/tools/kcoup" "reuse" "--app" "bt" "--class" "W" "--donor" "4" "--targets" "9" "--chains" "2")
set_tests_properties(cli_reuse PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_parallel "/root/repo/build/tools/kcoup" "parallel" "--app" "bt" "--n" "12" "--procs" "4" "--chains" "2")
set_tests_properties(cli_parallel PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_campaign "/root/repo/build/tools/kcoup" "campaign" "--apps" "bt,sp" "--classes" "S" "--procs" "4,9" "--chains" "2,3" "--workers" "4")
set_tests_properties(cli_campaign PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_campaign_serial_quiet "/root/repo/build/tools/kcoup" "campaign" "--apps" "bt" "--classes" "S" "--procs" "4" "--serial" "--quiet")
set_tests_properties(cli_campaign_serial_quiet PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_campaign_rejects_empty "/root/repo/build/tools/kcoup" "campaign" "--apps" "bt" "--classes" "S" "--procs" "5")
set_tests_properties(cli_campaign_rejects_empty PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_rejects_bad_flag "/root/repo/build/tools/kcoup" "study" "--app" "bt" "--class" "W" "--bogus" "1")
set_tests_properties(cli_rejects_bad_flag PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_rejects_bad_app "/root/repo/build/tools/kcoup" "study" "--app" "xx" "--class" "W")
set_tests_properties(cli_rejects_bad_app PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
