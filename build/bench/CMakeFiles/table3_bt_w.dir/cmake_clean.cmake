file(REMOVE_RECURSE
  "CMakeFiles/table3_bt_w.dir/table3_bt_w.cpp.o"
  "CMakeFiles/table3_bt_w.dir/table3_bt_w.cpp.o.d"
  "table3_bt_w"
  "table3_bt_w.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_bt_w.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
