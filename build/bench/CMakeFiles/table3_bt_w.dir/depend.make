# Empty dependencies file for table3_bt_w.
# This may be replaced when dependencies are built.
