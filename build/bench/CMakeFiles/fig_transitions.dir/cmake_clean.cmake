file(REMOVE_RECURSE
  "CMakeFiles/fig_transitions.dir/fig_transitions.cpp.o"
  "CMakeFiles/fig_transitions.dir/fig_transitions.cpp.o.d"
  "fig_transitions"
  "fig_transitions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_transitions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
