# Empty compiler generated dependencies file for fig_transitions.
# This may be replaced when dependencies are built.
