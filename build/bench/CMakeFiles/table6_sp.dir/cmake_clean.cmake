file(REMOVE_RECURSE
  "CMakeFiles/table6_sp.dir/table6_sp.cpp.o"
  "CMakeFiles/table6_sp.dir/table6_sp.cpp.o.d"
  "table6_sp"
  "table6_sp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_sp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
