# Empty dependencies file for table6_sp.
# This may be replaced when dependencies are built.
