# Empty compiler generated dependencies file for table2_bt_s.
# This may be replaced when dependencies are built.
