file(REMOVE_RECURSE
  "CMakeFiles/table2_bt_s.dir/table2_bt_s.cpp.o"
  "CMakeFiles/table2_bt_s.dir/table2_bt_s.cpp.o.d"
  "table2_bt_s"
  "table2_bt_s.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_bt_s.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
