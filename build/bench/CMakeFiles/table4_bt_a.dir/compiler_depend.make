# Empty compiler generated dependencies file for table4_bt_a.
# This may be replaced when dependencies are built.
