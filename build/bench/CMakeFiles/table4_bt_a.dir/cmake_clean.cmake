file(REMOVE_RECURSE
  "CMakeFiles/table4_bt_a.dir/table4_bt_a.cpp.o"
  "CMakeFiles/table4_bt_a.dir/table4_bt_a.cpp.o.d"
  "table4_bt_a"
  "table4_bt_a.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_bt_a.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
