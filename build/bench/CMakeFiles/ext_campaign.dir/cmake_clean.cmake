file(REMOVE_RECURSE
  "CMakeFiles/ext_campaign.dir/ext_campaign.cpp.o"
  "CMakeFiles/ext_campaign.dir/ext_campaign.cpp.o.d"
  "ext_campaign"
  "ext_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
