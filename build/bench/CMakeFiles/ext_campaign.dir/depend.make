# Empty dependencies file for ext_campaign.
# This may be replaced when dependencies are built.
