# Empty dependencies file for ext_reuse.
# This may be replaced when dependencies are built.
