file(REMOVE_RECURSE
  "CMakeFiles/ext_reuse.dir/ext_reuse.cpp.o"
  "CMakeFiles/ext_reuse.dir/ext_reuse.cpp.o.d"
  "ext_reuse"
  "ext_reuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
