# Empty compiler generated dependencies file for ext_parallel_bt.
# This may be replaced when dependencies are built.
