file(REMOVE_RECURSE
  "CMakeFiles/ext_parallel_bt.dir/ext_parallel_bt.cpp.o"
  "CMakeFiles/ext_parallel_bt.dir/ext_parallel_bt.cpp.o.d"
  "ext_parallel_bt"
  "ext_parallel_bt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_parallel_bt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
