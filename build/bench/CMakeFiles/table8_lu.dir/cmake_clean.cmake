file(REMOVE_RECURSE
  "CMakeFiles/table8_lu.dir/table8_lu.cpp.o"
  "CMakeFiles/table8_lu.dir/table8_lu.cpp.o.d"
  "table8_lu"
  "table8_lu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_lu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
