# Empty dependencies file for table8_lu.
# This may be replaced when dependencies are built.
