file(REMOVE_RECURSE
  "CMakeFiles/ablation_chainlen.dir/ablation_chainlen.cpp.o"
  "CMakeFiles/ablation_chainlen.dir/ablation_chainlen.cpp.o.d"
  "ablation_chainlen"
  "ablation_chainlen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_chainlen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
