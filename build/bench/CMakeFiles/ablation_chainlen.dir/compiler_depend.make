# Empty compiler generated dependencies file for ablation_chainlen.
# This may be replaced when dependencies are built.
