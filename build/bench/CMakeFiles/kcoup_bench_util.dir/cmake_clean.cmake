file(REMOVE_RECURSE
  "../lib/libkcoup_bench_util.a"
  "../lib/libkcoup_bench_util.pdb"
  "CMakeFiles/kcoup_bench_util.dir/bench_util.cpp.o"
  "CMakeFiles/kcoup_bench_util.dir/bench_util.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kcoup_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
