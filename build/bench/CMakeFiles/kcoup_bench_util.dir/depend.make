# Empty dependencies file for kcoup_bench_util.
# This may be replaced when dependencies are built.
