file(REMOVE_RECURSE
  "../lib/libkcoup_bench_util.a"
)
