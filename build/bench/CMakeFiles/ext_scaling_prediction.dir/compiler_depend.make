# Empty compiler generated dependencies file for ext_scaling_prediction.
# This may be replaced when dependencies are built.
