file(REMOVE_RECURSE
  "CMakeFiles/ext_scaling_prediction.dir/ext_scaling_prediction.cpp.o"
  "CMakeFiles/ext_scaling_prediction.dir/ext_scaling_prediction.cpp.o.d"
  "ext_scaling_prediction"
  "ext_scaling_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_scaling_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
