# Empty compiler generated dependencies file for ext_synthetic.
# This may be replaced when dependencies are built.
