file(REMOVE_RECURSE
  "CMakeFiles/ext_synthetic.dir/ext_synthetic.cpp.o"
  "CMakeFiles/ext_synthetic.dir/ext_synthetic.cpp.o.d"
  "ext_synthetic"
  "ext_synthetic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_synthetic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
