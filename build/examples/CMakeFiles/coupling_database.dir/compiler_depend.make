# Empty compiler generated dependencies file for coupling_database.
# This may be replaced when dependencies are built.
