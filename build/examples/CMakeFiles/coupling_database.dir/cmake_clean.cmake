file(REMOVE_RECURSE
  "CMakeFiles/coupling_database.dir/coupling_database.cpp.o"
  "CMakeFiles/coupling_database.dir/coupling_database.cpp.o.d"
  "coupling_database"
  "coupling_database.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coupling_database.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
