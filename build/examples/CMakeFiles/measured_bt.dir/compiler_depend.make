# Empty compiler generated dependencies file for measured_bt.
# This may be replaced when dependencies are built.
