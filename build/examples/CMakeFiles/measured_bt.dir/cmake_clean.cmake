file(REMOVE_RECURSE
  "CMakeFiles/measured_bt.dir/measured_bt.cpp.o"
  "CMakeFiles/measured_bt.dir/measured_bt.cpp.o.d"
  "measured_bt"
  "measured_bt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/measured_bt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
