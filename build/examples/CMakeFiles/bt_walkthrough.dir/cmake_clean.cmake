file(REMOVE_RECURSE
  "CMakeFiles/bt_walkthrough.dir/bt_walkthrough.cpp.o"
  "CMakeFiles/bt_walkthrough.dir/bt_walkthrough.cpp.o.d"
  "bt_walkthrough"
  "bt_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bt_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
