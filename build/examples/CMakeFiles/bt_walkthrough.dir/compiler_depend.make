# Empty compiler generated dependencies file for bt_walkthrough.
# This may be replaced when dependencies are built.
