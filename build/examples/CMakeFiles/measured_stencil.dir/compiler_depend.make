# Empty compiler generated dependencies file for measured_stencil.
# This may be replaced when dependencies are built.
