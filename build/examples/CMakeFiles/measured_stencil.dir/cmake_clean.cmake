file(REMOVE_RECURSE
  "CMakeFiles/measured_stencil.dir/measured_stencil.cpp.o"
  "CMakeFiles/measured_stencil.dir/measured_stencil.cpp.o.d"
  "measured_stencil"
  "measured_stencil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/measured_stencil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
