// Tests for the timed parallel SP and LU paths, including the paper's §4.3
// observation that LU's diagonal-pipelined sweeps are "very sensitive to
// the small-message communication performance".

#include <gtest/gtest.h>

#include "coupling/parallel_measurement.hpp"
#include "machine/config.hpp"
#include "npb/lu/lu_timed.hpp"
#include "npb/sp/sp_timed.hpp"

namespace kcoup {
namespace {

npb::sp::TimedSpOptions sp_options() {
  npb::sp::TimedSpOptions o;
  o.machine = machine::ibm_sp_p2sc();
  return o;
}

npb::lu::TimedLuOptions lu_options() {
  npb::lu::TimedLuOptions o;
  o.machine = machine::ibm_sp_p2sc();
  return o;
}

TEST(TimedSpTest, DeterministicAndCouplingWins) {
  const coupling::StudyOptions study{{4}, {}};
  const auto a = npb::sp::run_sp_parallel_study(12, 40, 4, sp_options(), study);
  const auto b = npb::sp::run_sp_parallel_study(12, 40, 4, sp_options(), study);
  EXPECT_EQ(a.actual_s, b.actual_s);
  EXPECT_EQ(a.by_length[0].prediction_s, b.by_length[0].prediction_s);
  EXPECT_LT(a.by_length[0].relative_error, a.summation_error);
}

TEST(TimedSpTest, SixKernelLoopMeasured) {
  const coupling::StudyOptions study{{2}, {}};
  const auto r = npb::sp::run_sp_parallel_study(12, 10, 4, sp_options(), study);
  EXPECT_EQ(r.isolated_means.size(), 6u);  // cf, txinvr, x, y, z, add
  ASSERT_EQ(r.by_length[0].chains.size(), 6u);
  EXPECT_EQ(r.by_length[0].chains[1].label, "Txinvr, X_Solve");
}

TEST(TimedLuTest, DeterministicAndCouplingWins) {
  const coupling::StudyOptions study{{3}, {}};
  const auto a = npb::lu::run_lu_parallel_study(12, 40, 4, lu_options(), study);
  const auto b = npb::lu::run_lu_parallel_study(12, 40, 4, lu_options(), study);
  EXPECT_EQ(a.actual_s, b.actual_s);
  EXPECT_EQ(a.by_length[0].prediction_s, b.by_length[0].prediction_s);
  EXPECT_LT(a.by_length[0].relative_error, a.summation_error);
}

TEST(TimedLuTest, DirectionReversalMakesSweepPairLatencySensitive) {
  // A kernel looping in isolation software-pipelines across repetitions, so
  // its steady-state mean hides the per-plane message latency (only the
  // fill is paid, once).  The {Ssor_LT, Ssor_UT} pair cannot pipeline: UT
  // sweeps the planes in the opposite direction, so the wavefront drains
  // and refills on every hand-off.  Scaling the network latency must
  // therefore raise the pair's coupling value — LU's latency sensitivity
  // (paper §4.3) shows up as *destructive coupling*, not as slower isolated
  // kernels.
  const coupling::StudyOptions study{{2}, {}};
  npb::lu::TimedLuOptions fast = lu_options();
  npb::lu::TimedLuOptions slow = lu_options();
  slow.machine.net_latency_s *= 10.0;

  const auto rf = npb::lu::run_lu_parallel_study(16, 5, 8, fast, study);
  const auto rs = npb::lu::run_lu_parallel_study(16, 5, 8, slow, study);
  // loop = {Ssor_Iter, Ssor_LT, Ssor_UT, Ssor_RS}; chain start 1 = {LT, UT}.
  const double c_fast = rf.by_length[0].chains[1].coupling();
  const double c_slow = rs.by_length[0].chains[1].coupling();
  EXPECT_GT(c_slow, c_fast);
  // Isolated sweeps stay nearly latency-free (pipelined steady state).
  const double lt_growth = rs.isolated_means[1] / rf.isolated_means[1];
  EXPECT_LT(lt_growth, 1.3);
}

TEST(TimedLuTest, PipelineFillGrowsWithRankGrid) {
  // At fixed per-rank work... the sweep time includes (px + py - 2) fill
  // stages; compare P=4 (2+2 grid) against P=16 (4+4 grid) with the SAME
  // local extents by scaling n with the decomposition.
  const coupling::StudyOptions study{{1}, {}};
  const auto r4 = npb::lu::run_lu_parallel_study(16, 5, 4, lu_options(), study);
  const auto r16 =
      npb::lu::run_lu_parallel_study(32, 5, 16, lu_options(), study);
  // n doubled with px, py doubled: local nx, ny identical (8x8), nz doubled.
  // Per-plane work equal, twice the planes, plus a deeper pipeline: the
  // P=16 sweep must take MORE than twice the P=4 sweep time.
  EXPECT_GT(r16.isolated_means[1], 2.0 * r4.isolated_means[1]);
}

}  // namespace
}  // namespace kcoup
