// Tests for the prediction-service core: latency histogram, sharded LRU,
// wire protocol, snapshot construction/hot-reload, and the query engine's
// exact / nearest / model prediction paths — including bit-identity between
// served predictions and in-process run_study() values.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "coupling/analysis.hpp"
#include "coupling/database.hpp"
#include "coupling/study.hpp"
#include "machine/config.hpp"
#include "npb/bt/bt_model.hpp"
#include "serve/protocol.hpp"
#include "serve/query_engine.hpp"
#include "serve/sharded_lru.hpp"
#include "serve/snapshot.hpp"
#include "serve/workload.hpp"
#include "support/latency_histogram.hpp"

namespace kcoup {
namespace {

// --- LatencyHistogram -------------------------------------------------------

TEST(LatencyHistogram, EmptyReportsZeros) {
  support::LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0.0);
}

TEST(LatencyHistogram, MinMaxMeanAreExact) {
  support::LatencyHistogram h;
  h.record(0.001);
  h.record(0.002);
  h.record(0.009);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.min(), 0.001);
  EXPECT_DOUBLE_EQ(h.max(), 0.009);
  EXPECT_DOUBLE_EQ(h.mean(), 0.004);
}

TEST(LatencyHistogram, QuantilesWithinBucketResolution) {
  support::LatencyHistogram h;
  for (int i = 1; i <= 100; ++i) h.record(1e-3 * i);  // 1ms .. 100ms
  // Log-linear buckets are 1/16 of an octave wide: worst-case relative
  // error is under 7 %.
  EXPECT_NEAR(h.quantile(0.50), 0.050, 0.050 * 0.07);
  EXPECT_NEAR(h.quantile(0.95), 0.095, 0.095 * 0.07);
  EXPECT_NEAR(h.quantile(0.99), 0.099, 0.099 * 0.07);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), h.min());
  EXPECT_DOUBLE_EQ(h.quantile(1.0), h.max());
}

TEST(LatencyHistogram, DropsNonFiniteAndNegative) {
  support::LatencyHistogram h;
  h.record(std::nan(""));
  h.record(-1.0);
  EXPECT_EQ(h.count(), 0u);
  h.record(0.5);
  EXPECT_EQ(h.count(), 1u);
}

TEST(LatencyHistogram, OutOfRangeValuesClampButStayExactAtEdges) {
  support::LatencyHistogram h;
  h.record(1e-9);   // below 2^-20 s
  h.record(1000.0); // above 2^8 s
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.min(), 1e-9);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  // Quantiles clamp to the observed range, never beyond it.
  EXPECT_GE(h.quantile(0.5), h.min());
  EXPECT_LE(h.quantile(0.5), h.max());
}

TEST(LatencyHistogram, MergeMatchesRecordingEverythingInOne) {
  support::LatencyHistogram a, b, all;
  for (int i = 1; i <= 40; ++i) {
    const double v = 1e-4 * i;
    (i % 2 == 0 ? a : b).record(v);
    all.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
  EXPECT_DOUBLE_EQ(a.mean(), all.mean());
  for (double q : {0.25, 0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(a.quantile(q), all.quantile(q)) << "q=" << q;
  }
}

// --- ShardedLruCache --------------------------------------------------------

TEST(ShardedLru, HitMissAccounting) {
  serve::ShardedLruCache<int, int> cache(8, 2);
  EXPECT_FALSE(cache.get(1).has_value());
  cache.put(1, 10);
  const auto hit = cache.get(1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 10);
  const serve::CacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.size, 1u);
}

TEST(ShardedLru, PutUpdatesExistingKey) {
  serve::ShardedLruCache<int, int> cache(4, 1);
  cache.put(1, 10);
  cache.put(1, 20);
  EXPECT_EQ(*cache.get(1), 20);
  EXPECT_EQ(cache.stats().size, 1u);
}

TEST(ShardedLru, EvictsLeastRecentlyUsedAtCapacity) {
  serve::ShardedLruCache<int, int> cache(2, 1);  // one shard: strict LRU
  cache.put(1, 10);
  cache.put(2, 20);
  ASSERT_TRUE(cache.get(1).has_value());  // 1 is now most recent
  cache.put(3, 30);                       // evicts 2
  EXPECT_TRUE(cache.get(1).has_value());
  EXPECT_FALSE(cache.get(2).has_value());
  EXPECT_TRUE(cache.get(3).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().size, 2u);
}

TEST(ShardedLru, CapacityZeroDisablesCaching) {
  serve::ShardedLruCache<int, int> cache(0, 4);
  cache.put(1, 10);
  EXPECT_FALSE(cache.get(1).has_value());
  EXPECT_EQ(cache.stats().size, 0u);
}

TEST(ShardedLru, ConcurrentPutGetIsSafe) {
  serve::ShardedLruCache<int, int> cache(64, 8);
  std::vector<std::thread> threads;
  std::atomic<int> bad{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, &bad, t] {
      for (int i = 0; i < 500; ++i) {
        const int key = (t * 31 + i) % 100;
        cache.put(key, key * 7);
        const auto got = cache.get(key);
        if (got.has_value() && *got != key * 7) bad.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(bad.load(), 0);
  EXPECT_LE(cache.stats().size, 64u);
}

// --- Wire protocol ----------------------------------------------------------

TEST(Protocol, PingAndStatsRoundTrip) {
  const auto ping = serve::parse_request(serve::ping_request());
  ASSERT_TRUE(ping.has_value());
  EXPECT_EQ(ping->op, serve::RequestOp::kPing);
  const auto stats = serve::parse_request(serve::stats_request());
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->op, serve::RequestOp::kStats);
}

TEST(Protocol, PredictRequestRoundTrip) {
  const serve::QueryKey q{"BT", "W", 9, 3};
  const auto parsed = serve::parse_request(serve::predict_request(q));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->op, serve::RequestOp::kPredict);
  ASSERT_EQ(parsed->queries.size(), 1u);
  EXPECT_EQ(parsed->queries[0], q);
}

TEST(Protocol, BatchRequestRoundTrip) {
  const std::vector<serve::QueryKey> queries{
      {"BT", "S", 4, 2}, {"SP", "W", 9, 3}, {"LU", "A", 8, 2}};
  const auto parsed = serve::parse_request(serve::batch_request(queries));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->op, serve::RequestOp::kBatch);
  ASSERT_EQ(parsed->queries.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(parsed->queries[i], queries[i]);
  }
}

TEST(Protocol, RejectsMalformedRequests) {
  EXPECT_FALSE(serve::parse_request("").has_value());
  EXPECT_FALSE(serve::parse_request("not json").has_value());
  EXPECT_FALSE(serve::parse_request("{}").has_value());
  EXPECT_FALSE(serve::parse_request("{\"op\":\"nope\"}").has_value());
  // predict with missing fields
  EXPECT_FALSE(serve::parse_request("{\"op\":\"predict\"}").has_value());
  EXPECT_FALSE(
      serve::parse_request("{\"op\":\"predict\",\"app\":\"BT\"}").has_value());
  // non-positive ranks / chain
  EXPECT_FALSE(serve::parse_request("{\"op\":\"predict\",\"app\":\"BT\","
                                    "\"config\":\"S\",\"ranks\":0,"
                                    "\"chain\":2}")
                   .has_value());
  // batch with an empty / malformed queries array
  EXPECT_FALSE(
      serve::parse_request("{\"op\":\"batch\",\"queries\":[]}").has_value());
  EXPECT_FALSE(serve::parse_request("{\"op\":\"batch\",\"queries\":[{}]}")
                   .has_value());
  EXPECT_FALSE(serve::parse_request("{\"op\":\"batch\",\"queries\":")
                   .has_value());
}

TEST(Protocol, PredictionSurvivesRoundTripBitIdentically) {
  serve::Prediction p;
  p.ok = true;
  p.key = {"BT", "W", 16, 3};
  p.coupling_s = 0.123456789012345678;
  p.summation_s = 1.0 / 3.0;
  p.actual_s = 0.3141592653589793;
  p.coupling_error = 0.05;
  p.summation_error = 0.10000000000000001;
  p.alpha_source = "exact";
  p.inputs_source = "measured";
  p.source = "exact";
  p.cache_hit = true;
  p.snapshot_version = 7;

  const auto back = serve::parse_prediction(serve::prediction_json(p));
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->ok);
  EXPECT_EQ(back->key, p.key);
  EXPECT_EQ(back->coupling_s, p.coupling_s);
  EXPECT_EQ(back->summation_s, p.summation_s);
  EXPECT_EQ(back->actual_s, p.actual_s);
  EXPECT_EQ(back->coupling_error, p.coupling_error);
  EXPECT_EQ(back->summation_error, p.summation_error);
  EXPECT_EQ(back->alpha_source, "exact");
  EXPECT_EQ(back->inputs_source, "measured");
  EXPECT_EQ(back->source, "exact");
  EXPECT_TRUE(back->cache_hit);
  EXPECT_EQ(back->snapshot_version, 7u);
}

TEST(Protocol, SourceAndModelFormFieldsRoundTrip) {
  serve::Prediction p;
  p.ok = true;
  p.key = {"BT", "C", 1024, 2};
  p.coupling_s = 0.25;
  p.alpha_source = "nearest";
  p.inputs_source = "model";
  p.source = "model";
  p.model_form = "1+n^3/P,1/P,1+log2(P)";

  const std::string json = serve::prediction_json(p);
  // The wire JSON names the fallback path and the selected model forms.
  EXPECT_NE(json.find("\"source\":\"model\""), std::string::npos);
  EXPECT_NE(json.find("\"model_form\":\"1+n^3/P,1/P,1+log2(P)\""),
            std::string::npos);
  const auto back = serve::parse_prediction(json);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->source, "model");
  EXPECT_EQ(back->model_form, "1+n^3/P,1/P,1+log2(P)");

  // Empty source/model_form (error predictions) must stay absent, so old
  // clients see exactly the pre-field wire bytes.
  serve::Prediction err;
  err.ok = false;
  err.error = "nope";
  err.key = {"BT", "C", 4, 2};
  const std::string err_json = serve::prediction_json(err);
  EXPECT_EQ(err_json.find("\"source\""), std::string::npos);
  EXPECT_EQ(err_json.find("\"model_form\""), std::string::npos);
}

TEST(Protocol, NonFiniteFieldsComeBackAsNaN) {
  serve::Prediction p;
  p.ok = true;
  p.key = {"LU", "B", 8, 2};
  p.coupling_s = 0.5;  // everything else stays NaN
  const auto back = serve::parse_prediction(serve::prediction_json(p));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->coupling_s, 0.5);
  EXPECT_TRUE(std::isnan(back->actual_s));
  EXPECT_TRUE(std::isnan(back->coupling_error));
}

TEST(Protocol, ErrorPredictionRoundTrips) {
  serve::Prediction p;
  p.ok = false;
  p.error = "no coupling data for \"X\"";
  p.key = {"XX", "Z", 3, 9};
  const auto back = serve::parse_prediction(serve::prediction_json(p));
  ASSERT_TRUE(back.has_value());
  EXPECT_FALSE(back->ok);
  EXPECT_EQ(back->error, p.error);
}

// --- Synthetic workload for engine/snapshot tests ---------------------------

/// Deterministic 3-kernel workload: means are closed-form in (ranks), so
/// every test value is reproducible and instant.  Ranks 5 is "unrunnable"
/// to exercise the scaling-model fallback.
class FakeWorkload final : public serve::Workload {
 public:
  static constexpr std::size_t kLoop = 3;

  bool valid_cell(const std::string& application, const std::string& config,
                  int ranks) const override {
    return application == "APP" && config == "X" && ranks >= 1 &&
           ranks != 5;
  }

  serve::CellInputs measure_cell(const std::string& application,
                                 const std::string& config,
                                 int ranks) const override {
    if (!valid_cell(application, config, ranks)) {
      throw std::invalid_argument("FakeWorkload: invalid cell");
    }
    measured_cells_.fetch_add(1);
    serve::CellInputs cell;
    for (std::size_t k = 0; k < kLoop; ++k) {
      cell.inputs.isolated_means.push_back(mean(k, ranks));
    }
    cell.inputs.prologue_s = 0.001;
    cell.inputs.epilogue_s = 0.002;
    cell.inputs.iterations = 10;
    cell.loop_size = kLoop;
    cell.grid_extent = 12.0;
    cell.summation_s = coupling::summation_prediction(cell.inputs);
    cell.actual_s = cell.summation_s * 1.1;
    return cell;
  }

  std::optional<serve::CellShape> shape(
      const std::string& application,
      const std::string& config) const override {
    if (application != "APP" || config != "X") return std::nullopt;
    return serve::CellShape{12.0, 10};
  }

  [[nodiscard]] int measured_cells() const { return measured_cells_.load(); }

  static double mean(std::size_t k, int ranks) {
    return 0.01 * static_cast<double>(k + 1) / static_cast<double>(ranks);
  }

 private:
  mutable std::atomic<int> measured_cells_{0};
};

/// A complete q=2 chain group for (APP, X, ranks): one record per start,
/// couplings slightly above 1 so predictions differ from summation.
void add_group(coupling::CouplingDatabase* db, int ranks) {
  for (std::size_t start = 0; start < FakeWorkload::kLoop; ++start) {
    coupling::CouplingRecord r;
    r.key = {"APP", "X", ranks, 2, start};
    r.isolated_sum = FakeWorkload::mean(start, ranks) +
                     FakeWorkload::mean((start + 1) % FakeWorkload::kLoop,
                                        ranks);
    r.chain_time =
        r.isolated_sum * (1.05 + 0.01 * static_cast<double>(start));
    db->record(r);
  }
}

// --- PredictorSnapshot ------------------------------------------------------

TEST(PredictorSnapshot, PrecomputesAlphaForCompleteGroupsOnly) {
  coupling::CouplingDatabase db;
  add_group(&db, 4);
  // Partial group at P=9: only one of three starts.
  coupling::CouplingRecord partial;
  partial.key = {"APP", "X", 9, 2, 0};
  partial.chain_time = 0.01;
  partial.isolated_sum = 0.01;
  db.record(partial);

  const serve::PredictorSnapshot snapshot(db, 1, {}, {false});
  EXPECT_EQ(snapshot.alpha_group_count(), 1u);

  const serve::AlphaGroup* group = snapshot.find_alpha("APP", "X", 4, 2);
  ASSERT_NE(group, nullptr);
  EXPECT_EQ(group->loop_size, FakeWorkload::kLoop);
  ASSERT_EQ(group->chains.size(), FakeWorkload::kLoop);
  // Chains come back exactly as the campaign assembly builds them.
  for (std::size_t start = 0; start < FakeWorkload::kLoop; ++start) {
    EXPECT_EQ(group->chains[start].start, start);
    EXPECT_EQ(group->chains[start].length, 2u);
  }
  // alpha matches coupling_coefficients over the same chains, bit for bit.
  const auto alpha =
      coupling::coupling_coefficients(group->loop_size, group->chains);
  ASSERT_EQ(group->alpha.size(), alpha.size());
  for (std::size_t k = 0; k < alpha.size(); ++k) {
    EXPECT_EQ(group->alpha[k], alpha[k]);
  }

  EXPECT_EQ(snapshot.find_alpha("APP", "X", 9, 2), nullptr);  // partial
  EXPECT_EQ(snapshot.find_alpha("APP", "X", 4, 3), nullptr);  // absent q
}

TEST(PredictorSnapshot, FitsScalingModelsFromMeasurableCells) {
  coupling::CouplingDatabase db;
  for (int p : {1, 2, 3, 4}) add_group(&db, p);  // 4 samples: basis size

  FakeWorkload workload;
  const serve::PredictorSnapshot snapshot(
      db, 1,
      [&workload](const std::string& a, const std::string& c, int p)
          -> std::optional<serve::CellInputs> {
        if (!workload.valid_cell(a, c, p)) return std::nullopt;
        return workload.measure_cell(a, c, p);
      },
      {true});
  EXPECT_EQ(snapshot.modeled_application_count(), 1u);
  const auto* models = snapshot.models_for("APP");
  ASSERT_NE(models, nullptr);
  ASSERT_EQ(models->size(), FakeWorkload::kLoop);
  // The basis contains 1/P-free terms but the fit must still track the
  // 1/P-shaped means closely inside the sampled range.
  for (std::size_t k = 0; k < models->size(); ++k) {
    const double predicted = (*models)[k].evaluate(12.0, 2.0);
    EXPECT_NEAR(predicted, FakeWorkload::mean(k, 2),
                0.25 * FakeWorkload::mean(k, 2));
  }
  EXPECT_EQ(snapshot.models_for("OTHER"), nullptr);
}

// --- QueryEngine (synthetic workload) ---------------------------------------

class QueryEngineFake : public ::testing::Test {
 protected:
  void SetUp() override {
    add_group(&db_, 4);
    add_group(&db_, 16);
  }

  coupling::CouplingDatabase db_;
  FakeWorkload workload_;
};

TEST_F(QueryEngineFake, ExactGroupUsesPrecomputedAlpha) {
  const serve::PredictorSnapshot snapshot(db_, 1, {}, {false});
  serve::QueryEngine engine(&workload_);
  const auto p = engine.predict(snapshot, {"APP", "X", 4, 2});
  ASSERT_TRUE(p.ok) << p.error;
  EXPECT_EQ(p.alpha_source, "exact");
  EXPECT_EQ(p.inputs_source, "measured");
  // Bit-identical to composing by hand from the snapshot's group.
  const serve::AlphaGroup* group = snapshot.find_alpha("APP", "X", 4, 2);
  ASSERT_NE(group, nullptr);
  const auto cell = workload_.measure_cell("APP", "X", 4);
  EXPECT_EQ(p.coupling_s,
            coupling::alpha_prediction(cell.inputs, group->alpha));
  EXPECT_EQ(p.summation_s, cell.summation_s);
  EXPECT_EQ(p.actual_s, cell.actual_s);
}

TEST_F(QueryEngineFake, FallsBackToNearestRanksDonor) {
  const serve::PredictorSnapshot snapshot(db_, 1, {}, {false});
  serve::QueryEngine engine(&workload_);
  // P=6 measurable but no group: nearest donor is P=4 (log-scale).
  const auto p = engine.predict(snapshot, {"APP", "X", 6, 2});
  ASSERT_TRUE(p.ok) << p.error;
  EXPECT_EQ(p.alpha_source, "nearest");
  const auto donor =
      snapshot.database().reuse_chains_for("APP", "X", 6, 2,
                                           FakeWorkload::kLoop);
  ASSERT_FALSE(donor.empty());
  const auto cell = workload_.measure_cell("APP", "X", 6);
  EXPECT_EQ(p.coupling_s, coupling::coupling_prediction(cell.inputs, donor));
}

TEST_F(QueryEngineFake, FallsBackToScalingModelsForUnrunnableCells) {
  FakeWorkload workload;
  serve::QueryEngine engine(&workload);
  coupling::CouplingDatabase db;
  for (int p : {1, 2, 3, 4}) add_group(&db, p);
  const serve::PredictorSnapshot snapshot(
      db, 1,
      [&engine](const std::string& a, const std::string& c, int p) {
        return engine.cell(a, c, p);
      },
      {true});
  // Ranks 5 cannot be measured; models + nearest donor chains carry it.
  const auto p = engine.predict(snapshot, {"APP", "X", 5, 2});
  ASSERT_TRUE(p.ok) << p.error;
  EXPECT_EQ(p.inputs_source, "model");
  EXPECT_EQ(p.alpha_source, "nearest");
  EXPECT_TRUE(std::isfinite(p.coupling_s));
  EXPECT_TRUE(std::isnan(p.actual_s));  // nothing ran, no error columns
  EXPECT_TRUE(std::isnan(p.coupling_error));
  // The piecewise models supersede the LSQ ones on the model path: the
  // closed-form 1/P workload selects exactly {1/P} per kernel, so the
  // extrapolated inputs are the true means and the form is reported.
  EXPECT_EQ(p.source, "model");
  EXPECT_EQ(p.model_form, "1/P,1/P,1/P");
  const auto* fitted = snapshot.fitted_models_for("APP");
  ASSERT_NE(fitted, nullptr);
  ASSERT_EQ(fitted->size(), FakeWorkload::kLoop);
  for (std::size_t k = 0; k < fitted->size(); ++k) {
    EXPECT_NEAR((*fitted)[k].evaluate(12.0, 5.0), FakeWorkload::mean(k, 5),
                1e-9 * FakeWorkload::mean(k, 5));
  }
}

TEST_F(QueryEngineFake, SourceNamesEachFallbackPath) {
  FakeWorkload workload;
  serve::QueryEngine engine(&workload);
  coupling::CouplingDatabase db;
  for (int p : {1, 2, 3, 4}) add_group(&db, p);
  const serve::PredictorSnapshot snapshot(
      db, 1,
      [&engine](const std::string& a, const std::string& c, int p) {
        return engine.cell(a, c, p);
      },
      {true});

  const auto exact = engine.predict(snapshot, {"APP", "X", 4, 2});
  ASSERT_TRUE(exact.ok) << exact.error;
  EXPECT_EQ(exact.source, "exact");
  EXPECT_TRUE(exact.model_form.empty());

  const auto donor = engine.predict(snapshot, {"APP", "X", 6, 2});
  ASSERT_TRUE(donor.ok) << donor.error;
  EXPECT_EQ(donor.source, "nearest-donor");
  EXPECT_TRUE(donor.model_form.empty());

  const auto model = engine.predict(snapshot, {"APP", "X", 5, 2});
  ASSERT_TRUE(model.ok) << model.error;
  EXPECT_EQ(model.source, "model");
  EXPECT_FALSE(model.model_form.empty());

  const auto error = engine.predict(snapshot, {"NOPE", "X", 4, 2});
  ASSERT_FALSE(error.ok);
  EXPECT_TRUE(error.source.empty());
}

/// Property: on the dense (measurable) grid the piecewise models must be
/// invisible — every prediction that does not need the model fallback has
/// to serialize byte-identically whether the snapshot fitted models or
/// not.  Only the unrunnable cell is allowed to differ (error -> answer).
TEST_F(QueryEngineFake, DenseGridPredictionsUnaffectedByFittedModels) {
  coupling::CouplingDatabase db;
  for (int p : {1, 2, 3, 4, 8, 16}) add_group(&db, p);
  FakeWorkload with_workload;
  serve::QueryEngine with_engine(&with_workload);
  const serve::PredictorSnapshot with_models(
      db, 1,
      [&with_engine](const std::string& a, const std::string& c, int p) {
        return with_engine.cell(a, c, p);
      },
      {true});
  const serve::PredictorSnapshot without_models(db, 1, {}, {false});
  ASSERT_GT(with_models.fitted_application_count(), 0u);
  ASSERT_EQ(without_models.fitted_application_count(), 0u);

  FakeWorkload bare_workload;
  serve::QueryEngine without_engine(&bare_workload);
  // Warm both memos so the cache hit/miss marker matches: the snapshot
  // build already touched with_engine's cells.
  for (int ranks = 1; ranks <= 20; ++ranks) {
    if (ranks == 5) continue;
    (void)with_engine.cell("APP", "X", ranks);
    (void)without_engine.cell("APP", "X", ranks);
  }
  for (int ranks = 1; ranks <= 20; ++ranks) {
    if (ranks == 5) continue;  // the one cell that needs the model path
    for (const std::size_t chain : {std::size_t{1}, std::size_t{2},
                                    std::size_t{3}}) {
      const serve::QueryKey q{"APP", "X", ranks, chain};
      const std::string a =
          serve::prediction_json(with_engine.predict(with_models, q));
      const std::string b =
          serve::prediction_json(without_engine.predict(without_models, q));
      EXPECT_EQ(a, b) << "P=" << ranks << " q=" << chain;
    }
  }
}

TEST_F(QueryEngineFake, RefusesUnknownCellsAndBadChainLengths) {
  const serve::PredictorSnapshot snapshot(db_, 1, {}, {false});
  serve::QueryEngine engine(&workload_);
  EXPECT_FALSE(engine.predict(snapshot, {"NOPE", "X", 4, 2}).ok);
  EXPECT_FALSE(engine.predict(snapshot, {"APP", "X", 0, 2}).ok);
  const auto too_long = engine.predict(snapshot, {"APP", "X", 4, 99});
  EXPECT_FALSE(too_long.ok);
  EXPECT_NE(too_long.error.find("exceeds loop size"), std::string::npos);
}

TEST_F(QueryEngineFake, MemoizesCellMeasurements) {
  const serve::PredictorSnapshot snapshot(db_, 1, {}, {false});
  serve::QueryEngine engine(&workload_);
  const auto first = engine.predict(snapshot, {"APP", "X", 4, 2});
  const auto second = engine.predict(snapshot, {"APP", "X", 4, 2});
  ASSERT_TRUE(first.ok);
  ASSERT_TRUE(second.ok);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(workload_.measured_cells(), 1);
  EXPECT_EQ(first.coupling_s, second.coupling_s);
  const serve::CacheStats stats = engine.cache_stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST_F(QueryEngineFake, CacheOnAndOffAreBitIdentical) {
  const serve::PredictorSnapshot snapshot(db_, 1, {}, {false});
  serve::QueryEngine cached(&workload_, {1024, 8});
  serve::QueryEngine uncached(&workload_, {0, 8});
  for (int ranks : {4, 6, 16}) {
    const serve::QueryKey q{"APP", "X", ranks, 2};
    const auto a = cached.predict(snapshot, q);
    const auto b = uncached.predict(snapshot, q);
    const auto a2 = cached.predict(snapshot, q);   // memo hit
    const auto b2 = uncached.predict(snapshot, q); // re-measured
    ASSERT_TRUE(a.ok && b.ok && a2.ok && b2.ok);
    EXPECT_EQ(a.coupling_s, b.coupling_s) << "P=" << ranks;
    EXPECT_EQ(a.coupling_s, a2.coupling_s);
    EXPECT_EQ(a.coupling_s, b2.coupling_s);
    EXPECT_EQ(a.summation_s, b.summation_s);
    EXPECT_EQ(a.actual_s, b.actual_s);
    EXPECT_TRUE(a2.cache_hit);
    EXPECT_FALSE(b2.cache_hit);
  }
  EXPECT_EQ(uncached.cache_stats().size, 0u);
}

TEST_F(QueryEngineFake, EvictsAtCapacity) {
  const serve::PredictorSnapshot snapshot(db_, 1, {}, {false});
  serve::QueryEngine engine(&workload_, {1, 1});  // one-entry cache
  ASSERT_TRUE(engine.predict(snapshot, {"APP", "X", 4, 2}).ok);
  ASSERT_TRUE(engine.predict(snapshot, {"APP", "X", 16, 2}).ok);
  ASSERT_TRUE(engine.predict(snapshot, {"APP", "X", 4, 2}).ok);
  const serve::CacheStats stats = engine.cache_stats();
  EXPECT_GE(stats.evictions, 1u);
  EXPECT_LE(stats.size, 1u);
  EXPECT_EQ(workload_.measured_cells(), 3);  // third call re-measured
}

// --- SnapshotSource: hot reload ---------------------------------------------

class SnapshotSourceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::path(::testing::TempDir()) /
            ("kcoup_serve_db_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name() +
             ".csv");
    std::filesystem::remove(path_);
  }
  void TearDown() override { std::filesystem::remove(path_); }

  void write_db(const std::vector<int>& rank_groups) {
    coupling::CouplingDatabase db;
    for (int p : rank_groups) add_group(&db, p);
    db.save_csv_file(path_.string());
  }

  std::filesystem::path path_;
};

TEST_F(SnapshotSourceTest, LoadPublishesVersionedSnapshot) {
  write_db({4});
  serve::SnapshotSource source(path_.string(), {}, {false});
  EXPECT_EQ(source.current(), nullptr);
  source.load();
  const auto snapshot = source.current();
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(snapshot->version(), 1u);
  EXPECT_EQ(snapshot->database().size(), FakeWorkload::kLoop);
  EXPECT_EQ(source.reloads(), 1u);
}

TEST_F(SnapshotSourceTest, LoadThrowsOnMissingFileNamingPath) {
  serve::SnapshotSource source(path_.string(), {}, {false});
  try {
    source.load();
    FAIL() << "expected load() to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(path_.string()),
              std::string::npos);
  }
}

TEST_F(SnapshotSourceTest, PollReloadsOnFileChangeOnly) {
  write_db({4});
  serve::SnapshotSource source(path_.string(), {}, {false});
  source.load();
  EXPECT_FALSE(source.poll());  // unchanged
  const auto before = source.current();

  write_db({4, 16});  // grew: size change guarantees the probe differs
  EXPECT_TRUE(source.poll());
  const auto after = source.current();
  ASSERT_NE(after, nullptr);
  EXPECT_NE(after, before);
  EXPECT_EQ(after->version(), 2u);
  EXPECT_EQ(after->database().size(), 2 * FakeWorkload::kLoop);
  EXPECT_EQ(source.reloads(), 2u);
  // The displaced snapshot stays valid for readers still holding it.
  EXPECT_EQ(before->version(), 1u);
  EXPECT_EQ(before->database().size(), FakeWorkload::kLoop);
}

TEST_F(SnapshotSourceTest, PollSeesSameSizeRewriteWithinOneMtimeGranule) {
  const auto write_value = [&](double chain_time) {
    coupling::CouplingDatabase db;
    for (std::size_t start = 0; start < FakeWorkload::kLoop; ++start) {
      coupling::CouplingRecord r;
      r.key = {"APP", "X", 4, 2, start};
      r.chain_time = chain_time;
      r.isolated_sum = 1.0;
      db.record(r);
    }
    db.save_csv_file(path_.string());
  };
  write_value(1.5);
  serve::SnapshotSource source(path_.string(), {}, {false});
  source.load();
  const auto size_before = std::filesystem::file_size(path_);
  const auto mtime_before = std::filesystem::last_write_time(path_);

  write_value(2.5);
  // Same byte count by construction ("1.5" and "2.5" format identically) —
  // the old mtime+size probe had nothing else to look at.
  ASSERT_EQ(std::filesystem::file_size(path_), size_before);
  // Pin the mtime back to simulate a rewrite inside one timestamp granule
  // on a coarse-mtime filesystem.
  std::filesystem::last_write_time(path_, mtime_before);
  // save_csv_file writes a temp file and renames it into place, so the
  // rewrite landed on a fresh inode — the probe must still see the change.
  EXPECT_TRUE(source.poll());
  ASSERT_NE(source.current(), nullptr);
  EXPECT_EQ(source.current()->version(), 2u);
}

TEST_F(SnapshotSourceTest, BrokenReloadKeepsServingOldSnapshot) {
  write_db({4});
  serve::SnapshotSource source(path_.string(), {}, {false});
  source.load();
  const auto before = source.current();

  std::ofstream out(path_);
  out << "application,config,ranks,chain_length,chain_start,chain_time,"
         "isolated_sum\nBT,S,not_a_number,2,0,1.0,1.0,extra,breakage\n";
  out.close();
  EXPECT_FALSE(source.poll());
  EXPECT_EQ(source.reload_failures(), 1u);
  EXPECT_EQ(source.current(), before);
  // The bad probe is remembered: an unchanged broken file is not re-parsed.
  EXPECT_FALSE(source.poll());
  EXPECT_EQ(source.reload_failures(), 1u);

  write_db({4, 16});  // fixed file retriggers
  EXPECT_TRUE(source.poll());
  EXPECT_EQ(source.current()->version(), 2u);
}

TEST_F(SnapshotSourceTest, BackgroundPollerPicksUpChanges) {
  write_db({4});
  serve::SnapshotSource source(path_.string(), {}, {false});
  source.load();
  source.start_polling(std::chrono::milliseconds(10));
  write_db({4, 16});
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (source.reloads() < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  source.stop_polling();
  EXPECT_GE(source.reloads(), 2u);
  EXPECT_EQ(source.current()->database().size(), 2 * FakeWorkload::kLoop);
}

// --- NPB bit-identity: served == in-process run_study -----------------------

TEST(ServeNpb, PredictionsBitIdenticalToRunStudy) {
  const machine::MachineConfig cfg = machine::ibm_sp_p2sc();
  const auto modeled = npb::bt::make_modeled_bt(npb::ProblemClass::kS, 4, cfg);
  coupling::StudyOptions options;
  options.chain_lengths = {2, 3};
  const coupling::StudyResult study =
      coupling::run_study(modeled->app(), options);

  // The database a campaign would persist for this cell.
  coupling::CouplingDatabase db;
  for (const auto& cl : study.by_length) {
    db.record("BT", "S", 4, cl.chains);
  }

  serve::NpbWorkload workload(cfg);
  serve::QueryEngine engine(&workload);
  const serve::PredictorSnapshot snapshot(db, 1, {}, {false});

  for (const auto& cl : study.by_length) {
    const auto p =
        engine.predict(snapshot, {"bt", "s", 4, cl.length});  // non-canonical
    ASSERT_TRUE(p.ok) << p.error;
    EXPECT_EQ(p.key.application, "BT");
    EXPECT_EQ(p.key.config, "S");
    EXPECT_EQ(p.alpha_source, "exact");
    // Exact double equality: the served path must reproduce the study.
    EXPECT_EQ(p.coupling_s, cl.prediction_s) << "q=" << cl.length;
    EXPECT_EQ(p.actual_s, study.actual_s);
    EXPECT_EQ(p.summation_s, study.summation_s);
    EXPECT_EQ(p.coupling_error, cl.relative_error);
    EXPECT_EQ(p.summation_error, study.summation_error);
  }
}

/// Golden pin: the cross-validated model selection on the seeded NPB suite
/// is deterministic, so the chosen form per application/kernel is part of
/// the observable contract.  A drift here means the selection algorithm,
/// the term registry, or the modeled workloads changed — all of which must
/// be deliberate.
TEST(ServeNpb, SelectedModelFormsArePinned) {
  const machine::MachineConfig cfg = machine::ibm_sp_p2sc();
  serve::NpbWorkload workload(cfg);
  serve::QueryEngine engine(&workload);

  // Seed one record per (app, S, P) so the snapshot's fit loop measures
  // those cells; the record values themselves never feed the fit.
  coupling::CouplingDatabase db;
  for (const char* app : {"BT", "SP", "LU"}) {
    for (int p : {1, 4, 16}) {
      db.record({{app, "S", p, 2, 0}, 1.0, 1.0});
    }
  }
  const serve::PredictorSnapshot snapshot(
      db, 1,
      [&engine](const std::string& a, const std::string& c, int p) {
        return engine.cell(a, c, p);
      },
      {true});
  ASSERT_EQ(snapshot.fitted_application_count(), 3u);

  const auto forms = [&](const char* app) {
    const auto* fitted = snapshot.fitted_models_for(app);
    EXPECT_NE(fitted, nullptr);
    std::string joined;
    for (const model::PiecewiseModel& pw : *fitted) {
      if (!joined.empty()) joined += ';';
      joined += pw.term_names();
    }
    return joined;
  };
  EXPECT_EQ(forms("BT"), "P*log2(P)+1/P;1/P;n/P;n/P;1/P");
  EXPECT_EQ(forms("SP"), "P*log2(P)+1/P;1/P;1/P;1/sqrt(P);1/sqrt(P);n^2/P");
  EXPECT_EQ(forms("LU"), "P*log2(P)+1/P;log2(P)+1/sqrt(P);sqrt(P)+n^2/sqrt(P);1");
}

}  // namespace
}  // namespace kcoup
