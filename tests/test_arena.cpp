// Tests for the monotonic request arena backing the server's per-window
// allocations: alignment, block growth, reset-with-retained-capacity, and
// standard-container use through ArenaAllocator.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "support/arena.hpp"

namespace kcoup {
namespace {

TEST(MonotonicArena, AllocationsAreAlignedAndDisjoint) {
  support::MonotonicArena arena(256);
  void* a = arena.allocate(3, 1);
  void* b = arena.allocate(8, 8);
  void* c = arena.allocate(16, 16);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c) % 16, 0u);
  // Writing each allocation fully must not clobber the others.
  std::memset(a, 0xAA, 3);
  std::memset(b, 0xBB, 8);
  std::memset(c, 0xCC, 16);
  EXPECT_EQ(static_cast<unsigned char*>(a)[0], 0xAA);
  EXPECT_EQ(static_cast<unsigned char*>(b)[7], 0xBB);
  EXPECT_EQ(static_cast<unsigned char*>(c)[15], 0xCC);
}

TEST(MonotonicArena, GrowsBeyondFirstBlock) {
  support::MonotonicArena arena(64);
  // Far more than one block's worth of allocations.
  for (int i = 0; i < 100; ++i) {
    void* p = arena.allocate(32, 8);
    ASSERT_NE(p, nullptr);
    std::memset(p, i, 32);
  }
  EXPECT_GT(arena.block_count(), 1u);
  EXPECT_GE(arena.capacity(), 100u * 32u);
}

TEST(MonotonicArena, OversizedSingleAllocationSucceeds) {
  support::MonotonicArena arena(64);
  void* p = arena.allocate(4096, 64);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 64, 0u);
  std::memset(p, 0x5A, 4096);
}

TEST(MonotonicArena, ResetRetainsCapacityAndReusesBlocks) {
  support::MonotonicArena arena(128);
  for (int i = 0; i < 50; ++i) (void)arena.allocate(64, 8);
  const std::size_t capacity = arena.capacity();
  const std::size_t blocks = arena.block_count();
  arena.reset();
  EXPECT_EQ(arena.capacity(), capacity);
  EXPECT_EQ(arena.block_count(), blocks);
  // The same allocation pattern after reset must not grow the arena: the
  // steady-state promise is zero allocations per window.
  for (int i = 0; i < 50; ++i) (void)arena.allocate(64, 8);
  EXPECT_EQ(arena.capacity(), capacity);
  EXPECT_EQ(arena.block_count(), blocks);
}

TEST(ArenaAllocator, BacksAStandardVector) {
  support::MonotonicArena arena(256);
  std::vector<int, support::ArenaAllocator<int>> v{
      support::ArenaAllocator<int>(&arena)};
  for (int i = 0; i < 1000; ++i) v.push_back(i);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(v[i], i);
}

TEST(ArenaAllocator, RebindsAcrossValueTypes) {
  support::MonotonicArena arena(256);
  const support::ArenaAllocator<int> a(&arena);
  const support::ArenaAllocator<double> b(a);  // converting constructor
  EXPECT_TRUE(a == support::ArenaAllocator<int>(b));
  std::vector<std::string, support::ArenaAllocator<std::string>> names{
      support::ArenaAllocator<std::string>(&arena)};
  names.emplace_back("a long enough string to defeat SSO in most libraries");
  names.emplace_back("second");
  EXPECT_EQ(names.size(), 2u);
}

TEST(ArenaAllocator, WindowPatternResetAndRefill) {
  // The server's per-window pattern: build containers, drop them, reset,
  // repeat.  After the first window no new blocks may appear.
  support::MonotonicArena arena(1024);
  for (int window = 0; window < 10; ++window) {
    arena.reset();
    std::vector<int, support::ArenaAllocator<int>> frame{
        support::ArenaAllocator<int>(&arena)};
    frame.reserve(64);
    for (int i = 0; i < 64; ++i) frame.push_back(window * i);
    ASSERT_EQ(frame.back(), window * 63);
    if (window == 0) continue;
    EXPECT_LE(arena.block_count(), 2u) << "window " << window;
  }
}

}  // namespace
}  // namespace kcoup
