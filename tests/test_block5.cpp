// Unit tests for the dense 5x5 block primitives (npb/common/block5.hpp),
// the innermost math of the BT and LU solvers.

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "npb/common/block5.hpp"

namespace kcoup::npb {
namespace {

Block5 random_dominant_block(std::mt19937& rng) {
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  Block5 m;
  for (auto& v : m) v = dist(rng);
  // Make strictly diagonally dominant so the block is well conditioned.
  for (int r = 0; r < 5; ++r) {
    double row = 0.0;
    for (int c = 0; c < 5; ++c) row += std::fabs(m[static_cast<std::size_t>(r * 5 + c)]);
    m[static_cast<std::size_t>(r * 5 + r)] += row + 1.0;
  }
  return m;
}

Vec5 random_vec(std::mt19937& rng) {
  std::uniform_real_distribution<double> dist(-2.0, 2.0);
  Vec5 v;
  for (auto& x : v) x = dist(rng);
  return v;
}

TEST(Block5Test, IdentityBehaviour) {
  const Block5 id = identity5();
  const Vec5 v{1, 2, 3, 4, 5};
  const Vec5 r = matvec5(id, v);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(r[i], v[i]);

  const Block5 id2 = matmul5(id, id);
  for (std::size_t i = 0; i < 25; ++i) EXPECT_DOUBLE_EQ(id2[i], id[i]);
}

TEST(Block5Test, MatmulAssociatesWithMatvec) {
  std::mt19937 rng(42);
  const Block5 a = random_dominant_block(rng);
  const Block5 b = random_dominant_block(rng);
  const Vec5 x = random_vec(rng);
  const Vec5 lhs = matvec5(matmul5(a, b), x);
  const Vec5 rhs = matvec5(a, matvec5(b, x));
  for (std::size_t i = 0; i < 5; ++i) EXPECT_NEAR(lhs[i], rhs[i], 1e-12);
}

TEST(Block5Test, MatsubElementwise) {
  std::mt19937 rng(1);
  const Block5 a = random_dominant_block(rng);
  const Block5 b = random_dominant_block(rng);
  const Block5 c = matsub5(a, b);
  for (std::size_t i = 0; i < 25; ++i) EXPECT_DOUBLE_EQ(c[i], a[i] - b[i]);
}

TEST(Block5Test, LuSolveRecoversRhs) {
  std::mt19937 rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const Block5 m = random_dominant_block(rng);
    const Vec5 x_true = random_vec(rng);
    const Vec5 b = matvec5(m, x_true);
    Lu5 f;
    ASSERT_TRUE(lu_factor5(m, f));
    const Vec5 x = lu_solve5(f, b);
    for (std::size_t i = 0; i < 5; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-10);
  }
}

TEST(Block5Test, LuSolveBlockMatchesColumnSolves) {
  std::mt19937 rng(11);
  const Block5 m = random_dominant_block(rng);
  const Block5 b = random_dominant_block(rng);
  Lu5 f;
  ASSERT_TRUE(lu_factor5(m, f));
  const Block5 x = lu_solve5_block(f, b);
  // M X == B
  const Block5 mx = matmul5(m, x);
  for (std::size_t i = 0; i < 25; ++i) EXPECT_NEAR(mx[i], b[i], 1e-10);
}

TEST(Block5Test, InvertGivesIdentityProduct) {
  std::mt19937 rng(23);
  const Block5 m = random_dominant_block(rng);
  Block5 inv;
  ASSERT_TRUE(invert5(m, inv));
  const Block5 prod = matmul5(m, inv);
  const Block5 id = identity5();
  for (std::size_t i = 0; i < 25; ++i) EXPECT_NEAR(prod[i], id[i], 1e-10);
}

TEST(Block5Test, SingularBlockRejected) {
  Block5 zero{};
  Lu5 f;
  EXPECT_FALSE(lu_factor5(zero, f));
  Block5 out;
  EXPECT_FALSE(invert5(zero, out));
}

TEST(Block5Test, PivotingHandlesZeroDiagonal) {
  // Permutation-like matrix: zero diagonal but nonsingular.
  Block5 m{};
  const int perm[5] = {1, 2, 3, 4, 0};
  for (int r = 0; r < 5; ++r) {
    m[static_cast<std::size_t>(r * 5 + perm[r])] = 1.0;
  }
  Lu5 f;
  ASSERT_TRUE(lu_factor5(m, f));
  const Vec5 b{1, 2, 3, 4, 5};
  const Vec5 x = lu_solve5(f, b);
  const Vec5 back = matvec5(m, x);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_NEAR(back[i], b[i], 1e-12);
}

TEST(Block5Test, VecHelpers) {
  const Vec5 a{1, 2, 3, 4, 5};
  const Vec5 b{5, 4, 3, 2, 1};
  EXPECT_DOUBLE_EQ(dot5(a, b), 5 + 8 + 9 + 8 + 5);
  EXPECT_DOUBLE_EQ(norm2sq5(a), 55);
  const Vec5 d = sub5(a, b);
  EXPECT_DOUBLE_EQ(d[0], -4);
  EXPECT_DOUBLE_EQ(d[4], 4);
  Vec5 y = b;
  axpy5(2.0, a, y);
  EXPECT_DOUBLE_EQ(y[0], 7);
  EXPECT_DOUBLE_EQ(y[4], 11);
}

}  // namespace
}  // namespace kcoup::npb
