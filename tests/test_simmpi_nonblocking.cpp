// Tests for simmpi's nonblocking point-to-point API (isend/irecv/Request).

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "simmpi/simmpi.hpp"

namespace kcoup::simmpi {
namespace {

TEST(SimmpiNonblockingTest, IrecvWaitDeliversPayload) {
  run(2, {}, [](Comm& c) {
    if (c.rank() == 0) {
      const std::vector<double> data{3.0, 1.0, 4.0};
      Request s = c.isend<double>(1, 2, data);
      EXPECT_FALSE(s.valid());  // buffered send completes immediately
      s.wait();                 // no-op, allowed
    } else {
      std::vector<double> in(3);
      Request r = c.irecv<double>(0, 2, in);
      EXPECT_TRUE(r.valid());
      r.wait();
      EXPECT_FALSE(r.valid());
      EXPECT_DOUBLE_EQ(in[0], 3.0);
      EXPECT_DOUBLE_EQ(in[2], 4.0);
    }
  });
}

TEST(SimmpiNonblockingTest, PostedReceivesMatchInPostOrder) {
  run(2, {}, [](Comm& c) {
    if (c.rank() == 0) {
      const std::vector<int> a{10}, b{20};
      c.send<int>(1, 0, a);
      c.send<int>(1, 0, b);
    } else {
      std::vector<int> first(1), second(1);
      Request r1 = c.irecv<int>(0, 0, first);
      Request r2 = c.irecv<int>(0, 0, second);
      // Waiting in post order yields FIFO matching.
      r1.wait();
      r2.wait();
      EXPECT_EQ(first[0], 10);
      EXPECT_EQ(second[0], 20);
    }
  });
}

TEST(SimmpiNonblockingTest, DifferentChannelsCommute) {
  run(2, {}, [](Comm& c) {
    if (c.rank() == 0) {
      const std::vector<int> a{1}, b{2};
      c.send<int>(1, 10, a);
      c.send<int>(1, 20, b);
    } else {
      std::vector<int> x(1), y(1);
      Request rx = c.irecv<int>(0, 10, x);
      Request ry = c.irecv<int>(0, 20, y);
      // Wait out of post order across different tags: fine.
      ry.wait();
      rx.wait();
      EXPECT_EQ(x[0], 1);
      EXPECT_EQ(y[0], 2);
    }
  });
}

TEST(SimmpiNonblockingTest, WaitAllCompletesEverything) {
  run(3, {}, [](Comm& c) {
    if (c.rank() == 0) {
      std::vector<int> from1(1), from2(1);
      std::array<Request, 2> reqs{c.irecv<int>(1, 0, from1),
                                  c.irecv<int>(2, 0, from2)};
      wait_all(reqs);
      EXPECT_EQ(from1[0], 100);
      EXPECT_EQ(from2[0], 200);
    } else {
      const std::vector<int> v{c.rank() * 100};
      c.send<int>(0, 0, v);
    }
  });
}

TEST(SimmpiNonblockingTest, MixedBlockingAndNonblockingFifo) {
  run(2, {}, [](Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 3; ++i) {
        const std::vector<int> v{i};
        c.send<int>(1, 0, v);
      }
    } else {
      std::vector<int> a(1), b(1), d(1);
      Request r = c.irecv<int>(0, 0, a);  // posted first
      r.wait();
      c.recv<int>(0, 0, b);               // blocking, posted second
      Request r3 = c.irecv<int>(0, 0, d);
      r3.wait();
      EXPECT_EQ(a[0], 0);
      EXPECT_EQ(b[0], 1);
      EXPECT_EQ(d[0], 2);
    }
  });
}

TEST(SimmpiNonblockingTest, VirtualTimeAdvancesAtWait) {
  NetworkParams net;
  net.latency_s = 2.0;
  run(2, net, [](Comm& c) {
    if (c.rank() == 0) {
      c.advance(1.0);
      const std::vector<double> v{1.0};
      c.send<double>(1, 0, v);
    } else {
      std::vector<double> in(1);
      Request r = c.irecv<double>(0, 0, in);
      EXPECT_DOUBLE_EQ(c.now(), 0.0);  // posting costs nothing
      r.wait();
      EXPECT_DOUBLE_EQ(c.now(), 3.0);  // send time 1 + latency 2
    }
  });
}

TEST(SimmpiNonblockingTest, MoveTransfersOwnership) {
  run(2, {}, [](Comm& c) {
    if (c.rank() == 0) {
      const std::vector<int> v{7};
      c.send<int>(1, 0, v);
    } else {
      std::vector<int> in(1);
      Request a = c.irecv<int>(0, 0, in);
      Request b = std::move(a);
      EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): testing move semantics
      EXPECT_TRUE(b.valid());
      b.wait();
      EXPECT_EQ(in[0], 7);
    }
  });
}

}  // namespace
}  // namespace kcoup::simmpi
